// Streaming cursor ablation: what does materializing a result set cost?
//
// The ptexport/ptquery paths used to buffer whole result sets in a
// ResultSet before emitting the first byte. With the Volcano pipeline they
// pull rows one at a time through dbal::Connection::query(). This bench
// builds a result table at two sizes and drains the full-table "export scan"
// three ways — row-at-a-time next(), columnar fetchBatch(), and fully
// materialized exec() — reporting time-to-first-row (TTFR), total drain
// time, and the peak-RSS increase each phase causes. The streaming phases
// run first at each size: VmHWM is monotonic, so any high-water growth
// observed during the materialized phase is memory the streamed phases
// never needed — the O(1)-memory claim for the export path, in numbers.
// The streamed-vs-batched pair is the row-vs-batch pipeline A/B.
//
// PT_CURSOR_JSON=<path>: also emit the cells as JSON (one object per
// size x phase) for scripts/bench_smoke.sh and before/after comparisons.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "dbal/connection.h"
#include "minidb/sql/executor.h"
#include "minidb/sql/row_batch.h"
#include "obs/metrics.h"
#include "util/tempdir.h"
#include "util/timer.h"

using namespace perftrack;

namespace {

/// Peak resident set (VmHWM) in KiB from /proc/self/status; 0 when the
/// platform doesn't expose it (the bench then only reports timings).
long peakRssKb() {
  std::ifstream status("/proc/self/status");
  std::string key;
  while (status >> key) {
    if (key == "VmHWM:") {
      long kb = 0;
      status >> kb;
      return kb;
    }
    status.ignore(1 << 12, '\n');
  }
  return 0;
}

struct Cell {
  std::string phase;
  std::int64_t table_rows = 0;
  std::int64_t rows = 0;
  std::int64_t batch_rows = 0;  // pipeline batch size (0 = row-at-a-time drain)
  double ttfr_ms = 0.0;   // time to first row
  double total_ms = 0.0;  // full drain
  long rss_growth_kb = 0; // VmHWM increase caused by this phase
};

const char* kScan = "SELECT id, ctx, metric, value, units FROM result";

Cell runStreamed(dbal::Connection& conn, std::int64_t table_rows) {
  Cell cell;
  cell.phase = "streamed";
  cell.table_rows = table_rows;
  const long before = peakRssKb();
  util::Timer timer;
  auto cur = conn.query(kScan);
  minidb::Row row;
  double checksum = 0.0;
  if (cur.next(row)) {
    cell.ttfr_ms = 1e3 * timer.elapsedSeconds();
    do {
      checksum += row[3].asReal();
      ++cell.rows;
    } while (cur.next(row));
  }
  cell.total_ms = 1e3 * timer.elapsedSeconds();
  cell.rss_growth_kb = peakRssKb() - before;
  if (checksum < 0) std::printf("impossible\n");  // keep the drain observable
  return cell;
}

Cell runBatched(dbal::Connection& conn, std::int64_t table_rows) {
  Cell cell;
  cell.phase = "batched";
  cell.table_rows = table_rows;
  cell.batch_rows =
      static_cast<std::int64_t>(minidb::sql::defaultExecBatchRows());
  const long before = peakRssKb();
  util::Timer timer;
  auto cur = conn.query(kScan);
  minidb::sql::RowBatch batch;
  double checksum = 0.0;
  if (cur.fetchBatch(batch)) {
    cell.ttfr_ms = 1e3 * timer.elapsedSeconds();
    do {
      for (const std::uint32_t i : batch.sel) {
        checksum += batch.cols[3][i].asReal();
        ++cell.rows;
      }
    } while (cur.fetchBatch(batch));
  }
  cell.total_ms = 1e3 * timer.elapsedSeconds();
  cell.rss_growth_kb = peakRssKb() - before;
  if (checksum < 0) std::printf("impossible\n");
  return cell;
}

Cell runMaterialized(dbal::Connection& conn, std::int64_t table_rows) {
  Cell cell;
  cell.phase = "materialized";
  cell.table_rows = table_rows;
  const long before = peakRssKb();
  util::Timer timer;
  const auto rs = conn.exec(kScan);
  // exec() returns only after buffering every row: the first row is not
  // available any earlier than the last.
  cell.ttfr_ms = 1e3 * timer.elapsedSeconds();
  double checksum = 0.0;
  for (const auto& row : rs.rows) {
    checksum += row[3].asReal();
    ++cell.rows;
  }
  cell.total_ms = 1e3 * timer.elapsedSeconds();
  cell.rss_growth_kb = peakRssKb() - before;
  if (checksum < 0) std::printf("impossible\n");
  return cell;
}

void writeJson(const std::string& path, const std::vector<Cell>& cells) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "  {\"phase\": \"" << c.phase << "\", \"table_rows\": " << c.table_rows
        << ", \"rows\": " << c.rows << ", \"batch_rows\": " << c.batch_rows
        << ", \"ttfr_ms\": " << c.ttfr_ms
        << ", \"total_ms\": " << c.total_ms
        << ", \"rss_growth_kb\": " << c.rss_growth_kb << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main() {
  const std::int64_t sizes[] = {50000, 200000};
  std::vector<Cell> cells;
  std::printf("%-13s %10s %10s %10s %12s %14s\n", "phase", "table", "rows",
              "ttfr_ms", "total_ms", "rss_growth_kb");
  for (const std::int64_t n : sizes) {
    util::TempDir dir("pt_bench_cursor");
    minidb::OpenOptions options;
    options.durability = minidb::Durability::None;  // load speed, not the subject
    auto conn = dbal::Connection::open(dir.file("bench.db").string(), options);
    conn->exec(
        "CREATE TABLE result (id INTEGER PRIMARY KEY, ctx INTEGER, "
        "metric INTEGER, value REAL, units TEXT)");
    const char* ins =
        "INSERT INTO result (ctx, metric, value, units) VALUES (?, ?, ?, ?)";
    conn->begin();
    for (std::int64_t i = 0; i < n; ++i) {
      conn->execPrepared(ins, {minidb::Value(i % 97), minidb::Value(i % 13),
                               minidb::Value(i * 0.25),
                               minidb::Value("seconds-" + std::to_string(i % 11))});
    }
    conn->commit();

    // Streaming phases first: VmHWM only ever rises, so the materialized
    // phase's growth cannot be blamed on the streamed ones.
    for (const Cell& c :
         {runStreamed(*conn, n), runBatched(*conn, n), runMaterialized(*conn, n)}) {
      std::printf("%-13s %10lld %10lld %10.2f %12.2f %14ld\n", c.phase.c_str(),
                  static_cast<long long>(c.table_rows),
                  static_cast<long long>(c.rows), c.ttfr_ms, c.total_ms,
                  c.rss_growth_kb);
      cells.push_back(c);
    }
  }
  if (const char* json = std::getenv("PT_CURSOR_JSON")) {
    writeJson(json, cells);
    std::printf("wrote %s\n", json);
  }
  obs::writeSnapshotIfRequested();
  return 0;
}
