// Durability ablation: what does the crash-safe commit path cost?
//
// With Durability::Full every commit writes before-images to the rollback
// journal, fsyncs it, overwrites the db pages, fsyncs the db, and
// invalidates the journal — two fsyncs and roughly 2x the page writes of
// the legacy in-place path (Durability::None). Durability::Wal appends
// redo frames and fsyncs once per commit, deferring the page overwrite to
// a checkpoint. This bench ingests the same synthetic result batches
// through the dbal prepared-statement hot path in all three modes and
// reports rows/s, commit latency, and the overhead ratio, at two commit
// granularities (the paper loads one execution per transaction; small
// transactions amplify the per-commit fsync cost).
//
// A second sweep measures group commit: N concurrent committers running
// begin -> INSERT -> commitDeferred under a writer lock but fsyncing
// OUTSIDE it (the ptserverd pattern), so overlapping waitDurable() calls
// batch behind one leader. Reported as commits/s, ms/commit, and actual
// fsyncs per commit at each concurrency.
//
// PT_DURABILITY_JSON=<path>: also emit the rows as JSON (one object per
// mode x batch-size cell) for scripts/bench_smoke.sh and before/after
// comparisons.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dbal/connection.h"
#include "minidb/sql/executor.h"
#include "obs/metrics.h"
#include "util/tempdir.h"
#include "util/timer.h"

using namespace perftrack;

namespace {

struct Cell {
  std::string mode;
  int batch_rows = 0;
  int commits = 0;
  std::int64_t rows = 0;
  double seconds = 0.0;
  double fsyncs_per_commit = -1.0;  // group-commit sweep only
  double rows_per_s() const { return seconds > 0 ? rows / seconds : 0.0; }
  double ms_per_commit() const { return commits > 0 ? 1e3 * seconds / commits : 0.0; }
};

const char* modeName(minidb::Durability durability) {
  switch (durability) {
    case minidb::Durability::Full: return "full";
    case minidb::Durability::Wal: return "wal";
    default: return "none";
  }
}

Cell runIngest(minidb::Durability durability, int batch_rows, int batches) {
  util::TempDir dir("pt_bench_dur");
  minidb::OpenOptions options;
  options.durability = durability;
  auto conn = dbal::Connection::open(dir.file("bench.db").string(), options);
  conn->exec(
      "CREATE TABLE result (id INTEGER PRIMARY KEY, ctx INTEGER, metric INTEGER, "
      "value REAL, units TEXT)");
  conn->exec("CREATE INDEX result_by_ctx ON result (ctx)");

  Cell cell;
  cell.mode = modeName(durability);
  cell.batch_rows = batch_rows;
  const char* ins =
      "INSERT INTO result (ctx, metric, value, units) VALUES (?, ?, ?, ?)";
  util::Timer timer;
  for (int b = 0; b < batches; ++b) {
    conn->begin();
    for (int i = 0; i < batch_rows; ++i) {
      const int n = b * batch_rows + i;
      conn->execPrepared(ins, {minidb::Value(n % 97), minidb::Value(n % 13),
                               minidb::Value(n * 0.25), minidb::Value("seconds")});
    }
    conn->commit();
    ++cell.commits;
    cell.rows += batch_rows;
  }
  cell.seconds = timer.elapsedSeconds();
  return cell;
}

// N committers share one store: the writer lock covers the work and the
// WAL append, but each thread fsyncs outside it, so concurrent commits ride
// one leader fsync. fsyncs/commit approaching 1/N is group commit working.
Cell runGroupCommit(int writers, int commits_each) {
  util::TempDir dir("pt_bench_gc");
  minidb::OpenOptions options;
  options.durability = minidb::Durability::Wal;
  auto db = minidb::Database::open(dir.file("gc.db").string(), options);
  minidb::sql::Engine ddl(*db);
  ddl.exec("CREATE TABLE result (id INTEGER PRIMARY KEY, v INTEGER)");

  obs::Counter& fsyncs = obs::Registry::global().counter("pt_wal_fsyncs_total");
  const std::uint64_t fsyncs_before = fsyncs.value();

  Cell cell;
  cell.mode = "wal-group";
  cell.batch_rows = writers;
  std::mutex write_mu;
  util::Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(writers);
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < commits_each; ++i) {
        std::uint64_t lsn = 0;
        {
          std::lock_guard<std::mutex> lk(write_mu);
          db->begin();
          db->insertRow("result", {minidb::Value(), minidb::Value(std::int64_t{i})});
          lsn = db->commitDeferred();
        }
        db->waitDurable(lsn);
      }
    });
  }
  for (auto& t : threads) t.join();
  cell.seconds = timer.elapsedSeconds();
  cell.commits = writers * commits_each;
  cell.rows = cell.commits;
  cell.fsyncs_per_commit =
      static_cast<double>(fsyncs.value() - fsyncs_before) / cell.commits;
  return cell;
}

void writeJson(const std::string& path, const std::vector<Cell>& cells) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "  {\"mode\": \"" << c.mode << "\", \"batch_rows\": " << c.batch_rows
        << ", \"commits\": " << c.commits << ", \"rows\": " << c.rows
        << ", \"seconds\": " << c.seconds << ", \"rows_per_s\": " << c.rows_per_s()
        << ", \"ms_per_commit\": " << c.ms_per_commit()
        << ", \"fsyncs_per_commit\": " << c.fsyncs_per_commit << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main() {
  // ~1 execution per commit (paper-style bulk load) vs chatty small commits.
  const struct { int batch_rows; int batches; } shapes[] = {
      {1500, 8},  // bulk: Table 1's one-execution transactions
      {50, 60},   // chatty: per-commit fsync cost dominates
  };

  std::vector<Cell> cells;
  std::printf("%-9s %-11s %10s %10s %12s %14s\n", "mode", "batch", "rows",
              "seconds", "rows/s", "ms/commit");
  for (const auto& shape : shapes) {
    Cell none = runIngest(minidb::Durability::None, shape.batch_rows, shape.batches);
    Cell full = runIngest(minidb::Durability::Full, shape.batch_rows, shape.batches);
    Cell wal = runIngest(minidb::Durability::Wal, shape.batch_rows, shape.batches);
    for (const Cell& c : {none, full, wal}) {
      std::printf("%-9s %5d x %-3d %10lld %10.3f %12.0f %14.3f\n", c.mode.c_str(),
                  c.batch_rows, c.commits, static_cast<long long>(c.rows), c.seconds,
                  c.rows_per_s(), c.ms_per_commit());
      cells.push_back(c);
    }
    std::printf("  -> durability overhead: full %.2fx, wal %.2fx slower, batch=%d\n",
                none.seconds > 0 ? full.seconds / none.seconds : 0.0,
                none.seconds > 0 ? wal.seconds / none.seconds : 0.0,
                shape.batch_rows);
  }

  // Group commit: per-commit latency and fsync sharing vs concurrency.
  std::printf("\n%-9s %8s %10s %14s %16s\n", "mode", "writers", "commits",
              "ms/commit", "fsyncs/commit");
  for (int writers : {1, 2, 4, 8}) {
    Cell c = runGroupCommit(writers, 60);
    std::printf("%-9s %8d %10d %14.3f %16.3f\n", c.mode.c_str(), c.batch_rows,
                c.commits, c.ms_per_commit(), c.fsyncs_per_commit);
    cells.push_back(c);
  }
  if (const char* json = std::getenv("PT_DURABILITY_JSON")) {
    writeJson(json, cells);
    std::printf("wrote %s\n", json);
  }
  obs::writeSnapshotIfRequested();
  return 0;
}
