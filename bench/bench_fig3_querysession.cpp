// Figure 3 reproduction: the selection dialog's *live match counts*.
//
// "As resource families are added to a pr-filter, the GUI determines how
// many performance results in the database match each resource family by
// itself and how many match the entire pr-filter." Those counts are
// recomputed on every click, so their latency bounds GUI interactivity.
// This benchmark measures per-family and whole-filter count latency against
// a store of IRS executions, for each filter kind the dialog can produce.
//
// Every run records a `threads` counter in the JSON output; the _ThreadSweep
// variants re-run the count hot path at morsel-parallel degrees {1,2,4,8}
// (dbal::Connection::setExecThreads) so BENCH_fig3.json carries the
// per-degree timing matrix.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/query_session.h"
#include "obs/metrics.h"

using namespace perftrack;

namespace {

bench::Store& sharedStore() {
  static bench::Store s = bench::irsStore(/*executions=*/8, /*nprocs=*/16);
  return s;
}

void BM_FamilyCount_ByName(benchmark::State& state) {
  core::QuerySession session(*sharedStore().store);
  const auto fam =
      session.addFamily(core::ResourceFilter::byName("Frost", core::Expansion::Descendants));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.familyMatchCount(fam));
  }
  state.counters["threads"] = 1;
}
BENCHMARK(BM_FamilyCount_ByName);

void BM_FamilyCount_ByType(benchmark::State& state) {
  core::QuerySession session(*sharedStore().store);
  const auto fam = session.addFamily(
      core::ResourceFilter::byType("build/module/function", core::Expansion::None));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.familyMatchCount(fam));
  }
  state.counters["threads"] = 1;
}
BENCHMARK(BM_FamilyCount_ByType);

void BM_FamilyCount_ByAttribute(benchmark::State& state) {
  core::QuerySession session(*sharedStore().store);
  const auto fam = session.addFamily(core::ResourceFilter::byAttributes(
      {{"operating system", "=", "AIX"}}, "grid/machine", core::Expansion::Descendants));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.familyMatchCount(fam));
  }
  state.counters["threads"] = 1;
}
BENCHMARK(BM_FamilyCount_ByAttribute);

void BM_TotalCount_TwoFamilies(benchmark::State& state) {
  core::QuerySession session(*sharedStore().store);
  session.addFamily(core::ResourceFilter::byName("Frost", core::Expansion::Descendants));
  session.addFamily(
      core::ResourceFilter::byName("/IRS-1.4/irscg.c/cgsolve", core::Expansion::None));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.totalMatchCount());
  }
  state.counters["threads"] = 1;
}
BENCHMARK(BM_TotalCount_TwoFamilies);

void BM_FamilyEvaluation_Expansion(benchmark::State& state) {
  // Re-evaluating a family after the user flips the N/A/D/B flag.
  for (auto _ : state) {
    core::QuerySession session(*sharedStore().store);
    const auto fam =
        session.addFamily(core::ResourceFilter::byName("Frost", core::Expansion::None));
    session.setExpansion(fam, core::Expansion::Descendants);
    benchmark::DoNotOptimize(session.familyMatchCount(fam));
  }
  state.counters["threads"] = 1;
}
BENCHMARK(BM_FamilyEvaluation_Expansion);

void BM_SessionRun(benchmark::State& state) {
  // Full retrieval (the "Get Data" button) for a moderate result set.
  core::QuerySession session(*sharedStore().store);
  session.addFamily(
      core::ResourceFilter::byName("/IRS-1.4/irscg.c/cgsolve", core::Expansion::None));
  for (auto _ : state) {
    auto table = session.run();
    benchmark::DoNotOptimize(table.size());
  }
  state.counters["threads"] = 1;
}
BENCHMARK(BM_SessionRun);

// --- morsel-parallel degree sweep -------------------------------------------
// The same count hot path, re-run at exec degrees {1,2,4,8}. Degree 1 is
// exactly the serial pipeline; higher degrees go through the Gather merge
// whenever the scanned table clears the small-table page gate.

void BM_TotalCount_ThreadSweep(benchmark::State& state) {
  auto& s = sharedStore();
  const int threads = static_cast<int>(state.range(0));
  s.conn->setExecThreads(threads);
  core::QuerySession session(*s.store);
  session.addFamily(core::ResourceFilter::byName("Frost", core::Expansion::Descendants));
  session.addFamily(
      core::ResourceFilter::byName("/IRS-1.4/irscg.c/cgsolve", core::Expansion::None));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.totalMatchCount());
  }
  state.counters["threads"] = threads;
  s.conn->setExecThreads(0);
}
BENCHMARK(BM_TotalCount_ThreadSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SessionRun_ThreadSweep(benchmark::State& state) {
  auto& s = sharedStore();
  const int threads = static_cast<int>(state.range(0));
  s.conn->setExecThreads(threads);
  core::QuerySession session(*s.store);
  session.addFamily(
      core::ResourceFilter::byName("/IRS-1.4/irscg.c/cgsolve", core::Expansion::None));
  for (auto _ : state) {
    auto table = session.run();
    benchmark::DoNotOptimize(table.size());
  }
  state.counters["threads"] = threads;
  s.conn->setExecThreads(0);
}
BENCHMARK(BM_SessionRun_ThreadSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so the run can leave a metrics snapshot next
// to its JSON output (PT_METRICS_SNAPSHOT, scripts/bench_smoke.sh).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  obs::writeSnapshotIfRequested();
  return 0;
}
