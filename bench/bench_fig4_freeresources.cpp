// Figure 4 reproduction: the two-step result table.
//
// Step one retrieves rows; step two offers *free resources* — context
// resource types the query didn't pin down and whose names differ across
// rows — and fills a column per chosen type. The paper argues this must be
// on-demand because "it would not be sensible (or efficient) to show all
// the free resources and their attributes for each result". This benchmark
// quantifies that argument: discovering free types, adding one column, and
// (the rejected design) adding every column up front.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/query_session.h"

using namespace perftrack;

namespace {

bench::Store& sharedStore() {
  static bench::Store s = bench::irsStore(/*executions=*/6, /*nprocs=*/16);
  return s;
}

core::ResultTable makeTable() {
  core::QuerySession session(*sharedStore().store);
  session.addFamily(
      core::ResourceFilter::byName("/IRS-1.4/irscg.c", core::Expansion::Descendants));
  return session.run();
}

void BM_FreeResourceDiscovery(benchmark::State& state) {
  auto table = makeTable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.freeResourceTypes());
  }
}
BENCHMARK(BM_FreeResourceDiscovery);

void BM_AddSingleColumn(benchmark::State& state) {
  for (auto _ : state) {
    auto table = makeTable();
    table.addColumn("execution");
    benchmark::DoNotOptimize(table.extraColumns().size());
  }
}
BENCHMARK(BM_AddSingleColumn);

void BM_AddAllColumnsUpFront(benchmark::State& state) {
  // The design the paper rejected: populate every free column eagerly.
  for (auto _ : state) {
    auto table = makeTable();
    for (const std::string& type : table.freeResourceTypes()) {
      table.addColumn(type);
    }
    benchmark::DoNotOptimize(table.extraColumns().size());
  }
}
BENCHMARK(BM_AddAllColumnsUpFront);

void BM_SortRows(benchmark::State& state) {
  auto table = makeTable();
  for (auto _ : state) {
    table.sortBy("value", state.iterations() % 2 == 0);
  }
}
BENCHMARK(BM_SortRows);

void BM_CsvExport(benchmark::State& state) {
  auto table = makeTable();
  table.addColumn("execution");
  for (auto _ : state) {
    std::ostringstream out;
    table.toCsv(out);
    benchmark::DoNotOptimize(out.str().size());
  }
}
BENCHMARK(BM_CsvExport);

}  // namespace

BENCHMARK_MAIN();
