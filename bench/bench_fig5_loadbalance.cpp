// Figure 5 reproduction: min/max running time of a function across all
// processors for different process counts ("a rough indication of load
// balance"), drawn as the GUI's multi-series bar chart.
//
// Expected shape: on a noisy platform (Frost/AIX) the max/min gap widens as
// the process count grows — the exponential noise tail makes the slowest
// process ever slower relative to the fastest — while on BG/L's noiseless
// kernel the two series stay nearly identical.
#include <cstdio>
#include <fstream>

#include "analyze/loadbalance.h"
#include "bench_util.h"

using namespace perftrack;

namespace {

void study(const sim::MachineConfig& machine, const char* function_resource) {
  bench::Store s = bench::Store::openMemory();
  util::TempDir workspace("fig5");
  for (int nprocs : {8, 16, 32, 64, 128}) {
    const auto ptdf_path = bench::makeIrsPtdf(workspace, machine, nprocs, 7);
    ptdf::loadFile(*s.store, ptdf_path.string());
  }
  const auto points =
      analyze::loadBalanceStudy(*s.store, function_resource, "wall time");
  std::fputs(analyze::loadBalanceChart(
                 points, std::string("IRS ") + function_resource + " on " + machine.name,
                 "seconds")
                 .render()
                 .c_str(),
             stdout);
  std::printf("imbalance (max/min):");
  for (const auto& point : points) {
    std::printf("  np%d=%.2f", point.nprocs, point.imbalance());
  }
  std::printf("\n\n");
}

}  // namespace

int main() {
  std::printf("Figure 5: load balance of one IRS function vs process count\n\n");
  study(sim::frostConfig(), "/IRS-1.4/irscg.c/cgsolve");
  study(sim::bglConfig(), "/IRS-1.4/irscg.c/cgsolve");
  std::printf("expected shape: imbalance grows with np on Frost (AIX noise), "
              "stays ~1.0 on BGL (noiseless CNK)\n");
  return 0;
}
