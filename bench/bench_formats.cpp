// Figures 2, 6, 7, 8, 9, 10, 11 reproduction: the formats and mappings.
//
// These figures in the paper are listings/diagrams rather than measurements:
//   Fig 2  — the base resource type tree
//   Fig 6  — the PTdf grammar (shown here as a generated sample)
//   Fig 7  — SMG2000 output with PMAPI counter data
//   Fig 8  — an mpiP report
//   Fig 9  — the PTdf generated for an SMG run
//   Fig 10 — Paradyn's resource hierarchy (from a session's resources file)
//   Fig 11 — the Paradyn -> PerfTrack type mapping
// This bench regenerates each artifact and prints a representative excerpt,
// so the full pipeline raw-output -> PTdf -> mapping is visible in one run.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench_util.h"
#include "core/datastore.h"
#include "core/typesystem.h"
#include "sim/paradyn_gen.h"
#include "sim/smg_gen.h"
#include "tools/paradyn_parser.h"
#include "tools/smg_parser.h"

using namespace perftrack;

namespace {

void printHead(const std::filesystem::path& path, int max_lines) {
  std::ifstream in(path);
  std::string line;
  for (int i = 0; i < max_lines && std::getline(in, line); ++i) {
    std::printf("    %s\n", line.c_str());
  }
  std::printf("    ...\n");
}

}  // namespace

int main() {
  util::TempDir workspace("formats");

  std::printf("=== Figure 2: base resource types ===\n");
  {
    bench::Store s = bench::Store::openMemory();
    for (const std::string& type : s.store->resourceTypes()) {
      std::printf("    %s\n", type.c_str());
    }
  }

  std::printf("\n=== Figures 7 + 8: SMG2000 output with PMAPI, and mpiP ===\n");
  sim::SmgRunSpec spec;
  spec.machine = sim::uvConfig();
  spec.nprocs = 8;
  spec.with_mpip = true;
  spec.with_pmapi = true;
  const auto smg_dir = workspace.file("smg");
  sim::generateSmgRun(spec, smg_dir);
  std::printf("  smg_stdout.txt:\n");
  printHead(smg_dir / "smg_stdout.txt", 18);
  std::printf("  smg_mpip.txt:\n");
  printHead(smg_dir / "smg_mpip.txt", 16);

  std::printf("\n=== Figures 6 + 9: PTdf generated for the SMG run ===\n");
  {
    const auto ptdf_path = workspace.file("smg.ptdf");
    std::ofstream out(ptdf_path);
    ptdf::Writer writer(out);
    tools::convertSmgRun(smg_dir, spec.machine, writer);
    out.close();
    printHead(ptdf_path, 22);
  }

  std::printf("\n=== Figure 10: Paradyn resource hierarchy (session export) ===\n");
  sim::ParadynRunSpec pd;
  pd.machine = sim::mcrConfig();
  pd.nprocs = 4;
  pd.metric_focus_pairs = 4;
  pd.histogram_bins = 20;
  pd.code_resources = 12;
  const auto pd_dir = workspace.file("paradyn");
  sim::generateParadynRun(pd, pd_dir);
  printHead(pd_dir / "resources.txt", 10);

  std::printf("\n=== Figure 11: Paradyn -> PerfTrack type mapping ===\n");
  const char* samples[] = {
      "/Code/irscg.c/cgsolve",       "/Code/libmpi.so/MPI_Isend",
      "/Code/DEFAULT_MODULE/fn_0",   "/Machine/MCR0/irs{12001}",
      "/SyncObject/Message/107",     "/SyncObject/Window/0",
  };
  std::printf("    %-32s -> %-36s %s\n", "Paradyn resource", "PerfTrack resource",
              "type");
  for (const char* name : samples) {
    const auto mapped = tools::mapParadynResource(name, "run1", "IRS");
    std::printf("    %-32s -> %-36s %s%s\n", name, mapped.full_name.c_str(),
                mapped.type_path.c_str(),
                mapped.node_attribute.empty()
                    ? ""
                    : ("  [node=" + mapped.node_attribute + "]").c_str());
  }
  return 0;
}
