// §4.2 load-time study + the DESIGN.md §5 index ablation.
//
// "Preliminary observations of data load time indicate this type of data as
// an area of focus for performance optimization." We measure PTdf load
// throughput as a function of results-per-execution and compare the
// B+-tree-assisted lookup path against full-scan lookups (SQL planner with
// indexes disabled). Expected shape: load time grows ~linearly with result
// count when lookups are index-assisted, and superlinearly (each insert's
// name lookups scan a growing table) without indexes.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sim/smg_gen.h"
#include "tools/smg_parser.h"

using namespace perftrack;

namespace {

/// Builds one SMG-UV PTdf file whose result count scales with nprocs
/// (mpiP emits ~3 results per callsite per rank).
std::filesystem::path makeSmgPtdf(const util::TempDir& workspace, int nprocs) {
  sim::SmgRunSpec spec;
  spec.machine = sim::uvConfig();
  spec.nprocs = nprocs;
  spec.with_mpip = true;
  spec.with_pmapi = true;
  spec.seed = 11;
  const auto dir = workspace.file("run-np" + std::to_string(nprocs));
  const sim::GeneratedRun run = sim::generateSmgRun(spec, dir);
  const auto ptdf_path = workspace.file(run.exec_name + ".ptdf");
  std::ofstream out(ptdf_path);
  ptdf::Writer writer(out);
  tools::convertSmgRun(dir, spec.machine, writer);
  return ptdf_path;
}

void BM_LoadSmgExecution(benchmark::State& state) {
  util::TempDir workspace("load-scaling");
  const auto ptdf_path = makeSmgPtdf(workspace, static_cast<int>(state.range(0)));
  std::size_t results = 0;
  for (auto _ : state) {
    bench::Store s = bench::Store::openMemory();
    const auto stats = ptdf::loadFile(*s.store, ptdf_path.string());
    results = stats.perf_results;
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["results/s"] = benchmark::Counter(
      static_cast<double>(results), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_LoadSmgExecution)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_LoadSmgExecution_NoIndexes(benchmark::State& state) {
  // Ablation: the SQL planner falls back to heap scans for every lookup.
  util::TempDir workspace("load-scaling-noidx");
  const auto ptdf_path = makeSmgPtdf(workspace, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    bench::Store s = bench::Store::openMemory();
    s.conn->setUseIndexes(false);
    const auto stats = ptdf::loadFile(*s.store, ptdf_path.string());
    benchmark::DoNotOptimize(stats.perf_results);
  }
}
BENCHMARK(BM_LoadSmgExecution_NoIndexes)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_LoadIrsExecution(benchmark::State& state) {
  // The Table-1 IRS shape (~1500 results/exec).
  util::TempDir workspace("load-irs");
  const auto ptdf_path = bench::makeIrsPtdf(workspace, sim::frostConfig(), 16, 3);
  for (auto _ : state) {
    bench::Store s = bench::Store::openMemory();
    const auto stats = ptdf::loadFile(*s.store, ptdf_path.string());
    benchmark::DoNotOptimize(stats.perf_results);
  }
}
BENCHMARK(BM_LoadIrsExecution)->Unit(benchmark::kMillisecond);

void BM_LoadIntoPopulatedStore(benchmark::State& state) {
  // Marginal cost of one more execution when the store already holds many —
  // the scalability concern the paper flags.
  util::TempDir workspace("load-marginal");
  const int preload = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    bench::Store s = bench::Store::openMemory();
    for (int i = 0; i < preload; ++i) {
      const auto path = bench::makeIrsPtdf(workspace, sim::frostConfig(), 16,
                                           static_cast<std::uint64_t>(100 + i));
      ptdf::loadFile(*s.store, path.string());
    }
    const auto fresh = bench::makeIrsPtdf(workspace, sim::frostConfig(), 16, 999);
    state.ResumeTiming();
    const auto stats = ptdf::loadFile(*s.store, fresh.string());
    benchmark::DoNotOptimize(stats.perf_results);
  }
}
BENCHMARK(BM_LoadIntoPopulatedStore)->Arg(0)->Arg(4)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
