// Observability overhead ablation: what does per-query instrumentation cost?
//
// DESIGN.md §5.5 budgets the tracing hot path (stage-timer clock reads plus
// one ring-buffer record per query) at under 2% of a point-SELECT. This
// bench runs the cheapest query the engine serves — a prepared primary-key
// probe that hits the plan cache and touches one index leaf — and A/Bs it
// with obs::setEnabled(false) vs (true). Rounds are interleaved so clock
// drift and cache warmth hit both arms equally. Counters are not part of
// the ablation: they are unconditional relaxed atomic adds (cheaper than
// the branch that would skip them) and are priced into both arms.
//
// PT_OBS_JSON=<path>: also emit the result as JSON for
// scripts/bench_smoke.sh and before/after comparisons.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "dbal/connection.h"
#include "obs/metrics.h"
#include "util/tempdir.h"
#include "util/timer.h"

using namespace perftrack;

namespace {

constexpr std::int64_t kTableRows = 10000;
constexpr int kWarmupQueries = 5000;
constexpr int kQueriesPerRound = 6000;
constexpr int kRounds = 24;  // per arm; interleaved off/on

const char* kPoint = "SELECT v FROM kv WHERE id = ?";

/// One timed burst of point SELECTs; returns seconds for the whole burst.
double burst(dbal::Connection& conn, int queries) {
  util::Timer timer;
  std::int64_t checksum = 0;
  for (int i = 0; i < queries; ++i) {
    const std::int64_t id = 1 + (static_cast<std::int64_t>(i) * 7919) % kTableRows;
    const auto rs = conn.execPrepared(kPoint, {minidb::Value(id)});
    if (!rs.rows.empty()) checksum += rs.rows[0][0].asInt();
  }
  const double s = timer.elapsedSeconds();
  if (checksum < 0) std::printf("impossible\n");  // keep the loop observable
  return s;
}

}  // namespace

int main() {
  util::TempDir dir("pt_bench_obs");
  minidb::OpenOptions options;
  options.durability = minidb::Durability::None;  // load speed, not the subject
  auto conn = dbal::Connection::open(dir.file("bench.db").string(), options);
  conn->exec("CREATE TABLE kv (id INTEGER PRIMARY KEY, v INTEGER)");
  conn->begin();
  for (std::int64_t i = 0; i < kTableRows; ++i) {
    conn->execPrepared("INSERT INTO kv (id, v) VALUES (?, ?)",
                       {minidb::Value(i + 1), minidb::Value(i * 3)});
  }
  conn->commit();

  // Warm the plan cache, the pager, and the branch predictors before either
  // arm is timed.
  obs::setEnabled(true);
  burst(*conn, kWarmupQueries);

  // Each round times the two arms back to back, so a round's on/off ratio
  // sees the same machine state; the median ratio across rounds then drops
  // the rounds a scheduler or frequency wobble disturbed. (Min-of-rounds
  // per arm compares timings taken seconds apart and still drifts.)
  std::vector<double> off_round_s(kRounds);
  std::vector<double> on_round_s(kRounds);
  for (int round = 0; round < kRounds; ++round) {
    obs::setEnabled(false);
    off_round_s[static_cast<std::size_t>(round)] = burst(*conn, kQueriesPerRound);
    obs::setEnabled(true);
    on_round_s[static_cast<std::size_t>(round)] = burst(*conn, kQueriesPerRound);
  }
  obs::setEnabled(true);  // leave the process in the default state

  std::vector<double> ratios(kRounds);
  for (int i = 0; i < kRounds; ++i) {
    ratios[static_cast<std::size_t>(i)] =
        on_round_s[static_cast<std::size_t>(i)] / off_round_s[static_cast<std::size_t>(i)];
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
  };
  const double total = static_cast<double>(kRounds) * kQueriesPerRound;
  const double off_ns = 1e9 * median(off_round_s) / kQueriesPerRound;
  const double on_ns = 1e9 * median(on_round_s) / kQueriesPerRound;
  const double overhead_pct = 100.0 * (median(ratios) - 1.0);

  std::printf("%-16s %12s %16s\n", "arm", "queries", "median ns/query");
  std::printf("%-16s %12.0f %16.1f\n", "tracing off", total, off_ns);
  std::printf("%-16s %12.0f %16.1f\n", "tracing on", total, on_ns);
  std::printf("overhead: %.2f%% (budget < 2%%) -> %s\n", overhead_pct,
              overhead_pct < 2.0 ? "within budget" : "OVER BUDGET");

  if (const char* json = std::getenv("PT_OBS_JSON")) {
    std::ofstream out(json);
    out << "[\n  {\"workload\": \"point_select\", \"table_rows\": " << kTableRows
        << ", \"queries_per_arm\": " << static_cast<std::int64_t>(total)
        << ", \"off_ns_per_query\": " << off_ns
        << ", \"on_ns_per_query\": " << on_ns
        << ", \"overhead_pct\": " << overhead_pct
        << ", \"budget_pct\": 2.0}\n]\n";
    std::printf("wrote %s\n", json);
  }
  obs::writeSnapshotIfRequested();
  return 0;
}
