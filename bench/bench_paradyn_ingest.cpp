// §4.3 reproduction: Paradyn session ingest at the paper's scale.
//
// "Each of these had approximately 17,000 resources, 8 metrics, and 25,000
// performance results. The number of resources and performance results
// differed for each of the executions" because dynamic instrumentation
// starts at different times (leading 'nan' bins are skipped). This bench
// converts and loads Paradyn exports and prints per-execution counts; the
// default scale is reduced (PT_PARADYN_SCALE=full restores the paper's).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "bench_util.h"
#include "sim/paradyn_gen.h"
#include "tools/paradyn_parser.h"
#include "util/timer.h"

using namespace perftrack;

int main() {
  const bool full = std::getenv("PT_PARADYN_SCALE") != nullptr &&
                    std::string(std::getenv("PT_PARADYN_SCALE")) == "full";
  bench::Store s = bench::Store::openMemory();
  util::TempDir workspace("paradyn-bench");

  std::printf("Paradyn ingest (3 IRS executions on MCR, as in §4.3)\n");
  // res(file) counts Resource records in the execution's PTdf (the paper's
  // per-execution number); res(new) is the store delta after deduplicating
  // code resources shared between executions of the same binary.
  std::printf("%-28s %10s %9s %9s %9s %9s %8s\n", "execution", "res(file)", "res(new)",
              "metrics", "results", "PTdf-ln", "load-s");
  for (int seed = 1; seed <= 3; ++seed) {
    sim::ParadynRunSpec spec;
    spec.machine = sim::mcrConfig();
    spec.nprocs = 8;
    spec.seed = static_cast<std::uint64_t>(seed);
    if (full) {
      spec.metric_focus_pairs = 25;
      spec.histogram_bins = 1000;
      spec.code_resources = 16000;
    } else {
      spec.metric_focus_pairs = 25;
      spec.histogram_bins = 200;
      spec.code_resources = 2000;
    }
    const auto dir = workspace.file("session" + std::to_string(seed));
    const sim::GeneratedRun run = sim::generateParadynRun(spec, dir);

    const auto ptdf_path = workspace.file(run.exec_name + ".ptdf");
    std::ofstream out(ptdf_path);
    ptdf::Writer writer(out);
    tools::convertParadynRun(dir, run.exec_name, "IRS", writer);
    out.close();

    const auto before = s.store->stats();
    util::Timer timer;
    const auto load = ptdf::loadFile(*s.store, ptdf_path.string());
    const double seconds = timer.elapsedSeconds();
    const auto after = s.store->stats();
    std::printf("%-28s %10zu %9lld %9lld %9lld %9zu %8.2f\n", run.exec_name.c_str(),
                load.resources,
                static_cast<long long>(after.resources - before.resources),
                static_cast<long long>(after.metrics - before.metrics),
                static_cast<long long>(after.performance_results -
                                       before.performance_results),
                load.lines, seconds);
  }
  std::printf("\npaper scale per execution: ~17,000 resources, 8 metrics, ~25,000 "
              "results (set PT_PARADYN_SCALE=full)\n");
  std::printf("result counts differ between executions because leading 'nan' bins "
              "(late instrumentation) are skipped\n");

  // --- ablation: per-bin results vs complex histogram results (§6) ----------
  // "we plan to explore complex performance results ... to avoid creating a
  // new performance result for each bin in a Paradyn histogram file."
  std::printf("\nablation: per-bin results vs histogram (complex) results, one "
              "session\n");
  std::printf("%-12s %9s %9s %13s %8s\n", "mode", "results", "foci", "DB growth",
              "load-s");
  for (const auto mode : {tools::BinMode::PerBinResults,
                          tools::BinMode::HistogramResults}) {
    sim::ParadynRunSpec spec;
    spec.machine = sim::mcrConfig();
    spec.nprocs = 8;
    spec.seed = 77;
    spec.metric_focus_pairs = 25;
    spec.histogram_bins = full ? 1000 : 200;
    spec.code_resources = 500;
    const auto dir = workspace.file(mode == tools::BinMode::PerBinResults
                                        ? "ablate-perbin"
                                        : "ablate-hist");
    const sim::GeneratedRun run = sim::generateParadynRun(spec, dir);
    const auto ptdf_path = workspace.file(run.exec_name + "-ablate.ptdf");
    std::ofstream out(ptdf_path);
    ptdf::Writer writer(out);
    tools::convertParadynRun(dir, run.exec_name + "-ab", "IRS-ablate", writer, mode);
    out.close();

    bench::Store fresh = bench::Store::openMemory();
    const auto before = fresh.store->stats();
    util::Timer timer;
    ptdf::loadFile(*fresh.store, ptdf_path.string());
    const double seconds = timer.elapsedSeconds();
    const auto after = fresh.store->stats();
    std::printf("%-12s %9lld %9lld %10.2f MB %8.2f\n",
                mode == tools::BinMode::PerBinResults ? "per-bin" : "histogram",
                static_cast<long long>(after.performance_results -
                                       before.performance_results),
                static_cast<long long>(after.foci - before.foci),
                static_cast<double>(after.size_bytes - before.size_bytes) /
                    (1024.0 * 1024.0),
                seconds);
  }
  std::printf("expected shape: histogram mode stores ~25 results instead of "
              "thousands, with fewer foci and faster loads, at the cost of bin "
              "rows living outside the pr-filter context model\n");
  return 0;
}
