// §6 extension: performance predictions vs actual runs.
//
// The paper's future work plans "the incorporation of performance
// predictions and models into PerfTrack for direct comparison to actual
// program runs" (its §4.2 dataset came from the Ipek et al. prediction
// study). This bench exercises our implementation of that extension:
// predict IRS at higher process counts from an np=8 baseline with two
// models (ideal linear, Amdahl), compare each prediction against the
// measured run through the standard comparison operators, and report the
// mean relative error per model.
//
// Expected shape: the Amdahl model tracks measurements more closely than
// ideal linear scaling, and both models degrade as the extrapolation
// distance (and the machine's OS-noise contribution) grows.
#include <cmath>
#include <cstdio>

#include "analyze/predict.h"
#include "bench_util.h"

using namespace perftrack;

namespace {

double meanAbsRelativeError(const analyze::ComparisonReport& report) {
  double total = 0.0;
  std::size_t counted = 0;
  for (const analyze::ComparisonRow& row : report.rows) {
    if (row.metric.find("time") == std::string::npos) continue;  // time metrics only
    if (row.value_b == 0.0) continue;
    total += std::abs(row.value_a - row.value_b) / row.value_b;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

}  // namespace

int main() {
  util::TempDir workspace("prediction");
  bench::Store s = bench::Store::openMemory();
  // Measured IRS runs on Frost at 8..64 processes (same seed: same binary,
  // same inputs — only the process count varies).
  for (int nprocs : {8, 16, 32, 64}) {
    const auto ptdf_path = bench::makeIrsPtdf(workspace, sim::frostConfig(), nprocs, 21);
    ptdf::loadFile(*s.store, ptdf_path.string());
  }
  const std::string base = "irs-frost-np8-s21";

  std::printf("prediction error vs measured IRS runs (baseline %s)\n", base.c_str());
  std::printf("%-8s %18s %18s\n", "target", "linear model", "Amdahl(s=0.01)");
  for (int target : {16, 32, 64}) {
    const std::string actual = "irs-frost-np" + std::to_string(target) + "-s21";
    const auto linear = analyze::predictionError(
        *s.store, base, actual, target, analyze::linearScalingModel(), "linear");
    const auto amdahl = analyze::predictionError(
        *s.store, base, actual, target, analyze::amdahlScalingModel(0.01), "amdahl");
    std::printf("np=%-5d %17.1f%% %17.1f%%  (%zu matched results)\n", target,
                100.0 * meanAbsRelativeError(linear),
                100.0 * meanAbsRelativeError(amdahl), linear.rows.size());
  }
  std::printf("\nexpected shape: error grows with extrapolation distance; the Amdahl "
              "model stays at or below the linear model\n");
  return 0;
}
