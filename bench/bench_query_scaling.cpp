// §2.2 query-cost study + the DESIGN.md §5 closure-table ablation.
//
// The paper adds resource_has_ancestor/resource_has_descendant "to avoid
// needing to traverse the resource hierarchy and follow the chain of
// parent_id's". This benchmark measures pr-filter evaluation with
// descendant expansion done two ways:
//   * via the closure table (production path),
//   * via recursive parent-chain traversal (the design the paper avoided),
// across store sizes, plus query latency as a function of filter
// selectivity. Expected shape: closure lookups scale with the subtree size
// only; parent-chain traversal pays one indexed query per tree node and
// falls behind as the hierarchy grows.
#include <benchmark/benchmark.h>

#include <functional>

#include "bench_util.h"
#include "core/filter.h"

using namespace perftrack;

namespace {

bench::Store& storeOfSize(int executions) {
  static std::map<int, bench::Store> stores;
  auto it = stores.find(executions);
  if (it == stores.end()) {
    it = stores.emplace(executions, bench::irsStore(executions, 16)).first;
  }
  return it->second;
}

/// Descendant expansion by walking children recursively (ablation arm).
std::vector<core::ResourceId> descendantsByParentChain(core::PTDataStore& store,
                                                       core::ResourceId root) {
  std::vector<core::ResourceId> out;
  std::function<void(core::ResourceId)> walk = [&](core::ResourceId id) {
    for (const core::ResourceInfo& child : store.childrenOf(id)) {
      out.push_back(child.id);
      walk(child.id);
    }
  };
  walk(root);
  return out;
}

void BM_DescendantsViaClosureTable(benchmark::State& state) {
  auto& s = storeOfSize(static_cast<int>(state.range(0)));
  const auto root = s.store->findResource("/SingleMachineFrost/Frost").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.store->descendantsOf(root));
  }
}
BENCHMARK(BM_DescendantsViaClosureTable)->Arg(2)->Arg(8);

void BM_DescendantsViaParentChain(benchmark::State& state) {
  auto& s = storeOfSize(static_cast<int>(state.range(0)));
  const auto root = s.store->findResource("/SingleMachineFrost/Frost").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(descendantsByParentChain(*s.store, root));
  }
}
BENCHMARK(BM_DescendantsViaParentChain)->Arg(2)->Arg(8);

void BM_PrFilterQuery_Narrow(benchmark::State& state) {
  // One function: high selectivity.
  auto& s = storeOfSize(static_cast<int>(state.range(0)));
  core::PrFilter filter;
  filter.families.push_back(
      core::ResourceFilter::byName("/IRS-1.4/irscg.c/cgsolve", core::Expansion::None));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::queryResults(*s.store, filter));
  }
}
BENCHMARK(BM_PrFilterQuery_Narrow)->Arg(2)->Arg(8);

void BM_PrFilterQuery_Broad(benchmark::State& state) {
  // The whole machine subtree: low selectivity.
  auto& s = storeOfSize(static_cast<int>(state.range(0)));
  core::PrFilter filter;
  filter.families.push_back(
      core::ResourceFilter::byName("Frost", core::Expansion::Descendants));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::queryResults(*s.store, filter));
  }
}
BENCHMARK(BM_PrFilterQuery_Broad)->Arg(2)->Arg(8);

void BM_PrFilterQuery_Intersection(benchmark::State& state) {
  // Two families: machine subtree AND one function.
  auto& s = storeOfSize(static_cast<int>(state.range(0)));
  core::PrFilter filter;
  filter.families.push_back(
      core::ResourceFilter::byName("Frost", core::Expansion::Descendants));
  filter.families.push_back(
      core::ResourceFilter::byName("/IRS-1.4/irscg.c/cgsolve", core::Expansion::None));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::queryResults(*s.store, filter));
  }
}
BENCHMARK(BM_PrFilterQuery_Intersection)->Arg(2)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
