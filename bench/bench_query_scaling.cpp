// §2.2 query-cost study + the DESIGN.md §5 closure-table ablation.
//
// The paper adds resource_has_ancestor/resource_has_descendant "to avoid
// needing to traverse the resource hierarchy and follow the chain of
// parent_id's". This benchmark measures pr-filter evaluation with
// descendant expansion done two ways:
//   * via the closure table (production path),
//   * via recursive parent-chain traversal (the design the paper avoided),
// across store sizes, plus query latency as a function of filter
// selectivity. Expected shape: closure lookups scale with the subtree size
// only; parent-chain traversal pays one indexed query per tree node and
// falls behind as the hierarchy grows.
//
// The _Threads benchmarks at the bottom sweep the morsel-parallel degree
// {1,2,4,8} over a large synthetic aggregate (DESIGN.md §5.6) and record a
// `threads` counter per run, so BENCH_query_scaling.json carries the full
// per-degree timing matrix rather than a single-run median.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <functional>

#include "bench_util.h"
#include "core/filter.h"
#include "minidb/database.h"
#include "minidb/sql/executor.h"
#include "obs/metrics.h"

using namespace perftrack;

namespace {

bench::Store& storeOfSize(int executions) {
  static std::map<int, bench::Store> stores;
  auto it = stores.find(executions);
  if (it == stores.end()) {
    it = stores.emplace(executions, bench::irsStore(executions, 16)).first;
  }
  return it->second;
}

/// Descendant expansion by walking children recursively (ablation arm).
std::vector<core::ResourceId> descendantsByParentChain(core::PTDataStore& store,
                                                       core::ResourceId root) {
  std::vector<core::ResourceId> out;
  std::function<void(core::ResourceId)> walk = [&](core::ResourceId id) {
    for (const core::ResourceInfo& child : store.childrenOf(id)) {
      out.push_back(child.id);
      walk(child.id);
    }
  };
  walk(root);
  return out;
}

void BM_DescendantsViaClosureTable(benchmark::State& state) {
  auto& s = storeOfSize(static_cast<int>(state.range(0)));
  const auto root = s.store->findResource("/SingleMachineFrost/Frost").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.store->descendantsOf(root));
  }
}
BENCHMARK(BM_DescendantsViaClosureTable)->Arg(2)->Arg(8);

void BM_DescendantsViaParentChain(benchmark::State& state) {
  auto& s = storeOfSize(static_cast<int>(state.range(0)));
  const auto root = s.store->findResource("/SingleMachineFrost/Frost").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(descendantsByParentChain(*s.store, root));
  }
}
BENCHMARK(BM_DescendantsViaParentChain)->Arg(2)->Arg(8);

void BM_PrFilterQuery_Narrow(benchmark::State& state) {
  // One function: high selectivity.
  auto& s = storeOfSize(static_cast<int>(state.range(0)));
  core::PrFilter filter;
  filter.families.push_back(
      core::ResourceFilter::byName("/IRS-1.4/irscg.c/cgsolve", core::Expansion::None));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::queryResults(*s.store, filter));
  }
}
BENCHMARK(BM_PrFilterQuery_Narrow)->Arg(2)->Arg(8);

void BM_PrFilterQuery_Broad(benchmark::State& state) {
  // The whole machine subtree: low selectivity.
  auto& s = storeOfSize(static_cast<int>(state.range(0)));
  core::PrFilter filter;
  filter.families.push_back(
      core::ResourceFilter::byName("Frost", core::Expansion::Descendants));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::queryResults(*s.store, filter));
  }
}
BENCHMARK(BM_PrFilterQuery_Broad)->Arg(2)->Arg(8);

void BM_PrFilterQuery_Intersection(benchmark::State& state) {
  // Two families: machine subtree AND one function.
  auto& s = storeOfSize(static_cast<int>(state.range(0)));
  core::PrFilter filter;
  filter.families.push_back(
      core::ResourceFilter::byName("Frost", core::Expansion::Descendants));
  filter.families.push_back(
      core::ResourceFilter::byName("/IRS-1.4/irscg.c/cgsolve", core::Expansion::None));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::queryResults(*s.store, filter));
  }
}
BENCHMARK(BM_PrFilterQuery_Intersection)->Arg(2)->Arg(8);

// --- morsel-parallel degree sweep -------------------------------------------
// Grouped aggregates and top-K over a wide synthetic scan, at degrees
// {1,2,4,8}. Default table size is 1M rows (the acceptance sweep);
// PT_SCALING_ROWS shrinks it for smoke runs. Degree 1 takes exactly the
// serial pipeline, so the Arg(1) rows double as the pre-parallel baseline.

struct ScanFixture {
  std::unique_ptr<minidb::Database> db;
  std::unique_ptr<minidb::sql::Engine> sql;
  long rows = 0;
};

ScanFixture& scanFixture() {
  static ScanFixture f = [] {
    ScanFixture s;
    s.rows = 1'000'000;
    if (const char* env = std::getenv("PT_SCALING_ROWS")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n > 0) s.rows = n;
    }
    s.db = minidb::Database::openMemory();
    s.sql = std::make_unique<minidb::sql::Engine>(*s.db);
    s.sql->exec(
        "CREATE TABLE scan_t (id INTEGER PRIMARY KEY, grp INTEGER, val INTEGER)");
    std::string insert;
    for (long i = 0; i < s.rows; ++i) {
      insert += insert.empty() ? "INSERT INTO scan_t (grp, val) VALUES " : ",";
      insert += "(" + std::to_string(i % 64) + "," + std::to_string(i % 1000) + ")";
      if (insert.size() > 200000) {
        s.sql->exec(insert);
        insert.clear();
      }
    }
    if (!insert.empty()) s.sql->exec(insert);
    return s;
  }();
  return f;
}

void BM_GroupedAggregate_Threads(benchmark::State& state) {
  auto& f = scanFixture();
  const int threads = static_cast<int>(state.range(0));
  f.sql->setExecThreads(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sql->exec(
        "SELECT grp, COUNT(*), SUM(val), MIN(val), MAX(val) "
        "FROM scan_t GROUP BY grp"));
  }
  state.counters["threads"] = threads;
  state.counters["rows"] = static_cast<double>(f.rows);
  state.SetItemsProcessed(state.iterations() * f.rows);
  f.sql->setExecThreads(1);
}
BENCHMARK(BM_GroupedAggregate_Threads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// --- vectorized batch-size sweep --------------------------------------------
// The same grouped aggregate and a filtered scan at batch sizes
// {64,256,1024,4096}, serial degree so the sweep isolates the batch-size
// knob from the parallel one. A `batch_rows` counter lands in
// BENCH_query_scaling.json next to `threads`, so the JSON carries both
// sweep matrices.

void BM_GroupedAggregate_BatchRows(benchmark::State& state) {
  auto& f = scanFixture();
  const auto batch_rows = static_cast<std::size_t>(state.range(0));
  f.sql->setExecThreads(1);
  f.sql->setExecBatchRows(batch_rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sql->exec(
        "SELECT grp, COUNT(*), SUM(val), MIN(val), MAX(val) "
        "FROM scan_t GROUP BY grp"));
  }
  state.counters["batch_rows"] = static_cast<double>(batch_rows);
  state.counters["rows"] = static_cast<double>(f.rows);
  state.SetItemsProcessed(state.iterations() * f.rows);
  f.sql->setExecBatchRows(1024);
}
BENCHMARK(BM_GroupedAggregate_BatchRows)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_FilteredScan_BatchRows(benchmark::State& state) {
  auto& f = scanFixture();
  const auto batch_rows = static_cast<std::size_t>(state.range(0));
  f.sql->setExecThreads(1);
  f.sql->setExecBatchRows(batch_rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.sql->exec("SELECT id, val FROM scan_t WHERE grp < 8 AND val < 500"));
  }
  state.counters["batch_rows"] = static_cast<double>(batch_rows);
  state.counters["rows"] = static_cast<double>(f.rows);
  state.SetItemsProcessed(state.iterations() * f.rows);
  f.sql->setExecBatchRows(1024);
}
BENCHMARK(BM_FilteredScan_BatchRows)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_TopK_Threads(benchmark::State& state) {
  auto& f = scanFixture();
  const int threads = static_cast<int>(state.range(0));
  f.sql->setExecThreads(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sql->exec(
        "SELECT id, val FROM scan_t WHERE grp < 32 "
        "ORDER BY val DESC, id LIMIT 25"));
  }
  state.counters["threads"] = threads;
  state.counters["rows"] = static_cast<double>(f.rows);
  state.SetItemsProcessed(state.iterations() * f.rows);
  f.sql->setExecThreads(1);
}
BENCHMARK(BM_TopK_Threads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so the run can leave a metrics snapshot next
// to its JSON output (PT_METRICS_SNAPSHOT, scripts/bench_smoke.sh).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  obs::writeSnapshotIfRequested();
  return 0;
}
