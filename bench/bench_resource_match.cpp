// Resource-matcher ablation: legacy SQL pr-filter vs the inverted-index
// fast path (src/minidb/invidx/).
//
// Builds a wide matching problem — PT_MATCH_FAMILIES resource families of
// PT_MATCH_RES resources each over PT_MATCH_FOCI foci (defaults 8 x 2000 x
// 100000; every even focus touches all families, odd foci only half) — and
// runs the same pr-filter both ways with core::matchResults /
// matchResultCount / matchResultsTopK, toggling the path per run with
// dbal::Connection::setInvidxEnabled. The first inverted-index run is
// reported separately (phase "match_first") because it pays the posting
// build; every later run hits the cached indexes. Count and top-K are where
// early termination shows: the fast path popcounts a bitmap / stops the
// posting merge at k, while the legacy path has no shortcut and must
// materialize everything.
//
// PT_RESOURCE_MATCH_JSON=<path>: emit the cells as JSON (one object per
// phase x mode) for scripts/bench_smoke.sh; invidx rows carry
// `speedup` = legacy_ms / invidx_ms for the same phase.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/datastore.h"
#include "core/filter.h"
#include "dbal/connection.h"
#include "obs/metrics.h"
#include "util/timer.h"

using namespace perftrack;

namespace {

std::int64_t envInt(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoll(v) : fallback;
}

struct Cell {
  std::string phase;
  std::string mode;  // "legacy" | "invidx"
  std::int64_t families = 0;
  std::int64_t foci = 0;
  std::int64_t results = 0;
  double ms = 0.0;
  double speedup = 0.0;  // legacy_ms / ms, invidx rows only
};

/// Best-of-two wall time of fn(); fn's return size lands in *results.
template <typename Fn>
double timeBest(Fn&& fn, std::int64_t* results) {
  double best = 0.0;
  for (int rep = 0; rep < 2; ++rep) {
    util::Timer timer;
    *results = fn();
    const double ms = 1e3 * timer.elapsedSeconds();
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

void writeJson(const std::string& path, const std::vector<Cell>& cells) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (!out) return;
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(out,
                 "  {\"phase\": \"%s\", \"mode\": \"%s\", \"families\": %lld, "
                 "\"foci\": %lld, \"results\": %lld, \"ms\": %.3f, "
                 "\"speedup\": %.2f}%s\n",
                 c.phase.c_str(), c.mode.c_str(),
                 static_cast<long long>(c.families),
                 static_cast<long long>(c.foci),
                 static_cast<long long>(c.results), c.ms, c.speedup,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
}

}  // namespace

int main() {
  const std::int64_t n_families = envInt("PT_MATCH_FAMILIES", 8);
  const std::int64_t res_per_family = envInt("PT_MATCH_RES", 2000);
  const std::int64_t n_foci = envInt("PT_MATCH_FOCI", 100000);

  auto conn = dbal::Connection::open(":memory:");
  core::PTDataStore store(*conn);
  store.initialize();

  // Family j owns resource ids [j*res_per_family+1, (j+1)*res_per_family].
  // Even foci touch one resource of every family; odd foci only the first
  // half, so exactly the even foci (and their results) match the wide
  // filter. Results map 1:1 to foci (result id == focus id).
  conn->begin();
  const char* ins_fhr =
      "INSERT INTO focus_has_resource (focus_id, resource_id, focus_type) "
      "VALUES (?, ?, 'primary')";
  const char* ins_prhf =
      "INSERT INTO performance_result_has_focus (result_id, focus_id) "
      "VALUES (?, ?)";
  const char* ins_pr =
      "INSERT INTO performance_result (id, execution_id, metric_id, "
      "performance_tool_id, value, units) VALUES (?, 1, 1, 1, ?, 's')";
  for (std::int64_t f = 1; f <= n_foci; ++f) {
    const std::int64_t touched = (f % 2 == 0) ? n_families : n_families / 2;
    for (std::int64_t j = 0; j < touched; ++j) {
      const std::int64_t rid = j * res_per_family + 1 + (f % res_per_family);
      conn->execPrepared(ins_fhr, {minidb::Value(f), minidb::Value(rid)});
    }
    conn->execPrepared(ins_pr, {minidb::Value(f), minidb::Value(f * 0.5)});
    conn->execPrepared(ins_prhf, {minidb::Value(f), minidb::Value(f)});
  }
  conn->commit();

  std::vector<std::vector<core::ResourceId>> families(
      static_cast<std::size_t>(n_families));
  for (std::int64_t j = 0; j < n_families; ++j) {
    for (std::int64_t r = 1; r <= res_per_family; ++r) {
      families[static_cast<std::size_t>(j)].push_back(j * res_per_family + r);
    }
  }

  std::vector<Cell> cells;
  auto add = [&](const std::string& phase, const std::string& mode, double ms,
                 std::int64_t results) -> Cell& {
    Cell c;
    c.phase = phase;
    c.mode = mode;
    c.families = n_families;
    c.foci = n_foci;
    c.results = results;
    c.ms = ms;
    cells.push_back(c);
    return cells.back();
  };

  std::printf("%-12s %-8s %10s %10s %10s %12s %9s\n", "phase", "mode",
              "families", "foci", "results", "ms", "speedup");
  auto print = [&](const Cell& c) {
    std::printf("%-12s %-8s %10lld %10lld %10lld %12.3f %9.2f\n",
                c.phase.c_str(), c.mode.c_str(),
                static_cast<long long>(c.families),
                static_cast<long long>(c.foci),
                static_cast<long long>(c.results), c.ms, c.speedup);
  };

  // Cold inverted-index run: pays the posting-list builds.
  {
    std::int64_t n = 0;
    conn->setInvidxEnabled(true);
    util::Timer timer;
    n = static_cast<std::int64_t>(core::matchResults(store, families).size());
    print(add("match_first", "invidx", 1e3 * timer.elapsedSeconds(), n));
  }

  struct Phase {
    const char* name;
    std::int64_t (*run)(core::PTDataStore&,
                        const std::vector<std::vector<core::ResourceId>>&);
  };
  const Phase phases[] = {
      {"match",
       [](core::PTDataStore& s, const std::vector<std::vector<core::ResourceId>>& f) {
         return static_cast<std::int64_t>(core::matchResults(s, f).size());
       }},
      {"count",
       [](core::PTDataStore& s, const std::vector<std::vector<core::ResourceId>>& f) {
         return static_cast<std::int64_t>(core::matchResultCount(s, f));
       }},
      {"topk10",
       [](core::PTDataStore& s, const std::vector<std::vector<core::ResourceId>>& f) {
         return static_cast<std::int64_t>(core::matchResultsTopK(s, f, 10).size());
       }},
  };
  for (const Phase& phase : phases) {
    std::int64_t legacy_n = 0, fast_n = 0;
    conn->setInvidxEnabled(false);
    const double legacy_ms =
        timeBest([&] { return phase.run(store, families); }, &legacy_n);
    conn->setInvidxEnabled(true);
    const double fast_ms =
        timeBest([&] { return phase.run(store, families); }, &fast_n);
    if (legacy_n != fast_n) {
      std::fprintf(stderr, "bench_resource_match: %s disagrees (%lld vs %lld)\n",
                   phase.name, static_cast<long long>(legacy_n),
                   static_cast<long long>(fast_n));
      return 1;
    }
    print(add(phase.name, "legacy", legacy_ms, legacy_n));
    Cell& fast = add(phase.name, "invidx", fast_ms, fast_n);
    fast.speedup = fast_ms > 0.0 ? legacy_ms / fast_ms : 0.0;
    print(fast);
  }

  if (const char* json = std::getenv("PT_RESOURCE_MATCH_JSON")) {
    writeJson(json, cells);
    std::printf("wrote %s\n", json);
  }
  obs::writeSnapshotIfRequested();
  return 0;
}
