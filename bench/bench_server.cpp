// ptserverd concurrency bench: what does the daemon cost, and does it scale?
//
// Spins up an in-process PtServer over an in-memory store preloaded with a
// result table, then drives it with N concurrent clients (N = 1, 4, 8), each
// running a loop of point SELECTs (one prepared roundtrip per request) for a
// fixed wall-clock budget. Reports aggregate throughput and client-observed
// p50/p99 request latency per client count, plus one streaming row for a
// full-table scan (rows/s through FETCH batches). A flat p50 and rising
// aggregate throughput as N grows is the shared-read-gate claim (DESIGN.md
// §5.4) in numbers; p99 shows the queueing tail.
//
// A second sweep runs the same point-SELECT loop against a file-backed
// store while one writer client commits a fat UPDATE in a loop, once under
// --durability=full and once under --durability=wal. In full mode every
// commit takes the exclusive gate, so readers stall (BUSY + retry) behind
// it; in WAL mode readers stream pinned snapshots and never wait for the
// committing writer (DESIGN.md §5.7). The reader p99 gap between the two
// rows is the point of the WAL.
//
// PT_SERVER_JSON=<path>: also emit the cells as JSON (one object per row)
// for scripts/bench_smoke.sh and before/after comparisons.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "dbal/connection.h"
#include "dbal/remote.h"
#include "minidb/database.h"
#include "minidb/sql/executor.h"
#include "obs/metrics.h"
#include "util/tempdir.h"
#include "server/server.h"
#include "util/timer.h"

using namespace perftrack;

namespace {

constexpr std::int64_t kTableRows = 20000;
constexpr auto kBudget = std::chrono::milliseconds(400);

struct Cell {
  std::string phase;
  int clients = 0;
  std::int64_t requests = 0;  // completed requests (or rows, for the scan)
  double seconds = 0.0;
  double throughput = 0.0;  // requests (rows) per second, all clients summed
  double p50_us = 0.0;
  double p99_us = 0.0;
};

double percentile(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  const auto nth = static_cast<std::ptrdiff_t>(p * (samples.size() - 1));
  std::nth_element(samples.begin(), samples.begin() + nth, samples.end());
  return samples[nth];
}

/// N clients, each looping a prepared point SELECT until the budget expires.
Cell runPointQueries(const std::string& url, int clients) {
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> total{0};
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  util::Timer timer;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto conn = dbal::Connection::open(url);
      // Deterministic per-client probe sequence; no shared RNG.
      std::int64_t key = 1 + c * 37;
      std::int64_t done = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        util::Timer rt;
        conn->queryValue("SELECT value FROM result WHERE id = ?",
                         {minidb::Value(key)});
        latencies[c].push_back(1e6 * rt.elapsedSeconds());
        key = 1 + (key * 31) % kTableRows;
        ++done;
      }
      total.fetch_add(done, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(kBudget);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  const double seconds = timer.elapsedSeconds();

  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  Cell cell;
  cell.phase = "point_select";
  cell.clients = clients;
  cell.requests = total.load();
  cell.seconds = seconds;
  cell.throughput = static_cast<double>(cell.requests) / seconds;
  cell.p50_us = percentile(all, 0.50);
  cell.p99_us = percentile(all, 0.99);
  return cell;
}

/// One client streaming the whole table through FETCH batches.
Cell runScan(const std::string& url) {
  auto conn = dbal::Connection::open(url);
  util::Timer timer;
  auto cur = conn->query("SELECT id, value FROM result");
  minidb::Row row;
  std::int64_t rows = 0;
  while (cur.next(row)) ++rows;
  Cell cell;
  cell.phase = "full_scan";
  cell.clients = 1;
  cell.requests = rows;
  cell.seconds = timer.elapsedSeconds();
  cell.throughput = static_cast<double>(rows) / cell.seconds;
  return cell;
}

/// Readers hammering point SELECTs while one writer loops committed fat
/// UPDATEs, on a file-backed store in the given durability mode. Reader
/// latencies include any BUSY-retry stalls — that is the measurement.
Cell runReadDuringCommit(minidb::Durability durability, const std::string& db_path,
                         int readers) {
  minidb::OpenOptions options;
  options.durability = durability;
  auto db = minidb::Database::open(db_path, options);
  {
    // Seed embedded (one fat transaction) — the wire path is autocommit
    // only and would pay a fsync per row.
    minidb::sql::Engine seed(*db);
    seed.exec("CREATE TABLE result (id INTEGER PRIMARY KEY, metric INTEGER, "
              "value REAL)");
    seed.exec("BEGIN");
    minidb::sql::PreparedStatement ins =
        seed.prepare("INSERT INTO result (metric, value) VALUES (?, ?)");
    for (std::int64_t i = 0; i < kTableRows; ++i) {
      ins.execute({minidb::Value(i % 13), minidb::Value(i * 0.25)});
    }
    seed.exec("COMMIT");
  }

  server::ServerConfig config;
  config.port = 0;
  config.workers = readers + 2;
  server::PtServer srv(*db, config);
  srv.start();
  const std::string url = "pt://127.0.0.1:" + std::to_string(srv.boundPort());

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> total{0};
  std::atomic<std::int64_t> commits{0};
  std::vector<std::vector<double>> latencies(readers);
  std::vector<std::thread> threads;
  util::Timer timer;
  threads.emplace_back([&] {  // the committing writer
    auto conn = dbal::Connection::open(url);
    while (!stop.load(std::memory_order_relaxed)) {
      try {
        conn->exec("UPDATE result SET value = value + 1 WHERE id <= 2000");
        commits.fetch_add(1, std::memory_order_relaxed);
      } catch (const dbal::ServerBusyError&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
  for (int c = 0; c < readers; ++c) {
    threads.emplace_back([&, c] {
      auto conn = dbal::Connection::open(url);
      std::int64_t key = 1 + c * 37;
      std::int64_t done = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        util::Timer rt;
        for (;;) {  // BUSY retries count toward this request's latency
          try {
            conn->queryValue("SELECT value FROM result WHERE id = ?",
                             {minidb::Value(key)});
            break;
          } catch (const dbal::ServerBusyError&) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
        latencies[c].push_back(1e6 * rt.elapsedSeconds());
        key = 1 + (key * 31) % kTableRows;
        ++done;
      }
      total.fetch_add(done, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(kBudget);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  const double seconds = timer.elapsedSeconds();
  srv.stop();

  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  Cell cell;
  cell.phase = std::string("read_during_commit_") +
               (durability == minidb::Durability::Wal ? "wal" : "full");
  cell.clients = readers;
  cell.requests = total.load();
  cell.seconds = seconds;
  cell.throughput = static_cast<double>(cell.requests) / seconds;
  cell.p50_us = percentile(all, 0.50);
  cell.p99_us = percentile(all, 0.99);
  std::printf("  (%s: writer landed %lld commits)\n", cell.phase.c_str(),
              static_cast<long long>(commits.load()));
  return cell;
}

void writeJson(const std::string& path, const std::vector<Cell>& cells) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "  {\"phase\": \"" << c.phase << "\", \"clients\": " << c.clients
        << ", \"requests\": " << c.requests << ", \"seconds\": " << c.seconds
        << ", \"per_second\": " << c.throughput << ", \"p50_us\": " << c.p50_us
        << ", \"p99_us\": " << c.p99_us << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main() {
  auto db = minidb::Database::openMemory();
  server::ServerConfig config;
  config.port = 0;  // ephemeral
  config.workers = 8;
  server::PtServer srv(*db, config);
  srv.start();
  const std::string url =
      "pt://127.0.0.1:" + std::to_string(srv.boundPort());

  {
    auto seed = dbal::Connection::open(url);
    seed->exec(
        "CREATE TABLE result (id INTEGER PRIMARY KEY, metric INTEGER, "
        "value REAL)");
    for (std::int64_t i = 0; i < kTableRows; ++i) {
      seed->execPrepared("INSERT INTO result (metric, value) VALUES (?, ?)",
                         {minidb::Value(i % 13), minidb::Value(i * 0.25)});
    }
  }

  std::vector<Cell> cells;
  std::printf("%-24s %8s %10s %10s %12s %10s %10s\n", "phase", "clients",
              "requests", "seconds", "per_second", "p50_us", "p99_us");
  for (const int clients : {1, 4, 8}) {
    cells.push_back(runPointQueries(url, clients));
  }
  cells.push_back(runScan(url));
  {
    // Snapshot reads vs the exclusive gate, under a committing writer.
    util::TempDir dir("pt_bench_srv");
    cells.push_back(runReadDuringCommit(minidb::Durability::Full,
                                        dir.file("full.db").string(), 4));
    cells.push_back(runReadDuringCommit(minidb::Durability::Wal,
                                        dir.file("wal.db").string(), 4));
  }
  for (const Cell& c : cells) {
    std::printf("%-24s %8d %10lld %10.3f %12.0f %10.1f %10.1f\n",
                c.phase.c_str(), c.clients, static_cast<long long>(c.requests),
                c.seconds, c.throughput, c.p50_us, c.p99_us);
  }

  if (const char* json = std::getenv("PT_SERVER_JSON")) {
    writeJson(json, cells);
    std::printf("wrote %s\n", json);
  }

  srv.stop();
  obs::writeSnapshotIfRequested();
  return 0;
}
