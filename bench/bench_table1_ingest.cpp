// Table 1 reproduction: "Statistics for raw data, PTdf, and data store."
//
// The paper loads three datasets and reports, per dataset: raw files and
// bytes per execution, resources / metrics / performance results per
// execution, PTdf files and lines, executions loaded, and the database size
// increase. We regenerate each dataset with the simulated machines (see
// DESIGN.md "Substitutions") at the paper's per-execution shape, load it,
// and print the same row layout. Executions-loaded counts are scaled down
// (PT_TABLE1_SCALE=full restores the paper's 62/35/60) so the default run
// finishes in well under a minute; per-execution numbers are scale-free.
//
// Expected shape vs the paper: SMG-UV rows dominate results/exec (~6.5x
// IRS), SMG-BG/L executions are tiny (8 results) but numerous, and DB
// growth ranks SMG-UV > SMG-BG/L(total) ~ IRS.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "sim/smg_gen.h"
#include "tools/smg_parser.h"
#include "util/timer.h"

using namespace perftrack;

namespace {

struct DatasetRow {
  std::string name;
  std::size_t files_per_exec = 0;
  std::uint64_t raw_bytes_per_exec = 0;
  std::int64_t resources = 0;  // per execution (first-load delta)
  std::int64_t metrics = 0;
  std::int64_t results_per_exec = 0;
  std::size_t ptdf_files = 0;
  std::size_t ptdf_lines = 0;
  int execs_loaded = 0;
  std::uint64_t db_growth = 0;
  double load_seconds = 0.0;
};

void printRow(const DatasetRow& row) {
  std::printf("%-10s %5zu %12llu %10lld %8lld %10lld %6zu /%9zu %7d %10.1f MB %8.1f s\n",
              row.name.c_str(), row.files_per_exec,
              static_cast<unsigned long long>(row.raw_bytes_per_exec),
              static_cast<long long>(row.resources),
              static_cast<long long>(row.metrics),
              static_cast<long long>(row.results_per_exec), row.ptdf_files,
              row.ptdf_lines, row.execs_loaded,
              static_cast<double>(row.db_growth) / (1024.0 * 1024.0),
              row.load_seconds);
}

/// PT_TABLE1_JSON=<path>: also emit the rows as a JSON array, one object per
/// dataset, for scripts/bench_smoke.sh and before/after comparisons.
void writeJson(const std::string& path, const std::vector<DatasetRow>& rows) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const DatasetRow& r = rows[i];
    out << "  {\"dataset\": \"" << r.name << "\", \"execs_loaded\": " << r.execs_loaded
        << ", \"results_per_exec\": " << r.results_per_exec
        << ", \"db_growth_bytes\": " << r.db_growth
        << ", \"load_seconds\": " << r.load_seconds << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main() {
  const bool full = std::getenv("PT_TABLE1_SCALE") != nullptr &&
                    std::string(std::getenv("PT_TABLE1_SCALE")) == "full";
  const int irs_execs = full ? 62 : 6;
  const int uv_execs = full ? 35 : 3;
  const int bgl_execs = full ? 60 : 12;

  bench::Store s = bench::Store::openMemory();
  util::TempDir workspace("table1");
  std::vector<DatasetRow> all_rows;

  std::printf("Table 1: statistics for raw data, PTdf, and data store\n");
  std::printf("%-10s %5s %12s %10s %8s %10s %6s /%9s %7s %13s %10s\n", "dataset",
              "files", "rawB/exec", "res/exec", "metrics", "results", "PTdfs", "lines",
              "execs", "DB growth", "load");

  // ---- IRS on Frost + MCR (case study 1) -----------------------------------
  {
    DatasetRow row;
    row.name = "IRS";
    const auto base_stats = s.store->stats();
    util::Timer timer;
    std::int64_t resources_first = 0;
    for (int i = 0; i < irs_execs; ++i) {
      const sim::MachineConfig machine =
          (i % 2 == 0) ? sim::frostConfig() : sim::mcrConfig();
      const auto dir = workspace.file("irs" + std::to_string(i));
      sim::IrsRunSpec spec{machine, 16, "MPI", static_cast<std::uint64_t>(i + 1), ""};
      const sim::GeneratedRun run = sim::generateIrsRun(spec, dir);
      row.files_per_exec = run.files.size();
      row.raw_bytes_per_exec = run.rawBytes();
      const auto ptdf_path = workspace.file(run.exec_name + ".ptdf");
      std::ofstream out(ptdf_path);
      ptdf::Writer writer(out);
      tools::convertIrsRun(dir, machine, writer);
      out.close();
      const auto before = s.store->stats();
      const auto load = ptdf::loadFile(*s.store, ptdf_path.string());
      const auto after = s.store->stats();
      if (i == 0) resources_first = after.resources - before.resources;
      row.ptdf_files += 1;
      row.ptdf_lines += load.lines;
      row.results_per_exec = after.performance_results - before.performance_results;
    }
    const auto end_stats = s.store->stats();
    row.resources = resources_first;
    row.metrics = end_stats.metrics - base_stats.metrics;
    row.execs_loaded = irs_execs;
    row.db_growth = end_stats.size_bytes - base_stats.size_bytes;
    row.load_seconds = timer.elapsedSeconds();
    printRow(row);
    all_rows.push_back(row);
  }

  // ---- SMG2000 on BG/L: standard output only (case study 2) -----------------
  {
    DatasetRow row;
    row.name = "SMG-BG/L";
    const auto base_stats = s.store->stats();
    util::Timer timer;
    std::int64_t resources_first = 0;
    for (int i = 0; i < bgl_execs; ++i) {
      sim::SmgRunSpec spec;
      spec.machine = sim::bglConfig();
      spec.nprocs = 512;
      spec.seed = static_cast<std::uint64_t>(i + 1);
      const auto dir = workspace.file("bgl" + std::to_string(i));
      const sim::GeneratedRun run = sim::generateSmgRun(spec, dir);
      row.files_per_exec = run.files.size();
      row.raw_bytes_per_exec = run.rawBytes();
      const auto ptdf_path = workspace.file(run.exec_name + ".ptdf");
      std::ofstream out(ptdf_path);
      ptdf::Writer writer(out);
      tools::convertSmgRun(dir, spec.machine, writer);
      out.close();
      const auto before = s.store->stats();
      const auto load = ptdf::loadFile(*s.store, ptdf_path.string());
      const auto after = s.store->stats();
      if (i == 0) resources_first = after.resources - before.resources;
      row.ptdf_files += 1;
      row.ptdf_lines += load.lines;
      row.results_per_exec = after.performance_results - before.performance_results;
    }
    const auto end_stats = s.store->stats();
    row.resources = resources_first;
    row.metrics = end_stats.metrics - base_stats.metrics;
    row.execs_loaded = bgl_execs;
    row.db_growth = end_stats.size_bytes - base_stats.size_bytes;
    row.load_seconds = timer.elapsedSeconds();
    printRow(row);
    all_rows.push_back(row);
  }

  // ---- SMG2000 on UV: benchmark + PMAPI + mpiP (case study 2) ---------------
  {
    DatasetRow row;
    row.name = "SMG-UV";
    const auto base_stats = s.store->stats();
    util::Timer timer;
    std::int64_t resources_first = 0;
    for (int i = 0; i < uv_execs; ++i) {
      sim::SmgRunSpec spec;
      spec.machine = sim::uvConfig();
      spec.nprocs = 128;
      spec.with_mpip = true;
      spec.with_pmapi = true;
      spec.seed = static_cast<std::uint64_t>(i + 1);
      const auto dir = workspace.file("uv" + std::to_string(i));
      const sim::GeneratedRun run = sim::generateSmgRun(spec, dir);
      row.files_per_exec = run.files.size();
      row.raw_bytes_per_exec = run.rawBytes();
      const auto ptdf_path = workspace.file(run.exec_name + ".ptdf");
      std::ofstream out(ptdf_path);
      ptdf::Writer writer(out);
      tools::convertSmgRun(dir, spec.machine, writer);
      out.close();
      const auto before = s.store->stats();
      const auto load = ptdf::loadFile(*s.store, ptdf_path.string());
      const auto after = s.store->stats();
      if (i == 0) resources_first = after.resources - before.resources;
      row.ptdf_files += 1;
      row.ptdf_lines += load.lines;
      row.results_per_exec = after.performance_results - before.performance_results;
    }
    const auto end_stats = s.store->stats();
    row.resources = resources_first;
    row.metrics = end_stats.metrics - base_stats.metrics;
    row.execs_loaded = uv_execs;
    row.db_growth = end_stats.size_bytes - base_stats.size_bytes;
    row.load_seconds = timer.elapsedSeconds();
    printRow(row);
    all_rows.push_back(row);
  }

  std::printf("\npaper values (per exec): IRS 6 files/61KB/280 res/25 metrics/1514 "
              "results; SMG-UV 2/191KB/5657/259/9777; SMG-BG/L 1/1KB/522/8/8\n");
  std::printf("set PT_TABLE1_SCALE=full for the paper's 62/35/60 execution counts\n");
  if (const char* json_path = std::getenv("PT_TABLE1_JSON")) {
    writeJson(json_path, all_rows);
  }
  obs::writeSnapshotIfRequested();
  return 0;
}
