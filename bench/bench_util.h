// Shared helpers for the PerfTrack benchmark harness.
//
// Each bench_* binary regenerates one table or figure of the paper (see
// DESIGN.md §4). Helpers here build populated stores of a given scale so
// google-benchmark loops and report-style mains share one code path.
#pragma once

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/datastore.h"
#include "dbal/connection.h"
#include "ptdf/ptdf.h"
#include "sim/irs_gen.h"
#include "tools/irs_parser.h"
#include "util/tempdir.h"

namespace perftrack::bench {

/// A store plus the connection that owns it.
struct Store {
  std::unique_ptr<dbal::Connection> conn;
  std::unique_ptr<core::PTDataStore> store;

  static Store openMemory() {
    Store s;
    s.conn = dbal::Connection::open(":memory:");
    s.store = std::make_unique<core::PTDataStore>(*s.conn);
    s.store->initialize();
    return s;
  }
};

/// Generates one IRS run, converts it to PTdf on disk, and returns the file.
inline std::filesystem::path makeIrsPtdf(const util::TempDir& workspace,
                                         const sim::MachineConfig& machine, int nprocs,
                                         std::uint64_t seed) {
  const auto run_dir =
      workspace.file("irs-" + std::to_string(nprocs) + "-" + std::to_string(seed));
  sim::IrsRunSpec spec{machine, nprocs, "MPI", seed, ""};
  const sim::GeneratedRun run = sim::generateIrsRun(spec, run_dir);
  const auto ptdf_path = workspace.file(run.exec_name + ".ptdf");
  std::ofstream out(ptdf_path);
  ptdf::Writer writer(out);
  tools::convertIrsRun(run_dir, machine, writer);
  return ptdf_path;
}

/// Loads `executions` IRS runs into a fresh store; returns it. The machine
/// description (grid spine + attributes) is pre-loaded first, as in §4.1
/// ("a full set of descriptive machine data was already in our PerfTrack
/// system").
inline Store irsStore(int executions, int nprocs = 16) {
  util::TempDir workspace("bench-irs");
  Store s = Store::openMemory();
  {
    const auto machines_ptdf = workspace.file("machines.ptdf");
    std::ofstream out(machines_ptdf);
    ptdf::Writer writer(out);
    sim::emitMachinePtdf(writer, sim::frostConfig(), /*max_nodes=*/8);
    out.close();
    ptdf::loadFile(*s.store, machines_ptdf.string());
  }
  for (int i = 0; i < executions; ++i) {
    const auto ptdf_path = makeIrsPtdf(workspace, sim::frostConfig(), nprocs,
                                       static_cast<std::uint64_t>(i + 1));
    ptdf::loadFile(*s.store, ptdf_path.string());
  }
  return s;
}

}  // namespace perftrack::bench
