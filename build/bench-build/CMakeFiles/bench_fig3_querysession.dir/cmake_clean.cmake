file(REMOVE_RECURSE
  "../bench/bench_fig3_querysession"
  "../bench/bench_fig3_querysession.pdb"
  "CMakeFiles/bench_fig3_querysession.dir/bench_fig3_querysession.cpp.o"
  "CMakeFiles/bench_fig3_querysession.dir/bench_fig3_querysession.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_querysession.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
