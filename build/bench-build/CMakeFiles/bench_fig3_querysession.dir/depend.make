# Empty dependencies file for bench_fig3_querysession.
# This may be replaced when dependencies are built.
