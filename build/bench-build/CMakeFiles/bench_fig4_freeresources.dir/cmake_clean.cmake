file(REMOVE_RECURSE
  "../bench/bench_fig4_freeresources"
  "../bench/bench_fig4_freeresources.pdb"
  "CMakeFiles/bench_fig4_freeresources.dir/bench_fig4_freeresources.cpp.o"
  "CMakeFiles/bench_fig4_freeresources.dir/bench_fig4_freeresources.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_freeresources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
