# Empty compiler generated dependencies file for bench_fig4_freeresources.
# This may be replaced when dependencies are built.
