file(REMOVE_RECURSE
  "../bench/bench_fig5_loadbalance"
  "../bench/bench_fig5_loadbalance.pdb"
  "CMakeFiles/bench_fig5_loadbalance.dir/bench_fig5_loadbalance.cpp.o"
  "CMakeFiles/bench_fig5_loadbalance.dir/bench_fig5_loadbalance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
