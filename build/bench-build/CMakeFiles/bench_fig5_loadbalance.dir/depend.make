# Empty dependencies file for bench_fig5_loadbalance.
# This may be replaced when dependencies are built.
