file(REMOVE_RECURSE
  "../bench/bench_load_scaling"
  "../bench/bench_load_scaling.pdb"
  "CMakeFiles/bench_load_scaling.dir/bench_load_scaling.cpp.o"
  "CMakeFiles/bench_load_scaling.dir/bench_load_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_load_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
