# Empty dependencies file for bench_load_scaling.
# This may be replaced when dependencies are built.
