file(REMOVE_RECURSE
  "../bench/bench_paradyn_ingest"
  "../bench/bench_paradyn_ingest.pdb"
  "CMakeFiles/bench_paradyn_ingest.dir/bench_paradyn_ingest.cpp.o"
  "CMakeFiles/bench_paradyn_ingest.dir/bench_paradyn_ingest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paradyn_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
