# Empty dependencies file for bench_paradyn_ingest.
# This may be replaced when dependencies are built.
