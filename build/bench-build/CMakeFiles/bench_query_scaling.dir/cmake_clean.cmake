file(REMOVE_RECURSE
  "../bench/bench_query_scaling"
  "../bench/bench_query_scaling.pdb"
  "CMakeFiles/bench_query_scaling.dir/bench_query_scaling.cpp.o"
  "CMakeFiles/bench_query_scaling.dir/bench_query_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
