file(REMOVE_RECURSE
  "CMakeFiles/paradyn_import.dir/paradyn_import.cpp.o"
  "CMakeFiles/paradyn_import.dir/paradyn_import.cpp.o.d"
  "paradyn_import"
  "paradyn_import.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradyn_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
