# Empty dependencies file for paradyn_import.
# This may be replaced when dependencies are built.
