file(REMOVE_RECURSE
  "CMakeFiles/purple_study.dir/purple_study.cpp.o"
  "CMakeFiles/purple_study.dir/purple_study.cpp.o.d"
  "purple_study"
  "purple_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/purple_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
