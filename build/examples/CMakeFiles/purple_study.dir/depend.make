# Empty dependencies file for purple_study.
# This may be replaced when dependencies are built.
