file(REMOVE_RECURSE
  "CMakeFiles/sharing_workflow.dir/sharing_workflow.cpp.o"
  "CMakeFiles/sharing_workflow.dir/sharing_workflow.cpp.o.d"
  "sharing_workflow"
  "sharing_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharing_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
