# Empty compiler generated dependencies file for sharing_workflow.
# This may be replaced when dependencies are built.
