# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_purple_study]=] "/root/repo/build/examples/purple_study")
set_tests_properties([=[example_purple_study]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_noise_study]=] "/root/repo/build/examples/noise_study")
set_tests_properties([=[example_noise_study]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_paradyn_import]=] "/root/repo/build/examples/paradyn_import")
set_tests_properties([=[example_paradyn_import]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_sharing_workflow]=] "/root/repo/build/examples/sharing_workflow")
set_tests_properties([=[example_sharing_workflow]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;0;")
