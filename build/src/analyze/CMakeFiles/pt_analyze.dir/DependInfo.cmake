
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyze/barchart.cpp" "src/analyze/CMakeFiles/pt_analyze.dir/barchart.cpp.o" "gcc" "src/analyze/CMakeFiles/pt_analyze.dir/barchart.cpp.o.d"
  "/root/repo/src/analyze/compare.cpp" "src/analyze/CMakeFiles/pt_analyze.dir/compare.cpp.o" "gcc" "src/analyze/CMakeFiles/pt_analyze.dir/compare.cpp.o.d"
  "/root/repo/src/analyze/loadbalance.cpp" "src/analyze/CMakeFiles/pt_analyze.dir/loadbalance.cpp.o" "gcc" "src/analyze/CMakeFiles/pt_analyze.dir/loadbalance.cpp.o.d"
  "/root/repo/src/analyze/predict.cpp" "src/analyze/CMakeFiles/pt_analyze.dir/predict.cpp.o" "gcc" "src/analyze/CMakeFiles/pt_analyze.dir/predict.cpp.o.d"
  "/root/repo/src/analyze/scaling.cpp" "src/analyze/CMakeFiles/pt_analyze.dir/scaling.cpp.o" "gcc" "src/analyze/CMakeFiles/pt_analyze.dir/scaling.cpp.o.d"
  "/root/repo/src/analyze/session_shell.cpp" "src/analyze/CMakeFiles/pt_analyze.dir/session_shell.cpp.o" "gcc" "src/analyze/CMakeFiles/pt_analyze.dir/session_shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dbal/CMakeFiles/pt_dbal.dir/DependInfo.cmake"
  "/root/repo/build/src/minidb/CMakeFiles/pt_minidb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
