file(REMOVE_RECURSE
  "CMakeFiles/pt_analyze.dir/barchart.cpp.o"
  "CMakeFiles/pt_analyze.dir/barchart.cpp.o.d"
  "CMakeFiles/pt_analyze.dir/compare.cpp.o"
  "CMakeFiles/pt_analyze.dir/compare.cpp.o.d"
  "CMakeFiles/pt_analyze.dir/loadbalance.cpp.o"
  "CMakeFiles/pt_analyze.dir/loadbalance.cpp.o.d"
  "CMakeFiles/pt_analyze.dir/predict.cpp.o"
  "CMakeFiles/pt_analyze.dir/predict.cpp.o.d"
  "CMakeFiles/pt_analyze.dir/scaling.cpp.o"
  "CMakeFiles/pt_analyze.dir/scaling.cpp.o.d"
  "CMakeFiles/pt_analyze.dir/session_shell.cpp.o"
  "CMakeFiles/pt_analyze.dir/session_shell.cpp.o.d"
  "libpt_analyze.a"
  "libpt_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
