file(REMOVE_RECURSE
  "libpt_analyze.a"
)
