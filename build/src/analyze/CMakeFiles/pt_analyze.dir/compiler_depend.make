# Empty compiler generated dependencies file for pt_analyze.
# This may be replaced when dependencies are built.
