file(REMOVE_RECURSE
  "CMakeFiles/ptcollect.dir/ptcollect.cpp.o"
  "CMakeFiles/ptcollect.dir/ptcollect.cpp.o.d"
  "ptcollect"
  "ptcollect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptcollect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
