# Empty compiler generated dependencies file for ptcollect.
# This may be replaced when dependencies are built.
