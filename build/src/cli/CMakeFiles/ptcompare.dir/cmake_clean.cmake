file(REMOVE_RECURSE
  "CMakeFiles/ptcompare.dir/ptcompare.cpp.o"
  "CMakeFiles/ptcompare.dir/ptcompare.cpp.o.d"
  "ptcompare"
  "ptcompare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptcompare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
