# Empty compiler generated dependencies file for ptcompare.
# This may be replaced when dependencies are built.
