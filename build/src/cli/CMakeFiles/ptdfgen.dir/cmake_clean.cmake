file(REMOVE_RECURSE
  "CMakeFiles/ptdfgen.dir/ptdfgen.cpp.o"
  "CMakeFiles/ptdfgen.dir/ptdfgen.cpp.o.d"
  "ptdfgen"
  "ptdfgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptdfgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
