# Empty dependencies file for ptdfgen.
# This may be replaced when dependencies are built.
