
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cli/ptdfload.cpp" "src/cli/CMakeFiles/ptdfload.dir/ptdfload.cpp.o" "gcc" "src/cli/CMakeFiles/ptdfload.dir/ptdfload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tools/CMakeFiles/pt_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/analyze/CMakeFiles/pt_analyze.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/pt_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/ptdf/CMakeFiles/pt_ptdf.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dbal/CMakeFiles/pt_dbal.dir/DependInfo.cmake"
  "/root/repo/build/src/minidb/CMakeFiles/pt_minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
