file(REMOVE_RECURSE
  "CMakeFiles/ptdfload.dir/ptdfload.cpp.o"
  "CMakeFiles/ptdfload.dir/ptdfload.cpp.o.d"
  "ptdfload"
  "ptdfload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptdfload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
