# Empty compiler generated dependencies file for ptdfload.
# This may be replaced when dependencies are built.
