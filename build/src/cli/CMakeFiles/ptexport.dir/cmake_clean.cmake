file(REMOVE_RECURSE
  "CMakeFiles/ptexport.dir/ptexport.cpp.o"
  "CMakeFiles/ptexport.dir/ptexport.cpp.o.d"
  "ptexport"
  "ptexport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptexport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
