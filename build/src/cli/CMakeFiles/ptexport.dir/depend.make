# Empty dependencies file for ptexport.
# This may be replaced when dependencies are built.
