file(REMOVE_RECURSE
  "CMakeFiles/ptgen.dir/ptgen.cpp.o"
  "CMakeFiles/ptgen.dir/ptgen.cpp.o.d"
  "ptgen"
  "ptgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
