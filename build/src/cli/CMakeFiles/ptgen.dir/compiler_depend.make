# Empty compiler generated dependencies file for ptgen.
# This may be replaced when dependencies are built.
