# Empty dependencies file for ptgen.
# This may be replaced when dependencies are built.
