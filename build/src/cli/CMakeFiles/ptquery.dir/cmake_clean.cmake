file(REMOVE_RECURSE
  "CMakeFiles/ptquery.dir/ptquery.cpp.o"
  "CMakeFiles/ptquery.dir/ptquery.cpp.o.d"
  "ptquery"
  "ptquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
