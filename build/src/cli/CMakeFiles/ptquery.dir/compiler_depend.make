# Empty compiler generated dependencies file for ptquery.
# This may be replaced when dependencies are built.
