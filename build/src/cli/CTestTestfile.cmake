# CMake generated Testfile for 
# Source directory: /root/repo/src/cli
# Build directory: /root/repo/build/src/cli
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[cli_ptquery_report]=] "/root/repo/build/src/cli/ptquery" ":memory:" "report")
set_tests_properties([=[cli_ptquery_report]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;8;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
add_test([=[cli_ptquery_types]=] "/root/repo/build/src/cli/ptquery" ":memory:" "types")
set_tests_properties([=[cli_ptquery_types]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;9;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
add_test([=[cli_ptquery_sql]=] "/root/repo/build/src/cli/ptquery" ":memory:" "sql" "SELECT COUNT(*) FROM metric")
set_tests_properties([=[cli_ptquery_sql]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;10;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
add_test([=[cli_ptexport_empty]=] "/root/repo/build/src/cli/ptexport" ":memory:")
set_tests_properties([=[cli_ptexport_empty]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;11;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
add_test([=[cli_ptquery_check]=] "/root/repo/build/src/cli/ptquery" ":memory:" "check")
set_tests_properties([=[cli_ptquery_check]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;12;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
