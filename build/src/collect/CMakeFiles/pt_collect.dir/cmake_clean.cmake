file(REMOVE_RECURSE
  "CMakeFiles/pt_collect.dir/collect.cpp.o"
  "CMakeFiles/pt_collect.dir/collect.cpp.o.d"
  "libpt_collect.a"
  "libpt_collect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
