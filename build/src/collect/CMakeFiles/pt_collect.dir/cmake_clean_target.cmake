file(REMOVE_RECURSE
  "libpt_collect.a"
)
