# Empty dependencies file for pt_collect.
# This may be replaced when dependencies are built.
