
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/datastore.cpp" "src/core/CMakeFiles/pt_core.dir/datastore.cpp.o" "gcc" "src/core/CMakeFiles/pt_core.dir/datastore.cpp.o.d"
  "/root/repo/src/core/filter.cpp" "src/core/CMakeFiles/pt_core.dir/filter.cpp.o" "gcc" "src/core/CMakeFiles/pt_core.dir/filter.cpp.o.d"
  "/root/repo/src/core/integrity.cpp" "src/core/CMakeFiles/pt_core.dir/integrity.cpp.o" "gcc" "src/core/CMakeFiles/pt_core.dir/integrity.cpp.o.d"
  "/root/repo/src/core/query_session.cpp" "src/core/CMakeFiles/pt_core.dir/query_session.cpp.o" "gcc" "src/core/CMakeFiles/pt_core.dir/query_session.cpp.o.d"
  "/root/repo/src/core/reports.cpp" "src/core/CMakeFiles/pt_core.dir/reports.cpp.o" "gcc" "src/core/CMakeFiles/pt_core.dir/reports.cpp.o.d"
  "/root/repo/src/core/typesystem.cpp" "src/core/CMakeFiles/pt_core.dir/typesystem.cpp.o" "gcc" "src/core/CMakeFiles/pt_core.dir/typesystem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dbal/CMakeFiles/pt_dbal.dir/DependInfo.cmake"
  "/root/repo/build/src/minidb/CMakeFiles/pt_minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
