file(REMOVE_RECURSE
  "CMakeFiles/pt_core.dir/datastore.cpp.o"
  "CMakeFiles/pt_core.dir/datastore.cpp.o.d"
  "CMakeFiles/pt_core.dir/filter.cpp.o"
  "CMakeFiles/pt_core.dir/filter.cpp.o.d"
  "CMakeFiles/pt_core.dir/integrity.cpp.o"
  "CMakeFiles/pt_core.dir/integrity.cpp.o.d"
  "CMakeFiles/pt_core.dir/query_session.cpp.o"
  "CMakeFiles/pt_core.dir/query_session.cpp.o.d"
  "CMakeFiles/pt_core.dir/reports.cpp.o"
  "CMakeFiles/pt_core.dir/reports.cpp.o.d"
  "CMakeFiles/pt_core.dir/typesystem.cpp.o"
  "CMakeFiles/pt_core.dir/typesystem.cpp.o.d"
  "libpt_core.a"
  "libpt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
