file(REMOVE_RECURSE
  "libpt_core.a"
)
