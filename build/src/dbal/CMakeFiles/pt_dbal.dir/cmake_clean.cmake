file(REMOVE_RECURSE
  "CMakeFiles/pt_dbal.dir/connection.cpp.o"
  "CMakeFiles/pt_dbal.dir/connection.cpp.o.d"
  "CMakeFiles/pt_dbal.dir/schema.cpp.o"
  "CMakeFiles/pt_dbal.dir/schema.cpp.o.d"
  "libpt_dbal.a"
  "libpt_dbal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_dbal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
