file(REMOVE_RECURSE
  "libpt_dbal.a"
)
