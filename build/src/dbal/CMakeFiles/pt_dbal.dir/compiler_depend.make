# Empty compiler generated dependencies file for pt_dbal.
# This may be replaced when dependencies are built.
