
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minidb/btree.cpp" "src/minidb/CMakeFiles/pt_minidb.dir/btree.cpp.o" "gcc" "src/minidb/CMakeFiles/pt_minidb.dir/btree.cpp.o.d"
  "/root/repo/src/minidb/catalog.cpp" "src/minidb/CMakeFiles/pt_minidb.dir/catalog.cpp.o" "gcc" "src/minidb/CMakeFiles/pt_minidb.dir/catalog.cpp.o.d"
  "/root/repo/src/minidb/database.cpp" "src/minidb/CMakeFiles/pt_minidb.dir/database.cpp.o" "gcc" "src/minidb/CMakeFiles/pt_minidb.dir/database.cpp.o.d"
  "/root/repo/src/minidb/heap.cpp" "src/minidb/CMakeFiles/pt_minidb.dir/heap.cpp.o" "gcc" "src/minidb/CMakeFiles/pt_minidb.dir/heap.cpp.o.d"
  "/root/repo/src/minidb/keycodec.cpp" "src/minidb/CMakeFiles/pt_minidb.dir/keycodec.cpp.o" "gcc" "src/minidb/CMakeFiles/pt_minidb.dir/keycodec.cpp.o.d"
  "/root/repo/src/minidb/pager.cpp" "src/minidb/CMakeFiles/pt_minidb.dir/pager.cpp.o" "gcc" "src/minidb/CMakeFiles/pt_minidb.dir/pager.cpp.o.d"
  "/root/repo/src/minidb/sql/executor.cpp" "src/minidb/CMakeFiles/pt_minidb.dir/sql/executor.cpp.o" "gcc" "src/minidb/CMakeFiles/pt_minidb.dir/sql/executor.cpp.o.d"
  "/root/repo/src/minidb/sql/lexer.cpp" "src/minidb/CMakeFiles/pt_minidb.dir/sql/lexer.cpp.o" "gcc" "src/minidb/CMakeFiles/pt_minidb.dir/sql/lexer.cpp.o.d"
  "/root/repo/src/minidb/sql/parser.cpp" "src/minidb/CMakeFiles/pt_minidb.dir/sql/parser.cpp.o" "gcc" "src/minidb/CMakeFiles/pt_minidb.dir/sql/parser.cpp.o.d"
  "/root/repo/src/minidb/value.cpp" "src/minidb/CMakeFiles/pt_minidb.dir/value.cpp.o" "gcc" "src/minidb/CMakeFiles/pt_minidb.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
