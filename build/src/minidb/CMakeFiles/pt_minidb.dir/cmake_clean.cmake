file(REMOVE_RECURSE
  "CMakeFiles/pt_minidb.dir/btree.cpp.o"
  "CMakeFiles/pt_minidb.dir/btree.cpp.o.d"
  "CMakeFiles/pt_minidb.dir/catalog.cpp.o"
  "CMakeFiles/pt_minidb.dir/catalog.cpp.o.d"
  "CMakeFiles/pt_minidb.dir/database.cpp.o"
  "CMakeFiles/pt_minidb.dir/database.cpp.o.d"
  "CMakeFiles/pt_minidb.dir/heap.cpp.o"
  "CMakeFiles/pt_minidb.dir/heap.cpp.o.d"
  "CMakeFiles/pt_minidb.dir/keycodec.cpp.o"
  "CMakeFiles/pt_minidb.dir/keycodec.cpp.o.d"
  "CMakeFiles/pt_minidb.dir/pager.cpp.o"
  "CMakeFiles/pt_minidb.dir/pager.cpp.o.d"
  "CMakeFiles/pt_minidb.dir/sql/executor.cpp.o"
  "CMakeFiles/pt_minidb.dir/sql/executor.cpp.o.d"
  "CMakeFiles/pt_minidb.dir/sql/lexer.cpp.o"
  "CMakeFiles/pt_minidb.dir/sql/lexer.cpp.o.d"
  "CMakeFiles/pt_minidb.dir/sql/parser.cpp.o"
  "CMakeFiles/pt_minidb.dir/sql/parser.cpp.o.d"
  "CMakeFiles/pt_minidb.dir/value.cpp.o"
  "CMakeFiles/pt_minidb.dir/value.cpp.o.d"
  "libpt_minidb.a"
  "libpt_minidb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_minidb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
