file(REMOVE_RECURSE
  "libpt_minidb.a"
)
