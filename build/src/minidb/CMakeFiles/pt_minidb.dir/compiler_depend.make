# Empty compiler generated dependencies file for pt_minidb.
# This may be replaced when dependencies are built.
