file(REMOVE_RECURSE
  "CMakeFiles/pt_ptdf.dir/export.cpp.o"
  "CMakeFiles/pt_ptdf.dir/export.cpp.o.d"
  "CMakeFiles/pt_ptdf.dir/ptdf.cpp.o"
  "CMakeFiles/pt_ptdf.dir/ptdf.cpp.o.d"
  "libpt_ptdf.a"
  "libpt_ptdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_ptdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
