file(REMOVE_RECURSE
  "libpt_ptdf.a"
)
