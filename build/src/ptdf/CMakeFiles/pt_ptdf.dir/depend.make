# Empty dependencies file for pt_ptdf.
# This may be replaced when dependencies are built.
