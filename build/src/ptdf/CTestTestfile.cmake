# CMake generated Testfile for 
# Source directory: /root/repo/src/ptdf
# Build directory: /root/repo/build/src/ptdf
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
