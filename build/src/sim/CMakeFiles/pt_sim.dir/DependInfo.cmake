
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/irs_gen.cpp" "src/sim/CMakeFiles/pt_sim.dir/irs_gen.cpp.o" "gcc" "src/sim/CMakeFiles/pt_sim.dir/irs_gen.cpp.o.d"
  "/root/repo/src/sim/machines.cpp" "src/sim/CMakeFiles/pt_sim.dir/machines.cpp.o" "gcc" "src/sim/CMakeFiles/pt_sim.dir/machines.cpp.o.d"
  "/root/repo/src/sim/paradyn_gen.cpp" "src/sim/CMakeFiles/pt_sim.dir/paradyn_gen.cpp.o" "gcc" "src/sim/CMakeFiles/pt_sim.dir/paradyn_gen.cpp.o.d"
  "/root/repo/src/sim/perfmodel.cpp" "src/sim/CMakeFiles/pt_sim.dir/perfmodel.cpp.o" "gcc" "src/sim/CMakeFiles/pt_sim.dir/perfmodel.cpp.o.d"
  "/root/repo/src/sim/smg_gen.cpp" "src/sim/CMakeFiles/pt_sim.dir/smg_gen.cpp.o" "gcc" "src/sim/CMakeFiles/pt_sim.dir/smg_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ptdf/CMakeFiles/pt_ptdf.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dbal/CMakeFiles/pt_dbal.dir/DependInfo.cmake"
  "/root/repo/build/src/minidb/CMakeFiles/pt_minidb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
