file(REMOVE_RECURSE
  "CMakeFiles/pt_sim.dir/irs_gen.cpp.o"
  "CMakeFiles/pt_sim.dir/irs_gen.cpp.o.d"
  "CMakeFiles/pt_sim.dir/machines.cpp.o"
  "CMakeFiles/pt_sim.dir/machines.cpp.o.d"
  "CMakeFiles/pt_sim.dir/paradyn_gen.cpp.o"
  "CMakeFiles/pt_sim.dir/paradyn_gen.cpp.o.d"
  "CMakeFiles/pt_sim.dir/perfmodel.cpp.o"
  "CMakeFiles/pt_sim.dir/perfmodel.cpp.o.d"
  "CMakeFiles/pt_sim.dir/smg_gen.cpp.o"
  "CMakeFiles/pt_sim.dir/smg_gen.cpp.o.d"
  "libpt_sim.a"
  "libpt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
