file(REMOVE_RECURSE
  "CMakeFiles/pt_tools.dir/irs_parser.cpp.o"
  "CMakeFiles/pt_tools.dir/irs_parser.cpp.o.d"
  "CMakeFiles/pt_tools.dir/paradyn_parser.cpp.o"
  "CMakeFiles/pt_tools.dir/paradyn_parser.cpp.o.d"
  "CMakeFiles/pt_tools.dir/ptdfgen.cpp.o"
  "CMakeFiles/pt_tools.dir/ptdfgen.cpp.o.d"
  "CMakeFiles/pt_tools.dir/smg_parser.cpp.o"
  "CMakeFiles/pt_tools.dir/smg_parser.cpp.o.d"
  "libpt_tools.a"
  "libpt_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
