file(REMOVE_RECURSE
  "libpt_tools.a"
)
