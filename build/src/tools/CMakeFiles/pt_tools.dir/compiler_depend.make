# Empty compiler generated dependencies file for pt_tools.
# This may be replaced when dependencies are built.
