file(REMOVE_RECURSE
  "CMakeFiles/pt_util.dir/csv.cpp.o"
  "CMakeFiles/pt_util.dir/csv.cpp.o.d"
  "CMakeFiles/pt_util.dir/rng.cpp.o"
  "CMakeFiles/pt_util.dir/rng.cpp.o.d"
  "CMakeFiles/pt_util.dir/strings.cpp.o"
  "CMakeFiles/pt_util.dir/strings.cpp.o.d"
  "CMakeFiles/pt_util.dir/tempdir.cpp.o"
  "CMakeFiles/pt_util.dir/tempdir.cpp.o.d"
  "libpt_util.a"
  "libpt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
