file(REMOVE_RECURSE
  "libpt_util.a"
)
