file(REMOVE_RECURSE
  "CMakeFiles/test_analyze.dir/analyze/barchart_test.cpp.o"
  "CMakeFiles/test_analyze.dir/analyze/barchart_test.cpp.o.d"
  "CMakeFiles/test_analyze.dir/analyze/compare_test.cpp.o"
  "CMakeFiles/test_analyze.dir/analyze/compare_test.cpp.o.d"
  "CMakeFiles/test_analyze.dir/analyze/loadbalance_test.cpp.o"
  "CMakeFiles/test_analyze.dir/analyze/loadbalance_test.cpp.o.d"
  "CMakeFiles/test_analyze.dir/analyze/predict_test.cpp.o"
  "CMakeFiles/test_analyze.dir/analyze/predict_test.cpp.o.d"
  "CMakeFiles/test_analyze.dir/analyze/scaling_test.cpp.o"
  "CMakeFiles/test_analyze.dir/analyze/scaling_test.cpp.o.d"
  "CMakeFiles/test_analyze.dir/analyze/session_shell_test.cpp.o"
  "CMakeFiles/test_analyze.dir/analyze/session_shell_test.cpp.o.d"
  "test_analyze"
  "test_analyze.pdb"
  "test_analyze[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
