file(REMOVE_RECURSE
  "CMakeFiles/test_collect.dir/collect/collect_test.cpp.o"
  "CMakeFiles/test_collect.dir/collect/collect_test.cpp.o.d"
  "test_collect"
  "test_collect.pdb"
  "test_collect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
