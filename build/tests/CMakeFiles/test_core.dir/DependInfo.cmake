
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/datastore_test.cpp" "tests/CMakeFiles/test_core.dir/core/datastore_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/datastore_test.cpp.o.d"
  "/root/repo/tests/core/filter_test.cpp" "tests/CMakeFiles/test_core.dir/core/filter_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/filter_test.cpp.o.d"
  "/root/repo/tests/core/model_property_test.cpp" "tests/CMakeFiles/test_core.dir/core/model_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/model_property_test.cpp.o.d"
  "/root/repo/tests/core/query_session_test.cpp" "tests/CMakeFiles/test_core.dir/core/query_session_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/query_session_test.cpp.o.d"
  "/root/repo/tests/core/reports_test.cpp" "tests/CMakeFiles/test_core.dir/core/reports_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/reports_test.cpp.o.d"
  "/root/repo/tests/core/typesystem_test.cpp" "tests/CMakeFiles/test_core.dir/core/typesystem_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/typesystem_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dbal/CMakeFiles/pt_dbal.dir/DependInfo.cmake"
  "/root/repo/build/src/minidb/CMakeFiles/pt_minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
