file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/datastore_test.cpp.o"
  "CMakeFiles/test_core.dir/core/datastore_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/filter_test.cpp.o"
  "CMakeFiles/test_core.dir/core/filter_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/model_property_test.cpp.o"
  "CMakeFiles/test_core.dir/core/model_property_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/query_session_test.cpp.o"
  "CMakeFiles/test_core.dir/core/query_session_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/reports_test.cpp.o"
  "CMakeFiles/test_core.dir/core/reports_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/typesystem_test.cpp.o"
  "CMakeFiles/test_core.dir/core/typesystem_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
