file(REMOVE_RECURSE
  "CMakeFiles/test_datamgmt.dir/core/delete_execution_test.cpp.o"
  "CMakeFiles/test_datamgmt.dir/core/delete_execution_test.cpp.o.d"
  "CMakeFiles/test_datamgmt.dir/core/integrity_test.cpp.o"
  "CMakeFiles/test_datamgmt.dir/core/integrity_test.cpp.o.d"
  "test_datamgmt"
  "test_datamgmt.pdb"
  "test_datamgmt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datamgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
