# Empty compiler generated dependencies file for test_datamgmt.
# This may be replaced when dependencies are built.
