file(REMOVE_RECURSE
  "CMakeFiles/test_dbal.dir/dbal/schema_test.cpp.o"
  "CMakeFiles/test_dbal.dir/dbal/schema_test.cpp.o.d"
  "test_dbal"
  "test_dbal.pdb"
  "test_dbal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dbal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
