# Empty dependencies file for test_dbal.
# This may be replaced when dependencies are built.
