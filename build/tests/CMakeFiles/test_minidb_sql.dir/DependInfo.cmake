
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/minidb/composite_null_test.cpp" "tests/CMakeFiles/test_minidb_sql.dir/minidb/composite_null_test.cpp.o" "gcc" "tests/CMakeFiles/test_minidb_sql.dir/minidb/composite_null_test.cpp.o.d"
  "/root/repo/tests/minidb/executor_test.cpp" "tests/CMakeFiles/test_minidb_sql.dir/minidb/executor_test.cpp.o" "gcc" "tests/CMakeFiles/test_minidb_sql.dir/minidb/executor_test.cpp.o.d"
  "/root/repo/tests/minidb/lexer_test.cpp" "tests/CMakeFiles/test_minidb_sql.dir/minidb/lexer_test.cpp.o" "gcc" "tests/CMakeFiles/test_minidb_sql.dir/minidb/lexer_test.cpp.o.d"
  "/root/repo/tests/minidb/parser_test.cpp" "tests/CMakeFiles/test_minidb_sql.dir/minidb/parser_test.cpp.o" "gcc" "tests/CMakeFiles/test_minidb_sql.dir/minidb/parser_test.cpp.o.d"
  "/root/repo/tests/minidb/property_test.cpp" "tests/CMakeFiles/test_minidb_sql.dir/minidb/property_test.cpp.o" "gcc" "tests/CMakeFiles/test_minidb_sql.dir/minidb/property_test.cpp.o.d"
  "/root/repo/tests/minidb/sql_features_test.cpp" "tests/CMakeFiles/test_minidb_sql.dir/minidb/sql_features_test.cpp.o" "gcc" "tests/CMakeFiles/test_minidb_sql.dir/minidb/sql_features_test.cpp.o.d"
  "/root/repo/tests/minidb/transaction_test.cpp" "tests/CMakeFiles/test_minidb_sql.dir/minidb/transaction_test.cpp.o" "gcc" "tests/CMakeFiles/test_minidb_sql.dir/minidb/transaction_test.cpp.o.d"
  "/root/repo/tests/minidb/txn_property_test.cpp" "tests/CMakeFiles/test_minidb_sql.dir/minidb/txn_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_minidb_sql.dir/minidb/txn_property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minidb/CMakeFiles/pt_minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
