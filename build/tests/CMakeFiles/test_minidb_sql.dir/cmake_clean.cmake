file(REMOVE_RECURSE
  "CMakeFiles/test_minidb_sql.dir/minidb/composite_null_test.cpp.o"
  "CMakeFiles/test_minidb_sql.dir/minidb/composite_null_test.cpp.o.d"
  "CMakeFiles/test_minidb_sql.dir/minidb/executor_test.cpp.o"
  "CMakeFiles/test_minidb_sql.dir/minidb/executor_test.cpp.o.d"
  "CMakeFiles/test_minidb_sql.dir/minidb/lexer_test.cpp.o"
  "CMakeFiles/test_minidb_sql.dir/minidb/lexer_test.cpp.o.d"
  "CMakeFiles/test_minidb_sql.dir/minidb/parser_test.cpp.o"
  "CMakeFiles/test_minidb_sql.dir/minidb/parser_test.cpp.o.d"
  "CMakeFiles/test_minidb_sql.dir/minidb/property_test.cpp.o"
  "CMakeFiles/test_minidb_sql.dir/minidb/property_test.cpp.o.d"
  "CMakeFiles/test_minidb_sql.dir/minidb/sql_features_test.cpp.o"
  "CMakeFiles/test_minidb_sql.dir/minidb/sql_features_test.cpp.o.d"
  "CMakeFiles/test_minidb_sql.dir/minidb/transaction_test.cpp.o"
  "CMakeFiles/test_minidb_sql.dir/minidb/transaction_test.cpp.o.d"
  "CMakeFiles/test_minidb_sql.dir/minidb/txn_property_test.cpp.o"
  "CMakeFiles/test_minidb_sql.dir/minidb/txn_property_test.cpp.o.d"
  "test_minidb_sql"
  "test_minidb_sql.pdb"
  "test_minidb_sql[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minidb_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
