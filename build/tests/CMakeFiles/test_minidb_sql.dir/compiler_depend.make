# Empty compiler generated dependencies file for test_minidb_sql.
# This may be replaced when dependencies are built.
