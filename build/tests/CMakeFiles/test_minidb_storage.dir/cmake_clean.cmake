file(REMOVE_RECURSE
  "CMakeFiles/test_minidb_storage.dir/minidb/btree_test.cpp.o"
  "CMakeFiles/test_minidb_storage.dir/minidb/btree_test.cpp.o.d"
  "CMakeFiles/test_minidb_storage.dir/minidb/database_test.cpp.o"
  "CMakeFiles/test_minidb_storage.dir/minidb/database_test.cpp.o.d"
  "CMakeFiles/test_minidb_storage.dir/minidb/heap_test.cpp.o"
  "CMakeFiles/test_minidb_storage.dir/minidb/heap_test.cpp.o.d"
  "CMakeFiles/test_minidb_storage.dir/minidb/keycodec_test.cpp.o"
  "CMakeFiles/test_minidb_storage.dir/minidb/keycodec_test.cpp.o.d"
  "CMakeFiles/test_minidb_storage.dir/minidb/pager_test.cpp.o"
  "CMakeFiles/test_minidb_storage.dir/minidb/pager_test.cpp.o.d"
  "CMakeFiles/test_minidb_storage.dir/minidb/value_test.cpp.o"
  "CMakeFiles/test_minidb_storage.dir/minidb/value_test.cpp.o.d"
  "test_minidb_storage"
  "test_minidb_storage.pdb"
  "test_minidb_storage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minidb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
