# Empty dependencies file for test_minidb_storage.
# This may be replaced when dependencies are built.
