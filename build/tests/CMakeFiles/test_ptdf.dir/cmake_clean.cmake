file(REMOVE_RECURSE
  "CMakeFiles/test_ptdf.dir/core/histogram_test.cpp.o"
  "CMakeFiles/test_ptdf.dir/core/histogram_test.cpp.o.d"
  "CMakeFiles/test_ptdf.dir/ptdf/export_test.cpp.o"
  "CMakeFiles/test_ptdf.dir/ptdf/export_test.cpp.o.d"
  "CMakeFiles/test_ptdf.dir/ptdf/loader_robustness_test.cpp.o"
  "CMakeFiles/test_ptdf.dir/ptdf/loader_robustness_test.cpp.o.d"
  "CMakeFiles/test_ptdf.dir/ptdf/ptdf_test.cpp.o"
  "CMakeFiles/test_ptdf.dir/ptdf/ptdf_test.cpp.o.d"
  "test_ptdf"
  "test_ptdf.pdb"
  "test_ptdf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ptdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
