# Empty compiler generated dependencies file for test_ptdf.
# This may be replaced when dependencies are built.
