# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_minidb_storage[1]_include.cmake")
include("/root/repo/build/tests/test_minidb_sql[1]_include.cmake")
include("/root/repo/build/tests/test_dbal[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_ptdf[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_collect[1]_include.cmake")
include("/root/repo/build/tests/test_tools[1]_include.cmake")
include("/root/repo/build/tests/test_analyze[1]_include.cmake")
include("/root/repo/build/tests/test_datamgmt[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
