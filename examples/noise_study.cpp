// Case study 2 (paper §4.2): the SMG2000 noise-analysis data set.
//
// Loads SMG2000 runs from two very different platforms — BG/L (whose
// compute-node kernel is nearly noise-free and whose benchmark output is
// just eight whole-execution values) and UV (AIX, with mpiP profiles and
// PMAPI hardware counters) — into one store, then compares them. The mpiP
// data exercises multi-resource-set results (caller + callee contexts).
#include <fstream>
#include <iostream>

#include "analyze/compare.h"
#include "core/query_session.h"
#include "core/reports.h"
#include "dbal/connection.h"
#include "ptdf/ptdf.h"
#include "sim/smg_gen.h"
#include "tools/smg_parser.h"
#include "util/tempdir.h"

using namespace perftrack;

int main() {
  util::TempDir workspace("noise-study");
  auto conn = dbal::Connection::open(":memory:");
  core::PTDataStore store(*conn);
  store.initialize();

  std::vector<std::string> bgl_execs;
  std::vector<std::string> uv_execs;

  // --- BG/L: standard benchmark output only, many runs -----------------------
  for (int seed = 1; seed <= 6; ++seed) {
    sim::SmgRunSpec spec;
    spec.machine = sim::bglConfig();
    spec.nprocs = 128;
    spec.seed = static_cast<std::uint64_t>(seed);
    const auto dir = workspace.file("bgl-run" + std::to_string(seed));
    const sim::GeneratedRun run = sim::generateSmgRun(spec, dir);
    bgl_execs.push_back(run.exec_name);
    const auto ptdf_path = workspace.file(run.exec_name + ".ptdf");
    std::ofstream out(ptdf_path);
    ptdf::Writer writer(out);
    tools::convertSmgRun(dir, spec.machine, writer);
    out.close();
    const auto stats = ptdf::loadFile(store, ptdf_path.string());
    std::cout << "BG/L " << run.exec_name << ": " << stats.perf_results
              << " results from " << stats.lines << " PTdf lines\n";
  }

  // --- UV: benchmark + PMAPI counters + mpiP profile --------------------------
  for (int seed = 1; seed <= 2; ++seed) {
    sim::SmgRunSpec spec;
    spec.machine = sim::uvConfig();
    spec.nprocs = 64;
    spec.with_mpip = true;
    spec.with_pmapi = true;
    spec.seed = static_cast<std::uint64_t>(seed);
    const auto dir = workspace.file("uv-run" + std::to_string(seed));
    const sim::GeneratedRun run = sim::generateSmgRun(spec, dir);
    uv_execs.push_back(run.exec_name);
    const auto ptdf_path = workspace.file(run.exec_name + ".ptdf");
    std::ofstream out(ptdf_path);
    ptdf::Writer writer(out);
    tools::convertSmgRun(dir, spec.machine, writer);
    out.close();
    const auto stats = ptdf::loadFile(store, ptdf_path.string());
    std::cout << "UV   " << run.exec_name << ": " << stats.perf_results
              << " results from " << stats.lines << " PTdf lines (raw "
              << run.rawBytes() << " bytes)\n";
  }
  std::cout << "\n" << core::metricReport(store) << "\n";

  // --- the three data kinds live in one store, queryable together -------------
  core::QuerySession session(store);
  session.addFamily(core::ResourceFilter::byName("/" + uv_execs[0],
                                                 core::Expansion::Descendants));
  std::cout << "all results of " << uv_execs[0] << ": " << session.totalMatchCount()
            << "\n";

  // mpiP caller/callee: results whose context includes an MPI operation.
  core::QuerySession mpi_session(store);
  mpi_session.addFamily(
      core::ResourceFilter::byName("/libmpi", core::Expansion::Descendants));
  std::cout << "results tied to MPI operations (callee contexts): "
            << mpi_session.totalMatchCount() << "\n\n";

  // --- cross-platform comparison (the §6 comparison operators) ----------------
  const auto report = analyze::compareExecutions(store, bgl_execs[0], bgl_execs[1]);
  std::cout << report.toText(8) << "\n";
  std::cout << core::storeReport(store);
  return 0;
}
