// Case study 3 (paper §4.3): incorporating Paradyn performance data.
//
// Paradyn exports a session as histogram files + an index + a resource
// list. Its resource hierarchy (Code / Machine / SyncObject) does not match
// PerfTrack's base types, so the converter applies the Figure-11 mapping —
// including a brand-new top-level "syncObject" hierarchy created through
// the type-extension interface — and models Paradyn's time bins with the
// time hierarchy. 'nan' bins (instrumentation not yet inserted) produce no
// results, so executions differ in result count, exactly as in the paper.
#include <fstream>
#include <iostream>

#include "core/query_session.h"
#include "core/reports.h"
#include "dbal/connection.h"
#include "ptdf/ptdf.h"
#include "sim/paradyn_gen.h"
#include "tools/paradyn_parser.h"
#include "util/tempdir.h"

using namespace perftrack;

int main() {
  util::TempDir workspace("paradyn-import");
  auto conn = dbal::Connection::open(":memory:");
  core::PTDataStore store(*conn);
  store.initialize();

  // Three IRS executions on MCR measured with Paradyn (as in §4.3). Smaller
  // than the paper's 17k-resource sessions so the example runs in seconds;
  // bench_paradyn_ingest exercises the full Table-1 scale.
  for (int seed = 1; seed <= 3; ++seed) {
    sim::ParadynRunSpec spec;
    spec.machine = sim::mcrConfig();
    spec.nprocs = 8;
    spec.seed = static_cast<std::uint64_t>(seed);
    spec.metric_focus_pairs = 12;
    spec.histogram_bins = 200;
    spec.code_resources = 800;
    const auto dir = workspace.file("session" + std::to_string(seed));
    const sim::GeneratedRun run = sim::generateParadynRun(spec, dir);

    const auto ptdf_path = workspace.file(run.exec_name + ".ptdf");
    std::ofstream out(ptdf_path);
    ptdf::Writer writer(out);
    const std::size_t converted =
        tools::convertParadynRun(dir, run.exec_name, "IRS", writer);
    out.close();
    const auto stats = ptdf::loadFile(store, ptdf_path.string());
    std::cout << run.exec_name << ": " << converted
              << " non-nan bins -> " << stats.perf_results << " results, "
              << stats.resources << " resources\n";
  }

  // The new hierarchy exists alongside the base types.
  std::cout << "\nresource types now include:\n";
  for (const std::string& type : store.resourceTypes()) {
    if (type.rfind("syncObject", 0) == 0 || type.rfind("time", 0) == 0) {
      std::cout << "  " << type << "\n";
    }
  }

  // Query across the mapped hierarchies: all results for one code function,
  // then only those observed in a specific time window.
  core::QuerySession session(store);
  session.addFamily(core::ResourceFilter::byName("/IRS-code/irscg.c",
                                                 core::Expansion::Descendants));
  std::cout << "\nresults for functions of irscg.c: " << session.totalMatchCount()
            << "\n";

  core::QuerySession window(store);
  window.addFamily(core::ResourceFilter::byName("/IRS-code/irscg.c",
                                                core::Expansion::Descendants));
  window.addFamily(core::ResourceFilter::byAttributes(
      {{"start time", "<", "10"}}, "time/interval"));
  std::cout << "... in the first 10 seconds: " << window.totalMatchCount() << "\n\n";

  std::cout << core::storeReport(store);
  return 0;
}
