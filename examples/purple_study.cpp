// Case study 1 (paper §4.1): an ASC Purple benchmark study.
//
// "The goal of this study was to demonstrate our ability to collect, store,
// and navigate a full set of performance data from high end systems." IRS
// runs on MCR (Linux) and Frost (AIX) at several process counts are
// generated, converted to PTdf, loaded, and then navigated: a cross-platform
// query, the free-resource workflow, a CSV export for the spreadsheet step,
// and the Figure-5 load-balance chart.
#include <fstream>
#include <iostream>

#include "analyze/loadbalance.h"
#include "analyze/scaling.h"
#include "core/query_session.h"
#include "core/reports.h"
#include "dbal/connection.h"
#include "ptdf/ptdf.h"
#include "sim/irs_gen.h"
#include "tools/irs_parser.h"
#include "util/tempdir.h"

using namespace perftrack;

int main() {
  util::TempDir workspace("purple-study");
  auto conn = dbal::Connection::open(":memory:");
  core::PTDataStore store(*conn);
  store.initialize();

  // --- machine descriptions pre-loaded, as in the paper -----------------------
  {
    const auto machines_ptdf = workspace.file("machines.ptdf");
    std::ofstream out(machines_ptdf);
    ptdf::Writer writer(out);
    sim::emitMachinePtdf(writer, sim::frostConfig(), /*max_nodes=*/4);
    sim::emitMachinePtdf(writer, sim::mcrConfig(), /*max_nodes=*/32);
    out.close();
    ptdf::loadFile(store, machines_ptdf.string());
  }

  // --- run IRS on both platforms at several process counts -------------------
  std::vector<std::string> execs;
  int seed = 1;
  for (const sim::MachineConfig& machine : {sim::frostConfig(), sim::mcrConfig()}) {
    for (int nprocs : {8, 16, 32, 64}) {
      const auto run_dir = workspace.file("run" + std::to_string(seed));
      sim::IrsRunSpec spec{machine, nprocs, "MPI", static_cast<std::uint64_t>(seed), ""};
      const sim::GeneratedRun run = sim::generateIrsRun(spec, run_dir);
      execs.push_back(run.exec_name);

      // PTbuild/PTrun + benchmark output -> PTdf -> data store.
      const auto ptdf_path = workspace.file(run.exec_name + ".ptdf");
      std::ofstream out(ptdf_path);
      ptdf::Writer writer(out);
      const std::size_t results = tools::convertIrsRun(run_dir, machine, writer);
      out.close();
      const auto stats = ptdf::loadFile(store, ptdf_path.string());
      std::cout << "loaded " << run.exec_name << ": " << stats.perf_results
                << " results (" << results << " converted)\n";
      ++seed;
    }
  }
  std::cout << "\n" << core::executionReport(store) << "\n";

  // --- navigate: AIX-only total wall time across runs -------------------------
  core::QuerySession session(store);
  session.addFamily(core::ResourceFilter::byAttributes(
      {{"operating system", "=", "AIX"}}, "grid/machine", core::Expansion::Descendants));
  std::cout << "results on AIX machines: " << session.totalMatchCount() << "\n";
  session.addFamily(core::ResourceFilter::byType("execution"));
  std::cout << "... that are whole-execution level: " << session.totalMatchCount()
            << "\n\n";
  core::ResultTable table = session.run();
  table.filterRows("metric", "=", "total wall time");
  table.addColumn("execution");
  table.sortBy("value", /*descending=*/true);
  std::cout << table.toText() << "\n";

  // --- export for the spreadsheet step (paper: OpenOffice import) ------------
  const auto csv_path = workspace.file("aix_totals.csv");
  {
    std::ofstream csv(csv_path);
    table.toCsv(csv);
  }
  std::cout << "exported " << table.size() << " rows to CSV\n\n";

  // --- Figure 5: min/max of one function across processors vs process count --
  const auto points = analyze::loadBalanceStudy(
      store, "/IRS-1.4/irscg.c/cgsolve", "wall time");
  std::cout << analyze::loadBalanceChart(points, "cgsolve load balance (Frost+MCR)",
                                         "seconds")
                   .render()
            << "\n";

  // --- scaling summary across the whole study ---------------------------------
  std::cout << analyze::scalingTable(
                   analyze::scalingStudy(store, "IRS", "total wall time"),
                   "IRS total wall time scaling (both platforms)")
            << "\n";
  std::cout << core::storeReport(store);
  return 0;
}
