// Quickstart: the PerfTrack public API in one sitting.
//
// Creates an in-memory data store, extends the resource type system, defines
// resources with attributes, records performance results, and runs a
// GUI-style query session with live match counts, free-resource columns,
// and a bar chart — the complete §2/§3 model on a toy dataset.
#include <iostream>

#include "analyze/barchart.h"
#include "core/query_session.h"
#include "core/reports.h"
#include "dbal/connection.h"

using namespace perftrack;

int main() {
  // 1. Open a store and initialize it (schema + Figure-2 base types).
  auto conn = dbal::Connection::open(":memory:");
  core::PTDataStore store(*conn);
  store.initialize();

  // 2. The type system is extensible (paper §2.1): subdivide time intervals.
  store.addResourceType("time/interval/phase");

  // 3. Describe a machine: a hierarchy of grid resources with attributes.
  store.addResource("/GridDemo/Ash/batch/ash0/p0",
                    "grid/machine/partition/node/processor");
  store.addResource("/GridDemo/Ash/batch/ash0/p1",
                    "grid/machine/partition/node/processor");
  store.addResourceAttribute("/GridDemo/Ash", "operating system", "Linux");
  store.addResourceAttribute("/GridDemo/Ash/batch/ash0/p0", "clock MHz", "2400");

  // 4. Record two executions of an application with per-function timings.
  for (int run = 0; run < 2; ++run) {
    const std::string exec = "demo-np" + std::to_string(2 << run);
    store.addExecution(exec, "demoapp");
    store.addResource("/" + exec, "execution");
    store.addResourceAttribute("/" + exec, "nprocs", std::to_string(2 << run));
    store.addResource("/demoapp-build/main.c/solve", "build/module/function");
    const double t = 10.0 / (run + 1);
    store.addPerformanceResult(
        exec, {{{"/demoapp-build/main.c/solve", "/" + exec}, core::FocusType::Primary}},
        "demo-timer", "wall time (max)", t * 1.2, "seconds");
    store.addPerformanceResult(
        exec, {{{"/demoapp-build/main.c/solve", "/" + exec}, core::FocusType::Primary}},
        "demo-timer", "wall time (min)", t, "seconds");
  }

  // 5. Query it the way the GUI does: build a pr-filter family by family,
  //    watching the live match counts.
  core::QuerySession session(store);
  const auto family =
      session.addFamily(core::ResourceFilter::byName("solve", core::Expansion::None));
  std::cout << "family 'solve' alone matches " << session.familyMatchCount(family)
            << " results\n";
  std::cout << "full pr-filter matches " << session.totalMatchCount() << " results\n\n";

  // 6. Retrieve, then add free-resource columns in a second step (Fig. 4).
  core::ResultTable table = session.run();
  for (const std::string& type : table.freeResourceTypes()) table.addColumn(type);
  table.sortBy("value");
  std::cout << table.toText() << "\n";

  // 7. Plot min/max per execution (Fig. 5 style).
  analyze::BarChart chart;
  chart.title = "solve wall time by run";
  chart.value_units = "seconds";
  analyze::ChartSeries min_s{"min", {}};
  analyze::ChartSeries max_s{"max", {}};
  for (const auto& row : table.rows()) {
    if (row.metric == "wall time (min)") {
      chart.categories.push_back(row.execution);
      min_s.values.push_back(row.value);
    } else {
      max_s.values.push_back(row.value);
    }
  }
  chart.series = {min_s, max_s};
  std::cout << chart.render() << "\n";

  // 8. Store-level reports.
  std::cout << core::storeReport(store);
  return 0;
}
