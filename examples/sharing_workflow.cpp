// The data-sharing workflow the paper's introduction motivates:
// "performance data sharing between different performance studies or
// scientists is currently done manually or not done at all ... The
// granularity of exchange is often entire data sets, even if only a small
// subset of the transferred data is actually needed."
//
// Scientist A runs an IRS scaling study on Frost and keeps a local store.
// Scientist B asks for just one execution; A exports it as PTdf (the
// fine-grained exchange unit), B merges it into an existing store that
// already holds unrelated data, runs a scaling analysis, predicts the next
// process count, and later retires the borrowed execution with
// deleteExecution + VACUUM.
#include <fstream>
#include <iostream>
#include <sstream>

#include "analyze/predict.h"
#include "analyze/scaling.h"
#include "core/reports.h"
#include "dbal/connection.h"
#include "ptdf/export.h"
#include "sim/irs_gen.h"
#include "tools/irs_parser.h"
#include "util/tempdir.h"

using namespace perftrack;

int main() {
  util::TempDir workspace("sharing");

  // --- scientist A: a full IRS scaling study in a private store --------------
  auto conn_a = dbal::Connection::open(":memory:");
  core::PTDataStore store_a(*conn_a);
  store_a.initialize();
  for (int nprocs : {8, 16, 32, 64}) {
    const auto dir = workspace.file("a-np" + std::to_string(nprocs));
    sim::generateIrsRun({sim::frostConfig(), nprocs, "MPI", 11, ""}, dir);
    std::ostringstream out;
    ptdf::Writer writer(out);
    tools::convertIrsRun(dir, sim::frostConfig(), writer);
    std::istringstream in(out.str());
    ptdf::load(store_a, in);
  }
  std::cout << "scientist A's store:\n" << core::storeReport(store_a) << "\n";
  std::cout << analyze::scalingTable(
                   analyze::scalingStudy(store_a, "IRS", "total wall time"),
                   "IRS scaling on Frost (store A)")
            << "\n";

  // --- export ONE execution, not the whole data set ---------------------------
  const std::string shared_exec = "irs-frost-np32-s11";
  const auto share_file = workspace.file("share.ptdf");
  {
    std::ofstream out(share_file);
    ptdf::Writer writer(out);
    const auto stats = ptdf::exportExecution(store_a, shared_exec, writer);
    std::cout << "exported " << shared_exec << ": " << stats.resources
              << " resources, " << stats.perf_results << " results ("
              << std::filesystem::file_size(share_file) << " bytes of PTdf)\n\n";
  }

  // --- scientist B: merge into a store with unrelated prior work --------------
  auto conn_b = dbal::Connection::open(":memory:");
  core::PTDataStore store_b(*conn_b);
  store_b.initialize();
  store_b.addExecution("b-own-run", "otherapp");
  store_b.addResource("/b-own-run", "execution");
  store_b.addPerformanceResult("b-own-run", {{{"/b-own-run"}, core::FocusType::Primary}},
                               "tool", "total wall time", 42.0, "seconds");

  ptdf::loadFile(store_b, share_file.string());
  std::cout << "scientist B's store after the merge:\n"
            << core::executionReport(store_b) << "\n";

  // B runs two more small studies locally, then predicts np=64 from them.
  for (int nprocs : {8, 16}) {
    const auto dir = workspace.file("b-np" + std::to_string(nprocs));
    sim::generateIrsRun({sim::frostConfig(), nprocs, "MPI", 11, ""}, dir);
    std::ostringstream out;
    ptdf::Writer writer(out);
    tools::convertIrsRun(dir, sim::frostConfig(), writer);
    std::istringstream in(out.str());
    ptdf::load(store_b, in);
  }
  const auto report = analyze::predictionError(
      store_b, "irs-frost-np8-s11", shared_exec, 32,
      analyze::amdahlScalingModel(0.01), "amdahl");
  std::cout << "prediction for np=32 vs A's measured run:\n"
            << report.toText(5) << "\n";

  // --- retire the borrowed execution when the study ends ----------------------
  store_b.deleteExecution(shared_exec);
  conn_b->database().vacuum();
  store_b.clearCache();
  std::cout << "after deleteExecution + VACUUM:\n" << core::executionReport(store_b);
  return 0;
}
