#!/usr/bin/env bash
# Smoke-runs the two headline benchmarks with a short measurement budget and
# leaves machine-readable JSON next to the binaries:
#
#   BENCH_fig3.json   google-benchmark output of bench_fig3_querysession
#                     (family/total match-count latency, the pr-filter hot path)
#   BENCH_table1.json per-dataset ingest rows from bench_table1_ingest
#                     (Table 1 load path: results/exec, DB growth, load time)
#   BENCH_durability.json ingest throughput with the crash-safe commit path
#                     off/on from bench_durability (rows/s, ms/commit)
#   BENCH_cursor.json streamed vs materialized result drains from
#                     bench_cursor (time-to-first-row, peak-RSS growth)
#   BENCH_server.json ptserverd under N concurrent clients from bench_server
#                     (requests/s and p50/p99 latency, plus a streamed scan)
#
# Wired into CTest under the "bench" label (ctest -L bench). Compare two
# checkouts by diffing the JSON files the runs leave behind.
#
# Usage: bench_smoke.sh [bench-dir] [out-dir]
#   bench-dir  directory holding the bench binaries (default: build/bench
#              relative to the repo root)
#   out-dir    where to write the JSON files (default: bench-dir)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
bench_dir="${1:-$repo_root/build/bench}"
out_dir="${2:-$bench_dir}"
mkdir -p "$out_dir"

for bin in bench_fig3_querysession bench_table1_ingest bench_durability bench_cursor bench_server; do
  if [[ ! -x "$bench_dir/$bin" ]]; then
    echo "bench_smoke: $bench_dir/$bin not built" >&2
    exit 1
  fi
done

echo "== bench_fig3_querysession (short run) =="
"$bench_dir/bench_fig3_querysession" \
  --benchmark_min_time=0.05 \
  --benchmark_out="$out_dir/BENCH_fig3.json" \
  --benchmark_out_format=json

echo "== bench_table1_ingest =="
PT_TABLE1_JSON="$out_dir/BENCH_table1.json" "$bench_dir/bench_table1_ingest"

echo "== bench_durability =="
PT_DURABILITY_JSON="$out_dir/BENCH_durability.json" "$bench_dir/bench_durability"

echo "== bench_cursor =="
PT_CURSOR_JSON="$out_dir/BENCH_cursor.json" "$bench_dir/bench_cursor"

echo "== bench_server =="
PT_SERVER_JSON="$out_dir/BENCH_server.json" "$bench_dir/bench_server"

echo "bench_smoke: wrote $out_dir/BENCH_fig3.json, $out_dir/BENCH_table1.json, $out_dir/BENCH_durability.json, $out_dir/BENCH_cursor.json, and $out_dir/BENCH_server.json"
