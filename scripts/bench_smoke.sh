#!/usr/bin/env bash
# Smoke-runs the headline benchmarks with a short measurement budget and
# leaves machine-readable JSON next to the binaries:
#
#   BENCH_fig3.json   google-benchmark output of bench_fig3_querysession
#                     (family/total match-count latency, the pr-filter hot
#                     path, plus the exec-degree {1,2,4,8} thread sweep)
#   BENCH_query_scaling.json
#                     closure-table ablation plus the morsel-parallel degree
#                     sweep and the vectorized batch-size sweep
#                     ({64,256,1024,4096} rows per batch) over a synthetic
#                     aggregate; sweep entries carry `threads`/`batch_rows`
#                     and `rows` counters. The smoke shrinks the table via
#                     PT_SCALING_ROWS — run the binary without it for the
#                     full 1M-row acceptance sweep.
#   BENCH_table1.json per-dataset ingest rows from bench_table1_ingest
#                     (Table 1 load path: results/exec, DB growth, load time)
#   BENCH_durability.json ingest throughput across none/full/wal durability
#                     from bench_durability (rows/s, ms/commit), plus the
#                     wal-group cells: group-commit fsync sharing at
#                     1/2/4/8 concurrent committers (fsyncs_per_commit)
#   BENCH_cursor.json streamed (row-at-a-time) vs batched (fetchBatch) vs
#                     materialized result drains from bench_cursor
#                     (time-to-first-row, peak-RSS growth, row-vs-batch A/B)
#   BENCH_server.json ptserverd under N concurrent clients from bench_server
#                     (requests/s and p50/p99 latency, plus a streamed scan
#                     and the read_during_commit_{full,wal} pair: reader
#                     stall behind a committing writer, exclusive gate vs
#                     WAL snapshot reads)
#   BENCH_obs.json    observability overhead A/B from bench_obs (tracing
#                     on/off ns per point-SELECT, overhead %, 2% budget)
#   BENCH_resource_match.json
#                     legacy SQL vs inverted-index pr-filter matching from
#                     bench_resource_match (8 families x 100k foci; full
#                     match, count-only popcount, and top-K early
#                     termination, with `speedup` per invidx row)
#
# Every run also leaves a METRICS_<name>.prom sidecar — the Prometheus
# exposition of the process's metrics registry at exit (PT_METRICS_SNAPSHOT)
# — so a perf regression hunt can see the engine counters (pages read,
# fsyncs, plan-cache hits) behind each number. The sidecars are format-checked
# but never gated: a malformed snapshot warns, numbers never fail the smoke.
#
# Wired into CTest under the "bench" label (ctest -L bench). Compare two
# checkouts by diffing the JSON files the runs leave behind.
#
# Usage: bench_smoke.sh [bench-dir] [out-dir]
#   bench-dir  directory holding the bench binaries (default: build/bench
#              relative to the repo root)
#   out-dir    where to write the JSON files (default: bench-dir)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
bench_dir="${1:-$repo_root/build/bench}"
out_dir="${2:-$bench_dir}"
mkdir -p "$out_dir"

for bin in bench_fig3_querysession bench_query_scaling bench_table1_ingest bench_durability bench_cursor bench_server bench_obs bench_resource_match; do
  if [[ ! -x "$bench_dir/$bin" ]]; then
    echo "bench_smoke: $bench_dir/$bin not built" >&2
    exit 1
  fi
done

# Non-gating sanity pass over a metrics sidecar: it must exist, carry at
# least one TYPE comment, and every TYPE line must be well-formed. Warn-only
# by design — observability must never fail the bench smoke.
check_snapshot() {
  local snap="$1"
  if [[ ! -s "$snap" ]]; then
    echo "bench_smoke: WARNING: no metrics snapshot at $snap" >&2
    return 0
  fi
  if ! grep -q '^# TYPE ' "$snap"; then
    echo "bench_smoke: WARNING: $snap has no '# TYPE' lines" >&2
    return 0
  fi
  local bad
  bad="$(grep '^# TYPE ' "$snap" \
    | grep -Ev '^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$' || true)"
  if [[ -n "$bad" ]]; then
    echo "bench_smoke: WARNING: malformed TYPE line(s) in $snap:" >&2
    echo "$bad" >&2
  fi
  return 0
}

echo "== bench_fig3_querysession (short run) =="
PT_METRICS_SNAPSHOT="$out_dir/METRICS_fig3.prom" \
  "$bench_dir/bench_fig3_querysession" \
  --benchmark_min_time=0.05 \
  --benchmark_out="$out_dir/BENCH_fig3.json" \
  --benchmark_out_format=json
check_snapshot "$out_dir/METRICS_fig3.prom"

echo "== bench_query_scaling (degree + batch-size sweeps, short run) =="
PT_SCALING_ROWS=120000 \
  PT_METRICS_SNAPSHOT="$out_dir/METRICS_query_scaling.prom" \
  "$bench_dir/bench_query_scaling" \
  --benchmark_min_time=0.05 \
  --benchmark_out="$out_dir/BENCH_query_scaling.json" \
  --benchmark_out_format=json
check_snapshot "$out_dir/METRICS_query_scaling.prom"

echo "== bench_table1_ingest =="
PT_TABLE1_JSON="$out_dir/BENCH_table1.json" \
  PT_METRICS_SNAPSHOT="$out_dir/METRICS_table1.prom" \
  "$bench_dir/bench_table1_ingest"
check_snapshot "$out_dir/METRICS_table1.prom"

echo "== bench_durability =="
PT_DURABILITY_JSON="$out_dir/BENCH_durability.json" \
  PT_METRICS_SNAPSHOT="$out_dir/METRICS_durability.prom" \
  "$bench_dir/bench_durability"
check_snapshot "$out_dir/METRICS_durability.prom"

echo "== bench_cursor =="
PT_CURSOR_JSON="$out_dir/BENCH_cursor.json" \
  PT_METRICS_SNAPSHOT="$out_dir/METRICS_cursor.prom" \
  "$bench_dir/bench_cursor"
check_snapshot "$out_dir/METRICS_cursor.prom"

echo "== bench_server =="
PT_SERVER_JSON="$out_dir/BENCH_server.json" \
  PT_METRICS_SNAPSHOT="$out_dir/METRICS_server.prom" \
  "$bench_dir/bench_server"
check_snapshot "$out_dir/METRICS_server.prom"

echo "== bench_obs =="
PT_OBS_JSON="$out_dir/BENCH_obs.json" \
  PT_METRICS_SNAPSHOT="$out_dir/METRICS_obs.prom" \
  "$bench_dir/bench_obs"
check_snapshot "$out_dir/METRICS_obs.prom"

echo "== bench_resource_match =="
PT_RESOURCE_MATCH_JSON="$out_dir/BENCH_resource_match.json" \
  PT_METRICS_SNAPSHOT="$out_dir/METRICS_resource_match.prom" \
  "$bench_dir/bench_resource_match"
check_snapshot "$out_dir/METRICS_resource_match.prom"

echo "bench_smoke: wrote $out_dir/BENCH_fig3.json, $out_dir/BENCH_query_scaling.json, $out_dir/BENCH_table1.json, $out_dir/BENCH_durability.json, $out_dir/BENCH_cursor.json, $out_dir/BENCH_server.json, $out_dir/BENCH_obs.json, and $out_dir/BENCH_resource_match.json (plus METRICS_*.prom sidecars)"
