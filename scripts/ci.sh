#!/usr/bin/env bash
# ci.sh — the full gate, runnable locally or from CI.
#
#   scripts/ci.sh            normal build + full ctest (tier-1 gate)
#   scripts/ci.sh sanitize   ASan+UBSan build + full ctest
#   scripts/ci.sh tsan       ThreadSanitizer build + the `server`, `obs`,
#                            `parallel`, and `wal` labels (ptserverd
#                            concurrency: worker pool, DbGate, remote dbal,
#                            stress + crash-restart tests; obs registry/
#                            tracer cross-thread races; morsel-driven
#                            parallel query execution and the shared
#                            ExecPool; WAL snapshot readers racing
#                            group-commit writers)
#   scripts/ci.sh bench      normal build + bench smoke (non-gating label)
#
# Each mode uses its own build directory so they can be run back to back.
set -eu

MODE="${1:-normal}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

case "$MODE" in
  normal)
    BUILD="$ROOT/build-ci"
    cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$BUILD" -j "$JOBS"
    ctest --test-dir "$BUILD" --output-on-failure -LE bench
    ;;
  sanitize)
    BUILD="$ROOT/build-asan"
    cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DPT_SANITIZE=address,undefined
    cmake --build "$BUILD" -j "$JOBS"
    # halt_on_error makes UBSan findings fail the suite instead of scrolling by.
    UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
      ctest --test-dir "$BUILD" --output-on-failure -LE bench
    ;;
  tsan)
    # TSan is incompatible with ASan, so it gets its own tree; the server
    # label selects everything multi-threaded (src/server tests and the
    # daemon crash-restart script), the obs label adds the metrics
    # registry / tracer cross-thread exercises, the parallel label adds
    # the morsel-driven executor and ExecPool suites, and the invidx label
    # adds the inverted-index matcher differentials.
    BUILD="$ROOT/build-tsan"
    cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DPT_SANITIZE=thread
    cmake --build "$BUILD" -j "$JOBS"
    TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
      ctest --test-dir "$BUILD" --output-on-failure -L "server|obs|parallel|wal|vectorized|invidx"
    ;;
  bench)
    # Smoke only: the benchmarks must run to completion; numbers are not gated.
    BUILD="$ROOT/build-ci"
    cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$BUILD" -j "$JOBS"
    ctest --test-dir "$BUILD" --output-on-failure -L bench
    ;;
  *)
    echo "usage: $0 [normal|sanitize|tsan|bench]" >&2
    exit 2
    ;;
esac
