#!/usr/bin/env bash
# crash_kill_test.sh — end-to-end crash/recovery smoke test with a REAL crash.
#
# The in-process crash matrix (tests/minidb/crash_matrix_test.cpp) simulates
# power loss by throwing from a fault-injecting VFS. This script closes the
# remaining gap: it SIGKILLs an actual ptdfload process mid-commit (via the
# PT_DEBUG_CRASH_AT hook), so no destructor, flush, or exit handler runs, and
# then verifies that a plain reopen rolls the hot journal back and the load
# can be redone cleanly.
#
# Usage: crash_kill_test.sh <cli-bin-dir>
set -u

BIN="${1:?usage: crash_kill_test.sh <cli-bin-dir>}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# Two distinct executions (different seeds): run1 seeds the store, run2 is
# the load we crash.
"$BIN/ptgen" irs "$WORK/run1" frost 8 1 >/dev/null || fail "ptgen run1"
"$BIN/ptgen" irs "$WORK/run2" frost 8 2 >/dev/null || fail "ptgen run2"
printf 'irs %s frost\nirs %s frost\n' "$WORK/run1" "$WORK/run2" > "$WORK/index.txt"
"$BIN/ptdfgen" "$WORK/index.txt" "$WORK/ptdf" >/dev/null || fail "ptdfgen"

BASE="$WORK/base.db"
"$BIN/ptdfload" "$BASE" "$WORK/ptdf/run1.ptdf" >/dev/null || fail "seed load of run1"
[ -e "$BASE.journal" ] && fail "clean load left a journal behind"

hot_journals=0
recovered_ok=0

# Crash the run2 load at a spread of disk-operation indices: early (journal
# being written), mid (db pages being overwritten), late (commit point /
# journal invalidation), and past-the-end (no crash at all).
for op in 1 2 5 20 40 55 58 100000; do
  DB="$WORK/trial_$op.db"
  cp "$BASE" "$DB"
  # Run as a background job and wait: keeps bash's "Killed" job-control
  # message for the SIGKILLed child out of the log.
  PT_DEBUG_CRASH_AT=$op "$BIN/ptdfload" "$DB" "$WORK/ptdf/run2.ptdf" >/dev/null 2>&1 &
  { wait $!; status=$?; } 2>/dev/null
  if [ "$status" -ne 137 ] && [ "$status" -ne 0 ]; then
    fail "op $op: expected SIGKILL (137) or clean exit, got $status"
  fi

  if [ -e "$DB.journal" ] && [ -s "$DB.journal" ]; then
    # A hot journal survived the kill: the reopen must report recovery, and
    # the interrupted load must then succeed.
    hot_journals=$((hot_journals + 1))
    out="$("$BIN/ptdfload" "$DB" "$WORK/ptdf/run2.ptdf")" || fail "op $op: reload after crash"
    echo "$out" | grep -q "^recovered:" || fail "op $op: reload did not report recovery"
    [ -e "$DB.journal" ] && fail "op $op: journal still present after recovery"
    "$BIN/ptquery" "$DB" check >/dev/null || fail "op $op: recovered store inconsistent"
    "$BIN/ptquery" "$DB" executions | grep -q "irs-frost-np8-s2" \
      || fail "op $op: run2 missing after recovery + reload"
    recovered_ok=$((recovered_ok + 1))
  else
    # No journal (or an empty one the kill cut off before the first byte):
    # the crash hit outside the journal-protected window, so a plain reopen
    # must find a clean, consistent store.
    "$BIN/ptquery" "$DB" check >/dev/null || fail "op $op: store inconsistent (no journal)"
  fi
done

[ "$hot_journals" -ge 1 ] || fail "no crash point left a hot journal; matrix not exercised"
[ "$recovered_ok" -eq "$hot_journals" ] || fail "some hot journals failed to recover"

# --- WAL mode ----------------------------------------------------------------
# Same real-SIGKILL sweep with --durability=wal. A crash leaves a stale
# `<db>.wal` behind; the reopen must replay the committed prefix (kill landed
# after the commit fsync, e.g. mid-checkpoint) or discard the torn tail
# (kill landed mid-append) — reported with the same "recovered:" prefix —
# and the interrupted load must then succeed.

WALBASE="$WORK/walbase.db"
"$BIN/ptdfload" --durability=wal "$WALBASE" "$WORK/ptdf/run1.ptdf" >/dev/null \
  || fail "wal: seed load of run1"
[ -e "$WALBASE.wal" ] && fail "wal: clean load left a WAL behind"

# One crashed WAL trial: SIGKILL the run2 load at disk op $1, then verify
# recovery. Sets wal_outcome to replayed | discarded | none.
wal_trial() {
  local op="$1"
  local DB="$WORK/wtrial_$op.db"
  rm -f "$DB" "$DB.wal"
  cp "$WALBASE" "$DB"
  PT_DEBUG_CRASH_AT=$op "$BIN/ptdfload" --durability=wal "$DB" \
    "$WORK/ptdf/run2.ptdf" >/dev/null 2>&1 &
  { wait $!; status=$?; } 2>/dev/null
  if [ "$status" -ne 137 ] && [ "$status" -ne 0 ]; then
    fail "wal op $op: expected SIGKILL (137) or clean exit, got $status"
  fi
  wal_outcome=none
  if [ -e "$DB.wal" ] && [ -s "$DB.wal" ]; then
    # Stale WAL: the reopen must report recovery and remove it. Re-loading
    # run2 is idempotent, so the redo is safe even when the WAL already
    # held the complete commit.
    out="$("$BIN/ptdfload" --durability=wal "$DB" "$WORK/ptdf/run2.ptdf")" \
      || fail "wal op $op: reload after crash"
    echo "$out" | grep -q "^recovered:" \
      || fail "wal op $op: reload did not report recovery"
    if echo "$out" | grep -q "^recovered: replayed"; then
      wal_outcome=replayed
    else
      wal_outcome=discarded
    fi
    [ -e "$DB.wal" ] && fail "wal op $op: WAL still present after clean reload"
  fi
  "$BIN/ptquery" "$DB" check >/dev/null || fail "wal op $op: store inconsistent"
  if [ "$wal_outcome" != none ]; then
    "$BIN/ptquery" "$DB" executions | grep -q "irs-frost-np8-s2" \
      || fail "wal op $op: run2 missing after recovery + reload"
  fi
}

# Find T = one past the load's total disk-op count (smallest crash index
# that never fires), so late crash points can be aimed at the close-time
# checkpoint: its page writes, fsyncs, and truncates are the final ops.
lo=1
hi=64
while :; do
  DB="$WORK/probe.db"
  rm -f "$DB" "$DB.wal"
  cp "$WALBASE" "$DB"
  PT_DEBUG_CRASH_AT=$hi "$BIN/ptdfload" --durability=wal "$DB" \
    "$WORK/ptdf/run2.ptdf" >/dev/null 2>&1 &
  { wait $!; status=$?; } 2>/dev/null
  [ "$status" -eq 0 ] && break
  lo=$hi
  hi=$((hi * 2))
  [ "$hi" -gt 4194304 ] && fail "wal: cannot bound the load's disk-op count"
done
while [ $((lo + 1)) -lt "$hi" ]; do
  mid=$(((lo + hi) / 2))
  DB="$WORK/probe.db"
  rm -f "$DB" "$DB.wal"
  cp "$WALBASE" "$DB"
  PT_DEBUG_CRASH_AT=$mid "$BIN/ptdfload" --durability=wal "$DB" \
    "$WORK/ptdf/run2.ptdf" >/dev/null 2>&1 &
  { wait $!; status=$?; } 2>/dev/null
  if [ "$status" -eq 0 ]; then hi=$mid; else lo=$mid; fi
done
T=$hi

wal_replays=0
wal_discards=0
# Early/mid ops land in the WAL append (torn tail → discarded); ops close
# to T land in the close-time checkpoint (commit already fsynced →
# replayed); T itself exercises the no-crash path (no WAL left behind).
for op in 1 2 5 20 $((T / 4)) $((T / 2)) $((3 * T / 4)) $((T - 2)) $((T - 5)) "$T"; do
  [ "$op" -ge 1 ] || continue
  wal_trial "$op"
  case "$wal_outcome" in
    replayed) wal_replays=$((wal_replays + 1)) ;;
    discarded) wal_discards=$((wal_discards + 1)) ;;
  esac
done

[ "$wal_replays" -ge 1 ] \
  || fail "wal: no crash point exercised committed-WAL replay (mid-checkpoint kill)"
[ "$wal_discards" -ge 1 ] \
  || fail "wal: no crash point exercised torn-tail discard (mid-append kill)"

echo "OK: $hot_journals hot journal(s) recovered, all trial stores consistent"
echo "OK: WAL sweep (T=$T): $wal_replays replay(s), $wal_discards torn-tail discard(s)"
