#!/usr/bin/env bash
# golden_test.sh — byte-exact golden-file test for the ptquery CLI surface.
#
# Rebuilds a deterministic store from scratch (seeded ptgen -> ptdfgen ->
# ptdfload) and byte-compares the output of a fixed set of ptquery commands
# against the files checked in under tests/golden/. Any drift in CSV
# formatting, report layout, row ordering, or the seeded simulator itself
# fails the test with a diff.
#
# Usage:   golden_test.sh <cli-bin-dir> <golden-dir>
# Regen:   PT_REGEN_GOLDEN=1 golden_test.sh ...   rewrites the goldens
#          (run it after an intentional output change, then review the diff).
set -u

BIN="${1:?usage: golden_test.sh <cli-bin-dir> <golden-dir>}"
GOLD="${2:?usage: golden_test.sh <cli-bin-dir> <golden-dir>}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

"$BIN/ptgen" irs "$WORK/run" frost 4 1 >/dev/null || fail "ptgen"
printf 'irs %s frost\n' "$WORK/run" > "$WORK/index.txt"
"$BIN/ptdfgen" "$WORK/index.txt" "$WORK/ptdf" >/dev/null || fail "ptdfgen"
"$BIN/ptdfload" "$WORK/db" "$WORK/ptdf/run.ptdf" >/dev/null || fail "ptdfload"

# The command set under golden control. Add a line here and regenerate to
# put another surface under byte-exact protection.
run_case() {
  case "$1" in
    types.txt)            "$BIN/ptquery" "$WORK/db" types ;;
    metrics.txt)          "$BIN/ptquery" "$WORK/db" metrics ;;
    select_function.csv)  "$BIN/ptquery" "$WORK/db" select "name=IRS-1.4/irsrad.c/rbndcom:B" --csv ;;
    select_exec.csv)      "$BIN/ptquery" "$WORK/db" select "name=/irs-frost-np4-s1" "type=build/module/function" --csv ;;
    # The EXPLAIN cases pin the parallel degree (PT_EXEC_THREADS=4) and
    # disable the small-table page gate (PT_EXEC_MIN_PAGES=1) so the plan
    # shows the GATHER subtree identically on any host, core count aside.
    explain_tree.txt)     PT_EXEC_THREADS=4 PT_EXEC_MIN_PAGES=1 "$BIN/ptquery" "$WORK/db" sql "EXPLAIN SELECT ra.name, COUNT(*) FROM resource_attribute ra JOIN resource_item r ON ra.resource_id = r.id GROUP BY ra.name ORDER BY ra.name LIMIT 5" ;;
    explain_analyze.txt)
      # Timings vary run to run; mask them so only the tree shape, the row
      # counts, and the loop counts stay under byte-exact protection. The
      # PER-WORKER line is masked entirely: the morsel race distributes rows
      # across workers differently on every run.
      PT_EXEC_THREADS=4 PT_EXEC_MIN_PAGES=1 "$BIN/ptquery" "$WORK/db" sql "EXPLAIN ANALYZE SELECT ra.name, COUNT(*) FROM resource_attribute ra JOIN resource_item r ON ra.resource_id = r.id GROUP BY ra.name ORDER BY ra.name LIMIT 5" \
        | sed -E 's/time=[0-9]+\.[0-9]+ms/time=<T>ms/g' \
        | sed -E 's/PER-WORKER .*/PER-WORKER <masked>/' ;;
    *) fail "unknown golden case '$1'" ;;
  esac
}

CASES="types.txt metrics.txt select_function.csv select_exec.csv explain_tree.txt explain_analyze.txt"

status=0
for case_name in $CASES; do
  out="$WORK/$case_name"
  run_case "$case_name" > "$out" || fail "$case_name: command failed"
  if [ "${PT_REGEN_GOLDEN:-0}" = "1" ]; then
    cp "$out" "$GOLD/$case_name"
    echo "regenerated $GOLD/$case_name"
  elif ! cmp -s "$out" "$GOLD/$case_name"; then
    echo "FAIL: $case_name differs from golden:" >&2
    diff -u "$GOLD/$case_name" "$out" | head -40 >&2
    status=1
  fi
done

[ "$status" -eq 0 ] || exit 1
[ "${PT_REGEN_GOLDEN:-0}" = "1" ] || echo "OK: $(echo $CASES | wc -w) golden file(s) match"
