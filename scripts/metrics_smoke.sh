#!/usr/bin/env bash
# metrics_smoke.sh — end-to-end smoke of the observability surface.
#
# Boots ptserverd with --metrics-port 0 on a fresh store, scrapes the HTTP
# endpoint with nothing but bash's /dev/tcp, and validates:
#
#   * /metrics answers HTTP 200 with the Prometheus text exposition
#     Content-Type and well-formed "# TYPE <name> <kind>" lines;
#   * counters are live: pt_server_frames_served_total strictly increases
#     after a ptquery --connect workload;
#   * the parallel-exec metrics (pt_exec_morsels_dispatched_total,
#     pt_exec_parallel_queries_total, pt_exec_pool_threads,
#     pt_exec_gather_wait_ms) and the vectorized-pipeline metrics
#     (pt_exec_batches_total, pt_exec_batch_fill_rows) appear and move after
#     a GROUP BY workload on a server started with --exec-threads 4
#     (PT_EXEC_MIN_PAGES=1 defeats the small-table gate so the smoke stays
#     fast);
#   * the inverted-index metrics (pt_invidx_builds_total,
#     pt_invidx_probes_total, pt_invidx_lists) appear and move after an
#     IN-list probe on a secondary-indexed integer column;
#   * /traces shows the recent-query ring with the workload's SQL in it;
#   * /healthz answers "ok" and /varz reports the build/config lines;
#   * the diagnosis metrics (pt_diag_diffs_total, pt_diag_pairs_aligned_total,
#     pt_diag_divergences_total, pt_diag_diff_ms) appear and move after two
#     bench runs are ingested over the wire with pt_perf_ingest and DIFFed
#     with ptquery --connect;
#   * an unknown path answers 404 and does not kill the daemon;
#   * the daemon still drains cleanly (SIGTERM -> exit 0) afterwards.
#
# Usage: metrics_smoke.sh <cli-bin-dir>
set -u

BIN="${1:?usage: metrics_smoke.sh <cli-bin-dir>}"
WORK="$(mktemp -d)"
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# --slow-query-ms puts the tracer in time-everything mode (classifying slow
# queries needs every span), which makes the /traces assertions below
# deterministic; 5000ms keeps the slow log itself empty. --exec-threads 4
# with the page gate off lets the small parallel workload below actually go
# parallel regardless of the host's core count.
PT_EXEC_MIN_PAGES=1 \
"$BIN/ptserverd" --listen 127.0.0.1:0 --workers 2 --metrics-port 0 \
  --slow-query-ms 5000 --exec-threads 4 \
  "$WORK/store.db" > "$WORK/srv.out" 2> "$WORK/srv.err" &
SRV_PID=$!
for _ in $(seq 1 200); do
  PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' "$WORK/srv.out")"
  MPORT="$(sed -n 's|^metrics on http://127\.0\.0\.1:\([0-9][0-9]*\)/metrics$|\1|p' "$WORK/srv.out")"
  [ -n "$PORT" ] && [ -n "$MPORT" ] && break
  kill -0 "$SRV_PID" 2>/dev/null || fail "ptserverd died at startup: $(cat "$WORK/srv.err")"
  sleep 0.02
done
[ -n "${PORT:-}" ] || fail "no wire port line in server output"
[ -n "${MPORT:-}" ] || fail "no metrics port line in server output"

# Minimal HTTP/1.0 GET over bash /dev/tcp; response (headers + body) on stdout.
scrape() {
  local path="$1"
  exec 3<>"/dev/tcp/127.0.0.1/$MPORT" || fail "cannot connect to metrics port"
  printf 'GET %s HTTP/1.0\r\n\r\n' "$path" >&3
  cat <&3
  exec 3<&- 3>&-
}

frames_of() {
  # Exposition sample line: "<name> <value>".
  printf '%s\n' "$1" | sed -n 's/^pt_server_frames_served_total \([0-9][0-9]*\)$/\1/p'
}

# --- first scrape: format checks on an idle server ---------------------------

RESP="$(scrape /metrics)" || fail "first scrape"
printf '%s\n' "$RESP" | head -1 | grep -q '^HTTP/1\.0 200' \
  || fail "/metrics did not answer 200: $(printf '%s\n' "$RESP" | head -1)"
printf '%s\n' "$RESP" | grep -qi '^Content-Type: text/plain; version=0\.0\.4' \
  || fail "/metrics missing Prometheus text Content-Type"
# Every TYPE comment must be "# TYPE <metric_name> counter|gauge|histogram".
BAD_TYPES="$(printf '%s\n' "$RESP" | grep '^# TYPE ' \
  | grep -Ev '^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$')"
[ -z "$BAD_TYPES" ] || fail "malformed TYPE line(s): $BAD_TYPES"
[ "$(printf '%s\n' "$RESP" | grep -c '^# TYPE ')" -ge 5 ] \
  || fail "expected at least 5 TYPE lines on a booted server"
printf '%s\n' "$RESP" | grep -q '^pt_server_sessions 0$' \
  || fail "idle server should report 0 sessions"
FRAMES_BEFORE="$(frames_of "$RESP")"
[ -n "$FRAMES_BEFORE" ] || fail "pt_server_frames_served_total sample missing"

# --- health and introspection endpoints --------------------------------------

HEALTH="$(scrape /healthz)" || fail "healthz scrape"
printf '%s\n' "$HEALTH" | head -1 | grep -q '^HTTP/1\.0 200' || fail "/healthz not 200"
printf '%s\n' "$HEALTH" | grep -q '^ok$' || fail "/healthz body is not ok: $HEALTH"

VARZ="$(scrape /varz)" || fail "varz scrape"
printf '%s\n' "$VARZ" | head -1 | grep -q '^HTTP/1\.0 200' || fail "/varz not 200"
printf '%s\n' "$VARZ" | grep -q '^pt_server_protocol_version [0-9]' \
  || fail "/varz missing protocol version"
printf '%s\n' "$VARZ" | grep -q '^pt_server_durability \(full\|wal\|none\)$' \
  || fail "/varz missing durability mode"
printf '%s\n' "$VARZ" | grep -q '^pt_server_workers 2$' \
  || fail "/varz workers should echo --workers 2"
printf '%s\n' "$VARZ" | grep -q '^pt_server_exec_threads 4$' \
  || fail "/varz exec_threads should echo --exec-threads 4"
printf '%s\n' "$VARZ" | grep -q '^pt_server_build_compiler ' \
  || fail "/varz missing build info"
printf '%s\n' "$VARZ" | grep -q '^pt_server_uptime_ms [0-9]' \
  || fail "/varz missing uptime"

# --- workload, then prove the counters moved ---------------------------------

sql() { "$BIN/ptquery" --connect "127.0.0.1:$PORT" sql "$1"; }
sql "CREATE TABLE smoke (id INTEGER PRIMARY KEY, v INTEGER)" >/dev/null \
  || fail "CREATE TABLE over the wire"
for i in 1 2 3; do
  sql "INSERT INTO smoke (v) VALUES ($i)" >/dev/null || fail "insert $i"
done
sql "SELECT COUNT(*) FROM smoke" >/dev/null || fail "select over the wire"

RESP="$(scrape /metrics)" || fail "second scrape"
FRAMES_AFTER="$(frames_of "$RESP")"
[ -n "$FRAMES_AFTER" ] || fail "frames counter disappeared"
[ "$FRAMES_AFTER" -gt "$FRAMES_BEFORE" ] \
  || fail "frames_served did not move ($FRAMES_BEFORE -> $FRAMES_AFTER)"
printf '%s\n' "$RESP" | grep -q '^pt_db_file_bytes [1-9]' \
  || fail "db file size gauge not positive after writes"

# --- parallel-exec metrics ---------------------------------------------------
# A grouped aggregate on the gated-open store runs morsel-parallel (the
# server was started with --exec-threads 4 and PT_EXEC_MIN_PAGES=1), which
# must register and move all four exec metrics. The table needs to span
# several morsels (~2k rows each) or the scheduler clamps the degree back to
# one and never spawns a pool thread, so load 10k rows in 100-row batches.

HUNDRED="$(seq 1 100 | sed 's/.*/(&)/' | paste -sd, -)"
for i in $(seq 1 100); do
  sql "INSERT INTO smoke (v) VALUES $HUNDRED" >/dev/null \
    || fail "parallel workload insert batch $i"
done
sql "SELECT v, COUNT(*) FROM smoke GROUP BY v ORDER BY v" >/dev/null \
  || fail "parallel GROUP BY over the wire"

RESP="$(scrape /metrics)" || fail "parallel-exec scrape"
printf '%s\n' "$RESP" | grep -q '^pt_exec_parallel_queries_total [1-9]' \
  || fail "pt_exec_parallel_queries_total did not move after a parallel GROUP BY"
printf '%s\n' "$RESP" | grep -q '^pt_exec_morsels_dispatched_total [1-9]' \
  || fail "pt_exec_morsels_dispatched_total did not move"
printf '%s\n' "$RESP" | grep -q '^pt_exec_pool_threads [1-9]' \
  || fail "pt_exec_pool_threads gauge not positive"
printf '%s\n' "$RESP" | grep -q '^pt_exec_gather_wait_ms_count [1-9]' \
  || fail "pt_exec_gather_wait_ms histogram recorded no observations"
printf '%s\n' "$RESP" | grep -q '^pt_exec_batches_total [1-9]' \
  || fail "pt_exec_batches_total did not move (vectorized pipeline idle?)"
printf '%s\n' "$RESP" | grep -q '^pt_exec_batch_fill_rows_count [1-9]' \
  || fail "pt_exec_batch_fill_rows histogram recorded no observations"

# --- inverted-index metrics --------------------------------------------------
# An IN-list probe on a secondary-indexed integer column takes the planner's
# posting-list path (invidx is on by default), which builds a rid posting
# index for smoke.v and probes it — pt_invidx_builds/probes_total must move
# and the lists gauge must go positive.

sql "CREATE INDEX smoke_v ON smoke (v)" >/dev/null \
  || fail "CREATE INDEX for the posting-path workload"
sql "SELECT id FROM smoke WHERE v IN (5, 6, 7, 8) ORDER BY id" >/dev/null \
  || fail "IN-list probe over the wire"

RESP="$(scrape /metrics)" || fail "invidx scrape"
printf '%s\n' "$RESP" | grep -q '^pt_invidx_builds_total [1-9]' \
  || fail "pt_invidx_builds_total did not move after the IN-list probe"
printf '%s\n' "$RESP" | grep -q '^pt_invidx_probes_total [1-9]' \
  || fail "pt_invidx_probes_total did not move"
printf '%s\n' "$RESP" | grep -q '^pt_invidx_lists [1-9]' \
  || fail "pt_invidx_lists gauge not positive"

TRACES="$(scrape /traces)" || fail "trace scrape"
printf '%s\n' "$TRACES" | head -1 | grep -q '^HTTP/1\.0 200' || fail "/traces not 200"
printf '%s\n' "$TRACES" | grep -q '== recent queries' || fail "trace dump header missing"
# The INSERT storm above has rolled the ring past the early COUNT(*) probe,
# so look for the parallel GROUP BY, which ran last.
printf '%s\n' "$TRACES" | grep -q 'SELECT v, COUNT(\*) FROM smoke GROUP BY v' \
  || fail "workload query not in trace ring"

# --- diagnosis (DIFF) metrics ------------------------------------------------
# Ingest two synthetic bench runs over the wire with pt_perf_ingest, then
# DIFF them with ptquery --connect: the pt_diag_* counters and the diff
# latency histogram must register and move. (This runs after the /traces
# assertions — the ingest workload rolls the recent-query ring.)

cat > "$WORK/BENCH_smokebench.json" <<'EOF'
[{"phase": "probe", "table_rows": 1000, "ttfr_ms": 2.0, "total_ms": 40.0}]
EOF
"$BIN/pt_perf_ingest" --connect "127.0.0.1:$PORT" ingest runA \
  "$WORK/BENCH_smokebench.json" >/dev/null || fail "wire ingest of run A"
sed -i 's/"total_ms": 40.0/"total_ms": 90.0/' "$WORK/BENCH_smokebench.json"
"$BIN/pt_perf_ingest" --connect "127.0.0.1:$PORT" ingest runB \
  "$WORK/BENCH_smokebench.json" >/dev/null || fail "wire ingest of run B"

DIFF_OUT="$("$BIN/ptquery" --connect "127.0.0.1:$PORT" diff \
  smokebench@runA smokebench@runB)" || fail "DIFF over the wire"
printf '%s\n' "$DIFF_OUT" | grep -q 'ranked explanations' \
  || fail "DIFF output missing ranked explanations: $DIFF_OUT"
printf '%s\n' "$DIFF_OUT" | grep -q 'total_ms' \
  || fail "DIFF did not rank the planted total_ms divergence"

RESP="$(scrape /metrics)" || fail "diag scrape"
printf '%s\n' "$RESP" | grep -q '^pt_diag_diffs_total [1-9]' \
  || fail "pt_diag_diffs_total did not move after a wire DIFF"
printf '%s\n' "$RESP" | grep -q '^pt_diag_pairs_aligned_total [1-9]' \
  || fail "pt_diag_pairs_aligned_total did not move"
printf '%s\n' "$RESP" | grep -q '^pt_diag_divergences_total [1-9]' \
  || fail "pt_diag_divergences_total did not move"
printf '%s\n' "$RESP" | grep -q '^pt_diag_diff_ms_count [1-9]' \
  || fail "pt_diag_diff_ms histogram recorded no observations"

NOPE="$(scrape /nope)" || fail "404 scrape"
printf '%s\n' "$NOPE" | head -1 | grep -q '^HTTP/1\.0 404' || fail "/nope not 404"
kill -0 "$SRV_PID" 2>/dev/null || fail "daemon died after unknown-path request"

# --- clean drain -------------------------------------------------------------

kill -TERM "$SRV_PID"
{ wait "$SRV_PID"; status=$?; } 2>/dev/null
SRV_PID=""
[ "$status" -eq 0 ] || fail "server exited $status on SIGTERM drain"

echo "OK: metrics endpoint scraped, counters live, traces populated, 404 handled"
