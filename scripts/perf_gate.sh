#!/usr/bin/env bash
# perf_gate.sh — self-ingested performance history with a regression gate.
#
# Feeds the BENCH_*.json files of one bench run (scripts/bench_smoke.sh
# output, plus any METRICS_*.prom sidecars next to them) into a PerfTrack
# store with pt_perf_ingest, DIFFs every application against its stored
# baseline execution, and classifies the run:
#
#   baseline-established   first run for this application
#   improvement            a time metric got >10% faster (baseline advances)
#   stable                 every time metric within +/-10%
#   minor-regression       a time metric got 10-20% slower
#   critical-regression    a time metric got >20% slower (exit 1)
#
# The classification happens through the same DIFF engine ptquery exposes,
# so `ptquery <db> diff <baseline> <current>` reproduces any verdict with
# its full ranked explanation.
#
# Usage: perf_gate.sh <cli-bin-dir> <bench-dir> [options]
#   --db FILE       history store (default: <bench-dir>/perf_history.db)
#   --label L       run label (default: gate-<UTC timestamp>[-<git sha>])
#   --report FILE   JSON-lines gate report (default: <bench-dir>/perf_gate.jsonl)
#   --warn-only     report critical regressions but exit 0 (CI soft mode;
#                   PT_PERF_GATE_WARN_ONLY=1 does the same)
set -u

BIN="${1:?usage: perf_gate.sh <cli-bin-dir> <bench-dir> [--db F] [--label L] [--report F] [--warn-only]}"
BENCH_DIR="${2:?usage: perf_gate.sh <cli-bin-dir> <bench-dir>}"
shift 2

DB="$BENCH_DIR/perf_history.db"
LABEL=""
REPORT="$BENCH_DIR/perf_gate.jsonl"
WARN_ONLY=""
while [ $# -gt 0 ]; do
  case "$1" in
    --db) DB="$2"; shift 2 ;;
    --label) LABEL="$2"; shift 2 ;;
    --report) REPORT="$2"; shift 2 ;;
    --warn-only) WARN_ONLY="--warn-only"; shift ;;
    *) echo "perf_gate.sh: unknown option $1" >&2; exit 2 ;;
  esac
done

if [ -z "$LABEL" ]; then
  LABEL="gate-$(date -u +%Y%m%d-%H%M%S)"
  SHA="$(git -C "$(dirname "$0")/.." rev-parse --short HEAD 2>/dev/null)" \
    && LABEL="$LABEL-$SHA"
fi

set --
for f in "$BENCH_DIR"/BENCH_*.json; do
  [ -e "$f" ] && set -- "$@" "$f"
done
if [ $# -eq 0 ]; then
  echo "perf_gate.sh: no BENCH_*.json in $BENCH_DIR (run scripts/bench_smoke.sh first)" >&2
  exit 2
fi

"$BIN/pt_perf_ingest" "$DB" gate "$LABEL" "$@" --report "$REPORT" $WARN_ONLY
STATUS=$?
echo "perf_gate.sh: report -> $REPORT (history: $DB)"
exit $STATUS
