#!/usr/bin/env bash
# perf_gate_test.sh — end-to-end test of the perf-history pipeline (ISSUE 10).
#
# Drives the whole loop with synthetic bench output:
#
#   1. run A ingests through scripts/perf_gate.sh -> baseline-established;
#   2. run B plants a 2x slowdown in total_ms -> critical-regression,
#      exit 1, baseline unchanged;
#   3. ptquery diff explains the regression identically from the history db
#      directly and over the wire from a ptserverd serving it (byte-compare);
#   4. ptcompare --connect reproduces the comparison against the same server;
#   5. run C plants a speedup -> improvement, exit 0, baseline advanced;
#   6. a gbench-schema file rides the same gate run as a second application.
#
# Usage: perf_gate_test.sh <cli-bin-dir>
set -u

BIN="${1:?usage: perf_gate_test.sh <cli-bin-dir>}"
SCRIPTS="$(cd "$(dirname "$0")" && pwd)"
WORK="$(mktemp -d)"
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

DB="$WORK/perf_history.db"
mkdir -p "$WORK/bench"

write_run() {
  # write_run <total_ms> — one flat-array bench file plus a prom sidecar,
  # and a google-benchmark-schema file for a second application.
  cat > "$WORK/bench/BENCH_gatecase.json" <<EOF
[{"phase": "scan", "table_rows": 5000, "rows": 5000, "ttfr_ms": 1.25, "total_ms": $1, "rss_growth_kb": 512}]
EOF
  cat > "$WORK/bench/METRICS_gatecase.prom" <<'EOF'
# TYPE pt_sql_statements_total counter
pt_sql_statements_total 7
pt_exec_batches_total 3
EOF
  cat > "$WORK/bench/BENCH_gbenchcase.json" <<EOF
{"context": {"host_name": "ci"}, "benchmarks": [
  {"name": "BM_Lookup/1024", "iterations": 100, "real_time": $2,
   "cpu_time": $2, "time_unit": "ns", "items_per_second": 12000.0}
]}
EOF
}

gate() {
  "$SCRIPTS/perf_gate.sh" "$BIN" "$WORK/bench" --db "$DB" --label "$1" \
    --report "$WORK/report.jsonl" > "$WORK/gate.out" 2>&1
}

# --- run A: first sight of both applications ---------------------------------

write_run 100.0 2000.0
gate runA || fail "baseline run exited $?: $(cat "$WORK/gate.out")"
grep -q '"application": "gatecase", "verdict": "baseline-established"' \
  "$WORK/report.jsonl" || fail "run A should establish the gatecase baseline"
grep -q '"application": "gbenchcase", "verdict": "baseline-established"' \
  "$WORK/report.jsonl" || fail "run A should establish the gbenchcase baseline"

# --- run B: planted 2x slowdown -> critical, nonzero exit, baseline kept -----

write_run 200.0 2000.0
if gate runB; then fail "planted 2x slowdown must make the gate exit nonzero"; fi
grep -q '"application": "gatecase", "verdict": "critical-regression"' \
  "$WORK/report.jsonl" || fail "run B gatecase verdict: $(cat "$WORK/report.jsonl")"
grep -q '"metric": "total_ms"' "$WORK/report.jsonl" \
  || fail "critical verdict should cite total_ms"
grep -q '"application": "gbenchcase", "verdict": "stable"' "$WORK/report.jsonl" \
  || fail "unchanged gbenchcase should be stable"
grep -q '"baseline_updated": false' "$WORK/report.jsonl" \
  || fail "regression must not advance the baseline"
"$BIN/pt_perf_ingest" "$DB" baseline | grep -q '^gatecase -> gatecase@runA$' \
  || fail "baseline should still be runA: $("$BIN/pt_perf_ingest" "$DB" baseline)"

# warn-only mode downgrades the same verdict to exit 0.
rm -f "$DB" && write_run 100.0 2000.0 && gate warnA \
  || fail "warn-only baseline run failed"
write_run 200.0 2000.0
"$SCRIPTS/perf_gate.sh" "$BIN" "$WORK/bench" --db "$DB" --label warnB \
  --report "$WORK/warn.jsonl" --warn-only >/dev/null 2>&1 \
  || fail "--warn-only must exit 0 on a critical regression"
grep -q '"verdict": "critical-regression"' "$WORK/warn.jsonl" \
  || fail "warn-only must still report the regression"

# --- DIFF explains the regression; local and wire output byte-identical ------

"$BIN/ptquery" "$DB" diff gatecase@warnA gatecase@warnB > "$WORK/local.diff" \
  || fail "local ptquery diff"
grep -q 'total_ms \[/\$EXEC/scan' "$WORK/local.diff" \
  || fail "diff should rank the planted total_ms divergence: $(cat "$WORK/local.diff")"

"$BIN/ptserverd" --listen 127.0.0.1:0 "$DB" > "$WORK/srv.out" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 200); do
  PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' "$WORK/srv.out")"
  [ -n "$PORT" ] && break
  kill -0 "$SRV_PID" 2>/dev/null || fail "ptserverd died: $(cat "$WORK/srv.out")"
  sleep 0.02
done
[ -n "${PORT:-}" ] || fail "no port line from ptserverd"

"$BIN/ptquery" --connect "127.0.0.1:$PORT" diff gatecase@warnA gatecase@warnB \
  > "$WORK/wire.diff" || fail "wire ptquery diff"
cmp "$WORK/local.diff" "$WORK/wire.diff" \
  || fail "local and wire DIFF output differ: $(diff "$WORK/local.diff" "$WORK/wire.diff")"

# Top-K and threshold knobs survive the wire too.
"$BIN/ptquery" --connect "127.0.0.1:$PORT" diff gatecase@warnA gatecase@warnB \
  --top 1 --threshold 0.5 > "$WORK/topk.diff" || fail "wire diff with knobs"
grep -q 'divergent:         1' "$WORK/topk.diff" \
  || fail "threshold 0.5 should keep only the 2x total_ms pair: $(cat "$WORK/topk.diff")"

# ptcompare against the same live server (remote comparison satellite).
"$BIN/ptcompare" --connect "127.0.0.1:$PORT" gatecase@warnA gatecase@warnB \
  > "$WORK/compare.out" || fail "ptcompare --connect"
grep -q 'comparison: gatecase@warnA vs gatecase@warnB' "$WORK/compare.out" \
  || fail "ptcompare header missing: $(cat "$WORK/compare.out")"
grep -q 'total_ms' "$WORK/compare.out" \
  || fail "ptcompare should list the total_ms change"

kill -TERM "$SRV_PID"
{ wait "$SRV_PID"; status=$?; } 2>/dev/null
SRV_PID=""
[ "$status" -eq 0 ] || fail "ptserverd exited $status on SIGTERM"

# --- run C: planted speedup -> improvement, baseline advances ----------------

write_run 50.0 2000.0
gate warnC || fail "improvement run exited $?: $(cat "$WORK/gate.out")"
grep -q '"application": "gatecase", "verdict": "improvement"' "$WORK/report.jsonl" \
  || fail "run C verdict: $(cat "$WORK/report.jsonl")"
grep -q '"application": "gatecase".*"baseline_updated": true' "$WORK/report.jsonl" \
  || fail "improvement must advance the baseline"
"$BIN/pt_perf_ingest" "$DB" baseline | grep -q '^gatecase -> gatecase@warnC$' \
  || fail "baseline should now be warnC: $("$BIN/pt_perf_ingest" "$DB" baseline)"

echo "OK: gate classified baseline/critical/improvement; local and wire DIFF byte-identical"
