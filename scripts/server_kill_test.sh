#!/usr/bin/env bash
# server_kill_test.sh — SIGKILL a live ptserverd mid-commit, restart, verify
# recovery. Runs the whole sweep twice: once in rollback-journal mode
# (restart rolls the hot journal back) and once in WAL mode with a small
# autocheckpoint (restart replays the committed WAL prefix or discards a
# torn tail; the low threshold makes some kills land mid-checkpoint).
#
# Companion to crash_kill_test.sh: that script crashes a single-process
# loader; this one crashes the daemon while remote clients are writing
# through the wire protocol (ptquery --connect), so the whole
# client → frame → session → gate → engine → pager → journal path is live
# when the process dies. PT_DEBUG_CRASH_AT=<n> SIGKILLs the daemon at the
# n-th disk write/sync/truncate — no destructor, drain, or flush runs.
# A plain restart must then roll the hot journal back, report it, and serve
# a consistent store to new clients.
#
# Usage: server_kill_test.sh <cli-bin-dir>
set -u

BIN="${1:?usage: server_kill_test.sh <cli-bin-dir>}"
WORK="$(mktemp -d)"
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# Starts ptserverd on db $1 (remaining args pass through), scrapes the
# ephemeral port into $PORT, leaves the pid in $SRV_PID.
start_server() {
  local db="$1"
  shift
  : > "$WORK/srv.out"
  : > "$WORK/srv.err"
  "$BIN/ptserverd" --listen 127.0.0.1:0 --workers 2 "$@" "$db" \
    > "$WORK/srv.out" 2> "$WORK/srv.err" &
  SRV_PID=$!
  for _ in $(seq 1 200); do
    PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' "$WORK/srv.out")"
    [ -n "$PORT" ] && return 0
    kill -0 "$SRV_PID" 2>/dev/null || return 1
    sleep 0.02
  done
  return 1
}

# Reaps $SRV_PID, accepting only the listed exit codes. Keeps bash's
# job-control "Killed" message for SIGKILLed children out of the log.
stop_wait() {
  local status
  { wait "$SRV_PID"; status=$?; } 2>/dev/null
  SRV_PID=""
  for ok in "$@"; do
    [ "$status" -eq "$ok" ] && return 0
  done
  fail "server exited $status (wanted: $*)"
}

sql() { "$BIN/ptquery" --connect "127.0.0.1:$PORT" sql "$1"; }

# Scalar SELECT result: output is <header>, <value>, "(1 rows)".
scalar() { sql "$1" | sed -n 2p; }

# --- seed: build a small store through the daemon, drain it cleanly ----------

DB="$WORK/store.db"
start_server "$DB" || fail "seed server did not come up"
sql "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)" >/dev/null \
  || fail "seed CREATE TABLE over the wire"
for i in 1 2 3; do
  sql "INSERT INTO t (v) VALUES ($i)" >/dev/null || fail "seed insert $i"
done
kill -TERM "$SRV_PID"
stop_wait 0
[ -s "$DB.journal" ] && fail "clean SIGTERM drain left a hot journal"
grep -q "drained, closing store" "$WORK/srv.out" || fail "drain message missing"

# One full crash sweep in durability mode $1 (full | wal). Crashes at a
# spread of disk-operation indices: early (log being written), mid (page
# overwrite / WAL append), late (commit point / autocheckpoint), and
# past-the-end (no crash at all — exercises the survive + drain branch).
# In WAL mode the tiny autocheckpoint makes commits fold back into the db
# file every few inserts, so late crash points land mid-checkpoint.
run_sweep() {
  local mode="$1"
  local flags=()
  local artifact_suffix=journal
  if [ "$mode" = wal ]; then
    flags=(--durability=wal --wal-autocheckpoint 4)
    artifact_suffix=wal
  fi
  hot_logs=0

for op in 1 2 3 5 8 12 20 28 36 100000; do
  TRIAL="$WORK/trial_${mode}_$op.db"
  cp "$DB" "$TRIAL"

  PT_DEBUG_CRASH_AT=$op start_server "$TRIAL" "${flags[@]}" \
    || fail "$mode trial $op: no port line"

  # Hammer inserts until one fails (daemon SIGKILLed mid-commit) or we run
  # out of budget (crash point beyond the workload).
  wrote=0
  for _ in $(seq 1 60); do
    if sql "INSERT INTO t (v) VALUES (100)" >/dev/null 2>&1; then
      wrote=$((wrote + 1))
    else
      break
    fi
  done

  if kill -0 "$SRV_PID" 2>/dev/null; then
    kill -TERM "$SRV_PID"
  fi
  stop_wait 0 137

  log_hot=0
  if [ -s "$TRIAL.$artifact_suffix" ]; then
    log_hot=1
    hot_logs=$((hot_logs + 1))
  fi

  # Restart the daemon on the crashed store: recovery happens at open, is
  # reported on stderr, and the store must serve new clients immediately.
  start_server "$TRIAL" "${flags[@]}" || fail "$mode trial $op: restart did not come up"
  if [ "$log_hot" -eq 1 ]; then
    grep -q "recovered:" "$WORK/srv.err" \
      || fail "$mode trial $op: restart over a stale $artifact_suffix did not report recovery"
  fi
  [ -s "$TRIAL.journal" ] && fail "$mode trial $op: journal still hot after restart"

  # Autocommit inserts are atomic: the table is exactly a prefix of the
  # workload. No holes (COUNT == MAX(id)), no torn values, and the one
  # insert whose reply the kill cut off may or may not have committed.
  count="$(scalar 'SELECT COUNT(*) FROM t')" || fail "$mode trial $op: count query"
  maxid="$(scalar 'SELECT MAX(id) FROM t')" || fail "$mode trial $op: max query"
  [ "$count" = "$maxid" ] || fail "$mode trial $op: holes in id space ($count != $maxid)"
  torn="$(scalar 'SELECT COUNT(*) FROM t WHERE id > 3 AND v <> 100')" \
    || fail "$mode trial $op: torn-value query"
  [ "$torn" = "0" ] || fail "$mode trial $op: $torn torn row(s) after recovery"
  [ "$count" -ge $((3 + wrote)) ] || fail "$mode trial $op: lost acknowledged insert(s)"
  [ "$count" -le $((3 + wrote + 1)) ] || fail "$mode trial $op: phantom insert(s)"

  # The recovered store must take new writes through the daemon.
  sql "INSERT INTO t (v) VALUES (200)" >/dev/null \
    || fail "$mode trial $op: post-recovery insert"
  after="$(scalar 'SELECT COUNT(*) FROM t')"
  [ "$after" = "$((count + 1))" ] || fail "$mode trial $op: post-recovery insert not visible"

  kill -TERM "$SRV_PID"
  stop_wait 0
  if [ -e "$TRIAL.wal" ] && [ -s "$TRIAL.wal" ]; then
    fail "$mode trial $op: clean drain left a stale WAL"
  fi

  # Offline integrity pass over the same file the daemon just served.
  "$BIN/ptquery" "$TRIAL" sql "SELECT COUNT(*) FROM t" >/dev/null \
    || fail "$mode trial $op: store unreadable offline"
done

  [ "$hot_logs" -ge 1 ] \
    || fail "$mode: no crash point left a stale $artifact_suffix; matrix not exercised"
  echo "OK ($mode): $hot_logs stale $artifact_suffix file(s) recovered through restarts"
}

run_sweep full
run_sweep wal

echo "OK: ptserverd crash/restart sweep passed in journal and WAL modes"
