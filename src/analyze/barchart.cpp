#include "analyze/barchart.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace perftrack::analyze {

std::string BarChart::render(std::size_t width) const {
  for (const ChartSeries& s : series) {
    if (s.values.size() != categories.size()) {
      throw util::ModelError("BarChart: series '" + s.label + "' has " +
                             std::to_string(s.values.size()) + " values for " +
                             std::to_string(categories.size()) + " categories");
    }
  }
  double max_value = 0.0;
  for (const ChartSeries& s : series) {
    for (double v : s.values) max_value = std::max(max_value, v);
  }
  std::size_t label_width = 0;
  for (const std::string& c : categories) label_width = std::max(label_width, c.size());
  std::size_t series_width = 0;
  for (const ChartSeries& s : series) series_width = std::max(series_width, s.label.size());

  std::ostringstream out;
  out << title;
  if (!value_units.empty()) out << " (" << value_units << ")";
  out << "\n";
  for (std::size_t c = 0; c < categories.size(); ++c) {
    for (std::size_t s = 0; s < series.size(); ++s) {
      const double v = series[s].values[c];
      const std::size_t bar =
          max_value > 0.0
              ? static_cast<std::size_t>(v / max_value * static_cast<double>(width) + 0.5)
              : 0;
      out << "  " << categories[c]
          << std::string(label_width - categories[c].size(), ' ') << "  "
          << series[s].label << std::string(series_width - series[s].label.size(), ' ')
          << " |" << std::string(bar, '#') << " " << util::formatReal(v) << "\n";
    }
    if (series.size() > 1 && c + 1 < categories.size()) out << "\n";
  }
  return out.str();
}

}  // namespace perftrack::analyze
