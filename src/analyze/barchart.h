// PerfTrack analysis: ASCII bar charts.
//
// The paper's GUI plots selected data as bar charts with multiple series
// (Figure 5: min and max running time of a function across processors, for
// several process counts). We render the same chart to text so it works in
// examples, benchmarks, and the CLI.
#pragma once

#include <string>
#include <vector>

namespace perftrack::analyze {

/// One series of values (one bar group color in the GUI chart).
struct ChartSeries {
  std::string label;
  std::vector<double> values;  // one per category
};

struct BarChart {
  std::string title;
  std::string value_units;
  std::vector<std::string> categories;  // x-axis groups, e.g. process counts
  std::vector<ChartSeries> series;

  /// Renders the chart: one row per (category, series) bar, scaled to
  /// `width` characters, with value labels.
  std::string render(std::size_t width = 60) const;
};

}  // namespace perftrack::analyze
