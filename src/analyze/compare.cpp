#include "analyze/compare.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "core/diag.h"
#include "util/strings.h"

namespace perftrack::analyze {

std::optional<double> ComparisonRow::ratio() const {
  if (value_a == 0.0) return std::nullopt;
  return value_b / value_a;
}

std::string comparableContext(core::PTDataStore& store,
                              const core::PerfResultRecord& record) {
  // The $EXEC canonicalization rule is shared with the core::diag engine so
  // both layers align the same contexts across executions.
  std::set<std::string> names;
  for (const auto& context : record.contexts) {
    for (core::ResourceId id : context) {
      names.insert(core::diag::canonicalResourceName(
          record.execution, store.resourceInfo(id).full_name));
    }
  }
  return util::join({names.begin(), names.end()}, "|");
}

ComparisonReport compareExecutions(core::PTDataStore& store, const std::string& exec_a,
                                   const std::string& exec_b) {
  ComparisonReport report;
  report.execution_a = exec_a;
  report.execution_b = exec_b;

  // (metric, comparable context) -> value. Duplicate keys (several samples
  // of one metric in one context) keep the first; a production tool would
  // aggregate, which ComparisonRow consumers can do upstream if needed.
  auto collect = [&](const std::string& exec) {
    std::map<std::pair<std::string, std::string>, double> out;
    for (std::int64_t id : store.resultsForExecution(exec)) {
      const core::PerfResultRecord rec = store.getResult(id);
      out.try_emplace({rec.metric, comparableContext(store, rec)}, rec.value);
    }
    return out;
  };
  const auto a = collect(exec_a);
  const auto b = collect(exec_b);

  for (const auto& [key, value_a] : a) {
    const auto it = b.find(key);
    if (it == b.end()) {
      ++report.unmatched_a;
      continue;
    }
    report.rows.push_back({key.first, key.second, value_a, it->second});
  }
  for (const auto& [key, value_b] : b) {
    if (!a.contains(key)) ++report.unmatched_b;
  }
  return report;
}

std::vector<ComparisonRow> ComparisonReport::divergent(double threshold) const {
  std::vector<ComparisonRow> out;
  for (const ComparisonRow& row : rows) {
    const auto r = row.ratio();
    if (!r || std::abs(*r - 1.0) > threshold) out.push_back(row);
  }
  std::sort(out.begin(), out.end(), [](const ComparisonRow& x, const ComparisonRow& y) {
    return std::abs(x.difference()) > std::abs(y.difference());
  });
  return out;
}

std::string ComparisonReport::toText(std::size_t max_rows) const {
  std::ostringstream out;
  out << "comparison: " << execution_a << " vs " << execution_b << "\n"
      << "  matched results:   " << rows.size() << "\n"
      << "  unmatched (A only): " << unmatched_a << "\n"
      << "  unmatched (B only): " << unmatched_b << "\n";
  const auto top = divergent(0.0);
  out << "  largest changes:\n";
  for (std::size_t i = 0; i < top.size() && i < max_rows; ++i) {
    const ComparisonRow& row = top[i];
    out << "    " << row.metric << "  " << util::formatReal(row.value_a) << " -> "
        << util::formatReal(row.value_b);
    if (const auto r = row.ratio()) {
      out << "  (x" << util::formatReal(*r) << ")";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace perftrack::analyze
