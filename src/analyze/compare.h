// PerfTrack analysis: comparison operators across executions.
//
// The paper lists "the addition of a set of comparison operators to
// automate the comparison of different executions and performance results
// in the data store" as in-progress work (§6), building on the
// comparison-based diagnosis line of Karavanic & Miller. We implement that
// extension: results of two executions are matched by *comparable context* —
// the multiset of context resources with execution-specific name prefixes
// canonicalized — and compared metric by metric (difference and ratio).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/datastore.h"

namespace perftrack::analyze {

/// One matched pair of results.
struct ComparisonRow {
  std::string metric;
  std::string context;  // canonical comparable-context description
  double value_a = 0.0;
  double value_b = 0.0;

  double difference() const { return value_b - value_a; }
  /// b/a; nullopt when a == 0.
  std::optional<double> ratio() const;
};

struct ComparisonReport {
  std::string execution_a;
  std::string execution_b;
  std::vector<ComparisonRow> rows;
  std::size_t unmatched_a = 0;  // results of A with no counterpart in B
  std::size_t unmatched_b = 0;

  /// Rows whose |ratio - 1| exceeds `threshold` (candidate regressions),
  /// sorted by descending |difference|.
  std::vector<ComparisonRow> divergent(double threshold) const;

  std::string toText(std::size_t max_rows = 20) const;
};

/// Canonical key for one result's context: resource full names with any
/// leading segment equal to the execution name (or "<exec>-suffix") replaced
/// by "$EXEC", sorted and joined. Results from different runs of the same
/// code match when their contexts differ only by those per-run prefixes.
std::string comparableContext(core::PTDataStore& store,
                              const core::PerfResultRecord& record);

/// Compares every result of `exec_a` against `exec_b`.
ComparisonReport compareExecutions(core::PTDataStore& store, const std::string& exec_a,
                                   const std::string& exec_b);

}  // namespace perftrack::analyze
