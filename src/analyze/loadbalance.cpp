#include "analyze/loadbalance.h"

#include <algorithm>
#include <map>

#include "core/filter.h"
#include "util/strings.h"

namespace perftrack::analyze {

std::vector<LoadBalancePoint> loadBalanceStudy(core::PTDataStore& store,
                                               const std::string& function_resource,
                                               const std::string& metric_base) {
  // pr-filter: one family = the function resource.
  core::PrFilter filter;
  filter.families.push_back(
      core::ResourceFilter::byName(function_resource, core::Expansion::None));
  const auto result_ids = core::queryResults(store, filter);

  std::map<std::string, LoadBalancePoint> by_execution;
  const std::string max_metric = metric_base + " (max)";
  const std::string min_metric = metric_base + " (min)";
  for (std::int64_t id : result_ids) {
    const core::PerfResultRecord rec = store.getResult(id);
    if (rec.metric != max_metric && rec.metric != min_metric) continue;
    LoadBalancePoint& point = by_execution[rec.execution];
    point.execution = rec.execution;
    if (rec.metric == max_metric) {
      point.max_value = rec.value;
    } else {
      point.min_value = rec.value;
    }
  }

  std::vector<LoadBalancePoint> points;
  points.reserve(by_execution.size());
  for (auto& [exec, point] : by_execution) {
    // Process count from the execution root's nprocs attribute.
    if (const auto root = store.findResource("/" + exec)) {
      for (const core::AttributeInfo& attr : store.attributesOf(*root)) {
        if (attr.name == "nprocs") {
          point.nprocs = static_cast<int>(util::parseInt(attr.value).value_or(0));
        }
      }
    }
    points.push_back(std::move(point));
  }
  std::sort(points.begin(), points.end(),
            [](const LoadBalancePoint& a, const LoadBalancePoint& b) {
              return a.nprocs < b.nprocs;
            });
  return points;
}

BarChart loadBalanceChart(const std::vector<LoadBalancePoint>& points,
                          const std::string& title, const std::string& units) {
  BarChart chart;
  chart.title = title;
  chart.value_units = units;
  ChartSeries min_series{"min", {}};
  ChartSeries max_series{"max", {}};
  for (const LoadBalancePoint& point : points) {
    chart.categories.push_back("np=" + std::to_string(point.nprocs));
    min_series.values.push_back(point.min_value);
    max_series.values.push_back(point.max_value);
  }
  chart.series.push_back(std::move(min_series));
  chart.series.push_back(std::move(max_series));
  return chart;
}

}  // namespace perftrack::analyze
