// PerfTrack analysis: load-balance study (paper Figure 5).
//
// Figure 5 plots "the minimum and maximum running time of a function across
// all the processors for different process counts, which is a rough
// indication of load balance". This module runs that query against a data
// store — select the (max) and (min) statistics of one function's metric
// across the executions of an application — and renders the Figure-5 chart.
#pragma once

#include <string>
#include <vector>

#include "analyze/barchart.h"
#include "core/datastore.h"

namespace perftrack::analyze {

/// One per-execution min/max pair.
struct LoadBalancePoint {
  std::string execution;
  int nprocs = 0;
  double min_value = 0.0;
  double max_value = 0.0;

  /// max/min; a perfectly balanced function scores 1.
  double imbalance() const { return min_value > 0.0 ? max_value / min_value : 0.0; }
};

/// Gathers min/max of `metric_base` (expects "<metric_base> (max)" and
/// "... (min)" metrics, as the IRS converter writes) for results whose
/// context includes `function_resource`, one point per execution. Points
/// are sorted by process count (taken from the execution root's "nprocs"
/// attribute).
std::vector<LoadBalancePoint> loadBalanceStudy(core::PTDataStore& store,
                                               const std::string& function_resource,
                                               const std::string& metric_base);

/// Builds the Figure-5 chart (categories = process counts; series = min, max).
BarChart loadBalanceChart(const std::vector<LoadBalancePoint>& points,
                          const std::string& title, const std::string& units);

}  // namespace perftrack::analyze
