#include "analyze/predict.h"

#include "util/error.h"
#include "util/strings.h"

namespace perftrack::analyze {

namespace {

bool isTimeMetric(const std::string& metric) {
  const std::string lower = util::toLower(metric);
  return lower.find("time") != std::string::npos;
}

int nprocsOf(core::PTDataStore& store, const std::string& exec) {
  const auto root = store.findResource("/" + exec);
  if (!root) throw util::ModelError("prediction: execution root /" + exec + " not found");
  for (const auto& attr : store.attributesOf(*root)) {
    if (attr.name == "nprocs") {
      const auto n = util::parseInt(attr.value);
      if (n && *n > 0) return static_cast<int>(*n);
    }
  }
  throw util::ModelError("prediction: /" + exec + " has no usable nprocs attribute");
}

}  // namespace

ScalingModel linearScalingModel() {
  return [](const std::string& metric, double value, int base, int target) {
    if (!isTimeMetric(metric)) return value;
    return value * static_cast<double>(base) / static_cast<double>(target);
  };
}

ScalingModel amdahlScalingModel(double serial_fraction) {
  return [serial_fraction](const std::string& metric, double value, int base,
                           int target) {
    if (!isTimeMetric(metric)) return value;
    const double b = static_cast<double>(base);
    const double t = static_cast<double>(target);
    const double base_factor = serial_fraction + (1.0 - serial_fraction) / b;
    const double target_factor = serial_fraction + (1.0 - serial_fraction) / t;
    return value * target_factor / base_factor;
  };
}

std::string predictExecution(core::PTDataStore& store, const std::string& base_exec,
                             int target_nprocs, const ScalingModel& model,
                             const std::string& label) {
  const int base_nprocs = nprocsOf(store, base_exec);
  const auto base_ids = store.resultsForExecution(base_exec);
  if (base_ids.empty()) {
    throw util::ModelError("prediction: execution '" + base_exec + "' has no results");
  }
  const std::string pred_exec = base_exec + "-pred" +
                                (label.empty() ? "" : "-" + label) + "-np" +
                                std::to_string(target_nprocs);
  if (store.findResource("/" + pred_exec)) {
    throw util::ModelError("prediction: execution '" + pred_exec +
                           "' already exists; use a distinct label");
  }
  const std::string app = store.getResult(base_ids.front()).application;
  store.addExecution(pred_exec, app);
  store.addResource("/" + pred_exec, "execution");
  store.addResourceAttribute("/" + pred_exec, "nprocs", std::to_string(target_nprocs));
  store.addResourceAttribute("/" + pred_exec, "predicted from", base_exec);

  for (std::int64_t id : base_ids) {
    const core::PerfResultRecord rec = store.getResult(id);
    // Rebuild each context: per-execution resources (whose top-level name
    // embeds the baseline execution) are re-rooted under the predicted
    // execution; shared resources (build functions, machines, metrics of
    // the grid) are reused as-is.
    std::vector<core::ResourceSetSpec> sets;
    for (const auto& context : rec.contexts) {
      core::ResourceSetSpec spec;
      spec.set_type = core::FocusType::Primary;
      for (core::ResourceId rid : context) {
        const core::ResourceInfo info = store.resourceInfo(rid);
        const auto slash = info.full_name.find('/', 1);
        const std::string head = slash == std::string::npos
                                     ? info.full_name.substr(1)
                                     : info.full_name.substr(1, slash - 1);
        if (head.find(base_exec) != std::string::npos) {
          std::string new_head = head;
          const auto pos = new_head.find(base_exec);
          new_head.replace(pos, base_exec.size(), pred_exec);
          const std::string tail =
              slash == std::string::npos ? "" : info.full_name.substr(slash);
          const std::string new_name = "/" + new_head + tail;
          store.addResource(new_name, info.type_path);
          spec.resource_names.push_back(new_name);
        } else {
          spec.resource_names.push_back(info.full_name);
        }
      }
      sets.push_back(std::move(spec));
    }
    const double predicted = model(rec.metric, rec.value, base_nprocs, target_nprocs);
    store.addPerformanceResult(pred_exec, sets, "PerfTrack-model", rec.metric, predicted,
                               rec.units, rec.start_time, rec.end_time);
  }
  return pred_exec;
}

ComparisonReport predictionError(core::PTDataStore& store, const std::string& base_exec,
                                 const std::string& actual_exec, int target_nprocs,
                                 const ScalingModel& model, const std::string& label) {
  const std::string pred =
      predictExecution(store, base_exec, target_nprocs, model, label);
  return compareExecutions(store, pred, actual_exec);
}

}  // namespace perftrack::analyze
