// PerfTrack analysis: performance predictions in the data store (§6).
//
// The paper's future work includes "the incorporation of performance
// predictions and models into PerfTrack for direct comparison to actual
// program runs" (the §4.2 dataset itself came from a prediction study). We
// implement that extension: a prediction model takes one measured execution
// as its baseline and materializes a *predicted execution* in the store —
// a first-class execution whose results come from tool "PerfTrack-model" —
// so every existing facility (pr-filters, the query session, the comparison
// operators) works on predictions unchanged.
#pragma once

#include <functional>
#include <string>

#include "analyze/compare.h"
#include "core/datastore.h"

namespace perftrack::analyze {

/// A scaling model maps (baseline value, baseline nprocs, target nprocs) to
/// a predicted value, given the metric name (so time-like metrics can scale
/// down with p while counters stay fixed).
using ScalingModel = std::function<double(const std::string& metric, double value,
                                          int base_nprocs, int target_nprocs)>;

/// Ideal linear scaling: time metrics shrink by p_base/p_target; everything
/// else (counts, rates aggregated over all processes) is left unchanged.
ScalingModel linearScalingModel();

/// Amdahl scaling with the given serial fraction.
ScalingModel amdahlScalingModel(double serial_fraction);

/// Materializes a predicted execution from `base_exec` at `target_nprocs`.
/// The new execution is named "<base_exec>-pred[-<label>]-np<target>" (pass
/// a distinct label per model when predicting with several models), carries
/// an "nprocs" attribute and a "predicted from" attribute on its root
/// resource, and one result per baseline result (same metric, same
/// shareable context resources, with the baseline's per-execution resources
/// re-rooted under the predicted execution). Returns the new execution
/// name; predicting into an existing execution name throws.
std::string predictExecution(core::PTDataStore& store, const std::string& base_exec,
                             int target_nprocs, const ScalingModel& model,
                             const std::string& label = "");

/// Convenience: predict from `base_exec` and compare against the measured
/// `actual_exec` (which ran at the predicted process count).
ComparisonReport predictionError(core::PTDataStore& store, const std::string& base_exec,
                                 const std::string& actual_exec, int target_nprocs,
                                 const ScalingModel& model,
                                 const std::string& label = "");

}  // namespace perftrack::analyze
