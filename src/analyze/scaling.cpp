#include "analyze/scaling.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace perftrack::analyze {

std::vector<ScalingPoint> scalingStudy(core::PTDataStore& store,
                                       const std::string& application,
                                       const std::string& metric) {
  dbal::Connection& conn = store.connection();
  const auto rs = conn.exec(
      "SELECT e.name, pr.value FROM performance_result pr "
      "JOIN execution e ON pr.execution_id = e.id "
      "JOIN application a ON e.application_id = a.id "
      "JOIN metric m ON pr.metric_id = m.id "
      "WHERE a.name = " + util::sqlQuote(application) +
      " AND m.name = " + util::sqlQuote(metric) + " ORDER BY e.name");
  std::vector<ScalingPoint> points;
  for (const auto& row : rs.rows) {
    ScalingPoint point;
    point.execution = row[0].asText();
    point.seconds = row[1].asReal();
    const auto root = store.findResource("/" + point.execution);
    if (!root) continue;
    for (const auto& attr : store.attributesOf(*root)) {
      if (attr.name == "nprocs") {
        point.nprocs = static_cast<int>(util::parseInt(attr.value).value_or(0));
      }
    }
    if (point.nprocs > 0 && point.seconds > 0.0) points.push_back(std::move(point));
  }
  std::sort(points.begin(), points.end(),
            [](const ScalingPoint& a, const ScalingPoint& b) {
              return a.nprocs < b.nprocs;
            });
  if (points.empty()) return points;
  const double base_time = points.front().seconds;
  const double base_procs = points.front().nprocs;
  for (ScalingPoint& point : points) {
    point.speedup = base_time / point.seconds;
    point.efficiency = point.speedup * base_procs / static_cast<double>(point.nprocs);
  }
  return points;
}

std::string scalingTable(const std::vector<ScalingPoint>& points,
                         const std::string& title) {
  std::ostringstream out;
  out << title << "\n";
  out << "  np      time(s)   speedup   efficiency\n";
  for (const ScalingPoint& point : points) {
    char line[128];
    std::snprintf(line, sizeof(line), "  %-6d %9s %9.2f %11.1f%%\n", point.nprocs,
                  util::formatReal(point.seconds).c_str(), point.speedup,
                  point.efficiency * 100.0);
    out << line;
  }
  return out.str();
}

BarChart scalingChart(const std::vector<ScalingPoint>& points,
                      const std::string& title) {
  BarChart chart;
  chart.title = title;
  chart.value_units = "seconds";
  ChartSeries measured{"measured", {}};
  ChartSeries ideal{"ideal", {}};
  const double base_area =
      points.empty() ? 0.0 : points.front().seconds * points.front().nprocs;
  for (const ScalingPoint& point : points) {
    chart.categories.push_back("np=" + std::to_string(point.nprocs));
    measured.values.push_back(point.seconds);
    ideal.values.push_back(base_area / static_cast<double>(point.nprocs));
  }
  chart.series = {std::move(measured), std::move(ideal)};
  return chart;
}

}  // namespace perftrack::analyze
