// PerfTrack analysis: scaling studies (speedup and parallel efficiency).
//
// The §4.2 dataset is "a parameter study"; the natural cross-execution view
// over such data is the classic scaling table: pick one whole-execution
// metric of one application, order the executions by process count, and
// derive speedup S(p) = t(p0)/t(p) and efficiency E(p) = S(p) * p0/p
// relative to the smallest run. Built on the same pr-filter machinery as
// everything else, so it works on any loaded dataset.
#pragma once

#include <string>
#include <vector>

#include "analyze/barchart.h"
#include "core/datastore.h"

namespace perftrack::analyze {

struct ScalingPoint {
  std::string execution;
  int nprocs = 0;
  double seconds = 0.0;
  double speedup = 0.0;     // relative to the smallest-p execution
  double efficiency = 0.0;  // speedup scaled by the process-count ratio
};

/// Collects `metric` (a whole-execution time metric, e.g. "total wall time")
/// for every execution of `application`, sorted by the execution root's
/// "nprocs" attribute. Executions without the metric or the attribute are
/// skipped. Returns an empty vector when fewer than one usable execution
/// exists.
std::vector<ScalingPoint> scalingStudy(core::PTDataStore& store,
                                       const std::string& application,
                                       const std::string& metric);

/// Renders the study as a text table (np, time, speedup, efficiency).
std::string scalingTable(const std::vector<ScalingPoint>& points,
                         const std::string& title);

/// Chart of measured time vs ideal scaling from the first point.
BarChart scalingChart(const std::vector<ScalingPoint>& points, const std::string& title);

}  // namespace perftrack::analyze
