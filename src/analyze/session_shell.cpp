#include "analyze/session_shell.h"

#include <istream>
#include <optional>
#include <ostream>

#include "analyze/barchart.h"
#include "core/query_session.h"
#include "core/reports.h"
#include "util/error.h"
#include "util/strings.h"

namespace perftrack::analyze {

using util::ModelError;

namespace {

core::Expansion expansionFromSuffix(std::string& spec, core::Expansion fallback) {
  if (spec.size() > 2 && spec[spec.size() - 2] == ':') {
    const char c = spec.back();
    if (c == 'N' || c == 'A' || c == 'D' || c == 'B') {
      spec.resize(spec.size() - 2);
      switch (c) {
        case 'N': return core::Expansion::None;
        case 'A': return core::Expansion::Ancestors;
        case 'B': return core::Expansion::Both;
        default: return core::Expansion::Descendants;
      }
    }
  }
  return fallback;
}

core::Expansion expansionFromLetter(const std::string& letter) {
  if (letter == "N") return core::Expansion::None;
  if (letter == "A") return core::Expansion::Ancestors;
  if (letter == "D") return core::Expansion::Descendants;
  if (letter == "B") return core::Expansion::Both;
  throw ModelError("expected one of N|A|D|B, got '" + letter + "'");
}

}  // namespace

core::ResourceFilter parseFamilySpec(const std::string& arg) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos) {
    throw ModelError("bad family spec '" + arg + "' (want kind=value)");
  }
  const std::string kind = arg.substr(0, eq);
  std::string spec = arg.substr(eq + 1);
  if (kind == "type") {
    return core::ResourceFilter::byType(
        spec, expansionFromSuffix(spec, core::Expansion::None));
  }
  if (kind == "name") {
    // The GUI default for named resources is Descendants (§3.2).
    return core::ResourceFilter::byName(
        spec, expansionFromSuffix(spec, core::Expansion::Descendants));
  }
  if (kind == "attr") {
    const core::Expansion expand = expansionFromSuffix(spec, core::Expansion::None);
    static constexpr const char* kOps[] = {"!=", "<=", ">=", "=", "<", ">"};
    for (const char* op : kOps) {
      const auto pos = spec.find(op);
      if (pos != std::string::npos && pos > 0) {
        return core::ResourceFilter::byAttributes(
            {{spec.substr(0, pos), op, spec.substr(pos + std::string_view(op).size())}},
            "", expand);
      }
    }
    throw ModelError("attr family needs <name><op><value>: '" + spec + "'");
  }
  throw ModelError("unknown family kind '" + kind + "'");
}

std::size_t runSessionScript(core::PTDataStore& store, std::istream& in,
                             std::ostream& out) {
  core::QuerySession session(store);
  std::optional<core::ResultTable> table;
  std::size_t failures = 0;
  std::string line;

  auto needTable = [&]() -> core::ResultTable& {
    if (!table) throw ModelError("no current table; use 'run' first");
    return *table;
  };

  while (std::getline(in, line)) {
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto words = util::splitWhitespace(trimmed);
    const std::string& cmd = words[0];
    try {
      if (cmd == "types") {
        for (const std::string& type : session.resourceTypes()) out << type << "\n";
      } else if (cmd == "top" && words.size() == 2) {
        for (const auto& info : session.topLevelResources(words[1])) {
          out << info.full_name << " [" << info.type_path << "]\n";
        }
      } else if (cmd == "children" && words.size() == 2) {
        const auto id = store.findResource(words[1]);
        if (!id) throw ModelError("no resource named " + words[1]);
        for (const auto& child : session.childrenOf(*id)) {
          out << child.full_name << " [" << child.type_path << "]\n";
        }
      } else if (cmd == "attrs" && words.size() == 2) {
        const auto id = store.findResource(words[1]);
        if (!id) throw ModelError("no resource named " + words[1]);
        for (const auto& attr : session.attributesOf(*id)) {
          out << attr.name << " = " << attr.value << " (" << attr.attr_type << ")\n";
        }
      } else if (cmd == "family" && words.size() == 2) {
        const auto index = session.addFamily(parseFamilySpec(words[1]));
        out << "family " << index << ": "
            << session.families()[index].describe() << "\n";
      } else if (cmd == "expand" && words.size() == 3) {
        const auto index = util::parseInt(words[1]);
        if (!index || *index < 0) throw ModelError("bad family index");
        session.setExpansion(static_cast<std::size_t>(*index),
                             expansionFromLetter(words[2]));
        out << "ok\n";
      } else if (cmd == "remove" && words.size() == 2) {
        const auto index = util::parseInt(words[1]);
        if (!index || *index < 0) throw ModelError("bad family index");
        session.removeFamily(static_cast<std::size_t>(*index));
        out << "ok\n";
      } else if (cmd == "counts") {
        for (std::size_t i = 0; i < session.families().size(); ++i) {
          out << "family " << i << " (" << session.families()[i].describe()
              << "): " << session.familyMatchCount(i) << "\n";
        }
        out << "total: " << session.totalMatchCount() << "\n";
      } else if (cmd == "run") {
        table = session.run();
        out << "retrieved " << table->size() << " results\n";
      } else if (cmd == "columns") {
        for (const std::string& type : needTable().freeResourceTypes()) {
          out << type << "\n";
        }
      } else if (cmd == "addcol" && words.size() == 2) {
        needTable().addColumn(words[1]);
        out << "ok\n";
      } else if (cmd == "sort" && (words.size() == 2 || words.size() == 3)) {
        needTable().sortBy(words[1], words.size() == 3 && words[2] == "desc");
        out << "ok\n";
      } else if (cmd == "filter" && words.size() == 4) {
        needTable().filterRows(words[1], words[2], words[3]);
        out << needTable().size() << " rows remain\n";
      } else if (cmd == "show") {
        out << needTable().toText();
      } else if (cmd == "csv") {
        needTable().toCsv(out);
      } else if (cmd == "chart" && words.size() == 3) {
        // One bar per row: label from <series-col>, height from <value-col>.
        BarChart chart;
        chart.title = words[2] + " by " + words[1];
        ChartSeries series{words[2], {}};
        for (const auto& row : needTable().rows()) {
          std::string label;
          if (words[1] == "execution") label = row.execution;
          else if (words[1] == "metric") label = row.metric;
          else if (words[1] == "tool") label = row.tool;
          else label = row.extra_columns.count(words[1])
                           ? row.extra_columns.at(words[1])
                           : "?";
          chart.categories.push_back(label);
          series.values.push_back(row.value);
        }
        chart.series.push_back(std::move(series));
        out << chart.render();
      } else if (cmd == "report") {
        out << core::storeReport(store);
      } else {
        throw ModelError("unknown command '" + std::string(trimmed) + "'");
      }
    } catch (const util::PTError& e) {
      out << "error: " << e.what() << "\n";
      ++failures;
    }
  }
  return failures;
}

}  // namespace perftrack::analyze
