// PerfTrack analysis: a scriptable session shell — the GUI workflow as text.
//
// The paper's GUI session is a sequence of small operations: browse types,
// expand resources, inspect attributes, add families to the pr-filter while
// watching the live counts, retrieve, add free-resource columns, sort,
// filter, plot, export (§3.2). This shell executes that exact sequence from
// a command stream, one command per line:
//
//   types                      list resource type paths
//   top <root-type>            top-level resources of a hierarchy
//   children <full-name>       one level of the resource tree
//   attrs <full-name>          the attribute viewer
//   family <spec>              add a pr-filter family; spec is
//                              type=<path>[:N|A|D|B] | name=<name>[:N|A|D|B]
//                              | attr=<name><op><value>[:N|A|D|B]
//   expand <idx> <N|A|D|B>     change a family's relatives flag
//   remove <idx>               drop a family
//   counts                     live per-family and whole-filter counts
//   run                        execute the query (makes a current table)
//   columns                    free-resource types of the current table
//   addcol <type-path>         add a free-resource column
//   sort <column> [desc]       sort the current table
//   filter <column> <op> <val> keep matching rows
//   show                       print the current table
//   csv                        print the current table as CSV
//   chart <series-col> <value-col>  bar chart of the current table
//   report                     store statistics
//   # ...                      comment; blank lines are ignored
//
// Unknown commands and bad arguments report an error and continue, like an
// interactive tool should. Used by `ptquery <db> session [script]` and
// driven directly by the test suite.
#pragma once

#include <iosfwd>
#include <string>

#include "core/datastore.h"
#include "core/filter.h"

namespace perftrack::analyze {

/// Parses one family spec ("type=...", "name=...", "attr=..." with an
/// optional :N/:A/:D/:B suffix; name defaults to D like the GUI).
core::ResourceFilter parseFamilySpec(const std::string& spec);

/// Runs commands from `in` against `store`, writing results to `out`.
/// Returns the number of failed commands (0 = clean session).
std::size_t runSessionScript(core::PTDataStore& store, std::istream& in,
                             std::ostream& out);

}  // namespace perftrack::analyze
