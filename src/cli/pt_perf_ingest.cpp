// pt_perf_ingest — the repo's own bench results as PerfTrack history, plus
// the DIFF-backed regression gate (DESIGN.md §5.10).
//
// Usage:
//   pt_perf_ingest <db> ingest <label> <bench.json>...
//       record one bench run: one execution "<app>@<label>" per file, with
//       any METRICS_*.prom sidecars found next to the JSON
//   pt_perf_ingest <db> gate <label> <bench.json>... [--report FILE] [--warn-only]
//       ingest, then classify each application against its stored baseline
//       (improvement / stable / minor-regression / critical-regression);
//       exits 1 on critical regressions unless --warn-only
//   pt_perf_ingest <db> baseline
//       list the stored per-application baseline executions
//
// <db> may be a file path, ":memory:", or a remote "pt://host:port" target;
// "--connect host:port" is sugar for the pt:// form, as in ptquery.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "core/datastore.h"
#include "dbal/connection.h"
#include "tools/perf_ingest.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <db>|--connect <host:port> <command> ...\n"
      "  ingest <label> <bench.json>...   record one bench run\n"
      "  gate <label> <bench.json>... [--report FILE] [--warn-only]\n"
      "                                   ingest + classify vs baseline\n"
      "  baseline                         list stored baselines\n"
      "  <db> accepts pt://host:port and pt://unix:/sock targets\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace perftrack;
  namespace pi = tools::perf_ingest;

  // "--connect host:port" is sugar for the "pt://host:port" connection
  // string (an already-prefixed target passes through unchanged).
  std::string connect_target;
  if (argc >= 3 && std::strcmp(argv[1], "--connect") == 0) {
    connect_target = argv[2];
    if (connect_target.rfind("pt://", 0) != 0) {
      connect_target = "pt://" + connect_target;
    }
    argv += 1;
    argc -= 1;
    argv[1] = const_cast<char*>(connect_target.c_str());
  }
  if (argc < 3) return usage(argv[0]);
  const std::string command = argv[2];

  try {
    auto conn = dbal::Connection::open(argv[1]);
    core::PTDataStore store(*conn);

    if (command == "baseline") {
      for (const auto& [app, exec] : pi::baselines(*conn)) {
        std::printf("%s -> %s\n", app.c_str(), exec.c_str());
      }
      return 0;
    }

    if (command != "ingest" && command != "gate") return usage(argv[0]);
    if (argc < 5) return usage(argv[0]);
    const std::string label = argv[3];
    std::vector<std::string> bench_paths;
    std::string report_path;
    bool warn_only = std::getenv("PT_PERF_GATE_WARN_ONLY") != nullptr;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
        report_path = argv[++i];
      } else if (std::strcmp(argv[i], "--warn-only") == 0) {
        warn_only = true;
      } else {
        bench_paths.emplace_back(argv[i]);
      }
    }
    if (bench_paths.empty()) return usage(argv[0]);

    store.initialize();

    if (command == "ingest") {
      const auto stats = pi::ingestRun(store, bench_paths, label);
      std::printf("ingested %zu file(s): %zu execution(s), %zu result(s)\n",
                  stats.files, stats.executions, stats.results);
      return 0;
    }

    const auto report = pi::runGate(store, bench_paths, label);
    std::fputs(report.toText().c_str(), stdout);
    if (!report_path.empty()) {
      std::ofstream out(report_path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "pt_perf_ingest: cannot write %s\n",
                     report_path.c_str());
        return 1;
      }
      out << report.toJsonLines();
    }
    if (report.hasCritical()) {
      std::fprintf(stderr, "pt_perf_ingest: critical regression detected%s\n",
                   warn_only ? " (warn-only)" : "");
      return warn_only ? 0 : 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pt_perf_ingest: %s\n", e.what());
    return 1;
  }
}
