// ptcollect — emit PTdf from a PTbuild/PTrun capture file (paper §3.3).
//
// Usage: ptcollect build <capture-file> <exec-name>
//        ptcollect run   <capture-file> <exec-name>
// PTdf is written to stdout.
#include <cstdio>
#include <cstring>
#include <exception>
#include <iostream>

#include "collect/collect.h"

int main(int argc, char** argv) {
  if (argc != 4 ||
      (std::strcmp(argv[1], "build") != 0 && std::strcmp(argv[1], "run") != 0)) {
    std::fprintf(stderr, "usage: %s build|run <capture-file> <exec-name>\n", argv[0]);
    return 2;
  }
  try {
    perftrack::ptdf::Writer writer(std::cout);
    if (std::strcmp(argv[1], "build") == 0) {
      perftrack::collect::emitBuildPtdf(writer, perftrack::collect::parseBuildFile(argv[2]),
                                        argv[3]);
    } else {
      perftrack::collect::emitRunPtdf(writer, perftrack::collect::parseRunFile(argv[2]),
                                      argv[3]);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ptcollect: %s\n", e.what());
    return 1;
  }
}
