// ptcompare — comparison operators and prediction models on the CLI (§6).
//
// Usage:
//   ptcompare <db> <execA> <execB>                    compare two executions
//   ptcompare <db> <execA> <execB> --threshold 0.1    list divergent results
//   ptcompare <db> predict <base-exec> <actual-exec> <nprocs> [serial-frac]
//       materialize a prediction from base-exec at <nprocs> (Amdahl model
//       when serial-frac is given, ideal linear otherwise) and report the
//       error against actual-exec
//
// <db> may be a file path, ":memory:", or a remote "pt://host:port" /
// "pt://unix:/sock" target; "--connect host:port" is sugar for the pt://
// form, exactly as in ptquery/ptexport.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "analyze/predict.h"
#include "core/datastore.h"
#include "dbal/connection.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace perftrack;
  // "--connect host:port" is sugar for the "pt://host:port" connection
  // string (an already-prefixed target passes through unchanged).
  std::string connect_target;
  if (argc >= 3 && std::strcmp(argv[1], "--connect") == 0) {
    connect_target = argv[2];
    if (connect_target.rfind("pt://", 0) != 0) {
      connect_target = "pt://" + connect_target;
    }
    argv += 1;
    argc -= 1;
    argv[1] = const_cast<char*>(connect_target.c_str());
  }
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <db>|--connect <host:port> <execA> <execB> "
                 "[--threshold T]\n"
                 "       %s <db>|--connect <host:port> predict <base-exec> "
                 "<actual-exec> <nprocs> [serial-frac]\n"
                 "  <db> accepts pt://host:port and pt://unix:/sock targets\n",
                 argv[0], argv[0]);
    return 2;
  }
  try {
    auto conn = dbal::Connection::open(argv[1]);
    core::PTDataStore store(*conn);

    if (std::strcmp(argv[2], "predict") == 0) {
      if (argc < 6) {
        std::fprintf(stderr, "predict needs: <base-exec> <actual-exec> <nprocs>\n");
        return 2;
      }
      const int nprocs = std::atoi(argv[5]);
      const auto model = argc > 6
                             ? analyze::amdahlScalingModel(std::atof(argv[6]))
                             : analyze::linearScalingModel();
      const auto report =
          analyze::predictionError(store, argv[3], argv[4], nprocs, model, "cli");
      std::fputs(report.toText().c_str(), stdout);
      return 0;
    }

    double threshold = 0.0;
    for (int i = 4; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--threshold") == 0) threshold = std::atof(argv[i + 1]);
    }
    const auto report = analyze::compareExecutions(store, argv[2], argv[3]);
    std::fputs(report.toText().c_str(), stdout);
    if (threshold > 0.0) {
      const auto divergent = report.divergent(threshold);
      std::printf("results diverging beyond %.0f%%: %zu\n", threshold * 100.0,
                  divergent.size());
      for (const auto& row : divergent) {
        std::printf("  %s | %s -> %s\n", row.metric.c_str(),
                    util::formatReal(row.value_a).c_str(),
                    util::formatReal(row.value_b).c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ptcompare: %s\n", e.what());
    return 1;
  }
}
