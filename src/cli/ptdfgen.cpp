// ptdfgen — batch-convert tool output directories to PTdf (paper §3.3).
//
// Usage: ptdfgen <index-file> <output-dir>
// Index entries: "<irs|smg|paradyn> <run-dir> <frost|mcr|bgl|uv> [exec]".
#include <cstdio>
#include <exception>

#include "tools/ptdfgen.h"

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <index-file> <output-dir>\n", argv[0]);
    return 2;
  }
  try {
    const auto results = perftrack::tools::generateFromIndex(argv[1], argv[2]);
    for (const auto& r : results) {
      std::printf("%s: %zu lines, %zu performance results\n",
                  r.ptdf_file.string().c_str(), r.ptdf_lines, r.perf_results);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ptdfgen: %s\n", e.what());
    return 1;
  }
}
