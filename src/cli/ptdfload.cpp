// ptdfload — load PTdf files into a PerfTrack data store.
//
// Usage: ptdfload [--durability=full|wal|none] [--wal-autocheckpoint <n>]
//                 <database|:memory:> <file.ptdf>...
// Initializes the store (schema + base types) if needed, loads each file in
// one transaction, and prints per-file and final store statistics.
//
// --durability=full (default) commits through the rollback journal with
// fsync ordering, so a crash mid-load rolls back to the last loaded file on
// the next open; --durability=wal commits through a write-ahead log
// (checkpointed every --wal-autocheckpoint frames, default 512); and
// --durability=none is the fast, crash-unsafe legacy path. If the previous
// process died mid-commit, opening the store rolls the hot journal back (or
// replays the committed WAL prefix) and a "recovered" line reports it.
//
// PT_DEBUG_CRASH_AT=<n> (testing hook, used by scripts/crash_kill_test.sh):
// SIGKILL the process at the n-th disk write/sync/truncate, leaving a
// genuinely crashed store behind.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "core/reports.h"
#include "dbal/connection.h"
#include "minidb/vfs.h"
#include "ptdf/ptdf.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace perftrack;
  minidb::OpenOptions options;
  int arg = 1;
  while (arg < argc && std::string(argv[arg]).rfind("--", 0) == 0) {
    const std::string flag = argv[arg];
    if (flag == "--durability=full") {
      options.durability = minidb::Durability::Full;
    } else if (flag == "--durability=wal") {
      options.durability = minidb::Durability::Wal;
    } else if (flag == "--durability=none") {
      options.durability = minidb::Durability::None;
    } else if (flag == "--wal-autocheckpoint" && arg + 1 < argc) {
      options.wal_autocheckpoint = static_cast<std::uint32_t>(
          std::strtoul(argv[++arg], nullptr, 10));
    } else {
      std::fprintf(stderr, "ptdfload: unknown flag '%s'\n", flag.c_str());
      return 2;
    }
    ++arg;
  }
  if (argc - arg < 2) {
    std::fprintf(stderr,
                 "usage: %s [--durability=full|wal|none] [--wal-autocheckpoint n] "
                 "<database|:memory:> <file.ptdf>...\n",
                 argv[0]);
    return 2;
  }
  if (const char* crash_at = std::getenv("PT_DEBUG_CRASH_AT")) {
    // Deterministic crash harness: die with SIGKILL at the n-th disk op.
    static minidb::FaultInjectingVfs fault_vfs(minidb::PosixVfs::instance());
    minidb::FaultPlan plan;
    plan.fail_at_op = std::strtoull(crash_at, nullptr, 10);
    plan.action = minidb::FaultAction::Kill;
    fault_vfs.setPlan(plan);
    options.vfs = &fault_vfs;
  }
  try {
    auto conn = dbal::Connection::open(argv[arg], options);
    const auto& recovery = conn->recoveryStats();
    if (recovery.recovered) {
      std::printf("recovered: rolled back %u page(s) from a hot journal "
                  "(previous load crashed mid-commit)\n",
                  recovery.pages_restored);
    }
    if (recovery.wal_replayed) {
      std::printf("recovered: replayed %u page(s) from a stale WAL "
                  "(previous load exited before its checkpoint)\n",
                  recovery.wal_frames_applied);
    }
    if (recovery.discarded_invalid_wal) {
      std::printf("recovered: discarded a torn WAL tail "
                  "(uncommitted frames from a crashed load)\n");
    }
    core::PTDataStore store(*conn);
    store.initialize();
    for (int i = arg + 1; i < argc; ++i) {
      util::Timer timer;
      conn->begin();
      const auto stats = ptdf::loadFile(store, argv[i]);
      conn->commit();
      std::printf("%s: %zu records (%zu resources, %zu attributes, %zu results) "
                  "in %.2f s\n",
                  argv[i], stats.records, stats.resources, stats.attributes,
                  stats.perf_results, timer.elapsedSeconds());
    }
    std::fputs(core::storeReport(store).c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ptdfload: %s\n", e.what());
    return 1;
  }
}
