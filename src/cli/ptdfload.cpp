// ptdfload — load PTdf files into a PerfTrack data store.
//
// Usage: ptdfload <database|:memory:> <file.ptdf>...
// Initializes the store (schema + base types) if needed, loads each file in
// one transaction, and prints per-file and final store statistics.
#include <cstdio>
#include <exception>

#include "core/reports.h"
#include "dbal/connection.h"
#include "ptdf/ptdf.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <database|:memory:> <file.ptdf>...\n", argv[0]);
    return 2;
  }
  try {
    auto conn = perftrack::dbal::Connection::open(argv[1]);
    perftrack::core::PTDataStore store(*conn);
    store.initialize();
    for (int i = 2; i < argc; ++i) {
      perftrack::util::Timer timer;
      conn->begin();
      const auto stats = perftrack::ptdf::loadFile(store, argv[i]);
      conn->commit();
      std::printf("%s: %zu records (%zu resources, %zu attributes, %zu results) "
                  "in %.2f s\n",
                  argv[i], stats.records, stats.resources, stats.attributes,
                  stats.perf_results, timer.elapsedSeconds());
    }
    std::fputs(perftrack::core::storeReport(store).c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ptdfload: %s\n", e.what());
    return 1;
  }
}
