// ptexport — serialize a data store (or one execution) back to PTdf.
//
// Usage: ptexport <db> [execution-name]
// PTdf is written to stdout; load it elsewhere with ptdfload. This is the
// store-to-store sharing path: fine-grained exchange without shipping the
// whole database file.
#include <cstdio>
#include <cstring>
#include <exception>
#include <iostream>
#include <string>

#include "core/datastore.h"
#include "dbal/connection.h"
#include "ptdf/export.h"

int main(int argc, char** argv) {
  // "--connect host:port" exports from a running ptserverd ("pt://..." also
  // works directly as <db>).
  std::string connect_target;
  if (argc >= 3 && std::strcmp(argv[1], "--connect") == 0) {
    connect_target = std::string("pt://") + argv[2];
    argv += 1;
    argc -= 1;
    argv[1] = const_cast<char*>(connect_target.c_str());
  }
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: %s <db>|--connect <host:port> [execution-name]\n",
                 argv[0]);
    return 2;
  }
  try {
    auto conn = perftrack::dbal::Connection::open(argv[1]);
    perftrack::core::PTDataStore store(*conn);
    store.initialize();  // idempotent; makes empty/new files exportable
    perftrack::ptdf::Writer writer(std::cout);
    perftrack::ptdf::ExportStats stats;
    if (argc == 3) {
      stats = perftrack::ptdf::exportExecution(store, argv[2], writer);
    } else {
      stats = perftrack::ptdf::exportStore(store, writer);
    }
    std::fprintf(stderr,
                 "exported %zu resources, %zu attributes, %zu results, "
                 "%zu executions\n",
                 stats.resources, stats.attributes, stats.perf_results,
                 stats.executions);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ptexport: %s\n", e.what());
    return 1;
  }
}
