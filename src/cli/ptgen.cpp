// ptgen — generate simulated benchmark runs (the repo's stand-in for access
// to Frost/MCR/BG-L/UV; see DESIGN.md "Substitutions").
//
// Usage:
//   ptgen irs     <dir> <machine> <nprocs> [seed]
//   ptgen smg     <dir> <machine> <nprocs> [seed]   (mpiP+PMAPI on uv/frost/mcr)
//   ptgen paradyn <dir> <machine> <nprocs> [seed]
// Prints the generated execution name and file list.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "sim/irs_gen.h"
#include "sim/paradyn_gen.h"
#include "sim/smg_gen.h"
#include "tools/ptdfgen.h"

int main(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr, "usage: %s irs|smg|paradyn <dir> <machine> <nprocs> [seed]\n",
                 argv[0]);
    return 2;
  }
  try {
    using namespace perftrack;
    const std::string kind = argv[1];
    const std::string dir = argv[2];
    const sim::MachineConfig machine = tools::machineByName(argv[3]);
    const int nprocs = std::atoi(argv[4]);
    const std::uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;
    sim::GeneratedRun run;
    if (kind == "irs") {
      run = sim::generateIrsRun({machine, nprocs, "MPI", seed, ""}, dir);
    } else if (kind == "smg") {
      sim::SmgRunSpec spec;
      spec.machine = machine;
      spec.nprocs = nprocs;
      spec.seed = seed;
      // BG/L's compute kernel has no mpiP/PMAPI support in these studies.
      spec.with_mpip = machine.name != "BGL";
      spec.with_pmapi = machine.name != "BGL";
      run = sim::generateSmgRun(spec, dir);
    } else if (kind == "paradyn") {
      sim::ParadynRunSpec spec;
      spec.machine = machine;
      spec.nprocs = nprocs;
      spec.seed = seed;
      run = sim::generateParadynRun(spec, dir);
    } else {
      std::fprintf(stderr, "ptgen: unknown kind '%s'\n", kind.c_str());
      return 2;
    }
    std::printf("execution: %s\n", run.exec_name.c_str());
    for (const auto& file : run.files) {
      std::printf("  %s\n", file.string().c_str());
    }
    std::printf("raw bytes: %llu\n", static_cast<unsigned long long>(run.rawBytes()));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ptgen: %s\n", e.what());
    return 1;
  }
}
