// ptquery — the PerfTrack GUI's query workflow as a command-line tool.
//
// Usage:
//   ptquery [--timing] <db> report            store statistics
//   ptquery <db> executions                   execution report
//   ptquery <db> metrics                      metric inventory
//   ptquery <db> types                        resource type list
//   ptquery <db> tree <root-type>             resource tree
//   ptquery <db> sql "<statement>"            raw SQL against the schema
//   ptquery <db> diff <execA> <execB> [--top K] [--threshold T] [--abs T]
//       comparison-based diagnosis: aligns the two executions' results over
//       comparable contexts and prints the divergent (metric, context)
//       pairs ranked by contribution to the total delta, plus alignment
//       stats. Runs server-side (DIFF wire verb) under --connect.
//   ptquery <db> select <family>... [--csv]   pr-filter query; families:
//       type=<type-path>[:N|A|D|B]
//       name=<resource-name>[:N|A|D|B]        (default D, like the GUI)
//       attr=<name><op><value>[:N|A|D|B]      op in = != < <= > >=
//     each family prints its live match count, then the result table with
//     all free-resource columns added.
//
// --timing (first flag) prints the client-observed stage breakdown of the
// last query — parse/plan/bind/execute spans, rows — to stderr on exit.
// It reports the same spans for local files and --connect runs (remote
// spans are marked, and execute covers the streamed fetches).
#include <cctype>
#include <cstdio>
#include <cstring>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include <fstream>

#include "analyze/session_shell.h"
#include "core/diag.h"
#include "core/filter.h"
#include "obs/trace.h"
#include "core/integrity.h"
#include "core/query_session.h"
#include "core/reports.h"
#include "dbal/connection.h"
#include "util/error.h"
#include "util/strings.h"

namespace {

using namespace perftrack;

/// True when `sql` starts with SELECT or EXPLAIN (row-producing statements
/// that should stream through a cursor instead of buffering a ResultSet).
bool isStreamingSql(std::string_view sql) {
  const auto start = sql.find_first_not_of(" \t\r\n");
  if (start == std::string_view::npos) return false;
  sql.remove_prefix(start);
  for (std::string_view keyword : {"SELECT", "EXPLAIN"}) {
    if (sql.size() >= keyword.size()) {
      bool match = true;
      for (std::size_t i = 0; i < keyword.size(); ++i) {
        if (std::toupper(static_cast<unsigned char>(sql[i])) != keyword[i]) {
          match = false;
          break;
        }
      }
      if (match) return true;
    }
  }
  return false;
}

/// Streams a SELECT/EXPLAIN: each row prints as soon as the pipeline
/// produces it, so the first row of a huge result appears immediately and
/// the result set never materializes in this process.
void streamSql(dbal::Connection& conn, const char* sql) {
  auto cur = conn.query(sql);
  const auto& columns = cur.columns();
  for (std::size_t c = 0; c < columns.size(); ++c) {
    std::printf("%s%s", c ? " | " : "", columns[c].c_str());
  }
  std::printf("\n");
  minidb::Row row;
  std::uint64_t count = 0;
  while (cur.next(row)) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::string text = row[c].isNull() ? "NULL" : row[c].toDisplayString();
      std::printf("%s%s", c ? " | " : "", text.c_str());
    }
    std::printf("\n");
    ++count;
  }
  std::printf("(%llu rows)\n", static_cast<unsigned long long>(count));
}

core::Expansion expansionFromSuffix(std::string& spec) {
  // Trailing ":N" / ":A" / ":D" / ":B" selects the relatives flag.
  if (spec.size() > 2 && spec[spec.size() - 2] == ':') {
    const char c = spec.back();
    if (c == 'N' || c == 'A' || c == 'D' || c == 'B') {
      spec.resize(spec.size() - 2);
      switch (c) {
        case 'N': return core::Expansion::None;
        case 'A': return core::Expansion::Ancestors;
        case 'B': return core::Expansion::Both;
        default: return core::Expansion::Descendants;
      }
    }
  }
  return core::Expansion::Descendants;  // the GUI default
}

core::ResourceFilter parseFamilyArg(std::string arg) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos) {
    throw util::ModelError("bad family spec '" + arg + "'");
  }
  const std::string kind = arg.substr(0, eq);
  std::string spec = arg.substr(eq + 1);
  const core::Expansion expand = expansionFromSuffix(spec);
  if (kind == "type") return core::ResourceFilter::byType(spec, expand);
  if (kind == "name") return core::ResourceFilter::byName(spec, expand);
  if (kind == "attr") {
    // split name/op/value: find the comparator.
    static const char* kOps[] = {"!=", "<=", ">=", "=", "<", ">"};
    for (const char* op : kOps) {
      const auto pos = spec.find(op);
      if (pos != std::string::npos && pos > 0) {
        return core::ResourceFilter::byAttributes(
            {{spec.substr(0, pos), op, spec.substr(pos + std::strlen(op))}}, "", expand);
      }
    }
    throw util::ModelError("attr family needs <name><op><value>: '" + spec + "'");
  }
  throw util::ModelError("unknown family kind '" + kind + "'");
}

int runSelect(core::PTDataStore& store, const std::vector<std::string>& args) {
  core::QuerySession session(store);
  bool csv = false;
  for (std::string arg : args) {
    if (arg == "--csv") {
      csv = true;
      continue;
    }
    const auto index = session.addFamily(parseFamilyArg(arg));
    std::printf("family %zu  %s  matches %zu results alone\n", index,
                session.families()[index].describe().c_str(),
                session.familyMatchCount(index));
  }
  std::printf("full pr-filter matches %zu results\n", session.totalMatchCount());
  core::ResultTable table = session.run();
  for (const std::string& type : table.freeResourceTypes()) {
    table.addColumn(type);
  }
  if (csv) {
    table.toCsv(std::cout);
  } else {
    std::fputs(table.toText().c_str(), stdout);
  }
  return 0;
}

}  // namespace

/// End-of-process stage report for --timing: the destructor prints the last
/// recorded query span (local executor or remote client, whichever ran) and
/// the process wall time to stderr, so stdout stays machine-parseable.
struct TimingReport {
  bool on = false;
  obs::StageTimer wall;

  ~TimingReport() {
    if (!on) return;
    const double wall_ms = static_cast<double>(wall.elapsedUs()) / 1000.0;
    const auto t = obs::Tracer::global().last();
    if (t.has_value()) {
      std::fprintf(stderr,
                   "timing:%s parse=%.3fms plan=%.3fms bind=%.3fms "
                   "execute=%.3fms rows=%llu (wall %.3fms)\n",
                   t->remote ? " [remote]" : "",
                   static_cast<double>(t->parse_us) / 1000.0,
                   static_cast<double>(t->plan_us) / 1000.0,
                   static_cast<double>(t->bind_us) / 1000.0,
                   static_cast<double>(t->exec_us) / 1000.0,
                   static_cast<unsigned long long>(t->rows), wall_ms);
    } else {
      std::fprintf(stderr, "timing: no query trace recorded (wall %.3fms)\n",
                   wall_ms);
    }
  }
};

int main(int argc, char** argv) {
  TimingReport timing_report;
  if (argc >= 2 && std::strcmp(argv[1], "--timing") == 0) {
    timing_report.on = true;
    // The user asked for this run's spans: defeat the tracer's rate limiter
    // so the report never comes up empty.
    obs::Tracer::global().setAlwaysSample(true);
    argv += 1;
    argc -= 1;
  }
  // "--connect host:port" is sugar for the "pt://host:port" connection
  // string: the whole command surface below runs against a ptserverd.
  std::string connect_target;
  if (argc >= 3 && std::strcmp(argv[1], "--connect") == 0) {
    connect_target = std::string("pt://") + argv[2];
    argv += 1;
    argc -= 1;
    argv[1] = const_cast<char*>(connect_target.c_str());
  }
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s [--timing] <db>|--connect <host:port> "
                 "report|executions|metrics|types|tree <type>|"
                 "sql <stmt>|diff <execA> <execB>|select <family>...\n",
                 argv[0]);
    return 2;
  }
  try {
    auto conn = dbal::Connection::open(argv[1]);
    core::PTDataStore store(*conn);
    store.initialize();
    const std::string command = argv[2];
    if (command == "report") {
      std::fputs(core::storeReport(store).c_str(), stdout);
    } else if (command == "check") {
      const auto problems = core::verifyStore(store);
      if (problems.empty()) {
        std::printf("store is consistent\n");
      } else {
        for (const auto& p : problems) std::printf("PROBLEM: %s\n", p.c_str());
        return 1;
      }
    } else if (command == "executions") {
      std::fputs(core::executionReport(store).c_str(), stdout);
    } else if (command == "metrics") {
      std::fputs(core::metricReport(store).c_str(), stdout);
    } else if (command == "types") {
      for (const std::string& type : store.resourceTypes()) {
        std::printf("%s\n", type.c_str());
      }
    } else if (command == "tree" && argc >= 4) {
      std::fputs(core::resourceTreeReport(store, argv[3]).c_str(), stdout);
    } else if (command == "attrs" && argc >= 4) {
      // The GUI's attribute viewer: all attributes of one resource.
      const auto id = store.findResource(argv[3]);
      if (!id) {
        std::fprintf(stderr, "ptquery: no resource named '%s'\n", argv[3]);
        return 1;
      }
      for (const auto& attr : store.attributesOf(*id)) {
        std::printf("%s = %s (%s)\n", attr.name.c_str(), attr.value.c_str(),
                    attr.attr_type.c_str());
      }
    } else if (command == "children" && argc >= 4) {
      // Incremental browsing: one level of the resource tree on demand.
      const auto id = store.findResource(argv[3]);
      if (!id) {
        std::fprintf(stderr, "ptquery: no resource named '%s'\n", argv[3]);
        return 1;
      }
      for (const auto& child : store.childrenOf(*id)) {
        std::printf("%s [%s]\n", child.full_name.c_str(), child.type_path.c_str());
      }
    } else if (command == "sql" && argc >= 4) {
      if (isStreamingSql(argv[3])) {
        streamSql(*conn, argv[3]);
      } else {
        const auto rs = conn->exec(argv[3]);
        if (!rs.columns.empty()) {
          std::fputs(rs.toText().c_str(), stdout);
        } else {
          std::printf("%lld rows affected\n",
                      static_cast<long long>(rs.rows_affected));
        }
      }
    } else if ((command == "diff" || command == "--diff") && argc >= 5) {
      core::diag::Request req;
      req.exec_a = argv[3];
      req.exec_b = argv[4];
      for (int i = 5; i < argc; ++i) {
        const std::string flag = argv[i];
        const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
        if (flag == "--top" && value != nullptr) {
          const auto k = util::parseInt(value);
          if (!k || *k < 0) {
            std::fprintf(stderr, "ptquery: bad --top value '%s'\n", value);
            return 2;
          }
          req.top_k = static_cast<std::uint32_t>(*k);
          ++i;
        } else if (flag == "--threshold" && value != nullptr) {
          const auto t = util::parseReal(value);
          if (!t || *t < 0) {
            std::fprintf(stderr, "ptquery: bad --threshold value '%s'\n", value);
            return 2;
          }
          req.ratio_threshold = *t;
          ++i;
        } else if (flag == "--abs" && value != nullptr) {
          const auto t = util::parseReal(value);
          if (!t || *t < 0) {
            std::fprintf(stderr, "ptquery: bad --abs value '%s'\n", value);
            return 2;
          }
          req.abs_threshold = *t;
          ++i;
        } else {
          std::fprintf(stderr, "ptquery: unknown diff flag '%s'\n", flag.c_str());
          return 2;
        }
      }
      std::fputs(conn->diff(req).toText().c_str(), stdout);
    } else if (command == "select") {
      return runSelect(store, {argv + 3, argv + argc});
    } else if (command == "session") {
      // Scripted GUI workflow: commands from a file, or stdin when omitted.
      std::size_t failures = 0;
      if (argc >= 4) {
        std::ifstream script(argv[3]);
        if (!script) {
          std::fprintf(stderr, "ptquery: cannot open session script '%s'\n", argv[3]);
          return 1;
        }
        failures = analyze::runSessionScript(store, script, std::cout);
      } else {
        failures = analyze::runSessionScript(store, std::cin, std::cout);
      }
      return failures == 0 ? 0 : 1;
    } else {
      std::fprintf(stderr, "ptquery: unknown command '%s'\n", command.c_str());
      return 2;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ptquery: %s\n", e.what());
    return 1;
  }
}
