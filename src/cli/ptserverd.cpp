// ptserverd — the PerfTrack query server.
//
// Owns one minidb database and serves it to many concurrent clients over
// the src/server wire protocol (see DESIGN.md §5.4). Clients connect with
// dbal connection string "pt://host:port" or "pt://unix:/path" — every
// ptquery/ptexport workflow runs unchanged against the daemon.
//
// Usage:
//   ptserverd [flags] <database|:memory:>
//     --listen <host:port>    TCP endpoint (default 127.0.0.1:7077; port 0
//                             picks an ephemeral port, printed on stdout)
//     --unix <path>           also listen on a Unix-domain socket
//     --workers <n>           worker threads (default 4)
//     --max-conn <n>          connection cap; excess gets a BUSY frame
//     --idle-timeout <ms>     reap connections idle this long (0 disables)
//     --lock-timeout <ms>     gate acquisition budget before BUSY
//     --durability=full|wal|none
//                             storage durability mode (default full). wal
//                             commits through a write-ahead log: SELECTs
//                             read pinned snapshots while writers commit,
//                             and concurrent commits share fsyncs (group
//                             commit)
//     --wal-autocheckpoint <n>
//                             fold the WAL back into the db file once it
//                             holds n frames (default 512; 0 disables)
//     --no-remote-shutdown    ignore SHUTDOWN frames (signals still work)
//     --metrics-port <n>      serve GET /metrics and /traces over HTTP on
//                             the listen host (0 picks an ephemeral port,
//                             printed on stdout; omit to disable)
//     --slow-query-ms <ms>    log queries slower than this to stderr and
//                             the slow-trace ring (0 disables; default 0)
//     --exec-threads <n>      parallel SELECT degree per session (0 =
//                             PT_EXEC_THREADS or hardware concurrency,
//                             1 = serial; sessions share one worker pool)
//     --invidx <0|1>          default inverted-index switch for new
//                             sessions (posting-list IN probes; omit for
//                             the process default, PT_INVIDX or on)
//
// On startup the daemon prints "listening on <host>:<port>" (and the unix
// path if any) to stdout and flushes, so harnesses can scrape the ephemeral
// port. SIGTERM/SIGINT trigger a graceful drain: in-flight requests finish,
// their responses are sent, open cursors release their locks, and the
// store closes cleanly.
//
// PT_DEBUG_CRASH_AT=<n> (testing hook, used by scripts/server_kill_test.sh):
// SIGKILL the daemon at the n-th disk write/sync/truncate, leaving a
// genuinely crashed store for the restart-recovery test.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <thread>

#include <unistd.h>

#include "minidb/vfs.h"
#include "obs/trace.h"
#include "server/server.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void onTerminate(int) {
  const char byte = 1;
  (void)!::write(g_signal_pipe[1], &byte, 1);
}

bool parseHostPort(const std::string& spec, std::string& host, std::uint16_t& port) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 == spec.size()) return false;
  host = spec.substr(0, colon);
  const long value = std::strtol(spec.c_str() + colon + 1, nullptr, 10);
  if (value < 0 || value > 65535) return false;
  port = static_cast<std::uint16_t>(value);
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--listen host:port] [--unix path] [--workers n]\n"
               "       [--max-conn n] [--idle-timeout ms] [--lock-timeout ms]\n"
               "       [--durability=full|wal|none] [--wal-autocheckpoint n]\n"
               "       [--no-remote-shutdown]\n"
               "       [--metrics-port n] [--slow-query-ms ms] [--exec-threads n]\n"
               "       [--invidx 0|1] <database|:memory:>\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace perftrack;

  // A client that disconnects mid-response must surface as EPIPE on the
  // worker's send, never as a process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  server::ServerConfig config;
  config.port = 7077;
  minidb::OpenOptions options;
  bool explicit_listen = false;

  int arg = 1;
  auto nextValue = [&](const char* flag) -> const char* {
    if (arg + 1 >= argc) {
      std::fprintf(stderr, "ptserverd: %s needs a value\n", flag);
      std::exit(2);
    }
    return argv[++arg];
  };
  for (; arg < argc && std::string(argv[arg]).rfind("--", 0) == 0; ++arg) {
    const std::string flag = argv[arg];
    if (flag == "--listen") {
      if (!parseHostPort(nextValue("--listen"), config.host, config.port)) {
        std::fprintf(stderr, "ptserverd: bad --listen spec (want host:port)\n");
        return 2;
      }
      explicit_listen = true;
    } else if (flag == "--unix") {
      config.unix_path = nextValue("--unix");
      // --unix alone means unix-only, unless --listen was also given.
      if (!explicit_listen) config.tcp = false;
    } else if (flag == "--workers") {
      config.workers = std::atoi(nextValue("--workers"));
      if (config.workers < 1) config.workers = 1;
    } else if (flag == "--max-conn") {
      config.max_connections =
          static_cast<std::size_t>(std::strtoul(nextValue("--max-conn"), nullptr, 10));
    } else if (flag == "--idle-timeout") {
      config.idle_timeout =
          std::chrono::milliseconds(std::atol(nextValue("--idle-timeout")));
    } else if (flag == "--lock-timeout") {
      config.limits.lock_timeout =
          std::chrono::milliseconds(std::atol(nextValue("--lock-timeout")));
    } else if (flag == "--durability=full") {
      options.durability = minidb::Durability::Full;
    } else if (flag == "--durability=wal") {
      options.durability = minidb::Durability::Wal;
    } else if (flag == "--durability=none") {
      options.durability = minidb::Durability::None;
    } else if (flag == "--wal-autocheckpoint") {
      options.wal_autocheckpoint = static_cast<std::uint32_t>(
          std::strtoul(nextValue("--wal-autocheckpoint"), nullptr, 10));
    } else if (flag == "--no-remote-shutdown") {
      config.limits.allow_shutdown = false;
    } else if (flag == "--metrics-port") {
      config.metrics_port = std::atoi(nextValue("--metrics-port"));
      if (config.metrics_port < 0 || config.metrics_port > 65535) {
        std::fprintf(stderr, "ptserverd: bad --metrics-port (want 0..65535)\n");
        return 2;
      }
    } else if (flag == "--slow-query-ms") {
      obs::Tracer::global().setSlowQueryMillis(
          static_cast<std::uint64_t>(std::atol(nextValue("--slow-query-ms"))));
    } else if (flag == "--exec-threads") {
      config.limits.exec_threads = std::atoi(nextValue("--exec-threads"));
      if (config.limits.exec_threads < 0) config.limits.exec_threads = 0;
    } else if (flag == "--invidx") {
      config.limits.invidx = std::atoi(nextValue("--invidx")) != 0 ? 1 : 0;
    } else {
      std::fprintf(stderr, "ptserverd: unknown flag '%s'\n", flag.c_str());
      return usage(argv[0]);
    }
  }
  if (arg != argc - 1) return usage(argv[0]);
  const std::string db_path = argv[arg];
  // --listen was given explicitly alongside nothing else: keep TCP on even
  // if a later --unix turned it off (flag order independence).
  if (explicit_listen) config.tcp = true;

  if (const char* crash_at = std::getenv("PT_DEBUG_CRASH_AT")) {
    // Deterministic crash harness: die with SIGKILL at the n-th disk op.
    static minidb::FaultInjectingVfs fault_vfs(minidb::PosixVfs::instance());
    minidb::FaultPlan plan;
    plan.fail_at_op = std::strtoull(crash_at, nullptr, 10);
    plan.action = minidb::FaultAction::Kill;
    fault_vfs.setPlan(plan);
    options.vfs = &fault_vfs;
  }

  try {
    auto db = db_path == ":memory:" ? minidb::Database::openMemory()
                                    : minidb::Database::open(db_path, options);
    const auto& recovery = db->recoveryStats();
    if (recovery.recovered) {
      std::fprintf(stderr,
                   "ptserverd: recovered: rolled back %u page(s) from a hot "
                   "journal (previous process crashed mid-commit)\n",
                   recovery.pages_restored);
    }
    if (recovery.wal_replayed) {
      std::fprintf(stderr,
                   "ptserverd: recovered: replayed %u page(s) from a stale "
                   "WAL (previous process exited before its checkpoint)\n",
                   recovery.wal_frames_applied);
    }
    if (recovery.discarded_invalid_wal) {
      std::fprintf(stderr,
                   "ptserverd: recovered: discarded a torn WAL tail "
                   "(uncommitted frames from a crashed writer)\n");
    }

    server::PtServer srv(*db, config);
    srv.start();

    if (config.tcp) {
      std::printf("listening on %s:%u\n", config.host.c_str(), srv.boundPort());
    }
    if (!config.unix_path.empty()) {
      std::printf("listening on unix:%s\n", config.unix_path.c_str());
    }
    if (config.metrics_port >= 0) {
      std::printf("metrics on http://%s:%u/metrics\n", config.host.c_str(),
                  srv.boundMetricsPort());
    }
    std::fflush(stdout);

    if (::pipe(g_signal_pipe) != 0) {
      std::fprintf(stderr, "ptserverd: cannot create signal pipe\n");
      return 1;
    }
    std::signal(SIGTERM, onTerminate);
    std::signal(SIGINT, onTerminate);

    // Signals must not call into the server (locks are not async-signal
    // safe); the handler pokes a pipe and this relay does the real work.
    std::thread relay([&srv] {
      char byte = 0;
      if (::read(g_signal_pipe[0], &byte, 1) > 0 && byte == 1) {
        srv.requestStop();
      }
    });

    srv.waitUntilStopped();  // drains on SIGTERM/SIGINT or a SHUTDOWN frame

    // Unblock the relay if the stop came from a SHUTDOWN frame.
    const char quit = 0;
    (void)!::write(g_signal_pipe[1], &quit, 1);
    relay.join();

    std::printf("ptserverd: drained, closing store\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ptserverd: %s\n", e.what());
    return 1;
  }
}
