#include "collect/collect.h"

#include <fstream>

#include "util/error.h"
#include "util/strings.h"

namespace perftrack::collect {

using util::ParseError;

namespace {

std::vector<std::string> readLines(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw util::PTError("cannot open capture file: " + path.string());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

}  // namespace

BuildInfo parseBuildFile(const std::filesystem::path& path) {
  BuildInfo info;
  std::size_t line_no = 0;
  for (const std::string& raw : readLines(path)) {
    ++line_no;
    const std::string_view line = util::trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (util::startsWith(line, "staticlib:")) {
      const auto parts = util::split(line.substr(10), ':');
      if (parts.size() != 3) throw ParseError("bad staticlib record", line_no);
      info.static_libs.push_back({parts[0], parts[1], parts[2]});
      continue;
    }
    const auto kv = util::splitN(line, '=', 2);
    if (kv.size() != 2) throw ParseError("expected key=value", line_no);
    const std::string& key = kv[0];
    const std::string& value = kv[1];
    if (key == "application") info.application = value;
    else if (key == "build_machine") info.build_machine = value;
    else if (key == "build_os") info.build_os = value;
    else if (key == "compiler") info.compiler = value;
    else if (key == "compiler_version") info.compiler_version = value;
    else if (key == "compiler_flags") info.compiler_flags = value;
    else if (key == "mpi_wrapper") info.mpi_wrapper = value;
    else if (key == "preprocessor") info.preprocessor = value;
    else if (key == "build_timestamp") info.build_timestamp = value;
    else throw ParseError("unknown build key '" + key + "'", line_no);
  }
  return info;
}

RunInfo parseRunFile(const std::filesystem::path& path) {
  RunInfo info;
  std::size_t line_no = 0;
  for (const std::string& raw : readLines(path)) {
    ++line_no;
    const std::string_view line = util::trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (util::startsWith(line, "envvar:")) {
      const auto kv = util::splitN(line.substr(7), '=', 2);
      if (kv.size() != 2) throw ParseError("bad envvar record", line_no);
      info.env_vars[kv[0]] = kv[1];
      continue;
    }
    if (util::startsWith(line, "dynlib:")) {
      // The final (timestamp) field may itself contain ':'.
      const auto parts = util::splitN(line.substr(7), ':', 4);
      if (parts.size() != 4) throw ParseError("bad dynlib record", line_no);
      info.dynamic_libs.push_back({parts[0], parts[1], parts[2], parts[3]});
      continue;
    }
    const auto kv = util::splitN(line, '=', 2);
    if (kv.size() != 2) throw ParseError("expected key=value", line_no);
    const std::string& key = kv[0];
    const std::string& value = kv[1];
    if (key == "execution") info.execution = value;
    else if (key == "machine") info.machine = value;
    else if (key == "os") info.os = value;
    else if (key == "nprocs") info.nprocs = static_cast<int>(util::parseInt(value).value_or(1));
    else if (key == "nthreads") info.nthreads = static_cast<int>(util::parseInt(value).value_or(1));
    else if (key == "concurrency") info.concurrency = value;
    else if (key == "inputdeck") info.input_deck = value;
    else if (key == "inputdeck_timestamp") info.input_deck_timestamp = value;
    else if (key == "submission") info.submission = value;
    else throw ParseError("unknown run key '" + key + "'", line_no);
  }
  return info;
}

void emitBuildPtdf(ptdf::Writer& writer, const BuildInfo& info,
                   const std::string& exec_name) {
  writer.comment("build capture for " + exec_name);
  const std::string build = "/build-" + exec_name;
  writer.resource(build, "build");
  writer.resourceAttribute(build, "build machine", info.build_machine);
  writer.resourceAttribute(build, "build os", info.build_os);
  writer.resourceAttribute(build, "compiler flags", info.compiler_flags);
  writer.resourceAttribute(build, "mpi wrapper", info.mpi_wrapper);
  writer.resourceAttribute(build, "build timestamp", info.build_timestamp);
  if (!info.compiler.empty()) {
    const std::string compiler = "/" + info.compiler;
    writer.resource(compiler, "compiler");
    writer.resourceAttribute(compiler, "version", info.compiler_version);
    // "a compiler may be an attribute of a particular build" (paper §2.1).
    writer.resourceConstraint(build, compiler);
  }
  if (!info.preprocessor.empty()) {
    writer.resource("/" + info.preprocessor, "preprocessor");
    writer.resourceConstraint(build, "/" + info.preprocessor);
  }
  for (const StaticLib& lib : info.static_libs) {
    const std::string module = build + "/" + lib.name;
    writer.resource(module, "build/module");
    writer.resourceAttribute(module, "version", lib.version);
    writer.resourceAttribute(module, "type", lib.kind);
  }
}

void emitRunPtdf(ptdf::Writer& writer, const RunInfo& info,
                 const std::string& exec_name) {
  writer.comment("runtime capture for " + exec_name);
  const std::string env = "/env-" + exec_name;
  writer.resource(env, "environment");
  for (const auto& [key, value] : info.env_vars) {
    writer.resourceAttribute(env, "env:" + key, value);
  }
  for (const DynamicLib& lib : info.dynamic_libs) {
    // Library base name (path tail) becomes the module resource name.
    const auto slash = lib.path.rfind('/');
    const std::string base =
        slash == std::string::npos ? lib.path : lib.path.substr(slash + 1);
    const std::string module = env + "/" + base;
    writer.resource(module, "environment/module");
    writer.resourceAttribute(module, "path", lib.path);
    writer.resourceAttribute(module, "size", lib.size);
    writer.resourceAttribute(module, "type", lib.kind);
    writer.resourceAttribute(module, "timestamp", lib.timestamp);
  }
  // Execution hierarchy: the run root plus one process per rank.
  const std::string exec_root = "/" + exec_name;
  writer.resource(exec_root, "execution");
  writer.resourceAttribute(exec_root, "concurrency", info.concurrency);
  writer.resourceAttribute(exec_root, "nprocs", std::to_string(info.nprocs));
  writer.resourceAttribute(exec_root, "nthreads", std::to_string(info.nthreads));
  for (int p = 0; p < info.nprocs; ++p) {
    const std::string proc = exec_root + "/p" + std::to_string(p);
    writer.resource(proc, "execution/process");
    if (info.nthreads > 1) {
      for (int t = 0; t < info.nthreads; ++t) {
        writer.resource(proc + "/t" + std::to_string(t), "execution/process/thread");
      }
    }
  }
  if (!info.input_deck.empty()) {
    const std::string deck = "/" + info.input_deck;
    writer.resource(deck, "inputDeck");
    writer.resourceAttribute(deck, "timestamp", info.input_deck_timestamp);
    writer.resourceConstraint(exec_root, deck);
  }
  if (!info.submission.empty()) {
    const std::string sub = "/submission-" + exec_name;
    writer.resource(sub, "submission");
    writer.resourceAttribute(sub, "command", info.submission);
  }
  if (!info.os.empty()) {
    // OS name may contain spaces ("AIX 5.2"); keep the name segment clean.
    const auto fields = util::splitWhitespace(info.os);
    const std::string os = "/" + (fields.empty() ? info.os : fields[0]);
    writer.resource(os, "operatingSystem");
    writer.resourceAttribute(os, "version", fields.size() > 1 ? fields[1] : "");
    writer.resourceConstraint(exec_root, os);
  }
}

}  // namespace perftrack::collect
