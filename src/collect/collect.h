// PerfTrack collectors: automatic build- and runtime-environment capture.
//
// The paper ships PTbuild/PTrun wrapper scripts that execute a build or run
// and capture descriptive data — compiler, flags, linked libraries, OS,
// environment variables, dynamic libraries, the input deck, submission
// details (§3.3). Our simulated runs write that capture into irs_build.txt /
// irs_env.txt files (sim/irs_gen.cpp); this module parses those captures and
// emits the corresponding PTdf resources:
//   build information  -> "build" hierarchy + compiler/preprocessor resources
//   runtime information -> "environment" hierarchy (dynamic libraries),
//                          "execution" hierarchy (processes/threads),
//                          inputDeck, submission, operatingSystem resources
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "ptdf/ptdf.h"

namespace perftrack::collect {

/// A static library recorded at link time.
struct StaticLib {
  std::string name;
  std::string version;
  std::string kind;
};

/// Parsed PTbuild capture.
struct BuildInfo {
  std::string application;
  std::string build_machine;
  std::string build_os;
  std::string compiler;
  std::string compiler_version;
  std::string compiler_flags;
  std::string mpi_wrapper;
  std::string preprocessor;
  std::string build_timestamp;
  std::vector<StaticLib> static_libs;
};

/// A dynamic library observed at run time.
struct DynamicLib {
  std::string path;
  std::string size;
  std::string kind;  // MPI, thread, math, ...
  std::string timestamp;
};

/// Parsed PTrun capture.
struct RunInfo {
  std::string execution;
  std::string machine;
  std::string os;
  int nprocs = 1;
  int nthreads = 1;
  std::string concurrency;
  std::string input_deck;
  std::string input_deck_timestamp;
  std::string submission;
  std::map<std::string, std::string> env_vars;
  std::vector<DynamicLib> dynamic_libs;
};

/// Parses an irs_build.txt-style capture ("key=value" lines plus
/// "staticlib:name:version:kind" records).
BuildInfo parseBuildFile(const std::filesystem::path& path);

/// Parses an irs_env.txt-style capture ("key=value", "envvar:K=V",
/// "dynlib:path:size:kind:timestamp").
RunInfo parseRunFile(const std::filesystem::path& path);

/// Emits the build capture as PTdf resources for `exec_name`:
/// /build-<exec> (build hierarchy root) with compile attributes, a compiler
/// resource (linked via resource constraint), a preprocessor resource, and
/// one build/module resource per static library.
void emitBuildPtdf(ptdf::Writer& writer, const BuildInfo& info,
                   const std::string& exec_name);

/// Emits the runtime capture: environment hierarchy with one module per
/// dynamic library, execution hierarchy with nprocs processes (and threads
/// when nthreads > 1), inputDeck/submission/operatingSystem resources, and
/// environment-variable attributes.
void emitRunPtdf(ptdf::Writer& writer, const RunInfo& info,
                 const std::string& exec_name);

}  // namespace perftrack::collect
