#include "core/datastore.h"

#include <algorithm>
#include <cmath>

#include "core/typesystem.h"
#include "dbal/schema.h"
#include "util/error.h"
#include "util/strings.h"

namespace perftrack::core {

using minidb::Value;
using util::ModelError;

std::string_view focusTypeName(FocusType type) {
  switch (type) {
    case FocusType::Primary: return "primary";
    case FocusType::Parent: return "parent";
    case FocusType::Child: return "child";
    case FocusType::Sender: return "sender";
    case FocusType::Receiver: return "receiver";
  }
  return "?";
}

FocusType focusTypeFromName(std::string_view name) {
  if (util::iequals(name, "primary")) return FocusType::Primary;
  if (util::iequals(name, "parent")) return FocusType::Parent;
  if (util::iequals(name, "child")) return FocusType::Child;
  if (util::iequals(name, "sender")) return FocusType::Sender;
  if (util::iequals(name, "receiver")) return FocusType::Receiver;
  throw ModelError("unknown focus type '" + std::string(name) + "'");
}

void PTDataStore::initialize() {
  dbal::createPerfTrackSchema(*conn_);
  // The base types are loaded through the same extension interface users
  // call, exactly as the paper describes for new-database initialization.
  for (const std::string& path : baseHierarchicalTypes()) addResourceType(path);
  for (const std::string& path : baseSingleLevelTypes()) addResourceType(path);
}

void PTDataStore::clearCache() {
  resource_cache_.clear();
  type_cache_.clear();
  metric_cache_.clear();
  tool_cache_.clear();
  exec_cache_.clear();
  app_cache_.clear();
  focus_cache_.clear();
}

std::int64_t PTDataStore::addResourceType(const std::string& type_path) {
  const auto segments = splitTypePath(type_path);
  std::int64_t parent_id = 0;
  std::string prefix;
  std::int64_t id = 0;
  for (const std::string& segment : segments) {
    if (!prefix.empty()) prefix.push_back('/');
    prefix.append(segment);
    auto cached = type_cache_.find(prefix);
    if (cached != type_cache_.end()) {
      id = cached->second;
      parent_id = id;
      continue;
    }
    id = conn_->queryInt("SELECT id FROM focus_framework WHERE type_name = ?",
                         {Value(prefix)});
    if (id == 0) {
      const auto rs = conn_->execPrepared(
          "INSERT INTO focus_framework (type_name, base_name, parent_id) "
          "VALUES (?, ?, ?)",
          {Value(prefix), Value(segment),
           parent_id == 0 ? Value::null() : Value(parent_id)});
      id = rs.last_insert_id;
    }
    type_cache_[prefix] = id;
    parent_id = id;
  }
  return id;
}

bool PTDataStore::hasResourceType(const std::string& type_path) {
  if (type_cache_.contains(type_path)) return true;
  return conn_->queryInt("SELECT id FROM focus_framework WHERE type_name = ?",
                         {Value(type_path)}) != 0;
}

std::vector<std::string> PTDataStore::resourceTypes() {
  const auto rs =
      conn_->exec("SELECT type_name FROM focus_framework ORDER BY type_name");
  std::vector<std::string> out;
  out.reserve(rs.rows.size());
  for (const auto& row : rs.rows) out.push_back(row[0].asText());
  return out;
}

std::vector<std::string> PTDataStore::childTypes(const std::string& type_path) {
  const auto rs =
      type_path.empty()
          ? conn_->exec("SELECT type_name FROM focus_framework WHERE parent_id "
                        "IS NULL ORDER BY type_name")
          : conn_->execPrepared("SELECT type_name FROM focus_framework WHERE "
                                "parent_id = ? ORDER BY type_name",
                                {Value(typeIdFor(type_path))});
  std::vector<std::string> out;
  out.reserve(rs.rows.size());
  for (const auto& row : rs.rows) out.push_back(row[0].asText());
  return out;
}

std::int64_t PTDataStore::typeIdFor(const std::string& type_path) {
  auto cached = type_cache_.find(type_path);
  if (cached != type_cache_.end()) return cached->second;
  const std::int64_t id = conn_->queryInt(
      "SELECT id FROM focus_framework WHERE type_name = ?", {Value(type_path)});
  if (id == 0) throw ModelError("unknown resource type '" + type_path + "'");
  type_cache_[type_path] = id;
  return id;
}

std::int64_t PTDataStore::lookupOrInsertNamed(const std::string& table,
                                              const std::string& name,
                                              const std::string& extra_cols,
                                              std::vector<Value> extra_vals) {
  const std::int64_t existing =
      conn_->queryInt("SELECT id FROM " + table + " WHERE name = ?", {Value(name)});
  if (existing != 0) return existing;
  std::string sql = "INSERT INTO " + table + " (name" + extra_cols + ") VALUES (?";
  for (std::size_t i = 0; i < extra_vals.size(); ++i) sql += ", ?";
  sql += ")";
  std::vector<Value> params;
  params.reserve(1 + extra_vals.size());
  params.emplace_back(name);
  for (Value& v : extra_vals) params.push_back(std::move(v));
  const auto rs = conn_->execPrepared(sql, std::move(params));
  return rs.last_insert_id;
}

std::int64_t PTDataStore::addApplication(const std::string& name) {
  auto cached = app_cache_.find(name);
  if (cached != app_cache_.end()) return cached->second;
  const std::int64_t id = lookupOrInsertNamed("application", name);
  app_cache_[name] = id;
  return id;
}

std::int64_t PTDataStore::addExecution(const std::string& exec_name,
                                       const std::string& app_name) {
  auto cached = exec_cache_.find(exec_name);
  if (cached != exec_cache_.end()) return cached->second;
  const std::int64_t app_id = addApplication(app_name);
  const std::int64_t id =
      lookupOrInsertNamed("execution", exec_name, ", application_id", {Value(app_id)});
  exec_cache_[exec_name] = id;
  return id;
}

std::int64_t PTDataStore::addPerformanceTool(const std::string& name) {
  auto cached = tool_cache_.find(name);
  if (cached != tool_cache_.end()) return cached->second;
  const std::int64_t id = lookupOrInsertNamed("performance_tool", name);
  tool_cache_[name] = id;
  return id;
}

std::int64_t PTDataStore::addMetric(const std::string& name, const std::string& units) {
  auto cached = metric_cache_.find(name);
  if (cached != metric_cache_.end()) return cached->second;
  const std::int64_t existing =
      conn_->queryInt("SELECT id FROM metric WHERE name = ?", {Value(name)});
  std::int64_t id = existing;
  if (id == 0) {
    const auto rs = conn_->execPrepared("INSERT INTO metric (name, units) VALUES (?, ?)",
                                        {Value(name), Value(units)});
    id = rs.last_insert_id;
  }
  metric_cache_[name] = id;
  return id;
}

ResourceId PTDataStore::addResource(const std::string& full_name,
                                    const std::string& type_path) {
  auto cached = resource_cache_.find(full_name);
  if (cached != resource_cache_.end()) return cached->second;

  const auto name_segments = splitResourceName(full_name);
  const auto type_segments = splitTypePath(type_path);
  if (name_segments.size() > type_segments.size()) {
    throw ModelError("resource '" + full_name + "' is deeper than its type path '" +
                     type_path + "'");
  }
  // Ensure the type path exists (extension interface tolerates re-adds).
  addResourceType(type_path);

  ResourceId parent_id = 0;
  std::vector<ResourceId> ancestors;
  std::string prefix;
  std::string type_prefix;
  ResourceId id = 0;
  for (std::size_t depth = 0; depth < name_segments.size(); ++depth) {
    prefix.push_back('/');
    prefix.append(name_segments[depth]);
    if (depth > 0) type_prefix.push_back('/');
    type_prefix.append(type_segments[depth]);

    auto hit = resource_cache_.find(prefix);
    if (hit != resource_cache_.end()) {
      id = hit->second;
    } else {
      id = conn_->queryInt("SELECT id FROM resource_item WHERE full_name = ?",
                           {Value(prefix)});
      if (id == 0) {
        const std::int64_t type_id = typeIdFor(type_prefix);
        const auto rs = conn_->execPrepared(
            "INSERT INTO resource_item (name, full_name, parent_id, "
            "focus_framework_id) VALUES (?, ?, ?, ?)",
            {Value(name_segments[depth]), Value(prefix),
             parent_id == 0 ? Value::null() : Value(parent_id), Value(type_id)});
        id = rs.last_insert_id;
        // Maintain both closure tables (paper: added "for performance
        // reasons" to avoid parent-chain traversal).
        for (ResourceId anc : ancestors) {
          conn_->execPrepared(
              "INSERT INTO resource_has_ancestor (resource_id, ancestor_id) "
              "VALUES (?, ?)",
              {Value(id), Value(anc)});
          conn_->execPrepared(
              "INSERT INTO resource_has_descendant (resource_id, descendant_id) "
              "VALUES (?, ?)",
              {Value(anc), Value(id)});
        }
      }
      resource_cache_[prefix] = id;
    }
    ancestors.push_back(id);
    parent_id = id;
  }
  return id;
}

void PTDataStore::addResourceAttribute(const std::string& resource_full_name,
                                       const std::string& attr_name,
                                       const std::string& value,
                                       const std::string& attr_type) {
  const auto rid = findResource(resource_full_name);
  if (!rid) throw ModelError("addResourceAttribute: unknown resource " + resource_full_name);
  conn_->execPrepared(
      "INSERT INTO resource_attribute (resource_id, name, value, attr_type) "
      "VALUES (?, ?, ?, ?)",
      {Value(*rid), Value(attr_name), Value(value), Value(attr_type)});
}

void PTDataStore::addResourceConstraint(const std::string& resource1_full_name,
                                        const std::string& resource2_full_name) {
  const auto r1 = findResource(resource1_full_name);
  const auto r2 = findResource(resource2_full_name);
  if (!r1 || !r2) {
    throw ModelError("addResourceConstraint: unknown resource in (" +
                     resource1_full_name + ", " + resource2_full_name + ")");
  }
  conn_->execPrepared(
      "INSERT INTO resource_constraint (resource_id1, resource_id2) VALUES (?, ?)",
      {Value(*r1), Value(*r2)});
  // A constraint is "an attribute of type resource" (paper Figure 6); also
  // record it in resource_attribute so attribute views show it.
  conn_->execPrepared(
      "INSERT INTO resource_attribute (resource_id, name, value, attr_type) "
      "VALUES (?, ?, ?, 'resource')",
      {Value(*r1), Value(typeBaseName(resourceInfo(*r2).type_path)),
       Value(resource2_full_name)});
}

std::int64_t PTDataStore::focusFor(std::int64_t execution_id, const ResourceSetSpec& spec) {
  // Canonical signature: sorted resource ids + focus type. Foci are shared
  // between results with identical contexts (paper: "a single context can
  // apply to multiple performance results").
  std::vector<ResourceId> ids;
  ids.reserve(spec.resource_names.size());
  for (const std::string& name : spec.resource_names) {
    const auto rid = findResource(name);
    if (!rid) throw ModelError("performance result names unknown resource " + name);
    ids.push_back(*rid);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  std::string signature(focusTypeName(spec.set_type));
  for (ResourceId id : ids) {
    signature.push_back(':');
    signature.append(std::to_string(id));
  }
  const std::string cache_key = std::to_string(execution_id) + "|" + signature;
  auto cached = focus_cache_.find(cache_key);
  if (cached != focus_cache_.end()) return cached->second;

  std::int64_t focus_id = conn_->queryInt(
      "SELECT id FROM focus WHERE signature = ? AND execution_id = ?",
      {Value(signature), Value(execution_id)});
  if (focus_id == 0) {
    const auto rs = conn_->execPrepared(
        "INSERT INTO focus (execution_id, signature) VALUES (?, ?)",
        {Value(execution_id), Value(signature)});
    focus_id = rs.last_insert_id;
    for (ResourceId id : ids) {
      conn_->execPrepared(
          "INSERT INTO focus_has_resource (focus_id, resource_id, focus_type) "
          "VALUES (?, ?, ?)",
          {Value(focus_id), Value(id), Value(std::string(focusTypeName(spec.set_type)))});
    }
  }
  focus_cache_[cache_key] = focus_id;
  return focus_id;
}

std::int64_t PTDataStore::addPerformanceResult(
    const std::string& exec_name, const std::vector<ResourceSetSpec>& resource_sets,
    const std::string& tool_name, const std::string& metric_name, double value,
    const std::string& units, double start_time, double end_time) {
  if (resource_sets.empty()) {
    throw ModelError("performance result requires at least one resource set");
  }
  auto exec_it = exec_cache_.find(exec_name);
  std::int64_t exec_id = 0;
  if (exec_it != exec_cache_.end()) {
    exec_id = exec_it->second;
  } else {
    exec_id = conn_->queryInt("SELECT id FROM execution WHERE name = ?",
                              {Value(exec_name)});
    if (exec_id == 0) throw ModelError("unknown execution '" + exec_name + "'");
    exec_cache_[exec_name] = exec_id;
  }
  const std::int64_t tool_id = addPerformanceTool(tool_name);
  const std::int64_t metric_id = addMetric(metric_name, units);
  const auto rs = conn_->execPrepared(
      "INSERT INTO performance_result (execution_id, metric_id, performance_tool_id, "
      "value, units, start_time, end_time) VALUES (?, ?, ?, ?, ?, ?, ?)",
      {Value(exec_id), Value(metric_id), Value(tool_id), Value(value), Value(units),
       Value(start_time), Value(end_time)});
  const std::int64_t result_id = rs.last_insert_id;
  for (const ResourceSetSpec& spec : resource_sets) {
    const std::int64_t focus_id = focusFor(exec_id, spec);
    conn_->execPrepared(
        "INSERT INTO performance_result_has_focus (result_id, focus_id) VALUES (?, ?)",
        {Value(result_id), Value(focus_id)});
  }
  return result_id;
}

std::int64_t PTDataStore::addHistogramResult(
    const std::string& exec_name, const std::vector<ResourceSetSpec>& resource_sets,
    const std::string& tool_name, const std::string& metric_name,
    const std::vector<double>& bins, double bin_width, const std::string& units) {
  if (bin_width <= 0.0) throw ModelError("histogram result requires bin_width > 0");
  double total = 0.0;
  std::size_t recorded = 0;
  for (double v : bins) {
    if (!std::isnan(v)) {
      total += v;
      ++recorded;
    }
  }
  if (recorded == 0) {
    throw ModelError("histogram result must record at least one non-NaN bin");
  }
  const std::int64_t result_id = addPerformanceResult(
      exec_name, resource_sets, tool_name, metric_name, total, units, 0.0,
      bin_width * static_cast<double>(bins.size()));
  conn_->execPrepared(
      "INSERT INTO performance_result_histogram (result_id, num_bins, bin_width) "
      "VALUES (?, ?, ?)",
      {Value(result_id), Value(static_cast<std::int64_t>(bins.size())),
       Value(bin_width)});
  for (std::size_t bin = 0; bin < bins.size(); ++bin) {
    if (std::isnan(bins[bin])) continue;
    conn_->execPrepared(
        "INSERT INTO performance_result_bin (result_id, bin, value) VALUES (?, ?, ?)",
        {Value(result_id), Value(static_cast<std::int64_t>(bin)), Value(bins[bin])});
  }
  return result_id;
}

std::optional<PTDataStore::Histogram> PTDataStore::getHistogram(std::int64_t result_id) {
  const auto desc = conn_->execPrepared(
      "SELECT num_bins, bin_width FROM performance_result_histogram WHERE "
      "result_id = ?",
      {Value(result_id)});
  if (desc.rows.empty()) return std::nullopt;
  Histogram hist;
  hist.num_bins = static_cast<int>(desc.rows[0][0].asInt());
  hist.bin_width = desc.rows[0][1].asReal();
  const auto bins = conn_->execPrepared(
      "SELECT bin, value FROM performance_result_bin WHERE result_id = ? ORDER BY bin",
      {Value(result_id)});
  hist.bins.reserve(bins.rows.size());
  for (const auto& row : bins.rows) {
    hist.bins.emplace_back(static_cast<int>(row[0].asInt()), row[1].asReal());
  }
  return hist;
}

std::optional<ResourceId> PTDataStore::findResource(const std::string& full_name) {
  auto cached = resource_cache_.find(full_name);
  if (cached != resource_cache_.end()) return cached->second;
  const std::int64_t id = conn_->queryInt(
      "SELECT id FROM resource_item WHERE full_name = ?", {Value(full_name)});
  if (id == 0) return std::nullopt;
  resource_cache_[full_name] = id;
  return id;
}

namespace {

ResourceInfo rowToResource(const minidb::Row& row) {
  ResourceInfo info;
  info.id = row.at(0).asInt();
  info.name = row.at(1).asText();
  info.full_name = row.at(2).asText();
  info.parent_id = row.at(3).isNull() ? 0 : row.at(3).asInt();
  info.type_path = row.at(4).asText();
  return info;
}

constexpr const char* kResourceSelect =
    "SELECT r.id, r.name, r.full_name, r.parent_id, f.type_name "
    "FROM resource_item r JOIN focus_framework f ON r.focus_framework_id = f.id ";

}  // namespace

ResourceInfo PTDataStore::resourceInfo(ResourceId id) {
  const auto rs = conn_->execPrepared(std::string(kResourceSelect) + "WHERE r.id = ?",
                                      {Value(id)});
  if (rs.rows.empty()) throw ModelError("no resource with id " + std::to_string(id));
  return rowToResource(rs.rows[0]);
}

std::vector<ResourceInfo> PTDataStore::resourcesOfType(const std::string& type_path) {
  auto cur = conn_->query(
      std::string(kResourceSelect) + "WHERE f.type_name = ? ORDER BY r.full_name",
      {Value(type_path)});
  std::vector<ResourceInfo> out;
  minidb::Row row;
  while (cur.next(row)) out.push_back(rowToResource(row));
  return out;
}

std::vector<ResourceInfo> PTDataStore::resourcesNamed(const std::string& base_name) {
  auto cur = conn_->query(
      std::string(kResourceSelect) + "WHERE r.name = ? ORDER BY r.full_name",
      {Value(base_name)});
  std::vector<ResourceInfo> out;
  minidb::Row row;
  while (cur.next(row)) out.push_back(rowToResource(row));
  return out;
}

std::vector<ResourceInfo> PTDataStore::childrenOf(ResourceId id) {
  auto cur = conn_->query(
      std::string(kResourceSelect) + "WHERE r.parent_id = ? ORDER BY r.full_name",
      {Value(id)});
  std::vector<ResourceInfo> out;
  minidb::Row row;
  while (cur.next(row)) out.push_back(rowToResource(row));
  return out;
}

std::vector<ResourceInfo> PTDataStore::topLevelOfType(const std::string& root_type) {
  auto cur = conn_->query(
      std::string(kResourceSelect) +
          "WHERE f.type_name = ? AND r.parent_id IS NULL ORDER BY r.full_name",
      {Value(root_type)});
  std::vector<ResourceInfo> out;
  minidb::Row row;
  while (cur.next(row)) out.push_back(rowToResource(row));
  return out;
}

std::vector<AttributeInfo> PTDataStore::attributesOf(ResourceId id) {
  auto cur = conn_->query(
      "SELECT name, value, attr_type FROM resource_attribute WHERE resource_id = ? "
      "ORDER BY name",
      {Value(id)});
  std::vector<AttributeInfo> out;
  minidb::Row row;
  while (cur.next(row)) {
    out.push_back({row[0].asText(), row[1].asText(), row[2].asText()});
  }
  return out;
}

std::vector<ResourceId> PTDataStore::ancestorsOf(ResourceId id) {
  auto cur = conn_->query(
      "SELECT ancestor_id FROM resource_has_ancestor WHERE resource_id = ?",
      {Value(id)});
  std::vector<ResourceId> out;
  minidb::Row row;
  while (cur.next(row)) out.push_back(row[0].asInt());
  return out;
}

std::vector<ResourceId> PTDataStore::descendantsOf(ResourceId id) {
  auto cur = conn_->query(
      "SELECT descendant_id FROM resource_has_descendant WHERE resource_id = ?",
      {Value(id)});
  std::vector<ResourceId> out;
  minidb::Row row;
  while (cur.next(row)) out.push_back(row[0].asInt());
  return out;
}

std::vector<ResourceId> PTDataStore::constraintsOf(ResourceId id) {
  auto cur = conn_->query(
      "SELECT resource_id2 FROM resource_constraint WHERE resource_id1 = ?",
      {Value(id)});
  std::vector<ResourceId> out;
  minidb::Row row;
  while (cur.next(row)) out.push_back(row[0].asInt());
  return out;
}

std::vector<std::string> PTDataStore::executions() {
  auto cur = conn_->query("SELECT name FROM execution ORDER BY name");
  std::vector<std::string> out;
  minidb::Row row;
  while (cur.next(row)) out.push_back(row[0].asText());
  return out;
}

std::vector<std::string> PTDataStore::metrics() {
  auto cur = conn_->query("SELECT name FROM metric ORDER BY name");
  std::vector<std::string> out;
  minidb::Row row;
  while (cur.next(row)) out.push_back(row[0].asText());
  return out;
}

PerfResultRecord PTDataStore::getResult(std::int64_t result_id) {
  const auto rs = conn_->execPrepared(
      "SELECT pr.id, e.name, a.name, m.name, t.name, pr.value, pr.units, "
      "pr.start_time, pr.end_time "
      "FROM performance_result pr "
      "JOIN execution e ON pr.execution_id = e.id "
      "JOIN application a ON e.application_id = a.id "
      "JOIN metric m ON pr.metric_id = m.id "
      "JOIN performance_tool t ON pr.performance_tool_id = t.id "
      "WHERE pr.id = ?",
      {Value(result_id)});
  if (rs.rows.empty()) {
    throw ModelError("no performance result with id " + std::to_string(result_id));
  }
  const auto& row = rs.rows[0];
  PerfResultRecord rec;
  rec.id = row[0].asInt();
  rec.execution = row[1].asText();
  rec.application = row[2].asText();
  rec.metric = row[3].asText();
  rec.tool = row[4].asText();
  rec.value = row[5].asReal();
  rec.units = row[6].asText();
  rec.start_time = row[7].asReal();
  rec.end_time = row[8].asReal();
  const auto foci = conn_->execPrepared(
      "SELECT focus_id FROM performance_result_has_focus WHERE result_id = ?",
      {Value(result_id)});
  for (const auto& focus_row : foci.rows) {
    const auto members = conn_->execPrepared(
        "SELECT resource_id FROM focus_has_resource WHERE focus_id = ?",
        {Value(focus_row[0].asInt())});
    std::vector<ResourceId> context;
    context.reserve(members.rows.size());
    for (const auto& m : members.rows) context.push_back(m[0].asInt());
    rec.contexts.push_back(std::move(context));
  }
  return rec;
}

std::vector<std::int64_t> PTDataStore::resultsForExecution(const std::string& exec_name) {
  auto cur = conn_->query(
      "SELECT pr.id FROM performance_result pr JOIN execution e "
      "ON pr.execution_id = e.id WHERE e.name = ? ORDER BY pr.id",
      {Value(exec_name)});
  std::vector<std::int64_t> out;
  minidb::Row row;
  while (cur.next(row)) out.push_back(row[0].asInt());
  return out;
}

void PTDataStore::deleteExecution(const std::string& exec_name, bool with_resources) {
  const std::int64_t exec_id =
      conn_->queryInt("SELECT id FROM execution WHERE name = ?", {Value(exec_name)});
  if (exec_id == 0) throw ModelError("deleteExecution: unknown execution " + exec_name);
  const Value eid(exec_id);

  // Results, their histogram payloads, and their context links. The
  // subqueries keep every statement self-contained (no huge IN lists).
  conn_->execPrepared("DELETE FROM performance_result_bin WHERE result_id IN "
                      "(SELECT id FROM performance_result WHERE execution_id = ?)",
                      {eid});
  conn_->execPrepared("DELETE FROM performance_result_histogram WHERE result_id IN "
                      "(SELECT id FROM performance_result WHERE execution_id = ?)",
                      {eid});
  conn_->execPrepared("DELETE FROM performance_result_has_focus WHERE result_id IN "
                      "(SELECT id FROM performance_result WHERE execution_id = ?)",
                      {eid});
  conn_->execPrepared("DELETE FROM performance_result WHERE execution_id = ?", {eid});
  conn_->execPrepared("DELETE FROM focus_has_resource WHERE focus_id IN "
                      "(SELECT id FROM focus WHERE execution_id = ?)",
                      {eid});
  conn_->execPrepared("DELETE FROM focus WHERE execution_id = ?", {eid});

  if (with_resources) {
    // Per-execution subtrees follow the collector/converter naming
    // conventions; shared resources never use these roots.
    const std::string roots[] = {
        "/" + exec_name,          "/build-" + exec_name,       "/env-" + exec_name,
        "/" + exec_name + "-time", "/submission-" + exec_name,
        "/syncObjects-" + exec_name,
    };
    std::vector<ResourceId> doomed;
    for (const std::string& root : roots) {
      const auto id = findResource(root);
      if (!id) continue;
      doomed.push_back(*id);
      const auto subtree = descendantsOf(*id);
      doomed.insert(doomed.end(), subtree.begin(), subtree.end());
    }
    for (ResourceId id : doomed) {
      const Value rid(id);
      conn_->execPrepared("DELETE FROM resource_attribute WHERE resource_id = ?",
                          {rid});
      conn_->execPrepared(
          "DELETE FROM resource_constraint WHERE resource_id1 = ? OR resource_id2 = ?",
          {rid, rid});
      conn_->execPrepared(
          "DELETE FROM resource_has_ancestor WHERE resource_id = ? OR ancestor_id = ?",
          {rid, rid});
      conn_->execPrepared(
          "DELETE FROM resource_has_descendant WHERE resource_id = ? "
          "OR descendant_id = ?",
          {rid, rid});
      conn_->execPrepared("DELETE FROM resource_item WHERE id = ?", {rid});
    }
  }
  conn_->execPrepared("DELETE FROM execution WHERE id = ?", {eid});
  clearCache();
}

StoreStats PTDataStore::stats() {
  StoreStats s;
  s.resource_types = conn_->queryInt("SELECT COUNT(*) FROM focus_framework");
  s.resources = conn_->queryInt("SELECT COUNT(*) FROM resource_item");
  s.attributes = conn_->queryInt("SELECT COUNT(*) FROM resource_attribute");
  s.metrics = conn_->queryInt("SELECT COUNT(*) FROM metric");
  s.executions = conn_->queryInt("SELECT COUNT(*) FROM execution");
  s.performance_results = conn_->queryInt("SELECT COUNT(*) FROM performance_result");
  s.foci = conn_->queryInt("SELECT COUNT(*) FROM focus");
  s.size_bytes = conn_->sizeBytes();
  return s;
}

}  // namespace perftrack::core
