// PerfTrack core: PTDataStore — the paper's data-store interface (§3.3).
//
// This class is the C++ analogue of the prototype's Python PTdataStore: the
// single entry point for initializing a store, extending the type system,
// defining resources/attributes/constraints, recording performance results
// (with one or more contexts), and looking everything back up. All state
// lives in the relational schema of dbal/schema.h; PTDataStore keeps only a
// name->id cache for load speed (invalidated by clearCache()).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dbal/connection.h"

namespace perftrack::core {

using ResourceId = std::int64_t;

/// Everything known about one resource row.
struct ResourceInfo {
  ResourceId id = 0;
  std::string name;       // base name (last path segment)
  std::string full_name;  // unique full path
  ResourceId parent_id = 0;  // 0 = top level
  std::string type_path;  // e.g. grid/machine/partition
};

/// One resource attribute.
struct AttributeInfo {
  std::string name;
  std::string value;
  std::string attr_type;  // "string" or "resource"
};

/// Focus (context) membership role, paper §3.1.
enum class FocusType { Primary, Parent, Child, Sender, Receiver };

std::string_view focusTypeName(FocusType type);
FocusType focusTypeFromName(std::string_view name);

/// One resource set of a performance-result context.
struct ResourceSetSpec {
  std::vector<std::string> resource_names;  // full resource names
  FocusType set_type = FocusType::Primary;
};

/// One retrieved performance result with its context(s).
struct PerfResultRecord {
  std::int64_t id = 0;
  std::string execution;
  std::string application;
  std::string metric;
  std::string tool;
  double value = 0.0;
  std::string units;
  double start_time = -1.0;
  double end_time = -1.0;
  std::vector<std::vector<ResourceId>> contexts;  // one vector per focus
};

/// Aggregate store statistics (drives the Table 1 reproduction).
struct StoreStats {
  std::int64_t resource_types = 0;
  std::int64_t resources = 0;
  std::int64_t attributes = 0;
  std::int64_t metrics = 0;
  std::int64_t executions = 0;
  std::int64_t performance_results = 0;
  std::int64_t foci = 0;
  std::uint64_t size_bytes = 0;
};

class PTDataStore {
 public:
  /// Binds to an open connection. Call initialize() on a fresh store.
  explicit PTDataStore(dbal::Connection& conn) : conn_(&conn) {}

  /// Creates the schema (idempotent) and loads the base resource types of
  /// Figure 2 through the type extension interface.
  void initialize();

  dbal::Connection& connection() { return *conn_; }

  // --- type extension interface (paper §2.1) -------------------------------
  /// Registers a type path, creating any missing ancestors. Returns the id
  /// of the leaf type. Registering an existing path is a no-op.
  std::int64_t addResourceType(const std::string& type_path);
  bool hasResourceType(const std::string& type_path);
  /// All registered type paths, sorted.
  std::vector<std::string> resourceTypes();
  /// Direct child type paths of `type_path` ("" = the roots).
  std::vector<std::string> childTypes(const std::string& type_path);

  // --- definitions ----------------------------------------------------------
  std::int64_t addApplication(const std::string& name);
  std::int64_t addExecution(const std::string& exec_name, const std::string& app_name);
  std::int64_t addPerformanceTool(const std::string& name);
  std::int64_t addMetric(const std::string& name, const std::string& units = "");

  /// Adds a resource with the given full name and type path. Missing
  /// ancestor resources are created automatically with type-path prefixes.
  /// The resource name depth must not exceed the type path depth. Re-adding
  /// an existing resource returns its id. Closure tables are maintained.
  ResourceId addResource(const std::string& full_name, const std::string& type_path);

  void addResourceAttribute(const std::string& resource_full_name,
                            const std::string& attr_name, const std::string& value,
                            const std::string& attr_type = "string");

  /// Records that resource2 is an attribute of resource1 (paper §2.1:
  /// attributes that are themselves resources).
  void addResourceConstraint(const std::string& resource1_full_name,
                             const std::string& resource2_full_name);

  /// Records a performance result with one or more contexts (§4.2 allows
  /// multiple resource sets per result). Returns the result id.
  std::int64_t addPerformanceResult(const std::string& exec_name,
                                    const std::vector<ResourceSetSpec>& resource_sets,
                                    const std::string& tool_name,
                                    const std::string& metric_name, double value,
                                    const std::string& units = "",
                                    double start_time = -1.0, double end_time = -1.0);

  /// Records a histogram-valued ("complex", §6 future work) result: ONE
  /// performance result carrying every bin of a time-series measurement,
  /// instead of one result per bin. Missing bins (instrumentation not yet
  /// inserted; 'nan' in Paradyn exports) are passed as NaN and not stored.
  /// The scalar `value` of the result is the sum over recorded bins.
  std::int64_t addHistogramResult(const std::string& exec_name,
                                  const std::vector<ResourceSetSpec>& resource_sets,
                                  const std::string& tool_name,
                                  const std::string& metric_name,
                                  const std::vector<double>& bins, double bin_width,
                                  const std::string& units = "");

  /// A retrieved histogram: recorded (bin index, value) pairs plus geometry.
  struct Histogram {
    int num_bins = 0;
    double bin_width = 0.0;
    std::vector<std::pair<int, double>> bins;  // sorted by bin index
  };

  /// Returns the histogram attached to a result, or nullopt for plain
  /// scalar results.
  std::optional<Histogram> getHistogram(std::int64_t result_id);

  // --- lookups ---------------------------------------------------------------
  std::optional<ResourceId> findResource(const std::string& full_name);
  ResourceInfo resourceInfo(ResourceId id);
  std::vector<ResourceInfo> resourcesOfType(const std::string& type_path);
  /// Resources with the given base name (the paper's "batch on any machine"
  /// shorthand).
  std::vector<ResourceInfo> resourcesNamed(const std::string& base_name);
  std::vector<ResourceInfo> childrenOf(ResourceId id);
  std::vector<ResourceInfo> topLevelOfType(const std::string& root_type);
  std::vector<AttributeInfo> attributesOf(ResourceId id);
  std::vector<ResourceId> ancestorsOf(ResourceId id);
  std::vector<ResourceId> descendantsOf(ResourceId id);
  /// Resources recorded as resource-valued attributes of `id`.
  std::vector<ResourceId> constraintsOf(ResourceId id);

  std::vector<std::string> executions();
  std::vector<std::string> metrics();
  PerfResultRecord getResult(std::int64_t result_id);
  /// All result ids for an execution.
  std::vector<std::int64_t> resultsForExecution(const std::string& exec_name);

  StoreStats stats();

  /// Removes an execution and everything owned by it: its performance
  /// results (with focus links, histogram rows, and foci), the execution
  /// record, and — when `with_resources` — the per-execution resource
  /// subtrees created by the collectors and converters (roots "/<exec>",
  /// "/build-<exec>", "/env-<exec>", "/<exec>-time", "/submission-<exec>",
  /// "/syncObjects-<exec>"), including their attributes, constraints, and
  /// closure rows. Shared resources (machines, build functions) are kept.
  /// Call VACUUM afterwards to reclaim the pages. Throws when unknown.
  void deleteExecution(const std::string& exec_name, bool with_resources = true);

  /// Drops the name->id caches (required after rollback or external writes).
  void clearCache();

 private:
  /// SELECT-by-name then INSERT on miss, both through bound parameters;
  /// `extra_cols` is the literal ", col, ..." tail of the column list and
  /// `extra_vals` its values, bound after `name`.
  std::int64_t lookupOrInsertNamed(const std::string& table, const std::string& name,
                                   const std::string& extra_cols = "",
                                   std::vector<minidb::Value> extra_vals = {});
  std::int64_t typeIdFor(const std::string& type_path);
  std::int64_t focusFor(std::int64_t execution_id, const ResourceSetSpec& spec);

  dbal::Connection* conn_;
  std::unordered_map<std::string, ResourceId> resource_cache_;
  std::unordered_map<std::string, std::int64_t> type_cache_;
  std::unordered_map<std::string, std::int64_t> metric_cache_;
  std::unordered_map<std::string, std::int64_t> tool_cache_;
  std::unordered_map<std::string, std::int64_t> exec_cache_;
  std::unordered_map<std::string, std::int64_t> app_cache_;
  std::unordered_map<std::string, std::int64_t> focus_cache_;  // keyed by exec:signature
};

}  // namespace perftrack::core
