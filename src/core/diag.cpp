#include "core/diag.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/strings.h"

namespace perftrack::core::diag {

namespace {

using minidb::Value;
using minidb::sql::ResultSet;

/// Instrumentation sites, resolved once (registry lookups are cold-path).
struct DiagMetrics {
  obs::Counter* diffs;
  obs::Counter* aligned;
  obs::Counter* divergences;
  obs::Histogram* diff_ms;
};

DiagMetrics& metrics() {
  static DiagMetrics m{
      &obs::Registry::global().counter("pt_diag_diffs_total"),
      &obs::Registry::global().counter("pt_diag_pairs_aligned_total"),
      &obs::Registry::global().counter("pt_diag_divergences_total"),
      &obs::Registry::global().histogram("pt_diag_diff_ms"),
  };
  return m;
}

std::int64_t executionId(minidb::sql::Engine& engine, const std::string& name) {
  auto stmt = engine.prepare("SELECT id FROM execution WHERE name = ?");
  ResultSet rs = stmt.execute({Value(name)});
  if (rs.rows.empty()) throw util::ModelError("no such execution: " + name);
  return rs.rows[0][0].asInt();
}

/// Chunk size for inlined integer IN-lists. Large enough to amortize the
/// per-statement cost, small enough that the planner's posting-probe path
/// (invidx) stays in its sweet spot.
constexpr std::size_t kInChunk = 256;

/// id -> full_name for every resource in `ids`, fetched in chunked IN-list
/// probes on the resource_item primary key.
std::unordered_map<std::int64_t, std::string> fetchResourceNames(
    minidb::sql::Engine& engine, const std::vector<std::int64_t>& ids) {
  std::unordered_map<std::int64_t, std::string> out;
  out.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); i += kInChunk) {
    const std::size_t end = std::min(ids.size(), i + kInChunk);
    std::string sql = "SELECT id, full_name FROM resource_item WHERE id IN (";
    for (std::size_t j = i; j < end; ++j) {
      if (j > i) sql += ',';
      sql += std::to_string(ids[j]);
    }
    sql += ')';
    ResultSet rs = engine.exec(sql);
    for (const auto& row : rs.rows) out.emplace(row[0].asInt(), row[1].asText());
  }
  return out;
}

struct Side {
  std::uint64_t results = 0;
  /// (metric, canonical context) -> value; several samples of one metric in
  /// one context keep the first (lowest result id), matching
  /// analyze::compareExecutions.
  std::map<std::pair<std::string, std::string>, double> values;
};

Side collectSide(minidb::sql::Engine& engine, const std::string& exec) {
  const std::int64_t exec_id = executionId(engine, exec);

  // Every query below starts from an indexed equality on execution_id and
  // joins through indexed equality conjuncts (pr_by_exec, prhf_by_result,
  // focus_by_exec, fhr_by_focus), so cost scales with this execution's data,
  // not the store.
  auto results_stmt = engine.prepare(
      "SELECT pr.id, m.name, pr.value FROM performance_result pr, metric m "
      "WHERE pr.execution_id = ? AND m.id = pr.metric_id ORDER BY pr.id");
  ResultSet results = results_stmt.execute({Value(exec_id)});

  auto foci_stmt = engine.prepare(
      "SELECT prhf.result_id, prhf.focus_id "
      "FROM performance_result pr, performance_result_has_focus prhf "
      "WHERE pr.execution_id = ? AND prhf.result_id = pr.id");
  std::unordered_map<std::int64_t, std::vector<std::int64_t>> result_foci;
  for (const auto& row : foci_stmt.execute({Value(exec_id)}).rows) {
    result_foci[row[0].asInt()].push_back(row[1].asInt());
  }

  auto fhr_stmt = engine.prepare(
      "SELECT fhr.focus_id, fhr.resource_id "
      "FROM focus f, focus_has_resource fhr "
      "WHERE f.execution_id = ? AND fhr.focus_id = f.id");
  std::unordered_map<std::int64_t, std::vector<std::int64_t>> focus_resources;
  std::set<std::int64_t> resource_ids;
  for (const auto& row : fhr_stmt.execute({Value(exec_id)}).rows) {
    const std::int64_t rid = row[1].asInt();
    focus_resources[row[0].asInt()].push_back(rid);
    resource_ids.insert(rid);
  }

  const auto names = fetchResourceNames(
      engine, {resource_ids.begin(), resource_ids.end()});

  // Canonicalize each distinct resource once, not once per result.
  std::unordered_map<std::int64_t, std::string> canonical;
  canonical.reserve(names.size());
  for (const auto& [id, full] : names) {
    canonical.emplace(id, canonicalResourceName(exec, full));
  }

  Side side;
  side.results = results.rows.size();
  for (const auto& row : results.rows) {
    const std::int64_t result_id = row[0].asInt();
    std::set<std::string> context_names;
    const auto foci_it = result_foci.find(result_id);
    if (foci_it != result_foci.end()) {
      for (std::int64_t focus_id : foci_it->second) {
        const auto res_it = focus_resources.find(focus_id);
        if (res_it == focus_resources.end()) continue;
        for (std::int64_t rid : res_it->second) {
          const auto name_it = canonical.find(rid);
          if (name_it != canonical.end()) context_names.insert(name_it->second);
        }
      }
    }
    std::string context =
        util::join({context_names.begin(), context_names.end()}, "|");
    side.values.try_emplace({row[1].asText(), std::move(context)},
                            row[2].asReal());
  }
  return side;
}

}  // namespace

std::string canonicalResourceName(const std::string& execution,
                                  std::string full_name) {
  if (execution.empty() || full_name.size() < 2) return full_name;
  // Canonicalize the leading segment when it embeds the execution name
  // (e.g. /irs-frost-np8-s1/p0, /build-irs-frost-np8-s1, /env-...).
  const auto slash = full_name.find('/', 1);
  const std::string head = slash == std::string::npos
                               ? full_name.substr(1)
                               : full_name.substr(1, slash - 1);
  const auto pos = head.find(execution);
  if (pos == std::string::npos) return full_name;
  const std::string tail =
      slash == std::string::npos ? "" : full_name.substr(slash);
  // Keep any collector prefix ("build-", "env-") so different hierarchies
  // stay distinct after canonicalization.
  std::string prefix = head;
  prefix.replace(pos, execution.size(), "$EXEC");
  return "/" + prefix + tail;
}

const std::vector<std::string>& Report::columns() {
  static const std::vector<std::string> kColumns = {
      "rank",  "metric", "context", "value_a",
      "value_b", "delta",  "ratio",   "contribution_pct"};
  return kColumns;
}

std::vector<minidb::Row> Report::toRows() const {
  std::vector<minidb::Row> out;
  out.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    minidb::Row row;
    row.reserve(8);
    row.emplace_back(static_cast<std::int64_t>(i + 1));
    row.emplace_back(r.metric);
    row.emplace_back(r.context);
    row.emplace_back(r.value_a);
    row.emplace_back(r.value_b);
    row.emplace_back(r.delta());
    row.emplace_back(r.has_ratio ? Value(r.ratio) : Value::null());
    row.emplace_back(r.contribution_pct);
    out.push_back(std::move(row));
  }
  return out;
}

std::string Report::toText() const {
  std::ostringstream out;
  out << "diff: " << request.exec_a << " -> " << request.exec_b << "\n"
      << "  results (A / B):   " << stats.results_a << " / " << stats.results_b
      << "\n"
      << "  aligned pairs:     " << stats.aligned << "\n"
      << "  only in A:         " << stats.only_a << "\n"
      << "  only in B:         " << stats.only_b << "\n"
      << "  zero baselines:    " << stats.zero_baseline << "\n"
      << "  divergent:         " << stats.divergent << " (|ratio-1| > "
      << util::formatReal(request.ratio_threshold) << ", |delta| >= "
      << util::formatReal(request.abs_threshold) << ")\n";
  if (rows.empty()) {
    out << "  ranked explanations: (none)\n";
    return out.str();
  }
  out << "  ranked explanations";
  if (rows.size() < stats.divergent) {
    out << " (top " << rows.size() << " of " << stats.divergent << ")";
  }
  out << ":\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    " << (i + 1) << ". " << r.metric << " [" << r.context << "]  "
        << util::formatReal(r.value_a) << " -> " << util::formatReal(r.value_b);
    if (r.has_ratio) {
      out << "  (x" << util::formatReal(r.ratio);
    } else {
      out << "  (zero baseline";
    }
    out << ", " << util::formatReal(r.contribution_pct) << "% of "
        << r.metric << " change)\n";
  }
  return out.str();
}

Report diagnose(minidb::sql::Engine& engine, const Request& request) {
  const auto start = std::chrono::steady_clock::now();
  Report report;
  report.request = request;

  const Side a = collectSide(engine, request.exec_a);
  const Side b = collectSide(engine, request.exec_b);
  report.stats.results_a = a.results;
  report.stats.results_b = b.results;

  // Alignment pass: walk A's keys against B's, tallying contribution
  // denominators per metric as we go.
  struct Aligned {
    const std::pair<std::string, std::string>* key;
    double value_a;
    double value_b;
  };
  std::vector<Aligned> aligned;
  std::map<std::string, double> metric_total_delta;  // sum of |delta|
  for (const auto& [key, value_a] : a.values) {
    const auto it = b.values.find(key);
    if (it == b.values.end()) {
      ++report.stats.only_a;
      continue;
    }
    aligned.push_back({&key, value_a, it->second});
    metric_total_delta[key.first] += std::abs(it->second - value_a);
    if (value_a == 0.0) ++report.stats.zero_baseline;
  }
  for (const auto& [key, value_b] : b.values) {
    if (!a.values.contains(key)) ++report.stats.only_b;
  }
  report.stats.aligned = aligned.size();

  for (const Aligned& pair : aligned) {
    Row row;
    row.metric = pair.key->first;
    row.context = pair.key->second;
    row.value_a = pair.value_a;
    row.value_b = pair.value_b;
    row.has_ratio = pair.value_a != 0.0;
    if (row.has_ratio) row.ratio = pair.value_b / pair.value_a;
    const double delta = std::abs(row.delta());
    // Zero-baseline guard: without a ratio, any change at all is divergent
    // (the value appeared from nothing); with one, apply the threshold.
    const bool past_ratio = row.has_ratio
                                ? std::abs(row.ratio - 1.0) > request.ratio_threshold
                                : delta != 0.0;
    if (!past_ratio || delta < request.abs_threshold) continue;
    const double total = metric_total_delta[row.metric];
    row.contribution_pct = total > 0.0 ? delta / total * 100.0 : 0.0;
    report.rows.push_back(std::move(row));
  }
  report.stats.divergent = report.rows.size();

  // Rank: contribution first, then raw |delta|, then a deterministic
  // name/context tiebreak so local and remote renderings are byte-identical.
  std::sort(report.rows.begin(), report.rows.end(),
            [](const Row& x, const Row& y) {
              if (x.contribution_pct != y.contribution_pct) {
                return x.contribution_pct > y.contribution_pct;
              }
              const double dx = std::abs(x.delta());
              const double dy = std::abs(y.delta());
              if (dx != dy) return dx > dy;
              if (x.metric != y.metric) return x.metric < y.metric;
              return x.context < y.context;
            });
  if (request.top_k > 0 && report.rows.size() > request.top_k) {
    report.rows.resize(request.top_k);
  }

  report.stats.diff_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  DiagMetrics& m = metrics();
  m.diffs->inc();
  m.aligned->inc(report.stats.aligned);
  m.divergences->inc(report.stats.divergent);
  m.diff_ms->observe(static_cast<double>(report.stats.diff_us) / 1000.0);
  return report;
}

}  // namespace perftrack::core::diag
