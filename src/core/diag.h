// Comparison-based diagnosis engine (the paper's §6 "comparison operators",
// grown into a first-class workload).
//
// diagnose() answers "why did execution A perform differently than execution
// B?" from nothing but the store: it aligns the two executions' performance
// results over *comparable contexts* (resource full names with the per-run
// segment canonicalized to $EXEC, sorted and joined — the same rule
// analyze::compareExecutions uses), computes per-(metric, context) divergence
// under configurable ratio/absolute thresholds, and ranks the divergent pairs
// by their contribution to the metric's total absolute delta — PerfXplain-
// style ranked explanations instead of a raw ratio dump.
//
// The engine lives below dbal and server (it operates on a
// minidb::sql::Engine directly), so the same code path backs the local
// dbal::Connection::diff(), the server's DIFF wire verb, and the CLIs. Its
// alignment queries are plain indexed SQL with chunked integer IN-lists, so
// on an invidx-enabled engine the resource/focus joins ride the PR-9
// posting-list access path automatically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "minidb/sql/executor.h"

namespace perftrack::core::diag {

/// One diff request. Thresholds classify a matched pair as divergent when
/// |ratio - 1| > ratio_threshold (or the baseline is zero and the values
/// differ) AND |delta| >= abs_threshold.
struct Request {
  std::string exec_a;  // baseline
  std::string exec_b;  // candidate
  std::uint32_t top_k = 0;        // 0 = return every divergent pair
  double ratio_threshold = 0.10;  // 10% change
  double abs_threshold = 0.0;     // absolute |delta| floor
};

/// One ranked divergent (metric, context) pair.
struct Row {
  std::string metric;
  std::string context;  // canonical comparable-context key
  double value_a = 0.0;
  double value_b = 0.0;
  bool has_ratio = false;  // false when value_a == 0 (ratio guard)
  double ratio = 0.0;      // value_b / value_a when has_ratio
  /// |delta| as a percentage of the metric's total |delta| over all aligned
  /// pairs — the PerfXplain-style "how much of the change is this pair".
  double contribution_pct = 0.0;

  double delta() const { return value_b - value_a; }
};

/// Alignment statistics (the EXPLAIN-style half of the report).
struct Stats {
  std::uint64_t results_a = 0;      // raw performance results of A
  std::uint64_t results_b = 0;
  std::uint64_t aligned = 0;        // (metric, context) pairs on both sides
  std::uint64_t only_a = 0;         // pairs with no counterpart in B
  std::uint64_t only_b = 0;
  std::uint64_t divergent = 0;      // pairs past the thresholds (pre top-K)
  std::uint64_t zero_baseline = 0;  // aligned pairs where value_a == 0
  std::uint64_t diff_us = 0;        // wall time of the diagnosis
};

struct Report {
  Request request;
  Stats stats;
  std::vector<Row> rows;  // ranked, top-K applied

  /// Column names of toRows(), shared with the DIFF wire verb.
  static const std::vector<std::string>& columns();
  /// The ranked rows as result-set rows: rank (1-based INTEGER), metric,
  /// context, value_a, value_b, delta, ratio (NULL under the zero-baseline
  /// guard), contribution_pct.
  std::vector<minidb::Row> toRows() const;

  /// Human-readable report: alignment stats then the ranked table.
  /// Deliberately excludes diff_us so local and remote runs over the same
  /// store render byte-identically (timing goes to the pt_diag_* metrics).
  std::string toText() const;
};

/// $EXEC canonicalization of one resource full name: when the leading path
/// segment embeds the execution name (e.g. /irs-np8/p0, /build-irs-np8),
/// that substring becomes "$EXEC", keeping any collector prefix. Shared with
/// analyze::comparableContext so both layers align contexts identically.
std::string canonicalResourceName(const std::string& execution,
                                  std::string full_name);

/// Runs the full diagnosis against the store behind `engine`. Throws
/// util::ModelError when either execution does not exist. Callers are
/// responsible for gating/snapshotting the underlying database exactly as
/// for any SELECT (the engine only reads).
Report diagnose(minidb::sql::Engine& engine, const Request& request);

}  // namespace perftrack::core::diag
