#include "core/filter.h"

#include <algorithm>
#include <unordered_set>

#include "util/compare.h"
#include "util/error.h"
#include "util/strings.h"

namespace perftrack::core {

using minidb::Value;
using util::ModelError;
using util::sqlQuote;

std::string_view expansionName(Expansion e) {
  switch (e) {
    case Expansion::None: return "N";
    case Expansion::Ancestors: return "A";
    case Expansion::Descendants: return "D";
    case Expansion::Both: return "B";
  }
  return "?";
}

ResourceFilter ResourceFilter::byType(std::string type_path, Expansion e) {
  ResourceFilter f;
  f.kind = Kind::ByType;
  f.type_path = std::move(type_path);
  f.expand = e;
  return f;
}

ResourceFilter ResourceFilter::byName(std::string name, Expansion e) {
  ResourceFilter f;
  f.kind = Kind::ByName;
  f.name = std::move(name);
  f.expand = e;
  return f;
}

ResourceFilter ResourceFilter::byAttributes(std::vector<AttrPredicate> attrs,
                                            std::string type_path, Expansion e) {
  ResourceFilter f;
  f.kind = Kind::ByAttributes;
  f.attrs = std::move(attrs);
  f.type_path = std::move(type_path);
  f.expand = e;
  return f;
}

std::string ResourceFilter::describe() const {
  std::string out;
  switch (kind) {
    case Kind::ByType: out = "type=" + type_path; break;
    case Kind::ByName: out = "name=" + name; break;
    case Kind::ByAttributes: {
      out = "attrs[";
      for (std::size_t i = 0; i < attrs.size(); ++i) {
        if (i) out += " AND ";
        out += attrs[i].name + attrs[i].comparator + attrs[i].value;
      }
      out += "]";
      if (!type_path.empty()) out += " type=" + type_path;
      break;
    }
  }
  out += " (";
  out += expansionName(expand);
  out += ")";
  return out;
}

namespace {

/// Runs `sql_prefix` + IN (?,...) for chunks of `ids`, collecting the first
/// column of every row. `prefix_params` bind any '?' already in sql_prefix.
/// Full chunks share one SQL text, so all but the ragged last chunk hit the
/// connection's statement cache, and the IN-list lands on the index-backed
/// multi-point probe path instead of a heap scan.
std::vector<std::int64_t> chunkedIn(dbal::Connection& conn, const std::string& sql_prefix,
                                    const std::vector<std::int64_t>& ids,
                                    std::vector<Value> prefix_params = {}) {
  std::vector<std::int64_t> out;
  constexpr std::size_t kChunk = 200;
  for (std::size_t start = 0; start < ids.size(); start += kChunk) {
    const std::size_t n = std::min(ids.size() - start, kChunk);
    std::string sql = sql_prefix + " IN (";
    for (std::size_t i = 0; i < n; ++i) {
      if (i) sql.push_back(',');
      sql.push_back('?');
    }
    sql.push_back(')');
    std::vector<Value> params = prefix_params;
    params.reserve(params.size() + n);
    for (std::size_t i = 0; i < n; ++i) params.emplace_back(ids[start + i]);
    auto cur = conn.query(sql, std::move(params));
    minidb::Row row;
    while (cur.next(row)) out.push_back(row[0].asInt());
  }
  return out;
}

void sortUnique(std::vector<std::int64_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

std::vector<std::int64_t> attributeCandidates(dbal::Connection& conn,
                                              const AttrPredicate& pred) {
  auto cur = conn.query(
      "SELECT resource_id, value FROM resource_attribute WHERE name = ?",
      {Value(pred.name)});
  std::vector<std::int64_t> out;
  minidb::Row row;
  while (cur.next(row)) {
    if (util::comparePredicate(row[1].asText(), pred.comparator, pred.value)) {
      out.push_back(row[0].asInt());
    }
  }
  sortUnique(out);
  return out;
}

}  // namespace

std::vector<ResourceId> evaluateFamily(PTDataStore& store, const ResourceFilter& filter) {
  dbal::Connection& conn = store.connection();
  std::vector<ResourceId> family;

  switch (filter.kind) {
    case ResourceFilter::Kind::ByType: {
      for (const ResourceInfo& info : store.resourcesOfType(filter.type_path)) {
        family.push_back(info.id);
      }
      break;
    }
    case ResourceFilter::Kind::ByName: {
      if (!filter.name.empty() && filter.name.front() == '/') {
        if (const auto id = store.findResource(filter.name)) family.push_back(*id);
      } else if (filter.name.find('/') != std::string::npos) {
        // Partial path like "Frost/batch": resources whose full name ends
        // with "/Frost/batch" (paper Fig. 3: child selection restricts to
        // named parents).
        auto cur = conn.query(
            "SELECT id, full_name FROM resource_item WHERE full_name LIKE " +
            sqlQuote("%/" + filter.name));
        minidb::Row row;
        while (cur.next(row)) family.push_back(row[0].asInt());
      } else {
        for (const ResourceInfo& info : store.resourcesNamed(filter.name)) {
          family.push_back(info.id);
        }
      }
      break;
    }
    case ResourceFilter::Kind::ByAttributes: {
      if (filter.attrs.empty()) {
        throw ModelError("attribute filter requires at least one predicate");
      }
      family = attributeCandidates(conn, filter.attrs.front());
      for (std::size_t i = 1; i < filter.attrs.size() && !family.empty(); ++i) {
        const auto next = attributeCandidates(conn, filter.attrs[i]);
        std::vector<std::int64_t> merged;
        std::set_intersection(family.begin(), family.end(), next.begin(), next.end(),
                              std::back_inserter(merged));
        family = std::move(merged);
      }
      if (!filter.type_path.empty() && !family.empty()) {
        // Keep only resources of the requested type.
        const auto typed = chunkedIn(
            conn,
            "SELECT r.id FROM resource_item r JOIN focus_framework f ON "
            "r.focus_framework_id = f.id WHERE f.type_name = ? AND r.id",
            family, {Value(filter.type_path)});
        std::vector<std::int64_t> sorted_typed = typed;
        sortUnique(sorted_typed);
        std::vector<std::int64_t> merged;
        std::set_intersection(family.begin(), family.end(), sorted_typed.begin(),
                              sorted_typed.end(), std::back_inserter(merged));
        family = std::move(merged);
      }
      break;
    }
  }
  sortUnique(family);

  // Expansion via the closure tables (constant-depth queries instead of
  // parent-chain walks; see DESIGN.md §5 for the ablation). Both expansions
  // are computed from the ORIGINAL members: B(x) = A(x) ∪ D(x), not D(A(x)),
  // which would drag in entire sibling subtrees.
  const std::vector<ResourceId> base = family;
  if (filter.expand == Expansion::Ancestors || filter.expand == Expansion::Both) {
    auto ancestors = chunkedIn(
        conn, "SELECT ancestor_id FROM resource_has_ancestor WHERE resource_id", base);
    family.insert(family.end(), ancestors.begin(), ancestors.end());
  }
  if (filter.expand == Expansion::Descendants || filter.expand == Expansion::Both) {
    auto descendants = chunkedIn(
        conn, "SELECT descendant_id FROM resource_has_descendant WHERE resource_id",
        base);
    family.insert(family.end(), descendants.begin(), descendants.end());
  }
  sortUnique(family);
  return family;
}

namespace {

std::unordered_set<std::int64_t> fociTouchingFamily(dbal::Connection& conn,
                                                    const std::vector<ResourceId>& family) {
  const auto foci = chunkedIn(
      conn, "SELECT focus_id FROM focus_has_resource WHERE resource_id", family);
  return {foci.begin(), foci.end()};
}

}  // namespace

std::vector<std::int64_t> matchResults(
    PTDataStore& store, const std::vector<std::vector<ResourceId>>& families) {
  dbal::Connection& conn = store.connection();
  if (families.empty()) {
    // An empty pr-filter matches everything (paper: filters narrow a set).
    auto cur = conn.query("SELECT id FROM performance_result ORDER BY id");
    std::vector<std::int64_t> out;
    minidb::Row row;
    while (cur.next(row)) out.push_back(row[0].asInt());
    return out;
  }
  // Matching foci = intersection over families of {focus | focus ∩ family}.
  std::unordered_set<std::int64_t> matching = fociTouchingFamily(conn, families[0]);
  for (std::size_t i = 1; i < families.size() && !matching.empty(); ++i) {
    const auto next = fociTouchingFamily(conn, families[i]);
    std::unordered_set<std::int64_t> merged;
    for (std::int64_t focus : matching) {
      if (next.contains(focus)) merged.insert(focus);
    }
    matching = std::move(merged);
  }
  if (matching.empty()) return {};
  std::vector<std::int64_t> focus_ids(matching.begin(), matching.end());
  std::sort(focus_ids.begin(), focus_ids.end());
  auto results = chunkedIn(
      conn, "SELECT result_id FROM performance_result_has_focus WHERE focus_id",
      focus_ids);
  sortUnique(results);
  return results;
}

std::vector<std::int64_t> queryResults(PTDataStore& store, const PrFilter& filter) {
  std::vector<std::vector<ResourceId>> families;
  families.reserve(filter.families.size());
  for (const ResourceFilter& f : filter.families) {
    families.push_back(evaluateFamily(store, f));
  }
  return matchResults(store, families);
}

std::size_t familyMatchCount(PTDataStore& store, const std::vector<ResourceId>& family) {
  return matchResults(store, {family}).size();
}

}  // namespace perftrack::core
