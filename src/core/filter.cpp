#include "core/filter.h"

#include <algorithm>
#include <iterator>
#include <optional>
#include <queue>
#include <unordered_set>
#include <utility>

#include "minidb/invidx/manager.h"
#include "util/compare.h"
#include "util/error.h"
#include "util/strings.h"

namespace perftrack::core {

using minidb::Value;
using util::ModelError;
using util::sqlQuote;

namespace invidx = minidb::invidx;

std::string_view expansionName(Expansion e) {
  switch (e) {
    case Expansion::None: return "N";
    case Expansion::Ancestors: return "A";
    case Expansion::Descendants: return "D";
    case Expansion::Both: return "B";
  }
  return "?";
}

ResourceFilter ResourceFilter::byType(std::string type_path, Expansion e) {
  ResourceFilter f;
  f.kind = Kind::ByType;
  f.type_path = std::move(type_path);
  f.expand = e;
  return f;
}

ResourceFilter ResourceFilter::byName(std::string name, Expansion e) {
  ResourceFilter f;
  f.kind = Kind::ByName;
  f.name = std::move(name);
  f.expand = e;
  return f;
}

ResourceFilter ResourceFilter::byAttributes(std::vector<AttrPredicate> attrs,
                                            std::string type_path, Expansion e) {
  ResourceFilter f;
  f.kind = Kind::ByAttributes;
  f.attrs = std::move(attrs);
  f.type_path = std::move(type_path);
  f.expand = e;
  return f;
}

std::string ResourceFilter::describe() const {
  std::string out;
  switch (kind) {
    case Kind::ByType: out = "type=" + type_path; break;
    case Kind::ByName: out = "name=" + name; break;
    case Kind::ByAttributes: {
      out = "attrs[";
      for (std::size_t i = 0; i < attrs.size(); ++i) {
        if (i) out += " AND ";
        out += attrs[i].name + attrs[i].comparator + attrs[i].value;
      }
      out += "]";
      if (!type_path.empty()) out += " type=" + type_path;
      break;
    }
  }
  out += " (";
  out += expansionName(expand);
  out += ")";
  return out;
}

namespace {

/// The inverted-index manager behind `conn`, or nullptr when the fast paths
/// must stay off (remote connection, invidx switch disabled). Every fast
/// path below also handles the manager declining a specific index (nullptr)
/// by falling back to the legacy SQL, so the two paths always agree.
invidx::Manager* fastIndexes(dbal::Connection& conn) {
  if (!conn.invidxEnabled()) return nullptr;
  minidb::Database* db = conn.localDatabase();
  return db != nullptr ? &db->invidx() : nullptr;
}

void sortUnique(std::vector<std::int64_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

/// Fixed IN-list sizes. The ragged tail chunk is padded up to the next rung
/// by repeating its last id — the engine sorts and dedupes IN-list keys, so
/// padding never changes the result — which keeps the set of distinct SQL
/// texts bounded and every probe on the statement cache's hot path.
constexpr std::size_t kChunkSizes[] = {1, 2, 4, 8, 16, 32, 64, 128, 200};
constexpr std::size_t kChunk = 200;

/// Runs `sql_prefix` + IN (?,...) for chunks of `ids`, collecting the first
/// column of every row. `prefix_params` bind any '?' already in sql_prefix.
/// Ids are deduplicated and probed in ascending order — every caller treats
/// the output as a set (a sort/dedup or hash-set build follows), and sorted
/// probes walk the B-tree or posting index in key order.
std::vector<std::int64_t> chunkedIn(dbal::Connection& conn, const std::string& sql_prefix,
                                    std::vector<std::int64_t> ids,
                                    std::vector<Value> prefix_params = {}) {
  sortUnique(ids);
  std::vector<std::int64_t> out;
  for (std::size_t start = 0; start < ids.size(); start += kChunk) {
    const std::size_t n = std::min(ids.size() - start, kChunk);
    const std::size_t padded =
        *std::lower_bound(std::begin(kChunkSizes), std::end(kChunkSizes), n);
    std::string sql = sql_prefix + " IN (";
    for (std::size_t i = 0; i < padded; ++i) {
      if (i) sql.push_back(',');
      sql.push_back('?');
    }
    sql.push_back(')');
    std::vector<Value> params = prefix_params;
    params.reserve(params.size() + padded);
    for (std::size_t i = 0; i < n; ++i) params.emplace_back(ids[start + i]);
    for (std::size_t i = n; i < padded; ++i) params.emplace_back(ids[start + n - 1]);
    auto cur = conn.query(sql, std::move(params));
    minidb::Row row;
    while (cur.next(row)) out.push_back(row[0].asInt());
  }
  return out;
}

std::vector<std::int64_t> attributeCandidates(dbal::Connection& conn,
                                              const AttrPredicate& pred) {
  if (invidx::Manager* mgr = fastIndexes(conn)) {
    if (const auto idx = mgr->attrIndex("resource_attribute", "resource_id",
                                        "name", "value")) {
      // Predicates evaluate once per *distinct* value of the attribute; the
      // matching values' id postings are unioned. Same comparator, same
      // rows, so the result matches the legacy row-at-a-time scan exactly.
      invidx::counters().probes.inc();
      std::vector<std::int64_t> out;
      if (const auto* values = idx->valuesOf(pred.name)) {
        for (const auto& vp : *values) {
          if (util::comparePredicate(vp.value, pred.comparator, pred.value)) {
            invidx::counters().unions.inc();
            for (const std::uint64_t id : vp.ids.toVector()) {
              out.push_back(static_cast<std::int64_t>(id));
            }
          }
        }
      }
      sortUnique(out);
      return out;
    }
  }
  auto cur = conn.query(
      "SELECT resource_id, value FROM resource_attribute WHERE name = ?",
      {Value(pred.name)});
  std::vector<std::int64_t> out;
  minidb::Row row;
  while (cur.next(row)) {
    if (util::comparePredicate(row[1].asText(), pred.comparator, pred.value)) {
      out.push_back(row[0].asInt());
    }
  }
  sortUnique(out);
  return out;
}

/// Partial-path ByName ("Frost/batch") via the name index: intersect the
/// pattern's path-segment and trigram postings to get a small candidate
/// set, then verify the exact "/<pattern>" suffix against the stored full
/// name. Declines (nullopt -> legacy LIKE) when the pattern contains LIKE
/// wildcards (legacy interprets them) or the index is unavailable.
std::optional<std::vector<std::int64_t>> partialPathFast(dbal::Connection& conn,
                                                         const std::string& name) {
  if (name.find('%') != std::string::npos || name.find('_') != std::string::npos) {
    return std::nullopt;
  }
  invidx::Manager* mgr = fastIndexes(conn);
  if (mgr == nullptr) return std::nullopt;
  const auto idx = mgr->nameIndex("resource_item", "id", "name", "full_name");
  if (!idx) return std::nullopt;

  std::vector<const invidx::PostingList*> lists;
  for (const std::string& seg : util::split(name, '/')) {
    if (seg.empty()) continue;
    invidx::counters().probes.inc();
    const invidx::PostingList* pl = idx->segment(seg);
    if (pl == nullptr) return std::vector<std::int64_t>{};  // segment unseen
    lists.push_back(pl);
  }
  const std::string pattern = "/" + name;
  // A few trigrams of the suffix pattern tighten the candidate set; more
  // than a handful adds intersection work without shrinking it further.
  for (std::size_t i = 0; i + 3 <= pattern.size() && i < 8 * 3; i += 3) {
    invidx::counters().probes.inc();
    const invidx::PostingList* pl = idx->trigram(pattern.substr(i, 3));
    if (pl == nullptr) return std::vector<std::int64_t>{};
    lists.push_back(pl);
  }
  if (lists.empty()) return std::nullopt;
  invidx::counters().intersections.inc();
  std::vector<std::int64_t> out;
  for (const std::uint64_t id : invidx::PostingList::intersect(std::move(lists))) {
    const std::string* full = idx->fullName(static_cast<std::int64_t>(id));
    if (full != nullptr && util::endsWith(*full, pattern)) {
      out.push_back(static_cast<std::int64_t>(id));
    }
  }
  return out;
}

/// Closure expansion via a key->values index on the closure table; nullopt
/// falls back to the legacy chunked IN-list join.
std::optional<std::vector<std::int64_t>> closureFast(dbal::Connection& conn,
                                                     const std::string& table,
                                                     const std::string& value_col,
                                                     const std::vector<ResourceId>& base) {
  invidx::Manager* mgr = fastIndexes(conn);
  if (mgr == nullptr) return std::nullopt;
  const auto idx = mgr->valueIndex(table, "resource_id", value_col);
  if (!idx) return std::nullopt;
  std::vector<std::int64_t> out;
  for (const ResourceId id : base) {
    invidx::counters().probes.inc();
    if (const invidx::PostingList* pl = idx->find(id)) {
      invidx::counters().unions.inc();
      for (const std::uint64_t v : pl->toVector()) {
        out.push_back(static_cast<std::int64_t>(v));
      }
    }
  }
  return out;
}

}  // namespace

std::vector<ResourceId> evaluateFamily(PTDataStore& store, const ResourceFilter& filter) {
  dbal::Connection& conn = store.connection();
  std::vector<ResourceId> family;

  switch (filter.kind) {
    case ResourceFilter::Kind::ByType: {
      for (const ResourceInfo& info : store.resourcesOfType(filter.type_path)) {
        family.push_back(info.id);
      }
      break;
    }
    case ResourceFilter::Kind::ByName: {
      if (!filter.name.empty() && filter.name.front() == '/') {
        if (const auto id = store.findResource(filter.name)) family.push_back(*id);
      } else if (filter.name.find('/') != std::string::npos) {
        // Partial path like "Frost/batch": resources whose full name ends
        // with "/Frost/batch" (paper Fig. 3: child selection restricts to
        // named parents).
        if (auto fast = partialPathFast(conn, filter.name)) {
          family = std::move(*fast);
        } else {
          auto cur = conn.query(
              "SELECT id, full_name FROM resource_item WHERE full_name LIKE " +
              sqlQuote("%/" + filter.name));
          minidb::Row row;
          while (cur.next(row)) family.push_back(row[0].asInt());
        }
      } else {
        bool fast = false;
        if (invidx::Manager* mgr = fastIndexes(conn)) {
          if (const auto idx =
                  mgr->nameIndex("resource_item", "id", "name", "full_name")) {
            invidx::counters().probes.inc();
            if (const invidx::PostingList* pl = idx->baseName(filter.name)) {
              for (const std::uint64_t id : pl->toVector()) {
                family.push_back(static_cast<std::int64_t>(id));
              }
            }
            fast = true;
          }
        }
        if (!fast) {
          for (const ResourceInfo& info : store.resourcesNamed(filter.name)) {
            family.push_back(info.id);
          }
        }
      }
      break;
    }
    case ResourceFilter::Kind::ByAttributes: {
      if (filter.attrs.empty()) {
        throw ModelError("attribute filter requires at least one predicate");
      }
      family = attributeCandidates(conn, filter.attrs.front());
      for (std::size_t i = 1; i < filter.attrs.size() && !family.empty(); ++i) {
        const auto next = attributeCandidates(conn, filter.attrs[i]);
        std::vector<std::int64_t> merged;
        std::set_intersection(family.begin(), family.end(), next.begin(), next.end(),
                              std::back_inserter(merged));
        family = std::move(merged);
      }
      if (!filter.type_path.empty() && !family.empty()) {
        // Keep only resources of the requested type.
        const auto typed = chunkedIn(
            conn,
            "SELECT r.id FROM resource_item r JOIN focus_framework f ON "
            "r.focus_framework_id = f.id WHERE f.type_name = ? AND r.id",
            family, {Value(filter.type_path)});
        std::vector<std::int64_t> sorted_typed = typed;
        sortUnique(sorted_typed);
        std::vector<std::int64_t> merged;
        std::set_intersection(family.begin(), family.end(), sorted_typed.begin(),
                              sorted_typed.end(), std::back_inserter(merged));
        family = std::move(merged);
      }
      break;
    }
  }
  sortUnique(family);

  // Expansion via the closure tables (constant-depth queries instead of
  // parent-chain walks; see DESIGN.md §5 for the ablation). Both expansions
  // are computed from the ORIGINAL members: B(x) = A(x) ∪ D(x), not D(A(x)),
  // which would drag in entire sibling subtrees.
  const std::vector<ResourceId> base = family;
  if (filter.expand == Expansion::Ancestors || filter.expand == Expansion::Both) {
    auto ancestors = closureFast(conn, "resource_has_ancestor", "ancestor_id", base);
    if (!ancestors) {
      ancestors = chunkedIn(
          conn, "SELECT ancestor_id FROM resource_has_ancestor WHERE resource_id", base);
    }
    family.insert(family.end(), ancestors->begin(), ancestors->end());
  }
  if (filter.expand == Expansion::Descendants || filter.expand == Expansion::Both) {
    auto descendants =
        closureFast(conn, "resource_has_descendant", "descendant_id", base);
    if (!descendants) {
      descendants = chunkedIn(
          conn, "SELECT descendant_id FROM resource_has_descendant WHERE resource_id",
          base);
    }
    family.insert(family.end(), descendants->begin(), descendants->end());
  }
  sortUnique(family);
  return family;
}

namespace {

std::unordered_set<std::int64_t> fociTouchingFamily(dbal::Connection& conn,
                                                    const std::vector<ResourceId>& family) {
  const auto foci = chunkedIn(
      conn, "SELECT focus_id FROM focus_has_resource WHERE resource_id", family);
  return {foci.begin(), foci.end()};
}

/// The pr-filter core on the inverted index: per family, union the member
/// resources' focus postings into a dense bitmap, then AND the bitmaps
/// across families (word-wise when the postings are bitmap-represented).
/// nullopt -> the focus_has_resource index is unavailable, use the legacy
/// hash-set path. The caller must pass a non-empty family list.
std::optional<invidx::Bitmap> matchingFociFast(
    invidx::Manager& mgr, const std::vector<std::vector<ResourceId>>& families) {
  const auto fhr = mgr.valueIndex("focus_has_resource", "resource_id", "focus_id");
  if (!fhr) return std::nullopt;
  std::optional<invidx::Bitmap> acc;
  for (const std::vector<ResourceId>& family : families) {
    invidx::Bitmap bm(fhr->valueLo(), fhr->valueHi());
    for (const ResourceId id : family) {
      invidx::counters().probes.inc();
      if (const invidx::PostingList* pl = fhr->find(id)) {
        invidx::counters().unions.inc();
        bm.orPosting(*pl);
      }
    }
    if (!acc) {
      acc = std::move(bm);
    } else {
      invidx::counters().intersections.inc();
      acc->andWith(bm);
    }
    if (!acc->any()) break;  // some family touches no focus: empty match
  }
  return acc;
}

/// All result ids whose foci appear in `foci`, ascending and unique, via
/// the focus -> results index. nullopt -> index unavailable.
std::optional<invidx::Bitmap> resultsOfFoci(invidx::Manager& mgr,
                                            const invidx::Bitmap& foci) {
  const auto prhf =
      mgr.valueIndex("performance_result_has_focus", "focus_id", "result_id");
  if (!prhf) return std::nullopt;
  invidx::Bitmap res(prhf->valueLo(), prhf->valueHi());
  foci.forEach([&](std::uint64_t focus) {
    invidx::counters().probes.inc();
    if (const invidx::PostingList* pl =
            prhf->find(static_cast<std::int64_t>(focus))) {
      invidx::counters().unions.inc();
      res.orPosting(*pl);
    }
    return true;
  });
  return res;
}

std::vector<std::int64_t> toSigned(const std::vector<std::uint64_t>& v) {
  return {v.begin(), v.end()};
}

std::vector<std::int64_t> legacyMatchResults(
    dbal::Connection& conn, const std::vector<std::vector<ResourceId>>& families) {
  // Matching foci = intersection over families of {focus | focus ∩ family}.
  std::unordered_set<std::int64_t> matching = fociTouchingFamily(conn, families[0]);
  for (std::size_t i = 1; i < families.size() && !matching.empty(); ++i) {
    const auto next = fociTouchingFamily(conn, families[i]);
    std::unordered_set<std::int64_t> merged;
    for (std::int64_t focus : matching) {
      if (next.contains(focus)) merged.insert(focus);
    }
    matching = std::move(merged);
  }
  if (matching.empty()) return {};
  std::vector<std::int64_t> focus_ids(matching.begin(), matching.end());
  std::sort(focus_ids.begin(), focus_ids.end());
  auto results = chunkedIn(
      conn, "SELECT result_id FROM performance_result_has_focus WHERE focus_id",
      focus_ids);
  sortUnique(results);
  return results;
}

}  // namespace

std::vector<std::int64_t> matchResults(
    PTDataStore& store, const std::vector<std::vector<ResourceId>>& families) {
  dbal::Connection& conn = store.connection();
  if (families.empty()) {
    // An empty pr-filter matches everything (paper: filters narrow a set).
    auto cur = conn.query("SELECT id FROM performance_result ORDER BY id");
    std::vector<std::int64_t> out;
    minidb::Row row;
    while (cur.next(row)) out.push_back(row[0].asInt());
    return out;
  }
  if (invidx::Manager* mgr = fastIndexes(conn)) {
    if (auto foci = matchingFociFast(*mgr, families)) {
      if (!foci->any()) return {};
      if (const auto res = resultsOfFoci(*mgr, *foci)) {
        return toSigned(res->toVector());
      }
      // Foci resolved on the index but the results index declined: finish
      // through the legacy IN-list join.
      auto results = chunkedIn(
          conn, "SELECT result_id FROM performance_result_has_focus WHERE focus_id",
          toSigned(foci->toVector()));
      sortUnique(results);
      return results;
    }
  }
  return legacyMatchResults(conn, families);
}

std::size_t matchResultCount(PTDataStore& store,
                             const std::vector<std::vector<ResourceId>>& families) {
  dbal::Connection& conn = store.connection();
  if (!families.empty()) {
    if (invidx::Manager* mgr = fastIndexes(conn)) {
      if (const auto foci = matchingFociFast(*mgr, families)) {
        if (!foci->any()) return 0;
        if (const auto res = resultsOfFoci(*mgr, *foci)) {
          // Count without materializing ids: a popcount over the bitmap.
          return static_cast<std::size_t>(res->count());
        }
      }
    }
  }
  return matchResults(store, families).size();
}

std::vector<std::int64_t> matchResultsTopK(
    PTDataStore& store, const std::vector<std::vector<ResourceId>>& families,
    std::size_t k) {
  if (k == 0) return {};
  dbal::Connection& conn = store.connection();
  if (families.empty()) {
    auto cur = conn.query("SELECT id FROM performance_result ORDER BY id");
    std::vector<std::int64_t> out;
    minidb::Row row;
    while (out.size() < k && cur.next(row)) out.push_back(row[0].asInt());
    return out;
  }
  if (invidx::Manager* mgr = fastIndexes(conn)) {
    if (const auto foci = matchingFociFast(*mgr, families)) {
      if (!foci->any()) return {};
      const auto prhf =
          mgr->valueIndex("performance_result_has_focus", "focus_id", "result_id");
      if (prhf) {
        // K-way merge of the matching foci's result postings: a min-heap of
        // cursors emits ascending unique result ids, and the merge stops at
        // k results without touching the postings' tails (the block-max
        // analogue of WAND's early termination for an OR of sorted lists).
        std::vector<invidx::PostingList::Cursor> cursors;
        foci->forEach([&](std::uint64_t focus) {
          invidx::counters().probes.inc();
          if (const invidx::PostingList* pl =
                  prhf->find(static_cast<std::int64_t>(focus))) {
            cursors.push_back(pl->cursor());
          }
          return true;
        });
        using HeapItem = std::pair<std::uint64_t, std::size_t>;  // (value, cursor)
        std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
        for (std::size_t i = 0; i < cursors.size(); ++i) {
          if (cursors[i].valid()) heap.emplace(cursors[i].value(), i);
        }
        std::vector<std::int64_t> out;
        while (out.size() < k && !heap.empty()) {
          const auto [value, ci] = heap.top();
          heap.pop();
          if (out.empty() || static_cast<std::uint64_t>(out.back()) != value) {
            out.push_back(static_cast<std::int64_t>(value));
          }
          cursors[ci].next();
          if (cursors[ci].valid()) heap.emplace(cursors[ci].value(), ci);
        }
        if (!heap.empty()) invidx::counters().topk_early_exits.inc();
        return out;
      }
    }
  }
  auto all = matchResults(store, families);
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<std::int64_t> queryResults(PTDataStore& store, const PrFilter& filter) {
  std::vector<std::vector<ResourceId>> families;
  families.reserve(filter.families.size());
  for (const ResourceFilter& f : filter.families) {
    families.push_back(evaluateFamily(store, f));
  }
  return matchResults(store, families);
}

std::size_t familyMatchCount(PTDataStore& store, const std::vector<ResourceId>& family) {
  return matchResultCount(store, {family});
}

}  // namespace perftrack::core
