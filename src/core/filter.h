// PerfTrack core: resource filters and pr-filters (paper §2.2).
//
// A *resource filter* selects a set of resources by type, by name, or by
// attribute-value-comparator tuples, optionally expanded to ancestors,
// descendants, or both; the resulting set is a *resource family*. A
// *pr-filter* is a set of resource families; it matches a context C iff
// every family contains at least one resource of C:
//     PRF matches C  ⇔  ∀ R ∈ PRF: ∃ r ∈ C with r ∈ R
// A performance result is selected when at least one of its contexts
// matches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/datastore.h"

namespace perftrack::core {

/// Ancestor/descendant expansion flag (GUI column "Relatives": N/A/D/B).
/// The GUI default for named resources is Descendants, so choosing "Frost"
/// also selects its partitions, nodes, and processors.
enum class Expansion { None, Ancestors, Descendants, Both };

std::string_view expansionName(Expansion e);

/// One attribute-value-comparator tuple. Comparators: = != < <= > >=
/// plus "contains" (substring). Values compare numerically when both sides
/// parse as numbers, else as strings.
struct AttrPredicate {
  std::string name;
  std::string comparator;
  std::string value;
};

/// A resource filter (paper §2.2): exactly one of the three selection modes.
struct ResourceFilter {
  enum class Kind { ByType, ByName, ByAttributes };

  Kind kind = Kind::ByType;
  std::string type_path;            // ByType: full type path; also constrains
                                    // ByAttributes when non-empty
  std::string name;                 // ByName: full name (leading '/') or base name
  std::vector<AttrPredicate> attrs; // ByAttributes
  Expansion expand = Expansion::None;

  static ResourceFilter byType(std::string type_path, Expansion e = Expansion::None);
  static ResourceFilter byName(std::string name, Expansion e = Expansion::Descendants);
  static ResourceFilter byAttributes(std::vector<AttrPredicate> attrs,
                                     std::string type_path = "",
                                     Expansion e = Expansion::None);

  /// Human-readable description for session displays.
  std::string describe() const;
};

/// A pr-filter: one resource family per entry.
struct PrFilter {
  std::vector<ResourceFilter> families;
};

/// Applies one resource filter; returns the sorted, deduplicated family.
std::vector<ResourceId> evaluateFamily(PTDataStore& store, const ResourceFilter& filter);

/// Result ids whose context(s) match every family (the pr-filter semantics
/// above). Families are passed pre-evaluated so GUI-style sessions can show
/// per-family counts without re-running filters.
std::vector<std::int64_t> matchResults(PTDataStore& store,
                                       const std::vector<std::vector<ResourceId>>& families);

/// Number of results matchResults() would return, without materializing
/// their ids: on the inverted-index fast path this is a popcount over the
/// result bitmap. Falls back to matchResults().size().
std::size_t matchResultCount(PTDataStore& store,
                             const std::vector<std::vector<ResourceId>>& families);

/// The first `k` ids of matchResults() (ascending). On the inverted-index
/// fast path the merge over the matching foci's result postings terminates
/// as soon as k distinct ids have been produced, so the postings' tails are
/// never decoded (pt_invidx_topk_early_exits_total counts the cutoffs).
std::vector<std::int64_t> matchResultsTopK(
    PTDataStore& store, const std::vector<std::vector<ResourceId>>& families,
    std::size_t k);

/// Convenience: evaluate + match in one call.
std::vector<std::int64_t> queryResults(PTDataStore& store, const PrFilter& filter);

/// Number of results matching one family alone (the Fig. 3 per-family count).
std::size_t familyMatchCount(PTDataStore& store, const std::vector<ResourceId>& family);

}  // namespace perftrack::core
