#include "core/integrity.h"

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.h"

namespace perftrack::core {

namespace {

struct ResourceRow {
  std::string full_name;
  std::int64_t parent_id = 0;  // 0 = none
};

}  // namespace

std::vector<std::string> verifyStore(PTDataStore& store) {
  std::vector<std::string> problems;
  dbal::Connection& conn = store.connection();

  // --- storage-level checks first ---------------------------------------------
  for (std::string& problem : conn.database().verifyIntegrity()) {
    problems.push_back("minidb: " + std::move(problem));
  }

  // --- resource tree -----------------------------------------------------------
  std::unordered_map<std::int64_t, ResourceRow> resources;
  {
    const auto rs = conn.exec("SELECT id, full_name, parent_id FROM resource_item");
    for (const auto& row : rs.rows) {
      resources[row[0].asInt()] = {row[1].asText(),
                                   row[2].isNull() ? 0 : row[2].asInt()};
    }
  }
  for (const auto& [id, row] : resources) {
    if (row.parent_id == 0) continue;
    const auto parent = resources.find(row.parent_id);
    if (parent == resources.end()) {
      problems.push_back("resource " + row.full_name + " has a dangling parent_id");
      continue;
    }
    const std::string& pname = parent->second.full_name;
    if (!util::startsWith(row.full_name, pname + "/") ||
        row.full_name.find('/', pname.size() + 1) != std::string::npos) {
      problems.push_back("resource " + row.full_name +
                         " does not extend its parent " + pname + " by one segment");
    }
  }

  // --- closure tables agree with parent chains --------------------------------
  {
    // Expected ancestor pairs from the parent chains.
    std::set<std::pair<std::int64_t, std::int64_t>> expected;
    for (const auto& [id, row] : resources) {
      std::int64_t cursor = row.parent_id;
      while (cursor != 0) {
        expected.insert({id, cursor});
        const auto it = resources.find(cursor);
        cursor = it == resources.end() ? 0 : it->second.parent_id;
      }
    }
    std::set<std::pair<std::int64_t, std::int64_t>> stored;
    const auto rs = conn.exec("SELECT resource_id, ancestor_id FROM resource_has_ancestor");
    for (const auto& row : rs.rows) stored.insert({row[0].asInt(), row[1].asInt()});
    if (stored != expected) {
      problems.push_back("resource_has_ancestor disagrees with parent chains (" +
                         std::to_string(stored.size()) + " stored vs " +
                         std::to_string(expected.size()) + " expected)");
    }
    std::set<std::pair<std::int64_t, std::int64_t>> descendants;
    const auto rd =
        conn.exec("SELECT descendant_id, resource_id FROM resource_has_descendant");
    for (const auto& row : rd.rows) descendants.insert({row[0].asInt(), row[1].asInt()});
    if (descendants != expected) {
      problems.push_back("resource_has_descendant disagrees with parent chains");
    }
  }

  // --- referential checks (dangling foreign keys) ------------------------------
  auto countDangling = [&](const std::string& description, const std::string& sql) {
    const auto n = conn.queryInt(sql);
    if (n != 0) {
      problems.push_back(std::to_string(n) + " " + description);
    }
  };
  countDangling("resource attributes with dangling resource ids",
                "SELECT COUNT(*) FROM resource_attribute WHERE resource_id NOT IN "
                "(SELECT id FROM resource_item)");
  countDangling("resource constraints with dangling resource ids",
                "SELECT COUNT(*) FROM resource_constraint WHERE resource_id1 NOT IN "
                "(SELECT id FROM resource_item) OR resource_id2 NOT IN "
                "(SELECT id FROM resource_item)");
  countDangling("focus members referencing missing resources",
                "SELECT COUNT(*) FROM focus_has_resource WHERE resource_id NOT IN "
                "(SELECT id FROM resource_item)");
  countDangling("focus members referencing missing foci",
                "SELECT COUNT(*) FROM focus_has_resource WHERE focus_id NOT IN "
                "(SELECT id FROM focus)");
  countDangling("results referencing missing executions",
                "SELECT COUNT(*) FROM performance_result WHERE execution_id NOT IN "
                "(SELECT id FROM execution)");
  countDangling("results referencing missing metrics",
                "SELECT COUNT(*) FROM performance_result WHERE metric_id NOT IN "
                "(SELECT id FROM metric)");
  countDangling("result-focus links with missing results",
                "SELECT COUNT(*) FROM performance_result_has_focus WHERE result_id "
                "NOT IN (SELECT id FROM performance_result)");
  countDangling("result-focus links with missing foci",
                "SELECT COUNT(*) FROM performance_result_has_focus WHERE focus_id "
                "NOT IN (SELECT id FROM focus)");
  countDangling("results with no context at all",
                "SELECT COUNT(*) FROM performance_result WHERE id NOT IN "
                "(SELECT result_id FROM performance_result_has_focus)");
  countDangling("histogram descriptors with missing results",
                "SELECT COUNT(*) FROM performance_result_histogram WHERE result_id "
                "NOT IN (SELECT id FROM performance_result)");
  countDangling("histogram bins with missing descriptors",
                "SELECT COUNT(*) FROM performance_result_bin WHERE result_id NOT IN "
                "(SELECT result_id FROM performance_result_histogram)");
  countDangling("executions referencing missing applications",
                "SELECT COUNT(*) FROM execution WHERE application_id NOT IN "
                "(SELECT id FROM application)");
  countDangling("foci referencing missing executions",
                "SELECT COUNT(*) FROM focus WHERE execution_id NOT IN "
                "(SELECT id FROM execution)");
  return problems;
}

}  // namespace perftrack::core
