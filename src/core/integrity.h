// PerfTrack core: store-level integrity checking.
//
// A production data store accumulating years of experiments needs a way to
// prove it is still internally consistent. verifyStore() checks the
// PerfTrack schema invariants on top of minidb's own index/heap checks:
//   * every resource's parent_id resolves, and its full name extends the
//     parent's full name by exactly one segment,
//   * the ancestor/descendant closure tables agree with the parent chains,
//   * every focus member references an existing resource, every result
//     references at least one existing focus of its own execution,
//   * every attribute, constraint, and histogram row points at a live owner,
//   * executions reference existing applications.
#pragma once

#include <string>
#include <vector>

#include "core/datastore.h"

namespace perftrack::core {

/// Returns human-readable problem descriptions; empty = consistent.
std::vector<std::string> verifyStore(PTDataStore& store);

}  // namespace perftrack::core
