#include "core/query_session.h"

#include <algorithm>
#include <ostream>
#include <set>
#include <sstream>

#include "util/compare.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/strings.h"

namespace perftrack::core {

using util::ModelError;

// ---------------------------------------------------------------------------
// ResultTable
// ---------------------------------------------------------------------------

std::map<std::string, std::vector<std::string>> ResultTable::columnValuesByType() {
  // For each row, group its context resources by type path and record the
  // (comma-joined) base names. Cached lookups through resourceInfo keep this
  // O(distinct resources).
  std::map<ResourceId, ResourceInfo> info_cache;
  auto info = [&](ResourceId id) -> const ResourceInfo& {
    auto it = info_cache.find(id);
    if (it == info_cache.end()) it = info_cache.emplace(id, store_->resourceInfo(id)).first;
    return it->second;
  };
  std::map<std::string, std::vector<std::string>> by_type;
  for (const ResultRow& row : rows_) {
    std::map<std::string, std::set<std::string>> row_values;
    for (ResourceId id : row.context_resources) {
      const ResourceInfo& ri = info(id);
      // Full path (sans leading '/') rather than base name: processors named
      // "p0" on different nodes must count as different values.
      row_values[ri.type_path].insert(ri.full_name.substr(1));
    }
    for (auto& [type, names] : row_values) {
      by_type[type].push_back(util::join({names.begin(), names.end()}, ","));
    }
  }
  return by_type;
}

std::vector<std::string> ResultTable::freeResourceTypes() {
  std::vector<std::string> out;
  for (const auto& [type, values] : columnValuesByType()) {
    // Hide types whose value is identical on every row AND which appear on
    // every row (no information), per the paper's Add Columns dialog.
    const bool on_every_row = values.size() == rows_.size();
    const bool all_identical =
        std::all_of(values.begin(), values.end(),
                    [&](const std::string& v) { return v == values.front(); });
    if (!(on_every_row && all_identical)) out.push_back(type);
  }
  return out;
}

void ResultTable::addColumn(const std::string& type_path) {
  if (std::find(extra_columns_.begin(), extra_columns_.end(), type_path) !=
      extra_columns_.end()) {
    return;
  }
  std::map<ResourceId, ResourceInfo> info_cache;
  for (ResultRow& row : rows_) {
    std::set<std::string> names;
    for (ResourceId id : row.context_resources) {
      auto it = info_cache.find(id);
      if (it == info_cache.end()) {
        it = info_cache.emplace(id, store_->resourceInfo(id)).first;
      }
      if (it->second.type_path == type_path) names.insert(it->second.full_name.substr(1));
    }
    row.extra_columns[type_path] = util::join({names.begin(), names.end()}, ",");
  }
  extra_columns_.push_back(type_path);
}

std::string ResultTable::cellText(const ResultRow& row, const std::string& column) const {
  if (column == "execution") return row.execution;
  if (column == "metric") return row.metric;
  if (column == "tool") return row.tool;
  if (column == "value") return util::formatReal(row.value);
  if (column == "units") return row.units;
  const auto it = row.extra_columns.find(column);
  if (it != row.extra_columns.end()) return it->second;
  throw ModelError("ResultTable: no column named '" + column + "'");
}

void ResultTable::sortBy(const std::string& column, bool descending) {
  const bool numeric = column == "value";
  auto less = [&](const ResultRow& a, const ResultRow& b) {
    if (numeric) return a.value < b.value;
    return cellText(a, column) < cellText(b, column);
  };
  if (descending) {
    std::stable_sort(rows_.begin(), rows_.end(),
                     [&](const ResultRow& a, const ResultRow& b) { return less(b, a); });
  } else {
    std::stable_sort(rows_.begin(), rows_.end(), less);
  }
}

void ResultTable::filterRows(const std::string& column, const std::string& comparator,
                             const std::string& value) {
  std::erase_if(rows_, [&](const ResultRow& row) {
    return !util::comparePredicate(cellText(row, column), comparator, value);
  });
}

namespace {

std::vector<std::string> headerColumns(const std::vector<std::string>& extra) {
  std::vector<std::string> cols = {"execution", "metric", "tool", "value", "units"};
  cols.insert(cols.end(), extra.begin(), extra.end());
  return cols;
}

}  // namespace

void ResultTable::toCsv(std::ostream& out) const {
  const auto cols = headerColumns(extra_columns_);
  util::writeCsvRow(out, cols);
  for (const ResultRow& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(cols.size());
    for (const std::string& col : cols) cells.push_back(cellText(row, col));
    util::writeCsvRow(out, cells);
  }
}

std::string ResultTable::toText() const {
  const auto cols = headerColumns(extra_columns_);
  std::vector<std::size_t> widths;
  widths.reserve(cols.size());
  for (const auto& c : cols) widths.push_back(c.size());
  std::vector<std::vector<std::string>> grid;
  grid.reserve(rows_.size());
  for (const ResultRow& row : rows_) {
    std::vector<std::string> cells;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      cells.push_back(cellText(row, cols[i]));
      widths[i] = std::max(widths[i], cells.back().size());
    }
    grid.push_back(std::move(cells));
  }
  std::ostringstream out;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    out << cols[i] << std::string(widths[i] - cols[i].size() + 2, ' ');
  }
  out << '\n';
  for (const auto& cells : grid) {
    for (std::size_t i = 0; i < cols.size(); ++i) {
      out << cells[i] << std::string(widths[i] - cells[i].size() + 2, ' ');
    }
    out << '\n';
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// QuerySession
// ---------------------------------------------------------------------------

std::vector<std::string> QuerySession::attributeNamesForType(const std::string& type_path) {
  dbal::Connection& conn = store_->connection();
  auto cur = conn.query(
      "SELECT DISTINCT ra.name FROM resource_attribute ra "
      "JOIN resource_item r ON ra.resource_id = r.id "
      "JOIN focus_framework f ON r.focus_framework_id = f.id "
      "WHERE f.type_name = ? ORDER BY ra.name",
      {minidb::Value(type_path)});
  std::vector<std::string> out;
  minidb::Row row;
  while (cur.next(row)) out.push_back(row[0].asText());
  return out;
}

std::size_t QuerySession::addFamily(ResourceFilter filter) {
  families_.push_back(std::move(filter));
  cache_.emplace_back();
  return families_.size() - 1;
}

void QuerySession::removeFamily(std::size_t index) {
  if (index >= families_.size()) throw ModelError("QuerySession: bad family index");
  families_.erase(families_.begin() + static_cast<std::ptrdiff_t>(index));
  cache_.erase(cache_.begin() + static_cast<std::ptrdiff_t>(index));
}

void QuerySession::setExpansion(std::size_t index, Expansion expansion) {
  if (index >= families_.size()) throw ModelError("QuerySession: bad family index");
  families_[index].expand = expansion;
  cache_[index].reset();
}

const std::vector<ResourceId>& QuerySession::evaluated(std::size_t index) {
  if (!cache_[index]) cache_[index] = evaluateFamily(*store_, families_[index]);
  return *cache_[index];
}

std::size_t QuerySession::familyMatchCount(std::size_t index) {
  if (index >= families_.size()) throw ModelError("QuerySession: bad family index");
  return core::familyMatchCount(*store_, evaluated(index));
}

std::size_t QuerySession::totalMatchCount() {
  std::vector<std::vector<ResourceId>> families;
  families.reserve(families_.size());
  for (std::size_t i = 0; i < families_.size(); ++i) families.push_back(evaluated(i));
  return matchResultCount(*store_, families);
}

ResultTable QuerySession::run() {
  std::vector<std::vector<ResourceId>> families;
  families.reserve(families_.size());
  for (std::size_t i = 0; i < families_.size(); ++i) families.push_back(evaluated(i));
  const auto result_ids = matchResults(*store_, families);
  std::vector<ResultRow> rows;
  rows.reserve(result_ids.size());
  for (std::int64_t id : result_ids) {
    const PerfResultRecord rec = store_->getResult(id);
    ResultRow row;
    row.result_id = rec.id;
    row.execution = rec.execution;
    row.metric = rec.metric;
    row.tool = rec.tool;
    row.value = rec.value;
    row.units = rec.units;
    std::set<ResourceId> merged;
    for (const auto& context : rec.contexts) merged.insert(context.begin(), context.end());
    row.context_resources.assign(merged.begin(), merged.end());
    rows.push_back(std::move(row));
  }
  return ResultTable(*store_, std::move(rows));
}

}  // namespace perftrack::core
