// PerfTrack core: QuerySession — the GUI's query engine as a library.
//
// The paper's Qt GUI (§3.2) is a front-end over exactly these operations:
//   * incremental browsing (resource types -> top-level names -> children,
//     attributes fetched on demand),
//   * building a pr-filter family by family, with live match counts per
//     family and for the whole filter ("This lets users tailor queries to
//     return a reasonable number of results"),
//   * two-step retrieval: first the result rows, then a separate
//     "Add Columns" step offering only *free resources* — context resources
//     the query didn't constrain and whose names differ across the rows,
//   * sorting, filtering, bar charts, CSV export.
// We implement the engine here; src/analyze renders tables and charts, and
// the ptquery CLI plays the role of the widgets.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/datastore.h"
#include "core/filter.h"

namespace perftrack::core {

/// One row of the main-window result table (Fig. 4).
struct ResultRow {
  std::int64_t result_id = 0;
  std::string execution;
  std::string metric;
  std::string tool;
  double value = 0.0;
  std::string units;
  /// Union of the resources of every matching context of this result.
  std::vector<ResourceId> context_resources;
  /// Values of user-added free-resource columns, keyed by type path.
  std::map<std::string, std::string> extra_columns;
};

/// Retrieved result set plus the free-resource machinery.
class ResultTable {
 public:
  ResultTable(PTDataStore& store, std::vector<ResultRow> rows)
      : store_(&store), rows_(std::move(rows)) {}

  const std::vector<ResultRow>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }

  /// Type paths of free resources: context resource types the filter did not
  /// pin down and whose names are NOT identical across all rows (identical
  /// columns carry no information; the paper's GUI hides them).
  std::vector<std::string> freeResourceTypes();

  /// Adds a display column for `type_path`, filling each row with the
  /// base name(s) of its context resources of that type (comma-joined).
  void addColumn(const std::string& type_path);

  const std::vector<std::string>& extraColumns() const { return extra_columns_; }

  /// Sorts rows by a column: "execution", "metric", "tool", "value", "units",
  /// or any added free-resource column.
  void sortBy(const std::string& column, bool descending = false);

  /// Keeps only rows whose column satisfies comparator/value (same
  /// comparator grammar as attribute predicates).
  void filterRows(const std::string& column, const std::string& comparator,
                  const std::string& value);

  /// Writes the table as CSV (the paper's spreadsheet-import path).
  void toCsv(std::ostream& out) const;

  /// Renders an aligned text table.
  std::string toText() const;

 private:
  std::string cellText(const ResultRow& row, const std::string& column) const;
  /// type path -> set of value strings observed across rows.
  std::map<std::string, std::vector<std::string>> columnValuesByType();

  PTDataStore* store_;
  std::vector<ResultRow> rows_;
  std::vector<std::string> extra_columns_;
};

/// An interactive query-building session.
class QuerySession {
 public:
  explicit QuerySession(PTDataStore& store) : store_(&store) {}

  // --- browsing (incremental, on demand — §3.2 implementation notes) ------
  std::vector<std::string> resourceTypes() { return store_->resourceTypes(); }
  std::vector<ResourceInfo> topLevelResources(const std::string& root_type) {
    return store_->topLevelOfType(root_type);
  }
  std::vector<ResourceInfo> childrenOf(ResourceId id) { return store_->childrenOf(id); }
  std::vector<AttributeInfo> attributesOf(ResourceId id) {
    return store_->attributesOf(id);
  }
  /// Distinct attribute names seen on resources of one type (the left-hand
  /// attribute list of the selection dialog).
  std::vector<std::string> attributeNamesForType(const std::string& type_path);

  // --- pr-filter construction ----------------------------------------------
  /// Adds a family; returns its index.
  std::size_t addFamily(ResourceFilter filter);
  void removeFamily(std::size_t index);
  void setExpansion(std::size_t index, Expansion expansion);
  const std::vector<ResourceFilter>& families() const { return families_; }

  /// Number of results this family matches by itself (Fig. 3 live count).
  std::size_t familyMatchCount(std::size_t index);
  /// Number of results the entire pr-filter matches.
  std::size_t totalMatchCount();

  /// Executes the query and returns the result table.
  ResultTable run();

 private:
  /// Evaluates (or returns the cached evaluation of) one family. The
  /// reference stays valid until the family list or its expansion changes.
  const std::vector<ResourceId>& evaluated(std::size_t index);

  PTDataStore* store_;
  std::vector<ResourceFilter> families_;
  // Families are re-evaluated lazily; the cache is keyed by describe().
  std::vector<std::optional<std::vector<ResourceId>>> cache_;
};

}  // namespace perftrack::core
