#include "core/reports.h"

#include <functional>
#include <sstream>

namespace perftrack::core {

std::string executionReport(PTDataStore& store) {
  const auto rs = store.connection().exec(
      "SELECT e.name, a.name, COUNT(pr.id) AS results "
      "FROM execution e "
      "JOIN application a ON e.application_id = a.id "
      "JOIN performance_result pr ON pr.execution_id = e.id "
      "GROUP BY e.name, a.name ORDER BY e.name");
  std::ostringstream out;
  out << "execution report\n";
  for (const auto& row : rs.rows) {
    out << "  " << row[0].asText() << "  app=" << row[1].asText()
        << "  results=" << row[2].asInt() << "\n";
  }
  return out.str();
}

std::string storeReport(PTDataStore& store) {
  const StoreStats s = store.stats();
  std::ostringstream out;
  out << "store report\n"
      << "  resource types:      " << s.resource_types << "\n"
      << "  resources:           " << s.resources << "\n"
      << "  resource attributes: " << s.attributes << "\n"
      << "  metrics:             " << s.metrics << "\n"
      << "  executions:          " << s.executions << "\n"
      << "  performance results: " << s.performance_results << "\n"
      << "  contexts (foci):     " << s.foci << "\n"
      << "  store size:          " << s.size_bytes << " bytes\n";
  return out.str();
}

std::string resourceTreeReport(PTDataStore& store, const std::string& root_type,
                               int max_depth) {
  std::ostringstream out;
  out << "resource tree: " << root_type << "\n";
  std::function<void(const ResourceInfo&, int)> walk = [&](const ResourceInfo& node,
                                                           int depth) {
    out << std::string(static_cast<std::size_t>(depth) * 2 + 2, ' ') << node.name << " ["
        << node.type_path << "]\n";
    if (depth + 1 >= max_depth) return;
    for (const ResourceInfo& child : store.childrenOf(node.id)) walk(child, depth + 1);
  };
  for (const ResourceInfo& top : store.topLevelOfType(root_type)) walk(top, 0);
  return out.str();
}

std::string metricReport(PTDataStore& store) {
  const auto rs = store.connection().exec(
      "SELECT m.name, m.units, COUNT(pr.id) "
      "FROM metric m JOIN performance_result pr ON pr.metric_id = m.id "
      "GROUP BY m.name, m.units ORDER BY m.name");
  std::ostringstream out;
  out << "metric report\n";
  for (const auto& row : rs.rows) {
    out << "  " << row[0].asText();
    if (!row[1].asText().empty()) out << " (" << row[1].asText() << ")";
    out << "  results=" << row[2].asInt() << "\n";
  }
  return out.str();
}

}  // namespace perftrack::core
