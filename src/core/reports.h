// PerfTrack core: simple reports (paper §3.3: "The user may request one of
// several simple reports.").
#pragma once

#include <string>

#include "core/datastore.h"

namespace perftrack::core {

/// Per-execution summary: application, result count, distinct metrics.
std::string executionReport(PTDataStore& store);

/// Store-wide statistics report (counts + size).
std::string storeReport(PTDataStore& store);

/// Indented resource tree for one root type (e.g. "grid"). Depth-limited.
std::string resourceTreeReport(PTDataStore& store, const std::string& root_type,
                               int max_depth = 10);

/// Metric inventory with usage counts.
std::string metricReport(PTDataStore& store);

}  // namespace perftrack::core
