#include "core/typesystem.h"

#include "util/error.h"
#include "util/strings.h"

namespace perftrack::core {

const std::vector<std::string>& baseHierarchicalTypes() {
  static const std::vector<std::string> kTypes = {
      "build/module/function/codeBlock",
      "grid/machine/partition/node/processor",
      "environment/module/function/codeBlock",
      "execution/process/thread",
      "time/interval",
  };
  return kTypes;
}

const std::vector<std::string>& baseSingleLevelTypes() {
  static const std::vector<std::string> kTypes = {
      "application",  "compiler", "preprocessor",    "inputDeck",
      "submission",   "operatingSystem", "metric",   "performanceTool",
  };
  return kTypes;
}

std::vector<std::string> splitTypePath(std::string_view path) {
  if (path.empty()) throw util::ModelError("empty resource type path");
  auto segments = util::split(path, '/');
  for (const std::string& s : segments) {
    if (s.empty()) {
      throw util::ModelError("bad resource type path '" + std::string(path) + "'");
    }
  }
  return segments;
}

std::vector<std::string> splitResourceName(std::string_view full_name) {
  if (full_name.size() < 2 || full_name.front() != '/') {
    throw util::ModelError("resource name must start with '/': '" +
                           std::string(full_name) + "'");
  }
  auto segments = util::split(full_name.substr(1), '/');
  for (const std::string& s : segments) {
    if (s.empty()) {
      throw util::ModelError("bad resource name '" + std::string(full_name) + "'");
    }
  }
  return segments;
}

std::string joinResourceName(const std::vector<std::string>& segments) {
  std::string out;
  for (const std::string& s : segments) {
    out.push_back('/');
    out.append(s);
  }
  return out;
}

std::string typeBaseName(std::string_view type_path) {
  const auto pos = type_path.rfind('/');
  return std::string(pos == std::string_view::npos ? type_path
                                                   : type_path.substr(pos + 1));
}

}  // namespace perftrack::core
