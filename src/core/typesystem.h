// PerfTrack core: the extensible resource type system (paper §2.1, Figure 2).
//
// Resource types form trees written as Unix-style paths:
//   grid/machine/partition/node/processor
// Non-hierarchical types are single-level hierarchies ("application").
// A base set of types is loaded at store initialization *through the same
// extension interface users call to add new hierarchies* — exactly as the
// paper describes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace perftrack::core {

/// The base type hierarchies of Figure 2.
/// build/module/function/codeBlock      - static code location
/// grid/machine/partition/node/processor - hardware
/// environment/module/function/codeBlock - runtime (dynamic) code location
/// execution/process/thread             - running processes
/// time/interval                        - execution phases
const std::vector<std::string>& baseHierarchicalTypes();

/// The base non-hierarchical types of Figure 2: application, compiler,
/// preprocessor, inputDeck, submission, operatingSystem, metric,
/// performanceTool.
const std::vector<std::string>& baseSingleLevelTypes();

/// Splits a type path ("a/b/c" -> {"a","b","c"}); rejects empty segments.
std::vector<std::string> splitTypePath(std::string_view path);

/// Splits a full resource name ("/Frost/batch/n1" -> {"Frost","batch","n1"}).
/// The leading '/' is required; empty segments are rejected.
std::vector<std::string> splitResourceName(std::string_view full_name);

/// Joins segments back into a full resource name with a leading '/'.
std::string joinResourceName(const std::vector<std::string>& segments);

/// Last segment of a type path ("grid/machine" -> "machine").
std::string typeBaseName(std::string_view type_path);

}  // namespace perftrack::core
