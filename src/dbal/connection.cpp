#include "dbal/connection.h"

#include "dbal/remote.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace perftrack::dbal {

namespace {

using minidb::sql::Statement;

/// Process-wide mirrors of the per-connection StatementCacheStats, so the
/// metrics endpoint can report cache behavior across all sessions.
struct StmtCacheCounters {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Counter& invalidations;
};

StmtCacheCounters& stmtCacheCounters() {
  auto& reg = obs::Registry::global();
  static StmtCacheCounters* c = new StmtCacheCounters{
      reg.counter("pt_stmt_cache_hits_total"),
      reg.counter("pt_stmt_cache_misses_total"),
      reg.counter("pt_stmt_cache_evictions_total"),
      reg.counter("pt_stmt_cache_invalidations_total"),
  };
  return *c;
}

/// Only plain DML/query statements are worth caching; DDL, transaction
/// control, and VACUUM are rare and invalidate plans anyway.
bool cacheableKind(Statement::Kind kind) {
  switch (kind) {
    case Statement::Kind::Select:
    case Statement::Kind::Insert:
    case Statement::Kind::Update:
    case Statement::Kind::Delete:
      return true;
    default:
      return false;
  }
}

bool ddlKind(Statement::Kind kind) {
  switch (kind) {
    case Statement::Kind::CreateTable:
    case Statement::Kind::CreateIndex:
    case Statement::Kind::Drop:
      return true;
    default:
      return false;
  }
}

/// Local cursor backend: minidb's pipeline cursor plus a shared reference
/// to its prepared statement, so statement-cache eviction or DDL-triggered
/// cache clears cannot free the plan mid-scan. While open, storage-layer
/// DDL/VACUUM/DML throw.
class LocalCursorImpl final : public Cursor::Impl {
 public:
  LocalCursorImpl(minidb::sql::Cursor inner,
                  std::shared_ptr<minidb::sql::PreparedStatement> stmt)
      : inner_(std::move(inner)), stmt_(std::move(stmt)) {}

  const std::vector<std::string>& columns() const override {
    return inner_.columns();
  }
  bool next(minidb::Row& row) override { return inner_.next(row); }
  bool fetchBatch(minidb::sql::RowBatch& batch) override {
    return inner_.fetchBatch(batch);
  }
  void close() override { inner_.close(); }
  bool isOpen() const override { return inner_.isOpen(); }

 private:
  minidb::sql::Cursor inner_;
  std::shared_ptr<minidb::sql::PreparedStatement> stmt_;  // keeps the plan alive
};

}  // namespace

// --- Connection (shared surface) ---------------------------------------------

std::unique_ptr<Connection> Connection::open(const std::string& path) {
  return open(path, minidb::OpenOptions{});
}

std::unique_ptr<Connection> Connection::open(const std::string& path,
                                             const minidb::OpenOptions& options) {
  if (path.rfind(kRemoteScheme, 0) == 0) {
    return RemoteConnection::connect(path.substr(std::string_view(kRemoteScheme).size()));
  }
  return LocalConnection::open(path, options);
}

const StatementCacheStats& Connection::statementCacheStats() const {
  static const StatementCacheStats kEmpty;
  return kEmpty;
}

core::diag::Report Connection::diff(const core::diag::Request&) {
  throw util::SqlError("this connection does not support DIFF");
}

minidb::Database& Connection::database() {
  throw util::SqlError(
      "this connection has no local database (remote ptserverd session)");
}

minidb::Value Connection::queryValue(std::string_view sql) {
  const ResultSet rs = exec(sql);
  if (rs.rows.empty() || rs.rows[0].empty()) return minidb::Value::null();
  return rs.rows[0][0];
}

minidb::Value Connection::queryValue(std::string_view sql,
                                     std::vector<minidb::Value> params) {
  const ResultSet rs = execPrepared(sql, std::move(params));
  if (rs.rows.empty() || rs.rows[0].empty()) return minidb::Value::null();
  return rs.rows[0][0];
}

std::int64_t Connection::queryInt(std::string_view sql, std::int64_t default_value) {
  const minidb::Value v = queryValue(sql);
  return v.isInt() ? v.asInt() : default_value;
}

std::int64_t Connection::queryInt(std::string_view sql,
                                  std::vector<minidb::Value> params,
                                  std::int64_t default_value) {
  const minidb::Value v = queryValue(sql, std::move(params));
  return v.isInt() ? v.asInt() : default_value;
}

// --- LocalConnection ---------------------------------------------------------

std::unique_ptr<LocalConnection> LocalConnection::open(
    const std::string& path, const minidb::OpenOptions& options) {
  auto db = path == ":memory:" ? minidb::Database::openMemory()
                               : minidb::Database::open(path, options);
  return std::unique_ptr<LocalConnection>(new LocalConnection(std::move(db)));
}

std::shared_ptr<minidb::sql::PreparedStatement> LocalConnection::prepared(
    std::string_view sql) {
  const auto it = cache_map_.find(sql);
  if (it != cache_map_.end()) {
    if (!it->second->stmt->hasOpenCursor()) {
      ++stats_.hits;
      stmtCacheCounters().hits.inc();
      cache_.splice(cache_.begin(), cache_, it->second);
      return it->second->stmt;
    }
    // An open cursor is stepping the cached statement; its parameter values
    // live in the shared AST, so hand out a fresh uncached statement rather
    // than corrupting the scan in progress.
    ++stats_.misses;
    stmtCacheCounters().misses.inc();
    return std::make_shared<minidb::sql::PreparedStatement>(engine_.prepare(sql));
  }
  ++stats_.misses;
  stmtCacheCounters().misses.inc();
  auto stmt = std::make_shared<minidb::sql::PreparedStatement>(engine_.prepare(sql));
  if (cache_capacity_ == 0 || !cacheableKind(stmt->kind())) return stmt;
  cache_.push_front(CacheEntry{std::string(sql), stmt});
  cache_map_.emplace(std::string_view(cache_.front().sql), cache_.begin());
  while (cache_.size() > cache_capacity_) {
    cache_map_.erase(std::string_view(cache_.back().sql));
    cache_.pop_back();
    ++stats_.evictions;
    stmtCacheCounters().evictions.inc();
  }
  return stmt;
}

void LocalConnection::dropEntries(std::uint64_t* counter) {
  if (counter != nullptr) *counter += cache_.size();
  stmtCacheCounters().invalidations.inc(cache_.size());
  cache_map_.clear();
  cache_.clear();
}

ResultSet LocalConnection::exec(std::string_view sql) {
  const auto stmt = prepared(sql);
  if (stmt->paramCount() > 0) {
    throw util::SqlError("statement has " + std::to_string(stmt->paramCount()) +
                         " '?' parameter(s); use execPrepared()");
  }
  const bool ddl = ddlKind(stmt->kind());
  ResultSet rs = stmt->execute();
  // Drop cached statements after DDL: their plans reference dropped catalog
  // objects. (Plans would also self-invalidate via the schema epoch; the
  // explicit clear keeps the cache from pinning dead TableDefs. Statements
  // pinned by an open cursor survive via their shared_ptr.)
  if (ddl) dropEntries(&stats_.invalidations);
  return rs;
}

ResultSet LocalConnection::execPrepared(std::string_view sql,
                                        std::vector<minidb::Value> params) {
  const auto stmt = prepared(sql);
  const bool ddl = ddlKind(stmt->kind());
  ResultSet rs = stmt->execute(std::move(params));
  if (ddl) dropEntries(&stats_.invalidations);
  return rs;
}

Cursor LocalConnection::query(std::string_view sql) {
  auto stmt = prepared(sql);
  if (stmt->paramCount() > 0) {
    throw util::SqlError("statement has " + std::to_string(stmt->paramCount()) +
                         " '?' parameter(s); use query(sql, params)");
  }
  minidb::sql::Cursor inner = stmt->openCursor();
  return Cursor(std::make_unique<LocalCursorImpl>(std::move(inner), std::move(stmt)));
}

Cursor LocalConnection::query(std::string_view sql,
                              std::vector<minidb::Value> params) {
  auto stmt = prepared(sql);
  stmt->bindAll(std::move(params));
  minidb::sql::Cursor inner = stmt->openCursor();
  return Cursor(std::make_unique<LocalCursorImpl>(std::move(inner), std::move(stmt)));
}

void LocalConnection::setUseIndexes(bool enabled) {
  if (enabled == engine_.useIndexes()) return;
  engine_.setUseIndexes(enabled);
  dropEntries(&stats_.invalidations);
}

void LocalConnection::setInvidxEnabled(bool enabled) {
  if (enabled == engine_.invidx()) return;
  engine_.setInvidx(enabled);
  dropEntries(&stats_.invalidations);
}

void LocalConnection::setStatementCacheCapacity(std::size_t capacity) {
  cache_capacity_ = capacity;
  while (cache_.size() > cache_capacity_) {
    cache_map_.erase(std::string_view(cache_.back().sql));
    cache_.pop_back();
    ++stats_.evictions;
    stmtCacheCounters().evictions.inc();
  }
}

}  // namespace perftrack::dbal
