#include "dbal/connection.h"

namespace perftrack::dbal {

std::unique_ptr<Connection> Connection::open(const std::string& path) {
  auto db = path == ":memory:" ? minidb::Database::openMemory()
                               : minidb::Database::open(path);
  return std::unique_ptr<Connection>(new Connection(std::move(db)));
}

minidb::Value Connection::queryValue(std::string_view sql) {
  const ResultSet rs = exec(sql);
  if (rs.rows.empty() || rs.rows[0].empty()) return minidb::Value::null();
  return rs.rows[0][0];
}

std::int64_t Connection::queryInt(std::string_view sql, std::int64_t default_value) {
  const minidb::Value v = queryValue(sql);
  return v.isInt() ? v.asInt() : default_value;
}

}  // namespace perftrack::dbal
