// PerfTrack DB abstraction layer (dbal).
//
// The paper's prototype talks to Oracle or PostgreSQL through a thin Python
// DBI layer; PerfTrack code never depends on a specific DBMS. This library
// plays the same role in C++: a Connection facade over a SQL engine with
// interchangeable backends — file-backed ("postgres-like", durable),
// in-memory (scratch analysis sessions), and remote (a ptserverd daemon
// reached over TCP or a Unix socket; see src/server and dbal/remote.h). All
// higher layers (core, ptdf, tools) speak SQL through this interface only,
// which is what lets every CLI workflow run unchanged against a shared
// query server.
//
// For local backends, every statement routed through exec()/execPrepared()
// passes through a bounded LRU cache of prepared statements keyed by SQL
// text, so repeated statements (the rule in PerfTrack's load and query
// paths) skip the lexer/parser/planner entirely. The cache is cleared on
// DDL and when the index-ablation switch flips; cached plans additionally
// revalidate against the storage layer's schema epoch, so invalidation bugs
// degrade to replans, never to stale results.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/diag.h"
#include "minidb/database.h"
#include "minidb/sql/executor.h"

namespace perftrack::dbal {

using minidb::sql::ResultSet;

/// Counters exposed for tests and the cache-ablation benchmarks.
struct StatementCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;      // entries dropped by the LRU bound
  std::uint64_t invalidations = 0;  // entries dropped by DDL / ablation flips
};

/// A streaming SELECT cursor at the abstraction-layer level: rows are pulled
/// one at a time, so wide results never materialize client-side. Local
/// cursors step minidb's operator pipeline directly (and pin the storage
/// layer against DDL/VACUUM/DML while open); remote cursors pull bounded row
/// batches from a server-side cursor that holds the same guarantees.
class Cursor {
 public:
  /// Backend hook behind the cursor surface.
  class Impl {
   public:
    virtual ~Impl() = default;
    virtual const std::vector<std::string>& columns() const = 0;
    virtual bool next(minidb::Row& row) = 0;
    /// Batch pull. The default adapter loops next() up to `batch.capacity`
    /// rows (at least one); backends with a native batch path (local
    /// pipeline, remote wire fetch) override it.
    virtual bool fetchBatch(minidb::sql::RowBatch& batch) {
      batch.clearRows();
      if (batch.cols.empty()) batch.reset(columns().size(), 0);
      const std::size_t cap = batch.capacity > 0 ? batch.capacity : 1;
      minidb::Row row;
      while (batch.nrows < cap && next(row)) {
        batch.appendMoveValues(row);
        row.clear();
      }
      return batch.nrows > 0;
    }
    virtual void close() = 0;
    virtual bool isOpen() const = 0;
  };

  explicit Cursor(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
  Cursor(Cursor&&) = default;
  Cursor& operator=(Cursor&&) = default;

  const std::vector<std::string>& columns() const { return impl_->columns(); }

  /// Produces the next row; returns false (and auto-closes) at end.
  bool next(minidb::Row& row) { return impl_->next(row); }

  /// Pulls the next batch of rows (see minidb::sql::Cursor::fetchBatch for
  /// the capacity contract). Returns false (and auto-closes) at end.
  bool fetchBatch(minidb::sql::RowBatch& batch) {
    return impl_->fetchBatch(batch);
  }

  /// Releases the pipeline/server cursor and the statement pin early;
  /// idempotent.
  void close() { impl_->close(); }

  bool isOpen() const { return impl_ != nullptr && impl_->isOpen(); }

 private:
  std::unique_ptr<Impl> impl_;
};

/// One open database session (local file, local memory, or remote server).
class Connection {
 public:
  virtual ~Connection() = default;

  /// Opens a session on `path`:
  ///   ":memory:"            fresh in-memory store
  ///   "pt://host:port"      remote ptserverd session over TCP
  ///   "pt://unix:/sock"     remote ptserverd session over a Unix socket
  ///   anything else         file-backed store (created when missing)
  /// File-backed stores default to full durability (rollback journal +
  /// fsync; see DESIGN.md §5.2).
  static std::unique_ptr<Connection> open(const std::string& path);

  /// Opens with explicit storage options (durability mode, VFS override);
  /// ignored for ":memory:" and remote targets.
  static std::unique_ptr<Connection> open(const std::string& path,
                                          const minidb::OpenOptions& options);

  /// Executes one SQL statement (no '?' parameters). Executing
  /// parameterized SQL here throws; use execPrepared().
  virtual ResultSet exec(std::string_view sql) = 0;

  /// Executes parameterized SQL: `params` bind the '?' placeholders in
  /// order. Compiled statements are cached by SQL text (client-side for
  /// local backends, server-side for remote ones), so call sites that reuse
  /// one text with varying parameters pay for parsing/planning once.
  virtual ResultSet execPrepared(std::string_view sql,
                                 std::vector<minidb::Value> params) = 0;

  /// Opens a streaming cursor over a SELECT (or EXPLAIN). Goes through the
  /// statement cache like exec(); if the cached statement is already being
  /// stepped by another cursor, a fresh uncached statement is compiled so
  /// interleaved cursors on one connection never share bindings. The same
  /// fallback applies to exec()/execPrepared() on a busy statement.
  virtual Cursor query(std::string_view sql) = 0;
  virtual Cursor query(std::string_view sql, std::vector<minidb::Value> params) = 0;

  // --- scalar helpers for the common lookup patterns -----------------------
  /// Returns the first column of the first row, or NULL when empty.
  minidb::Value queryValue(std::string_view sql);
  minidb::Value queryValue(std::string_view sql, std::vector<minidb::Value> params);
  std::int64_t queryInt(std::string_view sql, std::int64_t default_value = 0);
  std::int64_t queryInt(std::string_view sql, std::vector<minidb::Value> params,
                        std::int64_t default_value = 0);

  // --- transactions ---------------------------------------------------------
  /// Remote sessions are autocommit-only (the server wraps each mutating
  /// statement in its own journal-protected commit); begin() there throws.
  virtual void begin() = 0;
  virtual void commit() = 0;
  virtual void rollback() = 0;
  virtual bool inTransaction() const = 0;

  /// Comparison-based diagnosis (DESIGN.md §5.10): aligns the results of
  /// `request.exec_a` and `request.exec_b` over comparable contexts and
  /// returns the divergent (metric, context) pairs ranked by contribution
  /// to the total delta. Local backends run the core::diag engine in
  /// process; remote sessions round-trip the DIFF wire verb and stream the
  /// ranked rows back, so both render byte-identical reports. Throws
  /// util::ModelError (local) or util::SqlError (remote) when either
  /// execution does not exist; the base implementation throws SqlError.
  virtual core::diag::Report diff(const core::diag::Request& request);

  /// Logical store size in bytes (Table 1's "DB size increase" numbers).
  /// For remote sessions this is one STAT round trip.
  virtual std::uint64_t sizeBytes() const = 0;

  /// Hot-journal recovery outcome of open (all-false for clean opens,
  /// in-memory stores, and remote sessions — the server recovers its own
  /// store when it starts).
  virtual const minidb::RecoveryStats& recoveryStats() const = 0;

  /// Ablation switch: disable index-assisted plans (see DESIGN.md §5).
  /// Flipping the switch drops all cached statements. Session-scoped for
  /// remote connections.
  virtual void setUseIndexes(bool enabled) = 0;

  /// Execution degree for parallel-eligible SELECTs (morsel-driven; see
  /// DESIGN.md §5.6). 0 restores the process default (PT_EXEC_THREADS or
  /// hardware concurrency); 1 forces the serial path. Remote sessions
  /// ignore it — the server decides its own degree (all sessions share one
  /// worker pool there).
  virtual void setExecThreads(int n) { (void)n; }

  /// Rows per pipeline batch for this connection's statements (see
  /// DESIGN.md §5.8). Local backends validate through
  /// Engine::setExecBatchRows (throws on 0 / absurd values); remote
  /// sessions ignore it — the server picks its own batch size.
  virtual void setExecBatchRows(std::size_t n) { (void)n; }

  /// Inverted-index switch (see DESIGN.md §5.9): whether integer IN-list
  /// probes and the core resource matcher may answer from posting-list
  /// indexes instead of per-key B+-tree descents. On by default (process
  /// default PT_INVIDX). Flipping it drops all cached statements locally;
  /// remote sessions forward it as a session option.
  virtual void setInvidxEnabled(bool enabled) { (void)enabled; }
  virtual bool invidxEnabled() const { return false; }

  // --- statement-cache introspection ----------------------------------------
  // Local backends report the real LRU numbers; the remote backend keeps no
  // client-side plan cache, so the base defaults (zeros, no-ops) apply.
  virtual std::size_t statementCacheSize() const { return 0; }
  virtual const StatementCacheStats& statementCacheStats() const;
  /// Sets the LRU bound (0 disables caching) and evicts down to it.
  virtual void setStatementCacheCapacity(std::size_t capacity) { (void)capacity; }
  virtual void clearStatementCache() {}

  /// Direct storage access (integrity checks, tests). Only local
  /// connections have one; remote connections throw SqlError.
  virtual minidb::Database& database();

  /// The in-process store, or nullptr for remote connections (the core
  /// fast paths use it to reach the inverted-index manager; remote callers
  /// fall back to SQL).
  virtual minidb::Database* localDatabase() { return nullptr; }
};

/// The in-process backends: a minidb store opened in this process (file or
/// memory), fronted by the LRU statement cache described above.
class LocalConnection final : public Connection {
 public:
  static std::unique_ptr<LocalConnection> open(const std::string& path,
                                               const minidb::OpenOptions& options);

  ResultSet exec(std::string_view sql) override;
  ResultSet execPrepared(std::string_view sql,
                         std::vector<minidb::Value> params) override;
  Cursor query(std::string_view sql) override;
  Cursor query(std::string_view sql, std::vector<minidb::Value> params) override;

  void begin() override { db_->begin(); }
  void commit() override { db_->commit(); }
  void rollback() override { db_->rollback(); }
  bool inTransaction() const override { return db_->inTransaction(); }

  core::diag::Report diff(const core::diag::Request& request) override {
    return core::diag::diagnose(engine_, request);
  }

  std::uint64_t sizeBytes() const override { return db_->sizeBytes(); }
  const minidb::RecoveryStats& recoveryStats() const override {
    return db_->recoveryStats();
  }

  void setUseIndexes(bool enabled) override;
  void setExecThreads(int n) override { engine_.setExecThreads(n); }
  void setExecBatchRows(std::size_t n) override { engine_.setExecBatchRows(n); }
  void setInvidxEnabled(bool enabled) override;
  bool invidxEnabled() const override { return engine_.invidx(); }

  std::size_t statementCacheSize() const override { return cache_.size(); }
  const StatementCacheStats& statementCacheStats() const override { return stats_; }
  void setStatementCacheCapacity(std::size_t capacity) override;
  void clearStatementCache() override { dropEntries(nullptr); }

  minidb::Database& database() override { return *db_; }
  minidb::Database* localDatabase() override { return db_.get(); }

 private:
  explicit LocalConnection(std::unique_ptr<minidb::Database> db)
      : db_(std::move(db)), engine_(*db_) {}

  struct CacheEntry {
    std::string sql;
    std::shared_ptr<minidb::sql::PreparedStatement> stmt;
  };

  /// Returns the cached statement for `sql`, compiling and (when the
  /// statement kind is cacheable) inserting it on miss. When the cached
  /// statement is busy (an open cursor is stepping it), compiles a fresh
  /// uncached statement instead — this covers query() AND exec()/
  /// execPrepared(), so a statement mid-scan is never re-entered.
  std::shared_ptr<minidb::sql::PreparedStatement> prepared(std::string_view sql);
  void dropEntries(std::uint64_t* counter);

  std::unique_ptr<minidb::Database> db_;
  minidb::sql::Engine engine_;

  // MRU-ordered entry list plus an index keyed by string_views into the
  // entries' own SQL strings (list nodes never move, so the views and
  // iterators stay valid across splices).
  std::list<CacheEntry> cache_;
  std::unordered_map<std::string_view, std::list<CacheEntry>::iterator> cache_map_;
  std::size_t cache_capacity_ = 256;
  StatementCacheStats stats_;
};

}  // namespace perftrack::dbal
