// PerfTrack DB abstraction layer (dbal).
//
// The paper's prototype talks to Oracle or PostgreSQL through a thin Python
// DBI layer; PerfTrack code never depends on a specific DBMS. This library
// plays the same role in C++: a Connection facade over a SQL engine with two
// interchangeable backends — file-backed ("postgres-like", durable) and
// in-memory (scratch analysis sessions). All higher layers (core, ptdf,
// tools) speak SQL through this interface only.
//
// Every statement routed through exec()/execPrepared() passes through a
// bounded LRU cache of prepared statements keyed by SQL text, so repeated
// statements (the rule in PerfTrack's load and query paths) skip the
// lexer/parser/planner entirely. The cache is cleared on DDL and when the
// index-ablation switch flips; cached plans additionally revalidate against
// the storage layer's schema epoch, so invalidation bugs degrade to replans,
// never to stale results.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "minidb/database.h"
#include "minidb/sql/executor.h"

namespace perftrack::dbal {

using minidb::sql::ResultSet;

/// Counters exposed for tests and the cache-ablation benchmarks.
struct StatementCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;      // entries dropped by the LRU bound
  std::uint64_t invalidations = 0;  // entries dropped by DDL / ablation flips
};

class Connection;

/// A streaming SELECT cursor at the abstraction-layer level: rows are pulled
/// one at a time from minidb's operator pipeline, so wide results never
/// materialize. Holds a shared reference to its prepared statement, so
/// statement-cache eviction or DDL-triggered cache clears cannot free the
/// plan mid-scan. While open, storage-layer DDL/VACUUM/DML throw.
class Cursor {
 public:
  Cursor(Cursor&&) = default;
  Cursor& operator=(Cursor&&) = default;

  const std::vector<std::string>& columns() const { return inner_.columns(); }

  /// Produces the next row; returns false (and auto-closes) at end.
  bool next(minidb::Row& row) { return inner_.next(row); }

  /// Releases the pipeline and the statement pin early; idempotent.
  void close() { inner_.close(); }

  bool isOpen() const { return inner_.isOpen(); }

 private:
  friend class Connection;
  Cursor(minidb::sql::Cursor inner,
         std::shared_ptr<minidb::sql::PreparedStatement> stmt)
      : inner_(std::move(inner)), stmt_(std::move(stmt)) {}

  minidb::sql::Cursor inner_;
  std::shared_ptr<minidb::sql::PreparedStatement> stmt_;  // keeps the plan alive
};

/// One open database session.
class Connection {
 public:
  /// Opens `path`, or a fresh in-memory store when path == ":memory:".
  /// File-backed stores default to full durability (rollback journal +
  /// fsync; see DESIGN.md §5.2).
  static std::unique_ptr<Connection> open(const std::string& path);

  /// Opens with explicit storage options (durability mode, VFS override);
  /// ignored for ":memory:".
  static std::unique_ptr<Connection> open(const std::string& path,
                                          const minidb::OpenOptions& options);

  /// Executes one SQL statement (no '?' parameters) through the statement
  /// cache. Executing parameterized SQL here throws; use execPrepared().
  ResultSet exec(std::string_view sql);

  /// Executes parameterized SQL: `params` bind the '?' placeholders in
  /// order. The compiled statement is cached by SQL text, so call sites that
  /// reuse one text with varying parameters pay for parsing/planning once.
  ResultSet execPrepared(std::string_view sql, std::vector<minidb::Value> params);

  /// Opens a streaming cursor over a SELECT (or EXPLAIN). Goes through the
  /// statement cache like exec(); if the cached statement is already being
  /// stepped by another cursor, a fresh uncached statement is compiled so
  /// interleaved cursors on one connection never share bindings.
  Cursor query(std::string_view sql);
  Cursor query(std::string_view sql, std::vector<minidb::Value> params);

  /// Scalar helpers for the common lookup patterns.
  /// Returns the first column of the first row, or NULL when empty.
  minidb::Value queryValue(std::string_view sql);
  minidb::Value queryValue(std::string_view sql, std::vector<minidb::Value> params);
  std::int64_t queryInt(std::string_view sql, std::int64_t default_value = 0);
  std::int64_t queryInt(std::string_view sql, std::vector<minidb::Value> params,
                        std::int64_t default_value = 0);

  void begin() { db_->begin(); }
  void commit() { db_->commit(); }
  void rollback() { db_->rollback(); }
  bool inTransaction() const { return db_->inTransaction(); }

  /// Logical store size in bytes (Table 1's "DB size increase" numbers).
  std::uint64_t sizeBytes() const { return db_->sizeBytes(); }

  /// Hot-journal recovery outcome of open (all-false for clean opens and
  /// in-memory stores). Tools report this so an operator knows a crashed
  /// load was rolled back.
  const minidb::RecoveryStats& recoveryStats() const { return db_->recoveryStats(); }

  /// Ablation switch: disable index-assisted plans (see DESIGN.md §5).
  /// Flipping the switch drops all cached statements.
  void setUseIndexes(bool enabled);

  // --- statement-cache introspection ----------------------------------------
  std::size_t statementCacheSize() const { return cache_.size(); }
  const StatementCacheStats& statementCacheStats() const { return stats_; }
  /// Sets the LRU bound (0 disables caching) and evicts down to it.
  void setStatementCacheCapacity(std::size_t capacity);
  void clearStatementCache();

  minidb::Database& database() { return *db_; }

 private:
  explicit Connection(std::unique_ptr<minidb::Database> db)
      : db_(std::move(db)), engine_(*db_) {}

  struct CacheEntry {
    std::string sql;
    std::shared_ptr<minidb::sql::PreparedStatement> stmt;
  };

  /// Returns the cached statement for `sql`, compiling and (when the
  /// statement kind is cacheable) inserting it on miss. When the cached
  /// statement is busy (an open cursor is stepping it), compiles a fresh
  /// uncached statement instead. The shared_ptr keeps the statement alive
  /// across eviction and DDL cache clears.
  std::shared_ptr<minidb::sql::PreparedStatement> prepared(std::string_view sql);
  void dropEntries(std::uint64_t* counter);

  std::unique_ptr<minidb::Database> db_;
  minidb::sql::Engine engine_;

  // MRU-ordered entry list plus an index keyed by string_views into the
  // entries' own SQL strings (list nodes never move, so the views and
  // iterators stay valid across splices).
  std::list<CacheEntry> cache_;
  std::unordered_map<std::string_view, std::list<CacheEntry>::iterator> cache_map_;
  std::size_t cache_capacity_ = 256;
  StatementCacheStats stats_;
};

}  // namespace perftrack::dbal
