// PerfTrack DB abstraction layer (dbal).
//
// The paper's prototype talks to Oracle or PostgreSQL through a thin Python
// DBI layer; PerfTrack code never depends on a specific DBMS. This library
// plays the same role in C++: a Connection facade over a SQL engine with two
// interchangeable backends — file-backed ("postgres-like", durable) and
// in-memory (scratch analysis sessions). All higher layers (core, ptdf,
// tools) speak SQL through this interface only.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "minidb/database.h"
#include "minidb/sql/executor.h"

namespace perftrack::dbal {

using minidb::sql::ResultSet;

/// One open database session.
class Connection {
 public:
  /// Opens `path`, or a fresh in-memory store when path == ":memory:".
  static std::unique_ptr<Connection> open(const std::string& path);

  /// Executes one SQL statement.
  ResultSet exec(std::string_view sql) { return engine_.exec(sql); }

  /// Scalar helpers for the common lookup patterns.
  /// Returns the first column of the first row, or NULL when empty.
  minidb::Value queryValue(std::string_view sql);
  std::int64_t queryInt(std::string_view sql, std::int64_t default_value = 0);

  void begin() { db_->begin(); }
  void commit() { db_->commit(); }
  void rollback() { db_->rollback(); }
  bool inTransaction() const { return db_->inTransaction(); }

  /// Logical store size in bytes (Table 1's "DB size increase" numbers).
  std::uint64_t sizeBytes() const { return db_->sizeBytes(); }

  /// Ablation switch: disable index-assisted plans (see DESIGN.md §5).
  void setUseIndexes(bool enabled) { engine_.setUseIndexes(enabled); }

  minidb::Database& database() { return *db_; }

 private:
  explicit Connection(std::unique_ptr<minidb::Database> db)
      : db_(std::move(db)), engine_(*db_) {}

  std::unique_ptr<minidb::Database> db_;
  minidb::sql::Engine engine_;
};

}  // namespace perftrack::dbal
