#include "dbal/remote.h"

#include <deque>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/net.h"
#include "server/protocol.h"
#include "util/error.h"

namespace perftrack::dbal {

namespace {

using server::ErrCode;
using server::Frame;
using server::NetError;
using server::Op;
using server::WireReader;
using server::WireWriter;

/// Maps an ERROR frame back onto the exception the local backend would
/// have thrown for the same mistake.
[[noreturn]] void throwServerError(const Frame& frame) {
  const auto [code, message] = server::readError(frame);
  switch (code) {
    case ErrCode::Sql:
    case ErrCode::BadState:
      throw util::SqlError(message);
    case ErrCode::Storage:
      throw util::StorageError(message);
    case ErrCode::Busy:
      throw ServerBusyError(message);
    case ErrCode::Shutdown:
      throw NetError("server is shutting down: " + message);
    default:
      throw NetError("server error (" + std::string(server::errCodeName(code)) +
                     "): " + message);
  }
}

}  // namespace

// --- Wire --------------------------------------------------------------------

/// The socket plus its in-flight discipline. Shared (shared_ptr) between
/// the connection and any open cursors, so a cursor outliving its
/// connection degrades to a clean NetError instead of a dangling pointer.
struct RemoteConnection::Wire {
  server::Socket sock;
  bool alive = false;

  /// One request, one response. An ERROR response is returned (not thrown)
  /// so call sites choose the mapping; transport failures mark the wire
  /// dead — the request/response framing cannot be trusted afterwards.
  Frame roundtrip(const Frame& request) {
    if (!alive) throw NetError("connection to ptserverd is closed");
    try {
      sock.sendFrame(request);
      std::optional<Frame> response = sock.recvFrame();
      if (!response.has_value()) {
        throw NetError("ptserverd closed the connection");
      }
      return std::move(*response);
    } catch (const NetError&) {
      alive = false;
      sock.close();
      throw;
    }
  }

  /// roundtrip + require a specific response opcode.
  Frame expect(const Frame& request, Op want) {
    Frame response = roundtrip(request);
    if (response.op == Op::Error) throwServerError(response);
    if (response.op != want) {
      throw NetError(std::string("protocol mismatch: expected ") +
                     std::string(server::opName(want)) + ", got " +
                     std::string(server::opName(response.op)));
    }
    return response;
  }
};

// --- StmtHandle --------------------------------------------------------------

struct RemoteConnection::StmtHandle {
  std::shared_ptr<Wire> wire;
  std::uint32_t id = 0;
  int param_count = 0;
  minidb::sql::Statement::Kind kind = minidb::sql::Statement::Kind::Select;
  bool cursor_open = false;  // a RemoteCursorImpl is streaming this handle
  bool cached = false;       // temporaries are closed when their use ends

  /// Best-effort server-side release; the wire may already be gone.
  void closeRemote() {
    if (wire == nullptr || !wire->alive) return;
    WireWriter w;
    w.u32(id);
    try {
      wire->roundtrip(server::makeFrame(Op::CloseStmt, std::move(w)));
    } catch (const NetError&) {
    }
  }
};

// --- RemoteCursorImpl --------------------------------------------------------

/// Streams a server-side cursor in bounded batches. The handle's busy flag
/// stays set while the server-side cursor is open, which is what triggers
/// the temporary-statement fallback for interleaved exec()/query() calls.
class RemoteCursorImpl final : public Cursor::Impl {
 public:
  RemoteCursorImpl(std::shared_ptr<RemoteConnection::Wire> wire,
                   std::shared_ptr<RemoteConnection::StmtHandle> stmt,
                   std::uint32_t cursor_id, std::vector<std::string> columns)
      : wire_(std::move(wire)),
        stmt_(std::move(stmt)),
        cursor_id_(cursor_id),
        columns_(std::move(columns)) {}

  /// Arms client-side span recording: the trace (prepare/bind spans already
  /// filled by the connection) is completed with the streaming wall time and
  /// row count when the cursor closes.
  void arm(obs::QueryTrace trace) {
    traced_ = true;
    trace_ = std::move(trace);
    exec_timer_ = obs::StageTimer();
  }

  ~RemoteCursorImpl() override {
    try {
      close();
    } catch (...) {
    }
  }

  const std::vector<std::string>& columns() const override { return columns_; }

  bool next(minidb::Row& row) override {
    if (buffer_.empty() && !server_done_ && open_) refill();
    if (buffer_.empty()) {
      close();
      return false;
    }
    row = std::move(buffer_.front());
    buffer_.pop_front();
    if (traced_) ++trace_.rows;
    return true;
  }

  /// Native batch pull: one FETCH round trip decodes straight into the
  /// batch's columns — no per-row deque hop. `capacity` caps the requested
  /// wire batch (0 = server default); interleaving with next() is safe,
  /// because rows next() pre-pulled into the buffer are emitted first.
  bool fetchBatch(minidb::sql::RowBatch& batch) override {
    batch.clearRows();
    if (batch.cols.size() != columns_.size()) batch.reset(columns_.size(), 0);
    if (!open_) return false;
    const std::size_t cap = batch.capacity;
    while (!buffer_.empty() && (cap == 0 || batch.nrows < cap)) {
      batch.appendMoveValues(buffer_.front());
      buffer_.pop_front();
    }
    // Empty ROWS responses imply done, so this terminates in one round trip.
    while (batch.nrows == 0 && !server_done_) {
      WireWriter w;
      w.u32(cursor_id_);
      w.u32(cap > 0xffffffffu ? 0 : static_cast<std::uint32_t>(cap));
      Frame response = wire_->expect(server::makeFrame(Op::Fetch, std::move(w)),
                                     Op::Rows);
      WireReader r(response.payload);
      server_done_ = r.u8() != 0;
      const std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t ncols = r.u32();
        for (std::uint32_t c = 0; c < ncols; ++c) {
          minidb::Value v = r.value();
          if (c < batch.cols.size()) batch.cols[c].push_back(std::move(v));
        }
        for (std::size_t c = ncols; c < batch.cols.size(); ++c) {
          batch.cols[c].push_back(minidb::Value());
        }
        batch.sel.push_back(static_cast<std::uint32_t>(batch.nrows++));
      }
      if (server_done_) releaseStmt();
    }
    if (batch.nrows == 0) {
      close();
      return false;
    }
    if (traced_) trace_.rows += batch.active();
    return true;
  }

  void close() override {
    if (!open_) return;
    open_ = false;
    if (traced_) {
      trace_.exec_us = exec_timer_.elapsedUs();
      obs::Tracer::global().record(std::move(trace_));
      traced_ = false;
    }
    buffer_.clear();
    releaseStmt();
    if (!server_done_ && wire_->alive) {
      WireWriter w;
      w.u32(cursor_id_);
      try {
        wire_->roundtrip(server::makeFrame(Op::CloseCursor, std::move(w)));
      } catch (const NetError&) {
      }
    }
  }

  bool isOpen() const override { return open_; }

 private:
  void refill() {
    WireWriter w;
    w.u32(cursor_id_);
    w.u32(0);  // 0 = server default batch size
    Frame response = wire_->expect(server::makeFrame(Op::Fetch, std::move(w)),
                                   Op::Rows);
    WireReader r(response.payload);
    server_done_ = r.u8() != 0;
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) buffer_.push_back(r.row());
    // The server closed its cursor at exhaustion, so the statement is
    // reusable even while we drain the tail of the buffer.
    if (server_done_) releaseStmt();
  }

  void releaseStmt() {
    if (stmt_ == nullptr) return;
    stmt_->cursor_open = false;
    if (!stmt_->cached) stmt_->closeRemote();
    stmt_.reset();
  }

  std::shared_ptr<RemoteConnection::Wire> wire_;
  std::shared_ptr<RemoteConnection::StmtHandle> stmt_;
  std::uint32_t cursor_id_;
  std::vector<std::string> columns_;
  std::deque<minidb::Row> buffer_;
  bool server_done_ = false;  // server-side cursor exhausted and gone
  bool open_ = true;
  bool traced_ = false;
  obs::QueryTrace trace_;
  obs::StageTimer exec_timer_;
};

// --- RemoteConnection --------------------------------------------------------

std::unique_ptr<RemoteConnection> RemoteConnection::connect(
    const std::string& target) {
  auto wire = std::make_shared<Wire>();
  wire->sock = server::connectTo(target);
  wire->alive = true;

  WireWriter hello;
  hello.u32(server::kProtocolVersion);
  Frame response =
      wire->expect(server::makeFrame(Op::Hello, std::move(hello)), Op::HelloOk);
  WireReader r(response.payload);
  const std::uint32_t version = r.u32();
  if (version != server::kProtocolVersion) {
    throw NetError("server speaks protocol version " + std::to_string(version) +
                   "; this client needs " +
                   std::to_string(server::kProtocolVersion));
  }
  return std::unique_ptr<RemoteConnection>(new RemoteConnection(std::move(wire)));
}

RemoteConnection::RemoteConnection(std::shared_ptr<Wire> wire)
    : wire_(std::move(wire)) {}

RemoteConnection::~RemoteConnection() {
  // No per-statement goodbyes: closing the socket tears down the whole
  // server-side session (statements, cursors, gate holds) in one step.
  wire_->alive = false;
  wire_->sock.close();
}

std::shared_ptr<RemoteConnection::StmtHandle> RemoteConnection::prepareRemote(
    std::string_view sql, bool cache) {
  WireWriter w;
  w.str(sql);
  Frame response = wire_->expect(server::makeFrame(Op::Prepare, std::move(w)),
                                 Op::StmtOk);
  WireReader r(response.payload);
  auto handle = std::make_shared<StmtHandle>();
  handle->wire = wire_;
  handle->id = r.u32();
  handle->param_count = static_cast<int>(r.u32());
  handle->kind = static_cast<minidb::sql::Statement::Kind>(r.u8());
  handle->cached = cache;
  if (cache) stmts_.emplace(std::string(sql), handle);
  return handle;
}

std::shared_ptr<RemoteConnection::StmtHandle> RemoteConnection::stmtFor(
    std::string_view sql) {
  const auto it = stmts_.find(std::string(sql));
  if (it != stmts_.end()) {
    if (!it->second->cursor_open) return it->second;
    // Same rule as the local backend: a statement mid-stream is never
    // re-entered; compile a throwaway server-side twin instead.
    return prepareRemote(sql, /*cache=*/false);
  }
  return prepareRemote(sql, /*cache=*/true);
}

void RemoteConnection::bindRemote(const std::shared_ptr<StmtHandle>& stmt,
                                  std::vector<minidb::Value> params) {
  WireWriter w;
  w.u32(stmt->id);
  w.u32(static_cast<std::uint32_t>(params.size()));
  for (const minidb::Value& v : params) w.value(v);
  wire_->expect(server::makeFrame(Op::Bind, std::move(w)), Op::BindOk);
}

ResultSet RemoteConnection::runToResult(const std::shared_ptr<StmtHandle>& stmt) {
  WireWriter w;
  w.u32(stmt->id);
  Frame response = wire_->roundtrip(server::makeFrame(Op::Execute, std::move(w)));
  if (response.op == Op::Error) {
    if (!stmt->cached) stmt->closeRemote();
    throwServerError(response);
  }

  ResultSet rs;
  if (response.op == Op::ResultOk) {
    WireReader r(response.payload);
    rs.rows_affected = r.i64();
    rs.last_insert_id = r.i64();
    if (!stmt->cached) stmt->closeRemote();
    return rs;
  }
  if (response.op != Op::CursorOk) {
    throw NetError(std::string("protocol mismatch: expected RESULT_OK or "
                               "CURSOR_OK, got ") +
                   std::string(server::opName(response.op)));
  }

  // exec() of a SELECT materializes, like the local backend: drain the
  // server-side cursor batch by batch into the ResultSet.
  WireReader r(response.payload);
  const std::uint32_t cursor_id = r.u32();
  const std::uint32_t ncols = r.u32();
  rs.columns.reserve(ncols);
  for (std::uint32_t i = 0; i < ncols; ++i) rs.columns.push_back(r.str());

  bool done = false;
  while (!done) {
    WireWriter fw;
    fw.u32(cursor_id);
    fw.u32(0);
    Frame batch = wire_->expect(server::makeFrame(Op::Fetch, std::move(fw)),
                                Op::Rows);
    WireReader br(batch.payload);
    done = br.u8() != 0;
    const std::uint32_t n = br.u32();
    for (std::uint32_t i = 0; i < n; ++i) rs.rows.push_back(br.row());
  }
  if (!stmt->cached) stmt->closeRemote();
  return rs;
}

Cursor RemoteConnection::openRemoteCursor(std::shared_ptr<StmtHandle> stmt,
                                          obs::QueryTrace* trace) {
  WireWriter w;
  w.u32(stmt->id);
  Frame response;
  try {
    response = wire_->expect(server::makeFrame(Op::Execute, std::move(w)),
                             Op::CursorOk);
  } catch (...) {
    if (!stmt->cached) stmt->closeRemote();
    throw;
  }
  WireReader r(response.payload);
  const std::uint32_t cursor_id = r.u32();
  const std::uint32_t ncols = r.u32();
  std::vector<std::string> columns;
  columns.reserve(ncols);
  for (std::uint32_t i = 0; i < ncols; ++i) columns.push_back(r.str());
  stmt->cursor_open = true;
  auto impl = std::make_unique<RemoteCursorImpl>(wire_, std::move(stmt),
                                                 cursor_id, std::move(columns));
  if (trace != nullptr) impl->arm(std::move(*trace));
  return Cursor(std::move(impl));
}

ResultSet RemoteConnection::exec(std::string_view sql) {
  const bool traced = obs::Tracer::global().shouldSample();
  const obs::StageTimer prep_timer;
  auto stmt = stmtFor(sql);
  if (stmt->param_count > 0) {
    throw util::SqlError("statement has " + std::to_string(stmt->param_count) +
                         " '?' parameter(s); use execPrepared()");
  }
  if (!traced) return runToResult(stmt);
  obs::QueryTrace t;
  t.sql = std::string(sql);
  t.remote = true;
  t.parse_us = prep_timer.elapsedUs();
  const obs::StageTimer exec_timer;
  ResultSet rs = runToResult(stmt);
  t.exec_us = exec_timer.elapsedUs();
  t.rows = rs.rows.empty() && rs.rows_affected > 0
               ? static_cast<std::uint64_t>(rs.rows_affected)
               : rs.rows.size();
  obs::Tracer::global().record(std::move(t));
  return rs;
}

ResultSet RemoteConnection::execPrepared(std::string_view sql,
                                         std::vector<minidb::Value> params) {
  const bool traced = obs::Tracer::global().shouldSample();
  const obs::StageTimer prep_timer;
  auto stmt = stmtFor(sql);
  obs::QueryTrace t;
  t.parse_us = traced ? prep_timer.elapsedUs() : 0;
  const obs::StageTimer bind_timer;
  bindRemote(stmt, std::move(params));
  if (!traced) return runToResult(stmt);
  t.sql = std::string(sql);
  t.remote = true;
  t.bind_us = bind_timer.elapsedUs();
  const obs::StageTimer exec_timer;
  ResultSet rs = runToResult(stmt);
  t.exec_us = exec_timer.elapsedUs();
  t.rows = rs.rows.empty() && rs.rows_affected > 0
               ? static_cast<std::uint64_t>(rs.rows_affected)
               : rs.rows.size();
  obs::Tracer::global().record(std::move(t));
  return rs;
}

Cursor RemoteConnection::query(std::string_view sql) {
  const bool traced = obs::Tracer::global().shouldSample();
  const obs::StageTimer prep_timer;
  auto stmt = stmtFor(sql);
  if (stmt->param_count > 0) {
    throw util::SqlError("statement has " + std::to_string(stmt->param_count) +
                         " '?' parameter(s); use query(sql, params)");
  }
  if (!traced) return openRemoteCursor(std::move(stmt), nullptr);
  obs::QueryTrace t;
  t.sql = std::string(sql);
  t.remote = true;
  t.parse_us = prep_timer.elapsedUs();
  return openRemoteCursor(std::move(stmt), &t);
}

Cursor RemoteConnection::query(std::string_view sql,
                               std::vector<minidb::Value> params) {
  const bool traced = obs::Tracer::global().shouldSample();
  const obs::StageTimer prep_timer;
  auto stmt = stmtFor(sql);
  const std::uint64_t parse_us = traced ? prep_timer.elapsedUs() : 0;
  const obs::StageTimer bind_timer;
  bindRemote(stmt, std::move(params));
  if (!traced) return openRemoteCursor(std::move(stmt), nullptr);
  obs::QueryTrace t;
  t.sql = std::string(sql);
  t.remote = true;
  t.parse_us = parse_us;
  t.bind_us = bind_timer.elapsedUs();
  return openRemoteCursor(std::move(stmt), &t);
}

void RemoteConnection::begin() {
  throw util::SqlError(
      "transactions are not supported over ptserverd (autocommit only)");
}

void RemoteConnection::commit() { begin(); }
void RemoteConnection::rollback() { begin(); }

core::diag::Report RemoteConnection::diff(const core::diag::Request& request) {
  WireWriter w;
  w.str(request.exec_a);
  w.str(request.exec_b);
  w.u32(request.top_k);
  w.value(minidb::Value(request.ratio_threshold));
  w.value(minidb::Value(request.abs_threshold));
  Frame response =
      wire_->expect(server::makeFrame(Op::Diff, std::move(w)), Op::DiffOk);
  WireReader r(response.payload);

  core::diag::Report report;
  report.request = request;
  const std::uint32_t cursor_id = r.u32();
  const std::uint32_t ncols = r.u32();
  for (std::uint32_t i = 0; i < ncols; ++i) r.str();  // fixed Report::columns()
  report.stats.results_a = r.u64();
  report.stats.results_b = r.u64();
  report.stats.aligned = r.u64();
  report.stats.only_a = r.u64();
  report.stats.only_b = r.u64();
  report.stats.divergent = r.u64();
  report.stats.zero_baseline = r.u64();
  report.stats.diff_us = r.u64();

  // The ranked rows are bounded (top-K or the divergent count), so draining
  // them into the report mirrors the local engine's materialized result.
  bool done = false;
  while (!done) {
    WireWriter fw;
    fw.u32(cursor_id);
    fw.u32(0);
    Frame batch =
        wire_->expect(server::makeFrame(Op::Fetch, std::move(fw)), Op::Rows);
    WireReader br(batch.payload);
    done = br.u8() != 0;
    const std::uint32_t n = br.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      const minidb::Row row = br.row();
      if (row.size() < 8) {
        throw NetError("malformed DIFF row (expected 8 columns, got " +
                       std::to_string(row.size()) + ")");
      }
      core::diag::Row d;
      d.metric = row[1].asText();
      d.context = row[2].asText();
      d.value_a = row[3].asReal();
      d.value_b = row[4].asReal();
      d.has_ratio = !row[6].isNull();
      if (d.has_ratio) d.ratio = row[6].asReal();
      d.contribution_pct = row[7].asReal();
      report.rows.push_back(std::move(d));
    }
  }
  return report;
}

std::uint64_t RemoteConnection::sizeBytes() const {
  Frame response = wire_->expect(Frame{Op::Stat, {}}, Op::StatOk);
  WireReader r(response.payload);
  return r.u64();
}

const minidb::RecoveryStats& RemoteConnection::recoveryStats() const {
  // The server recovered its own store when it opened it; a client joining
  // later has nothing to report.
  static const minidb::RecoveryStats kNone{};
  return kNone;
}

void RemoteConnection::setUseIndexes(bool enabled) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(server::SessionOption::UseIndexes));
  w.i64(enabled ? 1 : 0);
  wire_->expect(server::makeFrame(Op::SetOption, std::move(w)), Op::Ok);
}

void RemoteConnection::setExecThreads(int n) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(server::SessionOption::ExecThreads));
  w.i64(n < 0 ? 0 : n);
  wire_->expect(server::makeFrame(Op::SetOption, std::move(w)), Op::Ok);
}

void RemoteConnection::setExecBatchRows(std::size_t n) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(server::SessionOption::ExecBatchRows));
  w.i64(static_cast<std::int64_t>(n));
  wire_->expect(server::makeFrame(Op::SetOption, std::move(w)), Op::Ok);
}

void RemoteConnection::setInvidxEnabled(bool enabled) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(server::SessionOption::InvIdx));
  w.i64(enabled ? 1 : 0);
  wire_->expect(server::makeFrame(Op::SetOption, std::move(w)), Op::Ok);
  invidx_enabled_ = enabled;
}

void RemoteConnection::clearStatementCache() {
  for (auto& [sql, stmt] : stmts_) {
    // Handles pinned by a streaming cursor are released by the cursor.
    if (!stmt->cursor_open) stmt->closeRemote();
    stmt->cached = false;
  }
  stmts_.clear();
}

void RemoteConnection::ping() {
  wire_->expect(Frame{Op::Ping, {}}, Op::Pong);
}

void RemoteConnection::shutdownServer() {
  wire_->expect(Frame{Op::Shutdown, {}}, Op::Ok);
}

ServerStat RemoteConnection::serverStat() {
  Frame response = wire_->expect(Frame{Op::Stat, {}}, Op::StatOk);
  WireReader r(response.payload);
  ServerStat s;
  s.size_bytes = r.u64();
  s.sessions = r.u32();
  s.frames_served = r.u64();
  if (!r.atEnd()) {
    s.extended = true;
    s.uptime_ms = r.u64();
    s.open_cursors = r.u32();
    s.db_file_bytes = r.u64();
    s.journal_bytes = r.u64();
    s.busy_rejections = r.u64();
    // Second append-only extension (WAL-capable servers).
    if (!r.atEnd()) s.wal_bytes = r.u64();
  }
  return s;
}

std::string RemoteConnection::serverMetrics() {
  Frame response = wire_->expect(Frame{Op::Metrics, {}}, Op::MetricsOk);
  WireReader r(response.payload);
  return r.str();
}

}  // namespace perftrack::dbal
