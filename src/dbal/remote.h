// Remote dbal backend: a dbal::Connection over a ptserverd session.
//
// RemoteConnection speaks the src/server wire protocol (one frame out, one
// frame back) and maps it onto the Connection surface, so core/ptdf/tools
// code — and the ptquery/ptexport CLIs — run unchanged against a shared
// query server. Differences from the local backends, all documented on the
// base class:
//
//   * autocommit only: begin()/commit()/rollback() throw (the server wraps
//     each mutating statement in its own journal-protected commit);
//   * statements are cached server-side, keyed client-side by SQL text;
//     the cache introspection surface reports the remote handle count;
//   * SELECT cursors stream bounded row batches (FETCH) from a server-side
//     cursor holding a shared lock on the store, so results of any size
//     arrive in constant client memory.
//
// Like the local backend, a statement whose server-side cursor is still
// streaming is never re-entered: exec()/execPrepared()/query() on a busy
// statement prepare a fresh temporary server-side statement instead, which
// is closed once its use (or its cursor) finishes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "dbal/connection.h"
#include "minidb/sql/ast.h"
#include "obs/trace.h"

namespace perftrack::dbal {

/// Connection-string prefix selecting this backend ("pt://host:port" or
/// "pt://unix:/path").
inline constexpr char kRemoteScheme[] = "pt://";

/// Raised when the server rejects a request with BUSY (lock timeout or
/// connection cap). Retryable by design: the store itself is untouched.
class ServerBusyError : public util::PTError {
 public:
  explicit ServerBusyError(std::string message) : util::PTError(std::move(message)) {}
};

/// Decoded STAT_OK payload. `extended` is false when the server predates
/// the PR-5 append-only fields (they read as zero in that case).
struct ServerStat {
  std::uint64_t size_bytes = 0;
  std::uint32_t sessions = 0;
  std::uint64_t frames_served = 0;
  bool extended = false;
  std::uint64_t uptime_ms = 0;
  std::uint32_t open_cursors = 0;
  std::uint64_t db_file_bytes = 0;
  std::uint64_t journal_bytes = 0;
  std::uint64_t busy_rejections = 0;
  std::uint64_t wal_bytes = 0;  // 0 from pre-WAL servers
};

class RemoteConnection final : public Connection {
 public:
  /// Connects to "host:port" or "unix:/path" (the "pt://" prefix already
  /// stripped) and performs the protocol handshake.
  static std::unique_ptr<RemoteConnection> connect(const std::string& target);

  ~RemoteConnection() override;

  ResultSet exec(std::string_view sql) override;
  ResultSet execPrepared(std::string_view sql,
                         std::vector<minidb::Value> params) override;
  Cursor query(std::string_view sql) override;
  Cursor query(std::string_view sql, std::vector<minidb::Value> params) override;

  void begin() override;
  void commit() override;
  void rollback() override;
  bool inTransaction() const override { return false; }

  /// DIFF round trip: the server runs the core::diag engine against its
  /// store and streams the ranked rows back through FETCH; the decoded
  /// Report (stats + full-fidelity REAL rows) renders byte-identically to a
  /// local diff over the same store.
  core::diag::Report diff(const core::diag::Request& request) override;

  std::uint64_t sizeBytes() const override;
  const minidb::RecoveryStats& recoveryStats() const override;

  void setUseIndexes(bool enabled) override;
  void setExecThreads(int n) override;
  /// Session-scoped server-side batch size (SET_OPTION round trip); the
  /// server validates and caps it like a local Engine.
  void setExecBatchRows(std::size_t n) override;
  /// Session-scoped inverted-index switch (SET_OPTION round trip); the
  /// last value sent is cached client-side for invidxEnabled().
  void setInvidxEnabled(bool enabled) override;
  bool invidxEnabled() const override { return invidx_enabled_; }

  /// Remote handles held by this client (server-side statements stay alive
  /// until closed, so this doubles as a leak check in tests).
  std::size_t statementCacheSize() const override { return stmts_.size(); }
  void clearStatementCache() override;

  // --- remote-only surface ---------------------------------------------------
  /// Round-trips a PING (liveness probe; throws NetError when the server
  /// is gone).
  void ping();
  /// Asks the server to drain and exit (SHUTDOWN frame).
  void shutdownServer();
  /// Full decoded STAT_OK (sizeBytes() reads only the leading field).
  ServerStat serverStat();
  /// The server's Prometheus text exposition (METRICS frame) — the same
  /// text `curl` gets from --metrics-port, fetched over the wire protocol.
  std::string serverMetrics();

 private:
  struct Wire;        // shared socket state (kept alive by open cursors)
  struct StmtHandle;  // one server-side prepared statement
  friend class RemoteCursorImpl;

  explicit RemoteConnection(std::shared_ptr<Wire> wire);

  /// Returns the handle for `sql`, preparing it server-side on miss. When
  /// the cached handle has a streaming cursor (busy), prepares a fresh
  /// temporary handle instead.
  std::shared_ptr<StmtHandle> stmtFor(std::string_view sql);
  std::shared_ptr<StmtHandle> prepareRemote(std::string_view sql, bool cache);
  ResultSet runToResult(const std::shared_ptr<StmtHandle>& stmt);
  /// With `trace` non-null the cursor completes and records the span (the
  /// prepare/bind stage timings already filled in) when it closes.
  Cursor openRemoteCursor(std::shared_ptr<StmtHandle> stmt,
                          obs::QueryTrace* trace);
  void bindRemote(const std::shared_ptr<StmtHandle>& stmt,
                  std::vector<minidb::Value> params);

  std::shared_ptr<Wire> wire_;
  std::unordered_map<std::string, std::shared_ptr<StmtHandle>> stmts_;
  // Client-side echo of the server's session invidx flag (the wire has no
  // GET_OPTION; new sessions start from the server default, which is on
  // unless ptserverd was started with --invidx 0).
  bool invidx_enabled_ = true;
};

}  // namespace perftrack::dbal
