#include "dbal/schema.h"

#include <array>
#include <string_view>

#include "dbal/connection.h"

namespace perftrack::dbal {

namespace {

constexpr std::string_view kTables[] = {
    "focus_framework",
    "resource_item",
    "resource_attribute",
    "resource_constraint",
    "resource_has_ancestor",
    "resource_has_descendant",
    "application",
    "execution",
    "performance_tool",
    "metric",
    "focus",
    "focus_has_resource",
    "performance_result",
    "performance_result_has_focus",
    "performance_result_histogram",
    "performance_result_bin",
};

constexpr std::string_view kDdl[] = {
    // --- type system -------------------------------------------------------
    "CREATE TABLE IF NOT EXISTS focus_framework ("
    "  id INTEGER PRIMARY KEY,"
    "  type_name TEXT,"        // full type path, e.g. grid/machine/partition
    "  base_name TEXT,"        // last path segment, e.g. partition
    "  parent_id INTEGER)",    // enclosing type, or NULL for a root
    "CREATE UNIQUE INDEX IF NOT EXISTS ff_by_name ON focus_framework (type_name)",
    "CREATE INDEX IF NOT EXISTS ff_by_parent ON focus_framework (parent_id)",
    "CREATE INDEX IF NOT EXISTS ff_by_base ON focus_framework (base_name)",

    // --- resources ----------------------------------------------------------
    "CREATE TABLE IF NOT EXISTS resource_item ("
    "  id INTEGER PRIMARY KEY,"
    "  name TEXT,"              // base name (last path segment)
    "  full_name TEXT,"         // unique full path, e.g. /Frost/batch/n1/p0
    "  parent_id INTEGER,"      // enclosing resource, NULL for top level
    "  focus_framework_id INTEGER)",
    "CREATE UNIQUE INDEX IF NOT EXISTS ri_by_full_name ON resource_item (full_name)",
    "CREATE INDEX IF NOT EXISTS ri_by_parent ON resource_item (parent_id)",
    "CREATE INDEX IF NOT EXISTS ri_by_type ON resource_item (focus_framework_id)",
    "CREATE INDEX IF NOT EXISTS ri_by_name ON resource_item (name)",

    "CREATE TABLE IF NOT EXISTS resource_attribute ("
    "  id INTEGER PRIMARY KEY,"
    "  resource_id INTEGER,"
    "  name TEXT,"
    "  value TEXT,"
    "  attr_type TEXT)",       // 'string' or 'resource' (paper Figure 6)
    "CREATE INDEX IF NOT EXISTS ra_by_resource ON resource_attribute (resource_id)",
    "CREATE INDEX IF NOT EXISTS ra_by_name ON resource_attribute (name)",

    "CREATE TABLE IF NOT EXISTS resource_constraint ("
    "  id INTEGER PRIMARY KEY,"
    "  resource_id1 INTEGER,"
    "  resource_id2 INTEGER)",
    "CREATE INDEX IF NOT EXISTS rc_by_r1 ON resource_constraint (resource_id1)",
    "CREATE INDEX IF NOT EXISTS rc_by_r2 ON resource_constraint (resource_id2)",

    // Closure tables: the paper adds these "for performance reasons, ... to
    // avoid needing to traverse the resource hierarchy and follow the chain
    // of parent_id's".
    "CREATE TABLE IF NOT EXISTS resource_has_ancestor ("
    "  resource_id INTEGER,"
    "  ancestor_id INTEGER)",
    "CREATE INDEX IF NOT EXISTS rha_by_resource ON resource_has_ancestor (resource_id)",
    "CREATE INDEX IF NOT EXISTS rha_by_ancestor ON resource_has_ancestor (ancestor_id)",
    "CREATE TABLE IF NOT EXISTS resource_has_descendant ("
    "  resource_id INTEGER,"
    "  descendant_id INTEGER)",
    "CREATE INDEX IF NOT EXISTS rhd_by_resource ON resource_has_descendant (resource_id)",
    "CREATE INDEX IF NOT EXISTS rhd_by_descendant ON resource_has_descendant (descendant_id)",

    // --- experiment bookkeeping ---------------------------------------------
    "CREATE TABLE IF NOT EXISTS application ("
    "  id INTEGER PRIMARY KEY,"
    "  name TEXT)",
    "CREATE UNIQUE INDEX IF NOT EXISTS app_by_name ON application (name)",

    "CREATE TABLE IF NOT EXISTS execution ("
    "  id INTEGER PRIMARY KEY,"
    "  name TEXT,"
    "  application_id INTEGER)",
    "CREATE UNIQUE INDEX IF NOT EXISTS exec_by_name ON execution (name)",
    "CREATE INDEX IF NOT EXISTS exec_by_app ON execution (application_id)",

    "CREATE TABLE IF NOT EXISTS performance_tool ("
    "  id INTEGER PRIMARY KEY,"
    "  name TEXT)",
    "CREATE UNIQUE INDEX IF NOT EXISTS tool_by_name ON performance_tool (name)",

    "CREATE TABLE IF NOT EXISTS metric ("
    "  id INTEGER PRIMARY KEY,"
    "  name TEXT,"
    "  units TEXT)",
    "CREATE UNIQUE INDEX IF NOT EXISTS metric_by_name ON metric (name)",

    // --- contexts and results -----------------------------------------------
    "CREATE TABLE IF NOT EXISTS focus ("
    "  id INTEGER PRIMARY KEY,"
    "  execution_id INTEGER,"
    "  signature TEXT)",       // canonical resource-id list for dedup
    "CREATE INDEX IF NOT EXISTS focus_by_exec ON focus (execution_id)",
    "CREATE INDEX IF NOT EXISTS focus_by_sig ON focus (signature)",

    "CREATE TABLE IF NOT EXISTS focus_has_resource ("
    "  focus_id INTEGER,"
    "  resource_id INTEGER,"
    "  focus_type TEXT)",      // primary | parent | child | sender | receiver
    "CREATE INDEX IF NOT EXISTS fhr_by_focus ON focus_has_resource (focus_id)",
    "CREATE INDEX IF NOT EXISTS fhr_by_resource ON focus_has_resource (resource_id)",

    "CREATE TABLE IF NOT EXISTS performance_result ("
    "  id INTEGER PRIMARY KEY,"
    "  execution_id INTEGER,"
    "  metric_id INTEGER,"
    "  performance_tool_id INTEGER,"
    "  value REAL,"
    "  units TEXT,"
    "  start_time REAL,"
    "  end_time REAL)",
    "CREATE INDEX IF NOT EXISTS pr_by_exec ON performance_result (execution_id)",
    "CREATE INDEX IF NOT EXISTS pr_by_metric ON performance_result (metric_id)",
    "CREATE INDEX IF NOT EXISTS pr_by_tool ON performance_result (performance_tool_id)",

    "CREATE TABLE IF NOT EXISTS performance_result_has_focus ("
    "  result_id INTEGER,"
    "  focus_id INTEGER)",
    "CREATE INDEX IF NOT EXISTS prhf_by_result ON performance_result_has_focus (result_id)",
    "CREATE INDEX IF NOT EXISTS prhf_by_focus ON performance_result_has_focus (focus_id)",

    // --- complex (histogram) results ------------------------------------------
    // The paper's §6 plans "complex performance results ... to avoid creating
    // a new performance result for each bin in a Paradyn histogram file".
    // A histogram result is a normal performance_result (value = sum over
    // bins) plus a descriptor row and one row per recorded bin.
    "CREATE TABLE IF NOT EXISTS performance_result_histogram ("
    "  result_id INTEGER,"
    "  num_bins INTEGER,"
    "  bin_width REAL)",
    "CREATE INDEX IF NOT EXISTS prh_by_result ON performance_result_histogram (result_id)",
    "CREATE TABLE IF NOT EXISTS performance_result_bin ("
    "  result_id INTEGER,"
    "  bin INTEGER,"
    "  value REAL)",
    "CREATE INDEX IF NOT EXISTS prb_by_result ON performance_result_bin (result_id)",
};

}  // namespace

void createPerfTrackSchema(Connection& conn) {
  for (std::string_view ddl : kDdl) conn.exec(ddl);
}

bool hasPerfTrackSchema(Connection& conn) {
  for (std::string_view table : kTables) {
    if (conn.database().catalog().findTable(table) == nullptr) return false;
  }
  return true;
}

void dropPerfTrackSchema(Connection& conn) {
  for (std::string_view table : kTables) {
    conn.exec("DROP TABLE IF EXISTS " + std::string(table));
  }
}

}  // namespace perftrack::dbal
