// PerfTrack database schema (paper Figure 1).
//
// Tables:
//   focus_framework        resource type system (hierarchical type tree)
//   resource_item          one row per resource; unique full path name
//   resource_attribute     attribute name/value pairs per resource
//   resource_constraint    attributes that are themselves resources
//   resource_has_ancestor  transitive-closure table (query acceleration)
//   resource_has_descendant  symmetric closure table
//   application            applications under study
//   execution              one row per application run
//   performance_tool       measurement tools (IRS, mpiP, PMAPI, Paradyn, ...)
//   metric                 measurable characteristics
//   focus                  a context: one set of resources
//   focus_has_resource     resources within a focus, with a focus type
//                          (primary/parent/child/sender/receiver)
//   performance_result     measured value + metric + tool + execution
//   performance_result_has_focus  result<->context links (multi-context
//                          results, the §4.2 mpiP caller/callee change)
#pragma once

namespace perftrack::dbal {

class Connection;

/// Creates all PerfTrack tables and indexes (idempotent).
void createPerfTrackSchema(Connection& conn);

/// True when `conn` already carries a PerfTrack schema.
bool hasPerfTrackSchema(Connection& conn);

/// Drops every PerfTrack table (testing/reset support).
void dropPerfTrackSchema(Connection& conn);

}  // namespace perftrack::dbal
