#include "minidb/btree.h"

#include <cstring>
#include <vector>

#include "util/error.h"

namespace perftrack::minidb {

using util::StorageError;

namespace {

// Node layout: [BtHeader][slot 0..n-1]              ...[cell payloads]
// Leaf cell payload: the key bytes.
// Internal cell payload: 4-byte child page id, then the separator key bytes.
// Internal semantics: children are [leftmost, C1..Cn] with sorted separator
// keys K1..Kn; a key k routes to leftmost when k < K1, else to the Ci with
// the largest Ki <= k.
struct BtHeader {
  std::uint8_t is_leaf;
  std::uint8_t pad;
  std::uint16_t slot_count;
  std::uint16_t free_off;
  std::uint16_t pad2;
  PageId right;     // leaf-level right sibling (kInvalidPage at the tail)
  PageId leftmost;  // internal nodes only
};

struct Slot {
  std::uint16_t off;
  std::uint16_t len;
};

constexpr std::size_t kHdr = sizeof(BtHeader);
constexpr std::size_t kSlot = sizeof(Slot);

BtHeader* hdr(std::uint8_t* p) { return reinterpret_cast<BtHeader*>(p); }
const BtHeader* hdr(const std::uint8_t* p) { return reinterpret_cast<const BtHeader*>(p); }
Slot* slots(std::uint8_t* p) { return reinterpret_cast<Slot*>(p + kHdr); }
const Slot* slots(const std::uint8_t* p) { return reinterpret_cast<const Slot*>(p + kHdr); }

std::string_view cellBytes(const std::uint8_t* page, std::uint16_t idx) {
  const Slot& s = slots(page)[idx];
  return {reinterpret_cast<const char*>(page + s.off), s.len};
}

std::string_view keyAt(const std::uint8_t* page, std::uint16_t idx) {
  std::string_view cell = cellBytes(page, idx);
  if (hdr(page)->is_leaf) return cell;
  return cell.substr(sizeof(PageId));
}

PageId childAt(const std::uint8_t* page, std::uint16_t idx) {
  const Slot& s = slots(page)[idx];
  PageId child;
  std::memcpy(&child, page + s.off, sizeof(child));
  return child;
}

std::size_t freeSpace(const std::uint8_t* page) {
  const BtHeader* h = hdr(page);
  return h->free_off - (kHdr + kSlot * h->slot_count);
}

void initNode(std::uint8_t* page, bool leaf) {
  BtHeader* h = hdr(page);
  h->is_leaf = leaf ? 1 : 0;
  h->pad = 0;
  h->slot_count = 0;
  h->free_off = static_cast<std::uint16_t>(kPageSize);
  h->pad2 = 0;
  h->right = kInvalidPage;
  h->leftmost = kInvalidPage;
}

// First index whose key is >= `key`; slot_count when none.
std::uint16_t lowerBoundIdx(const std::uint8_t* page, std::string_view key) {
  std::uint16_t lo = 0;
  std::uint16_t hi = hdr(page)->slot_count;
  while (lo < hi) {
    const std::uint16_t mid = static_cast<std::uint16_t>((lo + hi) / 2);
    if (keyAt(page, mid) < key) {
      lo = static_cast<std::uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child index (into [leftmost, C0..Cn-1]) for descending with `key`:
// returns the slot of the last separator <= key, or -1 for leftmost.
int descendIdx(const std::uint8_t* page, std::string_view key) {
  const std::uint16_t lb = lowerBoundIdx(page, key);
  if (lb < hdr(page)->slot_count && keyAt(page, lb) == key) return lb;
  return static_cast<int>(lb) - 1;
}

// Inserts a cell payload at sorted position `idx`. Caller checked space.
void insertCell(std::uint8_t* page, std::uint16_t idx, std::string_view payload) {
  BtHeader* h = hdr(page);
  h->free_off = static_cast<std::uint16_t>(h->free_off - payload.size());
  std::memcpy(page + h->free_off, payload.data(), payload.size());
  Slot* arr = slots(page);
  std::memmove(arr + idx + 1, arr + idx, (h->slot_count - idx) * kSlot);
  arr[idx].off = h->free_off;
  arr[idx].len = static_cast<std::uint16_t>(payload.size());
  h->slot_count++;
}

void removeCell(std::uint8_t* page, std::uint16_t idx) {
  BtHeader* h = hdr(page);
  Slot* arr = slots(page);
  std::memmove(arr + idx, arr + idx + 1, (h->slot_count - idx - 1) * kSlot);
  h->slot_count--;
  // Payload bytes are reclaimed lazily at the next split/compaction.
}

// Rewrites `page` compactly from a list of cell payloads.
void rebuildNode(std::uint8_t* page, bool leaf, const std::vector<std::string>& cells,
                 PageId right, PageId leftmost) {
  initNode(page, leaf);
  BtHeader* h = hdr(page);
  h->right = right;
  h->leftmost = leftmost;
  for (std::uint16_t i = 0; i < cells.size(); ++i) {
    insertCell(page, i, cells[i]);
  }
}

std::string makeInternalCell(PageId child, std::string_view key) {
  std::string cell;
  cell.resize(sizeof(PageId));
  std::memcpy(cell.data(), &child, sizeof(child));
  cell.append(key);
  return cell;
}

}  // namespace

std::size_t BTree::maxKeySize() { return 2048; }

PageId BTree::create(Pager& pager) {
  const PageId id = pager.allocate();
  initNode(pager.pageForWrite(id), /*leaf=*/true);
  return id;
}

std::optional<BTree::SplitResult> BTree::insertInto(PageId page_id, std::string_view key) {
  const std::uint8_t* rpage = pager_->pageForRead(page_id);
  if (hdr(rpage)->is_leaf) {
    const std::uint16_t idx = lowerBoundIdx(rpage, key);
    if (idx < hdr(rpage)->slot_count && keyAt(rpage, idx) == key) {
      throw StorageError("BTree: duplicate key insertion");
    }
    if (freeSpace(rpage) >= key.size() + kSlot) {
      insertCell(pager_->pageForWrite(page_id), idx, key);
      return std::nullopt;
    }
    // Overflow: gather, insert, split into page_id (left) and a new right.
    std::vector<std::string> cells;
    cells.reserve(hdr(rpage)->slot_count + 1u);
    for (std::uint16_t i = 0; i < hdr(rpage)->slot_count; ++i) {
      cells.emplace_back(cellBytes(rpage, i));
    }
    cells.insert(cells.begin() + idx, std::string(key));
    const std::size_t mid = cells.size() / 2;
    std::vector<std::string> left(cells.begin(), cells.begin() + mid);
    std::vector<std::string> right(cells.begin() + mid, cells.end());
    const PageId old_right = hdr(rpage)->right;
    const PageId right_id = pager_->allocate();
    rebuildNode(pager_->pageForWrite(right_id), true, right, old_right, kInvalidPage);
    rebuildNode(pager_->pageForWrite(page_id), true, left, right_id, kInvalidPage);
    return SplitResult{right.front(), right_id};
  }

  // Internal node: descend.
  const int didx = descendIdx(rpage, key);
  const PageId child =
      didx < 0 ? hdr(rpage)->leftmost : childAt(rpage, static_cast<std::uint16_t>(didx));
  auto split = insertInto(child, key);
  if (!split) return std::nullopt;

  const std::string cell = makeInternalCell(split->right, split->separator);
  rpage = pager_->pageForRead(page_id);  // re-read: child work may not alias
  const std::uint16_t idx = lowerBoundIdx(rpage, split->separator);
  if (freeSpace(rpage) >= cell.size() + kSlot) {
    insertCell(pager_->pageForWrite(page_id), idx, cell);
    return std::nullopt;
  }
  // Internal overflow: gather cells, insert, split; middle key moves up.
  std::vector<std::string> cells;
  cells.reserve(hdr(rpage)->slot_count + 1u);
  for (std::uint16_t i = 0; i < hdr(rpage)->slot_count; ++i) {
    cells.emplace_back(cellBytes(rpage, i));
  }
  cells.insert(cells.begin() + idx, cell);
  const std::size_t mid = cells.size() / 2;
  std::string separator = cells[mid].substr(sizeof(PageId));
  PageId right_leftmost;
  std::memcpy(&right_leftmost, cells[mid].data(), sizeof(right_leftmost));
  std::vector<std::string> left(cells.begin(), cells.begin() + mid);
  std::vector<std::string> right(cells.begin() + mid + 1, cells.end());
  const PageId leftmost = hdr(rpage)->leftmost;
  const PageId right_id = pager_->allocate();
  rebuildNode(pager_->pageForWrite(right_id), false, right, kInvalidPage, right_leftmost);
  rebuildNode(pager_->pageForWrite(page_id), false, left, kInvalidPage, leftmost);
  return SplitResult{std::move(separator), right_id};
}

void BTree::insert(std::string_view key) {
  if (key.size() > maxKeySize()) {
    throw StorageError("BTree: key of " + std::to_string(key.size()) +
                       " bytes exceeds the 2 KiB index key limit");
  }
  auto split = insertInto(root_, key);
  if (!split) return;
  // Root overflowed. The root page now holds the left half; move it to a
  // fresh page and rebuild the (stable) root as an internal node over the
  // two halves.
  const PageId left_id = pager_->allocate();
  std::uint8_t* left = pager_->pageForWrite(left_id);
  std::memcpy(left, pager_->pageForRead(root_), kPageSize);
  std::uint8_t* root = pager_->pageForWrite(root_);
  initNode(root, /*leaf=*/false);
  hdr(root)->leftmost = left_id;
  insertCell(root, 0, makeInternalCell(split->right, split->separator));
}

bool BTree::erase(std::string_view key) {
  PageId page_id = root_;
  while (true) {
    const std::uint8_t* page = pager_->pageForRead(page_id);
    if (hdr(page)->is_leaf) break;
    const int didx = descendIdx(page, key);
    page_id =
        didx < 0 ? hdr(page)->leftmost : childAt(page, static_cast<std::uint16_t>(didx));
  }
  const std::uint8_t* leaf = pager_->pageForRead(page_id);
  const std::uint16_t idx = lowerBoundIdx(leaf, key);
  if (idx >= hdr(leaf)->slot_count || keyAt(leaf, idx) != key) return false;
  removeCell(pager_->pageForWrite(page_id), idx);
  return true;
}

bool BTree::contains(std::string_view key) const {
  Iterator it = lowerBound(key);
  return !it.done() && it.key() == key;
}

BTree::Iterator BTree::lowerBound(std::string_view key) const {
  PageId page_id = root_;
  while (true) {
    const std::uint8_t* page = pager_->pageForRead(page_id);
    if (hdr(page)->is_leaf) break;
    const int didx = descendIdx(page, key);
    page_id =
        didx < 0 ? hdr(page)->leftmost : childAt(page, static_cast<std::uint16_t>(didx));
  }
  const std::uint8_t* leaf = pager_->pageForRead(page_id);
  Iterator it(pager_, page_id, lowerBoundIdx(leaf, key));
  it.skipEmptyLeaves();
  return it;
}

std::string_view BTree::Iterator::key() const {
  return keyAt(pager_->pageForRead(page_), idx_);
}

void BTree::Iterator::next() {
  ++idx_;
  skipEmptyLeaves();
}

void BTree::Iterator::skipEmptyLeaves() {
  while (page_ != kInvalidPage) {
    const std::uint8_t* page = pager_->pageForRead(page_);
    if (idx_ < hdr(page)->slot_count) return;
    page_ = hdr(page)->right;
    idx_ = 0;
  }
}

std::size_t BTree::size() const {
  std::size_t n = 0;
  for (Iterator it = begin(); !it.done(); it.next()) ++n;
  return n;
}

int BTree::height() const {
  int h = 1;
  PageId page_id = root_;
  while (hdr(pager_->pageForRead(page_id))->is_leaf == 0) {
    page_id = hdr(pager_->pageForRead(page_id))->leftmost;
    ++h;
  }
  return h;
}

void BTree::destroy() {
  // Free level by level: walk down the leftmost spine, collecting each
  // level's pages via sibling/child traversal.
  std::vector<PageId> to_free;
  std::vector<PageId> level{root_};
  while (!level.empty()) {
    std::vector<PageId> next_level;
    for (PageId id : level) {
      to_free.push_back(id);
      const std::uint8_t* page = pager_->pageForRead(id);
      if (!hdr(page)->is_leaf) {
        next_level.push_back(hdr(page)->leftmost);
        for (std::uint16_t i = 0; i < hdr(page)->slot_count; ++i) {
          next_level.push_back(childAt(page, i));
        }
      }
    }
    level = std::move(next_level);
  }
  for (PageId id : to_free) pager_->free(id);
  root_ = kInvalidPage;
}

}  // namespace perftrack::minidb
