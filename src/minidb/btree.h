// minidb: B+-tree index over order-preserving encoded keys.
//
// Keys are opaque byte strings compared with memcmp semantics (see
// keycodec.h); each key carries the owning record id as a suffix, so the
// tree stores *keys only* and duplicates never collide. Leaves are linked
// left-to-right for range scans. The root page id is stable for the lifetime
// of the index: when the root splits its contents move to two fresh children
// and the original page becomes the new internal root, so the catalog never
// needs rewriting.
//
// Deletion removes keys without rebalancing (underfull nodes persist). This
// matches the workload: PerfTrack stores are append-mostly, and bulk removal
// happens via DROP TABLE, which frees whole page chains.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "minidb/pager.h"
#include "minidb/types.h"

namespace perftrack::minidb {

/// View over one B+-tree rooted at a fixed page.
class BTree {
 public:
  BTree(Pager& pager, PageId root) : pager_(&pager), root_(root) {}

  /// Creates an empty tree; returns the (stable) root page id.
  static PageId create(Pager& pager);

  PageId rootPage() const { return root_; }

  /// Inserts an encoded key. Duplicate byte strings are rejected (callers
  /// append the record id, so logical duplicates are always distinct).
  void insert(std::string_view key);

  /// Removes an exact key. Returns false when not present.
  bool erase(std::string_view key);

  /// True when the exact key exists.
  bool contains(std::string_view key) const;

  /// Frees every page of the tree (used by DROP TABLE / DROP INDEX).
  void destroy();

  /// Largest key the tree accepts; longer keys throw StorageError.
  static std::size_t maxKeySize();

  /// Forward iterator positioned by lowerBound().
  class Iterator {
   public:
    bool done() const { return page_ == kInvalidPage; }

    /// Current key bytes (valid until the next tree mutation).
    std::string_view key() const;

    void next();

   private:
    friend class BTree;
    Iterator(const Pager* pager, PageId page, std::uint16_t idx)
        : pager_(pager), page_(page), idx_(idx) {}
    void skipEmptyLeaves();
    const Pager* pager_;
    PageId page_;
    std::uint16_t idx_;
  };

  /// First key >= `key` in tree order.
  Iterator lowerBound(std::string_view key) const;

  /// Iterator over all keys.
  Iterator begin() const { return lowerBound(std::string_view{}); }

  /// Number of keys (walks the leaf level; used by tests and EXPLAIN).
  std::size_t size() const;

  /// Height of the tree (1 = just a leaf root). Exposed for tests.
  int height() const;

 private:
  struct SplitResult {
    std::string separator;  // first key of the new right sibling
    PageId right;
  };

  // Inserts into the subtree rooted at `page`; returns a split descriptor
  // when the child overflowed and the caller must add a separator.
  std::optional<SplitResult> insertInto(PageId page, std::string_view key);

  Pager* pager_;
  PageId root_;
};

}  // namespace perftrack::minidb
