#include "minidb/catalog.h"

#include "minidb/heap.h"
#include "util/error.h"
#include "util/strings.h"

namespace perftrack::minidb {

using util::StorageError;

int TableDef::columnIndex(std::string_view column) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (util::iequals(columns[i].name, column)) return static_cast<int>(i);
  }
  return -1;
}

namespace {

// Catalog rows:
//   table: ["table", name, first_page, pk_ordinal, "col:TYPE,col:TYPE,..."]
//   index: ["index", name, root_page, unique, table, "0,2,..."]
Row tableRow(const TableDef& t) {
  std::vector<std::string> cols;
  cols.reserve(t.columns.size());
  for (const ColumnDef& c : t.columns) {
    cols.push_back(c.name + ":" + std::string(columnTypeName(c.type)));
  }
  return Row{Value("table"), Value(t.name), Value(static_cast<std::int64_t>(t.first_page)),
             Value(static_cast<std::int64_t>(t.primary_key)), Value(util::join(cols, ","))};
}

Row indexRow(const IndexDef& i) {
  std::vector<std::string> cols;
  cols.reserve(i.columns.size());
  for (int c : i.columns) cols.push_back(std::to_string(c));
  return Row{Value("index"),  Value(i.name), Value(static_cast<std::int64_t>(i.root)),
             Value(static_cast<std::int64_t>(i.unique ? 1 : 0)), Value(i.table),
             Value(util::join(cols, ","))};
}

ColumnType parseType(std::string_view name) {
  if (util::iequals(name, "INTEGER")) return ColumnType::Integer;
  if (util::iequals(name, "REAL")) return ColumnType::Real;
  if (util::iequals(name, "TEXT")) return ColumnType::Text;
  throw StorageError("catalog: unknown column type '" + std::string(name) + "'");
}

}  // namespace

void Catalog::load(const Pager& pager) {
  tables_.clear();
  indexes_.clear();
  const PageId first = pager.header().catalog_first_page;
  if (first == kInvalidPage) return;
  // HeapFile needs a mutable pager reference for insert paths we do not use.
  HeapFile heap(const_cast<Pager&>(pager), first);
  for (auto it = heap.begin(); !it.done(); it.next()) {
    const Row row = deserializeRow(it.data(), it.size());
    const std::string& kind = row.at(0).asText();
    if (kind == "table") {
      TableDef def;
      def.name = row.at(1).asText();
      def.first_page = static_cast<PageId>(row.at(2).asInt());
      def.primary_key = static_cast<int>(row.at(3).asInt());
      for (const std::string& spec : util::split(row.at(4).asText(), ',')) {
        if (spec.empty()) continue;
        const auto parts = util::split(spec, ':');
        if (parts.size() != 2) throw StorageError("catalog: bad column spec " + spec);
        def.columns.push_back({parts[0], parseType(parts[1])});
      }
      tables_.emplace(def.name, std::move(def));
    } else if (kind == "index") {
      IndexDef def;
      def.name = row.at(1).asText();
      def.root = static_cast<PageId>(row.at(2).asInt());
      def.unique = row.at(3).asInt() != 0;
      def.table = row.at(4).asText();
      for (const std::string& c : util::split(row.at(5).asText(), ',')) {
        if (!c.empty()) def.columns.push_back(static_cast<int>(*util::parseInt(c)));
      }
      indexes_.emplace(def.name, std::move(def));
    } else {
      throw StorageError("catalog: unknown entry kind '" + kind + "'");
    }
  }
}

void Catalog::save(Pager& pager) const {
  // Free the previous chain, then write a fresh one.
  const PageId old = pager.header().catalog_first_page;
  if (old != kInvalidPage) {
    HeapFile(pager, old).destroy();
  }
  const PageId first = HeapFile::create(pager);
  HeapFile heap(pager, first);
  std::vector<std::uint8_t> buf;
  for (const auto& [name, def] : tables_) {
    buf.clear();
    serializeRow(tableRow(def), buf);
    heap.insert(buf.data(), buf.size());
  }
  for (const auto& [name, def] : indexes_) {
    buf.clear();
    serializeRow(indexRow(def), buf);
    heap.insert(buf.data(), buf.size());
  }
  pager.headerForWrite().catalog_first_page = first;
}

const TableDef* Catalog::findTable(std::string_view name) const {
  // Table names are case-insensitive, like mainstream SQL engines.
  for (const auto& [key, def] : tables_) {
    if (util::iequals(key, name)) return &def;
  }
  return nullptr;
}

const IndexDef* Catalog::findIndex(std::string_view name) const {
  for (const auto& [key, def] : indexes_) {
    if (util::iequals(key, name)) return &def;
  }
  return nullptr;
}

std::vector<const IndexDef*> Catalog::indexesOn(std::string_view table) const {
  std::vector<const IndexDef*> out;
  for (const auto& [name, def] : indexes_) {
    if (util::iequals(def.table, table)) out.push_back(&def);
  }
  return out;
}

const IndexDef* Catalog::indexOnColumn(std::string_view table, int column) const {
  for (const auto& [name, def] : indexes_) {
    if (util::iequals(def.table, table) && !def.columns.empty() &&
        def.columns.front() == column) {
      return &def;
    }
  }
  return nullptr;
}

void Catalog::addTable(TableDef def) {
  if (findTable(def.name) != nullptr) {
    throw StorageError("catalog: table '" + def.name + "' already exists");
  }
  tables_.emplace(def.name, std::move(def));
}

void Catalog::addIndex(IndexDef def) {
  if (findIndex(def.name) != nullptr) {
    throw StorageError("catalog: index '" + def.name + "' already exists");
  }
  indexes_.emplace(def.name, std::move(def));
}

void Catalog::removeTable(std::string_view name) {
  for (auto it = indexes_.begin(); it != indexes_.end();) {
    if (util::iequals(it->second.table, name)) {
      it = indexes_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = tables_.begin(); it != tables_.end(); ++it) {
    if (util::iequals(it->first, name)) {
      tables_.erase(it);
      return;
    }
  }
  throw StorageError("catalog: no table named '" + std::string(name) + "'");
}

void Catalog::setTableFirstPage(std::string_view name, PageId first_page) {
  for (auto& [key, def] : tables_) {
    if (util::iequals(key, name)) {
      def.first_page = first_page;
      return;
    }
  }
  throw StorageError("catalog: no table named '" + std::string(name) + "'");
}

void Catalog::setIndexRoot(std::string_view name, PageId root) {
  for (auto& [key, def] : indexes_) {
    if (util::iequals(key, name)) {
      def.root = root;
      return;
    }
  }
  throw StorageError("catalog: no index named '" + std::string(name) + "'");
}

void Catalog::removeIndex(std::string_view name) {
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if (util::iequals(it->first, name)) {
      indexes_.erase(it);
      return;
    }
  }
  throw StorageError("catalog: no index named '" + std::string(name) + "'");
}

}  // namespace perftrack::minidb
