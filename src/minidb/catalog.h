// minidb: system catalog — persistent table and index definitions.
//
// The catalog lives in its own heap chain (anchored in the header page), one
// serialized row per table or index. DDL is rare, so catalog mutation simply
// rewrites the chain. The in-memory Catalog object is a cache rebuilt from
// pages on open and after every rollback.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "minidb/pager.h"
#include "minidb/types.h"
#include "minidb/value.h"

namespace perftrack::minidb {

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::Text;
};

struct TableDef {
  std::string name;
  std::vector<ColumnDef> columns;
  int primary_key = -1;  // column ordinal, or -1 when the table has no PK
  PageId first_page = kInvalidPage;

  /// Ordinal of `column`, or -1.
  int columnIndex(std::string_view column) const;
};

struct IndexDef {
  std::string name;
  std::string table;
  std::vector<int> columns;  // column ordinals in key order
  bool unique = false;
  PageId root = kInvalidPage;
};

/// In-memory view of the catalog with load/save against the pager.
class Catalog {
 public:
  void load(const Pager& pager);
  void save(Pager& pager) const;

  const TableDef* findTable(std::string_view name) const;
  const IndexDef* findIndex(std::string_view name) const;

  /// All indexes defined on `table`.
  std::vector<const IndexDef*> indexesOn(std::string_view table) const;

  /// An index whose leading column is `column` of `table`, or nullptr.
  const IndexDef* indexOnColumn(std::string_view table, int column) const;

  void addTable(TableDef def);
  void addIndex(IndexDef def);
  void removeTable(std::string_view name);  // also removes its indexes
  void removeIndex(std::string_view name);

  /// Repoints a table's heap chain (used by VACUUM). Throws when absent.
  void setTableFirstPage(std::string_view name, PageId first_page);
  /// Repoints an index's root (used by VACUUM). Throws when absent.
  void setIndexRoot(std::string_view name, PageId root);

  const std::map<std::string, TableDef>& tables() const { return tables_; }
  const std::map<std::string, IndexDef>& indexes() const { return indexes_; }

 private:
  std::map<std::string, TableDef> tables_;
  std::map<std::string, IndexDef> indexes_;
};

}  // namespace perftrack::minidb
