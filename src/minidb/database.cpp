#include "minidb/database.h"

#include "minidb/keycodec.h"
#include "util/error.h"
#include "util/strings.h"

namespace perftrack::minidb {

using util::StorageError;

std::unique_ptr<Database> Database::open(const std::string& path) {
  return open(path, OpenOptions{});
}

std::unique_ptr<Database> Database::open(const std::string& path,
                                         const OpenOptions& options) {
  return std::make_unique<Database>(std::make_unique<FilePager>(
      path, options.durability, options.vfs, options.wal_autocheckpoint));
}

std::unique_ptr<Database> Database::openMemory() {
  return std::make_unique<Database>(std::make_unique<MemPager>());
}

Database::Database(std::unique_ptr<Pager> pager) : pager_(std::move(pager)) {
  catalog_.load(*pager_);
}

const TableDef& Database::tableOrThrow(const std::string& name) const {
  const TableDef* def = catalog_.findTable(name);
  if (def == nullptr) throw StorageError("no such table: " + name);
  return *def;
}

void Database::assertNoOpenCursors(const char* op) const {
  if (open_cursors_ > 0) {
    throw StorageError(std::string(op) + ": " + std::to_string(open_cursors_) +
                       " cursor(s) still open on this database");
  }
}

void Database::assertNoCursorsAtAll(const char* op) const {
  assertNoOpenCursors(op);
  if (snapshot_cursors_ > 0) {
    throw StorageError(std::string(op) + ": " + std::to_string(snapshot_cursors_) +
                       " snapshot cursor(s) still open on this database");
  }
}

void Database::noteSchemaChange() {
  if (pager_->inTransaction()) txn_schema_touched_ = true;
  ++schema_epoch_;
}

// --- cursors -----------------------------------------------------------------

Database::TableCursor::TableCursor(const Database& db, PageId first_page)
    : pin_(db), it_(db.pager_.get(), first_page, 0) {}

bool Database::TableCursor::next(RecordId& rid, Row& row) {
  if (!pin_.active() || it_.done()) {
    close();
    return false;
  }
  rid = it_.rid();
  row = deserializeRow(it_.data(), it_.size());
  it_.next();
  return true;
}

void Database::TableCursor::close() { pin_.release(); }

Database::IndexCursor::IndexCursor(const Database& db, const IndexDef& index,
                                   const TableDef& table)
    : db_(&db),
      pin_(db),
      index_name_(index.name),
      columns_(index.columns),
      heap_first_(table.first_page) {}

bool Database::IndexCursor::next(RecordId& rid, Row& row) {
  if (!pin_.active()) return false;
  HeapFile heap(const_cast<Pager&>(*db_->pager_), heap_first_);
  std::vector<std::uint8_t> buf;
  while (it_ && !it_->done()) {
    const std::string_view key = it_->key();
    if (equal_mode_ && key.substr(0, prefix_.size()) != prefix_) break;
    const RecordId cur = decodeRecordIdSuffix(std::string(key));
    it_->next();
    if (!heap.read(cur, buf)) {
      close();
      throw StorageError("index cursor: dangling index entry in " + index_name_);
    }
    Row candidate = deserializeRow(buf.data(), buf.size());
    if (equal_mode_) {
      // Numeric index keys round through double; re-verify with exact values.
      bool exact = true;
      for (std::size_t i = 0; i < key_prefix_.size(); ++i) {
        if (candidate.at(columns_[i]).compare(key_prefix_[i]) != 0) {
          exact = false;
          break;
        }
      }
      if (!exact) continue;
    } else {
      const Value& v = candidate.at(first_col_);
      if (lower_) {
        const int c = v.compare(*lower_);
        if (c < 0 || (c == 0 && !lower_inclusive_)) continue;
      }
      if (upper_) {
        const int c = v.compare(*upper_);
        if (c > 0 || (c == 0 && !upper_inclusive_)) break;
      }
    }
    rid = cur;
    row = std::move(candidate);
    return true;
  }
  close();
  return false;
}

void Database::IndexCursor::close() {
  it_.reset();
  pin_.release();
}

Database::TableCursor Database::openCursor(const std::string& table) const {
  const TableDef& def = tableOrThrow(table);
  return TableCursor(*this, def.first_page);
}

Database::IndexCursor Database::openIndexEqual(const IndexDef& index,
                                               std::vector<Value> key_prefix) const {
  const TableDef& table = tableOrThrow(index.table);
  IndexCursor cur(*this, index, table);
  cur.equal_mode_ = true;
  cur.prefix_ = encodeKey(key_prefix);
  cur.key_prefix_ = std::move(key_prefix);
  cur.it_ = BTree(const_cast<Pager&>(*pager_), index.root).lowerBound(cur.prefix_);
  return cur;
}

Database::IndexCursor Database::openIndexRange(const IndexDef& index,
                                               std::optional<Value> lower,
                                               bool lower_inclusive,
                                               std::optional<Value> upper,
                                               bool upper_inclusive) const {
  const TableDef& table = tableOrThrow(index.table);
  IndexCursor cur(*this, index, table);
  cur.equal_mode_ = false;
  cur.lower_ = std::move(lower);
  cur.upper_ = std::move(upper);
  cur.lower_inclusive_ = lower_inclusive;
  cur.upper_inclusive_ = upper_inclusive;
  cur.first_col_ = index.columns.front();
  EncodedKey start;
  if (cur.lower_) encodeValue(*cur.lower_, start);
  cur.it_ = BTree(const_cast<Pager&>(*pager_), index.root).lowerBound(start);
  return cur;
}

void Database::createTable(const std::string& name, std::vector<ColumnDef> columns,
                           int primary_key) {
  assertNoCursorsAtAll("CREATE TABLE");
  if (columns.empty()) throw StorageError("createTable: no columns");
  if (primary_key >= static_cast<int>(columns.size())) {
    throw StorageError("createTable: primary key ordinal out of range");
  }
  if (primary_key >= 0 && columns[primary_key].type != ColumnType::Integer) {
    throw StorageError("createTable: primary key must be INTEGER");
  }
  TableDef def;
  def.name = name;
  def.columns = std::move(columns);
  def.primary_key = primary_key;
  def.first_page = HeapFile::create(*pager_);
  catalog_.addTable(def);
  noteSchemaChange();
  if (primary_key >= 0) {
    IndexDef pk;
    pk.name = name + "__pk";
    pk.table = name;
    pk.columns = {primary_key};
    pk.unique = true;
    pk.root = BTree::create(*pager_);
    catalog_.addIndex(std::move(pk));
  }
  catalog_.save(*pager_);
}

void Database::dropTable(const std::string& name) {
  assertNoCursorsAtAll("DROP TABLE");
  const TableDef& def = tableOrThrow(name);
  for (const IndexDef* index : catalog_.indexesOn(def.name)) {
    BTree(*pager_, index->root).destroy();
  }
  HeapFile(*pager_, def.first_page).destroy();
  next_ids_.erase(def.name);
  catalog_.removeTable(name);
  noteSchemaChange();
  catalog_.save(*pager_);
}

void Database::createIndex(const std::string& name, const std::string& table,
                           const std::vector<std::string>& columns, bool unique) {
  assertNoCursorsAtAll("CREATE INDEX");
  const TableDef& def = tableOrThrow(table);
  IndexDef index;
  index.name = name;
  index.table = def.name;
  index.unique = unique;
  for (const std::string& col : columns) {
    const int ordinal = def.columnIndex(col);
    if (ordinal < 0) {
      throw StorageError("createIndex: no column '" + col + "' in " + table);
    }
    index.columns.push_back(ordinal);
  }
  index.root = BTree::create(*pager_);
  // Backfill from existing rows.
  BTree tree(*pager_, index.root);
  HeapFile heap(*pager_, def.first_page);
  for (auto it = heap.begin(); !it.done(); it.next()) {
    const Row row = deserializeRow(it.data(), it.size());
    if (unique) {
      std::vector<Value> key_values;
      for (int c : index.columns) key_values.push_back(row.at(c));
      EncodedKey prefix = encodeKey(key_values);
      auto probe = tree.lowerBound(prefix);
      if (!probe.done() && probe.key().substr(0, prefix.size()) == prefix) {
        BTree(*pager_, index.root).destroy();
        throw StorageError("createIndex: duplicate keys violate UNIQUE for " + name);
      }
    }
    tree.insert(indexKeyFor(index, def, row, it.rid()));
  }
  catalog_.addIndex(std::move(index));
  noteSchemaChange();
  catalog_.save(*pager_);
}

void Database::dropIndex(const std::string& name) {
  assertNoCursorsAtAll("DROP INDEX");
  const IndexDef* def = catalog_.findIndex(name);
  if (def == nullptr) throw StorageError("no such index: " + name);
  BTree(*pager_, def->root).destroy();
  catalog_.removeIndex(name);
  noteSchemaChange();
  catalog_.save(*pager_);
}

EncodedKey Database::indexKeyFor(const IndexDef& index, const TableDef& table,
                                 const Row& row, RecordId rid) const {
  (void)table;
  EncodedKey key;
  for (int c : index.columns) encodeValue(row.at(c), key);
  encodeRecordIdSuffix(rid, key);
  return key;
}

void Database::checkUnique(const IndexDef& index, const TableDef& table,
                           const Row& row) const {
  (void)table;
  std::vector<Value> key_values;
  for (int c : index.columns) key_values.push_back(row.at(c));
  const EncodedKey prefix = encodeKey(key_values);
  BTree tree(const_cast<Pager&>(*pager_), index.root);
  auto it = tree.lowerBound(prefix);
  if (!it.done() && it.key().substr(0, prefix.size()) == prefix) {
    throw StorageError("UNIQUE constraint violated on index " + index.name);
  }
}

void Database::insertIntoIndexes(const TableDef& table, const Row& row, RecordId rid) {
  for (const IndexDef* index : catalog_.indexesOn(table.name)) {
    BTree(*pager_, index->root).insert(indexKeyFor(*index, table, row, rid));
  }
}

void Database::removeFromIndexes(const TableDef& table, const Row& row, RecordId rid) {
  for (const IndexDef* index : catalog_.indexesOn(table.name)) {
    BTree(*pager_, index->root).erase(indexKeyFor(*index, table, row, rid));
  }
}

std::int64_t Database::nextId(const TableDef& table) {
  auto it = next_ids_.find(table.name);
  if (it == next_ids_.end()) {
    // First auto-assignment since open/rollback: find the current maximum.
    std::int64_t max_id = 0;
    HeapFile heap(*pager_, table.first_page);
    for (auto rec = heap.begin(); !rec.done(); rec.next()) {
      const Row row = deserializeRow(rec.data(), rec.size());
      const Value& pk = row.at(table.primary_key);
      if (pk.isInt() && pk.asInt() > max_id) max_id = pk.asInt();
    }
    it = next_ids_.emplace(table.name, max_id).first;
  }
  return ++it->second;
}

std::int64_t Database::insertRow(const std::string& table_name, Row row) {
  assertNoOpenCursors("INSERT");
  const TableDef& table = tableOrThrow(table_name);
  if (row.size() != table.columns.size()) {
    throw StorageError("insertRow: expected " + std::to_string(table.columns.size()) +
                       " values for " + table_name + ", got " + std::to_string(row.size()));
  }
  std::int64_t pk_value = 0;
  if (table.primary_key >= 0) {
    Value& pk = row[table.primary_key];
    if (pk.isNull()) pk = Value(nextId(table));
    pk_value = pk.asInt();
  }
  for (const IndexDef* index : catalog_.indexesOn(table.name)) {
    if (index->unique) checkUnique(*index, table, row);
  }
  std::vector<std::uint8_t> buf;
  serializeRow(row, buf);
  HeapFile heap(*pager_, table.first_page);
  const RecordId rid = heap.insert(buf.data(), buf.size());
  insertIntoIndexes(table, row, rid);
  invidx_.onTableMutated(table.name);
  return pk_value;
}

bool Database::eraseRow(const std::string& table_name, RecordId rid) {
  assertNoOpenCursors("DELETE");
  const TableDef& table = tableOrThrow(table_name);
  HeapFile heap(*pager_, table.first_page);
  std::vector<std::uint8_t> buf;
  if (!heap.read(rid, buf)) return false;
  const Row row = deserializeRow(buf.data(), buf.size());
  removeFromIndexes(table, row, rid);
  heap.erase(rid);
  invidx_.onTableMutated(table.name);
  return true;
}

void Database::updateRow(const std::string& table_name, RecordId rid, const Row& row) {
  assertNoOpenCursors("UPDATE");
  const TableDef& table = tableOrThrow(table_name);
  if (row.size() != table.columns.size()) {
    throw StorageError("updateRow: wrong column count for " + table_name);
  }
  HeapFile heap(*pager_, table.first_page);
  std::vector<std::uint8_t> old_buf;
  if (!heap.read(rid, old_buf)) throw StorageError("updateRow: record not found");
  const Row old_row = deserializeRow(old_buf.data(), old_buf.size());
  removeFromIndexes(table, old_row, rid);
  for (const IndexDef* index : catalog_.indexesOn(table.name)) {
    if (index->unique) checkUnique(*index, table, row);
  }
  std::vector<std::uint8_t> buf;
  serializeRow(row, buf);
  const RecordId new_rid = heap.update(rid, buf.data(), buf.size());
  insertIntoIndexes(table, row, new_rid);
  invidx_.onTableMutated(table.name);
}

std::optional<Row> Database::readRow(const std::string& table_name, RecordId rid) const {
  const TableDef& table = tableOrThrow(table_name);
  HeapFile heap(const_cast<Pager&>(*pager_), table.first_page);
  std::vector<std::uint8_t> buf;
  if (!heap.read(rid, buf)) return std::nullopt;
  return deserializeRow(buf.data(), buf.size());
}

void Database::scan(const std::string& table_name,
                    const std::function<bool(RecordId, const Row&)>& fn) const {
  const TableDef& table = tableOrThrow(table_name);
  HeapFile heap(const_cast<Pager&>(*pager_), table.first_page);
  for (auto it = heap.begin(); !it.done(); it.next()) {
    const Row row = deserializeRow(it.data(), it.size());
    if (!fn(it.rid(), row)) return;
  }
}

void Database::indexScanEqual(const IndexDef& index, const std::vector<Value>& key_prefix,
                              const std::function<bool(RecordId, const Row&)>& fn) const {
  const TableDef& table = tableOrThrow(index.table);
  const EncodedKey prefix = encodeKey(key_prefix);
  BTree tree(const_cast<Pager&>(*pager_), index.root);
  HeapFile heap(const_cast<Pager&>(*pager_), table.first_page);
  std::vector<std::uint8_t> buf;
  for (auto it = tree.lowerBound(prefix); !it.done(); it.next()) {
    const std::string_view key = it.key();
    if (key.substr(0, prefix.size()) != prefix) break;
    const RecordId rid = decodeRecordIdSuffix(std::string(key));
    if (!heap.read(rid, buf)) {
      throw StorageError("indexScanEqual: dangling index entry in " + index.name);
    }
    const Row row = deserializeRow(buf.data(), buf.size());
    // Numeric index keys round through double; re-verify with exact values.
    bool exact = true;
    for (std::size_t i = 0; i < key_prefix.size(); ++i) {
      if (row.at(index.columns[i]).compare(key_prefix[i]) != 0) {
        exact = false;
        break;
      }
    }
    if (exact && !fn(rid, row)) return;
  }
}

void Database::indexScanRange(const IndexDef& index, const std::optional<Value>& lower,
                              bool lower_inclusive, const std::optional<Value>& upper,
                              bool upper_inclusive,
                              const std::function<bool(RecordId, const Row&)>& fn) const {
  const TableDef& table = tableOrThrow(index.table);
  EncodedKey start;
  if (lower) encodeValue(*lower, start);
  BTree tree(const_cast<Pager&>(*pager_), index.root);
  HeapFile heap(const_cast<Pager&>(*pager_), table.first_page);
  const int first_col = index.columns.front();
  std::vector<std::uint8_t> buf;
  for (auto it = tree.lowerBound(start); !it.done(); it.next()) {
    const RecordId rid = decodeRecordIdSuffix(std::string(it.key()));
    if (!heap.read(rid, buf)) {
      throw StorageError("indexScanRange: dangling index entry in " + index.name);
    }
    const Row row = deserializeRow(buf.data(), buf.size());
    const Value& v = row.at(first_col);
    if (lower) {
      const int c = v.compare(*lower);
      if (c < 0 || (c == 0 && !lower_inclusive)) continue;
    }
    if (upper) {
      const int c = v.compare(*upper);
      if (c > 0 || (c == 0 && !upper_inclusive)) break;
    }
    if (!fn(rid, row)) return;
  }
}

void Database::vacuum() {
  assertNoCursorsAtAll("VACUUM");
  if (pager_->inTransaction()) {
    throw StorageError("VACUUM is not allowed inside a transaction");
  }
  // Rewrite each heap compactly, then rebuild its indexes against the new
  // record ids. Old pages go back to the free list, so the logical size
  // stops growing and space from deleted rows is reused.
  for (const auto& [table_name, def] : catalog_.tables()) {
    HeapFile old_heap(*pager_, def.first_page);
    const PageId fresh_first = HeapFile::create(*pager_);
    HeapFile fresh(*pager_, fresh_first);

    std::vector<std::pair<Row, RecordId>> moved;  // row + new rid
    for (auto it = old_heap.begin(); !it.done(); it.next()) {
      const RecordId rid = fresh.insert(it.data(), it.size());
      moved.emplace_back(deserializeRow(it.data(), it.size()), rid);
    }
    old_heap.destroy();
    catalog_.setTableFirstPage(table_name, fresh_first);

    for (const IndexDef* index : catalog_.indexesOn(table_name)) {
      BTree(*pager_, index->root).destroy();
      const PageId fresh_root = BTree::create(*pager_);
      BTree tree(*pager_, fresh_root);
      const TableDef* fresh_def = catalog_.findTable(table_name);
      for (const auto& [row, rid] : moved) {
        tree.insert(indexKeyFor(*index, *fresh_def, row, rid));
      }
      catalog_.setIndexRoot(index->name, fresh_root);
    }
  }
  catalog_.save(*pager_);
  pager_->flush();
  ++schema_epoch_;
}

std::vector<std::string> Database::verifyIntegrity() const {
  std::vector<std::string> problems;
  for (const auto& [table_name, def] : catalog_.tables()) {
    // Collect the expected index keys from the heap.
    HeapFile heap(const_cast<Pager&>(*pager_), def.first_page);
    std::size_t live_rows = 0;
    std::vector<std::pair<Row, RecordId>> rows;
    for (auto it = heap.begin(); !it.done(); it.next()) {
      rows.emplace_back(deserializeRow(it.data(), it.size()), it.rid());
      ++live_rows;
    }
    for (const IndexDef* index : catalog_.indexesOn(table_name)) {
      BTree tree(const_cast<Pager&>(*pager_), index->root);
      // Heap -> index: every live row must be findable.
      for (const auto& [row, rid] : rows) {
        if (!tree.contains(indexKeyFor(*index, def, row, rid))) {
          problems.push_back("index " + index->name + " is missing the entry for a "
                             "live row of " + table_name);
        }
      }
      // Index -> heap: every entry must point at a live record, and the
      // entry count must equal the row count (no duplicates, no orphans).
      std::size_t entries = 0;
      for (auto it = tree.begin(); !it.done(); it.next()) {
        ++entries;
        const RecordId rid = decodeRecordIdSuffix(std::string(it.key()));
        std::vector<std::uint8_t> buf;
        if (!heap.read(rid, buf)) {
          problems.push_back("index " + index->name +
                             " holds an entry for a deleted record of " + table_name);
        }
      }
      if (entries != live_rows) {
        problems.push_back("index " + index->name + " has " + std::to_string(entries) +
                           " entries for " + std::to_string(live_rows) +
                           " live rows of " + table_name);
      }
    }
  }
  return problems;
}

void Database::begin() {
  pager_->beginJournal();
  txn_schema_touched_ = false;
}

void Database::commit() {
  pager_->commitJournal();
  txn_schema_touched_ = false;
  pager_->flush();
}

std::uint64_t Database::commitDeferred() {
  pager_->commitJournal();
  txn_schema_touched_ = false;
  return pager_->flushAsync();
}

void Database::rollback() {
  assertNoOpenCursors("ROLLBACK");
  const bool schema_touched = txn_schema_touched_;
  pager_->rollbackJournal();
  txn_schema_touched_ = false;
  // Pages reverted under us: rebuild every cache derived from them. The
  // catalog reload only matters (and is only safe against concurrent
  // snapshot readers) when the transaction ran DDL, which requires schema
  // exclusion from the server's gate.
  if (schema_touched) catalog_.load(*pager_);
  next_ids_.clear();
  ++schema_epoch_;
}

}  // namespace perftrack::minidb
