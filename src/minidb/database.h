// minidb: the storage-layer database object.
//
// Ties the pager, catalog, heap files, and B+-tree indexes into one
// transactional record store. The SQL front-end (minidb/sql) compiles
// statements against this interface; PerfTrack's DB abstraction layer
// (src/dbal) wraps it behind a Connection facade, the way the paper's
// Python layer wrapped Oracle/PostgreSQL.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "minidb/btree.h"
#include "minidb/catalog.h"
#include "minidb/keycodec.h"
#include "minidb/heap.h"
#include "minidb/pager.h"
#include "minidb/value.h"

namespace perftrack::minidb {

/// Storage-layer open options (durability mode, VFS override).
struct OpenOptions {
  Durability durability = Durability::Full;
  /// All file operations route through this VFS when set (borrowed, must
  /// outlive the Database). Defaults to the real filesystem; the crash
  /// tests pass a FaultInjectingVfs here.
  Vfs* vfs = nullptr;
};

class Database {
 public:
  /// Opens (or creates) a file-backed database with full durability.
  static std::unique_ptr<Database> open(const std::string& path);
  /// Opens (or creates) a file-backed database with explicit options.
  static std::unique_ptr<Database> open(const std::string& path,
                                        const OpenOptions& options);
  /// Creates a fresh in-memory database.
  static std::unique_ptr<Database> openMemory();

  explicit Database(std::unique_ptr<Pager> pager);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- DDL -----------------------------------------------------------------
  /// Creates a table. `primary_key` column (if any) must be INTEGER; it gets
  /// a unique index and auto-assignment of NULL values on insert.
  void createTable(const std::string& name, std::vector<ColumnDef> columns,
                   int primary_key = -1);
  void dropTable(const std::string& name);
  void createIndex(const std::string& name, const std::string& table,
                   const std::vector<std::string>& columns, bool unique = false);
  void dropIndex(const std::string& name);

  const Catalog& catalog() const { return catalog_; }

  /// Monotonic counter bumped whenever catalog-derived pointers may go stale
  /// (DDL, VACUUM, rollback). Cached query plans record the epoch they were
  /// built under and replan when it no longer matches.
  std::uint64_t schemaEpoch() const { return schema_epoch_; }

  // --- DML -----------------------------------------------------------------
  /// Inserts `row` (one value per column, in declaration order). A NULL
  /// primary key is auto-assigned the next integer id. Returns the assigned
  /// primary key value (or 0 when the table has no PK).
  std::int64_t insertRow(const std::string& table, Row row);

  /// Deletes the record at `rid`. Returns false when already gone.
  bool eraseRow(const std::string& table, RecordId rid);

  /// Replaces the record at `rid` with `row`; maintains indexes.
  void updateRow(const std::string& table, RecordId rid, const Row& row);

  /// Reads one record.
  std::optional<Row> readRow(const std::string& table, RecordId rid) const;

  /// Full-scan visitor; `fn` returns false to stop early.
  void scan(const std::string& table,
            const std::function<bool(RecordId, const Row&)>& fn) const;

  /// Index range scan: visits rows whose key columns equal `key_prefix`
  /// (ordered); `fn` returns false to stop.
  void indexScanEqual(const IndexDef& index, const std::vector<Value>& key_prefix,
                      const std::function<bool(RecordId, const Row&)>& fn) const;

  /// Index range scan over [lower, upper] bounds on the first key column.
  /// Null optionals mean unbounded.
  void indexScanRange(const IndexDef& index, const std::optional<Value>& lower,
                      bool lower_inclusive, const std::optional<Value>& upper,
                      bool upper_inclusive,
                      const std::function<bool(RecordId, const Row&)>& fn) const;

  // --- transactions ---------------------------------------------------------
  void begin();
  void commit();
  void rollback();
  bool inTransaction() const { return pager_->inTransaction(); }

  /// Rewrites every table's heap (dropping tombstones and dead payload
  /// bytes) and rebuilds every index, then returns the freed pages to the
  /// free list. Record ids change; not allowed inside a transaction.
  void vacuum();

  /// Cross-checks every index against its heap: each index entry must point
  /// at a live record whose key columns re-encode to the entry, and each
  /// live record must appear in every index exactly once. Returns
  /// human-readable problem descriptions (empty = consistent).
  std::vector<std::string> verifyIntegrity() const;

  /// Persists all dirty pages (implicit on destruction for file backends).
  void flush() { pager_->flush(); }

  /// What hot-journal recovery (if any) happened when the store was opened.
  const RecoveryStats& recoveryStats() const { return pager_->recoveryStats(); }

  /// Logical database size in bytes (Table 1 "DB size increase" metric).
  std::uint64_t sizeBytes() const { return pager_->sizeBytes(); }

  Pager& pager() { return *pager_; }

 private:
  const TableDef& tableOrThrow(const std::string& name) const;
  EncodedKey indexKeyFor(const IndexDef& index, const TableDef& table, const Row& row,
                         RecordId rid) const;
  void insertIntoIndexes(const TableDef& table, const Row& row, RecordId rid);
  void removeFromIndexes(const TableDef& table, const Row& row, RecordId rid);
  void checkUnique(const IndexDef& index, const TableDef& table, const Row& row) const;
  std::int64_t nextId(const TableDef& table);

  std::unique_ptr<Pager> pager_;
  Catalog catalog_;
  std::uint64_t schema_epoch_ = 0;
  // Per-table auto-increment cursors, computed lazily by scanning the PK
  // index once. Invalidated on rollback (ids may have been given back).
  std::unordered_map<std::string, std::int64_t> next_ids_;
};

}  // namespace perftrack::minidb
