// minidb: the storage-layer database object.
//
// Ties the pager, catalog, heap files, and B+-tree indexes into one
// transactional record store. The SQL front-end (minidb/sql) compiles
// statements against this interface; PerfTrack's DB abstraction layer
// (src/dbal) wraps it behind a Connection facade, the way the paper's
// Python layer wrapped Oracle/PostgreSQL.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "minidb/btree.h"
#include "minidb/catalog.h"
#include "minidb/keycodec.h"
#include "minidb/heap.h"
#include "minidb/pager.h"
#include "minidb/value.h"

namespace perftrack::minidb {

/// Storage-layer open options (durability mode, VFS override).
struct OpenOptions {
  Durability durability = Durability::Full;
  /// All file operations route through this VFS when set (borrowed, must
  /// outlive the Database). Defaults to the real filesystem; the crash
  /// tests pass a FaultInjectingVfs here.
  Vfs* vfs = nullptr;
};

class Database {
 public:
  /// RAII pin held by every open cursor (storage-level and SQL-level).
  /// While at least one pin is live, operations that would invalidate live
  /// iterators — DDL, VACUUM, ROLLBACK, and row mutations — throw
  /// StorageError instead of corrupting the scan.
  class CursorPin {
   public:
    CursorPin() = default;
    explicit CursorPin(const Database& db) : db_(&db) { ++db_->open_cursors_; }
    CursorPin(CursorPin&& o) noexcept : db_(o.db_) { o.db_ = nullptr; }
    CursorPin& operator=(CursorPin&& o) noexcept {
      if (this != &o) {
        release();
        db_ = o.db_;
        o.db_ = nullptr;
      }
      return *this;
    }
    CursorPin(const CursorPin&) = delete;
    CursorPin& operator=(const CursorPin&) = delete;
    ~CursorPin() { release(); }

    void release() {
      if (db_ != nullptr) --db_->open_cursors_;
      db_ = nullptr;
    }
    bool active() const { return db_ != nullptr; }

   private:
    const Database* db_ = nullptr;
  };

  /// Pull-based full-table scan. Obtained from openCursor(); holds a
  /// CursorPin for its open lifetime.
  class TableCursor {
   public:
    TableCursor(TableCursor&&) = default;
    TableCursor& operator=(TableCursor&&) = default;

    /// Produces the next live record. Returns false (and closes) at end.
    bool next(RecordId& rid, Row& row);
    /// Releases the pin early; idempotent (next() then always returns false).
    void close();
    bool isOpen() const { return pin_.active(); }

   private:
    friend class Database;
    TableCursor(const Database& db, PageId first_page);
    CursorPin pin_;
    HeapFile::Iterator it_;
  };

  /// Pull-based index probe (point lookup or range scan), mirroring the
  /// semantics of indexScanEqual()/indexScanRange().
  class IndexCursor {
   public:
    IndexCursor(IndexCursor&&) = default;
    IndexCursor& operator=(IndexCursor&&) = default;

    bool next(RecordId& rid, Row& row);
    void close();
    bool isOpen() const { return pin_.active(); }

   private:
    friend class Database;
    IndexCursor(const Database& db, const IndexDef& index, const TableDef& table);
    const Database* db_ = nullptr;
    CursorPin pin_;
    std::string index_name_;  // for dangling-entry error messages
    std::vector<int> columns_;
    PageId heap_first_ = kInvalidPage;
    bool equal_mode_ = true;
    // equal mode: encoded prefix plus exact values for re-verification.
    EncodedKey prefix_;
    std::vector<Value> key_prefix_;
    // range mode: bounds on the first key column.
    std::optional<Value> lower_, upper_;
    bool lower_inclusive_ = true, upper_inclusive_ = true;
    int first_col_ = 0;
    std::optional<BTree::Iterator> it_;
  };

  /// Opens (or creates) a file-backed database with full durability.
  static std::unique_ptr<Database> open(const std::string& path);
  /// Opens (or creates) a file-backed database with explicit options.
  static std::unique_ptr<Database> open(const std::string& path,
                                        const OpenOptions& options);
  /// Creates a fresh in-memory database.
  static std::unique_ptr<Database> openMemory();

  explicit Database(std::unique_ptr<Pager> pager);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- DDL -----------------------------------------------------------------
  /// Creates a table. `primary_key` column (if any) must be INTEGER; it gets
  /// a unique index and auto-assignment of NULL values on insert.
  void createTable(const std::string& name, std::vector<ColumnDef> columns,
                   int primary_key = -1);
  void dropTable(const std::string& name);
  void createIndex(const std::string& name, const std::string& table,
                   const std::vector<std::string>& columns, bool unique = false);
  void dropIndex(const std::string& name);

  const Catalog& catalog() const { return catalog_; }

  /// Monotonic counter bumped whenever catalog-derived pointers may go stale
  /// (DDL, VACUUM, rollback). Cached query plans record the epoch they were
  /// built under and replan when it no longer matches.
  std::uint64_t schemaEpoch() const { return schema_epoch_; }

  // --- DML -----------------------------------------------------------------
  /// Inserts `row` (one value per column, in declaration order). A NULL
  /// primary key is auto-assigned the next integer id. Returns the assigned
  /// primary key value (or 0 when the table has no PK).
  std::int64_t insertRow(const std::string& table, Row row);

  /// Deletes the record at `rid`. Returns false when already gone.
  bool eraseRow(const std::string& table, RecordId rid);

  /// Replaces the record at `rid` with `row`; maintains indexes.
  void updateRow(const std::string& table, RecordId rid, const Row& row);

  /// Reads one record.
  std::optional<Row> readRow(const std::string& table, RecordId rid) const;

  /// Full-scan visitor; `fn` returns false to stop early.
  void scan(const std::string& table,
            const std::function<bool(RecordId, const Row&)>& fn) const;

  /// Index range scan: visits rows whose key columns equal `key_prefix`
  /// (ordered); `fn` returns false to stop.
  void indexScanEqual(const IndexDef& index, const std::vector<Value>& key_prefix,
                      const std::function<bool(RecordId, const Row&)>& fn) const;

  /// Index range scan over [lower, upper] bounds on the first key column.
  /// Null optionals mean unbounded.
  void indexScanRange(const IndexDef& index, const std::optional<Value>& lower,
                      bool lower_inclusive, const std::optional<Value>& upper,
                      bool upper_inclusive,
                      const std::function<bool(RecordId, const Row&)>& fn) const;

  // --- cursors --------------------------------------------------------------
  /// Pull-based full-table scan; the SQL layer's SeqScan operator and any
  /// caller that wants to stop early without the callback inversion.
  TableCursor openCursor(const std::string& table) const;

  /// Pull-based index point probe (rows whose key columns equal
  /// `key_prefix`, in index order, exact-value re-verified).
  IndexCursor openIndexEqual(const IndexDef& index,
                             std::vector<Value> key_prefix) const;

  /// Pull-based index range scan over [lower, upper] on the first key column.
  IndexCursor openIndexRange(const IndexDef& index, std::optional<Value> lower,
                             bool lower_inclusive, std::optional<Value> upper,
                             bool upper_inclusive) const;

  /// Pins the database for an externally managed cursor (the SQL layer's
  /// Cursor holds one for its whole open lifetime, covering the gaps between
  /// storage-level probes).
  CursorPin pinCursor() const { return CursorPin(*this); }

  /// Number of live cursor pins (tests and error messages).
  std::size_t openCursorCount() const { return open_cursors_; }

  // --- transactions ---------------------------------------------------------
  void begin();
  void commit();
  void rollback();
  bool inTransaction() const { return pager_->inTransaction(); }

  /// Rewrites every table's heap (dropping tombstones and dead payload
  /// bytes) and rebuilds every index, then returns the freed pages to the
  /// free list. Record ids change; not allowed inside a transaction.
  void vacuum();

  /// Cross-checks every index against its heap: each index entry must point
  /// at a live record whose key columns re-encode to the entry, and each
  /// live record must appear in every index exactly once. Returns
  /// human-readable problem descriptions (empty = consistent).
  std::vector<std::string> verifyIntegrity() const;

  /// Persists all dirty pages (implicit on destruction for file backends).
  void flush() { pager_->flush(); }

  /// What hot-journal recovery (if any) happened when the store was opened.
  const RecoveryStats& recoveryStats() const { return pager_->recoveryStats(); }

  /// Logical database size in bytes (Table 1 "DB size increase" metric).
  std::uint64_t sizeBytes() const { return pager_->sizeBytes(); }

  /// On-disk db file size in bytes (0 for in-memory backends).
  std::uint64_t fileSizeBytes() const { return pager_->fileSizeBytes(); }

  /// Size of the sidecar rollback journal, or 0 when absent/in-memory.
  std::uint64_t journalSizeBytes() const { return pager_->journalSizeBytes(); }

  Pager& pager() { return *pager_; }

 private:
  friend class CursorPin;

  const TableDef& tableOrThrow(const std::string& name) const;
  void assertNoOpenCursors(const char* op) const;
  EncodedKey indexKeyFor(const IndexDef& index, const TableDef& table, const Row& row,
                         RecordId rid) const;
  void insertIntoIndexes(const TableDef& table, const Row& row, RecordId rid);
  void removeFromIndexes(const TableDef& table, const Row& row, RecordId rid);
  void checkUnique(const IndexDef& index, const TableDef& table, const Row& row) const;
  std::int64_t nextId(const TableDef& table);

  std::unique_ptr<Pager> pager_;
  Catalog catalog_;
  std::uint64_t schema_epoch_ = 0;
  // Per-table auto-increment cursors, computed lazily by scanning the PK
  // index once. Invalidated on rollback (ids may have been given back).
  std::unordered_map<std::string, std::int64_t> next_ids_;
  // Live cursor pins; guarded operations refuse to run while nonzero.
  // Atomic because ptserverd opens/closes cursors from concurrent reader
  // sessions; the DbGate orders pins against writers, but pin counting
  // itself crosses reader threads.
  mutable std::atomic<std::size_t> open_cursors_{0};
};

}  // namespace perftrack::minidb
