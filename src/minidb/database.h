// minidb: the storage-layer database object.
//
// Ties the pager, catalog, heap files, and B+-tree indexes into one
// transactional record store. The SQL front-end (minidb/sql) compiles
// statements against this interface; PerfTrack's DB abstraction layer
// (src/dbal) wraps it behind a Connection facade, the way the paper's
// Python layer wrapped Oracle/PostgreSQL.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "minidb/btree.h"
#include "minidb/catalog.h"
#include "minidb/invidx/manager.h"
#include "minidb/keycodec.h"
#include "minidb/heap.h"
#include "minidb/pager.h"
#include "minidb/value.h"

namespace perftrack::minidb {

/// Storage-layer open options (durability mode, VFS override).
struct OpenOptions {
  Durability durability = Durability::Full;
  /// All file operations route through this VFS when set (borrowed, must
  /// outlive the Database). Defaults to the real filesystem; the crash
  /// tests pass a FaultInjectingVfs here.
  Vfs* vfs = nullptr;
  /// WAL mode only: checkpoint automatically before a commit once the log
  /// holds this many frames (0 = never checkpoint automatically). Ignored in
  /// other durability modes.
  std::uint32_t wal_autocheckpoint = kDefaultWalAutoCheckpoint;
};

class Database {
 public:
  /// RAII pin held by every open cursor (storage-level and SQL-level).
  /// A pin taken while the calling thread reads through a pager snapshot
  /// (SnapshotScope installed) counts as a *snapshot* cursor: its data is
  /// frozen, so row mutations and ROLLBACK may proceed underneath it — only
  /// DDL and VACUUM (which retarget catalog-derived plans) still refuse.
  /// A pin over the working state counts as an *open* cursor: DDL, VACUUM,
  /// ROLLBACK, and row mutations all throw StorageError while one is live.
  class CursorPin {
   public:
    CursorPin() = default;
    explicit CursorPin(const Database& db)
        : db_(&db), snapshot_(db.pager_->snapshotScopeActive()) {
      ++(snapshot_ ? db_->snapshot_cursors_ : db_->open_cursors_);
    }
    CursorPin(CursorPin&& o) noexcept : db_(o.db_), snapshot_(o.snapshot_) {
      o.db_ = nullptr;
    }
    CursorPin& operator=(CursorPin&& o) noexcept {
      if (this != &o) {
        release();
        db_ = o.db_;
        snapshot_ = o.snapshot_;
        o.db_ = nullptr;
      }
      return *this;
    }
    CursorPin(const CursorPin&) = delete;
    CursorPin& operator=(const CursorPin&) = delete;
    ~CursorPin() { release(); }

    void release() {
      if (db_ != nullptr) --(snapshot_ ? db_->snapshot_cursors_ : db_->open_cursors_);
      db_ = nullptr;
    }
    bool active() const { return db_ != nullptr; }
    bool isSnapshot() const { return db_ != nullptr && snapshot_; }

   private:
    const Database* db_ = nullptr;
    bool snapshot_ = false;
  };

  /// Pull-based full-table scan. Obtained from openCursor(); holds a
  /// CursorPin for its open lifetime.
  class TableCursor {
   public:
    TableCursor(TableCursor&&) = default;
    TableCursor& operator=(TableCursor&&) = default;

    /// Produces the next live record. Returns false (and closes) at end.
    bool next(RecordId& rid, Row& row);
    /// Releases the pin early; idempotent (next() then always returns false).
    void close();
    bool isOpen() const { return pin_.active(); }

   private:
    friend class Database;
    TableCursor(const Database& db, PageId first_page);
    CursorPin pin_;
    HeapFile::Iterator it_;
  };

  /// Pull-based index probe (point lookup or range scan), mirroring the
  /// semantics of indexScanEqual()/indexScanRange().
  class IndexCursor {
   public:
    IndexCursor(IndexCursor&&) = default;
    IndexCursor& operator=(IndexCursor&&) = default;

    bool next(RecordId& rid, Row& row);
    void close();
    bool isOpen() const { return pin_.active(); }

   private:
    friend class Database;
    IndexCursor(const Database& db, const IndexDef& index, const TableDef& table);
    const Database* db_ = nullptr;
    CursorPin pin_;
    std::string index_name_;  // for dangling-entry error messages
    std::vector<int> columns_;
    PageId heap_first_ = kInvalidPage;
    bool equal_mode_ = true;
    // equal mode: encoded prefix plus exact values for re-verification.
    EncodedKey prefix_;
    std::vector<Value> key_prefix_;
    // range mode: bounds on the first key column.
    std::optional<Value> lower_, upper_;
    bool lower_inclusive_ = true, upper_inclusive_ = true;
    int first_col_ = 0;
    std::optional<BTree::Iterator> it_;
  };

  /// Opens (or creates) a file-backed database with full durability.
  static std::unique_ptr<Database> open(const std::string& path);
  /// Opens (or creates) a file-backed database with explicit options.
  static std::unique_ptr<Database> open(const std::string& path,
                                        const OpenOptions& options);
  /// Creates a fresh in-memory database.
  static std::unique_ptr<Database> openMemory();

  explicit Database(std::unique_ptr<Pager> pager);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- DDL -----------------------------------------------------------------
  /// Creates a table. `primary_key` column (if any) must be INTEGER; it gets
  /// a unique index and auto-assignment of NULL values on insert.
  void createTable(const std::string& name, std::vector<ColumnDef> columns,
                   int primary_key = -1);
  void dropTable(const std::string& name);
  void createIndex(const std::string& name, const std::string& table,
                   const std::vector<std::string>& columns, bool unique = false);
  void dropIndex(const std::string& name);

  const Catalog& catalog() const { return catalog_; }

  /// Monotonic counter bumped whenever catalog-derived pointers may go stale
  /// (DDL, VACUUM, rollback). Cached query plans record the epoch they were
  /// built under and replan when it no longer matches.
  std::uint64_t schemaEpoch() const {
    return schema_epoch_.load(std::memory_order_relaxed);
  }

  // --- DML -----------------------------------------------------------------
  /// Inserts `row` (one value per column, in declaration order). A NULL
  /// primary key is auto-assigned the next integer id. Returns the assigned
  /// primary key value (or 0 when the table has no PK).
  std::int64_t insertRow(const std::string& table, Row row);

  /// Deletes the record at `rid`. Returns false when already gone.
  bool eraseRow(const std::string& table, RecordId rid);

  /// Replaces the record at `rid` with `row`; maintains indexes.
  void updateRow(const std::string& table, RecordId rid, const Row& row);

  /// Reads one record.
  std::optional<Row> readRow(const std::string& table, RecordId rid) const;

  /// Full-scan visitor; `fn` returns false to stop early.
  void scan(const std::string& table,
            const std::function<bool(RecordId, const Row&)>& fn) const;

  /// Index range scan: visits rows whose key columns equal `key_prefix`
  /// (ordered); `fn` returns false to stop.
  void indexScanEqual(const IndexDef& index, const std::vector<Value>& key_prefix,
                      const std::function<bool(RecordId, const Row&)>& fn) const;

  /// Index range scan over [lower, upper] bounds on the first key column.
  /// Null optionals mean unbounded.
  void indexScanRange(const IndexDef& index, const std::optional<Value>& lower,
                      bool lower_inclusive, const std::optional<Value>& upper,
                      bool upper_inclusive,
                      const std::function<bool(RecordId, const Row&)>& fn) const;

  // --- cursors --------------------------------------------------------------
  /// Pull-based full-table scan; the SQL layer's SeqScan operator and any
  /// caller that wants to stop early without the callback inversion.
  TableCursor openCursor(const std::string& table) const;

  /// Pull-based index point probe (rows whose key columns equal
  /// `key_prefix`, in index order, exact-value re-verified).
  IndexCursor openIndexEqual(const IndexDef& index,
                             std::vector<Value> key_prefix) const;

  /// Pull-based index range scan over [lower, upper] on the first key column.
  IndexCursor openIndexRange(const IndexDef& index, std::optional<Value> lower,
                             bool lower_inclusive, std::optional<Value> upper,
                             bool upper_inclusive) const;

  /// Pins the database for an externally managed cursor (the SQL layer's
  /// Cursor holds one for its whole open lifetime, covering the gaps between
  /// storage-level probes).
  CursorPin pinCursor() const { return CursorPin(*this); }

  /// Number of live working-state cursor pins (tests and error messages).
  std::size_t openCursorCount() const { return open_cursors_; }

  /// Number of live snapshot cursor pins (readers frozen at a commit).
  std::size_t snapshotCursorCount() const { return snapshot_cursors_; }

  // --- snapshots ------------------------------------------------------------
  /// Pins the latest committed version for lock-free reads. Install a
  /// Pager::SnapshotScope built from the returned snapshot around every read
  /// (the SQL layer does this when a cursor is opened with a snapshot).
  /// Snapshots must not be carried across DDL/VACUUM — the server's gate
  /// guarantees that by excluding readers during schema changes.
  Pager::ReadSnapshot takeSnapshot() const { return pager_->beginSnapshot(); }

  /// This database's durability mode (None for in-memory stores).
  Durability durability() const { return pager_->durability(); }

  // --- transactions ---------------------------------------------------------
  void begin();
  void commit();
  void rollback();
  bool inTransaction() const { return pager_->inTransaction(); }

  /// Commits like commit(), but in WAL mode the fsync is deferred: the
  /// returned LSN must be passed to waitDurable() before the commit is
  /// acknowledged to a client. Concurrent committers' waitDurable() calls
  /// batch into one fsync behind a leader (group commit). Returns 0 when the
  /// commit is already durable (non-WAL modes, or nothing to write).
  std::uint64_t commitDeferred();

  /// Blocks until the commit identified by `lsn` (from commitDeferred) is on
  /// stable storage. Safe to call without any lock held.
  void waitDurable(std::uint64_t lsn) { pager_->waitDurable(lsn); }

  /// WAL mode: folds the log into the db file and resets it. Not allowed
  /// inside a transaction; no-op in other modes.
  void checkpoint() { pager_->checkpoint(); }

  /// Rewrites every table's heap (dropping tombstones and dead payload
  /// bytes) and rebuilds every index, then returns the freed pages to the
  /// free list. Record ids change; not allowed inside a transaction.
  void vacuum();

  /// Cross-checks every index against its heap: each index entry must point
  /// at a live record whose key columns re-encode to the entry, and each
  /// live record must appear in every index exactly once. Returns
  /// human-readable problem descriptions (empty = consistent).
  std::vector<std::string> verifyIntegrity() const;

  /// Persists all dirty pages (implicit on destruction for file backends).
  void flush() { pager_->flush(); }

  /// What hot-journal recovery (if any) happened when the store was opened.
  const RecoveryStats& recoveryStats() const { return pager_->recoveryStats(); }

  /// Logical database size in bytes (Table 1 "DB size increase" metric).
  std::uint64_t sizeBytes() const { return pager_->sizeBytes(); }

  /// On-disk db file size in bytes (0 for in-memory backends).
  std::uint64_t fileSizeBytes() const { return pager_->fileSizeBytes(); }

  /// Size of the sidecar rollback journal, or 0 when absent/in-memory.
  std::uint64_t journalSizeBytes() const { return pager_->journalSizeBytes(); }

  /// Bytes of valid write-ahead log, or 0 when absent/not in WAL mode.
  std::uint64_t walSizeBytes() const { return pager_->walSizeBytes(); }

  Pager& pager() { return *pager_; }

  /// Inverted-index manager: posting-list indexes over this database's
  /// tables, rebuilt lazily when the schema epoch or a table's DML version
  /// moves (insertRow/eraseRow/updateRow notify it; rollback/DDL/VACUUM are
  /// covered by the epoch). See minidb/invidx/manager.h.
  invidx::Manager& invidx() { return invidx_; }

 private:
  friend class CursorPin;

  const TableDef& tableOrThrow(const std::string& name) const;
  void assertNoOpenCursors(const char* op) const;
  /// Stricter guard for DDL/VACUUM: refuses snapshot cursors too, since
  /// those operations retarget the catalog their plans were built against.
  void assertNoCursorsAtAll(const char* op) const;
  /// Bumps the schema epoch and, inside a transaction, marks it as having
  /// run DDL (so rollback knows to reload the catalog).
  void noteSchemaChange();
  EncodedKey indexKeyFor(const IndexDef& index, const TableDef& table, const Row& row,
                         RecordId rid) const;
  void insertIntoIndexes(const TableDef& table, const Row& row, RecordId rid);
  void removeFromIndexes(const TableDef& table, const Row& row, RecordId rid);
  void checkUnique(const IndexDef& index, const TableDef& table, const Row& row) const;
  std::int64_t nextId(const TableDef& table);

  std::unique_ptr<Pager> pager_;
  Catalog catalog_;
  // Atomic because snapshot readers in ptserverd revalidate cached plans
  // against the epoch while a writer session commits or rolls back.
  std::atomic<std::uint64_t> schema_epoch_{0};
  // Whether the open transaction ran DDL; rollback only reloads the catalog
  // (and thereby races with nothing: DDL requires schema exclusion) when the
  // transaction actually touched it.
  bool txn_schema_touched_ = false;
  // Per-table auto-increment cursors, computed lazily by scanning the PK
  // index once. Invalidated on rollback (ids may have been given back).
  std::unordered_map<std::string, std::int64_t> next_ids_;
  // Live cursor pins; guarded operations refuse to run while nonzero.
  // Atomic because ptserverd opens/closes cursors from concurrent reader
  // sessions; the DbGate orders pins against writers, but pin counting
  // itself crosses reader threads. Snapshot cursors (reads frozen at a
  // commit) are counted separately: they only block DDL/VACUUM.
  mutable std::atomic<std::size_t> open_cursors_{0};
  mutable std::atomic<std::size_t> snapshot_cursors_{0};
  invidx::Manager invidx_{*this};
};

}  // namespace perftrack::minidb
