#include "minidb/heap.h"

#include <cstring>

#include "util/error.h"

namespace perftrack::minidb {

using util::StorageError;

namespace {

// Page layout: [HeapPageHeader][slot 0][slot 1]...        ...[payloads]
// Payloads grow downward from kPageSize; `free_off` is the lowest used
// payload byte. `last_hint` is only meaningful on the first page of a chain
// and caches the page we last inserted into.
struct HeapPageHeader {
  PageId next;
  PageId last_hint;
  std::uint16_t slot_count;
  std::uint16_t free_off;
};

struct Slot {
  std::uint16_t off;  // 0 = tombstone
  std::uint16_t len;
};

constexpr std::size_t kHeaderSize = sizeof(HeapPageHeader);
constexpr std::size_t kSlotSize = sizeof(Slot);

HeapPageHeader* hdr(std::uint8_t* page) { return reinterpret_cast<HeapPageHeader*>(page); }
const HeapPageHeader* hdr(const std::uint8_t* page) {
  return reinterpret_cast<const HeapPageHeader*>(page);
}

Slot* slotArray(std::uint8_t* page) {
  return reinterpret_cast<Slot*>(page + kHeaderSize);
}
const Slot* slotArray(const std::uint8_t* page) {
  return reinterpret_cast<const Slot*>(page + kHeaderSize);
}

std::size_t freeSpace(const std::uint8_t* page) {
  const HeapPageHeader* h = hdr(page);
  const std::size_t slots_end = kHeaderSize + kSlotSize * h->slot_count;
  return h->free_off - slots_end;
}

void initHeapPage(std::uint8_t* page) {
  HeapPageHeader* h = hdr(page);
  h->next = kInvalidPage;
  h->last_hint = kInvalidPage;
  h->slot_count = 0;
  h->free_off = static_cast<std::uint16_t>(kPageSize);
}

}  // namespace

std::size_t HeapFile::maxRecordSize() {
  return kPageSize - kHeaderSize - kSlotSize;
}

PageId HeapFile::create(Pager& pager) {
  const PageId id = pager.allocate();
  std::uint8_t* page = pager.pageForWrite(id);
  initHeapPage(page);
  hdr(page)->last_hint = id;
  return id;
}

RecordId HeapFile::insert(const std::uint8_t* data, std::size_t size) {
  if (size > maxRecordSize()) {
    throw StorageError("HeapFile: record of " + std::to_string(size) +
                       " bytes exceeds page capacity");
  }
  PageId target = hdr(pager_->pageForRead(first_))->last_hint;
  if (target == kInvalidPage) target = first_;
  // Need room for the payload plus one new slot entry.
  if (freeSpace(pager_->pageForRead(target)) < size + kSlotSize) {
    const PageId fresh = pager_->allocate();
    initHeapPage(pager_->pageForWrite(fresh));
    hdr(pager_->pageForWrite(target))->next = fresh;
    hdr(pager_->pageForWrite(first_))->last_hint = fresh;
    target = fresh;
  }
  std::uint8_t* page = pager_->pageForWrite(target);
  HeapPageHeader* h = hdr(page);
  h->free_off = static_cast<std::uint16_t>(h->free_off - size);
  std::memcpy(page + h->free_off, data, size);
  Slot* slot = slotArray(page) + h->slot_count;
  slot->off = h->free_off;
  slot->len = static_cast<std::uint16_t>(size);
  const RecordId rid{target, h->slot_count};
  h->slot_count++;
  return rid;
}

bool HeapFile::read(RecordId rid, std::vector<std::uint8_t>& out) const {
  const std::uint8_t* page = pager_->pageForRead(rid.page);
  const HeapPageHeader* h = hdr(page);
  if (rid.slot >= h->slot_count) return false;
  const Slot& slot = slotArray(page)[rid.slot];
  if (slot.off == 0) return false;
  out.assign(page + slot.off, page + slot.off + slot.len);
  return true;
}

bool HeapFile::erase(RecordId rid) {
  std::uint8_t* page = pager_->pageForWrite(rid.page);
  HeapPageHeader* h = hdr(page);
  if (rid.slot >= h->slot_count) return false;
  Slot& slot = slotArray(page)[rid.slot];
  if (slot.off == 0) return false;
  slot.off = 0;
  slot.len = 0;
  return true;
}

RecordId HeapFile::update(RecordId rid, const std::uint8_t* data, std::size_t size) {
  std::uint8_t* page = pager_->pageForWrite(rid.page);
  HeapPageHeader* h = hdr(page);
  if (rid.slot >= h->slot_count) throw StorageError("HeapFile::update: bad slot");
  Slot& slot = slotArray(page)[rid.slot];
  if (slot.off == 0) throw StorageError("HeapFile::update: record was deleted");
  if (size <= slot.len) {
    std::memcpy(page + slot.off, data, size);
    slot.len = static_cast<std::uint16_t>(size);
    return rid;
  }
  slot.off = 0;
  slot.len = 0;
  return insert(data, size);
}

void HeapFile::destroy() {
  PageId page = first_;
  while (page != kInvalidPage) {
    const PageId next = hdr(pager_->pageForRead(page))->next;
    pager_->free(page);
    page = next;
  }
  first_ = kInvalidPage;
}

std::vector<PageId> HeapFile::collectPages(const Pager& pager, PageId first) {
  std::vector<PageId> pages;
  for (PageId p = first; p != kInvalidPage; p = hdr(pager.pageForRead(p))->next) {
    pages.push_back(p);
  }
  return pages;
}

bool HeapFile::chainHasAtLeast(const Pager& pager, PageId first, std::size_t n) {
  std::size_t seen = 0;
  for (PageId p = first; p != kInvalidPage; p = hdr(pager.pageForRead(p))->next) {
    if (++seen >= n) return true;
  }
  return seen >= n;  // n == 0
}

void HeapFile::visitPageRecords(
    const Pager& pager, PageId page,
    const std::function<bool(const std::uint8_t* data, std::size_t size)>& fn) {
  const std::uint8_t* buf = pager.pageForRead(page);
  const HeapPageHeader* h = hdr(buf);
  const Slot* slots = slotArray(buf);
  for (std::uint16_t s = 0; s < h->slot_count; ++s) {
    if (slots[s].off == 0) continue;  // tombstone
    if (!fn(buf + slots[s].off, slots[s].len)) return;
  }
}

const std::uint8_t* HeapFile::Iterator::data() const {
  const std::uint8_t* page = pager_->pageForRead(page_);
  const Slot& slot = slotArray(page)[slot_];
  return page + slot.off;
}

std::size_t HeapFile::Iterator::size() const {
  const std::uint8_t* page = pager_->pageForRead(page_);
  return slotArray(page)[slot_].len;
}

void HeapFile::Iterator::advanceToLive() {
  while (page_ != kInvalidPage) {
    const std::uint8_t* page = pager_->pageForRead(page_);
    const HeapPageHeader* h = hdr(page);
    while (slot_ < h->slot_count && slotArray(page)[slot_].off == 0) ++slot_;
    if (slot_ < h->slot_count) return;
    page_ = h->next;
    slot_ = 0;
  }
}

}  // namespace perftrack::minidb
