// minidb: heap files — unordered record storage in slotted pages.
//
// A heap file is a singly-linked chain of slotted pages. Each page holds a
// slot directory growing up from the page header and record payloads growing
// down from the page end. Records never span pages (PerfTrack rows are small;
// oversized records are rejected). Deleting a record tombstones its slot;
// in-place updates are allowed when the new payload is no larger, otherwise
// the record moves and the caller receives the new RecordId so it can update
// indexes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "minidb/pager.h"
#include "minidb/types.h"

namespace perftrack::minidb {

/// View over one heap file in a pager. Cheap to construct; all state lives
/// in pages, so heap views stay valid across transactions and rollbacks.
class HeapFile {
 public:
  HeapFile(Pager& pager, PageId first_page) : pager_(&pager), first_(first_page) {}

  /// Creates a new, empty heap file and returns its first page id.
  static PageId create(Pager& pager);

  PageId firstPage() const { return first_; }

  /// Inserts a record; returns its location.
  RecordId insert(const std::uint8_t* data, std::size_t size);

  /// Reads a record. Returns false when `rid` is a tombstone or out of range.
  bool read(RecordId rid, std::vector<std::uint8_t>& out) const;

  /// Deletes a record (tombstones the slot). Returns false when absent.
  bool erase(RecordId rid);

  /// Updates a record. Returns the (possibly new) location.
  RecordId update(RecordId rid, const std::uint8_t* data, std::size_t size);

  /// Frees every page of the heap back to the pager (used by DROP TABLE).
  void destroy();

  /// Forward iterator over live records.
  class Iterator {
   public:
    Iterator(const Pager* pager, PageId page, std::uint16_t slot)
        : pager_(pager), page_(page), slot_(slot) {
      advanceToLive();
    }

    bool done() const { return page_ == kInvalidPage; }
    RecordId rid() const { return {page_, slot_}; }

    /// Payload bytes of the current record.
    const std::uint8_t* data() const;
    std::size_t size() const;

    void next() {
      ++slot_;
      advanceToLive();
    }

   private:
    void advanceToLive();
    const Pager* pager_;
    PageId page_;
    std::uint16_t slot_;
  };

  Iterator begin() const { return Iterator(pager_, first_, 0); }

  // --- page-level read access (parallel scans) -----------------------------
  // A heap chain partitions naturally at page boundaries, so the SQL layer's
  // morsel source hands whole pages to scan workers. These helpers are the
  // only page-granular read surface; they never mutate.

  /// The page ids of the chain starting at `first`, in chain order.
  static std::vector<PageId> collectPages(const Pager& pager, PageId first);

  /// True when the chain starting at `first` spans at least `n` pages.
  /// Stops walking as soon as the answer is known.
  static bool chainHasAtLeast(const Pager& pager, PageId first, std::size_t n);

  /// Visits every live record of one page, in slot order. `fn` returns
  /// false to stop early.
  static void visitPageRecords(
      const Pager& pager, PageId page,
      const std::function<bool(const std::uint8_t* data, std::size_t size)>& fn);

  /// Maximum payload a heap record may carry.
  static std::size_t maxRecordSize();

 private:
  Pager* pager_;
  PageId first_;
};

}  // namespace perftrack::minidb
