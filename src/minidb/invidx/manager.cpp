#include "minidb/invidx/manager.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "minidb/database.h"

namespace perftrack::minidb::invidx {

Counters& counters() {
  static Counters c{
      obs::Registry::global().counter("pt_invidx_builds_total"),
      obs::Registry::global().counter("pt_invidx_build_rows_total"),
      obs::Registry::global().counter("pt_invidx_probes_total"),
      obs::Registry::global().counter("pt_invidx_intersections_total"),
      obs::Registry::global().counter("pt_invidx_unions_total"),
      obs::Registry::global().counter("pt_invidx_topk_early_exits_total"),
      obs::Registry::global().counter("pt_invidx_fallbacks_total"),
      obs::Registry::global().counter("pt_invidx_invalidations_total"),
      obs::Registry::global().gauge("pt_invidx_lists"),
      obs::Registry::global().gauge("pt_invidx_bytes"),
      obs::Registry::global().histogram("pt_invidx_build_ms"),
  };
  return c;
}

namespace {

/// Packs a RecordId the way the B-tree's big-endian rid suffix sorts:
/// ascending (page, slot).
std::uint64_t packRid(RecordId rid) {
  return (static_cast<std::uint64_t>(rid.page) << 16) | rid.slot;
}

PostingList sortedPosting(std::vector<std::uint64_t>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return PostingList::fromSorted(ids);
}

}  // namespace

template <typename T, typename BuildFn>
std::shared_ptr<const T> Manager::getOrBuild(const std::string& table,
                                             const std::string& key,
                                             BuildFn build) {
  // Snapshot readers see a pinned committed version; the index reflects
  // working state, so the fast path must decline.
  if (db_->pager().snapshotScopeActive()) {
    counters().fallbacks.inc();
    return nullptr;
  }
  const std::uint64_t epoch = db_->schemaEpoch();
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t version = versions_[table];
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    Entry& e = it->second;
    if (e.epoch == epoch && e.version == version) {
      if (e.index == nullptr) {
        counters().fallbacks.inc();
        return nullptr;
      }
      return std::static_pointer_cast<const T>(e.index);
    }
    // Stale: retire its footprint from the gauges before rebuilding.
    if (e.index != nullptr) {
      counters().lists.add(-static_cast<std::int64_t>(e.index->listCount()));
      counters().bytes.add(-static_cast<std::int64_t>(e.index->byteSize()));
    }
    counters().invalidations.inc();
    cache_.erase(it);
  }
  const auto start = std::chrono::steady_clock::now();
  std::shared_ptr<const T> built = build();
  Entry entry;
  entry.epoch = epoch;
  entry.version = version;
  entry.index = built;
  cache_.emplace(key, std::move(entry));
  if (built == nullptr) {
    counters().fallbacks.inc();
    return nullptr;
  }
  counters().builds.inc();
  counters().build_rows.inc(built->rows());
  counters().lists.add(static_cast<std::int64_t>(built->listCount()));
  counters().bytes.add(static_cast<std::int64_t>(built->byteSize()));
  counters().build_ms.observe(
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                start)
          .count());
  return built;
}

std::shared_ptr<const RidIndex> Manager::ridIndex(const std::string& table,
                                                  int column) {
  const std::string key = "rid:" + table + ":" + std::to_string(column);
  return getOrBuild<RidIndex>(table, key, [&]() -> std::shared_ptr<const RidIndex> {
    const TableDef* def = db_->catalog().findTable(table);
    if (def == nullptr || column < 0 ||
        column >= static_cast<int>(def->columns.size()) ||
        def->columns[column].type != ColumnType::Integer) {
      return nullptr;
    }
    // Heap iteration visits ascending (page, slot), so the per-value rid
    // vectors come out sorted — the exact order a B-tree point probe emits.
    std::map<std::int64_t, std::vector<std::uint64_t>> per_value;
    std::size_t rows = 0;
    bool ok = true;
    db_->scan(table, [&](RecordId rid, const Row& row) {
      ++rows;
      const Value& v = row[static_cast<std::size_t>(column)];
      if (v.isNull()) return true;  // IN (...) never matches NULL
      if (!v.isInt()) {
        ok = false;  // non-integer under an INTEGER column: decline, the
        return false;  // B-tree path keeps cross-type equality semantics
      }
      per_value[v.asInt()].push_back(packRid(rid));
      return true;
    });
    if (!ok) return nullptr;
    auto idx = std::make_shared<RidIndex>();
    idx->rows_ = rows;
    for (auto& [value, rids] : per_value) {
      PostingList pl = PostingList::fromSorted(rids);
      idx->byte_size_ += pl.byteSize();
      idx->lists_.emplace(value, std::move(pl));
    }
    idx->list_count_ = idx->lists_.size();
    return idx;
  });
}

std::shared_ptr<const ValueIndex> Manager::valueIndex(const std::string& table,
                                                      const std::string& key_col,
                                                      const std::string& value_col) {
  const std::string key = "val:" + table + ":" + key_col + ":" + value_col;
  return getOrBuild<ValueIndex>(table, key, [&]() -> std::shared_ptr<const ValueIndex> {
    const TableDef* def = db_->catalog().findTable(table);
    if (def == nullptr) return nullptr;
    const int kc = def->columnIndex(key_col);
    const int vc = def->columnIndex(value_col);
    if (kc < 0 || vc < 0) return nullptr;
    std::unordered_map<std::int64_t, std::vector<std::uint64_t>> per_key;
    std::size_t rows = 0;
    std::uint64_t lo = UINT64_MAX;
    std::uint64_t hi = 0;
    bool ok = true;
    db_->scan(table, [&](RecordId, const Row& row) {
      ++rows;
      const Value& k = row[static_cast<std::size_t>(kc)];
      const Value& v = row[static_cast<std::size_t>(vc)];
      // Ids must be non-negative integers (bitmap domain + uint64 posting
      // space); anything else sends callers back to the SQL path.
      if (!k.isInt() || !v.isInt() || k.asInt() < 0 || v.asInt() < 0) {
        ok = false;
        return false;
      }
      const std::uint64_t value = static_cast<std::uint64_t>(v.asInt());
      lo = std::min(lo, value);
      hi = std::max(hi, value);
      per_key[k.asInt()].push_back(value);
      return true;
    });
    if (!ok) return nullptr;
    auto idx = std::make_shared<ValueIndex>();
    idx->rows_ = rows;
    idx->value_lo_ = rows == 0 ? 0 : lo;
    idx->value_hi_ = rows == 0 ? 0 : hi;
    for (auto& [k, values] : per_key) {
      PostingList pl = sortedPosting(values);
      idx->byte_size_ += pl.byteSize();
      idx->lists_.emplace(k, std::move(pl));
    }
    idx->list_count_ = idx->lists_.size();
    return idx;
  });
}

std::shared_ptr<const NameIndex> Manager::nameIndex(const std::string& table,
                                                    const std::string& id_col,
                                                    const std::string& name_col,
                                                    const std::string& full_name_col) {
  const std::string key =
      "name:" + table + ":" + id_col + ":" + name_col + ":" + full_name_col;
  return getOrBuild<NameIndex>(table, key, [&]() -> std::shared_ptr<const NameIndex> {
    const TableDef* def = db_->catalog().findTable(table);
    if (def == nullptr) return nullptr;
    const int ic = def->columnIndex(id_col);
    const int nc = def->columnIndex(name_col);
    const int fc = def->columnIndex(full_name_col);
    if (ic < 0 || nc < 0 || fc < 0) return nullptr;
    std::unordered_map<std::string, std::vector<std::uint64_t>> segments;
    std::unordered_map<std::string, std::vector<std::uint64_t>> trigrams;
    std::unordered_map<std::string, std::vector<std::uint64_t>> base_names;
    auto idx = std::make_shared<NameIndex>();
    std::size_t rows = 0;
    bool ok = true;
    db_->scan(table, [&](RecordId, const Row& row) {
      ++rows;
      const Value& idv = row[static_cast<std::size_t>(ic)];
      const Value& namev = row[static_cast<std::size_t>(nc)];
      const Value& fullv = row[static_cast<std::size_t>(fc)];
      if (!idv.isInt() || idv.asInt() < 0 || !namev.isText() || !fullv.isText()) {
        ok = false;
        return false;
      }
      const std::uint64_t id = static_cast<std::uint64_t>(idv.asInt());
      const std::string& full = fullv.asText();
      base_names[namev.asText()].push_back(id);
      idx->full_names_.emplace(idv.asInt(), full);
      std::size_t start = 0;
      while (start < full.size()) {
        const std::size_t slash = full.find('/', start);
        const std::size_t end = slash == std::string::npos ? full.size() : slash;
        if (end > start) segments[full.substr(start, end - start)].push_back(id);
        start = end + 1;
      }
      for (std::size_t i = 0; i + 3 <= full.size(); ++i) {
        trigrams[full.substr(i, 3)].push_back(id);
      }
      return true;
    });
    if (!ok) return nullptr;
    idx->rows_ = rows;
    auto publish = [&](std::unordered_map<std::string, std::vector<std::uint64_t>>& src,
                       std::unordered_map<std::string, PostingList>& dst) {
      for (auto& [text, ids] : src) {
        PostingList pl = sortedPosting(ids);
        idx->byte_size_ += pl.byteSize() + text.size();
        dst.emplace(text, std::move(pl));
      }
      idx->list_count_ += dst.size();
    };
    publish(segments, idx->segments_);
    publish(trigrams, idx->trigrams_);
    publish(base_names, idx->base_names_);
    return idx;
  });
}

std::shared_ptr<const AttrIndex> Manager::attrIndex(const std::string& table,
                                                    const std::string& id_col,
                                                    const std::string& name_col,
                                                    const std::string& value_col) {
  const std::string key =
      "attr:" + table + ":" + id_col + ":" + name_col + ":" + value_col;
  return getOrBuild<AttrIndex>(table, key, [&]() -> std::shared_ptr<const AttrIndex> {
    const TableDef* def = db_->catalog().findTable(table);
    if (def == nullptr) return nullptr;
    const int ic = def->columnIndex(id_col);
    const int nc = def->columnIndex(name_col);
    const int vc = def->columnIndex(value_col);
    if (ic < 0 || nc < 0 || vc < 0) return nullptr;
    std::map<std::string, std::map<std::string, std::vector<std::uint64_t>>> grouped;
    std::size_t rows = 0;
    bool ok = true;
    db_->scan(table, [&](RecordId, const Row& row) {
      ++rows;
      const Value& idv = row[static_cast<std::size_t>(ic)];
      const Value& namev = row[static_cast<std::size_t>(nc)];
      const Value& valv = row[static_cast<std::size_t>(vc)];
      if (!idv.isInt() || idv.asInt() < 0 || !namev.isText() || !valv.isText()) {
        ok = false;  // legacy path renders values via asText(); only plain
        return false;  // text rows are guaranteed byte-identical
      }
      grouped[namev.asText()][valv.asText()].push_back(
          static_cast<std::uint64_t>(idv.asInt()));
      return true;
    });
    if (!ok) return nullptr;
    auto idx = std::make_shared<AttrIndex>();
    idx->rows_ = rows;
    for (auto& [name, values] : grouped) {
      std::vector<AttrIndex::ValuePosting> list;
      list.reserve(values.size());
      for (auto& [value, ids] : values) {
        AttrIndex::ValuePosting vp;
        vp.value = value;
        vp.ids = sortedPosting(ids);
        idx->byte_size_ += vp.ids.byteSize() + value.size();
        list.push_back(std::move(vp));
      }
      idx->list_count_ += list.size();
      idx->by_name_.emplace(name, std::move(list));
    }
    return idx;
  });
}

void Manager::onTableMutated(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  ++versions_[table];
}

}  // namespace perftrack::minidb::invidx
