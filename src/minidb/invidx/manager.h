// minidb inverted-index manager: posting-list indexes derived from heap
// scans, cached per (table, columns) and kept consistent with the store.
//
// Every index is an immutable snapshot of one table's working state,
// published behind a shared_ptr: readers that grabbed an index keep a
// consistent view even if a later mutation triggers a rebuild. Validity is
// cheap to check — an index is stale when either the database's schema
// epoch moved (DDL, VACUUM, ROLLBACK all bump it) or the table's DML
// version moved (Database::insertRow/eraseRow/updateRow call
// onTableMutated()). Stale entries are rebuilt lazily on next access.
//
// Accessors return nullptr instead of an index whenever the fast path must
// not be trusted:
//   * the calling thread reads through a pager snapshot (WAL snapshot
//     reads) — the index reflects working state, not the pinned version;
//   * the table/columns don't exist or a column holds values outside the
//     encodable domain (non-integer ids, negative ids, non-text names).
// Callers fall back to the B-tree/SQL path; pt_invidx_fallbacks_total
// counts how often.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "minidb/invidx/posting.h"
#include "obs/metrics.h"

namespace perftrack::minidb {
class Database;
}

namespace perftrack::minidb::invidx {

/// Cached pt_invidx_* instruments (obs registry idiom: resolve once).
struct Counters {
  obs::Counter& builds;
  obs::Counter& build_rows;
  obs::Counter& probes;
  obs::Counter& intersections;
  obs::Counter& unions;
  obs::Counter& topk_early_exits;
  obs::Counter& fallbacks;
  obs::Counter& invalidations;
  obs::Gauge& lists;
  obs::Gauge& bytes;
  obs::Histogram& build_ms;
};
Counters& counters();

/// Base bookkeeping shared by every index flavor.
class IndexBase {
 public:
  virtual ~IndexBase() = default;
  std::size_t rows() const { return rows_; }
  std::size_t listCount() const { return list_count_; }
  std::size_t byteSize() const { return byte_size_; }

 protected:
  std::size_t rows_ = 0;
  std::size_t list_count_ = 0;
  std::size_t byte_size_ = 0;
};

/// value-of-column -> posting of packed RecordIds (page<<16|slot). Packed
/// rids sort exactly like the big-endian rid suffix of B-tree index keys,
/// so per-key emission order matches an index point probe.
class RidIndex : public IndexBase {
 public:
  const PostingList* find(std::int64_t key) const {
    const auto it = lists_.find(key);
    return it == lists_.end() ? nullptr : &it->second;
  }

 private:
  friend class Manager;
  std::unordered_map<std::int64_t, PostingList> lists_;
};

/// key-column value -> sorted-unique posting of value-column values
/// (focus_has_resource: resource -> foci; performance_result_has_focus:
/// focus -> results; closure tables: resource -> ancestors/descendants).
class ValueIndex : public IndexBase {
 public:
  const PostingList* find(std::int64_t key) const {
    const auto it = lists_.find(key);
    return it == lists_.end() ? nullptr : &it->second;
  }
  /// Bounds of the *value* domain (Bitmap accumulator sizing).
  std::uint64_t valueLo() const { return value_lo_; }
  std::uint64_t valueHi() const { return value_hi_; }

 private:
  friend class Manager;
  std::unordered_map<std::int64_t, PostingList> lists_;
  std::uint64_t value_lo_ = 0;
  std::uint64_t value_hi_ = 0;
};

/// Inverted index over Unix-path resource names: path segments and
/// trigrams of the full name, plus exact base-name postings and an
/// id -> full-name map for candidate verification.
class NameIndex : public IndexBase {
 public:
  const PostingList* segment(const std::string& s) const {
    const auto it = segments_.find(s);
    return it == segments_.end() ? nullptr : &it->second;
  }
  const PostingList* trigram(const std::string& t) const {
    const auto it = trigrams_.find(t);
    return it == trigrams_.end() ? nullptr : &it->second;
  }
  const PostingList* baseName(const std::string& n) const {
    const auto it = base_names_.find(n);
    return it == base_names_.end() ? nullptr : &it->second;
  }
  const std::string* fullName(std::int64_t id) const {
    const auto it = full_names_.find(id);
    return it == full_names_.end() ? nullptr : &it->second;
  }

 private:
  friend class Manager;
  std::unordered_map<std::string, PostingList> segments_;
  std::unordered_map<std::string, PostingList> trigrams_;
  std::unordered_map<std::string, PostingList> base_names_;
  std::unordered_map<std::int64_t, std::string> full_names_;
};

/// Per attribute name: the distinct values, each with a sorted id posting.
/// Predicates evaluate against distinct values (comparators apply per
/// value, numeric-aware), so cost scales with distinct values, not rows.
class AttrIndex : public IndexBase {
 public:
  struct ValuePosting {
    std::string value;
    PostingList ids;
  };
  const std::vector<ValuePosting>* valuesOf(const std::string& name) const {
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : &it->second;
  }

 private:
  friend class Manager;
  std::unordered_map<std::string, std::vector<ValuePosting>> by_name_;
};

class Manager {
 public:
  explicit Manager(Database& db) : db_(&db) {}
  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  /// Posting of packed rids per distinct integer value of `column`
  /// (table-local ordinal). The planner's posting access path.
  std::shared_ptr<const RidIndex> ridIndex(const std::string& table, int column);

  /// Integer key column -> posting of integer value-column values.
  std::shared_ptr<const ValueIndex> valueIndex(const std::string& table,
                                               const std::string& key_col,
                                               const std::string& value_col);

  /// Segment/trigram/base-name index over a path-named table.
  std::shared_ptr<const NameIndex> nameIndex(const std::string& table,
                                             const std::string& id_col,
                                             const std::string& name_col,
                                             const std::string& full_name_col);

  /// (name, value, id) attribute triples grouped by name.
  std::shared_ptr<const AttrIndex> attrIndex(const std::string& table,
                                             const std::string& id_col,
                                             const std::string& name_col,
                                             const std::string& value_col);

  /// DML hook (Database::insertRow/eraseRow/updateRow): invalidates every
  /// cached index over `table`.
  void onTableMutated(const std::string& table);

 private:
  struct Entry {
    std::uint64_t epoch = 0;
    std::uint64_t version = 0;
    std::shared_ptr<const IndexBase> index;  // null = negative cache
  };

  /// Looks up `key`; when stale/absent, runs `build` (returns null on
  /// unbuildable input, which is cached too so broken shapes don't rescan
  /// every call). Returns nullptr when the calling thread reads through a
  /// pager snapshot.
  template <typename T, typename BuildFn>
  std::shared_ptr<const T> getOrBuild(const std::string& table,
                                      const std::string& key, BuildFn build);

  Database* db_;
  std::mutex mu_;
  std::unordered_map<std::string, std::uint64_t> versions_;
  std::unordered_map<std::string, Entry> cache_;
};

}  // namespace perftrack::minidb::invidx
