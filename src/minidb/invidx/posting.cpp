#include "minidb/invidx/posting.h"

#include <algorithm>

namespace perftrack::minidb::invidx {

namespace {

void putVarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t getVarint(const std::vector<std::uint8_t>& bytes, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const std::uint8_t b = bytes[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

}  // namespace

PostingList PostingList::fromSorted(const std::vector<std::uint64_t>& ids) {
  PostingList pl;
  pl.size_ = ids.size();
  if (ids.empty()) return pl;
  pl.min_ = ids.front();
  pl.max_ = ids.back();

  const std::uint64_t range = pl.max_ - pl.min_ + 1;
  if (ids.size() >= 8 && range / ids.size() <= kBitmapDensity) {
    pl.rep_ = Rep::Bitmap;
    pl.base_ = pl.min_ & ~std::uint64_t{63};
    pl.words_.assign((pl.max_ - pl.base_) / 64 + 1, 0);
    for (const std::uint64_t id : ids) {
      const std::uint64_t off = id - pl.base_;
      pl.words_[off >> 6] |= std::uint64_t{1} << (off & 63);
    }
    return pl;
  }

  pl.rep_ = Rep::Deltas;
  pl.skips_.reserve((ids.size() + kBlockSize - 1) / kBlockSize);
  for (std::size_t start = 0; start < ids.size(); start += kBlockSize) {
    const std::size_t n = std::min(ids.size() - start, kBlockSize);
    Skip skip;
    skip.first = ids[start];
    skip.last = ids[start + n - 1];
    skip.offset = static_cast<std::uint32_t>(pl.bytes_.size());
    skip.count = static_cast<std::uint32_t>(n);
    // The block's first id lives in the skip entry; the stream holds the
    // n-1 gaps (strictly positive: input is strictly ascending).
    for (std::size_t i = 1; i < n; ++i) {
      putVarint(pl.bytes_, ids[start + i] - ids[start + i - 1]);
    }
    pl.skips_.push_back(skip);
  }
  return pl;
}

std::size_t PostingList::byteSize() const {
  return bytes_.capacity() + skips_.capacity() * sizeof(Skip) +
         words_.capacity() * sizeof(std::uint64_t);
}

// --- Cursor ----------------------------------------------------------------

PostingList::Cursor::Cursor(const PostingList& pl) : pl_(&pl) {
  if (pl.empty()) return;
  valid_ = true;
  if (pl.rep_ == Rep::Bitmap) {
    cur_ = pl.min_;
    return;
  }
  loadBlock(0);
}

void PostingList::Cursor::loadBlock(std::size_t block) {
  block_ = block;
  const Skip& skip = pl_->skips_[block];
  cur_ = skip.first;
  in_block_ = 1;
  pos_ = skip.offset;
}

void PostingList::Cursor::next() {
  if (!valid_) return;
  if (pl_->rep_ == Rep::Bitmap) {
    if (cur_ >= pl_->max_) {
      valid_ = false;
      return;
    }
    std::uint64_t off = cur_ - pl_->base_ + 1;
    std::size_t w = off >> 6;
    std::uint64_t word = pl_->words_[w] >> (off & 63) << (off & 63);
    while (word == 0) word = pl_->words_[++w];
    cur_ = pl_->base_ + (static_cast<std::uint64_t>(w) << 6) +
           __builtin_ctzll(word);
    return;
  }
  const Skip& skip = pl_->skips_[block_];
  if (in_block_ < skip.count) {
    cur_ += getVarint(pl_->bytes_, pos_);
    ++in_block_;
    return;
  }
  if (block_ + 1 >= pl_->skips_.size()) {
    valid_ = false;
    return;
  }
  loadBlock(block_ + 1);
}

bool PostingList::Cursor::advanceTo(std::uint64_t target) {
  if (!valid_ || cur_ >= target) return valid_;
  if (target > pl_->max_) {
    valid_ = false;
    return false;
  }
  if (pl_->rep_ == Rep::Bitmap) {
    std::uint64_t off = (target > pl_->base_ ? target - pl_->base_ : 0);
    std::size_t w = off >> 6;
    std::uint64_t word = pl_->words_[w] >> (off & 63) << (off & 63);
    while (word == 0) word = pl_->words_[++w];
    cur_ = pl_->base_ + (static_cast<std::uint64_t>(w) << 6) +
           __builtin_ctzll(word);
    return true;
  }
  // Gallop over the skip entries: find the first block whose last >= target.
  if (pl_->skips_[block_].last < target) {
    std::size_t step = 1;
    std::size_t lo = block_ + 1;
    while (lo + step < pl_->skips_.size() &&
           pl_->skips_[lo + step].last < target) {
      lo += step;
      step <<= 1;
    }
    std::size_t hi = std::min(lo + step, pl_->skips_.size() - 1);
    while (lo < hi) {  // first block with last >= target
      const std::size_t mid = (lo + hi) / 2;
      if (pl_->skips_[mid].last < target) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    loadBlock(lo);
  }
  // Linear decode inside the one candidate block.
  const Skip& skip = pl_->skips_[block_];
  while (cur_ < target && in_block_ < skip.count) {
    cur_ += getVarint(pl_->bytes_, pos_);
    ++in_block_;
  }
  if (cur_ < target) {
    valid_ = false;
    return false;
  }
  return true;
}

std::vector<std::uint64_t> PostingList::toVector() const {
  std::vector<std::uint64_t> out;
  out.reserve(size_);
  for (Cursor c = cursor(); c.valid(); c.next()) out.push_back(c.value());
  return out;
}

std::vector<std::uint64_t> PostingList::intersect(
    std::vector<const PostingList*> lists, std::size_t limit) {
  std::vector<std::uint64_t> out;
  if (lists.empty() || limit == 0) return out;
  for (const PostingList* pl : lists) {
    if (pl == nullptr || pl->empty()) return out;
  }
  // Smallest list drives: its cursor advances one id at a time, the others
  // gallop to it.
  std::sort(lists.begin(), lists.end(),
            [](const PostingList* a, const PostingList* b) {
              return a->size() < b->size();
            });
  std::vector<Cursor> cursors;
  cursors.reserve(lists.size());
  for (const PostingList* pl : lists) cursors.emplace_back(*pl);
  Cursor& drive = cursors.front();
  while (drive.valid()) {
    const std::uint64_t candidate = drive.value();
    bool all = true;
    for (std::size_t i = 1; i < cursors.size(); ++i) {
      if (!cursors[i].advanceTo(candidate)) return out;
      if (cursors[i].value() != candidate) {
        all = false;
        // Let the larger list pull the driver forward past the gap.
        if (!drive.advanceTo(cursors[i].value())) return out;
        break;
      }
    }
    if (all) {
      out.push_back(candidate);
      if (out.size() >= limit) return out;
      drive.next();
    }
  }
  return out;
}

// --- Bitmap ----------------------------------------------------------------

Bitmap::Bitmap(std::uint64_t lo, std::uint64_t hi) {
  if (hi < lo) return;
  base_ = lo & ~std::uint64_t{63};
  hi_ = hi;
  words_.assign((hi - base_) / 64 + 1, 0);
}

void Bitmap::orPosting(const PostingList& pl) {
  if (pl.empty() || words_.empty()) return;
  if (pl.rep_ == PostingList::Rep::Bitmap && pl.base_ >= base_ &&
      (pl.base_ - base_) % 64 == 0) {
    const std::size_t shift = (pl.base_ - base_) / 64;
    const std::size_t n = std::min(pl.words_.size(), words_.size() - shift);
    for (std::size_t w = 0; w < n; ++w) words_[shift + w] |= pl.words_[w];
    return;
  }
  for (PostingList::Cursor c = pl.cursor(); c.valid(); c.next()) set(c.value());
}

void Bitmap::set(std::uint64_t id) {
  if (id < base_ || id > hi_) return;
  const std::uint64_t off = id - base_;
  words_[off >> 6] |= std::uint64_t{1} << (off & 63);
}

bool Bitmap::test(std::uint64_t id) const {
  if (id < base_ || id > hi_) return false;
  const std::uint64_t off = id - base_;
  return (words_[off >> 6] >> (off & 63)) & 1;
}

void Bitmap::andWith(const Bitmap& other) {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t w = 0; w < n; ++w) words_[w] &= other.words_[w];
  for (std::size_t w = n; w < words_.size(); ++w) words_[w] = 0;
}

std::uint64_t Bitmap::count() const {
  std::uint64_t total = 0;
  for (const std::uint64_t w : words_) total += __builtin_popcountll(w);
  return total;
}

bool Bitmap::any() const {
  for (const std::uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

std::vector<std::uint64_t> Bitmap::toVector(std::size_t limit) const {
  std::vector<std::uint64_t> out;
  forEach([&](std::uint64_t id) {
    if (out.size() >= limit) return false;
    out.push_back(id);
    return out.size() < limit;
  });
  return out;
}

}  // namespace perftrack::minidb::invidx
