// minidb inverted-index core: posting lists and bitmaps.
//
// A PostingList is a sorted set of non-negative 64-bit ids (focus ids,
// resource ids, result ids, or packed record ids) in one of two
// representations, chosen at build time by density:
//
//   * delta blocks — ids split into blocks of kBlockSize, each block's
//     first/last id kept in a skip entry and the in-block gaps varint
//     (LEB128) encoded. advanceTo() gallops over the skip entries and only
//     decodes the one block that can contain the target, so a k-way
//     intersection of sparse lists touches O(result) blocks, not O(input).
//   * bitmap — one bit per id over [base, max], used when the set is dense
//     enough (range <= kBitmapDensity * size) that the bitmap is no larger
//     than the delta stream. Unions and intersections over bitmaps collapse
//     to word-wise OR/AND (see Bitmap below), the roaring-style dense case.
//
// Lists are immutable after fromSorted(); readers share them freely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace perftrack::minidb::invidx {

inline constexpr std::size_t kBlockSize = 128;
/// Bitmap representation wins once range/size <= this (bitmap bytes =
/// range/8 vs. roughly 1..2 varint bytes per id).
inline constexpr std::uint64_t kBitmapDensity = 16;

class PostingList {
 public:
  PostingList() = default;

  /// Builds from a strictly ascending (sorted, deduplicated) id vector.
  static PostingList fromSorted(const std::vector<std::uint64_t>& ids);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool isBitmap() const { return rep_ == Rep::Bitmap; }
  std::uint64_t minId() const { return min_; }
  std::uint64_t maxId() const { return max_; }
  /// Heap bytes held by the encoded payload (metrics).
  std::size_t byteSize() const;

  /// Forward iterator with skip-pointer seeks. Invalidated only by
  /// destroying the list (lists are immutable).
  class Cursor {
   public:
    explicit Cursor(const PostingList& pl);
    bool valid() const { return valid_; }
    std::uint64_t value() const { return cur_; }
    void next();
    /// Seeks to the first id >= target (no-op when already there).
    /// Returns valid().
    bool advanceTo(std::uint64_t target);

   private:
    void loadBlock(std::size_t block);
    const PostingList* pl_ = nullptr;
    bool valid_ = false;
    std::uint64_t cur_ = 0;
    // delta state
    std::size_t block_ = 0;
    std::uint32_t in_block_ = 0;  // ids consumed from the current block
    std::size_t pos_ = 0;         // byte position in bytes_
  };
  Cursor cursor() const { return Cursor(*this); }

  /// Decodes the whole list (tests, unions into plain vectors).
  std::vector<std::uint64_t> toVector() const;

  /// K-way galloping intersection, smallest list driving. Stops after
  /// `limit` results (early termination for top-K/existence probes).
  static std::vector<std::uint64_t> intersect(
      std::vector<const PostingList*> lists,
      std::size_t limit = static_cast<std::size_t>(-1));

 private:
  friend class Cursor;
  friend class Bitmap;

  enum class Rep : std::uint8_t { Deltas, Bitmap };

  struct Skip {
    std::uint64_t first = 0;   // first id of the block (stored absolute)
    std::uint64_t last = 0;    // last id of the block (the skip pointer)
    std::uint32_t offset = 0;  // byte offset of the block's gap stream
    std::uint32_t count = 0;   // ids in the block
  };

  Rep rep_ = Rep::Deltas;
  std::size_t size_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  // delta representation
  std::vector<Skip> skips_;
  std::vector<std::uint8_t> bytes_;
  // bitmap representation (base_ is 64-aligned so cross-list OR/AND stay
  // word-aligned)
  std::uint64_t base_ = 0;
  std::vector<std::uint64_t> words_;
};

/// A mutable dense accumulator over a fixed id domain [lo, hi]: families
/// union their members' postings into one Bitmap, and the pr-filter AND
/// across families is a word-wise intersection. The base is 64-aligned, so
/// OR-ing a bitmap-represented PostingList is pure word arithmetic.
class Bitmap {
 public:
  Bitmap() = default;
  Bitmap(std::uint64_t lo, std::uint64_t hi);

  bool domainEmpty() const { return words_.empty(); }
  /// ORs a posting list in (word-wise when the list is a bitmap). Ids
  /// outside the domain are ignored (callers build the domain from the
  /// index's global min/max, so none exist in practice).
  void orPosting(const PostingList& pl);
  void set(std::uint64_t id);
  bool test(std::uint64_t id) const;
  /// Word-wise AND; both bitmaps must share a domain (same lo/hi).
  void andWith(const Bitmap& other);
  std::uint64_t count() const;
  bool any() const;

  /// Visits set ids in ascending order; `fn` returns false to stop early.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        if (!fn(base_ + (static_cast<std::uint64_t>(w) << 6) + bit)) return;
        word &= word - 1;
      }
    }
  }

  /// Set ids, ascending, at most `limit` of them.
  std::vector<std::uint64_t> toVector(
      std::size_t limit = static_cast<std::size_t>(-1)) const;

 private:
  std::uint64_t base_ = 0;  // 64-aligned
  std::uint64_t hi_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace perftrack::minidb::invidx
