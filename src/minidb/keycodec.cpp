#include "minidb/keycodec.h"

#include <cstring>

#include "util/error.h"

namespace perftrack::minidb {

using util::StorageError;

namespace {

constexpr char kTagNull = 0x01;
constexpr char kTagNumeric = 0x02;
constexpr char kTagText = 0x03;

// Maps a double onto a uint64 whose unsigned order equals the numeric order
// of the doubles (standard IEEE-754 total-order trick).
std::uint64_t doubleToOrderedBits(double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  if (bits & 0x8000000000000000ULL) {
    return ~bits;  // negative: flip everything
  }
  return bits | 0x8000000000000000ULL;  // positive: flip sign bit
}

void appendU64BigEndian(std::uint64_t v, EncodedKey& out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

}  // namespace

void encodeValue(const Value& v, EncodedKey& out) {
  if (v.isNull()) {
    out.push_back(kTagNull);
    return;
  }
  if (v.isInt() || v.isReal()) {
    out.push_back(kTagNumeric);
    // Encode integers through the double path so INTEGER and REAL interleave
    // correctly. int64 values beyond 2^53 lose index precision but the heap
    // row retains the exact value; the executor re-checks predicates.
    appendU64BigEndian(doubleToOrderedBits(v.asReal()), out);
    return;
  }
  out.push_back(kTagText);
  for (char c : v.asText()) {
    if (c == '\0') {
      out.push_back('\0');
      out.push_back(static_cast<char>(0xFF));
    } else {
      out.push_back(c);
    }
  }
  out.push_back('\0');
  out.push_back('\0');
}

EncodedKey encodeKey(const std::vector<Value>& values) {
  EncodedKey out;
  out.reserve(values.size() * 10);
  for (const Value& v : values) encodeValue(v, out);
  return out;
}

void encodeRecordIdSuffix(RecordId rid, EncodedKey& out) {
  out.push_back(static_cast<char>((rid.page >> 24) & 0xFF));
  out.push_back(static_cast<char>((rid.page >> 16) & 0xFF));
  out.push_back(static_cast<char>((rid.page >> 8) & 0xFF));
  out.push_back(static_cast<char>(rid.page & 0xFF));
  out.push_back(static_cast<char>((rid.slot >> 8) & 0xFF));
  out.push_back(static_cast<char>(rid.slot & 0xFF));
}

RecordId decodeRecordIdSuffix(const EncodedKey& key) {
  if (key.size() < 6) throw StorageError("decodeRecordIdSuffix: key too short");
  const auto* p = reinterpret_cast<const unsigned char*>(key.data()) + key.size() - 6;
  RecordId rid;
  rid.page = (static_cast<PageId>(p[0]) << 24) | (static_cast<PageId>(p[1]) << 16) |
             (static_cast<PageId>(p[2]) << 8) | static_cast<PageId>(p[3]);
  rid.slot = static_cast<std::uint16_t>((p[4] << 8) | p[5]);
  return rid;
}

}  // namespace perftrack::minidb
