// minidb: order-preserving key encoding for B+-tree indexes.
//
// Index keys are byte strings whose lexicographic (memcmp) order equals the
// Value::compare order of the underlying column values. This lets the B+-tree
// store variable-length composite keys and compare them without knowing the
// schema. Encoding:
//   NULL    -> 0x01
//   INTEGER -> 0x02 then 8 bytes big-endian with the sign bit flipped
//   REAL    -> 0x02 then 8 bytes of the IEEE-754 total-order transform
//              (numerics share a tag so INTEGER 2 == REAL 2.0 sort together)
//   TEXT    -> 0x03 then the bytes with 0x00 escaped as 0x00 0xFF,
//              terminated by 0x00 0x00 (so "a" < "ab" and no embedded-NUL
//              ambiguity)
// Composite keys are simply concatenated field encodings. Uniqueness in
// non-unique indexes is obtained by appending the record id.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "minidb/types.h"
#include "minidb/value.h"

namespace perftrack::minidb {

/// Encoded key type: ordered via default std::string comparison.
using EncodedKey = std::string;

/// Appends the order-preserving encoding of `v` to `out`.
void encodeValue(const Value& v, EncodedKey& out);

/// Encodes a composite key from several values.
EncodedKey encodeKey(const std::vector<Value>& values);

/// Appends an 6-byte record id suffix (page big-endian, slot big-endian) so
/// duplicate keys remain distinct and range scans stay ordered.
void encodeRecordIdSuffix(RecordId rid, EncodedKey& out);

/// Extracts the record id from the final 6 bytes of an encoded key.
RecordId decodeRecordIdSuffix(const EncodedKey& key);

}  // namespace perftrack::minidb
