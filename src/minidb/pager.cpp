#include "minidb/pager.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace perftrack::minidb {

using util::StorageError;

namespace {

/// Process-wide pager counters, resolved once from the global registry and
/// cached as references (the hot path is a relaxed atomic add, no lookup).
/// Cache-hit accounting: every pageForRead is a hit except the pages loaded
/// from disk at open (pt_pager_pages_loaded_total), since minidb keeps the
/// whole database resident.
struct PagerCounters {
  obs::Counter& page_reads;
  obs::Counter& page_writes;
  obs::Counter& pages_allocated;
  obs::Counter& pages_freed;
  obs::Counter& pages_loaded;
  obs::Counter& disk_page_writes;
  obs::Counter& journal_fsyncs;
  obs::Counter& db_fsyncs;
  obs::Counter& commits;
  obs::Histogram& commit_ms;
};

PagerCounters& pagerCounters() {
  auto& reg = obs::Registry::global();
  static PagerCounters* c = new PagerCounters{
      reg.counter("pt_pager_page_reads_total"),
      reg.counter("pt_pager_page_writes_total"),
      reg.counter("pt_pager_pages_allocated_total"),
      reg.counter("pt_pager_pages_freed_total"),
      reg.counter("pt_pager_pages_loaded_total"),
      reg.counter("pt_pager_disk_page_writes_total"),
      reg.counter("pt_pager_journal_fsyncs_total"),
      reg.counter("pt_pager_db_fsyncs_total"),
      reg.counter("pt_pager_commits_total"),
      reg.histogram("pt_pager_commit_ms"),
  };
  return *c;
}

DbHeader* headerOf(std::uint8_t* page0) { return reinterpret_cast<DbHeader*>(page0); }

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr std::size_t kJournalRecordSize = sizeof(std::uint32_t) + kPageSize;

}  // namespace

void Pager::formatNew() {
  pages_.clear();
  pages_.push_back(std::make_unique<PageBuf>());
  pages_[0]->fill(0);
  DbHeader* h = headerOf(pages_[0]->data());
  h->magic = kDbMagic;
  h->version = kDbVersion;
  h->page_count = 1;
  h->freelist_head = kInvalidPage;
  h->catalog_first_page = kInvalidPage;
  dirty_.insert(0);
}

const DbHeader& Pager::header() const {
  return *headerOf(pages_.at(0)->data());
}

DbHeader& Pager::headerForWrite() {
  return *headerOf(pageForWrite(0));
}

void Pager::journalTouch(PageId id) {
  if (!journaling_) return;
  if (journal_.contains(id)) return;
  if (id >= journal_page_count_) {
    // Page did not exist when the transaction began: record null image so
    // rollback simply discards it.
    journal_.emplace(id, nullptr);
    return;
  }
  auto copy = std::make_unique<PageBuf>(*pages_.at(id));
  journal_.emplace(id, std::move(copy));
}

std::uint8_t* Pager::pageForWrite(PageId id) {
  if (id >= pages_.size() || !pages_[id]) {
    throw StorageError("Pager: write access to unallocated page " + std::to_string(id));
  }
  journalTouch(id);
  dirty_.insert(id);
  pagerCounters().page_writes.inc();
  return pages_[id]->data();
}

const std::uint8_t* Pager::pageForRead(PageId id) const {
  if (id >= pages_.size() || !pages_[id]) {
    throw StorageError("Pager: read access to unallocated page " + std::to_string(id));
  }
  pagerCounters().page_reads.inc();
  return pages_[id]->data();
}

PageId Pager::allocate() {
  DbHeader& h = headerForWrite();
  if (h.freelist_head != kInvalidPage) {
    const PageId id = h.freelist_head;
    // The first 4 bytes of a free page link to the next free page.
    const std::uint8_t* raw = pageForRead(id);
    PageId next;
    std::memcpy(&next, raw, sizeof(next));
    h.freelist_head = next;
    std::uint8_t* page = pageForWrite(id);
    std::memset(page, 0, kPageSize);
    pagerCounters().pages_allocated.inc();
    return id;
  }
  const PageId id = h.page_count;
  h.page_count = id + 1;
  if (pages_.size() <= id) pages_.resize(id + 1);
  if (!pages_[id]) pages_[id] = std::make_unique<PageBuf>();
  pages_[id]->fill(0);
  journalTouch(id);
  dirty_.insert(id);
  pagerCounters().pages_allocated.inc();
  return id;
}

void Pager::free(PageId id) {
  if (id == 0) throw StorageError("Pager: cannot free header page");
  pagerCounters().pages_freed.inc();
  DbHeader& h = headerForWrite();
  std::uint8_t* page = pageForWrite(id);
  std::memset(page, 0, kPageSize);
  const PageId next = h.freelist_head;
  std::memcpy(page, &next, sizeof(next));
  h.freelist_head = id;
}

void Pager::beginJournal() {
  if (journaling_) throw StorageError("Pager: nested transactions are not supported");
  journaling_ = true;
  journal_.clear();
  journal_page_count_ = header().page_count;
}

void Pager::commitJournal() {
  if (!journaling_) throw StorageError("Pager: commit without begin");
  journaling_ = false;
  journal_.clear();
}

void Pager::rollbackJournal() {
  if (!journaling_) throw StorageError("Pager: rollback without begin");
  journaling_ = false;
  for (auto& [id, image] : journal_) {
    if (image) {
      *pages_.at(id) = *image;
      dirty_.insert(id);
    } else if (id < pages_.size()) {
      pages_[id].reset();  // discard page born inside the transaction
    }
  }
  journal_.clear();
  // Restoring the header page (journaled above) restored page_count and the
  // free-list head; trim the in-memory vector to match.
  const std::uint32_t count = header().page_count;
  if (pages_.size() > count) pages_.resize(count);
}

// --- FilePager ---------------------------------------------------------------

FilePager::FilePager(std::string path, Durability durability, Vfs* vfs)
    : path_(std::move(path)),
      journal_path_(journalPathFor(path_)),
      durability_(durability),
      vfs_(vfs != nullptr ? vfs : &PosixVfs::instance()) {
  file_ = vfs_->open(path_, /*create=*/true);
  recoverHotJournal();
  loadFromDisk();
}

FilePager::~FilePager() {
  try {
    flush();
  } catch (...) {
    // Destructors must not throw; data loss here is reported by explicit
    // flush() calls, which callers use at transaction boundaries.
  }
}

void FilePager::loadFromDisk() {
  const std::uint64_t file_size = file_->size();
  if (file_size == 0) {
    // Brand-new database (or one rolled back to before its first commit).
    formatNew();
    return;
  }
  if (file_size % kPageSize != 0) {
    throw StorageError("FilePager: " + path_ + " is not a valid minidb file");
  }
  const std::size_t count = static_cast<std::size_t>(file_size / kPageSize);
  pagerCounters().pages_loaded.inc(count);
  pages_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    pages_[i] = std::make_unique<PageBuf>();
    if (file_->read(std::uint64_t{i} * kPageSize, pages_[i]->data(), kPageSize) !=
        kPageSize) {
      throw StorageError("FilePager: short read from " + path_);
    }
  }
  const DbHeader& h = header();
  if (h.magic != kDbMagic || h.version != kDbVersion) {
    throw StorageError("FilePager: " + path_ + " has a bad header");
  }
  if (h.page_count > count) {
    throw StorageError("FilePager: " + path_ + " is truncated");
  }
}

void FilePager::recoverHotJournal() {
  if (!vfs_->exists(journal_path_)) return;
  auto jf = vfs_->open(journal_path_, /*create=*/false);
  const std::uint64_t jsize = jf->size();

  // Validate: header intact, all declared records present, checksum matches.
  // Anything less means the crash hit while the journal itself was being
  // written — the database was not yet touched, so the journal is garbage.
  JournalHeader jh{};
  std::vector<std::uint8_t> records;
  bool valid = false;
  if (jsize >= sizeof(JournalHeader) &&
      jf->read(0, &jh, sizeof(jh)) == sizeof(jh) && jh.magic == kJournalMagic &&
      jh.version == kJournalVersion) {
    const std::uint64_t need =
        sizeof(JournalHeader) + std::uint64_t{jh.page_count} * kJournalRecordSize;
    if (jsize >= need) {
      records.resize(need - sizeof(JournalHeader));
      if (jf->read(sizeof(JournalHeader), records.data(), records.size()) ==
              records.size() &&
          fnv1a(records.data(), records.size()) == jh.checksum) {
        valid = true;
      }
    }
  }
  jf.reset();
  if (!valid) {
    vfs_->remove(journal_path_);
    recovery_stats_.discarded_invalid_journal = true;
    return;
  }

  // Roll back: restore every before-image, then cut the file back to its
  // pre-commit length (dropping pages the interrupted commit appended).
  for (std::uint32_t i = 0; i < jh.page_count; ++i) {
    const std::uint8_t* rec = records.data() + std::size_t{i} * kJournalRecordSize;
    PageId id;
    std::memcpy(&id, rec, sizeof(id));
    file_->write(std::uint64_t{id} * kPageSize, rec + sizeof(id), kPageSize);
  }
  file_->truncate(std::uint64_t{jh.orig_file_pages} * kPageSize);
  file_->sync();
  vfs_->remove(journal_path_);
  recovery_stats_.recovered = true;
  recovery_stats_.pages_restored = jh.page_count;
}

void FilePager::flush() {
  if (dirty_.empty()) return;
  if (durability_ == Durability::Full) {
    flushDurable();
  } else {
    flushInPlace();
  }
}

std::uint64_t FilePager::fileSizeBytes() const {
  return file_->size();
}

std::uint64_t FilePager::journalSizeBytes() const {
  if (!vfs_->exists(journal_path_)) return 0;
  return vfs_->open(journal_path_, /*create=*/false)->size();
}

void FilePager::flushInPlace() {
  const std::uint32_t count = header().page_count;
  std::uint64_t written = 0;
  for (PageId id : dirty_) {
    if (id >= count || !pages_[id]) continue;  // freed/rolled-back page
    file_->write(std::uint64_t{id} * kPageSize, pages_[id]->data(), kPageSize);
    ++written;
  }
  pagerCounters().disk_page_writes.inc(written);
  dirty_.clear();
}

void FilePager::flushDurable() {
  const obs::StageTimer commit_timer;
  // A journal left behind by an earlier failed flush describes the last
  // committed on-disk state; roll the file back to it before starting over.
  // dirty_ still covers every page changed since that state, so the retry
  // rewrites everything the failed attempt did.
  if (vfs_->exists(journal_path_)) {
    RecoveryStats saved = recovery_stats_;
    recoverHotJournal();
    recovery_stats_ = saved;  // open-time stats, not flush-retry noise
  }

  const std::uint32_t count = header().page_count;
  std::vector<PageId> to_write;
  for (PageId id : dirty_) {
    if (id < count && id < pages_.size() && pages_[id]) to_write.push_back(id);
  }
  if (to_write.empty()) {
    dirty_.clear();
    return;
  }
  std::sort(to_write.begin(), to_write.end());

  // 1. Journal the before-images of every committed page we will overwrite.
  //    Pages past the current end of file need no image: rollback truncates.
  const std::uint64_t disk_pages = file_->size() / kPageSize;
  std::vector<std::uint8_t> records;
  std::uint32_t journaled = 0;
  for (PageId id : to_write) {
    if (std::uint64_t{id} >= disk_pages) continue;
    const std::size_t at = records.size();
    records.resize(at + kJournalRecordSize);
    std::memcpy(records.data() + at, &id, sizeof(id));
    if (file_->read(std::uint64_t{id} * kPageSize, records.data() + at + sizeof(id),
                    kPageSize) != kPageSize) {
      throw StorageError("FilePager: short read of before-image from " + path_);
    }
    ++journaled;
  }
  JournalHeader jh{kJournalMagic, kJournalVersion, journaled,
                   static_cast<std::uint32_t>(disk_pages),
                   fnv1a(records.data(), records.size())};
  std::vector<std::uint8_t> jbuf(sizeof(jh) + records.size());
  std::memcpy(jbuf.data(), &jh, sizeof(jh));
  if (!records.empty()) {  // data() of an empty vector may be null
    std::memcpy(jbuf.data() + sizeof(jh), records.data(), records.size());
  }

  auto jf = vfs_->open(journal_path_, /*create=*/true);
  jf->write(0, jbuf.data(), jbuf.size());
  jf->sync();
  pagerCounters().journal_fsyncs.inc();

  // 2. Write the new pages in place, then force them to stable storage.
  for (PageId id : to_write) {
    file_->write(std::uint64_t{id} * kPageSize, pages_[id]->data(), kPageSize);
  }
  file_->sync();
  pagerCounters().db_fsyncs.inc();

  // 3. Commit point: invalidate the journal. Truncating to zero commits even
  //    if the remove below never happens (an empty journal is discarded on
  //    open).
  jf->truncate(0);
  jf.reset();
  vfs_->remove(journal_path_);
  dirty_.clear();
  pagerCounters().disk_page_writes.inc(to_write.size());
  pagerCounters().commits.inc();
  pagerCounters().commit_ms.observe(
      static_cast<double>(commit_timer.elapsedUs()) / 1000.0);
}

}  // namespace perftrack::minidb
