#include "minidb/pager.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace perftrack::minidb {

using util::StorageError;

namespace {

/// Process-wide pager counters, resolved once from the global registry and
/// cached as references (the hot path is a relaxed atomic add, no lookup).
/// Cache-hit accounting: every pageForRead is a hit except the pages loaded
/// from disk at open (pt_pager_pages_loaded_total), since minidb keeps the
/// whole database resident.
struct PagerCounters {
  obs::Counter& page_reads;
  obs::Counter& page_writes;
  obs::Counter& pages_allocated;
  obs::Counter& pages_freed;
  obs::Counter& pages_loaded;
  obs::Counter& disk_page_writes;
  obs::Counter& journal_fsyncs;
  obs::Counter& db_fsyncs;
  obs::Counter& commits;
  obs::Histogram& commit_ms;
  obs::Counter& wal_frames;
  obs::Counter& wal_fsyncs;
  obs::Counter& wal_checkpoints;
  obs::Gauge& wal_bytes;
  obs::Gauge& snapshot_age;
  obs::Histogram& group_commit_batch;
};

PagerCounters& pagerCounters() {
  auto& reg = obs::Registry::global();
  static PagerCounters* c = new PagerCounters{
      reg.counter("pt_pager_page_reads_total"),
      reg.counter("pt_pager_page_writes_total"),
      reg.counter("pt_pager_pages_allocated_total"),
      reg.counter("pt_pager_pages_freed_total"),
      reg.counter("pt_pager_pages_loaded_total"),
      reg.counter("pt_pager_disk_page_writes_total"),
      reg.counter("pt_pager_journal_fsyncs_total"),
      reg.counter("pt_pager_db_fsyncs_total"),
      reg.counter("pt_pager_commits_total"),
      reg.histogram("pt_pager_commit_ms"),
      reg.counter("pt_wal_frames_total"),
      reg.counter("pt_wal_fsyncs_total"),
      reg.counter("pt_wal_checkpoints_total"),
      reg.gauge("pt_wal_bytes"),
      reg.gauge("pt_wal_snapshot_age"),
      reg.histogram("pt_wal_group_commit_batch"),
  };
  return *c;
}

DbHeader* headerOf(std::uint8_t* page0) { return reinterpret_cast<DbHeader*>(page0); }
const DbHeader* headerOf(const std::uint8_t* page0) {
  return reinterpret_cast<const DbHeader*>(page0);
}

std::uint64_t fnv1aSeed(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  return fnv1aSeed(14695981039346656037ULL, data, n);
}

/// First link of a WAL checksum chain: the offset basis mixed with the salt,
/// so frames surviving from an earlier WAL generation can never validate.
std::uint64_t walSeed(std::uint64_t salt) {
  return fnv1aSeed(14695981039346656037ULL, &salt, sizeof(salt));
}

/// Next link: previous frame's checksum folded with this frame's header
/// fields and page image. A frame checksums correctly only if every frame
/// before it did too, which is what lets recovery stop at the first torn
/// byte and keep the prefix.
std::uint64_t walChain(std::uint64_t chain, std::uint32_t page_id,
                       std::uint32_t commit_page_count, const std::uint8_t* image) {
  std::uint64_t h = fnv1aSeed(chain, &page_id, sizeof(page_id));
  h = fnv1aSeed(h, &commit_page_count, sizeof(commit_page_count));
  return fnv1aSeed(h, image, kPageSize);
}

constexpr std::size_t kJournalRecordSize = sizeof(std::uint32_t) + kPageSize;

}  // namespace

// --- snapshots ---------------------------------------------------------------

thread_local Pager::SnapshotScope::Frame* Pager::SnapshotScope::tls_top_ = nullptr;

Pager::ReadSnapshot::ReadSnapshot(ReadSnapshot&& o) noexcept
    : pager_(o.pager_), table_(std::move(o.table_)) {
  o.pager_ = nullptr;
}

Pager::ReadSnapshot& Pager::ReadSnapshot::operator=(ReadSnapshot&& o) noexcept {
  if (this != &o) {
    release();
    pager_ = o.pager_;
    table_ = std::move(o.table_);
    o.pager_ = nullptr;
  }
  return *this;
}

Pager::ReadSnapshot::~ReadSnapshot() { release(); }

void Pager::ReadSnapshot::release() {
  if (pager_ != nullptr && table_ != nullptr) {
    pager_->unpinSnapshot(table_->seq);
  }
  pager_ = nullptr;
  table_.reset();
}

Pager::SnapshotToken Pager::ReadSnapshot::token() const {
  return SnapshotToken{pager_, table_.get()};
}

Pager::SnapshotScope::SnapshotScope(const ReadSnapshot& snap) {
  const SnapshotToken t = snap.token();
  push(t.pager, t.table);
}

Pager::SnapshotScope::SnapshotScope(const SnapshotToken& token) {
  push(token.pager, token.table);
}

void Pager::SnapshotScope::push(const Pager* pager, const PageTable* table) {
  frame_.pager = (table != nullptr) ? pager : nullptr;
  frame_.table = table;
  frame_.prev = tls_top_;
  tls_top_ = &frame_;
}

Pager::SnapshotScope::~SnapshotScope() { tls_top_ = frame_.prev; }

Pager::SnapshotToken Pager::currentToken() {
  for (const SnapshotScope::Frame* f = SnapshotScope::tls_top_; f != nullptr;
       f = f->prev) {
    if (f->pager != nullptr) return SnapshotToken{f->pager, f->table};
  }
  return SnapshotToken{};
}

const Pager::PageTable* Pager::activeScopeTable() const {
  for (const SnapshotScope::Frame* f = SnapshotScope::tls_top_; f != nullptr;
       f = f->prev) {
    if (f->pager == this) return f->table;
  }
  return nullptr;
}

bool Pager::snapshotScopeActive() const { return activeScopeTable() != nullptr; }

Pager::ReadSnapshot Pager::beginSnapshot() const {
  std::lock_guard<std::mutex> lk(snap_mu_);
  ++pinned_[committed_->seq];
  updateSnapshotAgeLocked();
  return ReadSnapshot(this, committed_);
}

void Pager::unpinSnapshot(std::uint64_t seq) const {
  std::lock_guard<std::mutex> lk(snap_mu_);
  auto it = pinned_.find(seq);
  if (it != pinned_.end() && --(it->second) == 0) pinned_.erase(it);
  updateSnapshotAgeLocked();
}

std::size_t Pager::pinnedSnapshots() const {
  std::lock_guard<std::mutex> lk(snap_mu_);
  std::size_t n = 0;
  for (const auto& [seq, count] : pinned_) n += count;
  return n;
}

std::uint64_t Pager::commitSeq() const {
  std::lock_guard<std::mutex> lk(snap_mu_);
  return commit_seq_;
}

std::shared_ptr<const Pager::PageTable> Pager::committedTable() const {
  std::lock_guard<std::mutex> lk(snap_mu_);
  return committed_;
}

void Pager::updateSnapshotAgeLocked() const {
  const std::uint64_t oldest =
      pinned_.empty() ? commit_seq_ : pinned_.begin()->first;
  pagerCounters().snapshot_age.set(static_cast<double>(commit_seq_ - oldest));
}

void Pager::publishCommitted() {
  auto t = std::make_shared<PageTable>();
  t->pages.assign(pages_.begin(), pages_.end());
  t->page_count = headerOf(pages_.at(0)->data())->page_count;
  std::lock_guard<std::mutex> lk(snap_mu_);
  t->seq = ++commit_seq_;
  committed_ = std::move(t);
  // Every working buffer is now referenced by a published table; the next
  // write to any page must copy first.
  owned_.clear();
  updateSnapshotAgeLocked();
}

void Pager::publishIfChanged() {
  // Writer-side read of committed_: publishCommitted() is the only writer
  // and it runs on this same (serialized) side, so no lock is needed here.
  if (committed_ != nullptr && owned_.empty() &&
      committed_->pages.size() == pages_.size() &&
      committed_->page_count == headerOf(pages_.at(0)->data())->page_count) {
    return;
  }
  publishCommitted();
}

// --- pages -------------------------------------------------------------------

void Pager::formatNew() {
  pages_.clear();
  owned_.clear();
  pages_.push_back(std::make_shared<PageBuf>());
  pages_[0]->fill(0);
  DbHeader* h = headerOf(pages_[0]->data());
  h->magic = kDbMagic;
  h->version = kDbVersion;
  h->page_count = 1;
  h->freelist_head = kInvalidPage;
  h->catalog_first_page = kInvalidPage;
  owned_.insert(0);
  dirty_.insert(0);
}

const DbHeader& Pager::header() const {
  if (const PageTable* t = activeScopeTable()) {
    return *headerOf(t->pages.at(0)->data());
  }
  return *headerOf(pages_.at(0)->data());
}

DbHeader& Pager::headerForWrite() {
  return *headerOf(pageForWrite(0));
}

std::uint8_t* Pager::writableBuf(PageId id) {
  std::shared_ptr<PageBuf>& slot = pages_.at(id);
  if (journaling_ && !journal_.contains(id)) {
    if (id >= journal_page_count_) {
      // Page did not exist when the transaction began: record null image so
      // rollback simply discards it.
      journal_.emplace(id, nullptr);
    } else if (owned_.contains(id)) {
      // The working buffer will be mutated in place; keep a copy to undo.
      journal_.emplace(id, std::make_shared<PageBuf>(*slot));
    } else {
      // The buffer is frozen (shared with a published table); stashing the
      // pointer itself is a zero-copy before-image.
      journal_.emplace(id, slot);
    }
  }
  if (!owned_.contains(id)) {
    // Copy-on-write: the current buffer may be visible to pinned snapshots.
    slot = std::make_shared<PageBuf>(*slot);
    owned_.insert(id);
  }
  return slot->data();
}

std::uint8_t* Pager::pageForWrite(PageId id) {
  if (id >= pages_.size() || !pages_[id]) {
    throw StorageError("Pager: write access to unallocated page " + std::to_string(id));
  }
  std::uint8_t* raw = writableBuf(id);
  dirty_.insert(id);
  pagerCounters().page_writes.inc();
  return raw;
}

const std::uint8_t* Pager::pageForRead(PageId id) const {
  if (const PageTable* t = activeScopeTable()) {
    if (id >= t->pages.size() || !t->pages[id]) {
      throw StorageError("Pager: snapshot read of unallocated page " +
                         std::to_string(id));
    }
    pagerCounters().page_reads.inc();
    return t->pages[id]->data();
  }
  if (id >= pages_.size() || !pages_[id]) {
    throw StorageError("Pager: read access to unallocated page " + std::to_string(id));
  }
  pagerCounters().page_reads.inc();
  return pages_[id]->data();
}

PageId Pager::allocate() {
  DbHeader& h = headerForWrite();
  if (h.freelist_head != kInvalidPage) {
    const PageId id = h.freelist_head;
    // The first 4 bytes of a free page link to the next free page.
    const std::uint8_t* raw = pages_.at(id)->data();
    PageId next;
    std::memcpy(&next, raw, sizeof(next));
    h.freelist_head = next;
    std::uint8_t* page = pageForWrite(id);
    std::memset(page, 0, kPageSize);
    pagerCounters().pages_allocated.inc();
    return id;
  }
  const PageId id = h.page_count;
  h.page_count = id + 1;
  if (pages_.size() <= id) pages_.resize(id + 1);
  // Always a fresh buffer: a stale one left in the slot may still be
  // referenced by a published table.
  pages_[id] = std::make_shared<PageBuf>();
  pages_[id]->fill(0);
  if (journaling_ && !journal_.contains(id)) {
    journal_.emplace(id, nullptr);  // born inside the transaction
  }
  owned_.insert(id);
  dirty_.insert(id);
  pagerCounters().pages_allocated.inc();
  return id;
}

void Pager::free(PageId id) {
  if (id == 0) throw StorageError("Pager: cannot free header page");
  pagerCounters().pages_freed.inc();
  DbHeader& h = headerForWrite();
  std::uint8_t* page = pageForWrite(id);
  std::memset(page, 0, kPageSize);
  const PageId next = h.freelist_head;
  std::memcpy(page, &next, sizeof(next));
  h.freelist_head = id;
}

void Pager::beginJournal() {
  if (journaling_) throw StorageError("Pager: nested transactions are not supported");
  journaling_ = true;
  journal_.clear();
  journal_page_count_ = headerOf(pages_.at(0)->data())->page_count;
}

void Pager::commitJournal() {
  if (!journaling_) throw StorageError("Pager: commit without begin");
  journaling_ = false;
  journal_.clear();
  // The commit is visible to new snapshots immediately; durability is the
  // following flush()/flushAsync()'s job.
  publishIfChanged();
}

void Pager::rollbackJournal() {
  if (!journaling_) throw StorageError("Pager: rollback without begin");
  journaling_ = false;
  for (auto& [id, image] : journal_) {
    if (image) {
      pages_.at(id) = std::move(image);
      dirty_.insert(id);
      // The restored buffer may be the one a published table references;
      // treat it as shared so the next write copies.
      owned_.erase(id);
    } else if (id < pages_.size()) {
      pages_[id].reset();  // discard page born inside the transaction
      owned_.erase(id);
    }
  }
  journal_.clear();
  // Restoring the header page (journaled above) restored page_count and the
  // free-list head; trim the in-memory vector to match.
  const std::uint32_t count = headerOf(pages_.at(0)->data())->page_count;
  if (pages_.size() > count) pages_.resize(count);
}

// --- FilePager ---------------------------------------------------------------

FilePager::FilePager(std::string path, Durability durability, Vfs* vfs,
                     std::uint32_t wal_autocheckpoint)
    : path_(std::move(path)),
      journal_path_(journalPathFor(path_)),
      wal_path_(walPathFor(path_)),
      durability_(durability),
      vfs_(vfs != nullptr ? vfs : &PosixVfs::instance()),
      wal_autocheckpoint_(wal_autocheckpoint) {
  file_ = vfs_->open(path_, /*create=*/true);
  recoverHotJournal();
  recoverWal();
  loadFromDisk();
  publishIfChanged();
  wal_table_ = committedTable();
}

FilePager::~FilePager() {
  try {
    flush();
    // A clean close folds the WAL away: a leftover `<db>.wal` means the
    // process died, and open-time recovery replays it.
    if (durability_ == Durability::Wal) {
      checkpointWal();
      if (wal_) {
        wal_.reset();
        vfs_->remove(wal_path_);
      }
    }
  } catch (...) {
    // Destructors must not throw; data loss here is reported by explicit
    // flush() calls, which callers use at transaction boundaries.
  }
}

void FilePager::loadFromDisk() {
  const std::uint64_t file_size = file_->size();
  if (file_size == 0) {
    // Brand-new database (or one rolled back to before its first commit).
    formatNew();
    return;
  }
  if (file_size % kPageSize != 0) {
    throw StorageError("FilePager: " + path_ + " is not a valid minidb file");
  }
  const std::size_t count = static_cast<std::size_t>(file_size / kPageSize);
  pagerCounters().pages_loaded.inc(count);
  pages_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    pages_[i] = std::make_shared<PageBuf>();
    if (file_->read(std::uint64_t{i} * kPageSize, pages_[i]->data(), kPageSize) !=
        kPageSize) {
      throw StorageError("FilePager: short read from " + path_);
    }
  }
  const DbHeader& h = *headerOf(pages_.at(0)->data());
  if (h.magic != kDbMagic || h.version != kDbVersion) {
    throw StorageError("FilePager: " + path_ + " has a bad header");
  }
  if (h.page_count > count) {
    throw StorageError("FilePager: " + path_ + " is truncated");
  }
}

void FilePager::recoverHotJournal() {
  if (!vfs_->exists(journal_path_)) return;
  auto jf = vfs_->open(journal_path_, /*create=*/false);
  const std::uint64_t jsize = jf->size();

  // Validate: header intact, all declared records present, checksum matches.
  // Anything less means the crash hit while the journal itself was being
  // written — the database was not yet touched, so the journal is garbage.
  JournalHeader jh{};
  std::vector<std::uint8_t> records;
  bool valid = false;
  if (jsize >= sizeof(JournalHeader) &&
      jf->read(0, &jh, sizeof(jh)) == sizeof(jh) && jh.magic == kJournalMagic &&
      jh.version == kJournalVersion) {
    const std::uint64_t need =
        sizeof(JournalHeader) + std::uint64_t{jh.page_count} * kJournalRecordSize;
    if (jsize >= need) {
      records.resize(need - sizeof(JournalHeader));
      if (jf->read(sizeof(JournalHeader), records.data(), records.size()) ==
              records.size() &&
          fnv1a(records.data(), records.size()) == jh.checksum) {
        valid = true;
      }
    }
  }
  jf.reset();
  if (!valid) {
    vfs_->remove(journal_path_);
    recovery_stats_.discarded_invalid_journal = true;
    return;
  }

  // Roll back: restore every before-image, then cut the file back to its
  // pre-commit length (dropping pages the interrupted commit appended).
  for (std::uint32_t i = 0; i < jh.page_count; ++i) {
    const std::uint8_t* rec = records.data() + std::size_t{i} * kJournalRecordSize;
    PageId id;
    std::memcpy(&id, rec, sizeof(id));
    file_->write(std::uint64_t{id} * kPageSize, rec + sizeof(id), kPageSize);
  }
  file_->truncate(std::uint64_t{jh.orig_file_pages} * kPageSize);
  file_->sync();
  vfs_->remove(journal_path_);
  recovery_stats_.recovered = true;
  recovery_stats_.pages_restored = jh.page_count;
}

void FilePager::recoverWal() {
  if (!vfs_->exists(wal_path_)) return;
  auto wf = vfs_->open(wal_path_, /*create=*/false);
  const std::uint64_t wsize = wf->size();

  WalHeader wh{};
  const bool header_ok =
      wsize >= sizeof(WalHeader) && wf->read(0, &wh, sizeof(wh)) == sizeof(wh) &&
      wh.magic == kWalMagic && wh.version == kWalVersion &&
      wh.page_size == kPageSize;

  // Walk the checksum chain frame by frame. Frames accumulate into the
  // pending transaction; a commit-marker frame folds the pending set into
  // `latest`. The walk stops at the first torn/invalid frame, so `latest`
  // is exactly the longest committed prefix.
  std::map<PageId, std::vector<std::uint8_t>> latest;
  std::map<PageId, std::vector<std::uint8_t>> pending;
  std::uint32_t commit_pages = 0;
  bool tail_discarded = false;
  if (header_ok) {
    std::uint64_t off = sizeof(WalHeader);
    std::uint64_t chain = walSeed(wh.salt);
    std::vector<std::uint8_t> frame(kWalFrameSize);
    while (off + kWalFrameSize <= wsize) {
      if (wf->read(off, frame.data(), frame.size()) != frame.size()) {
        tail_discarded = true;
        break;
      }
      WalFrameHeader fh;
      std::memcpy(&fh, frame.data(), sizeof(fh));
      const std::uint64_t want =
          walChain(chain, fh.page_id, fh.commit_page_count, frame.data() + sizeof(fh));
      if (want != fh.checksum) {
        tail_discarded = true;
        break;
      }
      chain = want;
      pending[fh.page_id].assign(frame.begin() + sizeof(fh), frame.end());
      if (fh.commit_page_count != 0) {
        for (auto& [id, img] : pending) latest[id] = std::move(img);
        pending.clear();
        commit_pages = fh.commit_page_count;
      }
      off += kWalFrameSize;
    }
    if (off < wsize) tail_discarded = true;  // trailing partial frame
  }
  wf.reset();

  if (commit_pages == 0) {
    // No complete commit in the log: the db file alone is the state.
    vfs_->remove(wal_path_);
    if (wsize > 0) recovery_stats_.discarded_invalid_wal = true;
    return;
  }

  // Fold the committed prefix into the db file, cut it to the final commit's
  // page count, and only then (after the db fsync) drop the WAL — a crash
  // anywhere in here leaves the WAL in place and recovery simply reruns.
  for (const auto& [id, img] : latest) {
    if (id >= commit_pages) continue;  // freed past the final commit's end
    file_->write(std::uint64_t{id} * kPageSize, img.data(), kPageSize);
  }
  file_->truncate(std::uint64_t{commit_pages} * kPageSize);
  file_->sync();
  vfs_->remove(wal_path_);
  recovery_stats_.wal_replayed = true;
  recovery_stats_.wal_frames_applied = static_cast<std::uint32_t>(latest.size());
  if (tail_discarded || !pending.empty()) recovery_stats_.discarded_invalid_wal = true;
}

void FilePager::flush() {
  if (durability_ == Durability::Wal) {
    flushWal(/*defer=*/false);
    return;
  }
  if (dirty_.empty()) {
    publishIfChanged();
    return;
  }
  if (durability_ == Durability::Full) {
    flushDurable();
  } else {
    flushInPlace();
  }
}

std::uint64_t FilePager::flushAsync() {
  if (durability_ == Durability::Wal) return flushWal(/*defer=*/true);
  flush();
  return 0;
}

void FilePager::waitDurable(std::uint64_t lsn) {
  if (durability_ != Durability::Wal || lsn == 0) return;
  syncWalTo(lsn);
}

void FilePager::checkpoint() {
  if (durability_ == Durability::Wal) checkpointWal();
}

std::uint64_t FilePager::fileSizeBytes() const {
  return file_->size();
}

std::uint64_t FilePager::journalSizeBytes() const {
  if (!vfs_->exists(journal_path_)) return 0;
  return vfs_->open(journal_path_, /*create=*/false)->size();
}

std::uint64_t FilePager::walSizeBytes() const {
  if (durability_ == Durability::Wal) return wal_end_.load(std::memory_order_relaxed);
  if (!vfs_->exists(wal_path_)) return 0;
  return vfs_->open(wal_path_, /*create=*/false)->size();
}

void FilePager::flushInPlace() {
  const std::uint32_t count = header().page_count;
  std::uint64_t written = 0;
  for (PageId id : dirty_) {
    if (id >= count || !pages_[id]) continue;  // freed/rolled-back page
    file_->write(std::uint64_t{id} * kPageSize, pages_[id]->data(), kPageSize);
    ++written;
  }
  pagerCounters().disk_page_writes.inc(written);
  dirty_.clear();
  publishIfChanged();
}

void FilePager::flushDurable() {
  const obs::StageTimer commit_timer;
  // A journal left behind by an earlier failed flush describes the last
  // committed on-disk state; roll the file back to it before starting over.
  // dirty_ still covers every page changed since that state, so the retry
  // rewrites everything the failed attempt did.
  if (vfs_->exists(journal_path_)) {
    RecoveryStats saved = recovery_stats_;
    recoverHotJournal();
    recovery_stats_ = saved;  // open-time stats, not flush-retry noise
  }

  const std::uint32_t count = header().page_count;
  std::vector<PageId> to_write;
  for (PageId id : dirty_) {
    if (id < count && id < pages_.size() && pages_[id]) to_write.push_back(id);
  }
  if (to_write.empty()) {
    dirty_.clear();
    publishIfChanged();
    return;
  }
  std::sort(to_write.begin(), to_write.end());

  // 1. Journal the before-images of every committed page we will overwrite.
  //    Pages past the current end of file need no image: rollback truncates.
  const std::uint64_t disk_pages = file_->size() / kPageSize;
  std::vector<std::uint8_t> records;
  std::uint32_t journaled = 0;
  for (PageId id : to_write) {
    if (std::uint64_t{id} >= disk_pages) continue;
    const std::size_t at = records.size();
    records.resize(at + kJournalRecordSize);
    std::memcpy(records.data() + at, &id, sizeof(id));
    if (file_->read(std::uint64_t{id} * kPageSize, records.data() + at + sizeof(id),
                    kPageSize) != kPageSize) {
      throw StorageError("FilePager: short read of before-image from " + path_);
    }
    ++journaled;
  }
  JournalHeader jh{kJournalMagic, kJournalVersion, journaled,
                   static_cast<std::uint32_t>(disk_pages),
                   fnv1a(records.data(), records.size())};
  std::vector<std::uint8_t> jbuf(sizeof(jh) + records.size());
  std::memcpy(jbuf.data(), &jh, sizeof(jh));
  if (!records.empty()) {  // data() of an empty vector may be null
    std::memcpy(jbuf.data() + sizeof(jh), records.data(), records.size());
  }

  auto jf = vfs_->open(journal_path_, /*create=*/true);
  jf->write(0, jbuf.data(), jbuf.size());
  jf->sync();
  pagerCounters().journal_fsyncs.inc();

  // 2. Write the new pages in place, then force them to stable storage.
  for (PageId id : to_write) {
    file_->write(std::uint64_t{id} * kPageSize, pages_[id]->data(), kPageSize);
  }
  file_->sync();
  pagerCounters().db_fsyncs.inc();

  // 3. Commit point: invalidate the journal. Truncating to zero commits even
  //    if the remove below never happens (an empty journal is discarded on
  //    open).
  jf->truncate(0);
  jf.reset();
  vfs_->remove(journal_path_);
  dirty_.clear();
  publishIfChanged();
  pagerCounters().disk_page_writes.inc(to_write.size());
  pagerCounters().commits.inc();
  pagerCounters().commit_ms.observe(
      static_cast<double>(commit_timer.elapsedUs()) / 1000.0);
}

// --- WAL ---------------------------------------------------------------------

void FilePager::ensureWalOpen() {
  if (!wal_) wal_ = vfs_->open(wal_path_, /*create=*/true);
  if (wal_end_.load(std::memory_order_relaxed) == 0) {
    // Fresh (or just-checkpointed) log: write the header with a new salt so
    // any bytes surviving from the previous generation can never checksum.
    WalHeader wh{kWalMagic, kWalVersion, kPageSize, 0, ++wal_salt_};
    wal_->write(0, &wh, sizeof(wh));
    wal_end_.store(sizeof(WalHeader), std::memory_order_relaxed);
    wal_chain_ = walSeed(wh.salt);
  }
}

std::uint64_t FilePager::flushWal(bool defer) {
  const obs::StageTimer commit_timer;
  PagerCounters& c = pagerCounters();

  // Fold the log back into the db file before it grows without bound —
  // only between transactions, and only when no pinned snapshot might
  // still be reading through the old frames.
  if (wal_autocheckpoint_ != 0 && !inTransaction() &&
      wal_frames_.load(std::memory_order_relaxed) >= wal_autocheckpoint_ &&
      pinnedSnapshots() == 0) {
    checkpointWal();
  }

  const std::uint32_t count = header().page_count;
  std::vector<PageId> to_write;
  for (PageId id : dirty_) {
    if (id < count && id < pages_.size() && pages_[id]) to_write.push_back(id);
  }
  if (to_write.empty()) {
    dirty_.clear();
    publishIfChanged();
    if (!defer) {
      // Nothing new, but earlier deferred commits may still be unsynced.
      std::uint64_t target;
      {
        std::lock_guard<std::mutex> lk(wal_sync_mu_);
        target = wal_appended_lsn_;
      }
      if (target != 0 && wal_) syncWalTo(target);
    }
    return 0;
  }
  std::sort(to_write.begin(), to_write.end());
  ensureWalOpen();

  // Append one frame per page; the last frame carries the new page count and
  // is the commit marker. wal_end_/wal_chain_ advance only after every write
  // succeeded — a failed append leaves the valid region untouched and the
  // retry overwrites the garbage tail.
  std::uint64_t off = wal_end_.load(std::memory_order_relaxed);
  std::uint64_t chain = wal_chain_;
  std::vector<std::uint8_t> frame(kWalFrameSize);
  for (std::size_t i = 0; i < to_write.size(); ++i) {
    const PageId id = to_write[i];
    WalFrameHeader fh{};
    fh.page_id = id;
    fh.commit_page_count = (i + 1 == to_write.size()) ? count : 0;
    chain = walChain(chain, fh.page_id, fh.commit_page_count, pages_[id]->data());
    fh.checksum = chain;
    std::memcpy(frame.data(), &fh, sizeof(fh));
    std::memcpy(frame.data() + sizeof(fh), pages_[id]->data(), kPageSize);
    wal_->write(off, frame.data(), frame.size());
    off += kWalFrameSize;
  }
  wal_end_.store(off, std::memory_order_relaxed);
  wal_chain_ = chain;
  wal_frames_.fetch_add(static_cast<std::uint32_t>(to_write.size()),
                        std::memory_order_relaxed);
  for (PageId id : to_write) wal_pages_.insert(id);
  dirty_.clear();

  // The commit is now replayable: publish it to readers and remember the
  // published table as the newest WAL-covered state for checkpoints.
  publishIfChanged();
  wal_table_ = committedTable();

  std::uint64_t lsn;
  {
    std::lock_guard<std::mutex> lk(wal_sync_mu_);
    lsn = ++wal_appended_lsn_;
  }
  c.wal_frames.inc(to_write.size());
  c.wal_bytes.set(static_cast<double>(off));
  c.commits.inc();
  if (!defer) syncWalTo(lsn);
  c.commit_ms.observe(static_cast<double>(commit_timer.elapsedUs()) / 1000.0);
  return lsn;
}

void FilePager::syncWalTo(std::uint64_t lsn) {
  std::unique_lock<std::mutex> lk(wal_sync_mu_);
  for (;;) {
    if (wal_synced_lsn_ >= lsn) return;  // a leader already covered us
    if (!wal_sync_leader_) break;
    wal_sync_cv_.wait(lk);
  }
  // Leader: one fsync covers every commit appended so far, ours included.
  wal_sync_leader_ = true;
  const std::uint64_t target = wal_appended_lsn_;
  const std::uint64_t batch = target - wal_synced_lsn_;
  lk.unlock();
  try {
    wal_->sync();
  } catch (...) {
    lk.lock();
    wal_sync_leader_ = false;
    wal_sync_cv_.notify_all();
    throw;
  }
  lk.lock();
  wal_synced_lsn_ = target;
  wal_sync_leader_ = false;
  wal_sync_cv_.notify_all();
  lk.unlock();
  PagerCounters& c = pagerCounters();
  c.wal_fsyncs.inc();
  c.group_commit_batch.observe(static_cast<double>(batch));
}

void FilePager::checkpointWal() {
  if (inTransaction()) {
    throw StorageError("FilePager: checkpoint inside a transaction");
  }
  if (wal_end_.load(std::memory_order_relaxed) == 0 || !wal_table_) return;

  // 1. The log must be durable before its content is folded: if db-page
  //    writes below tear in a crash, recovery needs the frames to redo them.
  std::uint64_t target;
  {
    std::lock_guard<std::mutex> lk(wal_sync_mu_);
    target = wal_appended_lsn_;
  }
  if (target != 0) syncWalTo(target);

  // 2. Fold the newest WAL-covered committed version into the db file and
  //    cut the file to its page count.
  const std::shared_ptr<const PageTable> table = wal_table_;
  std::vector<PageId> ids(wal_pages_.begin(), wal_pages_.end());
  std::sort(ids.begin(), ids.end());
  std::uint64_t written = 0;
  for (PageId id : ids) {
    if (id >= table->page_count || id >= table->pages.size() || !table->pages[id]) {
      continue;  // freed past the end; the truncate below drops it
    }
    file_->write(std::uint64_t{id} * kPageSize, table->pages[id]->data(), kPageSize);
    ++written;
  }
  file_->truncate(std::uint64_t{table->page_count} * kPageSize);
  file_->sync();

  // 3. Reset the log. The truncate is the checkpoint's commit point: a crash
  //    before it replays the (now redundant) WAL; after it the db file alone
  //    is the committed state.
  wal_->truncate(0);
  wal_->sync();
  wal_end_.store(0, std::memory_order_relaxed);
  wal_chain_ = 0;
  wal_frames_.store(0, std::memory_order_relaxed);
  wal_pages_.clear();
  {
    std::lock_guard<std::mutex> lk(wal_sync_mu_);
    wal_synced_lsn_ = wal_appended_lsn_;
  }
  PagerCounters& c = pagerCounters();
  c.db_fsyncs.inc();
  c.disk_page_writes.inc(written);
  c.wal_checkpoints.inc();
  c.wal_bytes.set(0.0);
}

}  // namespace perftrack::minidb
