#include "minidb/pager.h"

#include <cstdio>
#include <cstring>

#include "util/error.h"

namespace perftrack::minidb {

using util::StorageError;

namespace {

DbHeader* headerOf(std::uint8_t* page0) { return reinterpret_cast<DbHeader*>(page0); }

}  // namespace

void Pager::formatNew() {
  pages_.clear();
  pages_.push_back(std::make_unique<PageBuf>());
  pages_[0]->fill(0);
  DbHeader* h = headerOf(pages_[0]->data());
  h->magic = kDbMagic;
  h->version = kDbVersion;
  h->page_count = 1;
  h->freelist_head = kInvalidPage;
  h->catalog_first_page = kInvalidPage;
  dirty_.insert(0);
}

const DbHeader& Pager::header() const {
  return *headerOf(pages_.at(0)->data());
}

DbHeader& Pager::headerForWrite() {
  return *headerOf(pageForWrite(0));
}

void Pager::journalTouch(PageId id) {
  if (!journaling_) return;
  if (journal_.contains(id)) return;
  if (id >= journal_page_count_) {
    // Page did not exist when the transaction began: record null image so
    // rollback simply discards it.
    journal_.emplace(id, nullptr);
    return;
  }
  auto copy = std::make_unique<PageBuf>(*pages_.at(id));
  journal_.emplace(id, std::move(copy));
}

std::uint8_t* Pager::pageForWrite(PageId id) {
  if (id >= pages_.size() || !pages_[id]) {
    throw StorageError("Pager: write access to unallocated page " + std::to_string(id));
  }
  journalTouch(id);
  dirty_.insert(id);
  return pages_[id]->data();
}

const std::uint8_t* Pager::pageForRead(PageId id) const {
  if (id >= pages_.size() || !pages_[id]) {
    throw StorageError("Pager: read access to unallocated page " + std::to_string(id));
  }
  return pages_[id]->data();
}

PageId Pager::allocate() {
  DbHeader& h = headerForWrite();
  if (h.freelist_head != kInvalidPage) {
    const PageId id = h.freelist_head;
    // The first 4 bytes of a free page link to the next free page.
    const std::uint8_t* raw = pageForRead(id);
    PageId next;
    std::memcpy(&next, raw, sizeof(next));
    h.freelist_head = next;
    std::uint8_t* page = pageForWrite(id);
    std::memset(page, 0, kPageSize);
    return id;
  }
  const PageId id = h.page_count;
  h.page_count = id + 1;
  if (pages_.size() <= id) pages_.resize(id + 1);
  if (!pages_[id]) pages_[id] = std::make_unique<PageBuf>();
  pages_[id]->fill(0);
  journalTouch(id);
  dirty_.insert(id);
  return id;
}

void Pager::free(PageId id) {
  if (id == 0) throw StorageError("Pager: cannot free header page");
  DbHeader& h = headerForWrite();
  std::uint8_t* page = pageForWrite(id);
  std::memset(page, 0, kPageSize);
  const PageId next = h.freelist_head;
  std::memcpy(page, &next, sizeof(next));
  h.freelist_head = id;
}

void Pager::beginJournal() {
  if (journaling_) throw StorageError("Pager: nested transactions are not supported");
  journaling_ = true;
  journal_.clear();
  journal_page_count_ = header().page_count;
}

void Pager::commitJournal() {
  if (!journaling_) throw StorageError("Pager: commit without begin");
  journaling_ = false;
  journal_.clear();
}

void Pager::rollbackJournal() {
  if (!journaling_) throw StorageError("Pager: rollback without begin");
  journaling_ = false;
  for (auto& [id, image] : journal_) {
    if (image) {
      *pages_.at(id) = *image;
      dirty_.insert(id);
    } else if (id < pages_.size()) {
      pages_[id].reset();  // discard page born inside the transaction
    }
  }
  journal_.clear();
  // Restoring the header page (journaled above) restored page_count and the
  // free-list head; trim the in-memory vector to match.
  const std::uint32_t count = header().page_count;
  if (pages_.size() > count) pages_.resize(count);
}

FilePager::FilePager(std::string path) : path_(std::move(path)) {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) {
    formatNew();
    return;
  }
  // Load existing file page by page.
  std::fseek(f, 0, SEEK_END);
  const long file_size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (file_size < static_cast<long>(kPageSize) || file_size % kPageSize != 0) {
    std::fclose(f);
    throw StorageError("FilePager: " + path_ + " is not a valid minidb file");
  }
  const std::size_t count = static_cast<std::size_t>(file_size) / kPageSize;
  pages_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    pages_[i] = std::make_unique<PageBuf>();
    if (std::fread(pages_[i]->data(), 1, kPageSize, f) != kPageSize) {
      std::fclose(f);
      throw StorageError("FilePager: short read from " + path_);
    }
  }
  std::fclose(f);
  const DbHeader& h = header();
  if (h.magic != kDbMagic || h.version != kDbVersion) {
    throw StorageError("FilePager: " + path_ + " has a bad header");
  }
  if (h.page_count > count) {
    throw StorageError("FilePager: " + path_ + " is truncated");
  }
}

FilePager::~FilePager() {
  try {
    flush();
  } catch (...) {
    // Destructors must not throw; data loss here is reported by explicit
    // flush() calls, which callers use at transaction boundaries.
  }
}

void FilePager::flush() {
  if (dirty_.empty()) return;
  std::FILE* f = std::fopen(path_.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path_.c_str(), "w+b");
  if (f == nullptr) throw StorageError("FilePager: cannot open " + path_ + " for writing");
  const std::uint32_t count = header().page_count;
  for (PageId id : dirty_) {
    if (id >= count || !pages_[id]) continue;  // freed/rolled-back page
    if (std::fseek(f, static_cast<long>(std::uint64_t{id} * kPageSize), SEEK_SET) != 0 ||
        std::fwrite(pages_[id]->data(), 1, kPageSize, f) != kPageSize) {
      std::fclose(f);
      throw StorageError("FilePager: short write to " + path_);
    }
  }
  std::fflush(f);
  std::fclose(f);
  dirty_.clear();
}

}  // namespace perftrack::minidb
