// minidb: page management.
//
// A minidb database is an array of fixed-size (8 KiB) pages. Page 0 is the
// header page holding the magic number, logical page count, free-list head,
// and the first page of the catalog heap. The pager provides:
//   * allocation (reusing free-listed pages first),
//   * mutable/const access to page bytes,
//   * page-level undo journaling: between beginJournal() and commitJournal(),
//     the before-image of every touched page is retained so rollbackJournal()
//     can restore the exact pre-transaction state (including the header, and
//     therefore the free list and page count),
//   * snapshot reads: page buffers are copy-on-write, and every commit
//     publishes an immutable page table. A ReadSnapshot pins one published
//     table; while a SnapshotScope for it is installed on a thread,
//     pageForRead() on that thread resolves through the pinned table and
//     never touches the writer's working state — readers see exactly one
//     committed version and never block on (or race with) a writer,
//   * durability: FilePager persists dirty pages to a backing file on flush();
//     MemPager keeps everything in memory (the PerfTrack "in-memory backend").
//
// With Durability::Full (the default), flush() is an atomic commit protected
// by an on-disk rollback journal (`<db>.journal`): before-images of every
// page about to be overwritten are written to the journal and fsynced, then
// the pages are written in place and the database fsynced, and only then is
// the journal invalidated (truncated and removed). A crash at any point
// leaves either the new state (journal gone) or enough information to roll
// back to the last committed state; FilePager detects a hot journal on open
// and replays it before loading. Durability::None keeps the legacy
// behavior — in-place rewrite, no journal, no fsync — for scratch stores and
// the durability-ablation benchmarks.
//
// Durability::Wal replaces the rollback journal with a write-ahead log
// (`<db>.wal`): flush() appends the dirty pages as checksummed frames (the
// last frame of each commit carries the new page count and acts as the
// commit marker), so a commit never rewrites the database file and a crash
// at any point leaves a committed prefix — recovery replays every complete,
// checksum-chained commit from the WAL into the db file and discards the
// torn tail. A checkpoint folds the WAL back into the db file when no pinned
// snapshot still needs the old frames. Commit fsyncs support group commit:
// flushAsync() appends + publishes without syncing and returns an LSN;
// concurrent committers calling waitDurable(lsn) elect a leader that batches
// every appended commit into one fsync.
//
// This mirrors the role PostgreSQL/Oracle played for the paper: a real paged
// storage substrate underneath the relational schema.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "minidb/types.h"
#include "minidb/vfs.h"

namespace perftrack::minidb {

/// Raw bytes of one page.
using PageBuf = std::array<std::uint8_t, kPageSize>;

/// On-page layout of the header page (page 0).
struct DbHeader {
  std::uint32_t magic;          // 'PTDB'
  std::uint32_t version;        // format version
  std::uint32_t page_count;     // logical number of pages (including header)
  PageId freelist_head;         // first free page, or kInvalidPage
  PageId catalog_first_page;    // first page of the catalog heap
};

inline constexpr std::uint32_t kDbMagic = 0x50544442;  // "PTDB"
inline constexpr std::uint32_t kDbVersion = 1;

/// On-disk header of the rollback journal (`<db>.journal`). Followed by
/// `page_count` records of {u32 page_id, u8[kPageSize] before-image}.
struct JournalHeader {
  std::uint32_t magic;            // 'PTDJ'
  std::uint32_t version;
  std::uint32_t page_count;       // number of before-image records
  std::uint32_t orig_file_pages;  // db file length (in pages) at journal time
  std::uint64_t checksum;         // FNV-1a 64 over the record bytes
};

inline constexpr std::uint32_t kJournalMagic = 0x5054444A;  // "PTDJ"
inline constexpr std::uint32_t kJournalVersion = 1;

/// On-disk header of the write-ahead log (`<db>.wal`). Followed by frames of
/// {WalFrameHeader, u8[kPageSize] page image}.
struct WalHeader {
  std::uint32_t magic;      // 'PTWL'
  std::uint32_t version;
  std::uint32_t page_size;  // must equal kPageSize
  std::uint32_t reserved;
  std::uint64_t salt;       // rotated on every WAL reset; seeds the checksum chain
};

/// One WAL frame. `commit_page_count` is zero for all but the last frame of a
/// commit; the final frame carries the database's new logical page count and
/// is the commit marker — recovery applies a commit only when its marker
/// frame (and every frame before it) checksums correctly.
struct WalFrameHeader {
  std::uint32_t page_id;
  std::uint32_t commit_page_count;  // 0 = not a commit boundary
  std::uint64_t checksum;           // chained FNV-1a over header fields + image
};

inline constexpr std::uint32_t kWalMagic = 0x5054574C;  // "PTWL"
inline constexpr std::uint32_t kWalVersion = 1;
inline constexpr std::size_t kWalFrameSize = sizeof(WalFrameHeader) + kPageSize;

/// Default auto-checkpoint threshold: checkpoint before a commit once the WAL
/// holds this many frames (and no snapshot pins an older version).
inline constexpr std::uint32_t kDefaultWalAutoCheckpoint = 512;

/// How flush() makes a commit reach the disk.
enum class Durability {
  None,  // in-place rewrite, no journal, no fsync (fast, crash-unsafe)
  Full,  // rollback journal + fsync ordering; crash leaves last committed state
  Wal,   // write-ahead log: append-only commits, snapshot reads, group commit
};

/// What (if anything) happened to hot journal/WAL files found at open.
struct RecoveryStats {
  bool recovered = false;        // before-images were rolled back into the db
  std::uint32_t pages_restored = 0;
  bool discarded_invalid_journal = false;  // torn/empty journal: db untouched
  bool wal_replayed = false;               // committed WAL frames folded into the db
  std::uint32_t wal_frames_applied = 0;    // distinct pages written during replay
  bool discarded_invalid_wal = false;      // torn/garbage WAL tail discarded
};

/// Abstract pager. The writer side (allocation, pageForWrite, transactions,
/// flush) is single-threaded, like the paper's per-session database
/// connections; concurrent readers are supported through ReadSnapshot +
/// SnapshotScope, which resolve reads against an immutable published page
/// table instead of the writer's working state.
class Pager {
 public:
  /// An immutable, published version of the database: the page buffers and
  /// logical page count as of one commit. Never mutated after publication.
  struct PageTable {
    std::vector<std::shared_ptr<const PageBuf>> pages;
    std::uint64_t seq = 0;          // commit sequence number
    std::uint32_t page_count = 0;   // logical page count at that commit
  };

  /// A copyable handle to a snapshot's page table, for handing a snapshot to
  /// worker threads (the parallel executor): capture currentToken() on the
  /// cursor's thread, construct a SnapshotScope from it inside each worker.
  /// The token does NOT pin the snapshot — the originating ReadSnapshot must
  /// outlive every scope built from its token.
  struct SnapshotToken {
    const Pager* pager = nullptr;
    const PageTable* table = nullptr;
  };

  /// Pins one published PageTable. While alive, a checkpoint will not fold
  /// the WAL (the snapshot may still need the old frames) and the buffers it
  /// references are kept alive regardless of later commits.
  class ReadSnapshot {
   public:
    ReadSnapshot() = default;
    ReadSnapshot(ReadSnapshot&& o) noexcept;
    ReadSnapshot& operator=(ReadSnapshot&& o) noexcept;
    ReadSnapshot(const ReadSnapshot&) = delete;
    ReadSnapshot& operator=(const ReadSnapshot&) = delete;
    ~ReadSnapshot();

    bool valid() const { return table_ != nullptr; }
    std::uint64_t seq() const { return table_ ? table_->seq : 0; }
    const Pager* pager() const { return pager_; }

    void release();

    /// Handle for SnapshotScope / worker-thread propagation; valid only
    /// while this snapshot is alive.
    SnapshotToken token() const;

   private:
    friend class Pager;
    ReadSnapshot(const Pager* pager, std::shared_ptr<const PageTable> table)
        : pager_(pager), table_(std::move(table)) {}

    const Pager* pager_ = nullptr;
    std::shared_ptr<const PageTable> table_;
  };

  /// Installs a snapshot as this thread's read source for the snapshot's
  /// pager (thread-local, stack-like: scopes nest, inner-most wins). While
  /// installed, pageForRead()/header()/pageCount() on this thread resolve
  /// through the pinned table.
  class SnapshotScope {
   public:
    explicit SnapshotScope(const ReadSnapshot& snap);
    explicit SnapshotScope(const SnapshotToken& token);
    SnapshotScope(const SnapshotScope&) = delete;
    SnapshotScope& operator=(const SnapshotScope&) = delete;
    ~SnapshotScope();

   private:
    struct Frame {
      const Pager* pager = nullptr;
      const PageTable* table = nullptr;
      Frame* prev = nullptr;
    };
    friend class Pager;
    void push(const Pager* pager, const PageTable* table);
    Frame frame_;
    static thread_local Frame* tls_top_;
  };

  /// The inner-most snapshot installed on this thread (pager null if none).
  static SnapshotToken currentToken();

  virtual ~Pager() = default;

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Allocates a zeroed page (reusing the free list when possible) and
  /// returns its id. The page is implicitly dirty.
  PageId allocate();

  /// Returns a freed page to the free list.
  void free(PageId id);

  /// Mutable access: records an undo image (if journaling), copies shared
  /// buffers (copy-on-write against published snapshots) and marks dirty.
  std::uint8_t* pageForWrite(PageId id);

  /// Read-only access. Resolves through the thread's installed SnapshotScope
  /// when one is active for this pager, else through the working state.
  const std::uint8_t* pageForRead(PageId id) const;

  /// Logical page count, including the header page. Snapshot-aware like
  /// pageForRead.
  std::uint32_t pageCount() const { return header().page_count; }

  /// Total logical size in bytes (page_count * page size). This is the
  /// number reported as "DB size" in Table 1 reproductions.
  std::uint64_t sizeBytes() const { return std::uint64_t{pageCount()} * kPageSize; }

  DbHeader& headerForWrite();
  const DbHeader& header() const;

  // --- snapshots ----------------------------------------------------------

  /// Pins the most recently published committed version.
  ReadSnapshot beginSnapshot() const;

  /// True when the calling thread has a SnapshotScope installed for this
  /// pager (reads resolve through a pinned table, not working state).
  bool snapshotScopeActive() const;

  /// Number of live ReadSnapshots (any version).
  std::size_t pinnedSnapshots() const;

  /// Sequence number of the latest published commit.
  std::uint64_t commitSeq() const;

  // --- transactions -------------------------------------------------------
  void beginJournal();
  void commitJournal();
  void rollbackJournal();
  bool inTransaction() const { return journaling_; }

  /// Persists dirty pages. For the in-memory backend this only republishes
  /// the committed snapshot. When the flush throws (I/O error or injected
  /// fault), no dirty state is forgotten: a later flush retries the full set
  /// against the last committed on-disk state.
  virtual void flush() { publishIfChanged(); }

  /// Like flush(), but in WAL mode the commit fsync is deferred: frames are
  /// appended and the commit is published to readers, and the returned LSN
  /// must be passed to waitDurable() before the commit is acknowledged.
  /// Returns 0 when nothing remains to sync (non-WAL modes sync inline).
  virtual std::uint64_t flushAsync() {
    flush();
    return 0;
  }

  /// Blocks until the commit identified by `lsn` is on stable storage.
  /// Concurrent callers batch behind a leader into one fsync (group commit).
  virtual void waitDurable(std::uint64_t /*lsn*/) {}

  /// WAL mode: folds the log back into the db file and resets it. Throws
  /// when called inside a transaction; no-op in other modes. Safe to call
  /// with snapshots pinned — they keep reading their pinned buffers — but
  /// automatic checkpoints are deferred while any snapshot is live.
  virtual void checkpoint() {}

  /// This pager's durability mode (None for MemPager).
  virtual Durability durability() const { return Durability::None; }

  /// Hot journal/WAL recovery outcome of open (all-false for MemPager and
  /// for clean opens).
  const RecoveryStats& recoveryStats() const { return recovery_stats_; }

  /// On-disk database file size in bytes (0 for in-memory backends). May
  /// differ from sizeBytes() until the next flush.
  virtual std::uint64_t fileSizeBytes() const { return 0; }

  /// Size of the sidecar rollback journal, or 0 when absent/in-memory.
  virtual std::uint64_t journalSizeBytes() const { return 0; }

  /// Bytes of valid write-ahead log, or 0 when absent/not in WAL mode.
  virtual std::uint64_t walSizeBytes() const { return 0; }

 protected:
  Pager() = default;

  /// Initializes a brand-new database (header page).
  void formatNew();

  /// Returns a writable (exclusively owned) buffer for `id`, journaling the
  /// before-image and copy-on-writing shared buffers. No dirty marking.
  std::uint8_t* writableBuf(PageId id);

  /// Publishes the current working state as the committed page table when it
  /// differs from the last published one. Writer-side only.
  void publishIfChanged();
  void publishCommitted();

  /// The last published table (never null after construction completes).
  std::shared_ptr<const PageTable> committedTable() const;

  std::vector<std::shared_ptr<PageBuf>> pages_;
  std::unordered_set<PageId> dirty_;
  RecoveryStats recovery_stats_;

 private:
  void unpinSnapshot(std::uint64_t seq) const;
  void updateSnapshotAgeLocked() const;
  /// The page table installed by this thread's inner-most SnapshotScope for
  /// this pager, or null when reads should use the working state.
  const PageTable* activeScopeTable() const;

  bool journaling_ = false;
  // Before-images of pages touched during the open transaction. Pages that
  // did not exist at beginJournal() are recorded with a null image.
  std::unordered_map<PageId, std::shared_ptr<PageBuf>> journal_;
  std::uint32_t journal_page_count_ = 0;
  // Pages whose buffer is exclusively owned by the working state (copied or
  // created since the last publish). Everything else may be shared with a
  // published table and must be copied before the first write.
  std::unordered_set<PageId> owned_;

  // Snapshot publication state. snap_mu_ orders publishCommitted() (writer)
  // against beginSnapshot()/unpin (readers); the tables and buffers it hands
  // out are immutable.
  mutable std::mutex snap_mu_;
  std::shared_ptr<const PageTable> committed_;
  std::uint64_t commit_seq_ = 0;
  mutable std::map<std::uint64_t, std::size_t> pinned_;  // seq -> pin count
};

/// Fully in-memory pager (fast path; used for scratch stores and tests).
class MemPager final : public Pager {
 public:
  MemPager() {
    formatNew();
    publishIfChanged();
  }
};

/// File-backed pager. Loads the whole file on open (replaying a stale WAL
/// and rolling back a hot journal first, if present); flush() persists dirty
/// pages according to the durability mode.
class FilePager final : public Pager {
 public:
  /// Opens (or creates) the database file at `path`. All disk operations go
  /// through `vfs` (default: the real filesystem), which is how the crash
  /// tests inject faults. `wal_autocheckpoint` is the WAL auto-checkpoint
  /// threshold in frames (0 disables automatic checkpoints).
  explicit FilePager(std::string path, Durability durability = Durability::Full,
                     Vfs* vfs = nullptr,
                     std::uint32_t wal_autocheckpoint = kDefaultWalAutoCheckpoint);
  ~FilePager() override;

  void flush() override;
  std::uint64_t flushAsync() override;
  void waitDurable(std::uint64_t lsn) override;
  void checkpoint() override;

  std::uint64_t fileSizeBytes() const override;
  std::uint64_t journalSizeBytes() const override;
  std::uint64_t walSizeBytes() const override;

  const std::string& path() const { return path_; }
  Durability durability() const override { return durability_; }

  /// Number of frames currently in the WAL (0 after a checkpoint).
  std::uint32_t walFrameCount() const {
    return wal_frames_.load(std::memory_order_relaxed);
  }

  /// Sidecar rollback-journal path for a database file.
  static std::string journalPathFor(const std::string& db_path) {
    return db_path + ".journal";
  }

  /// Sidecar write-ahead-log path for a database file.
  static std::string walPathFor(const std::string& db_path) {
    return db_path + ".wal";
  }

 private:
  void loadFromDisk();
  /// Rolls a hot (valid, non-empty) journal back into the db file; discards
  /// torn or empty journals. Updates recovery_stats_.
  void recoverHotJournal();
  /// Replays every complete committed transaction from a leftover WAL into
  /// the db file, discards the torn tail, and removes the WAL. Updates
  /// recovery_stats_.
  void recoverWal();
  void flushDurable();
  void flushInPlace();
  /// WAL commit: appends dirty pages as frames and publishes the new page
  /// table. Returns the commit's LSN (0 if nothing to commit). When `defer`
  /// is false the WAL is fsynced before returning.
  std::uint64_t flushWal(bool defer);
  /// Group-commit fsync: makes every commit up to `lsn` durable, batching
  /// concurrent callers behind a leader.
  void syncWalTo(std::uint64_t lsn);
  void checkpointWal();
  void ensureWalOpen();

  std::string path_;
  std::string journal_path_;
  std::string wal_path_;
  Durability durability_;
  Vfs* vfs_;
  std::unique_ptr<VfsFile> file_;

  // WAL append state. Mutated only on the writer side (commits and
  // checkpoints are serialized by the caller); wal_end_/wal_frames_ are
  // atomics because stat/metrics paths read them from other threads.
  std::unique_ptr<VfsFile> wal_;
  std::atomic<std::uint64_t> wal_end_{0};  // bytes of valid WAL (0 = no header yet)
  std::uint64_t wal_chain_ = 0;            // checksum of the last valid frame
  std::uint64_t wal_salt_ = 0;
  std::atomic<std::uint32_t> wal_frames_{0};
  std::uint32_t wal_autocheckpoint_ = kDefaultWalAutoCheckpoint;
  std::unordered_set<PageId> wal_pages_;  // pages with frames in the WAL
  // The last published table whose content is fully covered by WAL frames
  // (updated after every successful append). Checkpoints fold THIS table —
  // never the freshest published one, which between commitJournal() and
  // flush() can be ahead of the log.
  std::shared_ptr<const PageTable> wal_table_;

  // Group-commit state (shared between committing threads).
  std::mutex wal_sync_mu_;
  std::condition_variable wal_sync_cv_;
  std::uint64_t wal_appended_lsn_ = 0;
  std::uint64_t wal_synced_lsn_ = 0;
  bool wal_sync_leader_ = false;
};

}  // namespace perftrack::minidb
