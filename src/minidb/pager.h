// minidb: page management.
//
// A minidb database is an array of fixed-size (8 KiB) pages. Page 0 is the
// header page holding the magic number, logical page count, free-list head,
// and the first page of the catalog heap. The pager provides:
//   * allocation (reusing free-listed pages first),
//   * mutable/const access to page bytes,
//   * page-level undo journaling: between beginJournal() and commitJournal(),
//     the before-image of every touched page is retained so rollbackJournal()
//     can restore the exact pre-transaction state (including the header, and
//     therefore the free list and page count),
//   * durability: FilePager persists dirty pages to a backing file on flush();
//     MemPager keeps everything in memory (the PerfTrack "in-memory backend").
//
// With Durability::Full (the default), flush() is an atomic commit protected
// by an on-disk rollback journal (`<db>.journal`): before-images of every
// page about to be overwritten are written to the journal and fsynced, then
// the pages are written in place and the database fsynced, and only then is
// the journal invalidated (truncated and removed). A crash at any point
// leaves either the new state (journal gone) or enough information to roll
// back to the last committed state; FilePager detects a hot journal on open
// and replays it before loading. Durability::None keeps the legacy
// behavior — in-place rewrite, no journal, no fsync — for scratch stores and
// the durability-ablation benchmarks.
//
// This mirrors the role PostgreSQL/Oracle played for the paper: a real paged
// storage substrate underneath the relational schema.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "minidb/types.h"
#include "minidb/vfs.h"

namespace perftrack::minidb {

/// Raw bytes of one page.
using PageBuf = std::array<std::uint8_t, kPageSize>;

/// On-page layout of the header page (page 0).
struct DbHeader {
  std::uint32_t magic;          // 'PTDB'
  std::uint32_t version;        // format version
  std::uint32_t page_count;     // logical number of pages (including header)
  PageId freelist_head;         // first free page, or kInvalidPage
  PageId catalog_first_page;    // first page of the catalog heap
};

inline constexpr std::uint32_t kDbMagic = 0x50544442;  // "PTDB"
inline constexpr std::uint32_t kDbVersion = 1;

/// On-disk header of the rollback journal (`<db>.journal`). Followed by
/// `page_count` records of {u32 page_id, u8[kPageSize] before-image}.
struct JournalHeader {
  std::uint32_t magic;            // 'PTDJ'
  std::uint32_t version;
  std::uint32_t page_count;       // number of before-image records
  std::uint32_t orig_file_pages;  // db file length (in pages) at journal time
  std::uint64_t checksum;         // FNV-1a 64 over the record bytes
};

inline constexpr std::uint32_t kJournalMagic = 0x5054444A;  // "PTDJ"
inline constexpr std::uint32_t kJournalVersion = 1;

/// Whether flush() runs the journal-protected atomic commit.
enum class Durability {
  None,  // in-place rewrite, no journal, no fsync (fast, crash-unsafe)
  Full,  // rollback journal + fsync ordering; crash leaves last committed state
};

/// What (if anything) happened to a hot journal found at open.
struct RecoveryStats {
  bool recovered = false;        // before-images were rolled back into the db
  std::uint32_t pages_restored = 0;
  bool discarded_invalid_journal = false;  // torn/empty journal: db untouched
};

/// Abstract pager. Not thread-safe; minidb connections are single-threaded,
/// like the paper's per-session database connections.
class Pager {
 public:
  virtual ~Pager() = default;

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Allocates a zeroed page (reusing the free list when possible) and
  /// returns its id. The page is implicitly dirty.
  PageId allocate();

  /// Returns a freed page to the free list.
  void free(PageId id);

  /// Mutable access: records an undo image (if journaling) and marks dirty.
  std::uint8_t* pageForWrite(PageId id);

  /// Read-only access.
  const std::uint8_t* pageForRead(PageId id) const;

  /// Logical page count, including the header page.
  std::uint32_t pageCount() const { return header().page_count; }

  /// Total logical size in bytes (page_count * page size). This is the
  /// number reported as "DB size" in Table 1 reproductions.
  std::uint64_t sizeBytes() const { return std::uint64_t{pageCount()} * kPageSize; }

  DbHeader& headerForWrite();
  const DbHeader& header() const;

  // --- transactions -------------------------------------------------------
  void beginJournal();
  void commitJournal();
  void rollbackJournal();
  bool inTransaction() const { return journaling_; }

  /// Persists dirty pages. No-op for the in-memory backend. When the flush
  /// throws (I/O error or injected fault), no dirty state is forgotten: a
  /// later flush retries the full set against the last committed on-disk
  /// state.
  virtual void flush() {}

  /// Hot-journal recovery outcome of open (all-false for MemPager and for
  /// clean opens).
  const RecoveryStats& recoveryStats() const { return recovery_stats_; }

  /// On-disk database file size in bytes (0 for in-memory backends). May
  /// differ from sizeBytes() until the next flush.
  virtual std::uint64_t fileSizeBytes() const { return 0; }

  /// Size of the sidecar rollback journal, or 0 when absent/in-memory.
  virtual std::uint64_t journalSizeBytes() const { return 0; }

 protected:
  Pager() = default;

  /// Initializes a brand-new database (header page).
  void formatNew();

  std::vector<std::unique_ptr<PageBuf>> pages_;
  std::unordered_set<PageId> dirty_;
  RecoveryStats recovery_stats_;

 private:
  void journalTouch(PageId id);

  bool journaling_ = false;
  // Before-images of pages touched during the open transaction. Pages that
  // did not exist at beginJournal() are recorded with a null image.
  std::unordered_map<PageId, std::unique_ptr<PageBuf>> journal_;
  std::uint32_t journal_page_count_ = 0;
};

/// Fully in-memory pager (fast path; used for scratch stores and tests).
class MemPager final : public Pager {
 public:
  MemPager() { formatNew(); }
};

/// File-backed pager. Loads the whole file on open (rolling back a hot
/// journal first, if one is present); flush() persists dirty pages according
/// to the durability mode.
class FilePager final : public Pager {
 public:
  /// Opens (or creates) the database file at `path`. All disk operations go
  /// through `vfs` (default: the real filesystem), which is how the crash
  /// tests inject faults.
  explicit FilePager(std::string path, Durability durability = Durability::Full,
                     Vfs* vfs = nullptr);
  ~FilePager() override;

  void flush() override;

  std::uint64_t fileSizeBytes() const override;
  std::uint64_t journalSizeBytes() const override;

  const std::string& path() const { return path_; }
  Durability durability() const { return durability_; }

  /// Sidecar rollback-journal path for a database file.
  static std::string journalPathFor(const std::string& db_path) {
    return db_path + ".journal";
  }

 private:
  void loadFromDisk();
  /// Rolls a hot (valid, non-empty) journal back into the db file; discards
  /// torn or empty journals. Updates recovery_stats_.
  void recoverHotJournal();
  void flushDurable();
  void flushInPlace();

  std::string path_;
  std::string journal_path_;
  Durability durability_;
  Vfs* vfs_;
  std::unique_ptr<VfsFile> file_;
};

}  // namespace perftrack::minidb
