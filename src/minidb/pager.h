// minidb: page management.
//
// A minidb database is an array of fixed-size (8 KiB) pages. Page 0 is the
// header page holding the magic number, logical page count, free-list head,
// and the first page of the catalog heap. The pager provides:
//   * allocation (reusing free-listed pages first),
//   * mutable/const access to page bytes,
//   * page-level undo journaling: between beginJournal() and commitJournal(),
//     the before-image of every touched page is retained so rollbackJournal()
//     can restore the exact pre-transaction state (including the header, and
//     therefore the free list and page count),
//   * durability: FilePager persists dirty pages to a backing file on flush();
//     MemPager keeps everything in memory (the PerfTrack "in-memory backend").
//
// This mirrors the role PostgreSQL/Oracle played for the paper: a real paged
// storage substrate underneath the relational schema.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "minidb/types.h"

namespace perftrack::minidb {

/// Raw bytes of one page.
using PageBuf = std::array<std::uint8_t, kPageSize>;

/// On-page layout of the header page (page 0).
struct DbHeader {
  std::uint32_t magic;          // 'PTDB'
  std::uint32_t version;        // format version
  std::uint32_t page_count;     // logical number of pages (including header)
  PageId freelist_head;         // first free page, or kInvalidPage
  PageId catalog_first_page;    // first page of the catalog heap
};

inline constexpr std::uint32_t kDbMagic = 0x50544442;  // "PTDB"
inline constexpr std::uint32_t kDbVersion = 1;

/// Abstract pager. Not thread-safe; minidb connections are single-threaded,
/// like the paper's per-session database connections.
class Pager {
 public:
  virtual ~Pager() = default;

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Allocates a zeroed page (reusing the free list when possible) and
  /// returns its id. The page is implicitly dirty.
  PageId allocate();

  /// Returns a freed page to the free list.
  void free(PageId id);

  /// Mutable access: records an undo image (if journaling) and marks dirty.
  std::uint8_t* pageForWrite(PageId id);

  /// Read-only access.
  const std::uint8_t* pageForRead(PageId id) const;

  /// Logical page count, including the header page.
  std::uint32_t pageCount() const { return header().page_count; }

  /// Total logical size in bytes (page_count * page size). This is the
  /// number reported as "DB size" in Table 1 reproductions.
  std::uint64_t sizeBytes() const { return std::uint64_t{pageCount()} * kPageSize; }

  DbHeader& headerForWrite();
  const DbHeader& header() const;

  // --- transactions -------------------------------------------------------
  void beginJournal();
  void commitJournal();
  void rollbackJournal();
  bool inTransaction() const { return journaling_; }

  /// Persists dirty pages. No-op for the in-memory backend.
  virtual void flush() {}

 protected:
  Pager() = default;

  /// Initializes a brand-new database (header page).
  void formatNew();

  std::vector<std::unique_ptr<PageBuf>> pages_;
  std::unordered_set<PageId> dirty_;

 private:
  void journalTouch(PageId id);

  bool journaling_ = false;
  // Before-images of pages touched during the open transaction. Pages that
  // did not exist at beginJournal() are recorded with a null image.
  std::unordered_map<PageId, std::unique_ptr<PageBuf>> journal_;
  std::uint32_t journal_page_count_ = 0;
};

/// Fully in-memory pager (fast path; used for scratch stores and tests).
class MemPager final : public Pager {
 public:
  MemPager() { formatNew(); }
};

/// File-backed pager. Loads the whole file on open; flush() rewrites dirty
/// pages in place (and extends the file as needed).
class FilePager final : public Pager {
 public:
  /// Opens (or creates) the database file at `path`.
  explicit FilePager(std::string path);
  ~FilePager() override;

  void flush() override;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace perftrack::minidb
