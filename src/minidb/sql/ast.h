// minidb SQL front-end: abstract syntax tree.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "minidb/value.h"

namespace perftrack::minidb::sql {

// --- expressions -----------------------------------------------------------

enum class BinaryOp {
  Eq, Ne, Lt, Le, Gt, Ge,  // comparisons
  And, Or,                 // logical
  Add, Sub, Mul, Div,      // arithmetic
};

enum class AggFunc { Count, Sum, Avg, Min, Max };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;
struct SelectStmt;

struct Expr {
  enum class Kind {
    Literal,     // value
    Param,       // '?' positional parameter (value filled in by bind())
    Column,      // [table_alias.]column
    Binary,      // lhs op rhs
    Not,         // NOT lhs
    IsNull,      // lhs IS [NOT] NULL (negated flag)
    Like,        // lhs LIKE pattern (pattern in `value`)
    InList,      // lhs IN (list)
    InSelect,    // lhs IN (SELECT ...) — uncorrelated subquery
    Aggregate,   // agg(lhs), or COUNT(*) with lhs == nullptr
  };

  Kind kind = Kind::Literal;
  Value value;                 // Literal / Like pattern / bound Param value
  std::string table;           // Column: optional qualifier
  std::string column;          // Column
  BinaryOp op = BinaryOp::Eq;  // Binary
  bool negated = false;        // IsNull / InList / Like
  int param_index = -1;        // Param: 0-based position within the statement
  AggFunc agg = AggFunc::Count;
  bool agg_distinct = false;
  ExprPtr lhs;
  ExprPtr rhs;
  std::vector<ExprPtr> list;   // InList
  std::unique_ptr<SelectStmt> subquery;  // InSelect

  // Binding annotations filled in by the executor's resolve pass.
  int bound_table = -1;  // Column: index into the FROM list
  int bound_col = -1;    // Column: ordinal within that table
  int agg_slot = -1;     // Aggregate: accumulator slot within a group
  // InSelect: the subquery's materialized first-column values (encoded for
  // order-insensitive membership), filled by the executor before evaluation.
  std::shared_ptr<std::set<std::string>> subquery_values;

  // --- convenience constructors ---
  static ExprPtr literal(Value v);
  static ExprPtr columnRef(std::string table, std::string column);
  static ExprPtr binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
};

// --- statements --------------------------------------------------------------

struct SelectItem {
  ExprPtr expr;        // null means '*'
  std::string alias;   // output column name ("" = derive from expr)
};

struct TableRef {
  std::string table;
  std::string alias;   // defaults to table name
  ExprPtr join_on;     // null for the first table
  bool left_join = false;  // LEFT [OUTER] JOIN: null-extend on no match
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<std::int64_t> limit;
  std::optional<std::int64_t> offset;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;      // empty = all, in declaration order
  std::vector<std::vector<ExprPtr>> rows;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

struct CreateTableStmt {
  std::string table;
  bool if_not_exists = false;
  std::vector<std::pair<std::string, ColumnType>> columns;
  int primary_key = -1;
};

struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::vector<std::string> columns;
  bool unique = false;
  bool if_not_exists = false;
};

struct DropStmt {
  enum class What { Table, Index } what = What::Table;
  std::string name;
  bool if_exists = false;
};

struct TxnStmt {
  enum class Kind { Begin, Commit, Rollback } kind = Kind::Begin;
};

struct VacuumStmt {};  // VACUUM: rewrite heaps/indexes, reclaim dead space

struct Statement {
  enum class Kind {
    Select, Insert, Update, Delete, CreateTable, CreateIndex, Drop, Txn, Vacuum,
  };
  Kind kind = Kind::Select;
  bool explain = false;          // EXPLAIN prefix: emit the plan instead of rows
  bool explain_analyze = false;  // EXPLAIN ANALYZE: run, then emit annotated plan
  int param_count = 0;           // number of '?' placeholders across the statement

  // Exactly one of these is populated, matching `kind`.
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<DropStmt> drop;
  std::unique_ptr<TxnStmt> txn;
  std::unique_ptr<VacuumStmt> vacuum;
};

}  // namespace perftrack::minidb::sql
