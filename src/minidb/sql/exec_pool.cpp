#include "minidb/sql/exec_pool.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace perftrack::minidb::sql {

namespace {

obs::Gauge& poolThreadsGauge() {
  static obs::Gauge* g = &obs::Registry::global().gauge("pt_exec_pool_threads");
  return *g;
}

}  // namespace

ExecPool& ExecPool::shared() {
  // Leaked on purpose: detached workers block on this object's cv forever,
  // so it must outlive static destruction.
  static ExecPool* pool = new ExecPool();
  return *pool;
}

std::size_t ExecPool::threadCount() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return thread_count_;
}

void ExecPool::ensureThreadsLocked(std::size_t want) {
  want = std::min(want, kMaxThreads);
  while (thread_count_ < want) {
    std::thread([this] { workerMain(); }).detach();
    ++thread_count_;
  }
  poolThreadsGauge().set(static_cast<std::int64_t>(thread_count_));
}

void ExecPool::runOneSlot(const JobPtr& job, std::unique_lock<std::mutex>& lock,
                          const std::function<void(std::size_t)>& fn) {
  const std::size_t slot = job->next_slot++;
  ++job->active;
  if (job->next_slot >= job->end_slot) {
    // Fully claimed: drop it from the queue so workers move on.
    auto it = std::find(queue_.begin(), queue_.end(), job);
    if (it != queue_.end()) queue_.erase(it);
  }
  lock.unlock();
  std::exception_ptr error;
  try {
    fn(slot);
  } catch (...) {
    error = std::current_exception();
  }
  lock.lock();
  if (error && !job->error) job->error = error;
  --job->active;
  if (job->finished()) done_cv_.notify_all();
}

void ExecPool::workerMain() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return !queue_.empty(); });
    JobPtr job = queue_.front();
    runOneSlot(job, lock, *job->fn);
  }
}

ExecPool::RunStats ExecPool::run(std::size_t extra,
                                 const std::function<void(std::size_t)>& fn) {
  RunStats stats;
  if (extra == 0) {
    fn(0);
    return stats;
  }
  stats.workers = extra;
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->next_slot = 1;
  job->end_slot = extra + 1;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ensureThreadsLocked(extra);
    queue_.push_back(job);
  }
  work_cv_.notify_all();

  std::exception_ptr caller_error;
  try {
    fn(0);
  } catch (...) {
    caller_error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mu_);
  // Steal any of our own slots the pool has not picked up yet (it may be
  // busy with other sessions' jobs); guarantees progress even when the pool
  // is saturated.
  while (job->next_slot < job->end_slot) runOneSlot(job, lock, fn);
  const auto wait_start = std::chrono::steady_clock::now();
  done_cv_.wait(lock, [&] { return job->finished(); });
  stats.wait_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wait_start)
          .count());
  std::exception_ptr error = caller_error ? caller_error : job->error;
  lock.unlock();
  if (error) std::rethrow_exception(error);
  return stats;
}

}  // namespace perftrack::minidb::sql
