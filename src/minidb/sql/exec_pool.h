// minidb SQL execution: the shared worker pool behind morsel-driven
// parallelism.
//
// One process-wide pool serves every Engine (and therefore every ptserverd
// session): a parallel query borrows pool threads for the duration of one
// Gather, so N concurrent sessions share the same fixed set of workers
// instead of oversubscribing the machine with N pools. The pool grows on
// demand up to kMaxThreads and never shrinks; threads are detached and block
// on the (intentionally leaked) pool singleton, so process exit is safe at
// any point.
//
// run(extra, fn) executes fn(slot) for slots 1..extra on pool threads while
// the calling thread runs fn(0) — the caller always participates, so a
// saturated pool degrades to serial execution instead of deadlocking. After
// finishing slot 0 the caller steals any of its own still-unclaimed slots,
// then waits for stragglers; the time spent purely waiting is reported back
// (the Gather barrier cost, exported as pt_exec_gather_wait_ms).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace perftrack::minidb::sql {

class ExecPool {
 public:
  /// Hard ceiling on pool threads (beyond any sane PT_EXEC_THREADS value).
  static constexpr std::size_t kMaxThreads = 64;

  /// The process-wide pool. Never destroyed (see file comment).
  static ExecPool& shared();

  struct RunStats {
    std::uint64_t wait_ns = 0;  // caller barrier wait after its own share
    std::size_t workers = 0;    // pool slots requested (excludes the caller)
  };

  /// Runs fn(slot) for slot = 1..extra on pool threads while the caller runs
  /// fn(0), then waits for every slot to finish. The first exception thrown
  /// by any slot (including the caller's) is rethrown here after the
  /// barrier. extra == 0 degenerates to a plain fn(0) call.
  RunStats run(std::size_t extra, const std::function<void(std::size_t)>& fn);

  /// Current number of spawned pool threads (gauge pt_exec_pool_threads).
  std::size_t threadCount() const;

 private:
  ExecPool() = default;

  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t next_slot = 0;  // next slot to hand out
    std::size_t end_slot = 0;   // one past the last slot
    std::size_t active = 0;     // slots currently running
    std::exception_ptr error;   // first failure among all slots
    bool finished() const { return next_slot >= end_slot && active == 0; }
  };
  using JobPtr = std::shared_ptr<Job>;

  void ensureThreadsLocked(std::size_t want);
  void workerMain();
  /// Claims and runs one slot of `job`. Called with mu_ held; unlocks while
  /// running, relocks before returning.
  void runOneSlot(const JobPtr& job, std::unique_lock<std::mutex>& lock,
                  const std::function<void(std::size_t)>& fn);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // wakes idle pool threads
  std::condition_variable done_cv_;  // wakes callers waiting at a barrier
  std::deque<JobPtr> queue_;         // jobs with unclaimed slots
  std::size_t thread_count_ = 0;
};

}  // namespace perftrack::minidb::sql
