#include "minidb/sql/executor.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <utility>

#include "minidb/sql/exec_pool.h"

#include "minidb/sql/lexer.h"
#include "minidb/sql/parser.h"
#include "minidb/sql/pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace perftrack::minidb::sql {

using util::SqlError;

namespace {

/// SQL-layer counters, resolved once (hot path is a relaxed atomic add).
struct SqlCounters {
  obs::Counter& queries;
  obs::Counter& rows_streamed;
  obs::Counter& plan_revalidations;
  obs::Histogram& query_ms;
};

SqlCounters& sqlCounters() {
  auto& reg = obs::Registry::global();
  static SqlCounters* c = new SqlCounters{
      reg.counter("pt_sql_queries_total"),
      reg.counter("pt_sql_rows_streamed_total"),
      reg.counter("pt_plan_revalidations_total"),
      reg.histogram("pt_sql_query_ms"),
  };
  return *c;
}

/// Approximate wire size of one value (matches the server's framing costs
/// closely enough for the bytes-streamed span).
std::uint64_t approxValueBytes(const Value& v) {
  if (v.isNull()) return 1;
  if (v.isText()) return 5 + v.asText().size();
  return 9;  // tag + 8-byte int/real payload
}

std::uint64_t approxRowBytes(const Row& row) {
  std::uint64_t n = 0;
  for (const Value& v : row) n += approxValueBytes(v);
  return n;
}

}  // namespace

int defaultExecThreads() {
  static const int resolved = [] {
    if (const char* env = std::getenv("PT_EXEC_THREADS")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n >= 1) {
        return static_cast<int>(
            std::min<long>(n, static_cast<long>(ExecPool::kMaxThreads) + 1));
      }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }();
  return resolved;
}

std::size_t defaultParallelMinPages() {
  static const std::size_t resolved = [] {
    if (const char* env = std::getenv("PT_EXEC_MIN_PAGES")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n >= 0) return static_cast<std::size_t>(n);
    }
    return std::size_t{16};
  }();
  return resolved;
}

std::size_t defaultExecBatchRows() {
  static const std::size_t resolved = [] {
    if (const char* env = std::getenv("PT_EXEC_BATCH_ROWS")) {
      char* end = nullptr;
      const long n = std::strtol(env, &end, 10);
      if (end != env && n >= 1) {
        return std::min(static_cast<std::size_t>(n), kMaxExecBatchRows);
      }
    }
    return std::size_t{1024};
  }();
  return resolved;
}

bool defaultInvidxEnabled() {
  static const bool resolved = [] {
    if (const char* env = std::getenv("PT_INVIDX")) {
      const std::string v(env);
      if (v == "0" || v == "off" || v == "false") return false;
    }
    return true;
  }();
  return resolved;
}

void Engine::setExecBatchRows(std::size_t n) {
  if (n == 0 || n > kMaxExecBatchRows) {
    throw SqlError("setExecBatchRows: batch size must be in [1, " +
                   std::to_string(kMaxExecBatchRows) + "]");
  }
  exec_batch_rows_ = n;
}

// ---------------------------------------------------------------------------
// ResultSet rendering
// ---------------------------------------------------------------------------

std::string ResultSet::toText() const {
  std::vector<std::size_t> widths(columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows.size());
  for (const Row& row : rows) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::string text = row[c].isNull() ? "NULL" : row[c].toDisplayString();
      if (c < widths.size()) widths[c] = std::max(widths[c], text.size());
      line.push_back(std::move(text));
    }
    cells.push_back(std::move(line));
  }
  std::ostringstream out;
  auto rule = [&] {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      out << '+' << std::string(widths[c] + 2, '-');
    }
    out << "+\n";
  };
  rule();
  for (std::size_t c = 0; c < columns.size(); ++c) {
    out << "| " << columns[c] << std::string(widths[c] - columns[c].size() + 1, ' ');
  }
  out << "|\n";
  rule();
  for (const auto& line : cells) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const std::string& text = c < line.size() ? line[c] : "";
      out << "| " << text << std::string(widths[c] - text.size() + 1, ' ');
    }
    out << "|\n";
  }
  rule();
  return out.str();
}

// ---------------------------------------------------------------------------
// Cursor
// ---------------------------------------------------------------------------

/// Shared state of one open cursor. Owns (shares) the parsed statement and
/// plan so the cursor survives its PreparedStatement and cache eviction;
/// holds the Database::CursorPin that blocks DDL/VACUUM/DML while open.
struct CursorImpl {
  Database* db = nullptr;
  std::shared_ptr<Statement> stmt;   // keeps the AST the plan points into alive
  std::shared_ptr<SelectPlan> plan;
  Pipeline pipeline;
  std::vector<std::string> columns;
  // EXPLAIN cursors step over precomputed plan lines; no storage is touched
  // and no pin is held.
  std::vector<Row> explain_rows;
  std::size_t explain_pos = 0;
  bool is_explain = false;
  bool open = false;
  std::uint64_t epoch = 0;
  Database::CursorPin pin;
  // Pinned committed version for snapshot cursors (WAL-mode readers). When
  // valid, every pipeline step runs under a SnapshotScope for it, so the
  // cursor streams one frozen version regardless of concurrent commits.
  Pager::ReadSnapshot snap;
  std::shared_ptr<char> busy_token;  // shared with the owning PreparedStatement
  // Query-span tracing (only when the tracer sampled this open). exec_us is
  // wall time from open to close, covering the whole streamed drain.
  bool traced = false;
  obs::QueryTrace trace;
  obs::StageTimer exec_timer;
  std::size_t batch_rows = 1024;  // engine's execBatchRows() at open time

  ~CursorImpl() { closeImpl(); }

  bool nextRow(Row& row) {
    if (!open) return false;
    if (is_explain) {
      if (explain_pos >= explain_rows.size()) {
        closeImpl();
        return false;
      }
      row = std::move(explain_rows[explain_pos++]);
      countRow(row);
      return true;
    }
    // The pin makes schema changes impossible while open; this guards the
    // invariant itself rather than any expected path. Snapshot cursors skip
    // it: their data is frozen and a concurrent DML rollback (which bumps
    // the epoch without moving the catalog) must not kill them.
    if (!snap.valid() && db->schemaEpoch() != epoch) {
      closeImpl();
      throw SqlError("cursor: schema changed while cursor was open");
    }
    std::optional<Pager::SnapshotScope> scope;
    if (snap.valid()) scope.emplace(snap);
    if (!pipeline.root->next(row, scratch_keys_)) {
      closeImpl();
      return false;
    }
    countRow(row);
    return true;
  }

  bool fetchBatch(RowBatch& batch) {
    if (!open) return false;
    if (is_explain) {
      // EXPLAIN cursors step precomputed text lines; batch them trivially.
      batch.reset(1, 0);
      const std::size_t cap =
          batch.capacity > 0 ? batch.capacity : explain_rows.size();
      while (batch.nrows < cap && explain_pos < explain_rows.size()) {
        Row& row = explain_rows[explain_pos++];
        countRow(row);
        batch.appendMoveValues(row);
      }
      if (batch.nrows == 0) {
        closeImpl();
        return false;
      }
      return true;
    }
    if (!snap.valid() && db->schemaEpoch() != epoch) {
      closeImpl();
      throw SqlError("cursor: schema changed while cursor was open");
    }
    std::optional<Pager::SnapshotScope> scope;
    if (snap.valid()) scope.emplace(snap);
    if (batch.capacity == 0) batch.capacity = batch_rows;
    if (!pipeline.root->nextBatch(batch)) {
      closeImpl();
      return false;
    }
    countBatch(batch);
    return true;
  }

  void countRow(const Row& row) {
    if (!traced) return;
    ++trace.rows;
    trace.bytes += approxRowBytes(row);
  }

  void countBatch(const RowBatch& batch) {
    if (!traced) return;
    trace.rows += batch.sel.size();
    for (const std::uint32_t i : batch.sel) {
      for (const auto& c : batch.cols) trace.bytes += approxValueBytes(c[i]);
    }
  }

  void closeImpl() {
    if (open && traced) {
      trace.exec_us = exec_timer.elapsedUs();
      sqlCounters().rows_streamed.inc(trace.rows);
      sqlCounters().query_ms.observe(static_cast<double>(trace.totalUs()) / 1000.0);
      obs::Tracer::global().record(std::move(trace));
      traced = false;
    }
    if (open && pipeline.root) {
      std::optional<Pager::SnapshotScope> scope;
      if (snap.valid()) scope.emplace(snap);
      pipeline.root->close();
    }
    open = false;
    pin.release();
    snap.release();
    if (busy_token) {
      *busy_token = 0;
      busy_token.reset();
    }
  }

 private:
  std::vector<Value> scratch_keys_;  // ORDER BY keys plumbing (unused at root)
};

Cursor::Cursor(std::shared_ptr<CursorImpl> impl) : impl_(std::move(impl)) {}
Cursor::Cursor(Cursor&& o) noexcept = default;
Cursor& Cursor::operator=(Cursor&& o) noexcept = default;
Cursor::~Cursor() = default;

const std::vector<std::string>& Cursor::columns() const { return impl_->columns; }

bool Cursor::next(Row& row) { return impl_->nextRow(row); }

bool Cursor::fetchBatch(RowBatch& batch) { return impl_->fetchBatch(batch); }

void Cursor::close() {
  if (impl_) impl_->closeImpl();
}

bool Cursor::isOpen() const { return impl_ && impl_->open; }

// ---------------------------------------------------------------------------
// PreparedStatement
// ---------------------------------------------------------------------------

PreparedStatement::PreparedStatement(Engine& engine, std::string sql)
    : engine_(&engine), sql_(std::move(sql)) {
  if (obs::enabled()) {
    const obs::StageTimer t;
    stmt_ = std::make_shared<Statement>(parseStatement(sql_));
    parse_us_ = t.elapsedUs();
  } else {
    stmt_ = std::make_shared<Statement>(parseStatement(sql_));
  }
  params_.resize(static_cast<std::size_t>(stmt_->param_count));
  bound_.assign(static_cast<std::size_t>(stmt_->param_count), 0);
}

void PreparedStatement::bind(int index, Value v) {
  if (index < 1 || index > paramCount()) {
    throw SqlError("bind: parameter index " + std::to_string(index) +
                   " out of range (statement has " + std::to_string(paramCount()) +
                   " parameters)");
  }
  params_[static_cast<std::size_t>(index - 1)] = std::move(v);
  bound_[static_cast<std::size_t>(index - 1)] = 1;
}

void PreparedStatement::bindAll(std::vector<Value> params) {
  if (static_cast<int>(params.size()) != paramCount()) {
    throw SqlError("bindAll: statement has " + std::to_string(paramCount()) +
                   " parameters, got " + std::to_string(params.size()));
  }
  params_ = std::move(params);
  bound_.assign(params_.size(), 1);
}

void PreparedStatement::clearBindings() {
  params_.assign(params_.size(), Value::null());
  bound_.assign(bound_.size(), 0);
}

bool PreparedStatement::hasOpenCursor() const {
  return busy_token_ != nullptr && *busy_token_ != 0;
}

Cursor PreparedStatement::openCursor() {
  return openCursorInternal(Pager::ReadSnapshot());
}

Cursor PreparedStatement::openCursor(Pager::ReadSnapshot snapshot) {
  return openCursorInternal(std::move(snapshot));
}

Cursor PreparedStatement::openCursorInternal(Pager::ReadSnapshot snapshot) {
  for (std::size_t i = 0; i < bound_.size(); ++i) {
    if (!bound_[i]) {
      throw SqlError("openCursor: parameter " + std::to_string(i + 1) +
                     " is unbound");
    }
  }
  if (stmt_->kind != Statement::Kind::Select) {
    throw SqlError("openCursor: statement is not a SELECT");
  }
  // One cursor per statement: the bindings live in the shared AST, so a
  // second cursor would silently corrupt the first one's parameters.
  if (hasOpenCursor()) {
    throw SqlError("a cursor is already open on this prepared statement");
  }
  // Snapshot cursors plan, open, and pin under the snapshot's scope: page
  // statistics come from the frozen version, and the pin registers as a
  // snapshot cursor (DML may run underneath it).
  std::optional<Pager::SnapshotScope> snap_scope;
  if (snapshot.valid()) snap_scope.emplace(snapshot);
  const bool traced = obs::Tracer::global().shouldSample();
  std::uint64_t bind_us = 0;
  std::uint64_t plan_us = 0;
  if (stmt_->param_count > 0) {
    if (traced) {
      const obs::StageTimer t;
      bindParamValues(*stmt_, params_);
      bind_us = t.elapsedUs();
    } else {
      bindParamValues(*stmt_, params_);
    }
  }
  Database& db = *engine_->db_;
  if (!plan_ || plan_->epoch != db.schemaEpoch() ||
      plan_->use_indexes != engine_->use_indexes_ ||
      plan_->invidx != engine_->invidx()) {
    if (plan_) sqlCounters().plan_revalidations.inc();
    if (traced) {
      const obs::StageTimer t;
      plan_ = std::make_shared<SelectPlan>(buildSelectPlan(
          db, *stmt_->select, engine_->use_indexes_, engine_->invidx()));
      plan_us = t.elapsedUs();
    } else {
      plan_ = std::make_shared<SelectPlan>(buildSelectPlan(
          db, *stmt_->select, engine_->use_indexes_, engine_->invidx()));
    }
  }
  sqlCounters().queries.inc();
  auto impl = std::make_shared<CursorImpl>();
  impl->db = &db;
  impl->stmt = stmt_;
  impl->plan = plan_;
  impl->epoch = plan_->epoch;
  impl->busy_token = std::make_shared<char>(1);
  busy_token_ = impl->busy_token;
  if (traced) {
    impl->traced = true;
    impl->trace.sql = sql_;
    impl->trace.parse_us = std::exchange(parse_us_, 0);
    impl->trace.plan_us = plan_us;
    impl->trace.bind_us = bind_us;
  }
  impl->batch_rows = engine_->execBatchRows();
  const ExecOptions exec_opts{engine_->execThreads(), engine_->parallelMinPages(),
                              engine_->execBatchRows(), engine_->invidx()};
  if (stmt_->explain) {
    impl->is_explain = true;
    impl->columns = {"plan"};
    std::vector<std::string> lines;
    if (stmt_->explain_analyze) {
      // EXPLAIN ANALYZE: run the statement to exhaustion with per-operator
      // accounting armed, then step the annotated tree lines. The run holds
      // a scoped pin; the resulting cursor is text-only and pin-free, so it
      // is safe to stream over the wire like plain EXPLAIN.
      materializePlanSubqueries(db, *plan_);
      Pipeline p = buildPipeline(db, *plan_, exec_opts);
      p.root->setAnalyze(true);
      {
        const Database::CursorPin run_pin = db.pinCursor();
        p.root->open();
        RowBatch batch;
        batch.capacity = exec_opts.batch_rows;
        while (p.root->nextBatch(batch)) {
        }
        p.root->close();
      }
      p.root->describe(lines, 0);
    } else {
      lines = explainPipeline(db, *plan_, exec_opts);
    }
    for (std::string& line : lines) {
      impl->explain_rows.push_back({Value(std::move(line))});
    }
  } else {
    // Subqueries run before the pin is taken (they open their own scans).
    materializePlanSubqueries(db, *plan_);
    impl->pipeline = buildPipeline(db, *plan_, exec_opts);
    impl->columns = impl->pipeline.columns;
    impl->pin = db.pinCursor();
    impl->pipeline.root->open();
  }
  impl->snap = std::move(snapshot);
  if (traced) impl->exec_timer = obs::StageTimer();
  impl->open = true;
  return Cursor(std::move(impl));
}

ResultSet PreparedStatement::execute() {
  for (std::size_t i = 0; i < bound_.size(); ++i) {
    if (!bound_[i]) {
      throw SqlError("execute: parameter " + std::to_string(i + 1) + " is unbound");
    }
  }
  if (stmt_->kind == Statement::Kind::Select) {
    // The materializing wrapper: open a cursor and drain it batch-at-a-time.
    Cursor cur = openCursor();
    ResultSet rs;
    rs.columns = cur.columns();
    RowBatch batch;
    Row row;
    while (cur.fetchBatch(batch)) {
      for (const std::uint32_t i : batch.sel) {
        batch.takeRow(i, row);
        rs.rows.push_back(std::move(row));
        row = {};
      }
    }
    return rs;
  }
  sqlCounters().queries.inc();
  if (!obs::Tracer::global().shouldSample()) {
    if (stmt_->param_count > 0) bindParamValues(*stmt_, params_);
    return engine_->exec(*stmt_);
  }
  obs::QueryTrace t;
  t.sql = sql_;
  t.parse_us = std::exchange(parse_us_, 0);
  if (stmt_->param_count > 0) {
    const obs::StageTimer bt;
    bindParamValues(*stmt_, params_);
    t.bind_us = bt.elapsedUs();
  }
  const obs::StageTimer et;
  ResultSet rs = engine_->exec(*stmt_);
  t.exec_us = et.elapsedUs();
  t.rows = static_cast<std::uint64_t>(rs.rows_affected);
  sqlCounters().query_ms.observe(static_cast<double>(t.totalUs()) / 1000.0);
  obs::Tracer::global().record(std::move(t));
  return rs;
}

ResultSet PreparedStatement::execute(std::vector<Value> params) {
  bindAll(std::move(params));
  return execute();
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

PreparedStatement Engine::prepare(std::string_view sql) {
  return PreparedStatement(*this, std::string(sql));
}

ResultSet Engine::exec(std::string_view sqltext) {
  const Statement stmt = parseStatement(sqltext);
  if (stmt.param_count > 0) {
    throw SqlError("statement has " + std::to_string(stmt.param_count) +
                   " unbound '?' parameters; use prepare()/execPrepared()");
  }
  return exec(stmt);
}

Cursor Engine::openCursor(std::string_view sql) {
  PreparedStatement stmt = prepare(sql);
  if (stmt.paramCount() > 0) {
    throw SqlError("openCursor: statement has " +
                   std::to_string(stmt.paramCount()) +
                   " unbound '?' parameters; use prepare()");
  }
  // The cursor shares the statement and plan, so it outlives `stmt`.
  return stmt.openCursor();
}

ResultSet Engine::execScript(std::string_view script) {
  // Split on top-level ';' — the lexer already understands quoting and
  // comments, so tokenize once and re-slice the source by the separators.
  ResultSet last;
  std::size_t start = 0;
  std::size_t i = 0;
  const std::size_t n = script.size();
  bool saw_statement = false;
  auto runSlice = [&](std::size_t begin, std::size_t end) {
    std::string_view piece = script.substr(begin, end - begin);
    // Skip slices that are only whitespace/comments.
    const auto tokens = tokenize(piece);
    if (tokens.size() <= 1) return;
    last = exec(piece);
    saw_statement = true;
  };
  while (i < n) {
    const char c = script[i];
    if (c == '\'') {
      ++i;
      while (i < n && !(script[i] == '\'' && (i + 1 >= n || script[i + 1] != '\''))) {
        i += script[i] == '\'' ? 2 : 1;  // skip escaped ''
      }
      ++i;
    } else if (c == '"') {
      ++i;
      while (i < n && script[i] != '"') ++i;
      ++i;
    } else if (c == '-' && i + 1 < n && script[i + 1] == '-') {
      while (i < n && script[i] != '\n') ++i;
    } else if (c == ';') {
      runSlice(start, i);
      ++i;
      start = i;
    } else {
      ++i;
    }
  }
  runSlice(start, n);
  if (!saw_statement) throw SqlError("execScript: no statements in script");
  return last;
}

ResultSet Engine::exec(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::Select:
      return execSelect(*db_, *stmt.select, use_indexes_, stmt.explain,
                        stmt.explain_analyze,
                        ExecOptions{execThreads(), parallelMinPages(),
                                    execBatchRows(), invidx()});

    case Statement::Kind::Insert: {
      const InsertStmt& ins = *stmt.insert;
      const TableDef* def = db_->catalog().findTable(ins.table);
      if (def == nullptr) throw SqlError("no such table: " + ins.table);
      std::vector<int> target_cols;
      if (ins.columns.empty()) {
        for (std::size_t c = 0; c < def->columns.size(); ++c) {
          target_cols.push_back(static_cast<int>(c));
        }
      } else {
        for (const std::string& name : ins.columns) {
          const int c = def->columnIndex(name);
          if (c < 0) throw SqlError("no column '" + name + "' in " + ins.table);
          target_cols.push_back(c);
        }
      }
      ResultSet rs;
      for (const auto& exprs : ins.rows) {
        if (exprs.size() != target_cols.size()) {
          throw SqlError("INSERT value count does not match column count");
        }
        Row row(def->columns.size());  // unspecified columns default to NULL
        for (std::size_t i = 0; i < exprs.size(); ++i) {
          row[target_cols[i]] = evalConst(*exprs[i]);
        }
        rs.last_insert_id = db_->insertRow(def->name, std::move(row));
        rs.rows_affected++;
      }
      return rs;
    }

    case Statement::Kind::Update: {
      const UpdateStmt& upd = *stmt.update;
      const TableDef* def = db_->catalog().findTable(upd.table);
      if (def == nullptr) throw SqlError("no such table: " + upd.table);
      std::vector<SelectPlan::FromEntry> from{{def, def->name}};
      Binder binder(from);
      if (upd.where) {
        binder.bind(*const_cast<Expr*>(upd.where.get()));
        materializeSubqueries(const_cast<Expr*>(upd.where.get()), *db_, use_indexes_);
      }
      std::vector<std::pair<int, const Expr*>> assigns;
      for (const auto& [name, expr] : upd.assignments) {
        const int c = def->columnIndex(name);
        if (c < 0) throw SqlError("no column '" + name + "' in " + upd.table);
        binder.bind(*const_cast<Expr*>(expr.get()));
        assigns.emplace_back(c, expr.get());
      }
      // Collect matches first, then mutate (index/heap iterators must not
      // observe our own writes).
      std::vector<std::pair<RecordId, Row>> matches;
      db_->scan(def->name, [&](RecordId rid, const Row& row) {
        Tuple tuple{&row};
        if (!upd.where || truthy(evaluate(*upd.where, tuple))) {
          matches.emplace_back(rid, row);
        }
        return true;
      });
      ResultSet rs;
      for (auto& [rid, row] : matches) {
        Row updated = row;
        Tuple tuple{&row};
        for (const auto& [c, expr] : assigns) {
          updated[c] = evaluate(*expr, tuple);
        }
        db_->updateRow(def->name, rid, updated);
        rs.rows_affected++;
      }
      return rs;
    }

    case Statement::Kind::Delete: {
      const DeleteStmt& del = *stmt.del;
      const TableDef* def = db_->catalog().findTable(del.table);
      if (def == nullptr) throw SqlError("no such table: " + del.table);
      std::vector<SelectPlan::FromEntry> from{{def, def->name}};
      Binder binder(from);
      if (del.where) {
        binder.bind(*const_cast<Expr*>(del.where.get()));
        materializeSubqueries(const_cast<Expr*>(del.where.get()), *db_, use_indexes_);
      }
      std::vector<RecordId> victims;
      db_->scan(def->name, [&](RecordId rid, const Row& row) {
        Tuple tuple{&row};
        if (!del.where || truthy(evaluate(*del.where, tuple))) victims.push_back(rid);
        return true;
      });
      ResultSet rs;
      for (RecordId rid : victims) {
        if (db_->eraseRow(def->name, rid)) rs.rows_affected++;
      }
      return rs;
    }

    case Statement::Kind::CreateTable: {
      const CreateTableStmt& ct = *stmt.create_table;
      if (ct.if_not_exists && db_->catalog().findTable(ct.table) != nullptr) {
        return {};
      }
      std::vector<ColumnDef> columns;
      columns.reserve(ct.columns.size());
      for (const auto& [name, type] : ct.columns) columns.push_back({name, type});
      db_->createTable(ct.table, std::move(columns), ct.primary_key);
      return {};
    }

    case Statement::Kind::CreateIndex: {
      const CreateIndexStmt& ci = *stmt.create_index;
      if (ci.if_not_exists && db_->catalog().findIndex(ci.index) != nullptr) {
        return {};
      }
      db_->createIndex(ci.index, ci.table, ci.columns, ci.unique);
      return {};
    }

    case Statement::Kind::Drop: {
      const DropStmt& drop = *stmt.drop;
      if (drop.what == DropStmt::What::Table) {
        if (drop.if_exists && db_->catalog().findTable(drop.name) == nullptr) return {};
        db_->dropTable(drop.name);
      } else {
        if (drop.if_exists && db_->catalog().findIndex(drop.name) == nullptr) return {};
        db_->dropIndex(drop.name);
      }
      return {};
    }

    case Statement::Kind::Txn: {
      switch (stmt.txn->kind) {
        case TxnStmt::Kind::Begin: db_->begin(); break;
        case TxnStmt::Kind::Commit: db_->commit(); break;
        case TxnStmt::Kind::Rollback: db_->rollback(); break;
      }
      return {};
    }

    case Statement::Kind::Vacuum:
      db_->vacuum();
      return {};
  }
  throw SqlError("internal: bad statement kind");
}

}  // namespace perftrack::minidb::sql
