#include "minidb/sql/executor.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "minidb/keycodec.h"
#include "minidb/sql/lexer.h"
#include "minidb/sql/parser.h"
#include "util/error.h"
#include "util/strings.h"

namespace perftrack::minidb::sql {

using util::SqlError;

namespace {

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

/// One joined tuple: a row pointer per FROM-list entry (null = not yet bound).
using Tuple = std::vector<const Row*>;

bool likeMatch(std::string_view text, std::string_view pattern) {
  // Classic two-pointer wildcard matcher: '%' = any run, '_' = any one char.
  std::size_t t = 0;
  std::size_t p = 0;
  std::size_t star_p = std::string_view::npos;
  std::size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Value arith(BinaryOp op, const Value& a, const Value& b) {
  if (a.isNull() || b.isNull()) return Value::null();
  if (a.isInt() && b.isInt()) {
    const std::int64_t x = a.asInt();
    const std::int64_t y = b.asInt();
    switch (op) {
      case BinaryOp::Add: return Value(x + y);
      case BinaryOp::Sub: return Value(x - y);
      case BinaryOp::Mul: return Value(x * y);
      case BinaryOp::Div:
        if (y == 0) return Value::null();
        return Value(x / y);
      default: break;
    }
  }
  const double x = a.asReal();
  const double y = b.asReal();
  switch (op) {
    case BinaryOp::Add: return Value(x + y);
    case BinaryOp::Sub: return Value(x - y);
    case BinaryOp::Mul: return Value(x * y);
    case BinaryOp::Div:
      if (y == 0.0) return Value::null();
      return Value(x / y);
    default: break;
  }
  throw SqlError("arith: not an arithmetic operator");
}

bool truthy(const Value& v) {
  if (v.isNull()) return false;
  if (v.isInt()) return v.asInt() != 0;
  if (v.isReal()) return v.asReal() != 0.0;
  return !v.asText().empty();
}

Value evaluate(const Expr& e, const Tuple& tuple);

Value compare(BinaryOp op, const Value& a, const Value& b) {
  // SQL three-valued logic collapsed: comparisons against NULL are false.
  if (a.isNull() || b.isNull()) return Value(std::int64_t{0});
  const int c = a.compare(b);
  bool result = false;
  switch (op) {
    case BinaryOp::Eq: result = c == 0; break;
    case BinaryOp::Ne: result = c != 0; break;
    case BinaryOp::Lt: result = c < 0; break;
    case BinaryOp::Le: result = c <= 0; break;
    case BinaryOp::Gt: result = c > 0; break;
    case BinaryOp::Ge: result = c >= 0; break;
    default: throw SqlError("compare: not a comparison operator");
  }
  return Value(std::int64_t{result ? 1 : 0});
}

Value evaluate(const Expr& e, const Tuple& tuple) {
  switch (e.kind) {
    case Expr::Kind::Literal:
    case Expr::Kind::Param:  // bind() stored the parameter value in `value`
      return e.value;
    case Expr::Kind::Column: {
      const Row* row = tuple.at(e.bound_table);
      if (row == nullptr) throw SqlError("internal: unbound tuple slot");
      return row->at(e.bound_col);
    }
    case Expr::Kind::Binary: {
      switch (e.op) {
        case BinaryOp::And: {
          if (!truthy(evaluate(*e.lhs, tuple))) return Value(std::int64_t{0});
          return Value(std::int64_t{truthy(evaluate(*e.rhs, tuple)) ? 1 : 0});
        }
        case BinaryOp::Or: {
          if (truthy(evaluate(*e.lhs, tuple))) return Value(std::int64_t{1});
          return Value(std::int64_t{truthy(evaluate(*e.rhs, tuple)) ? 1 : 0});
        }
        case BinaryOp::Add:
        case BinaryOp::Sub:
        case BinaryOp::Mul:
        case BinaryOp::Div:
          return arith(e.op, evaluate(*e.lhs, tuple), evaluate(*e.rhs, tuple));
        default:
          return compare(e.op, evaluate(*e.lhs, tuple), evaluate(*e.rhs, tuple));
      }
    }
    case Expr::Kind::Not:
      return Value(std::int64_t{truthy(evaluate(*e.lhs, tuple)) ? 0 : 1});
    case Expr::Kind::IsNull: {
      const bool is_null = evaluate(*e.lhs, tuple).isNull();
      return Value(std::int64_t{(is_null != e.negated) ? 1 : 0});
    }
    case Expr::Kind::Like: {
      const Value v = evaluate(*e.lhs, tuple);
      if (v.isNull()) return Value(std::int64_t{0});
      const bool hit = likeMatch(v.isText() ? v.asText() : v.toDisplayString(),
                                 e.value.asText());
      return Value(std::int64_t{(hit != e.negated) ? 1 : 0});
    }
    case Expr::Kind::InList: {
      const Value v = evaluate(*e.lhs, tuple);
      if (v.isNull()) return Value(std::int64_t{0});
      bool hit = false;
      for (const ExprPtr& item : e.list) {
        if (v.compare(evaluate(*item, tuple)) == 0) {
          hit = true;
          break;
        }
      }
      return Value(std::int64_t{(hit != e.negated) ? 1 : 0});
    }
    case Expr::Kind::InSelect: {
      const Value v = evaluate(*e.lhs, tuple);
      if (v.isNull()) return Value(std::int64_t{0});
      if (!e.subquery_values) {
        throw SqlError("internal: subquery was not materialized");
      }
      EncodedKey key;
      encodeValue(v, key);
      const bool hit = e.subquery_values->contains(key);
      return Value(std::int64_t{(hit != e.negated) ? 1 : 0});
    }
    case Expr::Kind::Aggregate:
      throw SqlError("aggregate used outside of an aggregating SELECT");
  }
  throw SqlError("internal: bad expression kind");
}

}  // namespace

// ---------------------------------------------------------------------------
// SelectPlan — the compiled form of one SELECT against one schema epoch.
//
// Owns nothing in the AST (Expr pointers reach into the Statement that was
// planned); owns the column refs synthesized for '*' expansion. Catalog
// pointers (TableDef/IndexDef) are valid only while `epoch` matches
// Database::schemaEpoch(); PreparedStatement revalidates before every run.
// ---------------------------------------------------------------------------

struct SelectPlan {
  struct FromEntry {
    const TableDef* def = nullptr;
    std::string alias;
  };

  struct OutputCol {
    Expr* expr = nullptr;
    std::string name;
  };

  struct PlannedConjunct {
    Expr* expr = nullptr;
    int max_table = -1;  // evaluate once all tables <= max_table are bound
    int on_table = -1;   // index of the JOIN whose ON clause supplied it, or
                         // -1 for WHERE conjuncts (LEFT JOIN semantics)
  };

  struct AccessPath {
    enum class Kind { Scan, IndexEqual, IndexInList, IndexRange } kind = Kind::Scan;
    const IndexDef* index = nullptr;
    int key_column = -1;         // table-local ordinal of the indexed column
    Expr* equal_rhs = nullptr;   // IndexEqual: bound expression for the key
    Expr* in_list = nullptr;     // IndexInList: the consumed InList conjunct
    Expr* lower_rhs = nullptr;   // IndexRange bounds
    bool lower_inclusive = false;
    Expr* upper_rhs = nullptr;
    bool upper_inclusive = false;

    std::string describe(const FromEntry& entry) const {
      switch (kind) {
        case Kind::Scan:
          return "SCAN " + entry.def->name + " AS " + entry.alias;
        case Kind::IndexEqual:
          return "SEARCH " + entry.def->name + " AS " + entry.alias +
                 " USING INDEX " + index->name + " (" +
                 entry.def->columns[key_column].name + "=?)";
        case Kind::IndexInList:
          return "SEARCH " + entry.def->name + " AS " + entry.alias +
                 " USING INDEX " + index->name + " (" +
                 entry.def->columns[key_column].name + " IN multi-point probe, " +
                 std::to_string(in_list->list.size()) + " keys)";
        case Kind::IndexRange:
          return "SEARCH " + entry.def->name + " AS " + entry.alias +
                 " USING INDEX " + index->name + " (" +
                 entry.def->columns[key_column].name + " range)";
      }
      return "?";
    }
  };

  SelectStmt* sel = nullptr;
  std::uint64_t epoch = 0;
  bool use_indexes = true;
  std::vector<FromEntry> from;
  std::vector<ExprPtr> star_exprs;  // owns column refs expanded from '*'
  std::vector<OutputCol> outputs;
  std::vector<PlannedConjunct> conjuncts;
  std::vector<AccessPath> paths;
  std::vector<Expr*> aggregates;
  bool grouped = false;
};

namespace {

// ---------------------------------------------------------------------------
// Binding / analysis
// ---------------------------------------------------------------------------

class Binder {
 public:
  explicit Binder(const std::vector<SelectPlan::FromEntry>& from) : from_(from) {}

  /// Resolves column references; records the highest table index referenced.
  /// Returns -1 for expressions with no column references.
  int bind(Expr& e) const {
    int max_table = -1;
    bindInner(e, max_table);
    return max_table;
  }

 private:
  void bindInner(Expr& e, int& max_table) const {
    if (e.kind == Expr::Kind::Column) {
      resolve(e);
      max_table = std::max(max_table, e.bound_table);
      return;
    }
    if (e.lhs) bindInner(*e.lhs, max_table);
    if (e.rhs) bindInner(*e.rhs, max_table);
    for (const ExprPtr& item : e.list) bindInner(*item, max_table);
    // Subqueries bind against their own FROM list (uncorrelated); the
    // executor materializes them before evaluation.
  }

  void resolve(Expr& e) const {
    // Always (re)resolve: a cached statement may be replanned after DDL
    // changed column ordinals, so stale annotations must not survive.
    int found_table = -1;
    int found_col = -1;
    for (std::size_t i = 0; i < from_.size(); ++i) {
      if (!e.table.empty() && !util::iequals(e.table, from_[i].alias)) continue;
      const int col = from_[i].def->columnIndex(e.column);
      if (col < 0) continue;
      if (found_table >= 0) {
        throw SqlError("ambiguous column reference: " + e.column);
      }
      found_table = static_cast<int>(i);
      found_col = col;
    }
    if (found_table < 0) {
      const std::string qual = e.table.empty() ? e.column : e.table + "." + e.column;
      throw SqlError("unknown column: " + qual);
    }
    e.bound_table = found_table;
    e.bound_col = found_col;
  }

  const std::vector<SelectPlan::FromEntry>& from_;
};

void collectConjuncts(Expr* e, std::vector<Expr*>& out) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::Binary && e->op == BinaryOp::And) {
    collectConjuncts(e->lhs.get(), out);
    collectConjuncts(e->rhs.get(), out);
    return;
  }
  out.push_back(e);
}

void collectAggregates(Expr* e, std::vector<Expr*>& out) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::Aggregate) {
    e->agg_slot = static_cast<int>(out.size());
    out.push_back(e);
    // Aggregate arguments are evaluated per input tuple, not per group;
    // do not descend further.
    return;
  }
  collectAggregates(e->lhs.get(), out);
  collectAggregates(e->rhs.get(), out);
  for (const ExprPtr& item : e->list) collectAggregates(item.get(), out);
}

bool containsAggregate(const Expr* e) {
  if (e == nullptr) return false;
  if (e->kind == Expr::Kind::Aggregate) return true;
  if (containsAggregate(e->lhs.get()) || containsAggregate(e->rhs.get())) return true;
  for (const ExprPtr& item : e->list) {
    if (containsAggregate(item.get())) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Expression walking (parameter binding)
// ---------------------------------------------------------------------------

void forEachExpr(SelectStmt& sel, const std::function<void(Expr&)>& fn);

void forEachExpr(Expr* e, const std::function<void(Expr&)>& fn) {
  if (e == nullptr) return;
  fn(*e);
  forEachExpr(e->lhs.get(), fn);
  forEachExpr(e->rhs.get(), fn);
  for (const ExprPtr& item : e->list) forEachExpr(item.get(), fn);
  if (e->subquery) forEachExpr(*e->subquery, fn);
}

void forEachExpr(SelectStmt& sel, const std::function<void(Expr&)>& fn) {
  for (SelectItem& item : sel.items) forEachExpr(item.expr.get(), fn);
  for (TableRef& ref : sel.from) forEachExpr(ref.join_on.get(), fn);
  forEachExpr(sel.where.get(), fn);
  for (ExprPtr& e : sel.group_by) forEachExpr(e.get(), fn);
  forEachExpr(sel.having.get(), fn);
  for (OrderItem& item : sel.order_by) forEachExpr(item.expr.get(), fn);
}

void forEachExpr(Statement& stmt, const std::function<void(Expr&)>& fn) {
  switch (stmt.kind) {
    case Statement::Kind::Select:
      forEachExpr(*stmt.select, fn);
      break;
    case Statement::Kind::Insert:
      for (auto& row : stmt.insert->rows) {
        for (ExprPtr& e : row) forEachExpr(e.get(), fn);
      }
      break;
    case Statement::Kind::Update:
      for (auto& [name, e] : stmt.update->assignments) forEachExpr(e.get(), fn);
      forEachExpr(stmt.update->where.get(), fn);
      break;
    case Statement::Kind::Delete:
      forEachExpr(stmt.del->where.get(), fn);
      break;
    default:
      break;  // DDL/Txn/Vacuum carry no expressions
  }
}

/// Copies `params` into every Param node of the statement.
void bindParamValues(Statement& stmt, const std::vector<Value>& params) {
  forEachExpr(stmt, [&](Expr& e) {
    if (e.kind == Expr::Kind::Param) {
      e.value = params.at(static_cast<std::size_t>(e.param_index));
    }
  });
}

// ---------------------------------------------------------------------------
// Aggregation state
// ---------------------------------------------------------------------------

struct AggState {
  std::int64_t count = 0;
  std::int64_t isum = 0;
  double rsum = 0.0;
  bool saw_real = false;
  Value min;
  Value max;
  std::set<EncodedKey> distinct;

  void add(const Value& v, bool distinct_only) {
    if (v.isNull()) return;
    if (distinct_only) {
      EncodedKey key;
      encodeValue(v, key);
      if (!distinct.insert(key).second) return;
    }
    ++count;
    if (v.isReal()) {
      saw_real = true;
      rsum += v.asReal();
    } else if (v.isInt()) {
      isum += v.asInt();
      rsum += static_cast<double>(v.asInt());
    }
    if (min.isNull() || v.compare(min) < 0) min = v;
    if (max.isNull() || v.compare(max) > 0) max = v;
  }

  Value result(AggFunc fn) const {
    switch (fn) {
      case AggFunc::Count: return Value(count);
      case AggFunc::Sum:
        if (count == 0) return Value::null();
        return saw_real ? Value(rsum) : Value(isum);
      case AggFunc::Avg:
        if (count == 0) return Value::null();
        return Value(rsum / static_cast<double>(count));
      case AggFunc::Min: return min;
      case AggFunc::Max: return max;
    }
    return Value::null();
  }
};

struct Group {
  Row key_values;
  Tuple first_tuple_copy;                   // deep copies (rows), see below
  std::vector<Row> first_rows;              // storage behind first_tuple_copy
  std::vector<AggState> aggs;
};

/// Evaluates an expression in grouped mode: Aggregate nodes read their
/// accumulated slot; everything else evaluates against the group's first
/// input tuple (SQLite-style bare-column semantics).
Value evaluateGrouped(const Expr& e, const Group& g) {
  if (e.kind == Expr::Kind::Aggregate) {
    return g.aggs.at(e.agg_slot).result(e.agg);
  }
  switch (e.kind) {
    case Expr::Kind::Literal:
    case Expr::Kind::Param:
      return e.value;
    case Expr::Kind::Column:
      return g.first_rows.at(e.bound_table).at(e.bound_col);
    case Expr::Kind::Binary: {
      switch (e.op) {
        case BinaryOp::And:
          return Value(std::int64_t{truthy(evaluateGrouped(*e.lhs, g)) &&
                                            truthy(evaluateGrouped(*e.rhs, g))
                                        ? 1
                                        : 0});
        case BinaryOp::Or:
          return Value(std::int64_t{truthy(evaluateGrouped(*e.lhs, g)) ||
                                            truthy(evaluateGrouped(*e.rhs, g))
                                        ? 1
                                        : 0});
        case BinaryOp::Add:
        case BinaryOp::Sub:
        case BinaryOp::Mul:
        case BinaryOp::Div:
          return arith(e.op, evaluateGrouped(*e.lhs, g), evaluateGrouped(*e.rhs, g));
        default:
          return compare(e.op, evaluateGrouped(*e.lhs, g), evaluateGrouped(*e.rhs, g));
      }
    }
    case Expr::Kind::Not:
      return Value(std::int64_t{truthy(evaluateGrouped(*e.lhs, g)) ? 0 : 1});
    case Expr::Kind::IsNull: {
      const bool is_null = evaluateGrouped(*e.lhs, g).isNull();
      return Value(std::int64_t{(is_null != e.negated) ? 1 : 0});
    }
    case Expr::Kind::Like: {
      const Value v = evaluateGrouped(*e.lhs, g);
      if (v.isNull()) return Value(std::int64_t{0});
      const bool hit = likeMatch(v.isText() ? v.asText() : v.toDisplayString(),
                                 e.value.asText());
      return Value(std::int64_t{(hit != e.negated) ? 1 : 0});
    }
    case Expr::Kind::InList: {
      const Value v = evaluateGrouped(*e.lhs, g);
      if (v.isNull()) return Value(std::int64_t{0});
      bool hit = false;
      for (const ExprPtr& item : e.list) {
        if (v.compare(evaluateGrouped(*item, g)) == 0) {
          hit = true;
          break;
        }
      }
      return Value(std::int64_t{(hit != e.negated) ? 1 : 0});
    }
    case Expr::Kind::InSelect: {
      const Value v = evaluateGrouped(*e.lhs, g);
      if (v.isNull()) return Value(std::int64_t{0});
      if (!e.subquery_values) {
        throw SqlError("internal: subquery was not materialized");
      }
      EncodedKey key;
      encodeValue(v, key);
      const bool hit = e.subquery_values->contains(key);
      return Value(std::int64_t{(hit != e.negated) ? 1 : 0});
    }
    case Expr::Kind::Aggregate:
      break;  // handled above
  }
  throw SqlError("internal: bad grouped expression");
}

}  // namespace

// ---------------------------------------------------------------------------
// ResultSet rendering
// ---------------------------------------------------------------------------

std::string ResultSet::toText() const {
  std::vector<std::size_t> widths(columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows.size());
  for (const Row& row : rows) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::string text = row[c].isNull() ? "NULL" : row[c].toDisplayString();
      if (c < widths.size()) widths[c] = std::max(widths[c], text.size());
      line.push_back(std::move(text));
    }
    cells.push_back(std::move(line));
  }
  std::ostringstream out;
  auto rule = [&] {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      out << '+' << std::string(widths[c] + 2, '-');
    }
    out << "+\n";
  };
  rule();
  for (std::size_t c = 0; c < columns.size(); ++c) {
    out << "| " << columns[c] << std::string(widths[c] - columns[c].size() + 1, ' ');
  }
  out << "|\n";
  rule();
  for (const auto& line : cells) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const std::string& text = c < line.size() ? line[c] : "";
      out << "| " << text << std::string(widths[c] - text.size() + 1, ' ');
    }
    out << "|\n";
  }
  rule();
  return out.str();
}

// ---------------------------------------------------------------------------
// SELECT: plan construction and plan execution
// ---------------------------------------------------------------------------

namespace {

ResultSet execSelect(Database& db, const SelectStmt& sel_const, bool use_indexes,
                     bool explain);

/// Runs every uncorrelated IN (SELECT ...) subquery below `e` and caches the
/// first-column values for membership tests.
void materializeSubqueries(Expr* e, Database& db, bool use_indexes) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::InSelect) {
    if (!e->subquery) throw SqlError("internal: InSelect without a subquery");
    const ResultSet rs = execSelect(db, *e->subquery, use_indexes, /*explain=*/false);
    auto values = std::make_shared<std::set<std::string>>();
    for (const Row& row : rs.rows) {
      if (row.empty() || row[0].isNull()) continue;  // NULL never matches IN
      EncodedKey key;
      encodeValue(row[0], key);
      values->insert(std::move(key));
    }
    e->subquery_values = std::move(values);
  }
  materializeSubqueries(e->lhs.get(), db, use_indexes);
  materializeSubqueries(e->rhs.get(), db, use_indexes);
  for (const ExprPtr& item : e->list) {
    materializeSubqueries(item.get(), db, use_indexes);
  }
}

/// Resolves tables, binds expressions, splits conjuncts, and picks one
/// access path per FROM entry. Annotates the AST in place (bound_table /
/// bound_col / agg_slot); the produced plan is valid while the database's
/// schema epoch matches plan.epoch.
SelectPlan buildSelectPlan(Database& db, SelectStmt& sel, bool use_indexes) {
  SelectPlan plan;
  plan.sel = &sel;
  plan.epoch = db.schemaEpoch();
  plan.use_indexes = use_indexes;

  // --- resolve FROM ---
  for (const TableRef& ref : sel.from) {
    const TableDef* def = db.catalog().findTable(ref.table);
    if (def == nullptr) throw SqlError("no such table: " + ref.table);
    plan.from.push_back({def, ref.alias});
  }
  Binder binder(plan.from);

  if (plan.from.empty()) {
    // SELECT without FROM: items evaluate against an empty tuple at run time.
    for (SelectItem& item : sel.items) {
      if (!item.expr) throw SqlError("SELECT * requires a FROM clause");
      binder.bind(*item.expr);
      plan.outputs.push_back({item.expr.get(),
                              item.alias.empty() ? "expr" : item.alias});
    }
    return plan;
  }

  // --- expand '*' and bind select items ---
  for (SelectItem& item : sel.items) {
    if (!item.expr) {
      for (std::size_t t = 0; t < plan.from.size(); ++t) {
        for (std::size_t c = 0; c < plan.from[t].def->columns.size(); ++c) {
          ExprPtr e = Expr::columnRef(plan.from[t].alias,
                                      plan.from[t].def->columns[c].name);
          binder.bind(*e);
          plan.outputs.push_back({e.get(), plan.from[t].def->columns[c].name});
          plan.star_exprs.push_back(std::move(e));
        }
      }
      continue;
    }
    binder.bind(*item.expr);
    std::string name = item.alias;
    if (name.empty()) {
      name = item.expr->kind == Expr::Kind::Column ? item.expr->column : "expr";
    }
    plan.outputs.push_back({item.expr.get(), std::move(name)});
  }

  // --- gather and bind conjuncts (WHERE + every JOIN ... ON) ---
  auto addConjuncts = [&](Expr* root, int on_table) {
    std::vector<Expr*> raw;
    collectConjuncts(root, raw);
    for (Expr* e : raw) {
      SelectPlan::PlannedConjunct pc;
      pc.expr = e;
      pc.max_table = binder.bind(*e);
      pc.on_table = on_table;
      plan.conjuncts.push_back(pc);
    }
  };
  addConjuncts(sel.where.get(), -1);
  for (std::size_t t = 0; t < sel.from.size(); ++t) {
    addConjuncts(sel.from[t].join_on.get(), static_cast<int>(t));
  }

  // --- bind the remaining clauses ---
  for (ExprPtr& e : sel.group_by) binder.bind(*e);
  if (sel.having) binder.bind(*sel.having);
  for (OrderItem& item : sel.order_by) binder.bind(*item.expr);

  // --- aggregation analysis ---
  for (const SelectPlan::OutputCol& out : plan.outputs) {
    collectAggregates(out.expr, plan.aggregates);
  }
  if (sel.having) collectAggregates(sel.having.get(), plan.aggregates);
  for (OrderItem& item : sel.order_by) {
    collectAggregates(item.expr.get(), plan.aggregates);
  }
  plan.grouped = !sel.group_by.empty() || !plan.aggregates.empty();

  // --- choose an access path per table ---
  plan.paths.assign(plan.from.size(), {});
  if (!use_indexes) return plan;

  // Highest FROM index a bound expression depends on (-1 = constant).
  std::function<int(const Expr*)> maxTableOf = [&](const Expr* x) -> int {
    if (x == nullptr) return -1;
    int m = -1;
    if (x->kind == Expr::Kind::Column) m = x->bound_table;
    m = std::max(m, maxTableOf(x->lhs.get()));
    m = std::max(m, maxTableOf(x->rhs.get()));
    for (const ExprPtr& item : x->list) m = std::max(m, maxTableOf(item.get()));
    return m;
  };

  for (std::size_t t = 0; t < plan.from.size(); ++t) {
    SelectPlan::AccessPath& path = plan.paths[t];
    for (const SelectPlan::PlannedConjunct& pc : plan.conjuncts) {
      Expr* e = pc.expr;

      // col IN (list): sorted multi-point probe when every list element is
      // computable before table t is scanned. Beats a range path, loses to
      // a single-key equality.
      if (e->kind == Expr::Kind::InList && !e->negated) {
        Expr* col = e->lhs.get();
        if (!(col->kind == Expr::Kind::Column &&
              col->bound_table == static_cast<int>(t))) {
          continue;
        }
        int list_max = -1;
        for (const ExprPtr& item : e->list) {
          list_max = std::max(list_max, maxTableOf(item.get()));
        }
        if (list_max >= static_cast<int>(t)) continue;
        const IndexDef* index =
            db.catalog().indexOnColumn(plan.from[t].def->name, col->bound_col);
        if (index == nullptr) continue;
        if (path.kind == SelectPlan::AccessPath::Kind::IndexEqual ||
            path.kind == SelectPlan::AccessPath::Kind::IndexInList) {
          continue;
        }
        path = {};
        path.kind = SelectPlan::AccessPath::Kind::IndexInList;
        path.index = index;
        path.key_column = col->bound_col;
        path.in_list = e;
        continue;
      }

      if (e->kind != Expr::Kind::Binary) continue;
      if (e->op != BinaryOp::Eq && e->op != BinaryOp::Lt && e->op != BinaryOp::Le &&
          e->op != BinaryOp::Gt && e->op != BinaryOp::Ge) {
        continue;
      }
      // Normalize: want column-of-t on the left.
      Expr* col = e->lhs.get();
      Expr* other = e->rhs.get();
      BinaryOp op = e->op;
      auto flip = [](BinaryOp o) {
        switch (o) {
          case BinaryOp::Lt: return BinaryOp::Gt;
          case BinaryOp::Le: return BinaryOp::Ge;
          case BinaryOp::Gt: return BinaryOp::Lt;
          case BinaryOp::Ge: return BinaryOp::Le;
          default: return o;
        }
      };
      if (!(col->kind == Expr::Kind::Column && col->bound_table == static_cast<int>(t))) {
        std::swap(col, other);
        op = flip(op);
        if (!(col->kind == Expr::Kind::Column &&
              col->bound_table == static_cast<int>(t))) {
          continue;
        }
      }
      // The other side must be computable before table t is scanned.
      if (maxTableOf(other) >= static_cast<int>(t)) continue;
      const IndexDef* index =
          db.catalog().indexOnColumn(plan.from[t].def->name, col->bound_col);
      if (index == nullptr) continue;
      if (op == BinaryOp::Eq) {
        path = {};
        path.kind = SelectPlan::AccessPath::Kind::IndexEqual;
        path.index = index;
        path.key_column = col->bound_col;
        path.equal_rhs = other;
        break;  // equality beats any other path
      }
      // Range bound: merge into an existing range path on the same column.
      if (path.kind == SelectPlan::AccessPath::Kind::IndexEqual ||
          path.kind == SelectPlan::AccessPath::Kind::IndexInList) {
        continue;
      }
      if (path.kind == SelectPlan::AccessPath::Kind::IndexRange &&
          path.key_column != col->bound_col) {
        continue;
      }
      path.kind = SelectPlan::AccessPath::Kind::IndexRange;
      path.index = index;
      path.key_column = col->bound_col;
      if (op == BinaryOp::Gt || op == BinaryOp::Ge) {
        path.lower_rhs = other;
        path.lower_inclusive = op == BinaryOp::Ge;
      } else {
        path.upper_rhs = other;
        path.upper_inclusive = op == BinaryOp::Le;
      }
    }
  }
  return plan;
}

/// Runs a previously built plan. Re-materializes IN (SELECT ...) subqueries
/// (their contents may have changed between executions) but reuses all
/// binding and access-path decisions.
ResultSet execSelectPlan(Database& db, SelectPlan& plan, bool explain) {
  SelectStmt& sel = *plan.sel;

  if (plan.from.empty()) {
    // SELECT without FROM: evaluate items against an empty tuple.
    ResultSet rs;
    Row row;
    Tuple tuple;
    for (const SelectPlan::OutputCol& out : plan.outputs) {
      rs.columns.push_back(out.name);
      row.push_back(evaluate(*out.expr, tuple));
    }
    rs.rows.push_back(std::move(row));
    return rs;
  }

  // --- materialize uncorrelated subqueries (once per execution) ---
  for (const SelectPlan::PlannedConjunct& pc : plan.conjuncts) {
    materializeSubqueries(pc.expr, db, plan.use_indexes);
  }
  for (const SelectPlan::OutputCol& out : plan.outputs) {
    materializeSubqueries(out.expr, db, plan.use_indexes);
  }
  if (sel.having) materializeSubqueries(sel.having.get(), db, plan.use_indexes);
  for (OrderItem& item : sel.order_by) {
    materializeSubqueries(item.expr.get(), db, plan.use_indexes);
  }

  if (explain) {
    ResultSet rs;
    rs.columns = {"plan"};
    for (std::size_t t = 0; t < plan.from.size(); ++t) {
      rs.rows.push_back({Value(plan.paths[t].describe(plan.from[t]))});
    }
    return rs;
  }

  // --- execution ---
  ResultSet rs;
  for (const SelectPlan::OutputCol& out : plan.outputs) rs.columns.push_back(out.name);

  // Group storage (grouped mode) or direct output (plain mode).
  std::map<EncodedKey, Group> groups;
  std::vector<std::pair<std::vector<Value>, Row>> keyed_rows;  // (order keys, row)
  std::set<EncodedKey> distinct_seen;

  auto emitTuple = [&](const Tuple& tuple) {
    if (plan.grouped) {
      Row key_values;
      EncodedKey key;
      for (const ExprPtr& e : sel.group_by) {
        Value v = evaluate(*e, tuple);
        encodeValue(v, key);
        key_values.push_back(std::move(v));
      }
      auto [it, inserted] = groups.try_emplace(std::move(key));
      Group& g = it->second;
      if (inserted) {
        g.key_values = std::move(key_values);
        g.aggs.resize(plan.aggregates.size());
        g.first_rows.reserve(tuple.size());
        for (const Row* row : tuple) g.first_rows.push_back(*row);
      }
      for (std::size_t a = 0; a < plan.aggregates.size(); ++a) {
        const Expr* agg = plan.aggregates[a];
        if (agg->lhs) {
          g.aggs[a].add(evaluate(*agg->lhs, tuple), agg->agg_distinct);
        } else {
          g.aggs[a].count++;  // COUNT(*)
        }
      }
      return;
    }
    Row row;
    row.reserve(plan.outputs.size());
    for (const SelectPlan::OutputCol& out : plan.outputs) {
      row.push_back(evaluate(*out.expr, tuple));
    }
    if (sel.distinct) {
      EncodedKey key;
      for (const Value& v : row) encodeValue(v, key);
      if (!distinct_seen.insert(key).second) return;
    }
    std::vector<Value> order_keys;
    order_keys.reserve(sel.order_by.size());
    for (const OrderItem& item : sel.order_by) {
      order_keys.push_back(evaluate(*item.expr, tuple));
    }
    keyed_rows.emplace_back(std::move(order_keys), std::move(row));
  };

  // Nested-loop join driven by the chosen access paths. LEFT JOIN follows
  // standard semantics: a row "matches" when it passes the table's ON
  // conjuncts; if nothing matches, a null-extended tuple is produced and
  // only non-ON (WHERE) conjuncts apply to it.
  Tuple tuple(plan.from.size(), nullptr);
  std::vector<Row> null_rows;
  null_rows.reserve(plan.from.size());
  for (const SelectPlan::FromEntry& entry : plan.from) {
    null_rows.emplace_back(entry.def->columns.size());  // all NULL
  }
  std::function<void(std::size_t)> joinStep = [&](std::size_t t) {
    if (t == plan.from.size()) {
      emitTuple(tuple);
      return;
    }
    auto dueHere = [&](const SelectPlan::PlannedConjunct& pc) {
      return pc.max_table == static_cast<int>(t) || (t == 0 && pc.max_table <= 0);
    };
    const SelectPlan::AccessPath& path = plan.paths[t];
    bool matched = false;
    auto visit = [&](RecordId, const Row& row) -> bool {
      tuple[t] = &row;
      // ON conjuncts first: they alone decide whether the row "matches".
      // The conjunct consumed by an IN-list probe already holds by
      // construction (the probe only visits matching keys) and is skipped.
      bool on_pass = true;
      for (const SelectPlan::PlannedConjunct& pc : plan.conjuncts) {
        if (!dueHere(pc) || pc.on_table != static_cast<int>(t)) continue;
        if (pc.expr == path.in_list) continue;
        if (!truthy(evaluate(*pc.expr, tuple))) {
          on_pass = false;
          break;
        }
      }
      if (on_pass) {
        matched = true;
        bool rest_pass = true;
        for (const SelectPlan::PlannedConjunct& pc : plan.conjuncts) {
          if (!dueHere(pc) || pc.on_table == static_cast<int>(t)) continue;
          if (pc.expr == path.in_list) continue;
          if (!truthy(evaluate(*pc.expr, tuple))) {
            rest_pass = false;
            break;
          }
        }
        if (rest_pass) joinStep(t + 1);
      }
      tuple[t] = nullptr;
      return true;
    };
    switch (path.kind) {
      case SelectPlan::AccessPath::Kind::Scan:
        db.scan(plan.from[t].def->name, visit);
        break;
      case SelectPlan::AccessPath::Kind::IndexEqual: {
        const Value key = evaluate(*path.equal_rhs, tuple);
        if (!key.isNull()) {  // col = NULL matches nothing; may null-extend
          db.indexScanEqual(*path.index, {key}, visit);
        }
        break;
      }
      case SelectPlan::AccessPath::Kind::IndexInList: {
        // Sorted multi-point probe: one B+-tree descent per distinct key,
        // in key order, instead of a heap scan with per-row membership.
        std::vector<Value> keys;
        keys.reserve(path.in_list->list.size());
        for (const ExprPtr& item : path.in_list->list) {
          Value v = evaluate(*item, tuple);
          if (!v.isNull()) keys.push_back(std::move(v));
        }
        std::sort(keys.begin(), keys.end(),
                  [](const Value& a, const Value& b) { return a.compare(b) < 0; });
        keys.erase(std::unique(keys.begin(), keys.end(),
                               [](const Value& a, const Value& b) {
                                 return a.compare(b) == 0;
                               }),
                   keys.end());
        bool stop = false;
        for (const Value& key : keys) {
          db.indexScanEqual(*path.index, {key}, [&](RecordId rid, const Row& row) {
            if (!visit(rid, row)) {
              stop = true;
              return false;
            }
            return true;
          });
          if (stop) break;
        }
        break;
      }
      case SelectPlan::AccessPath::Kind::IndexRange: {
        std::optional<Value> lower;
        std::optional<Value> upper;
        if (path.lower_rhs) lower = evaluate(*path.lower_rhs, tuple);
        if (path.upper_rhs) upper = evaluate(*path.upper_rhs, tuple);
        db.indexScanRange(*path.index, lower, path.lower_inclusive, upper,
                          path.upper_inclusive, visit);
        break;
      }
    }
    if (!matched && sel.from[t].left_join) {
      tuple[t] = &null_rows[t];
      bool pass = true;
      for (const SelectPlan::PlannedConjunct& pc : plan.conjuncts) {
        if (!dueHere(pc) || pc.on_table == static_cast<int>(t)) continue;
        // Note: a conjunct consumed by the probe IS evaluated here — a
        // null-extended row must still fail `col IN (...)`.
        if (!truthy(evaluate(*pc.expr, tuple))) {
          pass = false;
          break;
        }
      }
      if (pass) joinStep(t + 1);
      tuple[t] = nullptr;
    }
  };
  joinStep(0);

  // --- finalize groups ---
  if (plan.grouped) {
    for (const auto& [key, group] : groups) {
      if (sel.having && !truthy(evaluateGrouped(*sel.having, group))) continue;
      Row row;
      row.reserve(plan.outputs.size());
      for (const SelectPlan::OutputCol& out : plan.outputs) {
        row.push_back(evaluateGrouped(*out.expr, group));
      }
      if (sel.distinct) {
        EncodedKey dkey;
        for (const Value& v : row) encodeValue(v, dkey);
        if (!distinct_seen.insert(dkey).second) continue;
      }
      std::vector<Value> order_keys;
      order_keys.reserve(sel.order_by.size());
      for (const OrderItem& item : sel.order_by) {
        order_keys.push_back(evaluateGrouped(*item.expr, group));
      }
      keyed_rows.emplace_back(std::move(order_keys), std::move(row));
    }
    // A fully-aggregated SELECT over zero input rows still yields one row.
    if (groups.empty() && sel.group_by.empty()) {
      Group empty;
      empty.aggs.resize(plan.aggregates.size());
      // Bare column refs are undefined over an empty input; report NULLs.
      Row row;
      for (const SelectPlan::OutputCol& out : plan.outputs) {
        if (containsAggregate(out.expr) || out.expr->kind == Expr::Kind::Literal) {
          row.push_back(evaluateGrouped(*out.expr, empty));
        } else {
          row.push_back(Value::null());
        }
      }
      keyed_rows.emplace_back(std::vector<Value>{}, std::move(row));
    }
  }

  // --- order, offset, limit ---
  if (!sel.order_by.empty()) {
    std::stable_sort(keyed_rows.begin(), keyed_rows.end(),
                     [&](const auto& a, const auto& b) {
                       for (std::size_t i = 0; i < sel.order_by.size(); ++i) {
                         const int c = a.first[i].compare(b.first[i]);
                         if (c != 0) return sel.order_by[i].descending ? c > 0 : c < 0;
                       }
                       return false;
                     });
  }
  std::size_t start = 0;
  std::size_t end = keyed_rows.size();
  if (sel.offset) start = std::min<std::size_t>(end, static_cast<std::size_t>(*sel.offset));
  if (sel.limit) end = std::min<std::size_t>(end, start + static_cast<std::size_t>(*sel.limit));
  rs.rows.reserve(end - start);
  for (std::size_t i = start; i < end; ++i) rs.rows.push_back(std::move(keyed_rows[i].second));
  return rs;
}

ResultSet execSelect(Database& db, const SelectStmt& sel_const, bool use_indexes,
                     bool explain) {
  // The binding pass annotates expressions in place; the annotations are
  // rewritten by every plan build, so sharing the AST across plans is safe.
  auto& sel = const_cast<SelectStmt&>(sel_const);
  SelectPlan plan = buildSelectPlan(db, sel, use_indexes);
  return execSelectPlan(db, plan, explain);
}

Value evalConst(const Expr& e) {
  static const Tuple kEmpty;
  return evaluate(e, kEmpty);
}

}  // namespace

// ---------------------------------------------------------------------------
// PreparedStatement
// ---------------------------------------------------------------------------

PreparedStatement::PreparedStatement(Engine& engine, std::string sql)
    : engine_(&engine), sql_(std::move(sql)), stmt_(parseStatement(sql_)) {
  params_.resize(static_cast<std::size_t>(stmt_.param_count));
  bound_.assign(static_cast<std::size_t>(stmt_.param_count), 0);
}

void PreparedStatement::bind(int index, Value v) {
  if (index < 1 || index > paramCount()) {
    throw SqlError("bind: parameter index " + std::to_string(index) +
                   " out of range (statement has " + std::to_string(paramCount()) +
                   " parameters)");
  }
  params_[static_cast<std::size_t>(index - 1)] = std::move(v);
  bound_[static_cast<std::size_t>(index - 1)] = 1;
}

void PreparedStatement::bindAll(std::vector<Value> params) {
  if (static_cast<int>(params.size()) != paramCount()) {
    throw SqlError("bindAll: statement has " + std::to_string(paramCount()) +
                   " parameters, got " + std::to_string(params.size()));
  }
  params_ = std::move(params);
  bound_.assign(params_.size(), 1);
}

void PreparedStatement::clearBindings() {
  params_.assign(params_.size(), Value::null());
  bound_.assign(bound_.size(), 0);
}

ResultSet PreparedStatement::execute() {
  for (std::size_t i = 0; i < bound_.size(); ++i) {
    if (!bound_[i]) {
      throw SqlError("execute: parameter " + std::to_string(i + 1) + " is unbound");
    }
  }
  if (stmt_.param_count > 0) bindParamValues(stmt_, params_);
  if (stmt_.kind == Statement::Kind::Select) {
    Database& db = *engine_->db_;
    if (!plan_ || plan_->epoch != db.schemaEpoch() ||
        plan_->use_indexes != engine_->use_indexes_) {
      plan_ = std::make_shared<SelectPlan>(
          buildSelectPlan(db, *stmt_.select, engine_->use_indexes_));
    }
    return execSelectPlan(db, *plan_, stmt_.explain);
  }
  return engine_->exec(stmt_);
}

ResultSet PreparedStatement::execute(std::vector<Value> params) {
  bindAll(std::move(params));
  return execute();
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

PreparedStatement Engine::prepare(std::string_view sql) {
  return PreparedStatement(*this, std::string(sql));
}

ResultSet Engine::exec(std::string_view sqltext) {
  const Statement stmt = parseStatement(sqltext);
  if (stmt.param_count > 0) {
    throw SqlError("statement has " + std::to_string(stmt.param_count) +
                   " unbound '?' parameters; use prepare()/execPrepared()");
  }
  return exec(stmt);
}

ResultSet Engine::execScript(std::string_view script) {
  // Split on top-level ';' — the lexer already understands quoting and
  // comments, so tokenize once and re-slice the source by the separators.
  ResultSet last;
  std::size_t start = 0;
  std::size_t i = 0;
  const std::size_t n = script.size();
  bool saw_statement = false;
  auto runSlice = [&](std::size_t begin, std::size_t end) {
    std::string_view piece = script.substr(begin, end - begin);
    // Skip slices that are only whitespace/comments.
    const auto tokens = tokenize(piece);
    if (tokens.size() <= 1) return;
    last = exec(piece);
    saw_statement = true;
  };
  while (i < n) {
    const char c = script[i];
    if (c == '\'') {
      ++i;
      while (i < n && !(script[i] == '\'' && (i + 1 >= n || script[i + 1] != '\''))) {
        i += script[i] == '\'' ? 2 : 1;  // skip escaped ''
      }
      ++i;
    } else if (c == '"') {
      ++i;
      while (i < n && script[i] != '"') ++i;
      ++i;
    } else if (c == '-' && i + 1 < n && script[i + 1] == '-') {
      while (i < n && script[i] != '\n') ++i;
    } else if (c == ';') {
      runSlice(start, i);
      ++i;
      start = i;
    } else {
      ++i;
    }
  }
  runSlice(start, n);
  if (!saw_statement) throw SqlError("execScript: no statements in script");
  return last;
}

ResultSet Engine::exec(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::Select:
      return execSelect(*db_, *stmt.select, use_indexes_, stmt.explain);

    case Statement::Kind::Insert: {
      const InsertStmt& ins = *stmt.insert;
      const TableDef* def = db_->catalog().findTable(ins.table);
      if (def == nullptr) throw SqlError("no such table: " + ins.table);
      std::vector<int> target_cols;
      if (ins.columns.empty()) {
        for (std::size_t c = 0; c < def->columns.size(); ++c) {
          target_cols.push_back(static_cast<int>(c));
        }
      } else {
        for (const std::string& name : ins.columns) {
          const int c = def->columnIndex(name);
          if (c < 0) throw SqlError("no column '" + name + "' in " + ins.table);
          target_cols.push_back(c);
        }
      }
      ResultSet rs;
      for (const auto& exprs : ins.rows) {
        if (exprs.size() != target_cols.size()) {
          throw SqlError("INSERT value count does not match column count");
        }
        Row row(def->columns.size());  // unspecified columns default to NULL
        for (std::size_t i = 0; i < exprs.size(); ++i) {
          row[target_cols[i]] = evalConst(*exprs[i]);
        }
        rs.last_insert_id = db_->insertRow(def->name, std::move(row));
        rs.rows_affected++;
      }
      return rs;
    }

    case Statement::Kind::Update: {
      const UpdateStmt& upd = *stmt.update;
      const TableDef* def = db_->catalog().findTable(upd.table);
      if (def == nullptr) throw SqlError("no such table: " + upd.table);
      std::vector<SelectPlan::FromEntry> from{{def, def->name}};
      Binder binder(from);
      if (upd.where) {
        binder.bind(*const_cast<Expr*>(upd.where.get()));
        materializeSubqueries(const_cast<Expr*>(upd.where.get()), *db_, use_indexes_);
      }
      std::vector<std::pair<int, const Expr*>> assigns;
      for (const auto& [name, expr] : upd.assignments) {
        const int c = def->columnIndex(name);
        if (c < 0) throw SqlError("no column '" + name + "' in " + upd.table);
        binder.bind(*const_cast<Expr*>(expr.get()));
        assigns.emplace_back(c, expr.get());
      }
      // Collect matches first, then mutate (index/heap iterators must not
      // observe our own writes).
      std::vector<std::pair<RecordId, Row>> matches;
      db_->scan(def->name, [&](RecordId rid, const Row& row) {
        Tuple tuple{&row};
        if (!upd.where || truthy(evaluate(*upd.where, tuple))) {
          matches.emplace_back(rid, row);
        }
        return true;
      });
      ResultSet rs;
      for (auto& [rid, row] : matches) {
        Row updated = row;
        Tuple tuple{&row};
        for (const auto& [c, expr] : assigns) {
          updated[c] = evaluate(*expr, tuple);
        }
        db_->updateRow(def->name, rid, updated);
        rs.rows_affected++;
      }
      return rs;
    }

    case Statement::Kind::Delete: {
      const DeleteStmt& del = *stmt.del;
      const TableDef* def = db_->catalog().findTable(del.table);
      if (def == nullptr) throw SqlError("no such table: " + del.table);
      std::vector<SelectPlan::FromEntry> from{{def, def->name}};
      Binder binder(from);
      if (del.where) {
        binder.bind(*const_cast<Expr*>(del.where.get()));
        materializeSubqueries(const_cast<Expr*>(del.where.get()), *db_, use_indexes_);
      }
      std::vector<RecordId> victims;
      db_->scan(def->name, [&](RecordId rid, const Row& row) {
        Tuple tuple{&row};
        if (!del.where || truthy(evaluate(*del.where, tuple))) victims.push_back(rid);
        return true;
      });
      ResultSet rs;
      for (RecordId rid : victims) {
        if (db_->eraseRow(def->name, rid)) rs.rows_affected++;
      }
      return rs;
    }

    case Statement::Kind::CreateTable: {
      const CreateTableStmt& ct = *stmt.create_table;
      if (ct.if_not_exists && db_->catalog().findTable(ct.table) != nullptr) {
        return {};
      }
      std::vector<ColumnDef> columns;
      columns.reserve(ct.columns.size());
      for (const auto& [name, type] : ct.columns) columns.push_back({name, type});
      db_->createTable(ct.table, std::move(columns), ct.primary_key);
      return {};
    }

    case Statement::Kind::CreateIndex: {
      const CreateIndexStmt& ci = *stmt.create_index;
      if (ci.if_not_exists && db_->catalog().findIndex(ci.index) != nullptr) {
        return {};
      }
      db_->createIndex(ci.index, ci.table, ci.columns, ci.unique);
      return {};
    }

    case Statement::Kind::Drop: {
      const DropStmt& drop = *stmt.drop;
      if (drop.what == DropStmt::What::Table) {
        if (drop.if_exists && db_->catalog().findTable(drop.name) == nullptr) return {};
        db_->dropTable(drop.name);
      } else {
        if (drop.if_exists && db_->catalog().findIndex(drop.name) == nullptr) return {};
        db_->dropIndex(drop.name);
      }
      return {};
    }

    case Statement::Kind::Txn: {
      switch (stmt.txn->kind) {
        case TxnStmt::Kind::Begin: db_->begin(); break;
        case TxnStmt::Kind::Commit: db_->commit(); break;
        case TxnStmt::Kind::Rollback: db_->rollback(); break;
      }
      return {};
    }

    case Statement::Kind::Vacuum:
      db_->vacuum();
      return {};
  }
  throw SqlError("internal: bad statement kind");
}

}  // namespace perftrack::minidb::sql
