// minidb SQL front-end: statement execution.
//
// The Engine compiles a parsed Statement against a Database and runs it.
// SELECT planning is rule-based, in the spirit of early relational engines:
// tables join in FROM order with nested loops; for each table the planner
// looks for a WHERE/ON conjunct of the form  col <op> <bound expr>  where
// `col` has a B+-tree index and the other side only references earlier
// tables — equality conjuncts become index point scans, inequalities become
// index range scans, otherwise the table is heap-scanned. EXPLAIN returns
// the chosen access path per table instead of rows (used by the ablation
// benchmarks).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "minidb/database.h"
#include "minidb/sql/ast.h"

namespace perftrack::minidb::sql {

/// Result of executing one statement.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  std::int64_t rows_affected = 0;  // INSERT/UPDATE/DELETE
  std::int64_t last_insert_id = 0; // INSERT into a table with a PK

  bool empty() const { return rows.empty(); }

  /// Renders the result as an aligned text table (for the CLI and examples).
  std::string toText() const;
};

class Engine {
 public:
  explicit Engine(Database& db) : db_(&db) {}

  /// Parses and executes one statement.
  ResultSet exec(std::string_view sql);

  /// Executes an already-parsed statement.
  ResultSet exec(const Statement& stmt);

  /// Executes a ';'-separated script (quotes and comments are respected);
  /// returns the last statement's result. Used for DDL batches.
  ResultSet execScript(std::string_view script);

  /// When false the planner never uses indexes (ablation switch; mirrors
  /// the paper's interest in load/query cost drivers).
  void setUseIndexes(bool enabled) { use_indexes_ = enabled; }
  bool useIndexes() const { return use_indexes_; }

 private:
  Database* db_;
  bool use_indexes_ = true;
};

}  // namespace perftrack::minidb::sql
