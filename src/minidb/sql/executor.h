// minidb SQL front-end: statement preparation and execution.
//
// The Engine compiles a parsed Statement against a Database and runs it.
// SELECT planning is rule-based, in the spirit of early relational engines:
// tables join in FROM order with nested loops; for each table the planner
// looks for a WHERE/ON conjunct of the form  col <op> <bound expr>  where
// `col` has a B+-tree index and the other side only references earlier
// tables — equality conjuncts become index point scans, IN-lists become
// sorted multi-point probes, inequalities become index range scans,
// otherwise the table is heap-scanned.
//
// Execution is a pull-based Volcano pipeline (see sql/pipeline.h): a SELECT
// can be stepped row by row through a Cursor without materializing the
// result, and exec()/execute() are thin wrappers that drain a cursor into a
// ResultSet. EXPLAIN returns the operator tree, one line per operator.
//
// prepare() compiles a statement once into a PreparedStatement that can be
// bound and executed repeatedly without re-lexing or re-parsing. SELECT
// plans (resolved tables, conjuncts, access paths) are cached inside the
// PreparedStatement and revalidated against Database::schemaEpoch() and the
// engine's use-indexes flag, so DDL or ablation flips trigger a cheap
// replan instead of returning stale plans.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "minidb/database.h"
#include "minidb/sql/ast.h"
#include "minidb/sql/row_batch.h"

namespace perftrack::minidb::sql {

/// Result of executing one statement.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  std::int64_t rows_affected = 0;  // INSERT/UPDATE/DELETE
  std::int64_t last_insert_id = 0; // INSERT into a table with a PK

  bool empty() const { return rows.empty(); }

  /// Renders the result as an aligned text table (for the CLI and examples).
  std::string toText() const;
};

class Engine;
struct SelectPlan;  // cached plan, defined in sql/pipeline.h
struct CursorImpl;  // cursor state, defined in executor.cpp

/// Process default for Engine::execThreads(): PT_EXEC_THREADS when set (>= 1,
/// clamped to the pool ceiling), else std::thread::hardware_concurrency().
/// Resolved once per process.
int defaultExecThreads();

/// Process default for Engine::parallelMinPages(): PT_EXEC_MIN_PAGES when
/// set, else 16. 0 disables the small-table gate entirely.
std::size_t defaultParallelMinPages();

/// Process default for Engine::execBatchRows(): PT_EXEC_BATCH_ROWS when set
/// (clamped to [1, kMaxExecBatchRows]; non-numeric values are ignored), else
/// 1024. Resolved once per process.
std::size_t defaultExecBatchRows();

/// Process default for Engine::invidx(): PT_INVIDX when set ("0"/"off"/
/// "false" disable, anything else enables), else enabled. Resolved once per
/// process.
bool defaultInvidxEnabled();

/// A stepping SELECT cursor: pulls one row at a time through the operator
/// pipeline, so the first row arrives without materializing the result.
///
/// Invariants:
///  - While open (and not EXPLAIN), the cursor holds a Database::CursorPin:
///    DDL, VACUUM, ROLLBACK, and row mutations on the database throw
///    StorageError until the cursor is closed.
///  - The cursor keeps the parsed statement and plan alive (shared), so it
///    survives its PreparedStatement and statement-cache eviction.
///  - next() after exhaustion returns false; close() is idempotent and
///    releases the pin immediately.
class Cursor {
 public:
  Cursor(Cursor&& o) noexcept;
  Cursor& operator=(Cursor&& o) noexcept;
  Cursor(const Cursor&) = delete;
  Cursor& operator=(const Cursor&) = delete;
  ~Cursor();

  const std::vector<std::string>& columns() const;

  /// Produces the next row. Returns false (and auto-closes) at end of
  /// stream.
  bool next(Row& row);

  /// Pulls the next batch of rows. `batch.capacity` bounds the refill (0 =
  /// the engine's execBatchRows()); a true return carries at least one live
  /// row in `batch.sel`. Returns false (and auto-closes) at end of stream.
  /// Interleaving with next() is allowed; rows are never duplicated.
  bool fetchBatch(RowBatch& batch);

  /// Releases the pipeline and the database pin early; idempotent.
  void close();

  bool isOpen() const;

 private:
  friend class Engine;
  friend class PreparedStatement;
  explicit Cursor(std::shared_ptr<CursorImpl> impl);

  std::shared_ptr<CursorImpl> impl_;
};

/// A parsed statement plus its parameter bindings and cached SELECT plan.
/// Obtained from Engine::prepare(); re-executable with fresh bindings.
class PreparedStatement {
 public:
  PreparedStatement(PreparedStatement&&) = default;
  PreparedStatement& operator=(PreparedStatement&&) = default;

  /// Number of '?' placeholders in the statement.
  int paramCount() const { return stmt_->param_count; }

  /// Binds one parameter (1-based index, SQLite-style). Throws SqlError when
  /// the index is out of range. NULL is a legal binding.
  void bind(int index, Value v);

  /// Binds every parameter at once; `params.size()` must equal paramCount().
  void bindAll(std::vector<Value> params);

  /// Forgets all bindings (execute() then requires a fresh bindAll/bind).
  void clearBindings();

  /// Executes with the current bindings. Throws SqlError when any parameter
  /// is unbound. Bindings persist across executions until rebound.
  /// SELECTs drain an internal cursor (the materializing wrapper).
  ResultSet execute();

  /// bindAll + execute in one call.
  ResultSet execute(std::vector<Value> params);

  /// Opens a stepping cursor over a SELECT with the current bindings.
  /// Only one cursor may be open per statement at a time (the bindings are
  /// baked into the shared AST); throws SqlError otherwise.
  Cursor openCursor();

  /// Like openCursor(), but every read — planning, the open, and each
  /// next() — resolves through `snapshot`, a pinned committed version from
  /// Database::takeSnapshot(). The cursor owns the snapshot for its open
  /// lifetime; row mutations and rollbacks on the database proceed freely
  /// underneath it (the cursor keeps seeing its frozen version), while DDL
  /// and VACUUM still refuse until it closes.
  Cursor openCursor(Pager::ReadSnapshot snapshot);

  /// True while a cursor opened from this statement is still open.
  bool hasOpenCursor() const;

  const std::string& sql() const { return sql_; }
  Statement::Kind kind() const { return stmt_->kind; }
  const Statement& statement() const { return *stmt_; }

 private:
  friend class Engine;
  PreparedStatement(Engine& engine, std::string sql);
  Cursor openCursorInternal(Pager::ReadSnapshot snapshot);

  Engine* engine_;
  std::string sql_;
  std::shared_ptr<Statement> stmt_;   // shared with cursors opened from here
  std::vector<Value> params_;
  std::vector<char> bound_;        // per-parameter "has been bound" flags
  std::shared_ptr<SelectPlan> plan_;  // lazily built, epoch-validated
  std::shared_ptr<char> busy_token_;  // nonzero while a cursor is open
  std::uint64_t parse_us_ = 0;     // parse span, consumed by the first execution
};

class Engine {
 public:
  explicit Engine(Database& db) : db_(&db) {}

  /// Compiles one statement for repeated execution with bound parameters.
  PreparedStatement prepare(std::string_view sql);

  /// Parses and executes one statement. Statements containing '?' must go
  /// through prepare() instead.
  ResultSet exec(std::string_view sql);

  /// Executes an already-parsed statement (no parameters).
  ResultSet exec(const Statement& stmt);

  /// Opens a stepping cursor over a parameterless SELECT (or EXPLAIN).
  /// The cursor owns the parsed statement and plan; it outlives this call.
  Cursor openCursor(std::string_view sql);

  /// Executes a ';'-separated script (quotes and comments are respected);
  /// returns the last statement's result. Used for DDL batches.
  ResultSet execScript(std::string_view script);

  /// When false the planner never uses indexes (ablation switch; mirrors
  /// the paper's interest in load/query cost drivers). Cached plans built
  /// under the other setting replan automatically on next execution.
  void setUseIndexes(bool enabled) { use_indexes_ = enabled; }
  bool useIndexes() const { return use_indexes_; }

  /// Execution degree for parallel-eligible SELECTs (workers including the
  /// calling thread). 0 restores the process default (PT_EXEC_THREADS or
  /// hardware concurrency); 1 forces the serial path.
  void setExecThreads(int n) { exec_threads_ = n; }
  int execThreads() const {
    return exec_threads_ > 0 ? exec_threads_ : defaultExecThreads();
  }

  /// Heap pages table 0 must span before a SELECT goes parallel; 0 disables
  /// the gate (tests force tiny tables parallel with it).
  void setParallelMinPages(std::size_t n) { min_pages_ = n; }
  std::size_t parallelMinPages() const {
    return min_pages_ ? *min_pages_ : defaultParallelMinPages();
  }

  /// Rows per pipeline batch for this engine's statements. Throws SqlError
  /// on 0 or values above kMaxExecBatchRows (see sql/pipeline.h); unset
  /// engines use the process default (PT_EXEC_BATCH_ROWS or 1024).
  void setExecBatchRows(std::size_t n);
  std::size_t execBatchRows() const {
    return exec_batch_rows_ > 0 ? exec_batch_rows_ : defaultExecBatchRows();
  }

  /// Whether the planner may answer integer IN-list probes from the
  /// inverted index (posting-list point lookups instead of B+-tree
  /// descents). Unset engines use the process default (PT_INVIDX, on by
  /// default). Cached plans built under the other setting replan
  /// automatically on next execution.
  void setInvidx(bool enabled) { invidx_ = enabled ? 1 : 0; }
  bool invidx() const {
    return invidx_ < 0 ? defaultInvidxEnabled() : invidx_ != 0;
  }

  Database& database() { return *db_; }

 private:
  friend class PreparedStatement;

  Database* db_;
  bool use_indexes_ = true;
  int exec_threads_ = 0;                  // 0 = process default
  std::optional<std::size_t> min_pages_;  // unset = process default
  std::size_t exec_batch_rows_ = 0;       // 0 = process default
  int invidx_ = -1;                       // -1 = process default
};

}  // namespace perftrack::minidb::sql
