#include "minidb/sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "util/error.h"
#include "util/strings.h"

namespace perftrack::minidb::sql {

using util::SqlError;

namespace {

const std::unordered_set<std::string>& keywords() {
  static const std::unordered_set<std::string> kw = {
      "SELECT", "FROM",    "WHERE",  "AND",    "OR",     "NOT",      "INSERT",
      "INTO",   "VALUES",  "UPDATE", "SET",    "DELETE", "CREATE",   "TABLE",
      "INDEX",  "UNIQUE",  "ON",     "DROP",   "JOIN",   "INNER",    "LEFT",
      "AS",     "ORDER",   "BY",     "GROUP",  "HAVING", "LIMIT",    "OFFSET",
      "ASC",    "DESC",    "NULL",   "IS",     "IN",     "LIKE",     "BEGIN",
      "COMMIT", "ROLLBACK","PRIMARY","KEY",    "INTEGER","REAL",     "TEXT",
      "COUNT",  "SUM",     "AVG",    "MIN",    "MAX",    "DISTINCT", "EXPLAIN",
      "IF",     "EXISTS",  "BETWEEN","OUTER",  "VACUUM", "ANALYZE"};
  return kw;
}

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> tokenize(std::string_view sql) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- comments to end of line
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (isIdentStart(c)) {
      std::size_t start = i;
      while (i < n && isIdentBody(sql[i])) ++i;
      std::string word(sql.substr(start, i - start));
      std::string upper = word;
      for (char& ch : upper) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      if (keywords().contains(upper)) {
        tok.type = TokenType::Keyword;
        tok.text = std::move(upper);
      } else {
        tok.type = TokenType::Identifier;
        tok.text = std::move(word);
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      std::size_t start = i;
      bool is_real = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_real = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_real = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      const std::string text(sql.substr(start, i - start));
      if (is_real) {
        const auto v = util::parseReal(text);
        if (!v) throw SqlError("bad numeric literal: " + text);
        tok.type = TokenType::Real;
        tok.real_value = *v;
      } else {
        const auto v = util::parseInt(text);
        if (!v) throw SqlError("bad integer literal: " + text);
        tok.type = TokenType::Integer;
        tok.int_value = *v;
      }
      tok.text = text;
    } else if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            value.push_back('\'');
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          value.push_back(sql[i]);
          ++i;
        }
      }
      if (!closed) throw SqlError("unterminated string literal");
      tok.type = TokenType::String;
      tok.text = std::move(value);
    } else if (c == '"') {
      ++i;
      std::size_t start = i;
      while (i < n && sql[i] != '"') ++i;
      if (i >= n) throw SqlError("unterminated quoted identifier");
      tok.type = TokenType::Identifier;
      tok.text = std::string(sql.substr(start, i - start));
      ++i;
    } else {
      // Multi-character operators first.
      static constexpr std::string_view kTwoChar[] = {"<=", ">=", "<>", "!=", "=="};
      std::string_view rest = sql.substr(i);
      std::string sym;
      for (std::string_view two : kTwoChar) {
        if (util::startsWith(rest, two)) {
          sym = std::string(two);
          break;
        }
      }
      if (sym.empty()) {
        static constexpr std::string_view kOneChar = "()=<>,.;*+-/?";
        if (kOneChar.find(c) == std::string_view::npos) {
          throw SqlError(std::string("unexpected character '") + c + "' in SQL");
        }
        sym = std::string(1, c);
      }
      tok.type = TokenType::Symbol;
      tok.text = sym;
      i += sym.size();
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::End;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace perftrack::minidb::sql
