// minidb SQL front-end: lexer.
#pragma once

#include <string_view>
#include <vector>

#include "minidb/sql/token.h"

namespace perftrack::minidb::sql {

/// Tokenizes one SQL statement. Throws SqlError on unterminated strings or
/// unexpected characters. The returned vector always ends with an End token.
std::vector<Token> tokenize(std::string_view sql);

}  // namespace perftrack::minidb::sql
