#include "minidb/sql/parser.h"

#include "minidb/sql/lexer.h"
#include "util/error.h"

namespace perftrack::minidb::sql {

using util::SqlError;

ExprPtr Expr::literal(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Literal;
  e->value = std::move(v);
  return e;
}

ExprPtr Expr::columnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Column;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr Expr::binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Binary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view sql) : tokens_(tokenize(sql)) {}

  Statement parse() {
    Statement stmt;
    if (accept("EXPLAIN")) {
      stmt.explain = true;
      stmt.explain_analyze = accept("ANALYZE");
    }
    const Token& t = peek();
    if (t.isKeyword("SELECT")) {
      stmt.kind = Statement::Kind::Select;
      stmt.select = std::make_unique<SelectStmt>(parseSelect());
    } else if (t.isKeyword("INSERT")) {
      stmt.kind = Statement::Kind::Insert;
      stmt.insert = std::make_unique<InsertStmt>(parseInsert());
    } else if (t.isKeyword("UPDATE")) {
      stmt.kind = Statement::Kind::Update;
      stmt.update = std::make_unique<UpdateStmt>(parseUpdate());
    } else if (t.isKeyword("DELETE")) {
      stmt.kind = Statement::Kind::Delete;
      stmt.del = std::make_unique<DeleteStmt>(parseDelete());
    } else if (t.isKeyword("CREATE")) {
      next();
      const bool unique = accept("UNIQUE");
      if (!unique && accept("TABLE")) {
        stmt.kind = Statement::Kind::CreateTable;
        stmt.create_table = std::make_unique<CreateTableStmt>(parseCreateTable());
      } else {
        expect("INDEX");
        stmt.kind = Statement::Kind::CreateIndex;
        stmt.create_index = std::make_unique<CreateIndexStmt>(parseCreateIndex(unique));
      }
    } else if (t.isKeyword("DROP")) {
      stmt.kind = Statement::Kind::Drop;
      stmt.drop = std::make_unique<DropStmt>(parseDrop());
    } else if (t.isKeyword("VACUUM")) {
      next();
      stmt.kind = Statement::Kind::Vacuum;
      stmt.vacuum = std::make_unique<VacuumStmt>();
    } else if (t.isKeyword("BEGIN") || t.isKeyword("COMMIT") || t.isKeyword("ROLLBACK")) {
      stmt.kind = Statement::Kind::Txn;
      auto txn = std::make_unique<TxnStmt>();
      txn->kind = t.isKeyword("BEGIN")    ? TxnStmt::Kind::Begin
                  : t.isKeyword("COMMIT") ? TxnStmt::Kind::Commit
                                          : TxnStmt::Kind::Rollback;
      next();
      stmt.txn = std::move(txn);
    } else {
      fail("expected a statement");
    }
    acceptSymbol(";");
    if (peek().type != TokenType::End) fail("trailing input after statement");
    if (stmt.explain_analyze && stmt.kind != Statement::Kind::Select) {
      fail("EXPLAIN ANALYZE supports only SELECT statements");
    }
    stmt.param_count = param_count_;
    return stmt;
  }

 private:
  // --- token helpers ---
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& next() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool accept(std::string_view kw) {
    if (peek().isKeyword(kw)) {
      next();
      return true;
    }
    return false;
  }
  bool acceptSymbol(std::string_view sym) {
    if (peek().isSymbol(sym)) {
      next();
      return true;
    }
    return false;
  }
  void expect(std::string_view kw) {
    if (!accept(kw)) fail("expected " + std::string(kw));
  }
  void expectSymbol(std::string_view sym) {
    if (!acceptSymbol(sym)) fail("expected '" + std::string(sym) + "'");
  }
  [[noreturn]] void fail(const std::string& message) const {
    throw SqlError("SQL parse error at offset " + std::to_string(peek().offset) + ": " +
                   message + " (near '" + peek().text + "')");
  }

  std::string identifier(const char* what) {
    const Token& t = peek();
    // Permit non-reserved keywords (type names, agg names) as identifiers in
    // contexts where a name is required.
    if (t.type == TokenType::Identifier || t.type == TokenType::Keyword) {
      std::string name = t.text;
      next();
      return name;
    }
    fail(std::string("expected ") + what);
  }

  // --- statements ---
  SelectStmt parseSelect() {
    expect("SELECT");
    SelectStmt sel;
    sel.distinct = accept("DISTINCT");
    do {
      SelectItem item;
      if (peek().isSymbol("*")) {
        next();
        item.expr = nullptr;
      } else {
        item.expr = parseExpr();
        if (accept("AS")) {
          item.alias = identifier("output alias");
        } else if (peek().type == TokenType::Identifier) {
          item.alias = identifier("output alias");
        }
      }
      sel.items.push_back(std::move(item));
    } while (acceptSymbol(","));

    if (accept("FROM")) {
      sel.from.push_back(parseTableRef(/*first=*/true));
      while (true) {
        if (accept("JOIN")) {
          sel.from.push_back(parseTableRef(false));
        } else if (accept("INNER")) {
          expect("JOIN");
          sel.from.push_back(parseTableRef(false));
        } else if (accept("LEFT")) {
          accept("OUTER");
          expect("JOIN");
          TableRef ref = parseTableRef(false);
          ref.left_join = true;
          sel.from.push_back(std::move(ref));
        } else if (acceptSymbol(",")) {
          // Comma join: cross product constrained by WHERE.
          TableRef ref = parseTableRef(true);
          sel.from.push_back(std::move(ref));
        } else {
          break;
        }
      }
    }
    if (accept("WHERE")) sel.where = parseExpr();
    if (accept("GROUP")) {
      expect("BY");
      do {
        sel.group_by.push_back(parseExpr());
      } while (acceptSymbol(","));
    }
    if (accept("HAVING")) sel.having = parseExpr();
    if (accept("ORDER")) {
      expect("BY");
      do {
        OrderItem item;
        item.expr = parseExpr();
        if (accept("DESC")) {
          item.descending = true;
        } else {
          accept("ASC");
        }
        sel.order_by.push_back(std::move(item));
      } while (acceptSymbol(","));
    }
    if (accept("LIMIT")) {
      if (peek().type != TokenType::Integer) fail("expected LIMIT count");
      sel.limit = next().int_value;
      if (accept("OFFSET")) {
        if (peek().type != TokenType::Integer) fail("expected OFFSET count");
        sel.offset = next().int_value;
      }
    }
    return sel;
  }

  TableRef parseTableRef(bool first) {
    TableRef ref;
    ref.table = identifier("table name");
    ref.alias = ref.table;
    if (accept("AS")) {
      ref.alias = identifier("table alias");
    } else if (peek().type == TokenType::Identifier) {
      ref.alias = identifier("table alias");
    }
    if (!first) {
      expect("ON");
      ref.join_on = parseExpr();
    }
    return ref;
  }

  InsertStmt parseInsert() {
    expect("INSERT");
    expect("INTO");
    InsertStmt ins;
    ins.table = identifier("table name");
    if (acceptSymbol("(")) {
      do {
        ins.columns.push_back(identifier("column name"));
      } while (acceptSymbol(","));
      expectSymbol(")");
    }
    expect("VALUES");
    do {
      expectSymbol("(");
      std::vector<ExprPtr> row;
      do {
        row.push_back(parseExpr());
      } while (acceptSymbol(","));
      expectSymbol(")");
      ins.rows.push_back(std::move(row));
    } while (acceptSymbol(","));
    return ins;
  }

  UpdateStmt parseUpdate() {
    expect("UPDATE");
    UpdateStmt upd;
    upd.table = identifier("table name");
    expect("SET");
    do {
      std::string column = identifier("column name");
      expectSymbol("=");
      upd.assignments.emplace_back(std::move(column), parseExpr());
    } while (acceptSymbol(","));
    if (accept("WHERE")) upd.where = parseExpr();
    return upd;
  }

  DeleteStmt parseDelete() {
    expect("DELETE");
    expect("FROM");
    DeleteStmt del;
    del.table = identifier("table name");
    if (accept("WHERE")) del.where = parseExpr();
    return del;
  }

  CreateTableStmt parseCreateTable() {
    CreateTableStmt ct;
    if (accept("IF")) {
      expect("NOT");
      expect("EXISTS");
      ct.if_not_exists = true;
    }
    ct.table = identifier("table name");
    expectSymbol("(");
    do {
      std::string name = identifier("column name");
      ColumnType type = ColumnType::Text;
      if (accept("INTEGER")) {
        type = ColumnType::Integer;
      } else if (accept("REAL")) {
        type = ColumnType::Real;
      } else if (accept("TEXT")) {
        type = ColumnType::Text;
      } else {
        fail("expected a column type (INTEGER, REAL, TEXT)");
      }
      if (accept("PRIMARY")) {
        expect("KEY");
        if (ct.primary_key >= 0) fail("multiple PRIMARY KEY columns");
        ct.primary_key = static_cast<int>(ct.columns.size());
      }
      ct.columns.emplace_back(std::move(name), type);
    } while (acceptSymbol(","));
    expectSymbol(")");
    return ct;
  }

  CreateIndexStmt parseCreateIndex(bool unique) {
    CreateIndexStmt ci;
    ci.unique = unique;
    if (accept("IF")) {
      expect("NOT");
      expect("EXISTS");
      ci.if_not_exists = true;
    }
    ci.index = identifier("index name");
    expect("ON");
    ci.table = identifier("table name");
    expectSymbol("(");
    do {
      ci.columns.push_back(identifier("column name"));
    } while (acceptSymbol(","));
    expectSymbol(")");
    return ci;
  }

  DropStmt parseDrop() {
    expect("DROP");
    DropStmt drop;
    if (accept("TABLE")) {
      drop.what = DropStmt::What::Table;
    } else {
      expect("INDEX");
      drop.what = DropStmt::What::Index;
    }
    if (accept("IF")) {
      expect("EXISTS");
      drop.if_exists = true;
    }
    drop.name = identifier("name");
    return drop;
  }

  // --- expressions (precedence climbing) ---
  // OR < AND < NOT < comparison/IS/IN/LIKE/BETWEEN < add < mul < unary < atom
  ExprPtr parseExpr() { return parseOr(); }

  ExprPtr parseOr() {
    ExprPtr lhs = parseAnd();
    while (accept("OR")) {
      lhs = Expr::binary(BinaryOp::Or, std::move(lhs), parseAnd());
    }
    return lhs;
  }

  ExprPtr parseAnd() {
    ExprPtr lhs = parseNot();
    while (accept("AND")) {
      lhs = Expr::binary(BinaryOp::And, std::move(lhs), parseNot());
    }
    return lhs;
  }

  ExprPtr parseNot() {
    if (accept("NOT")) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Not;
      e->lhs = parseNot();
      return e;
    }
    return parseComparison();
  }

  ExprPtr parseComparison() {
    ExprPtr lhs = parseAdditive();
    const Token& t = peek();
    if (t.type == TokenType::Symbol) {
      BinaryOp op;
      bool matched = true;
      if (t.text == "=" || t.text == "==") {
        op = BinaryOp::Eq;
      } else if (t.text == "<>" || t.text == "!=") {
        op = BinaryOp::Ne;
      } else if (t.text == "<") {
        op = BinaryOp::Lt;
      } else if (t.text == "<=") {
        op = BinaryOp::Le;
      } else if (t.text == ">") {
        op = BinaryOp::Gt;
      } else if (t.text == ">=") {
        op = BinaryOp::Ge;
      } else {
        matched = false;
        op = BinaryOp::Eq;
      }
      if (matched) {
        next();
        return Expr::binary(op, std::move(lhs), parseAdditive());
      }
    }
    if (accept("IS")) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::IsNull;
      e->negated = accept("NOT");
      expect("NULL");
      e->lhs = std::move(lhs);
      return e;
    }
    bool negated = false;
    if (peek().isKeyword("NOT") &&
        (peek(1).isKeyword("IN") || peek(1).isKeyword("LIKE") || peek(1).isKeyword("BETWEEN"))) {
      next();
      negated = true;
    }
    if (accept("LIKE")) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Like;
      e->negated = negated;
      e->lhs = std::move(lhs);
      if (peek().type != TokenType::String) fail("LIKE pattern must be a string literal");
      e->value = Value(next().text);
      return e;
    }
    if (accept("IN")) {
      auto e = std::make_unique<Expr>();
      e->negated = negated;
      e->lhs = std::move(lhs);
      expectSymbol("(");
      if (peek().isKeyword("SELECT")) {
        e->kind = Expr::Kind::InSelect;
        e->subquery = std::make_unique<SelectStmt>(parseSelect());
      } else {
        e->kind = Expr::Kind::InList;
        do {
          e->list.push_back(parseExpr());
        } while (acceptSymbol(","));
      }
      expectSymbol(")");
      return e;
    }
    if (accept("BETWEEN")) {
      // x BETWEEN a AND b  ==>  (x >= a) AND (x <= b); NOT BETWEEN negates.
      ExprPtr low = parseAdditive();
      expect("AND");
      ExprPtr high = parseAdditive();
      ExprPtr lhs_copy = cloneExpr(*lhs);
      ExprPtr both = Expr::binary(
          BinaryOp::And, Expr::binary(BinaryOp::Ge, std::move(lhs), std::move(low)),
          Expr::binary(BinaryOp::Le, std::move(lhs_copy), std::move(high)));
      if (!negated) return both;
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Not;
      e->lhs = std::move(both);
      return e;
    }
    if (negated) fail("dangling NOT");
    return lhs;
  }

  ExprPtr parseAdditive() {
    ExprPtr lhs = parseMultiplicative();
    while (true) {
      if (acceptSymbol("+")) {
        lhs = Expr::binary(BinaryOp::Add, std::move(lhs), parseMultiplicative());
      } else if (acceptSymbol("-")) {
        lhs = Expr::binary(BinaryOp::Sub, std::move(lhs), parseMultiplicative());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parseMultiplicative() {
    ExprPtr lhs = parseUnary();
    while (true) {
      if (acceptSymbol("*")) {
        lhs = Expr::binary(BinaryOp::Mul, std::move(lhs), parseUnary());
      } else if (acceptSymbol("/")) {
        lhs = Expr::binary(BinaryOp::Div, std::move(lhs), parseUnary());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parseUnary() {
    if (acceptSymbol("-")) {
      // Fold negation into numeric literals; otherwise 0 - x.
      ExprPtr operand = parseUnary();
      if (operand->kind == Expr::Kind::Literal && operand->value.isInt()) {
        operand->value = Value(-operand->value.asInt());
        return operand;
      }
      if (operand->kind == Expr::Kind::Literal && operand->value.isReal()) {
        operand->value = Value(-operand->value.asReal());
        return operand;
      }
      return Expr::binary(BinaryOp::Sub, Expr::literal(Value(std::int64_t{0})),
                          std::move(operand));
    }
    return parseAtom();
  }

  ExprPtr parseAtom() {
    const Token& t = peek();
    if (t.type == TokenType::Integer) {
      next();
      return Expr::literal(Value(t.int_value));
    }
    if (t.type == TokenType::Real) {
      next();
      return Expr::literal(Value(t.real_value));
    }
    if (t.type == TokenType::String) {
      next();
      return Expr::literal(Value(t.text));
    }
    if (t.isKeyword("NULL")) {
      next();
      return Expr::literal(Value::null());
    }
    if (t.isSymbol("?")) {
      next();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Param;
      e->param_index = param_count_++;
      return e;
    }
    if (t.isKeyword("COUNT") || t.isKeyword("SUM") || t.isKeyword("AVG") ||
        t.isKeyword("MIN") || t.isKeyword("MAX")) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Aggregate;
      e->agg = t.isKeyword("COUNT") ? AggFunc::Count
               : t.isKeyword("SUM") ? AggFunc::Sum
               : t.isKeyword("AVG") ? AggFunc::Avg
               : t.isKeyword("MIN") ? AggFunc::Min
                                    : AggFunc::Max;
      next();
      expectSymbol("(");
      if (peek().isSymbol("*")) {
        if (e->agg != AggFunc::Count) fail("only COUNT accepts *");
        next();
      } else {
        e->agg_distinct = accept("DISTINCT");
        e->lhs = parseExpr();
      }
      expectSymbol(")");
      return e;
    }
    if (acceptSymbol("(")) {
      ExprPtr inner = parseExpr();
      expectSymbol(")");
      return inner;
    }
    if (t.type == TokenType::Identifier) {
      std::string first = t.text;
      next();
      if (acceptSymbol(".")) {
        std::string column = identifier("column name");
        return Expr::columnRef(std::move(first), std::move(column));
      }
      return Expr::columnRef("", std::move(first));
    }
    fail("expected an expression");
  }

  // Deep copy, used by BETWEEN desugaring.
  static ExprPtr cloneExpr(const Expr& src) {
    if (src.subquery) {
      // BETWEEN only clones additive expressions; a subquery here would be
      // a grammar hole, not a user mistake.
      throw SqlError("internal: cannot clone a subquery expression");
    }
    auto e = std::make_unique<Expr>();
    e->kind = src.kind;
    e->value = src.value;
    e->table = src.table;
    e->column = src.column;
    e->op = src.op;
    e->negated = src.negated;
    e->param_index = src.param_index;
    e->agg = src.agg;
    e->agg_distinct = src.agg_distinct;
    if (src.lhs) e->lhs = cloneExpr(*src.lhs);
    if (src.rhs) e->rhs = cloneExpr(*src.rhs);
    for (const ExprPtr& item : src.list) e->list.push_back(cloneExpr(*item));
    return e;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int param_count_ = 0;  // '?' placeholders seen, in left-to-right order
};

}  // namespace

Statement parseStatement(std::string_view sql) {
  return Parser(sql).parse();
}

}  // namespace perftrack::minidb::sql
