// minidb SQL front-end: recursive-descent parser.
#pragma once

#include <string_view>

#include "minidb/sql/ast.h"

namespace perftrack::minidb::sql {

/// Parses exactly one statement (an optional trailing ';' is allowed).
/// Throws SqlError with a position-annotated message on syntax errors.
Statement parseStatement(std::string_view sql);

}  // namespace perftrack::minidb::sql
