// minidb SQL execution pipeline: planning, expression evaluation, and the
// Volcano-style operator tree (see pipeline.h for the shape).
#include "minidb/sql/pipeline.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>

#include "minidb/keycodec.h"
#include "minidb/sql/exec_pool.h"
#include "minidb/sql/executor.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/strings.h"

namespace perftrack::minidb::sql {

using util::SqlError;

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

namespace {

bool likeMatch(std::string_view text, std::string_view pattern) {
  // Classic two-pointer wildcard matcher: '%' = any run, '_' = any one char.
  std::size_t t = 0;
  std::size_t p = 0;
  std::size_t star_p = std::string_view::npos;
  std::size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Value arith(BinaryOp op, const Value& a, const Value& b) {
  if (a.isNull() || b.isNull()) return Value::null();
  if (a.isInt() && b.isInt()) {
    const std::int64_t x = a.asInt();
    const std::int64_t y = b.asInt();
    switch (op) {
      case BinaryOp::Add: return Value(x + y);
      case BinaryOp::Sub: return Value(x - y);
      case BinaryOp::Mul: return Value(x * y);
      case BinaryOp::Div:
        if (y == 0) return Value::null();
        return Value(x / y);
      default: break;
    }
  }
  const double x = a.asReal();
  const double y = b.asReal();
  switch (op) {
    case BinaryOp::Add: return Value(x + y);
    case BinaryOp::Sub: return Value(x - y);
    case BinaryOp::Mul: return Value(x * y);
    case BinaryOp::Div:
      if (y == 0.0) return Value::null();
      return Value(x / y);
    default: break;
  }
  throw SqlError("arith: not an arithmetic operator");
}

Value compare(BinaryOp op, const Value& a, const Value& b) {
  // SQL three-valued logic collapsed: comparisons against NULL are false.
  if (a.isNull() || b.isNull()) return Value(std::int64_t{0});
  const int c = a.compare(b);
  bool result = false;
  switch (op) {
    case BinaryOp::Eq: result = c == 0; break;
    case BinaryOp::Ne: result = c != 0; break;
    case BinaryOp::Lt: result = c < 0; break;
    case BinaryOp::Le: result = c <= 0; break;
    case BinaryOp::Gt: result = c > 0; break;
    case BinaryOp::Ge: result = c >= 0; break;
    default: throw SqlError("compare: not a comparison operator");
  }
  return Value(std::int64_t{result ? 1 : 0});
}

}  // namespace

bool truthy(const Value& v) {
  if (v.isNull()) return false;
  if (v.isInt()) return v.asInt() != 0;
  if (v.isReal()) return v.asReal() != 0.0;
  return !v.asText().empty();
}

Value evaluate(const Expr& e, const Tuple& tuple) {
  switch (e.kind) {
    case Expr::Kind::Literal:
    case Expr::Kind::Param:  // bind() stored the parameter value in `value`
      return e.value;
    case Expr::Kind::Column: {
      const Row* row = tuple.at(e.bound_table);
      if (row == nullptr) throw SqlError("internal: unbound tuple slot");
      return row->at(e.bound_col);
    }
    case Expr::Kind::Binary: {
      switch (e.op) {
        case BinaryOp::And: {
          if (!truthy(evaluate(*e.lhs, tuple))) return Value(std::int64_t{0});
          return Value(std::int64_t{truthy(evaluate(*e.rhs, tuple)) ? 1 : 0});
        }
        case BinaryOp::Or: {
          if (truthy(evaluate(*e.lhs, tuple))) return Value(std::int64_t{1});
          return Value(std::int64_t{truthy(evaluate(*e.rhs, tuple)) ? 1 : 0});
        }
        case BinaryOp::Add:
        case BinaryOp::Sub:
        case BinaryOp::Mul:
        case BinaryOp::Div:
          return arith(e.op, evaluate(*e.lhs, tuple), evaluate(*e.rhs, tuple));
        default:
          return compare(e.op, evaluate(*e.lhs, tuple), evaluate(*e.rhs, tuple));
      }
    }
    case Expr::Kind::Not:
      return Value(std::int64_t{truthy(evaluate(*e.lhs, tuple)) ? 0 : 1});
    case Expr::Kind::IsNull: {
      const bool is_null = evaluate(*e.lhs, tuple).isNull();
      return Value(std::int64_t{(is_null != e.negated) ? 1 : 0});
    }
    case Expr::Kind::Like: {
      const Value v = evaluate(*e.lhs, tuple);
      if (v.isNull()) return Value(std::int64_t{0});
      const bool hit = likeMatch(v.isText() ? v.asText() : v.toDisplayString(),
                                 e.value.asText());
      return Value(std::int64_t{(hit != e.negated) ? 1 : 0});
    }
    case Expr::Kind::InList: {
      const Value v = evaluate(*e.lhs, tuple);
      if (v.isNull()) return Value(std::int64_t{0});
      bool hit = false;
      for (const ExprPtr& item : e.list) {
        if (v.compare(evaluate(*item, tuple)) == 0) {
          hit = true;
          break;
        }
      }
      return Value(std::int64_t{(hit != e.negated) ? 1 : 0});
    }
    case Expr::Kind::InSelect: {
      const Value v = evaluate(*e.lhs, tuple);
      if (v.isNull()) return Value(std::int64_t{0});
      if (!e.subquery_values) {
        throw SqlError("internal: subquery was not materialized");
      }
      EncodedKey key;
      encodeValue(v, key);
      const bool hit = e.subquery_values->contains(key);
      return Value(std::int64_t{(hit != e.negated) ? 1 : 0});
    }
    case Expr::Kind::Aggregate:
      throw SqlError("aggregate used outside of an aggregating SELECT");
  }
  throw SqlError("internal: bad expression kind");
}

Value evalConst(const Expr& e) {
  static const Tuple kEmpty;
  return evaluate(e, kEmpty);
}

// ---------------------------------------------------------------------------
// Binding / analysis
// ---------------------------------------------------------------------------

int Binder::bind(Expr& e) const {
  int max_table = -1;
  bindInner(e, max_table);
  return max_table;
}

void Binder::bindInner(Expr& e, int& max_table) const {
  if (e.kind == Expr::Kind::Column) {
    resolve(e);
    max_table = std::max(max_table, e.bound_table);
    return;
  }
  if (e.lhs) bindInner(*e.lhs, max_table);
  if (e.rhs) bindInner(*e.rhs, max_table);
  for (const ExprPtr& item : e.list) bindInner(*item, max_table);
  // Subqueries bind against their own FROM list (uncorrelated); the
  // executor materializes them before evaluation.
}

void Binder::resolve(Expr& e) const {
  // Always (re)resolve: a cached statement may be replanned after DDL
  // changed column ordinals, so stale annotations must not survive.
  int found_table = -1;
  int found_col = -1;
  for (std::size_t i = 0; i < from_.size(); ++i) {
    if (!e.table.empty() && !util::iequals(e.table, from_[i].alias)) continue;
    const int col = from_[i].def->columnIndex(e.column);
    if (col < 0) continue;
    if (found_table >= 0) {
      throw SqlError("ambiguous column reference: " + e.column);
    }
    found_table = static_cast<int>(i);
    found_col = col;
  }
  if (found_table < 0) {
    const std::string qual = e.table.empty() ? e.column : e.table + "." + e.column;
    throw SqlError("unknown column: " + qual);
  }
  e.bound_table = found_table;
  e.bound_col = found_col;
}

namespace {

void collectConjuncts(Expr* e, std::vector<Expr*>& out) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::Binary && e->op == BinaryOp::And) {
    collectConjuncts(e->lhs.get(), out);
    collectConjuncts(e->rhs.get(), out);
    return;
  }
  out.push_back(e);
}

void collectAggregates(Expr* e, std::vector<Expr*>& out) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::Aggregate) {
    e->agg_slot = static_cast<int>(out.size());
    out.push_back(e);
    // Aggregate arguments are evaluated per input tuple, not per group;
    // do not descend further.
    return;
  }
  collectAggregates(e->lhs.get(), out);
  collectAggregates(e->rhs.get(), out);
  for (const ExprPtr& item : e->list) collectAggregates(item.get(), out);
}

bool containsAggregate(const Expr* e) {
  if (e == nullptr) return false;
  if (e->kind == Expr::Kind::Aggregate) return true;
  if (containsAggregate(e->lhs.get()) || containsAggregate(e->rhs.get())) return true;
  for (const ExprPtr& item : e->list) {
    if (containsAggregate(item.get())) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Expression walking (parameter binding)
// ---------------------------------------------------------------------------

void forEachExpr(SelectStmt& sel, const std::function<void(Expr&)>& fn);

void forEachExpr(Expr* e, const std::function<void(Expr&)>& fn) {
  if (e == nullptr) return;
  fn(*e);
  forEachExpr(e->lhs.get(), fn);
  forEachExpr(e->rhs.get(), fn);
  for (const ExprPtr& item : e->list) forEachExpr(item.get(), fn);
  if (e->subquery) forEachExpr(*e->subquery, fn);
}

void forEachExpr(SelectStmt& sel, const std::function<void(Expr&)>& fn) {
  for (SelectItem& item : sel.items) forEachExpr(item.expr.get(), fn);
  for (TableRef& ref : sel.from) forEachExpr(ref.join_on.get(), fn);
  forEachExpr(sel.where.get(), fn);
  for (ExprPtr& e : sel.group_by) forEachExpr(e.get(), fn);
  forEachExpr(sel.having.get(), fn);
  for (OrderItem& item : sel.order_by) forEachExpr(item.expr.get(), fn);
}

void forEachExpr(Statement& stmt, const std::function<void(Expr&)>& fn) {
  switch (stmt.kind) {
    case Statement::Kind::Select:
      forEachExpr(*stmt.select, fn);
      break;
    case Statement::Kind::Insert:
      for (auto& row : stmt.insert->rows) {
        for (ExprPtr& e : row) forEachExpr(e.get(), fn);
      }
      break;
    case Statement::Kind::Update:
      for (auto& [name, e] : stmt.update->assignments) forEachExpr(e.get(), fn);
      forEachExpr(stmt.update->where.get(), fn);
      break;
    case Statement::Kind::Delete:
      forEachExpr(stmt.del->where.get(), fn);
      break;
    default:
      break;  // DDL/Txn/Vacuum carry no expressions
  }
}

}  // namespace

void bindParamValues(Statement& stmt, const std::vector<Value>& params) {
  forEachExpr(stmt, [&](Expr& e) {
    if (e.kind == Expr::Kind::Param) {
      e.value = params.at(static_cast<std::size_t>(e.param_index));
    }
  });
}

// ---------------------------------------------------------------------------
// Aggregation state
// ---------------------------------------------------------------------------

namespace {

struct AggState {
  std::int64_t count = 0;
  std::int64_t isum = 0;
  double rsum = 0.0;
  bool saw_real = false;
  Value min;
  Value max;
  std::set<EncodedKey> distinct;

  void add(const Value& v, bool distinct_only) {
    if (v.isNull()) return;
    if (distinct_only) {
      EncodedKey key;
      encodeValue(v, key);
      if (!distinct.insert(key).second) return;
    }
    ++count;
    if (v.isReal()) {
      saw_real = true;
      rsum += v.asReal();
    } else if (v.isInt()) {
      isum += v.asInt();
      rsum += static_cast<double>(v.asInt());
    }
    if (min.isNull() || v.compare(min) < 0) min = v;
    if (max.isNull() || v.compare(max) > 0) max = v;
  }

  Value result(AggFunc fn) const {
    switch (fn) {
      case AggFunc::Count: return Value(count);
      case AggFunc::Sum:
        if (count == 0) return Value::null();
        return saw_real ? Value(rsum) : Value(isum);
      case AggFunc::Avg:
        if (count == 0) return Value::null();
        return Value(rsum / static_cast<double>(count));
      case AggFunc::Min: return min;
      case AggFunc::Max: return max;
    }
    return Value::null();
  }
};

struct Group {
  Row key_values;
  std::vector<Row> first_rows;  // deep copy of the group's first input tuple
  std::vector<AggState> aggs;
};

/// Evaluates an expression in grouped mode: Aggregate nodes read their
/// accumulated slot; everything else evaluates against the group's first
/// input tuple (SQLite-style bare-column semantics).
Value evaluateGrouped(const Expr& e, const Group& g) {
  if (e.kind == Expr::Kind::Aggregate) {
    return g.aggs.at(e.agg_slot).result(e.agg);
  }
  switch (e.kind) {
    case Expr::Kind::Literal:
    case Expr::Kind::Param:
      return e.value;
    case Expr::Kind::Column:
      return g.first_rows.at(e.bound_table).at(e.bound_col);
    case Expr::Kind::Binary: {
      switch (e.op) {
        case BinaryOp::And:
          return Value(std::int64_t{truthy(evaluateGrouped(*e.lhs, g)) &&
                                            truthy(evaluateGrouped(*e.rhs, g))
                                        ? 1
                                        : 0});
        case BinaryOp::Or:
          return Value(std::int64_t{truthy(evaluateGrouped(*e.lhs, g)) ||
                                            truthy(evaluateGrouped(*e.rhs, g))
                                        ? 1
                                        : 0});
        case BinaryOp::Add:
        case BinaryOp::Sub:
        case BinaryOp::Mul:
        case BinaryOp::Div:
          return arith(e.op, evaluateGrouped(*e.lhs, g), evaluateGrouped(*e.rhs, g));
        default:
          return compare(e.op, evaluateGrouped(*e.lhs, g), evaluateGrouped(*e.rhs, g));
      }
    }
    case Expr::Kind::Not:
      return Value(std::int64_t{truthy(evaluateGrouped(*e.lhs, g)) ? 0 : 1});
    case Expr::Kind::IsNull: {
      const bool is_null = evaluateGrouped(*e.lhs, g).isNull();
      return Value(std::int64_t{(is_null != e.negated) ? 1 : 0});
    }
    case Expr::Kind::Like: {
      const Value v = evaluateGrouped(*e.lhs, g);
      if (v.isNull()) return Value(std::int64_t{0});
      const bool hit = likeMatch(v.isText() ? v.asText() : v.toDisplayString(),
                                 e.value.asText());
      return Value(std::int64_t{(hit != e.negated) ? 1 : 0});
    }
    case Expr::Kind::InList: {
      const Value v = evaluateGrouped(*e.lhs, g);
      if (v.isNull()) return Value(std::int64_t{0});
      bool hit = false;
      for (const ExprPtr& item : e.list) {
        if (v.compare(evaluateGrouped(*item, g)) == 0) {
          hit = true;
          break;
        }
      }
      return Value(std::int64_t{(hit != e.negated) ? 1 : 0});
    }
    case Expr::Kind::InSelect: {
      const Value v = evaluateGrouped(*e.lhs, g);
      if (v.isNull()) return Value(std::int64_t{0});
      if (!e.subquery_values) {
        throw SqlError("internal: subquery was not materialized");
      }
      EncodedKey key;
      encodeValue(v, key);
      const bool hit = e.subquery_values->contains(key);
      return Value(std::int64_t{(hit != e.negated) ? 1 : 0});
    }
    case Expr::Kind::Aggregate:
      break;  // handled above
  }
  throw SqlError("internal: bad grouped expression");
}

}  // namespace

// ---------------------------------------------------------------------------
// Subquery materialization and plan construction
// ---------------------------------------------------------------------------

void materializeSubqueries(Expr* e, Database& db, bool use_indexes) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::InSelect) {
    if (!e->subquery) throw SqlError("internal: InSelect without a subquery");
    const ResultSet rs = execSelect(db, *e->subquery, use_indexes, /*explain=*/false);
    auto values = std::make_shared<std::set<std::string>>();
    for (const Row& row : rs.rows) {
      if (row.empty() || row[0].isNull()) continue;  // NULL never matches IN
      EncodedKey key;
      encodeValue(row[0], key);
      values->insert(std::move(key));
    }
    e->subquery_values = std::move(values);
  }
  materializeSubqueries(e->lhs.get(), db, use_indexes);
  materializeSubqueries(e->rhs.get(), db, use_indexes);
  for (const ExprPtr& item : e->list) {
    materializeSubqueries(item.get(), db, use_indexes);
  }
}

void materializePlanSubqueries(Database& db, SelectPlan& plan) {
  // A FROM-less SELECT never materializes (mirrors the historical early
  // return; an InSelect there fails at evaluation time instead).
  if (plan.from.empty()) return;
  SelectStmt& sel = *plan.sel;
  for (const SelectPlan::PlannedConjunct& pc : plan.conjuncts) {
    materializeSubqueries(pc.expr, db, plan.use_indexes);
  }
  for (const SelectPlan::OutputCol& out : plan.outputs) {
    materializeSubqueries(out.expr, db, plan.use_indexes);
  }
  if (sel.having) materializeSubqueries(sel.having.get(), db, plan.use_indexes);
  for (OrderItem& item : sel.order_by) {
    materializeSubqueries(item.expr.get(), db, plan.use_indexes);
  }
}

SelectPlan buildSelectPlan(Database& db, SelectStmt& sel, bool use_indexes,
                           bool invidx) {
  SelectPlan plan;
  plan.sel = &sel;
  plan.epoch = db.schemaEpoch();
  plan.use_indexes = use_indexes;
  plan.invidx = invidx;

  // --- resolve FROM ---
  for (const TableRef& ref : sel.from) {
    const TableDef* def = db.catalog().findTable(ref.table);
    if (def == nullptr) throw SqlError("no such table: " + ref.table);
    plan.from.push_back({def, ref.alias});
  }
  Binder binder(plan.from);

  if (plan.from.empty()) {
    // SELECT without FROM: items evaluate against an empty tuple at run time.
    for (SelectItem& item : sel.items) {
      if (!item.expr) throw SqlError("SELECT * requires a FROM clause");
      binder.bind(*item.expr);
      plan.outputs.push_back({item.expr.get(),
                              item.alias.empty() ? "expr" : item.alias});
    }
    return plan;
  }

  // --- expand '*' and bind select items ---
  for (SelectItem& item : sel.items) {
    if (!item.expr) {
      for (std::size_t t = 0; t < plan.from.size(); ++t) {
        for (std::size_t c = 0; c < plan.from[t].def->columns.size(); ++c) {
          ExprPtr e = Expr::columnRef(plan.from[t].alias,
                                      plan.from[t].def->columns[c].name);
          binder.bind(*e);
          plan.outputs.push_back({e.get(), plan.from[t].def->columns[c].name});
          plan.star_exprs.push_back(std::move(e));
        }
      }
      continue;
    }
    binder.bind(*item.expr);
    std::string name = item.alias;
    if (name.empty()) {
      name = item.expr->kind == Expr::Kind::Column ? item.expr->column : "expr";
    }
    plan.outputs.push_back({item.expr.get(), std::move(name)});
  }

  // --- gather and bind conjuncts (WHERE + every JOIN ... ON) ---
  auto addConjuncts = [&](Expr* root, int on_table) {
    std::vector<Expr*> raw;
    collectConjuncts(root, raw);
    for (Expr* e : raw) {
      SelectPlan::PlannedConjunct pc;
      pc.expr = e;
      pc.max_table = binder.bind(*e);
      pc.on_table = on_table;
      plan.conjuncts.push_back(pc);
    }
  };
  addConjuncts(sel.where.get(), -1);
  for (std::size_t t = 0; t < sel.from.size(); ++t) {
    addConjuncts(sel.from[t].join_on.get(), static_cast<int>(t));
  }

  // --- bind the remaining clauses ---
  for (ExprPtr& e : sel.group_by) binder.bind(*e);
  if (sel.having) binder.bind(*sel.having);
  for (OrderItem& item : sel.order_by) binder.bind(*item.expr);

  // --- aggregation analysis ---
  for (const SelectPlan::OutputCol& out : plan.outputs) {
    collectAggregates(out.expr, plan.aggregates);
  }
  if (sel.having) collectAggregates(sel.having.get(), plan.aggregates);
  for (OrderItem& item : sel.order_by) {
    collectAggregates(item.expr.get(), plan.aggregates);
  }
  plan.grouped = !sel.group_by.empty() || !plan.aggregates.empty();

  // --- choose an access path per table ---
  plan.paths.assign(plan.from.size(), {});
  if (!use_indexes) return plan;

  // Highest FROM index a bound expression depends on (-1 = constant).
  std::function<int(const Expr*)> maxTableOf = [&](const Expr* x) -> int {
    if (x == nullptr) return -1;
    int m = -1;
    if (x->kind == Expr::Kind::Column) m = x->bound_table;
    m = std::max(m, maxTableOf(x->lhs.get()));
    m = std::max(m, maxTableOf(x->rhs.get()));
    for (const ExprPtr& item : x->list) m = std::max(m, maxTableOf(item.get()));
    return m;
  };

  for (std::size_t t = 0; t < plan.from.size(); ++t) {
    SelectPlan::AccessPath& path = plan.paths[t];
    for (const SelectPlan::PlannedConjunct& pc : plan.conjuncts) {
      Expr* e = pc.expr;

      // col IN (list): sorted multi-point probe when every list element is
      // computable before table t is scanned. Beats a range path, loses to
      // a single-key equality.
      if (e->kind == Expr::Kind::InList && !e->negated) {
        Expr* col = e->lhs.get();
        if (!(col->kind == Expr::Kind::Column &&
              col->bound_table == static_cast<int>(t))) {
          continue;
        }
        int list_max = -1;
        for (const ExprPtr& item : e->list) {
          list_max = std::max(list_max, maxTableOf(item.get()));
        }
        if (list_max >= static_cast<int>(t)) continue;
        const IndexDef* index =
            db.catalog().indexOnColumn(plan.from[t].def->name, col->bound_col);
        if (index == nullptr) continue;
        if (path.kind == SelectPlan::AccessPath::Kind::IndexEqual ||
            path.kind == SelectPlan::AccessPath::Kind::IndexInList ||
            path.kind == SelectPlan::AccessPath::Kind::PostingInList) {
          continue;
        }
        path = {};
        path.kind = SelectPlan::AccessPath::Kind::IndexInList;
        // Integer key columns upgrade to the inverted index: one posting
        // lookup per key, rids emitted in the same per-key order as the
        // B-tree probes (the iterator falls back to the index at runtime
        // when the posting path must decline).
        if (invidx &&
            plan.from[t].def->columns[col->bound_col].type == ColumnType::Integer) {
          path.kind = SelectPlan::AccessPath::Kind::PostingInList;
        }
        path.index = index;
        path.key_column = col->bound_col;
        path.in_list = e;
        continue;
      }

      if (e->kind != Expr::Kind::Binary) continue;
      if (e->op != BinaryOp::Eq && e->op != BinaryOp::Lt && e->op != BinaryOp::Le &&
          e->op != BinaryOp::Gt && e->op != BinaryOp::Ge) {
        continue;
      }
      // Normalize: want column-of-t on the left.
      Expr* col = e->lhs.get();
      Expr* other = e->rhs.get();
      BinaryOp op = e->op;
      auto flip = [](BinaryOp o) {
        switch (o) {
          case BinaryOp::Lt: return BinaryOp::Gt;
          case BinaryOp::Le: return BinaryOp::Ge;
          case BinaryOp::Gt: return BinaryOp::Lt;
          case BinaryOp::Ge: return BinaryOp::Le;
          default: return o;
        }
      };
      if (!(col->kind == Expr::Kind::Column && col->bound_table == static_cast<int>(t))) {
        std::swap(col, other);
        op = flip(op);
        if (!(col->kind == Expr::Kind::Column &&
              col->bound_table == static_cast<int>(t))) {
          continue;
        }
      }
      // The other side must be computable before table t is scanned.
      if (maxTableOf(other) >= static_cast<int>(t)) continue;
      const IndexDef* index =
          db.catalog().indexOnColumn(plan.from[t].def->name, col->bound_col);
      if (index == nullptr) continue;
      if (op == BinaryOp::Eq) {
        path = {};
        path.kind = SelectPlan::AccessPath::Kind::IndexEqual;
        path.index = index;
        path.key_column = col->bound_col;
        path.equal_rhs = other;
        break;  // equality beats any other path
      }
      // Range bound: merge into an existing range path on the same column.
      if (path.kind == SelectPlan::AccessPath::Kind::IndexEqual ||
          path.kind == SelectPlan::AccessPath::Kind::IndexInList ||
          path.kind == SelectPlan::AccessPath::Kind::PostingInList) {
        continue;
      }
      if (path.kind == SelectPlan::AccessPath::Kind::IndexRange &&
          path.key_column != col->bound_col) {
        continue;
      }
      path.kind = SelectPlan::AccessPath::Kind::IndexRange;
      path.index = index;
      path.key_column = col->bound_col;
      if (op == BinaryOp::Gt || op == BinaryOp::Ge) {
        path.lower_rhs = other;
        path.lower_inclusive = op == BinaryOp::Ge;
      } else {
        path.upper_rhs = other;
        path.upper_inclusive = op == BinaryOp::Le;
      }
    }
  }
  return plan;
}

// ---------------------------------------------------------------------------
// SlotIter — per-FROM-entry row producers inside the nested loop
// ---------------------------------------------------------------------------

void appendActuals(std::string& line, const OpStats& stats) {
  char buf[128];
  if (stats.batches > 0) {
    std::snprintf(buf, sizeof(buf),
                  " (actual rows=%llu loops=%llu time=%.3fms batches=%llu"
                  " avg_fill=%.1f)",
                  static_cast<unsigned long long>(stats.rows),
                  static_cast<unsigned long long>(stats.loops),
                  static_cast<double>(stats.time_ns) / 1e6,
                  static_cast<unsigned long long>(stats.batches),
                  static_cast<double>(stats.batch_rows) /
                      static_cast<double>(stats.batches));
  } else {
    std::snprintf(buf, sizeof(buf), " (actual rows=%llu loops=%llu time=%.3fms)",
                  static_cast<unsigned long long>(stats.rows),
                  static_cast<unsigned long long>(stats.loops),
                  static_cast<double>(stats.time_ns) / 1e6);
  }
  line += buf;
}

namespace {

std::string indentOf(int depth) { return std::string(2 * depth, ' '); }

/// Exec-layer metrics, resolved once (pt_exec_pool_threads lives in
/// exec_pool.cpp).
struct ExecCounters {
  obs::Counter& morsels_dispatched;
  obs::Counter& parallel_queries;
  obs::Counter& batches;
  obs::Histogram& gather_wait_ms;
  obs::Histogram& batch_fill;
};

ExecCounters& execCounters() {
  auto& reg = obs::Registry::global();
  static ExecCounters* c = new ExecCounters{
      reg.counter("pt_exec_morsels_dispatched_total"),
      reg.counter("pt_exec_parallel_queries_total"),
      reg.counter("pt_exec_batches_total"),
      reg.histogram("pt_exec_gather_wait_ms"),
      reg.histogram("pt_exec_batch_fill_rows"),
  };
  return *c;
}

// ---------------------------------------------------------------------------
// Vectorized expression evaluation
//
// evalRows() is the batch twin of evaluate(): it computes `e` for every row
// index in `sel` against a single-table batch (Column refs resolve through
// bound_col; every expression reaching here binds table 0 only). `out` is
// sized to the batch and only the `sel` lanes are written. And/Or evaluate
// the right side only on the lanes the row path would have reached, so the
// two evaluators agree even on expressions that throw (e.g. an InSelect
// whose subquery was never materialized).
// ---------------------------------------------------------------------------

void evalRows(const Expr& e, const RowBatch& b,
              const std::vector<std::uint32_t>& sel, std::vector<Value>& out) {
  out.resize(b.nrows);
  switch (e.kind) {
    case Expr::Kind::Literal:
    case Expr::Kind::Param:
      for (const std::uint32_t i : sel) out[i] = e.value;
      return;
    case Expr::Kind::Column: {
      const std::vector<Value>& col =
          b.cols.at(static_cast<std::size_t>(e.bound_col));
      for (const std::uint32_t i : sel) out[i] = col[i];
      return;
    }
    case Expr::Kind::Binary: {
      switch (e.op) {
        case BinaryOp::And: {
          std::vector<Value> lhs;
          evalRows(*e.lhs, b, sel, lhs);
          std::vector<std::uint32_t> live;
          live.reserve(sel.size());
          for (const std::uint32_t i : sel) {
            if (truthy(lhs[i])) {
              live.push_back(i);
            } else {
              out[i] = Value(std::int64_t{0});
            }
          }
          std::vector<Value> rhs;
          evalRows(*e.rhs, b, live, rhs);
          for (const std::uint32_t i : live) {
            out[i] = Value(std::int64_t{truthy(rhs[i]) ? 1 : 0});
          }
          return;
        }
        case BinaryOp::Or: {
          std::vector<Value> lhs;
          evalRows(*e.lhs, b, sel, lhs);
          std::vector<std::uint32_t> live;
          live.reserve(sel.size());
          for (const std::uint32_t i : sel) {
            if (truthy(lhs[i])) {
              out[i] = Value(std::int64_t{1});
            } else {
              live.push_back(i);
            }
          }
          std::vector<Value> rhs;
          evalRows(*e.rhs, b, live, rhs);
          for (const std::uint32_t i : live) {
            out[i] = Value(std::int64_t{truthy(rhs[i]) ? 1 : 0});
          }
          return;
        }
        case BinaryOp::Add:
        case BinaryOp::Sub:
        case BinaryOp::Mul:
        case BinaryOp::Div: {
          std::vector<Value> lhs;
          std::vector<Value> rhs;
          evalRows(*e.lhs, b, sel, lhs);
          evalRows(*e.rhs, b, sel, rhs);
          for (const std::uint32_t i : sel) out[i] = arith(e.op, lhs[i], rhs[i]);
          return;
        }
        default: {
          std::vector<Value> lhs;
          std::vector<Value> rhs;
          evalRows(*e.lhs, b, sel, lhs);
          evalRows(*e.rhs, b, sel, rhs);
          for (const std::uint32_t i : sel) out[i] = compare(e.op, lhs[i], rhs[i]);
          return;
        }
      }
    }
    case Expr::Kind::Not: {
      std::vector<Value> lhs;
      evalRows(*e.lhs, b, sel, lhs);
      for (const std::uint32_t i : sel) {
        out[i] = Value(std::int64_t{truthy(lhs[i]) ? 0 : 1});
      }
      return;
    }
    case Expr::Kind::IsNull: {
      std::vector<Value> lhs;
      evalRows(*e.lhs, b, sel, lhs);
      for (const std::uint32_t i : sel) {
        out[i] = Value(std::int64_t{(lhs[i].isNull() != e.negated) ? 1 : 0});
      }
      return;
    }
    case Expr::Kind::Like: {
      std::vector<Value> lhs;
      evalRows(*e.lhs, b, sel, lhs);
      const std::string_view pattern = e.value.asText();
      for (const std::uint32_t i : sel) {
        const Value& v = lhs[i];
        if (v.isNull()) {
          out[i] = Value(std::int64_t{0});
          continue;
        }
        const bool hit =
            likeMatch(v.isText() ? v.asText() : v.toDisplayString(), pattern);
        out[i] = Value(std::int64_t{(hit != e.negated) ? 1 : 0});
      }
      return;
    }
    case Expr::Kind::InList: {
      std::vector<Value> lhs;
      evalRows(*e.lhs, b, sel, lhs);
      std::vector<std::vector<Value>> items(e.list.size());
      for (std::size_t k = 0; k < e.list.size(); ++k) {
        evalRows(*e.list[k], b, sel, items[k]);
      }
      for (const std::uint32_t i : sel) {
        if (lhs[i].isNull()) {
          out[i] = Value(std::int64_t{0});
          continue;
        }
        bool hit = false;
        for (const std::vector<Value>& item : items) {
          if (lhs[i].compare(item[i]) == 0) {
            hit = true;
            break;
          }
        }
        out[i] = Value(std::int64_t{(hit != e.negated) ? 1 : 0});
      }
      return;
    }
    case Expr::Kind::InSelect: {
      std::vector<Value> lhs;
      evalRows(*e.lhs, b, sel, lhs);
      for (const std::uint32_t i : sel) {
        if (lhs[i].isNull()) {
          out[i] = Value(std::int64_t{0});
          continue;
        }
        if (!e.subquery_values) {
          throw SqlError("internal: subquery was not materialized");
        }
        EncodedKey key;
        encodeValue(lhs[i], key);
        const bool hit = e.subquery_values->contains(key);
        out[i] = Value(std::int64_t{(hit != e.negated) ? 1 : 0});
      }
      return;
    }
    case Expr::Kind::Aggregate:
      throw SqlError("aggregate used outside of an aggregating SELECT");
  }
  throw SqlError("internal: bad expression kind");
}

/// Produces the candidate rows of one FROM entry for the current binding of
/// the earlier tuple slots. produced() counts rows emitted since open().
/// Like RowOp, the public surface wraps virtual do*() hooks so EXPLAIN
/// ANALYZE can account loops/rows/time per iterator stage.
class SlotIter {
 public:
  virtual ~SlotIter() = default;

  void open() {
    if (!stats_.timed) return doOpen();
    ++stats_.loops;
    const detail::OpTick tick(stats_);
    doOpen();
  }
  bool next(Row& out) {
    if (!stats_.timed) return doNext(out);
    const detail::OpTick tick(stats_);
    const bool ok = doNext(out);
    if (ok) ++stats_.rows;
    return ok;
  }
  /// Batch pull; returns false only at end of stream (a true return carries
  /// at least one live row).
  bool nextBatch(RowBatch& out) {
    if (!stats_.timed) return doNextBatch(out);
    const detail::OpTick tick(stats_);
    const bool ok = doNextBatch(out);
    if (ok) stats_.rows += out.active();
    return ok;
  }
  void close() {
    if (!stats_.timed) return doClose();
    const detail::OpTick tick(stats_);
    doClose();
  }
  void describe(std::vector<std::string>& lines, int depth) const {
    const std::size_t first = lines.size();
    doDescribe(lines, depth);
    if (stats_.timed && first < lines.size()) appendActuals(lines[first], stats_);
  }

  virtual void setAnalyze(bool on) { stats_.timed = on; }
  std::size_t produced() const { return produced_; }

  /// Appends this stage's OpStats pointer (children first is not required;
  /// the order only has to match between two chains built from the same
  /// plan, which GatherOp relies on to roll worker stats into the template
  /// tree it describes).
  virtual void collectStats(std::vector<OpStats*>& out) { out.push_back(&stats_); }

 protected:
  virtual void doOpen() = 0;
  virtual bool doNext(Row& out) = 0;
  /// Default adapter: loops doNext(), transposing rows into the batch's
  /// columns (Value moves, so string payloads are stolen, not copied).
  /// FilterIter overrides it to compact the selection vector instead.
  virtual bool doNextBatch(RowBatch& b) {
    b.clearRows();
    const std::size_t cap = b.capacity > 0 ? b.capacity : 1;
    Row row;
    while (b.nrows < cap && doNext(row)) {
      b.appendMoveValues(row);
      row.clear();
    }
    return b.nrows > 0;
  }
  virtual void doClose() = 0;
  virtual void doDescribe(std::vector<std::string>& lines, int depth) const = 0;

  std::size_t produced_ = 0;
  OpStats stats_;
};

class SeqScanIter : public SlotIter {
 public:
  SeqScanIter(Database& db, const SelectPlan::AccessPath& path,
              const SelectPlan::FromEntry& entry)
      : db_(&db), path_(&path), entry_(&entry) {}

  void doOpen() override {
    produced_ = 0;
    cur_.emplace(db_->openCursor(entry_->def->name));
  }
  bool doNext(Row& out) override {
    RecordId rid;
    if (!cur_ || !cur_->next(rid, out)) return false;
    ++produced_;
    return true;
  }
  void doClose() override { cur_.reset(); }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    lines.push_back(indentOf(depth) + path_->describe(*entry_));
  }

 private:
  Database* db_;
  const SelectPlan::AccessPath* path_;
  const SelectPlan::FromEntry* entry_;
  std::optional<Database::TableCursor> cur_;
};

class IndexEqualIter : public SlotIter {
 public:
  IndexEqualIter(Database& db, const SelectPlan::AccessPath& path,
                 const SelectPlan::FromEntry& entry, const Tuple& tuple)
      : db_(&db), path_(&path), entry_(&entry), tuple_(&tuple) {}

  void doOpen() override {
    produced_ = 0;
    cur_.reset();
    const Value key = evaluate(*path_->equal_rhs, *tuple_);
    if (!key.isNull()) {  // col = NULL matches nothing; may null-extend
      cur_.emplace(db_->openIndexEqual(*path_->index, {key}));
    }
  }
  bool doNext(Row& out) override {
    RecordId rid;
    if (!cur_ || !cur_->next(rid, out)) return false;
    ++produced_;
    return true;
  }
  void doClose() override { cur_.reset(); }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    lines.push_back(indentOf(depth) + path_->describe(*entry_));
  }

 private:
  Database* db_;
  const SelectPlan::AccessPath* path_;
  const SelectPlan::FromEntry* entry_;
  const Tuple* tuple_;
  std::optional<Database::IndexCursor> cur_;
};

/// Sorted multi-point probe: one B+-tree descent per distinct key, in key
/// order, instead of a heap scan with per-row membership.
class IndexInListIter : public SlotIter {
 public:
  IndexInListIter(Database& db, const SelectPlan::AccessPath& path,
                  const SelectPlan::FromEntry& entry, const Tuple& tuple)
      : db_(&db), path_(&path), entry_(&entry), tuple_(&tuple) {}

  void doOpen() override {
    produced_ = 0;
    cur_.reset();
    next_key_ = 0;
    keys_.clear();
    keys_.reserve(path_->in_list->list.size());
    for (const ExprPtr& item : path_->in_list->list) {
      Value v = evaluate(*item, *tuple_);
      if (!v.isNull()) keys_.push_back(std::move(v));
    }
    std::sort(keys_.begin(), keys_.end(),
              [](const Value& a, const Value& b) { return a.compare(b) < 0; });
    keys_.erase(std::unique(keys_.begin(), keys_.end(),
                            [](const Value& a, const Value& b) {
                              return a.compare(b) == 0;
                            }),
                keys_.end());
  }
  bool doNext(Row& out) override {
    RecordId rid;
    for (;;) {
      if (cur_ && cur_->next(rid, out)) {
        ++produced_;
        return true;
      }
      if (next_key_ >= keys_.size()) return false;
      cur_.emplace(db_->openIndexEqual(*path_->index, {keys_[next_key_++]}));
    }
  }
  void doClose() override {
    cur_.reset();
    keys_.clear();
    next_key_ = 0;
  }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    lines.push_back(indentOf(depth) + path_->describe(*entry_));
  }

 private:
  Database* db_;
  const SelectPlan::AccessPath* path_;
  const SelectPlan::FromEntry* entry_;
  const Tuple* tuple_;
  std::vector<Value> keys_;
  std::size_t next_key_ = 0;
  std::optional<Database::IndexCursor> cur_;
};

/// IN-list probe answered from the inverted index: each key's rid posting
/// is decoded and rows are fetched by RecordId. Packed rids are ascending
/// (page, slot), which is exactly the order a B+-tree point probe emits
/// rows for one key, so the row stream is byte-identical to
/// IndexInListIter's. Falls back to B-tree point probes when the index
/// declines (snapshot read, undecodable column) or a key is not an
/// integer.
class PostingInListIter : public SlotIter {
 public:
  PostingInListIter(Database& db, const SelectPlan::AccessPath& path,
                    const SelectPlan::FromEntry& entry, const Tuple& tuple)
      : db_(&db), path_(&path), entry_(&entry), tuple_(&tuple) {}

  void doOpen() override {
    produced_ = 0;
    probes_ = 0;
    hits_ = 0;
    cur_.reset();
    pcur_.reset();
    index_.reset();
    next_key_ = 0;
    keys_.clear();
    keys_.reserve(path_->in_list->list.size());
    bool all_int = true;
    for (const ExprPtr& item : path_->in_list->list) {
      Value v = evaluate(*item, *tuple_);
      if (v.isNull()) continue;  // col IN (..., NULL, ...) never matches NULL
      all_int = all_int && v.isInt();
      keys_.push_back(std::move(v));
    }
    std::sort(keys_.begin(), keys_.end(),
              [](const Value& a, const Value& b) { return a.compare(b) < 0; });
    keys_.erase(std::unique(keys_.begin(), keys_.end(),
                            [](const Value& a, const Value& b) {
                              return a.compare(b) == 0;
                            }),
                keys_.end());
    if (all_int) {
      index_ = db_->invidx().ridIndex(entry_->def->name, path_->key_column);
    } else {
      // Mixed-type key list: the manager never saw this probe, count the
      // fallback here (the manager counts its own declines).
      invidx::counters().fallbacks.inc();
    }
  }
  bool doNext(Row& out) override {
    for (;;) {
      if (index_) {
        if (pcur_ && pcur_->valid()) {
          const std::uint64_t packed = pcur_->value();
          pcur_->next();
          const RecordId rid{static_cast<PageId>(packed >> 16),
                             static_cast<std::uint16_t>(packed & 0xffff)};
          std::optional<Row> row = db_->readRow(entry_->def->name, rid);
          if (!row) continue;  // defensive: a valid index has no dangling rids
          out = std::move(*row);
          ++produced_;
          return true;
        }
        if (next_key_ >= keys_.size()) return false;
        ++probes_;
        invidx::counters().probes.inc();
        const invidx::PostingList* pl =
            index_->find(keys_[next_key_++].asInt());
        pcur_.reset();
        if (pl) {
          hits_ += pl->size();
          pcur_.emplace(pl->cursor());
        }
        continue;
      }
      // B-tree fallback, identical to IndexInListIter.
      RecordId rid;
      if (cur_ && cur_->next(rid, out)) {
        ++produced_;
        return true;
      }
      if (next_key_ >= keys_.size()) return false;
      cur_.emplace(db_->openIndexEqual(*path_->index, {keys_[next_key_++]}));
    }
  }
  void doClose() override {
    cur_.reset();
    pcur_.reset();
    index_.reset();
    keys_.clear();
    next_key_ = 0;
  }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    std::string line = indentOf(depth) + path_->describe(*entry_);
    if (probes_ > 0) {
      line += " [postings: " + std::to_string(probes_) + " probed, " +
              std::to_string(hits_) + " ids]";
    } else if (produced_ > 0 || next_key_ > 0) {
      line += " [btree fallback]";
    }
    lines.push_back(line);
  }

 private:
  Database* db_;
  const SelectPlan::AccessPath* path_;
  const SelectPlan::FromEntry* entry_;
  const Tuple* tuple_;
  std::shared_ptr<const invidx::RidIndex> index_;
  std::vector<Value> keys_;
  std::size_t next_key_ = 0;
  std::size_t probes_ = 0;
  std::size_t hits_ = 0;
  std::optional<invidx::PostingList::Cursor> pcur_;
  std::optional<Database::IndexCursor> cur_;
};

class IndexRangeIter : public SlotIter {
 public:
  IndexRangeIter(Database& db, const SelectPlan::AccessPath& path,
                 const SelectPlan::FromEntry& entry, const Tuple& tuple)
      : db_(&db), path_(&path), entry_(&entry), tuple_(&tuple) {}

  void doOpen() override {
    produced_ = 0;
    std::optional<Value> lower;
    std::optional<Value> upper;
    if (path_->lower_rhs) lower = evaluate(*path_->lower_rhs, *tuple_);
    if (path_->upper_rhs) upper = evaluate(*path_->upper_rhs, *tuple_);
    cur_.emplace(db_->openIndexRange(*path_->index, std::move(lower),
                                     path_->lower_inclusive, std::move(upper),
                                     path_->upper_inclusive));
  }
  bool doNext(Row& out) override {
    RecordId rid;
    if (!cur_ || !cur_->next(rid, out)) return false;
    ++produced_;
    return true;
  }
  void doClose() override { cur_.reset(); }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    lines.push_back(indentOf(depth) + path_->describe(*entry_));
  }

 private:
  Database* db_;
  const SelectPlan::AccessPath* path_;
  const SelectPlan::FromEntry* entry_;
  const Tuple* tuple_;
  std::optional<Database::IndexCursor> cur_;
};

/// Applies a conjunct list to the child's rows. Binds the candidate row into
/// its tuple slot while evaluating (the slot's final binding is re-set by the
/// nested loop once the row is accepted).
class FilterIter : public SlotIter {
 public:
  FilterIter(std::unique_ptr<SlotIter> child, std::vector<Expr*> conjuncts,
             Tuple& tuple, std::size_t slot, bool is_on)
      : child_(std::move(child)),
        conjuncts_(std::move(conjuncts)),
        tuple_(&tuple),
        slot_(slot),
        is_on_(is_on) {}

  void doOpen() override {
    produced_ = 0;
    child_->open();
  }
  bool doNext(Row& out) override {
    while (child_->next(out)) {
      (*tuple_)[slot_] = &out;
      bool pass = true;
      for (const Expr* e : conjuncts_) {
        if (!truthy(evaluate(*e, *tuple_))) {
          pass = false;
          break;
        }
      }
      (*tuple_)[slot_] = nullptr;
      if (pass) {
        ++produced_;
        return true;
      }
    }
    return false;
  }
  /// Vectorized only at slot 0 (every conjunct due there binds table 0, so
  /// evalRows needs no tuple context); inner join levels are always driven
  /// row-at-a-time and keep the tuple-binding path above.
  bool doNextBatch(RowBatch& b) override {
    if (slot_ != 0) return SlotIter::doNextBatch(b);
    for (;;) {
      if (!child_->nextBatch(b)) return false;
      for (const Expr* e : conjuncts_) {
        if (b.sel.empty()) break;
        evalRows(*e, b, b.sel, eval_scratch_);
        sel_scratch_.clear();
        for (const std::uint32_t i : b.sel) {
          if (truthy(eval_scratch_[i])) sel_scratch_.push_back(i);
        }
        b.sel.swap(sel_scratch_);
      }
      // A batch whose selection vector emptied stays internal: loop for the
      // next child batch rather than emitting a zero-row batch upstream.
      if (!b.sel.empty()) {
        produced_ += b.sel.size();
        return true;
      }
    }
  }
  void doClose() override { child_->close(); }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    lines.push_back(indentOf(depth) + (is_on_ ? "FILTER ON (" : "FILTER (") +
                    std::to_string(conjuncts_.size()) + " conjunct" +
                    (conjuncts_.size() == 1 ? "" : "s") + ")");
    child_->describe(lines, depth + 1);
  }
  void setAnalyze(bool on) override {
    stats_.timed = on;
    child_->setAnalyze(on);
  }
  void collectStats(std::vector<OpStats*>& out) override {
    out.push_back(&stats_);
    child_->collectStats(out);
  }

 private:
  std::unique_ptr<SlotIter> child_;
  std::vector<Expr*> conjuncts_;
  Tuple* tuple_;
  std::size_t slot_;
  bool is_on_;
  std::vector<Value> eval_scratch_;
  std::vector<std::uint32_t> sel_scratch_;
};

// ---------------------------------------------------------------------------
// NestedLoop — iterative join over the per-table SlotIter chains
// ---------------------------------------------------------------------------

/// Pull-based nested-loop join. LEFT JOIN follows standard semantics: a row
/// "matches" when it passes the table's ON conjuncts; if nothing matches,
/// one null-extended tuple is produced and only non-ON (WHERE) conjuncts
/// apply to it.
class NestedLoop {
 public:
  /// `level0` (optional) replaces the base scan/probe iterator of the first
  /// FROM entry; GatherOp feeds per-worker loops from a shared MorselSource
  /// this way while the filter chain and join levels stay identical.
  /// `batch_outer` turns off the batched outer side: morsel-fed worker loops
  /// need it off because they read the level-0 iterator's per-row rank after
  /// every next(), which pre-batching would run ahead of.
  NestedLoop(Database& db, SelectPlan& plan, std::size_t batch_rows,
             std::unique_ptr<SlotIter> level0 = nullptr, bool batch_outer = true)
      : plan_(&plan),
        batch_rows_(batch_rows > 0 ? batch_rows : 1),
        batch_outer_(batch_outer),
        tuple_(plan.from.size(), nullptr) {
    const SelectStmt& sel = *plan.sel;
    for (std::size_t t = 0; t < plan.from.size(); ++t) {
      Level lv;
      const SelectPlan::AccessPath& path = plan.paths[t];
      std::unique_ptr<SlotIter> it;
      if (t == 0 && level0) {
        it = std::move(level0);
      } else {
        switch (path.kind) {
          case SelectPlan::AccessPath::Kind::Scan:
            it = std::make_unique<SeqScanIter>(db, path, plan.from[t]);
            break;
          case SelectPlan::AccessPath::Kind::IndexEqual:
            it = std::make_unique<IndexEqualIter>(db, path, plan.from[t], tuple_);
            break;
          case SelectPlan::AccessPath::Kind::IndexInList:
            it = std::make_unique<IndexInListIter>(db, path, plan.from[t], tuple_);
            break;
          case SelectPlan::AccessPath::Kind::PostingInList:
            it = std::make_unique<PostingInListIter>(db, path, plan.from[t],
                                                     tuple_);
            break;
          case SelectPlan::AccessPath::Kind::IndexRange:
            it = std::make_unique<IndexRangeIter>(db, path, plan.from[t], tuple_);
            break;
        }
      }
      SlotIter* matched = it.get();
      // Route the conjuncts due at this level: ON conjuncts decide LEFT JOIN
      // matching; the rest filter accepted rows. A conjunct consumed by an
      // IN-list probe already holds by construction and is skipped — except
      // on null-extended rows, which must still fail `col IN (...)`.
      std::vector<Expr*> on_list;
      std::vector<Expr*> where_list;
      for (const SelectPlan::PlannedConjunct& pc : plan.conjuncts) {
        const bool due = pc.max_table == static_cast<int>(t) ||
                         (t == 0 && pc.max_table <= 0);
        if (!due) continue;
        if (pc.on_table == static_cast<int>(t)) {
          if (pc.expr != path.in_list) on_list.push_back(pc.expr);
        } else {
          lv.null_conjuncts.push_back(pc.expr);
          if (pc.expr != path.in_list) where_list.push_back(pc.expr);
        }
      }
      if (!on_list.empty()) {
        it = std::make_unique<FilterIter>(std::move(it), std::move(on_list),
                                          tuple_, t, /*is_on=*/true);
        matched = it.get();
      }
      if (!where_list.empty()) {
        it = std::make_unique<FilterIter>(std::move(it), std::move(where_list),
                                          tuple_, t, /*is_on=*/false);
      }
      lv.top = std::move(it);
      lv.matched_stage = matched;
      lv.null_row = Row(plan.from[t].def->columns.size());  // all NULL
      lv.left_join = sel.from[t].left_join;
      levels_.push_back(std::move(lv));
    }
  }

  void open() {
    if (!stats_.timed) return openImpl();
    ++stats_.loops;
    const detail::OpTick tick(stats_);
    openImpl();
  }
  bool next() {
    if (!stats_.timed) return nextImpl();
    const detail::OpTick tick(stats_);
    const bool ok = nextImpl();
    if (ok) ++stats_.rows;
    return ok;
  }
  /// Columnar passthrough for single-table loops (buildPipeline only drives
  /// it when levels_.size() == 1): hands the level-0 chain's batch up
  /// untouched. Rows a row-stepping caller pre-pulled but did not consume
  /// are emitted first, so next() and nextBatch() can be mixed freely.
  bool nextBatch(RowBatch& b) {
    if (!stats_.timed) return nextBatchImpl(b);
    const detail::OpTick tick(stats_);
    const bool ok = nextBatchImpl(b);
    if (ok) stats_.rows += b.active();
    return ok;
  }
  void close() {
    if (!stats_.timed) return closeImpl();
    const detail::OpTick tick(stats_);
    closeImpl();
  }

  /// Arms EXPLAIN ANALYZE accounting on the loop and every SlotIter chain.
  void setAnalyze(bool on) {
    stats_.timed = on;
    for (Level& lv : levels_) lv.top->setAnalyze(on);
  }

  void openImpl() {
    started_ = false;
    done_ = false;
    std::fill(tuple_.begin(), tuple_.end(), nullptr);
  }

  bool nextImpl() {
    if (done_ || levels_.empty()) return false;
    const int last = static_cast<int>(levels_.size()) - 1;
    int t;
    if (!started_) {
      started_ = true;
      openLevel(0);
      t = 0;
    } else {
      t = last;  // resume below the tuple we just emitted
    }
    while (t >= 0) {
      Level& lv = levels_[static_cast<std::size_t>(t)];
      if (lv.null_pending) {
        lv.null_pending = false;
        tuple_[static_cast<std::size_t>(t)] = &lv.null_row;
        if (!nullRowPasses(lv)) {
          tuple_[static_cast<std::size_t>(t)] = nullptr;
          t = ascend(t);
          continue;
        }
      } else if ((t == 0 && batch_outer_) ? nextOuter() : lv.top->next(lv.row)) {
        tuple_[static_cast<std::size_t>(t)] = &lv.row;
      } else {
        if (lv.left_join && !lv.null_done && lv.matched_stage->produced() == 0) {
          lv.null_pending = true;
          lv.null_done = true;
          continue;
        }
        t = ascend(t);
        continue;
      }
      if (t == last) return true;
      openLevel(static_cast<std::size_t>(t) + 1);
      ++t;
    }
    done_ = true;
    return false;
  }

  bool nextBatchImpl(RowBatch& b) {
    if (done_ || levels_.empty()) return false;
    if (!started_) {
      started_ = true;
      openLevel(0);
    }
    if (outer_pos_ < outer_batch_.sel.size()) {
      const std::size_t cap = b.capacity;
      b = std::move(outer_batch_);
      b.sel.erase(b.sel.begin(),
                  b.sel.begin() + static_cast<std::ptrdiff_t>(outer_pos_));
      b.capacity = cap;
      outer_batch_ = RowBatch{};
      outer_pos_ = 0;
      return true;
    }
    if (b.capacity == 0) b.capacity = batch_rows_;
    if (!levels_[0].top->nextBatch(b)) {
      ascend(0);
      done_ = true;
      return false;
    }
    return true;
  }

  void closeImpl() {
    for (Level& lv : levels_) lv.top->close();
    std::fill(tuple_.begin(), tuple_.end(), nullptr);
    done_ = true;
  }

  const Tuple& tuple() const { return tuple_; }

  /// OpStats pointers in construction order (loop, then each level's chain).
  /// Two loops built from the same plan produce parallel lists, so worker
  /// stats can be rolled element-wise into a template tree.
  void collectStats(std::vector<OpStats*>& out) {
    out.push_back(&stats_);
    for (Level& lv : levels_) lv.top->collectStats(out);
  }

  /// Adds `other`'s per-stage counters into this loop's (EXPLAIN ANALYZE
  /// roll-up of per-worker pipelines into the described template).
  void absorbStats(NestedLoop& other) {
    std::vector<OpStats*> mine;
    std::vector<OpStats*> theirs;
    collectStats(mine);
    other.collectStats(theirs);
    const std::size_t n = std::min(mine.size(), theirs.size());
    for (std::size_t i = 0; i < n; ++i) {
      mine[i]->loops += theirs[i]->loops;
      mine[i]->rows += theirs[i]->rows;
      mine[i]->time_ns += theirs[i]->time_ns;
    }
  }

  void describe(std::vector<std::string>& lines, int depth) const {
    int child_depth = depth;
    if (levels_.size() > 1) {
      std::string line = indentOf(depth) + "NESTED LOOP JOIN (" +
                         std::to_string(levels_.size()) + " tables)";
      if (stats_.timed) appendActuals(line, stats_);
      lines.push_back(std::move(line));
      child_depth = depth + 1;
    }
    for (const Level& lv : levels_) lv.top->describe(lines, child_depth);
  }

 private:
  struct Level {
    std::unique_ptr<SlotIter> top;      // filter stages over the scan/probe
    SlotIter* matched_stage = nullptr;  // produced() > 0 <=> ON-matched
    Row row;
    Row null_row;
    bool left_join = false;
    std::vector<Expr*> null_conjuncts;  // checked on the null-extended row
    bool null_pending = false;
    bool null_done = false;
  };

  void openLevel(std::size_t t) {
    Level& lv = levels_[t];
    lv.null_pending = false;
    lv.null_done = false;
    tuple_[t] = nullptr;
    if (t == 0) {
      outer_batch_.clearRows();
      outer_pos_ = 0;
      // Ramp the outer batch up from a small refill so LIMIT-without-ORDER-BY
      // row-stepping stops the scan after a handful of rows, not a full batch.
      outer_cap_ = std::min<std::size_t>(32, batch_rows_);
    }
    lv.top->open();
  }

  /// Row-path advancement of level 0: rows arrive in columnar batches from
  /// the scan/filter chain and materialize one at a time into the tuple slot.
  bool nextOuter() {
    Level& lv = levels_[0];
    while (outer_pos_ >= outer_batch_.sel.size()) {
      outer_batch_.capacity = outer_cap_;
      outer_cap_ = std::min(outer_cap_ * 2, batch_rows_);
      if (!lv.top->nextBatch(outer_batch_)) return false;
      outer_pos_ = 0;
    }
    outer_batch_.materializeRow(outer_batch_.sel[outer_pos_++], lv.row);
    return true;
  }

  bool nullRowPasses(const Level& lv) const {
    for (const Expr* e : lv.null_conjuncts) {
      if (!truthy(evaluate(*e, tuple_))) return false;
    }
    return true;
  }

  int ascend(int t) {
    levels_[static_cast<std::size_t>(t)].top->close();
    tuple_[static_cast<std::size_t>(t)] = nullptr;
    return t - 1;
  }

  SelectPlan* plan_;
  std::size_t batch_rows_;
  bool batch_outer_;
  Tuple tuple_;
  std::vector<Level> levels_;
  RowBatch outer_batch_;        // level-0 rows pre-pulled for the row path
  std::size_t outer_pos_ = 0;   // next unconsumed index into outer_batch_.sel
  std::size_t outer_cap_ = 32;  // current refill size (ramps to batch_rows_)
  bool started_ = false;
  bool done_ = false;
  OpStats stats_;
};

// ---------------------------------------------------------------------------
// Row-level operators
// ---------------------------------------------------------------------------

/// SELECT without FROM: one row of constant expressions.
class ConstRowOp : public RowOp {
 public:
  explicit ConstRowOp(SelectPlan& plan) : plan_(&plan) {}

  void doOpen() override { emitted_ = false; }
  bool doNext(Row& row, std::vector<Value>& keys) override {
    if (emitted_) return false;
    emitted_ = true;
    static const Tuple kEmpty;
    row.clear();
    row.reserve(plan_->outputs.size());
    for (const SelectPlan::OutputCol& out : plan_->outputs) {
      row.push_back(evaluate(*out.expr, kEmpty));
    }
    keys.clear();
    return true;
  }
  void doClose() override {}
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    lines.push_back(indentOf(depth) + "CONST ROW");
  }

 private:
  SelectPlan* plan_;
  bool emitted_ = false;
};

/// Evaluates the output expressions (and ORDER BY keys) per joined tuple.
/// With `batch_input` set (single-table plans), projection runs column-wise
/// over the source's batches instead of per materialized tuple.
class ProjectOp : public RowOp {
 public:
  ProjectOp(std::unique_ptr<NestedLoop> src, SelectPlan& plan, bool batch_input,
            std::size_t batch_rows)
      : src_(std::move(src)),
        plan_(&plan),
        batch_input_(batch_input),
        batch_rows_(batch_rows) {}

  void doOpen() override { src_->open(); }
  bool doNext(Row& row, std::vector<Value>& keys) override {
    if (!src_->next()) return false;
    const Tuple& tuple = src_->tuple();
    row.clear();
    row.reserve(plan_->outputs.size());
    for (const SelectPlan::OutputCol& out : plan_->outputs) {
      row.push_back(evaluate(*out.expr, tuple));
    }
    const SelectStmt& sel = *plan_->sel;
    keys.clear();
    keys.reserve(sel.order_by.size());
    for (const OrderItem& item : sel.order_by) {
      keys.push_back(evaluate(*item.expr, tuple));
    }
    return true;
  }
  bool doNextBatch(RowBatch& b) override {
    if (!batch_input_) return RowOp::doNextBatch(b);
    in_.capacity = b.capacity ? b.capacity : batch_rows_;
    if (!src_->nextBatch(in_)) return false;
    const SelectStmt& sel = *plan_->sel;
    b.reset(plan_->outputs.size(), sel.order_by.size());
    const std::size_t n = in_.sel.size();
    for (std::size_t c = 0; c < plan_->outputs.size(); ++c) {
      evalRows(*plan_->outputs[c].expr, in_, in_.sel, eval_scratch_);
      b.cols[c].reserve(n);
      for (const std::uint32_t i : in_.sel) {
        b.cols[c].push_back(std::move(eval_scratch_[i]));
      }
    }
    for (std::size_t k = 0; k < sel.order_by.size(); ++k) {
      evalRows(*sel.order_by[k].expr, in_, in_.sel, eval_scratch_);
      b.keys[k].reserve(n);
      for (const std::uint32_t i : in_.sel) {
        b.keys[k].push_back(std::move(eval_scratch_[i]));
      }
    }
    b.nrows = n;
    b.sel.resize(n);
    for (std::size_t i = 0; i < n; ++i) b.sel[i] = static_cast<std::uint32_t>(i);
    return true;
  }
  void doClose() override { src_->close(); }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    std::string cols;
    for (const SelectPlan::OutputCol& out : plan_->outputs) {
      if (!cols.empty()) cols += ", ";
      cols += out.name;
    }
    lines.push_back(indentOf(depth) + "PROJECT " + cols);
    src_->describe(lines, depth + 1);
  }
  void setAnalyze(bool on) override {
    stats_.timed = on;
    src_->setAnalyze(on);
  }

 private:
  std::unique_ptr<NestedLoop> src_;
  SelectPlan* plan_;
  bool batch_input_;
  std::size_t batch_rows_;
  RowBatch in_;
  std::vector<Value> eval_scratch_;
};

/// Blocking aggregation: drains the join on the first next(), groups by the
/// GROUP BY keys, then emits one row per HAVING-surviving group. With
/// `batch_input` set (single-table plans), the build phase evaluates group
/// keys and aggregate arguments column-wise per batch and only materializes
/// a row when a group first appears.
class AggregateOp : public RowOp {
 public:
  AggregateOp(std::unique_ptr<NestedLoop> src, SelectPlan& plan,
              bool batch_input, std::size_t batch_rows)
      : src_(std::move(src)),
        plan_(&plan),
        batch_input_(batch_input),
        batch_rows_(batch_rows) {}

  void doOpen() override {
    src_->open();
    built_ = false;
    out_.clear();
    pos_ = 0;
  }
  bool doNext(Row& row, std::vector<Value>& keys) override {
    if (!built_) build();
    if (pos_ >= out_.size()) return false;
    row = std::move(out_[pos_].first);
    keys = std::move(out_[pos_].second);
    ++pos_;
    return true;
  }
  bool doNextBatch(RowBatch& b) override {
    if (!built_) build();
    if (pos_ >= out_.size()) return false;
    const std::size_t cap = b.capacity ? b.capacity : batch_rows_;
    b.reset(out_[pos_].first.size(), plan_->sel->order_by.size());
    while (b.nrows < cap && pos_ < out_.size()) {
      b.appendMoveValues(out_[pos_].first, out_[pos_].second);
      ++pos_;
    }
    return true;
  }
  void doClose() override {
    src_->close();
    out_.clear();
    pos_ = 0;
  }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    const SelectStmt& sel = *plan_->sel;
    std::string line = indentOf(depth) + "AGGREGATE (" +
                       std::to_string(plan_->aggregates.size()) + " aggregate" +
                       (plan_->aggregates.size() == 1 ? "" : "s") + ", " +
                       std::to_string(sel.group_by.size()) + " group key" +
                       (sel.group_by.size() == 1 ? "" : "s") + ")";
    if (sel.having) line += " HAVING";
    lines.push_back(std::move(line));
    src_->describe(lines, depth + 1);
  }
  void setAnalyze(bool on) override {
    stats_.timed = on;
    src_->setAnalyze(on);
  }

 private:
  void build() {
    const SelectStmt& sel = *plan_->sel;
    std::map<EncodedKey, Group> groups;
    if (batch_input_) {
      buildBatched(groups);
    } else {
      while (src_->next()) {
        const Tuple& tuple = src_->tuple();
        Row key_values;
        EncodedKey key;
        for (const ExprPtr& e : sel.group_by) {
          Value v = evaluate(*e, tuple);
          encodeValue(v, key);
          key_values.push_back(std::move(v));
        }
        auto [it, inserted] = groups.try_emplace(std::move(key));
        Group& g = it->second;
        if (inserted) {
          g.key_values = std::move(key_values);
          g.aggs.resize(plan_->aggregates.size());
          g.first_rows.reserve(tuple.size());
          for (const Row* row : tuple) g.first_rows.push_back(*row);
        }
        for (std::size_t a = 0; a < plan_->aggregates.size(); ++a) {
          const Expr* agg = plan_->aggregates[a];
          if (agg->lhs) {
            g.aggs[a].add(evaluate(*agg->lhs, tuple), agg->agg_distinct);
          } else {
            g.aggs[a].count++;  // COUNT(*)
          }
        }
      }
    }
    src_->close();
    for (const auto& [key, group] : groups) {
      if (sel.having && !truthy(evaluateGrouped(*sel.having, group))) continue;
      Row row;
      row.reserve(plan_->outputs.size());
      for (const SelectPlan::OutputCol& out : plan_->outputs) {
        row.push_back(evaluateGrouped(*out.expr, group));
      }
      std::vector<Value> keys;
      keys.reserve(sel.order_by.size());
      for (const OrderItem& item : sel.order_by) {
        keys.push_back(evaluateGrouped(*item.expr, group));
      }
      out_.emplace_back(std::move(row), std::move(keys));
    }
    // A fully-aggregated SELECT over zero input rows still yields one row.
    if (groups.empty() && sel.group_by.empty()) {
      Group empty;
      empty.aggs.resize(plan_->aggregates.size());
      // Bare column refs are undefined over an empty input; report NULLs.
      Row row;
      for (const SelectPlan::OutputCol& out : plan_->outputs) {
        if (containsAggregate(out.expr) || out.expr->kind == Expr::Kind::Literal) {
          row.push_back(evaluateGrouped(*out.expr, empty));
        } else {
          row.push_back(Value::null());
        }
      }
      out_.emplace_back(std::move(row), std::vector<Value>{});
    }
    built_ = true;
  }

  /// Batch-probe variant of the accumulation loop: evaluates the group keys
  /// and aggregate arguments column-at-a-time over each input batch, then
  /// probes the hash table per live lane. Same group map, same insertion
  /// order, same semantics as the row loop.
  void buildBatched(std::map<EncodedKey, Group>& groups) {
    const SelectStmt& sel = *plan_->sel;
    RowBatch in;
    in.capacity = batch_rows_;
    std::vector<std::vector<Value>> key_cols(sel.group_by.size());
    std::vector<std::vector<Value>> arg_cols(plan_->aggregates.size());
    while (src_->nextBatch(in)) {
      for (std::size_t g = 0; g < sel.group_by.size(); ++g) {
        evalRows(*sel.group_by[g], in, in.sel, key_cols[g]);
      }
      for (std::size_t a = 0; a < plan_->aggregates.size(); ++a) {
        if (plan_->aggregates[a]->lhs) {
          evalRows(*plan_->aggregates[a]->lhs, in, in.sel, arg_cols[a]);
        }
      }
      for (std::uint32_t i : in.sel) {
        Row key_values;
        EncodedKey key;
        for (std::size_t g = 0; g < key_cols.size(); ++g) {
          encodeValue(key_cols[g][i], key);
          key_values.push_back(std::move(key_cols[g][i]));
        }
        auto [it, inserted] = groups.try_emplace(std::move(key));
        Group& grp = it->second;
        if (inserted) {
          grp.key_values = std::move(key_values);
          grp.aggs.resize(plan_->aggregates.size());
          grp.first_rows.resize(1);
          in.materializeRow(i, grp.first_rows[0]);
        }
        for (std::size_t a = 0; a < plan_->aggregates.size(); ++a) {
          const Expr* agg = plan_->aggregates[a];
          if (agg->lhs) {
            grp.aggs[a].add(std::move(arg_cols[a][i]), agg->agg_distinct);
          } else {
            grp.aggs[a].count++;  // COUNT(*)
          }
        }
      }
    }
  }

  std::unique_ptr<NestedLoop> src_;
  SelectPlan* plan_;
  bool batch_input_;
  std::size_t batch_rows_;
  bool built_ = false;
  std::vector<std::pair<Row, std::vector<Value>>> out_;
  std::size_t pos_ = 0;
};

/// Streaming duplicate elimination on the projected row values.
class DistinctOp : public RowOp {
 public:
  explicit DistinctOp(std::unique_ptr<RowOp> child) : child_(std::move(child)) {}

  void doOpen() override {
    child_->open();
    seen_.clear();
  }
  bool doNext(Row& row, std::vector<Value>& keys) override {
    while (child_->next(row, keys)) {
      EncodedKey key;
      for (const Value& v : row) encodeValue(v, key);
      if (seen_.insert(std::move(key)).second) return true;
    }
    return false;
  }
  bool doNextBatch(RowBatch& b) override {
    // Probe the seen-set per live lane and compact the selection vector;
    // a batch whose rows are all duplicates is skipped, not returned empty.
    while (child_->nextBatch(b)) {
      sel_scratch_.clear();
      for (std::uint32_t i : b.sel) {
        EncodedKey key;
        for (const auto& c : b.cols) encodeValue(c[i], key);
        if (seen_.insert(std::move(key)).second) sel_scratch_.push_back(i);
      }
      b.sel.swap(sel_scratch_);
      if (!b.sel.empty()) return true;
    }
    return false;
  }
  void doClose() override {
    child_->close();
    seen_.clear();
  }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    lines.push_back(indentOf(depth) + "DISTINCT");
    child_->describe(lines, depth + 1);
  }
  void setAnalyze(bool on) override {
    stats_.timed = on;
    child_->setAnalyze(on);
  }

 private:
  std::unique_ptr<RowOp> child_;
  std::set<EncodedKey> seen_;
  std::vector<std::uint32_t> sel_scratch_;
};

/// Blocking sort on the ORDER BY keys. With a pushed-down LIMIT the sort
/// keeps a bounded top-K heap (K = offset + limit) instead of materializing
/// and sorting every input row. An input sequence number is the final
/// comparison key, so the output order is exactly what a stable sort of the
/// full input would produce.
class SortOp : public RowOp {
 public:
  SortOp(std::unique_ptr<RowOp> child, SelectPlan& plan,
         std::optional<std::size_t> top_k, std::size_t batch_rows)
      : child_(std::move(child)),
        plan_(&plan),
        top_k_(top_k),
        batch_rows_(batch_rows > 0 ? batch_rows : 1) {}

  void doOpen() override {
    child_->open();
    sorted_ = false;
    rows_.clear();
    pos_ = 0;
  }
  bool doNext(Row& row, std::vector<Value>& keys) override {
    if (!sorted_) drain();
    if (pos_ >= rows_.size()) return false;
    row = std::move(rows_[pos_].row);
    keys.clear();
    ++pos_;
    return true;
  }
  bool doNextBatch(RowBatch& b) override {
    if (!sorted_) drain();
    if (pos_ >= rows_.size()) return false;
    const std::size_t cap = b.capacity ? b.capacity : batch_rows_;
    // Keys are consumed by the sort; downstream sees plain rows.
    b.reset(rows_[pos_].row.size(), 0);
    while (b.nrows < cap && pos_ < rows_.size()) {
      b.appendMoveValues(rows_[pos_].row);
      ++pos_;
    }
    return true;
  }
  void doClose() override {
    child_->close();
    rows_.clear();
    pos_ = 0;
  }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    const std::size_t n = plan_->sel->order_by.size();
    std::string line = indentOf(depth) + "SORT BY " + std::to_string(n) + " key" +
                       (n == 1 ? "" : "s");
    if (top_k_) line += " (TOP-K " + std::to_string(*top_k_) + ")";
    lines.push_back(std::move(line));
    child_->describe(lines, depth + 1);
  }
  void setAnalyze(bool on) override {
    stats_.timed = on;
    child_->setAnalyze(on);
  }

 private:
  struct Keyed {
    std::vector<Value> keys;
    Row row;
    std::uint64_t seq = 0;
  };

  bool before(const Keyed& a, const Keyed& b) const {
    const auto& order = plan_->sel->order_by;
    const std::size_t n =
        std::min({order.size(), a.keys.size(), b.keys.size()});
    for (std::size_t i = 0; i < n; ++i) {
      const int c = a.keys[i].compare(b.keys[i]);
      if (c != 0) return order[i].descending ? c > 0 : c < 0;
    }
    return a.seq < b.seq;  // stable: ties keep input order
  }

  void drain() {
    auto cmp = [this](const Keyed& a, const Keyed& b) { return before(a, b); };
    RowBatch in;
    in.capacity = batch_rows_;
    std::uint64_t seq = 0;
    while (child_->nextBatch(in)) {
      for (std::uint32_t i : in.sel) {
        if (top_k_ && *top_k_ == 0) {
          ++seq;
          continue;  // LIMIT 0: consume input, keep nothing
        }
        Keyed k;
        in.takeRow(i, k.row);
        in.takeKeys(i, k.keys);
        k.seq = seq++;
        rows_.push_back(std::move(k));
        if (top_k_) {
          std::push_heap(rows_.begin(), rows_.end(), cmp);
          if (rows_.size() > *top_k_) {
            std::pop_heap(rows_.begin(), rows_.end(), cmp);
            rows_.pop_back();
          }
        }
      }
    }
    if (top_k_) {
      std::sort_heap(rows_.begin(), rows_.end(), cmp);
    } else {
      std::sort(rows_.begin(), rows_.end(), cmp);
    }
    sorted_ = true;
  }

  std::unique_ptr<RowOp> child_;
  SelectPlan* plan_;
  std::optional<std::size_t> top_k_;
  std::size_t batch_rows_;
  std::vector<Keyed> rows_;
  std::size_t pos_ = 0;
  bool sorted_ = false;
};

/// Streaming OFFSET/LIMIT; without an ORDER BY below it this stops pulling
/// (and therefore scanning) as soon as the limit is reached.
class LimitOp : public RowOp {
 public:
  LimitOp(std::unique_ptr<RowOp> child, std::optional<std::size_t> limit,
          std::size_t offset)
      : child_(std::move(child)), limit_(limit), offset_(offset) {}

  void doOpen() override {
    child_->open();
    skipped_ = 0;
    emitted_ = 0;
  }
  bool doNext(Row& row, std::vector<Value>& keys) override {
    if (limit_ && emitted_ >= *limit_) return false;
    while (child_->next(row, keys)) {
      if (skipped_ < offset_) {
        ++skipped_;
        continue;
      }
      ++emitted_;
      return true;
    }
    return false;
  }
  bool doNextBatch(RowBatch& b) override {
    if (limit_ && emitted_ >= *limit_) return false;
    const std::size_t caller_cap = b.capacity;
    while (true) {
      // Never ask the child for more rows than the limit still needs —
      // without an ORDER BY below, that over-pull would over-scan the table.
      if (limit_) {
        const std::size_t need = (offset_ - skipped_) + (*limit_ - emitted_);
        if (caller_cap == 0 || need < caller_cap) b.capacity = need;
      }
      const bool ok = child_->nextBatch(b);
      b.capacity = caller_cap;
      if (!ok) return false;
      if (skipped_ < offset_) {
        const std::size_t drop =
            std::min(offset_ - skipped_, b.sel.size());
        b.sel.erase(b.sel.begin(),
                    b.sel.begin() + static_cast<std::ptrdiff_t>(drop));
        skipped_ += drop;
      }
      if (limit_ && b.sel.size() > *limit_ - emitted_) {
        b.sel.resize(*limit_ - emitted_);
      }
      if (!b.sel.empty()) {
        emitted_ += b.sel.size();
        return true;
      }
      if (limit_ && emitted_ >= *limit_) return false;
    }
  }
  void doClose() override { child_->close(); }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    std::string line = indentOf(depth);
    if (limit_) {
      line += "LIMIT " + std::to_string(*limit_);
      if (offset_ > 0) line += " OFFSET " + std::to_string(offset_);
    } else {
      line += "OFFSET " + std::to_string(offset_);
    }
    lines.push_back(std::move(line));
    child_->describe(lines, depth + 1);
  }
  void setAnalyze(bool on) override {
    stats_.timed = on;
    child_->setAnalyze(on);
  }

 private:
  std::unique_ptr<RowOp> child_;
  std::optional<std::size_t> limit_;
  std::size_t offset_ = 0;
  std::size_t skipped_ = 0;
  std::size_t emitted_ = 0;
};

// ---------------------------------------------------------------------------
// Morsel-driven parallel execution
//
// A MorselSource partitions table 0 into ~kMorselTargetRows-row morsels that
// workers claim with one atomic (page partitioning) or one short lock
// (cursor chunking). Each morsel carries its decoded rows — the RowBatch the
// per-worker scan/filter/project loops run over — plus a dense morsel id
// from which every row gets a global rank: concatenating morsels in id
// order reproduces the serial scan order exactly, so parallel runs stay
// bit-identical to serial ones (group representatives, DISTINCT survivors,
// and ORDER BY tie-breaks all resolve by rank).
// ---------------------------------------------------------------------------

/// Bits of the per-row rank reserved for the row's offset inside its morsel
/// (page morsels are capped well below 2^18 rows).
constexpr unsigned kMorselRowBits = 18;

/// Thread-safe supplier of decoded row batches. abort() drains the source
/// early when one worker fails, so the others reach the barrier quickly.
class MorselSource {
 public:
  struct Morsel {
    std::uint64_t id = 0;    // dense, increasing; ranks derive from it
    std::vector<Row> rows;   // the batch the worker's tight loops run over
  };

  virtual ~MorselSource() = default;

  bool next(Morsel& m) {
    if (aborted_.load(std::memory_order_relaxed)) return false;
    if (!produce(m)) return false;
    execCounters().morsels_dispatched.inc();
    return true;
  }

  void abort() { aborted_.store(true, std::memory_order_relaxed); }

 protected:
  virtual bool produce(Morsel& m) = 0;

 private:
  std::atomic<bool> aborted_{false};
};

/// SeqScan partitioning: snapshot the heap page chain, hand out fixed runs
/// of whole pages per morsel (atomic claim, no lock), decode on the worker.
class PageMorselSource : public MorselSource {
 public:
  PageMorselSource(Database& db, const TableDef& table) : pager_(&db.pager()) {
    pages_ = HeapFile::collectPages(*pager_, table.first_page);
    // Whole pages per morsel, sized from the first page's fill so a morsel
    // lands near kMorselTargetRows rows. Capped so ranks fit kMorselRowBits.
    std::size_t rows_on_first = 0;
    if (!pages_.empty()) {
      HeapFile::visitPageRecords(*pager_, pages_[0],
                                 [&](const std::uint8_t*, std::size_t) {
                                   ++rows_on_first;
                                   return true;
                                 });
    }
    if (rows_on_first == 0) rows_on_first = 1;
    pages_per_morsel_ =
        std::clamp<std::size_t>(kMorselTargetRows / rows_on_first, 1, 64);
  }

  std::size_t morselCount() const {
    return (pages_.size() + pages_per_morsel_ - 1) / pages_per_morsel_;
  }

 protected:
  bool produce(Morsel& m) override {
    const std::size_t idx = next_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t begin = idx * pages_per_morsel_;
    if (begin >= pages_.size()) return false;
    const std::size_t end = std::min(begin + pages_per_morsel_, pages_.size());
    m.id = idx;
    m.rows.clear();
    for (std::size_t p = begin; p < end; ++p) {
      HeapFile::visitPageRecords(*pager_, pages_[p],
                                 [&](const std::uint8_t* data, std::size_t size) {
                                   m.rows.push_back(deserializeRow(data, size));
                                   return true;
                                 });
    }
    return true;
  }

 private:
  Pager* pager_;
  std::vector<PageId> pages_;
  std::size_t pages_per_morsel_ = 1;
  std::atomic<std::size_t> next_{0};
};

/// Index-path partitioning: one shared storage cursor, chunked into
/// batch_rows-row batches under a mutex. The lock covers the decode, but
/// filter/project/aggregate work — the bulk of these queries — still fans
/// out. Chunk boundaries depend only on the pull count, so morsel contents
/// are deterministic regardless of which worker claims them.
class CursorMorselSource : public MorselSource {
 public:
  CursorMorselSource(std::unique_ptr<SlotIter> iter, std::size_t batch_rows)
      : iter_(std::move(iter)), batch_rows_(batch_rows > 0 ? batch_rows : 1) {}

  /// Opens the underlying cursor (bound evaluation) on the caller's thread.
  void open() { iter_->open(); }

 protected:
  bool produce(Morsel& m) override {
    const std::lock_guard<std::mutex> lock(mu_);
    if (done_) return false;
    m.id = next_id_++;
    m.rows.clear();
    m.rows.reserve(batch_rows_);
    Row row;
    while (m.rows.size() < batch_rows_ && iter_->next(row)) {
      m.rows.push_back(std::move(row));
      row = {};
    }
    if (m.rows.size() < batch_rows_) {
      done_ = true;
      iter_->close();
    }
    return !m.rows.empty();
  }

 private:
  std::mutex mu_;
  std::unique_ptr<SlotIter> iter_;
  std::size_t batch_rows_;
  bool done_ = false;
  std::uint64_t next_id_ = 0;
};

/// The Volcano adapter over a shared MorselSource: level-0 scan iterator of
/// a per-worker NestedLoop. currentRank() exposes the global rank of the
/// row most recently handed out, which the worker threads through to its
/// partial states for deterministic merges.
class MorselFedIter : public SlotIter {
 public:
  MorselFedIter(MorselSource* src, const SelectPlan::AccessPath& path,
                const SelectPlan::FromEntry& entry)
      : src_(src), path_(&path), entry_(&entry) {}

  std::uint64_t currentRank() const { return rank_; }

 protected:
  void doOpen() override {
    produced_ = 0;
    m_.rows.clear();
    pos_ = 0;
  }
  bool doNext(Row& out) override {
    while (pos_ >= m_.rows.size()) {
      if (!src_->next(m_)) return false;
      pos_ = 0;
    }
    rank_ = (m_.id << kMorselRowBits) | static_cast<std::uint64_t>(pos_);
    out = std::move(m_.rows[pos_++]);
    ++produced_;
    return true;
  }
  void doClose() override {
    m_.rows.clear();
    pos_ = 0;
  }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    lines.push_back(indentOf(depth) + path_->describe(*entry_) + " [morsel]");
  }

 private:
  MorselSource* src_;
  const SelectPlan::AccessPath* path_;
  const SelectPlan::FromEntry* entry_;
  MorselSource::Morsel m_;
  std::size_t pos_ = 0;
  std::uint64_t rank_ = 0;
};

/// The parallel subtree: runs per-worker partial pipelines over a shared
/// MorselSource on the process-wide ExecPool and merges their thread-local
/// states at one barrier. Emits exactly what the serial
/// (Project|Aggregate)(NestedLoop) subtree would, in the same order, so the
/// serial operators above (Distinct, Sort, Limit) run unchanged:
///
///   grouped   partial hash aggregates merge per group key; the group
///             representative (bare-column first_rows) is the minimum-rank
///             input, matching serial first-arrival; groups emit in encoded
///             key order like AggregateOp.
///   row mode  per-worker buffers (optionally deduped for DISTINCT and
///             bounded by an ORDER BY+LIMIT top-K heap, both of which only
///             shrink the candidate set the serial operators re-check)
///             merge sorted by rank, i.e. serial scan order.
class GatherOp : public RowOp {
 public:
  GatherOp(Database& db, SelectPlan& plan, const ExecOptions& opts,
           std::optional<std::size_t> row_top_k)
      : db_(&db),
        plan_(&plan),
        degree_(opts.degree),
        batch_rows_(opts.batch_rows),
        top_k_(row_top_k),
        grouped_(plan.grouped),
        distinct_(plan.sel->distinct && !plan.grouped),
        src_tuple_(plan.from.size(), nullptr),
        template_loop_(std::make_unique<NestedLoop>(db, plan, opts.batch_rows)) {}

  void doOpen() override {
    built_ = false;
    out_.clear();
    pos_ = 0;
  }
  bool doNext(Row& row, std::vector<Value>& keys) override {
    if (!built_) runParallel();
    if (pos_ >= out_.size()) return false;
    row = std::move(out_[pos_].first);
    keys = std::move(out_[pos_].second);
    ++pos_;
    return true;
  }
  bool doNextBatch(RowBatch& b) override {
    if (!built_) runParallel();
    if (pos_ >= out_.size()) return false;
    const std::size_t cap = b.capacity ? b.capacity : batch_rows_;
    b.reset(out_[pos_].first.size(), plan_->sel->order_by.size());
    while (b.nrows < cap && pos_ < out_.size()) {
      b.appendMoveValues(out_[pos_].first, out_[pos_].second);
      ++pos_;
    }
    return true;
  }
  void doClose() override {
    out_.clear();
    pos_ = 0;
  }

  void setAnalyze(bool on) override {
    stats_.timed = on;
    analyze_ = on;
    partial_stats_.timed = on;
    template_loop_->setAnalyze(on);
  }

  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    std::string line =
        indentOf(depth) + "GATHER (workers=" + std::to_string(degree_);
    if (grouped_) line += ", partial aggregate";
    if (distinct_) line += ", partial distinct";
    if (top_k_) line += ", top-k " + std::to_string(*top_k_);
    line += ")";
    lines.push_back(std::move(line));
    if (analyze_ && ran_) {
      lines.push_back(indentOf(depth + 1) + perWorkerLine());
    }
    const std::size_t partial_line = lines.size();
    if (grouped_) {
      const SelectStmt& sel = *plan_->sel;
      std::string agg = indentOf(depth + 1) + "PARTIAL AGGREGATE (" +
                        std::to_string(plan_->aggregates.size()) + " aggregate" +
                        (plan_->aggregates.size() == 1 ? "" : "s") + ", " +
                        std::to_string(sel.group_by.size()) + " group key" +
                        (sel.group_by.size() == 1 ? "" : "s") + ")";
      if (sel.having) agg += " HAVING";
      lines.push_back(std::move(agg));
    } else {
      std::string cols;
      for (const SelectPlan::OutputCol& out : plan_->outputs) {
        if (!cols.empty()) cols += ", ";
        cols += out.name;
      }
      lines.push_back(indentOf(depth + 1) + "PROJECT " + cols);
    }
    if (partial_stats_.timed) appendActuals(lines[partial_line], partial_stats_);
    template_loop_->describe(lines, depth + 2);
  }

 private:
  // --- per-worker state ----------------------------------------------------

  struct Entry {
    std::vector<Value> keys;  // ORDER BY keys
    Row row;                  // projected output row
    std::uint64_t rank = 0;   // global scan rank of the outer row
    std::uint64_t sub = 0;    // join-output ordinal under that outer row
  };

  /// Mergeable fragment of one AggState. DISTINCT aggregates carry the
  /// distinct values themselves (keyed by encoding) so the final counts and
  /// sums are recomputed exactly after the cross-worker union.
  struct PartialAggState {
    std::int64_t count = 0;
    std::int64_t isum = 0;
    double rsum = 0.0;
    bool saw_real = false;
    Value min;
    Value max;
    std::map<EncodedKey, Value> distinct;
  };

  struct PartialGroup {
    Row key_values;
    std::vector<Row> first_rows;
    std::uint64_t first_rank = 0;
    std::uint64_t first_sub = 0;
    std::vector<PartialAggState> aggs;
  };

  struct WorkerState {
    std::unordered_map<EncodedKey, PartialGroup> groups;  // grouped mode
    std::vector<Entry> rows;                              // row mode
    std::set<EncodedKey> seen;     // row-mode local DISTINCT dedup
    std::uint64_t emitted = 0;     // partial-stage outputs (per-worker line)
    std::uint64_t busy_ns = 0;
  };

  static void partialAdd(PartialAggState& s, const Value& v, bool distinct_only) {
    if (v.isNull()) return;
    if (distinct_only) {
      EncodedKey key;
      encodeValue(v, key);
      s.distinct.emplace(std::move(key), v);
      return;
    }
    ++s.count;
    if (v.isReal()) {
      s.saw_real = true;
      s.rsum += v.asReal();
    } else if (v.isInt()) {
      s.isum += v.asInt();
      s.rsum += static_cast<double>(v.asInt());
    }
    if (s.min.isNull() || v.compare(s.min) < 0) s.min = v;
    if (s.max.isNull() || v.compare(s.max) > 0) s.max = v;
  }

  std::unique_ptr<SlotIter> makeLevel0Iter() {
    const SelectPlan::AccessPath& path = plan_->paths[0];
    switch (path.kind) {
      case SelectPlan::AccessPath::Kind::Scan:
        return std::make_unique<SeqScanIter>(*db_, path, plan_->from[0]);
      case SelectPlan::AccessPath::Kind::IndexEqual:
        return std::make_unique<IndexEqualIter>(*db_, path, plan_->from[0],
                                                src_tuple_);
      case SelectPlan::AccessPath::Kind::IndexInList:
        return std::make_unique<IndexInListIter>(*db_, path, plan_->from[0],
                                                 src_tuple_);
      case SelectPlan::AccessPath::Kind::PostingInList:
        return std::make_unique<PostingInListIter>(*db_, path, plan_->from[0],
                                                   src_tuple_);
      case SelectPlan::AccessPath::Kind::IndexRange:
        return std::make_unique<IndexRangeIter>(*db_, path, plan_->from[0],
                                                src_tuple_);
    }
    throw SqlError("internal: bad access path kind");
  }

  void runParallel() {
    built_ = true;
    // Mirror the serial path's invariant: storage is pinned for the whole
    // drain, so a concurrent DDL/DML attempt on this database throws
    // instead of invalidating worker iterators.
    const Database::CursorPin pin = db_->pinCursor();
    execCounters().parallel_queries.inc();

    const SelectPlan::AccessPath& path = plan_->paths[0];
    std::unique_ptr<MorselSource> src;
    std::size_t extra = static_cast<std::size_t>(degree_ > 0 ? degree_ - 1 : 0);
    if (path.kind == SelectPlan::AccessPath::Kind::Scan) {
      auto ps = std::make_unique<PageMorselSource>(*db_, *plan_->from[0].def);
      // No point spinning more workers than there are morsels.
      const std::size_t morsels = ps->morselCount();
      extra = std::min(extra, morsels > 0 ? morsels - 1 : 0);
      src = std::move(ps);
    } else {
      auto cs = std::make_unique<CursorMorselSource>(makeLevel0Iter(), batch_rows_);
      cs->open();  // bound evaluation happens on the calling thread
      src = std::move(cs);
    }

    states_.clear();
    states_.resize(extra + 1);
    MorselSource* s = src.get();
    // Pool workers are fresh threads: when this cursor reads through a
    // pinned snapshot, re-install it on each worker so every morsel is
    // resolved against the same committed version the caller sees.
    const Pager::SnapshotToken snap_token = Pager::currentToken();
    const ExecPool::RunStats run = ExecPool::shared().run(
        extra, [&](std::size_t slot) {
          std::optional<Pager::SnapshotScope> snap_scope;
          if (snap_token.pager != nullptr) snap_scope.emplace(snap_token);
          try {
            runWorker(slot, *s);
          } catch (...) {
            s->abort();  // stop the other workers' morsel supply
            throw;
          }
        });
    gather_wait_ns_ = run.wait_ns;
    execCounters().gather_wait_ms.observe(static_cast<double>(run.wait_ns) / 1e6);

    if (grouped_) {
      mergeGrouped();
    } else {
      mergeRows();
    }
    if (analyze_) {
      partial_stats_.loops = states_.size();
      partial_stats_.time_ns = 0;
      for (const WorkerState& ws : states_) partial_stats_.time_ns += ws.busy_ns;
    }
    ran_ = true;
  }

  void runWorker(std::size_t slot, MorselSource& src) {
    WorkerState& ws = states_[slot];
    const auto start = std::chrono::steady_clock::now();
    // Single-table plans run the tight batch loops; joins (and analyzed
    // runs, which want exact per-stage accounting) run a full per-worker
    // operator chain fed from the shared source.
    if (batchEligible(*plan_) && !analyze_) {
      runBatchWorker(ws, src);
    } else {
      runLoopWorker(ws, src);
    }
    ws.busy_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }

  void runBatchWorker(WorkerState& ws, MorselSource& src) {
    const SelectPlan::AccessPath& path = plan_->paths[0];
    std::vector<Expr*> conjuncts;
    for (const SelectPlan::PlannedConjunct& pc : plan_->conjuncts) {
      // Level-0 conjuncts; an IN-list consumed by the probe already holds.
      if (pc.max_table <= 0 && pc.expr != path.in_list) {
        conjuncts.push_back(pc.expr);
      }
    }
    MorselSource::Morsel m;
    Tuple tuple(1, nullptr);
    while (src.next(m)) {
      for (std::size_t i = 0; i < m.rows.size(); ++i) {
        tuple[0] = &m.rows[i];
        bool pass = true;
        for (const Expr* e : conjuncts) {
          if (!truthy(evaluate(*e, tuple))) {
            pass = false;
            break;
          }
        }
        if (!pass) continue;
        const std::uint64_t rank =
            (m.id << kMorselRowBits) | static_cast<std::uint64_t>(i);
        if (grouped_) {
          accumulate(ws, tuple, rank, 0);
        } else {
          emitRow(ws, tuple, rank, 0);
        }
      }
    }
  }

  void runLoopWorker(WorkerState& ws, MorselSource& src) {
    auto fed =
        std::make_unique<MorselFedIter>(&src, plan_->paths[0], plan_->from[0]);
    MorselFedIter* fed_raw = fed.get();
    // batch_outer=false: rank accounting reads the fed iterator's *current*
    // row, which pre-pulling a whole outer batch would run ahead of.
    NestedLoop loop(*db_, *plan_, batch_rows_, std::move(fed),
                    /*batch_outer=*/false);
    if (analyze_) loop.setAnalyze(true);
    loop.open();
    std::uint64_t last_rank = ~std::uint64_t{0};
    std::uint64_t sub = 0;
    while (loop.next()) {
      const std::uint64_t rank = fed_raw->currentRank();
      if (rank == last_rank) {
        ++sub;
      } else {
        sub = 0;
        last_rank = rank;
      }
      if (grouped_) {
        accumulate(ws, loop.tuple(), rank, sub);
      } else {
        emitRow(ws, loop.tuple(), rank, sub);
      }
    }
    loop.close();
    if (analyze_) {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      template_loop_->absorbStats(loop);
    }
  }

  void accumulate(WorkerState& ws, const Tuple& tuple, std::uint64_t rank,
                  std::uint64_t sub) {
    const SelectStmt& sel = *plan_->sel;
    Row key_values;
    EncodedKey key;
    for (const ExprPtr& e : sel.group_by) {
      Value v = evaluate(*e, tuple);
      encodeValue(v, key);
      key_values.push_back(std::move(v));
    }
    auto [it, inserted] = ws.groups.try_emplace(std::move(key));
    PartialGroup& g = it->second;
    if (inserted) {
      ++ws.emitted;
      g.key_values = std::move(key_values);
      g.first_rank = rank;
      g.first_sub = sub;
      g.aggs.resize(plan_->aggregates.size());
      g.first_rows.reserve(tuple.size());
      // A worker consumes rows in increasing rank order, so the first
      // arrival is the worker-local minimum; cross-worker minima resolve at
      // the merge.
      for (const Row* row : tuple) g.first_rows.push_back(*row);
    }
    for (std::size_t a = 0; a < plan_->aggregates.size(); ++a) {
      const Expr* agg = plan_->aggregates[a];
      if (agg->lhs) {
        partialAdd(g.aggs[a], evaluate(*agg->lhs, tuple), agg->agg_distinct);
      } else {
        ++g.aggs[a].count;  // COUNT(*)
      }
    }
  }

  void emitRow(WorkerState& ws, const Tuple& tuple, std::uint64_t rank,
               std::uint64_t sub) {
    Row row;
    row.reserve(plan_->outputs.size());
    for (const SelectPlan::OutputCol& out : plan_->outputs) {
      row.push_back(evaluate(*out.expr, tuple));
    }
    if (distinct_) {
      // Local dedup: keeps the worker's first (minimum-rank) copy. The
      // DistinctOp above resolves cross-worker duplicates; dedup must
      // happen before the top-K heap so duplicates never evict candidates.
      EncodedKey key;
      for (const Value& v : row) encodeValue(v, key);
      if (!ws.seen.insert(std::move(key)).second) return;
    }
    ++ws.emitted;
    const SelectStmt& sel = *plan_->sel;
    Entry e;
    e.row = std::move(row);
    e.rank = rank;
    e.sub = sub;
    e.keys.reserve(sel.order_by.size());
    for (const OrderItem& item : sel.order_by) {
      e.keys.push_back(evaluate(*item.expr, tuple));
    }
    if (top_k_) {
      if (*top_k_ == 0) return;  // LIMIT 0: consume input, keep nothing
      auto cmp = [this](const Entry& a, const Entry& b) {
        return entryBefore(a, b);
      };
      ws.rows.push_back(std::move(e));
      std::push_heap(ws.rows.begin(), ws.rows.end(), cmp);
      if (ws.rows.size() > *top_k_) {
        std::pop_heap(ws.rows.begin(), ws.rows.end(), cmp);
        ws.rows.pop_back();
      }
    } else {
      ws.rows.push_back(std::move(e));
    }
  }

  /// SortOp::before() over global ranks: a worker's top-K heap keeps its K
  /// best by exactly the ordering the serial sort would apply, so the union
  /// of worker heaps is a superset of the true top K.
  bool entryBefore(const Entry& a, const Entry& b) const {
    const auto& order = plan_->sel->order_by;
    const std::size_t n = std::min({order.size(), a.keys.size(), b.keys.size()});
    for (std::size_t i = 0; i < n; ++i) {
      const int c = a.keys[i].compare(b.keys[i]);
      if (c != 0) return order[i].descending ? c > 0 : c < 0;
    }
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.sub < b.sub;
  }

  void mergeGrouped() {
    const SelectStmt& sel = *plan_->sel;
    std::map<EncodedKey, PartialGroup> merged;
    for (WorkerState& ws : states_) {
      for (auto& [key, pg] : ws.groups) {
        auto [it, inserted] = merged.try_emplace(key);
        if (inserted) {
          it->second = std::move(pg);
          continue;
        }
        PartialGroup& dst = it->second;
        if (pg.first_rank < dst.first_rank ||
            (pg.first_rank == dst.first_rank && pg.first_sub < dst.first_sub)) {
          // This worker saw the group earlier in scan order; its first
          // tuple is the serial path's group representative.
          dst.first_rank = pg.first_rank;
          dst.first_sub = pg.first_sub;
          dst.first_rows = std::move(pg.first_rows);
        }
        for (std::size_t a = 0; a < dst.aggs.size(); ++a) {
          PartialAggState& d = dst.aggs[a];
          PartialAggState& s = pg.aggs[a];
          d.count += s.count;
          d.isum += s.isum;
          d.rsum += s.rsum;
          d.saw_real = d.saw_real || s.saw_real;
          if (!s.min.isNull() && (d.min.isNull() || s.min.compare(d.min) < 0)) {
            d.min = s.min;
          }
          if (!s.max.isNull() && (d.max.isNull() || s.max.compare(d.max) > 0)) {
            d.max = s.max;
          }
          d.distinct.merge(s.distinct);
        }
      }
      ws.groups.clear();
    }
    if (analyze_) partial_stats_.rows = merged.size();
    // Finalize: the same tail as the serial AggregateOp::build(), over
    // groups in encoded-key order.
    for (auto& [key, pg] : merged) {
      Group g;
      g.key_values = std::move(pg.key_values);
      g.first_rows = std::move(pg.first_rows);
      g.aggs.resize(plan_->aggregates.size());
      for (std::size_t a = 0; a < g.aggs.size(); ++a) {
        const Expr* agg = plan_->aggregates[a];
        PartialAggState& p = pg.aggs[a];
        AggState& s = g.aggs[a];
        if (agg->lhs && agg->agg_distinct) {
          for (auto& [ek, v] : p.distinct) s.add(v, false);
        } else {
          s.count = p.count;
          s.isum = p.isum;
          s.rsum = p.rsum;
          s.saw_real = p.saw_real;
          s.min = p.min;
          s.max = p.max;
        }
      }
      if (sel.having && !truthy(evaluateGrouped(*sel.having, g))) continue;
      Row row;
      row.reserve(plan_->outputs.size());
      for (const SelectPlan::OutputCol& out : plan_->outputs) {
        row.push_back(evaluateGrouped(*out.expr, g));
      }
      std::vector<Value> keys;
      keys.reserve(sel.order_by.size());
      for (const OrderItem& item : sel.order_by) {
        keys.push_back(evaluateGrouped(*item.expr, g));
      }
      out_.emplace_back(std::move(row), std::move(keys));
    }
    // A fully-aggregated SELECT over zero input rows still yields one row.
    if (merged.empty() && sel.group_by.empty()) {
      Group empty;
      empty.aggs.resize(plan_->aggregates.size());
      Row row;
      for (const SelectPlan::OutputCol& out : plan_->outputs) {
        if (containsAggregate(out.expr) || out.expr->kind == Expr::Kind::Literal) {
          row.push_back(evaluateGrouped(*out.expr, empty));
        } else {
          row.push_back(Value::null());
        }
      }
      out_.emplace_back(std::move(row), std::vector<Value>{});
    }
  }

  void mergeRows() {
    std::size_t total = 0;
    for (const WorkerState& ws : states_) total += ws.rows.size();
    std::vector<Entry> all;
    all.reserve(total);
    for (WorkerState& ws : states_) {
      for (Entry& e : ws.rows) all.push_back(std::move(e));
      ws.rows.clear();
      ws.rows.shrink_to_fit();
      ws.seen.clear();
    }
    // Emit in global scan order so the serial operators above see exactly
    // the serial stream (stable ORDER BY ties, DISTINCT first-occurrence).
    std::sort(all.begin(), all.end(), [](const Entry& a, const Entry& b) {
      return a.rank != b.rank ? a.rank < b.rank : a.sub < b.sub;
    });
    if (analyze_) {
      partial_stats_.rows = 0;
      for (const WorkerState& ws : states_) partial_stats_.rows += ws.emitted;
    }
    out_.reserve(all.size());
    for (Entry& e : all) {
      out_.emplace_back(std::move(e.row), std::move(e.keys));
    }
  }

  std::string perWorkerLine() const {
    std::string line = "PER-WORKER rows=[";
    for (std::size_t w = 0; w < states_.size(); ++w) {
      if (w > 0) line += " ";
      line += std::to_string(states_[w].emitted);
    }
    line += "] time=[";
    char buf[32];
    for (std::size_t w = 0; w < states_.size(); ++w) {
      if (w > 0) line += " ";
      std::snprintf(buf, sizeof(buf), "%.3f",
                    static_cast<double>(states_[w].busy_ns) / 1e6);
      line += buf;
    }
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(gather_wait_ns_) / 1e6);
    line += std::string("]ms wait=") + buf + "ms";
    return line;
  }

  Database* db_;
  SelectPlan* plan_;
  int degree_;
  std::size_t batch_rows_;
  std::optional<std::size_t> top_k_;  // row mode only
  bool grouped_;
  bool distinct_;
  Tuple src_tuple_;  // never bound; level-0 probe bounds are constants
  std::unique_ptr<NestedLoop> template_loop_;  // described, never opened
  std::vector<WorkerState> states_;
  std::mutex stats_mu_;
  OpStats partial_stats_;  // the PARTIAL AGGREGATE / PROJECT stage line
  std::uint64_t gather_wait_ns_ = 0;
  bool analyze_ = false;
  bool ran_ = false;
  bool built_ = false;
  std::vector<std::pair<Row, std::vector<Value>>> out_;
  std::size_t pos_ = 0;
};

/// Whether `plan` runs its table-0 subtree morsel-parallel at `opts`.
/// Streaming-friendly shapes stay serial: a plain projection (no blocking
/// operator above) streams rows with zero materialization, and
/// LIMIT-without-ORDER-BY stops the scan early — parallelism would only add
/// wasted work. Tiny tables (under min_pages heap pages) stay serial too.
bool parallelEligible(Database& db, const SelectPlan& plan,
                      const ExecOptions& opts) {
  if (opts.degree < 2 || plan.from.empty()) return false;
  const SelectStmt& sel = *plan.sel;
  if (sel.from[0].left_join) return false;  // defensive; parser never does this
  const bool ordered = !sel.order_by.empty();
  if (!plan.grouped && !ordered && !sel.distinct) return false;
  if (!plan.grouped && !ordered && (sel.limit || sel.offset)) return false;
  return HeapFile::chainHasAtLeast(db.pager(), plan.from[0].def->first_page,
                                   opts.min_pages);
}

}  // namespace

// ---------------------------------------------------------------------------
// Batch pull plumbing
// ---------------------------------------------------------------------------

bool RowOp::nextBatch(RowBatch& batch) {
  if (!stats_.timed) {
    const bool ok = doNextBatch(batch);
    if (ok) {
      execCounters().batches.inc();
      execCounters().batch_fill.observe(static_cast<double>(batch.active()));
    }
    return ok;
  }
  const detail::OpTick tick(stats_);
  const bool ok = doNextBatch(batch);
  if (ok) {
    stats_.rows += batch.active();
    ++stats_.batches;
    stats_.batch_rows += batch.active();
    execCounters().batches.inc();
    execCounters().batch_fill.observe(static_cast<double>(batch.active()));
  }
  return ok;
}

bool RowOp::doNextBatch(RowBatch& batch) {
  batch.clearRows();
  const std::size_t cap = batch.capacity > 0 ? batch.capacity : 1;
  Row row;
  std::vector<Value> keys;
  while (batch.nrows < cap && doNext(row, keys)) {
    batch.appendMoveValues(row, keys);
    row.clear();
    keys.clear();
  }
  return batch.nrows > 0;
}

bool batchEligible(const SelectPlan& plan) { return plan.from.size() == 1; }

// ---------------------------------------------------------------------------
// Pipeline assembly and the materializing wrappers
// ---------------------------------------------------------------------------

Pipeline buildPipeline(Database& db, SelectPlan& plan, const ExecOptions& opts) {
  Pipeline p;
  for (const SelectPlan::OutputCol& out : plan.outputs) p.columns.push_back(out.name);
  if (plan.from.empty()) {
    // SELECT without FROM: exactly one row; DISTINCT/ORDER BY/LIMIT do not
    // apply (mirrors the historical early return).
    p.root = std::make_unique<ConstRowOp>(plan);
    return p;
  }
  SelectStmt& sel = *plan.sel;
  const std::size_t offset =
      sel.offset ? static_cast<std::size_t>(*sel.offset) : 0;
  std::optional<std::size_t> top_k;
  if (!sel.order_by.empty() && sel.limit) {
    top_k = offset + static_cast<std::size_t>(*sel.limit);
  }
  std::unique_ptr<RowOp> op;
  if (parallelEligible(db, plan, opts)) {
    // Workers pre-apply top-K only in row mode; a grouped plan's bound
    // applies to groups, not inputs, so the serial Sort above handles it.
    op = std::make_unique<GatherOp>(db, plan, opts,
                                    plan.grouped ? std::nullopt : top_k);
  } else {
    // Single-table subtrees run column-at-a-time: the loop hands whole
    // batches to Project/Aggregate, which evaluate expressions per column.
    // Joins keep the row-at-a-time tuple walk (their expressions bind
    // multiple slots) behind the generic row→batch adapter.
    const bool batch_input = batchEligible(plan);
    auto loop = std::make_unique<NestedLoop>(db, plan, opts.batch_rows);
    if (plan.grouped) {
      op = std::make_unique<AggregateOp>(std::move(loop), plan, batch_input,
                                         opts.batch_rows);
    } else {
      op = std::make_unique<ProjectOp>(std::move(loop), plan, batch_input,
                                       opts.batch_rows);
    }
  }
  if (sel.distinct) op = std::make_unique<DistinctOp>(std::move(op));
  if (!sel.order_by.empty()) {
    op = std::make_unique<SortOp>(std::move(op), plan, top_k, opts.batch_rows);
  }
  if (sel.limit || sel.offset) {
    std::optional<std::size_t> limit;
    if (sel.limit) limit = static_cast<std::size_t>(*sel.limit);
    op = std::make_unique<LimitOp>(std::move(op), limit, offset);
  }
  p.root = std::move(op);
  return p;
}

std::vector<std::string> explainPipeline(Database& db, SelectPlan& plan,
                                         const ExecOptions& opts) {
  const Pipeline p = buildPipeline(db, plan, opts);
  std::vector<std::string> lines;
  p.root->describe(lines, 0);
  return lines;
}

ResultSet execSelectPlan(Database& db, SelectPlan& plan, bool explain,
                         bool analyze, const ExecOptions& opts) {
  ResultSet rs;
  if (explain && !analyze) {
    rs.columns = {"plan"};
    for (std::string& line : explainPipeline(db, plan, opts)) {
      rs.rows.push_back({Value(std::move(line))});
    }
    return rs;
  }
  materializePlanSubqueries(db, plan);
  Pipeline p = buildPipeline(db, plan, opts);
  if (analyze) {
    // EXPLAIN ANALYZE: run the statement to exhaustion with per-operator
    // accounting armed, discard the rows, and emit the annotated tree.
    p.root->setAnalyze(true);
    p.root->open();
    RowBatch batch;
    batch.capacity = opts.batch_rows;
    while (p.root->nextBatch(batch)) {
    }
    p.root->close();
    rs.columns = {"plan"};
    std::vector<std::string> lines;
    p.root->describe(lines, 0);
    for (std::string& line : lines) rs.rows.push_back({Value(std::move(line))});
    return rs;
  }
  rs.columns = std::move(p.columns);
  p.root->open();
  RowBatch batch;
  batch.capacity = opts.batch_rows;
  Row row;
  while (p.root->nextBatch(batch)) {
    for (std::uint32_t i : batch.sel) {
      batch.takeRow(i, row);
      rs.rows.push_back(std::move(row));
      row = {};
    }
  }
  p.root->close();
  return rs;
}

ResultSet execSelect(Database& db, const SelectStmt& sel_const, bool use_indexes,
                     bool explain, bool analyze, const ExecOptions& opts) {
  // The binding pass annotates expressions in place; the annotations are
  // rewritten by every plan build, so sharing the AST across plans is safe.
  auto& sel = const_cast<SelectStmt&>(sel_const);
  SelectPlan plan = buildSelectPlan(db, sel, use_indexes, opts.invidx);
  return execSelectPlan(db, plan, explain, analyze, opts);
}

}  // namespace perftrack::minidb::sql
