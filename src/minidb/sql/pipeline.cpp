// minidb SQL execution pipeline: planning, expression evaluation, and the
// Volcano-style operator tree (see pipeline.h for the shape).
#include "minidb/sql/pipeline.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <set>

#include "minidb/keycodec.h"
#include "minidb/sql/executor.h"
#include "util/error.h"
#include "util/strings.h"

namespace perftrack::minidb::sql {

using util::SqlError;

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

namespace {

bool likeMatch(std::string_view text, std::string_view pattern) {
  // Classic two-pointer wildcard matcher: '%' = any run, '_' = any one char.
  std::size_t t = 0;
  std::size_t p = 0;
  std::size_t star_p = std::string_view::npos;
  std::size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Value arith(BinaryOp op, const Value& a, const Value& b) {
  if (a.isNull() || b.isNull()) return Value::null();
  if (a.isInt() && b.isInt()) {
    const std::int64_t x = a.asInt();
    const std::int64_t y = b.asInt();
    switch (op) {
      case BinaryOp::Add: return Value(x + y);
      case BinaryOp::Sub: return Value(x - y);
      case BinaryOp::Mul: return Value(x * y);
      case BinaryOp::Div:
        if (y == 0) return Value::null();
        return Value(x / y);
      default: break;
    }
  }
  const double x = a.asReal();
  const double y = b.asReal();
  switch (op) {
    case BinaryOp::Add: return Value(x + y);
    case BinaryOp::Sub: return Value(x - y);
    case BinaryOp::Mul: return Value(x * y);
    case BinaryOp::Div:
      if (y == 0.0) return Value::null();
      return Value(x / y);
    default: break;
  }
  throw SqlError("arith: not an arithmetic operator");
}

Value compare(BinaryOp op, const Value& a, const Value& b) {
  // SQL three-valued logic collapsed: comparisons against NULL are false.
  if (a.isNull() || b.isNull()) return Value(std::int64_t{0});
  const int c = a.compare(b);
  bool result = false;
  switch (op) {
    case BinaryOp::Eq: result = c == 0; break;
    case BinaryOp::Ne: result = c != 0; break;
    case BinaryOp::Lt: result = c < 0; break;
    case BinaryOp::Le: result = c <= 0; break;
    case BinaryOp::Gt: result = c > 0; break;
    case BinaryOp::Ge: result = c >= 0; break;
    default: throw SqlError("compare: not a comparison operator");
  }
  return Value(std::int64_t{result ? 1 : 0});
}

}  // namespace

bool truthy(const Value& v) {
  if (v.isNull()) return false;
  if (v.isInt()) return v.asInt() != 0;
  if (v.isReal()) return v.asReal() != 0.0;
  return !v.asText().empty();
}

Value evaluate(const Expr& e, const Tuple& tuple) {
  switch (e.kind) {
    case Expr::Kind::Literal:
    case Expr::Kind::Param:  // bind() stored the parameter value in `value`
      return e.value;
    case Expr::Kind::Column: {
      const Row* row = tuple.at(e.bound_table);
      if (row == nullptr) throw SqlError("internal: unbound tuple slot");
      return row->at(e.bound_col);
    }
    case Expr::Kind::Binary: {
      switch (e.op) {
        case BinaryOp::And: {
          if (!truthy(evaluate(*e.lhs, tuple))) return Value(std::int64_t{0});
          return Value(std::int64_t{truthy(evaluate(*e.rhs, tuple)) ? 1 : 0});
        }
        case BinaryOp::Or: {
          if (truthy(evaluate(*e.lhs, tuple))) return Value(std::int64_t{1});
          return Value(std::int64_t{truthy(evaluate(*e.rhs, tuple)) ? 1 : 0});
        }
        case BinaryOp::Add:
        case BinaryOp::Sub:
        case BinaryOp::Mul:
        case BinaryOp::Div:
          return arith(e.op, evaluate(*e.lhs, tuple), evaluate(*e.rhs, tuple));
        default:
          return compare(e.op, evaluate(*e.lhs, tuple), evaluate(*e.rhs, tuple));
      }
    }
    case Expr::Kind::Not:
      return Value(std::int64_t{truthy(evaluate(*e.lhs, tuple)) ? 0 : 1});
    case Expr::Kind::IsNull: {
      const bool is_null = evaluate(*e.lhs, tuple).isNull();
      return Value(std::int64_t{(is_null != e.negated) ? 1 : 0});
    }
    case Expr::Kind::Like: {
      const Value v = evaluate(*e.lhs, tuple);
      if (v.isNull()) return Value(std::int64_t{0});
      const bool hit = likeMatch(v.isText() ? v.asText() : v.toDisplayString(),
                                 e.value.asText());
      return Value(std::int64_t{(hit != e.negated) ? 1 : 0});
    }
    case Expr::Kind::InList: {
      const Value v = evaluate(*e.lhs, tuple);
      if (v.isNull()) return Value(std::int64_t{0});
      bool hit = false;
      for (const ExprPtr& item : e.list) {
        if (v.compare(evaluate(*item, tuple)) == 0) {
          hit = true;
          break;
        }
      }
      return Value(std::int64_t{(hit != e.negated) ? 1 : 0});
    }
    case Expr::Kind::InSelect: {
      const Value v = evaluate(*e.lhs, tuple);
      if (v.isNull()) return Value(std::int64_t{0});
      if (!e.subquery_values) {
        throw SqlError("internal: subquery was not materialized");
      }
      EncodedKey key;
      encodeValue(v, key);
      const bool hit = e.subquery_values->contains(key);
      return Value(std::int64_t{(hit != e.negated) ? 1 : 0});
    }
    case Expr::Kind::Aggregate:
      throw SqlError("aggregate used outside of an aggregating SELECT");
  }
  throw SqlError("internal: bad expression kind");
}

Value evalConst(const Expr& e) {
  static const Tuple kEmpty;
  return evaluate(e, kEmpty);
}

// ---------------------------------------------------------------------------
// Binding / analysis
// ---------------------------------------------------------------------------

int Binder::bind(Expr& e) const {
  int max_table = -1;
  bindInner(e, max_table);
  return max_table;
}

void Binder::bindInner(Expr& e, int& max_table) const {
  if (e.kind == Expr::Kind::Column) {
    resolve(e);
    max_table = std::max(max_table, e.bound_table);
    return;
  }
  if (e.lhs) bindInner(*e.lhs, max_table);
  if (e.rhs) bindInner(*e.rhs, max_table);
  for (const ExprPtr& item : e.list) bindInner(*item, max_table);
  // Subqueries bind against their own FROM list (uncorrelated); the
  // executor materializes them before evaluation.
}

void Binder::resolve(Expr& e) const {
  // Always (re)resolve: a cached statement may be replanned after DDL
  // changed column ordinals, so stale annotations must not survive.
  int found_table = -1;
  int found_col = -1;
  for (std::size_t i = 0; i < from_.size(); ++i) {
    if (!e.table.empty() && !util::iequals(e.table, from_[i].alias)) continue;
    const int col = from_[i].def->columnIndex(e.column);
    if (col < 0) continue;
    if (found_table >= 0) {
      throw SqlError("ambiguous column reference: " + e.column);
    }
    found_table = static_cast<int>(i);
    found_col = col;
  }
  if (found_table < 0) {
    const std::string qual = e.table.empty() ? e.column : e.table + "." + e.column;
    throw SqlError("unknown column: " + qual);
  }
  e.bound_table = found_table;
  e.bound_col = found_col;
}

namespace {

void collectConjuncts(Expr* e, std::vector<Expr*>& out) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::Binary && e->op == BinaryOp::And) {
    collectConjuncts(e->lhs.get(), out);
    collectConjuncts(e->rhs.get(), out);
    return;
  }
  out.push_back(e);
}

void collectAggregates(Expr* e, std::vector<Expr*>& out) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::Aggregate) {
    e->agg_slot = static_cast<int>(out.size());
    out.push_back(e);
    // Aggregate arguments are evaluated per input tuple, not per group;
    // do not descend further.
    return;
  }
  collectAggregates(e->lhs.get(), out);
  collectAggregates(e->rhs.get(), out);
  for (const ExprPtr& item : e->list) collectAggregates(item.get(), out);
}

bool containsAggregate(const Expr* e) {
  if (e == nullptr) return false;
  if (e->kind == Expr::Kind::Aggregate) return true;
  if (containsAggregate(e->lhs.get()) || containsAggregate(e->rhs.get())) return true;
  for (const ExprPtr& item : e->list) {
    if (containsAggregate(item.get())) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Expression walking (parameter binding)
// ---------------------------------------------------------------------------

void forEachExpr(SelectStmt& sel, const std::function<void(Expr&)>& fn);

void forEachExpr(Expr* e, const std::function<void(Expr&)>& fn) {
  if (e == nullptr) return;
  fn(*e);
  forEachExpr(e->lhs.get(), fn);
  forEachExpr(e->rhs.get(), fn);
  for (const ExprPtr& item : e->list) forEachExpr(item.get(), fn);
  if (e->subquery) forEachExpr(*e->subquery, fn);
}

void forEachExpr(SelectStmt& sel, const std::function<void(Expr&)>& fn) {
  for (SelectItem& item : sel.items) forEachExpr(item.expr.get(), fn);
  for (TableRef& ref : sel.from) forEachExpr(ref.join_on.get(), fn);
  forEachExpr(sel.where.get(), fn);
  for (ExprPtr& e : sel.group_by) forEachExpr(e.get(), fn);
  forEachExpr(sel.having.get(), fn);
  for (OrderItem& item : sel.order_by) forEachExpr(item.expr.get(), fn);
}

void forEachExpr(Statement& stmt, const std::function<void(Expr&)>& fn) {
  switch (stmt.kind) {
    case Statement::Kind::Select:
      forEachExpr(*stmt.select, fn);
      break;
    case Statement::Kind::Insert:
      for (auto& row : stmt.insert->rows) {
        for (ExprPtr& e : row) forEachExpr(e.get(), fn);
      }
      break;
    case Statement::Kind::Update:
      for (auto& [name, e] : stmt.update->assignments) forEachExpr(e.get(), fn);
      forEachExpr(stmt.update->where.get(), fn);
      break;
    case Statement::Kind::Delete:
      forEachExpr(stmt.del->where.get(), fn);
      break;
    default:
      break;  // DDL/Txn/Vacuum carry no expressions
  }
}

}  // namespace

void bindParamValues(Statement& stmt, const std::vector<Value>& params) {
  forEachExpr(stmt, [&](Expr& e) {
    if (e.kind == Expr::Kind::Param) {
      e.value = params.at(static_cast<std::size_t>(e.param_index));
    }
  });
}

// ---------------------------------------------------------------------------
// Aggregation state
// ---------------------------------------------------------------------------

namespace {

struct AggState {
  std::int64_t count = 0;
  std::int64_t isum = 0;
  double rsum = 0.0;
  bool saw_real = false;
  Value min;
  Value max;
  std::set<EncodedKey> distinct;

  void add(const Value& v, bool distinct_only) {
    if (v.isNull()) return;
    if (distinct_only) {
      EncodedKey key;
      encodeValue(v, key);
      if (!distinct.insert(key).second) return;
    }
    ++count;
    if (v.isReal()) {
      saw_real = true;
      rsum += v.asReal();
    } else if (v.isInt()) {
      isum += v.asInt();
      rsum += static_cast<double>(v.asInt());
    }
    if (min.isNull() || v.compare(min) < 0) min = v;
    if (max.isNull() || v.compare(max) > 0) max = v;
  }

  Value result(AggFunc fn) const {
    switch (fn) {
      case AggFunc::Count: return Value(count);
      case AggFunc::Sum:
        if (count == 0) return Value::null();
        return saw_real ? Value(rsum) : Value(isum);
      case AggFunc::Avg:
        if (count == 0) return Value::null();
        return Value(rsum / static_cast<double>(count));
      case AggFunc::Min: return min;
      case AggFunc::Max: return max;
    }
    return Value::null();
  }
};

struct Group {
  Row key_values;
  std::vector<Row> first_rows;  // deep copy of the group's first input tuple
  std::vector<AggState> aggs;
};

/// Evaluates an expression in grouped mode: Aggregate nodes read their
/// accumulated slot; everything else evaluates against the group's first
/// input tuple (SQLite-style bare-column semantics).
Value evaluateGrouped(const Expr& e, const Group& g) {
  if (e.kind == Expr::Kind::Aggregate) {
    return g.aggs.at(e.agg_slot).result(e.agg);
  }
  switch (e.kind) {
    case Expr::Kind::Literal:
    case Expr::Kind::Param:
      return e.value;
    case Expr::Kind::Column:
      return g.first_rows.at(e.bound_table).at(e.bound_col);
    case Expr::Kind::Binary: {
      switch (e.op) {
        case BinaryOp::And:
          return Value(std::int64_t{truthy(evaluateGrouped(*e.lhs, g)) &&
                                            truthy(evaluateGrouped(*e.rhs, g))
                                        ? 1
                                        : 0});
        case BinaryOp::Or:
          return Value(std::int64_t{truthy(evaluateGrouped(*e.lhs, g)) ||
                                            truthy(evaluateGrouped(*e.rhs, g))
                                        ? 1
                                        : 0});
        case BinaryOp::Add:
        case BinaryOp::Sub:
        case BinaryOp::Mul:
        case BinaryOp::Div:
          return arith(e.op, evaluateGrouped(*e.lhs, g), evaluateGrouped(*e.rhs, g));
        default:
          return compare(e.op, evaluateGrouped(*e.lhs, g), evaluateGrouped(*e.rhs, g));
      }
    }
    case Expr::Kind::Not:
      return Value(std::int64_t{truthy(evaluateGrouped(*e.lhs, g)) ? 0 : 1});
    case Expr::Kind::IsNull: {
      const bool is_null = evaluateGrouped(*e.lhs, g).isNull();
      return Value(std::int64_t{(is_null != e.negated) ? 1 : 0});
    }
    case Expr::Kind::Like: {
      const Value v = evaluateGrouped(*e.lhs, g);
      if (v.isNull()) return Value(std::int64_t{0});
      const bool hit = likeMatch(v.isText() ? v.asText() : v.toDisplayString(),
                                 e.value.asText());
      return Value(std::int64_t{(hit != e.negated) ? 1 : 0});
    }
    case Expr::Kind::InList: {
      const Value v = evaluateGrouped(*e.lhs, g);
      if (v.isNull()) return Value(std::int64_t{0});
      bool hit = false;
      for (const ExprPtr& item : e.list) {
        if (v.compare(evaluateGrouped(*item, g)) == 0) {
          hit = true;
          break;
        }
      }
      return Value(std::int64_t{(hit != e.negated) ? 1 : 0});
    }
    case Expr::Kind::InSelect: {
      const Value v = evaluateGrouped(*e.lhs, g);
      if (v.isNull()) return Value(std::int64_t{0});
      if (!e.subquery_values) {
        throw SqlError("internal: subquery was not materialized");
      }
      EncodedKey key;
      encodeValue(v, key);
      const bool hit = e.subquery_values->contains(key);
      return Value(std::int64_t{(hit != e.negated) ? 1 : 0});
    }
    case Expr::Kind::Aggregate:
      break;  // handled above
  }
  throw SqlError("internal: bad grouped expression");
}

}  // namespace

// ---------------------------------------------------------------------------
// Subquery materialization and plan construction
// ---------------------------------------------------------------------------

void materializeSubqueries(Expr* e, Database& db, bool use_indexes) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::InSelect) {
    if (!e->subquery) throw SqlError("internal: InSelect without a subquery");
    const ResultSet rs = execSelect(db, *e->subquery, use_indexes, /*explain=*/false);
    auto values = std::make_shared<std::set<std::string>>();
    for (const Row& row : rs.rows) {
      if (row.empty() || row[0].isNull()) continue;  // NULL never matches IN
      EncodedKey key;
      encodeValue(row[0], key);
      values->insert(std::move(key));
    }
    e->subquery_values = std::move(values);
  }
  materializeSubqueries(e->lhs.get(), db, use_indexes);
  materializeSubqueries(e->rhs.get(), db, use_indexes);
  for (const ExprPtr& item : e->list) {
    materializeSubqueries(item.get(), db, use_indexes);
  }
}

void materializePlanSubqueries(Database& db, SelectPlan& plan) {
  // A FROM-less SELECT never materializes (mirrors the historical early
  // return; an InSelect there fails at evaluation time instead).
  if (plan.from.empty()) return;
  SelectStmt& sel = *plan.sel;
  for (const SelectPlan::PlannedConjunct& pc : plan.conjuncts) {
    materializeSubqueries(pc.expr, db, plan.use_indexes);
  }
  for (const SelectPlan::OutputCol& out : plan.outputs) {
    materializeSubqueries(out.expr, db, plan.use_indexes);
  }
  if (sel.having) materializeSubqueries(sel.having.get(), db, plan.use_indexes);
  for (OrderItem& item : sel.order_by) {
    materializeSubqueries(item.expr.get(), db, plan.use_indexes);
  }
}

SelectPlan buildSelectPlan(Database& db, SelectStmt& sel, bool use_indexes) {
  SelectPlan plan;
  plan.sel = &sel;
  plan.epoch = db.schemaEpoch();
  plan.use_indexes = use_indexes;

  // --- resolve FROM ---
  for (const TableRef& ref : sel.from) {
    const TableDef* def = db.catalog().findTable(ref.table);
    if (def == nullptr) throw SqlError("no such table: " + ref.table);
    plan.from.push_back({def, ref.alias});
  }
  Binder binder(plan.from);

  if (plan.from.empty()) {
    // SELECT without FROM: items evaluate against an empty tuple at run time.
    for (SelectItem& item : sel.items) {
      if (!item.expr) throw SqlError("SELECT * requires a FROM clause");
      binder.bind(*item.expr);
      plan.outputs.push_back({item.expr.get(),
                              item.alias.empty() ? "expr" : item.alias});
    }
    return plan;
  }

  // --- expand '*' and bind select items ---
  for (SelectItem& item : sel.items) {
    if (!item.expr) {
      for (std::size_t t = 0; t < plan.from.size(); ++t) {
        for (std::size_t c = 0; c < plan.from[t].def->columns.size(); ++c) {
          ExprPtr e = Expr::columnRef(plan.from[t].alias,
                                      plan.from[t].def->columns[c].name);
          binder.bind(*e);
          plan.outputs.push_back({e.get(), plan.from[t].def->columns[c].name});
          plan.star_exprs.push_back(std::move(e));
        }
      }
      continue;
    }
    binder.bind(*item.expr);
    std::string name = item.alias;
    if (name.empty()) {
      name = item.expr->kind == Expr::Kind::Column ? item.expr->column : "expr";
    }
    plan.outputs.push_back({item.expr.get(), std::move(name)});
  }

  // --- gather and bind conjuncts (WHERE + every JOIN ... ON) ---
  auto addConjuncts = [&](Expr* root, int on_table) {
    std::vector<Expr*> raw;
    collectConjuncts(root, raw);
    for (Expr* e : raw) {
      SelectPlan::PlannedConjunct pc;
      pc.expr = e;
      pc.max_table = binder.bind(*e);
      pc.on_table = on_table;
      plan.conjuncts.push_back(pc);
    }
  };
  addConjuncts(sel.where.get(), -1);
  for (std::size_t t = 0; t < sel.from.size(); ++t) {
    addConjuncts(sel.from[t].join_on.get(), static_cast<int>(t));
  }

  // --- bind the remaining clauses ---
  for (ExprPtr& e : sel.group_by) binder.bind(*e);
  if (sel.having) binder.bind(*sel.having);
  for (OrderItem& item : sel.order_by) binder.bind(*item.expr);

  // --- aggregation analysis ---
  for (const SelectPlan::OutputCol& out : plan.outputs) {
    collectAggregates(out.expr, plan.aggregates);
  }
  if (sel.having) collectAggregates(sel.having.get(), plan.aggregates);
  for (OrderItem& item : sel.order_by) {
    collectAggregates(item.expr.get(), plan.aggregates);
  }
  plan.grouped = !sel.group_by.empty() || !plan.aggregates.empty();

  // --- choose an access path per table ---
  plan.paths.assign(plan.from.size(), {});
  if (!use_indexes) return plan;

  // Highest FROM index a bound expression depends on (-1 = constant).
  std::function<int(const Expr*)> maxTableOf = [&](const Expr* x) -> int {
    if (x == nullptr) return -1;
    int m = -1;
    if (x->kind == Expr::Kind::Column) m = x->bound_table;
    m = std::max(m, maxTableOf(x->lhs.get()));
    m = std::max(m, maxTableOf(x->rhs.get()));
    for (const ExprPtr& item : x->list) m = std::max(m, maxTableOf(item.get()));
    return m;
  };

  for (std::size_t t = 0; t < plan.from.size(); ++t) {
    SelectPlan::AccessPath& path = plan.paths[t];
    for (const SelectPlan::PlannedConjunct& pc : plan.conjuncts) {
      Expr* e = pc.expr;

      // col IN (list): sorted multi-point probe when every list element is
      // computable before table t is scanned. Beats a range path, loses to
      // a single-key equality.
      if (e->kind == Expr::Kind::InList && !e->negated) {
        Expr* col = e->lhs.get();
        if (!(col->kind == Expr::Kind::Column &&
              col->bound_table == static_cast<int>(t))) {
          continue;
        }
        int list_max = -1;
        for (const ExprPtr& item : e->list) {
          list_max = std::max(list_max, maxTableOf(item.get()));
        }
        if (list_max >= static_cast<int>(t)) continue;
        const IndexDef* index =
            db.catalog().indexOnColumn(plan.from[t].def->name, col->bound_col);
        if (index == nullptr) continue;
        if (path.kind == SelectPlan::AccessPath::Kind::IndexEqual ||
            path.kind == SelectPlan::AccessPath::Kind::IndexInList) {
          continue;
        }
        path = {};
        path.kind = SelectPlan::AccessPath::Kind::IndexInList;
        path.index = index;
        path.key_column = col->bound_col;
        path.in_list = e;
        continue;
      }

      if (e->kind != Expr::Kind::Binary) continue;
      if (e->op != BinaryOp::Eq && e->op != BinaryOp::Lt && e->op != BinaryOp::Le &&
          e->op != BinaryOp::Gt && e->op != BinaryOp::Ge) {
        continue;
      }
      // Normalize: want column-of-t on the left.
      Expr* col = e->lhs.get();
      Expr* other = e->rhs.get();
      BinaryOp op = e->op;
      auto flip = [](BinaryOp o) {
        switch (o) {
          case BinaryOp::Lt: return BinaryOp::Gt;
          case BinaryOp::Le: return BinaryOp::Ge;
          case BinaryOp::Gt: return BinaryOp::Lt;
          case BinaryOp::Ge: return BinaryOp::Le;
          default: return o;
        }
      };
      if (!(col->kind == Expr::Kind::Column && col->bound_table == static_cast<int>(t))) {
        std::swap(col, other);
        op = flip(op);
        if (!(col->kind == Expr::Kind::Column &&
              col->bound_table == static_cast<int>(t))) {
          continue;
        }
      }
      // The other side must be computable before table t is scanned.
      if (maxTableOf(other) >= static_cast<int>(t)) continue;
      const IndexDef* index =
          db.catalog().indexOnColumn(plan.from[t].def->name, col->bound_col);
      if (index == nullptr) continue;
      if (op == BinaryOp::Eq) {
        path = {};
        path.kind = SelectPlan::AccessPath::Kind::IndexEqual;
        path.index = index;
        path.key_column = col->bound_col;
        path.equal_rhs = other;
        break;  // equality beats any other path
      }
      // Range bound: merge into an existing range path on the same column.
      if (path.kind == SelectPlan::AccessPath::Kind::IndexEqual ||
          path.kind == SelectPlan::AccessPath::Kind::IndexInList) {
        continue;
      }
      if (path.kind == SelectPlan::AccessPath::Kind::IndexRange &&
          path.key_column != col->bound_col) {
        continue;
      }
      path.kind = SelectPlan::AccessPath::Kind::IndexRange;
      path.index = index;
      path.key_column = col->bound_col;
      if (op == BinaryOp::Gt || op == BinaryOp::Ge) {
        path.lower_rhs = other;
        path.lower_inclusive = op == BinaryOp::Ge;
      } else {
        path.upper_rhs = other;
        path.upper_inclusive = op == BinaryOp::Le;
      }
    }
  }
  return plan;
}

// ---------------------------------------------------------------------------
// SlotIter — per-FROM-entry row producers inside the nested loop
// ---------------------------------------------------------------------------

void appendActuals(std::string& line, const OpStats& stats) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), " (actual rows=%llu loops=%llu time=%.3fms)",
                static_cast<unsigned long long>(stats.rows),
                static_cast<unsigned long long>(stats.loops),
                static_cast<double>(stats.time_ns) / 1e6);
  line += buf;
}

namespace {

std::string indentOf(int depth) { return std::string(2 * depth, ' '); }

/// Produces the candidate rows of one FROM entry for the current binding of
/// the earlier tuple slots. produced() counts rows emitted since open().
/// Like RowOp, the public surface wraps virtual do*() hooks so EXPLAIN
/// ANALYZE can account loops/rows/time per iterator stage.
class SlotIter {
 public:
  virtual ~SlotIter() = default;

  void open() {
    if (!stats_.timed) return doOpen();
    ++stats_.loops;
    const detail::OpTick tick(stats_);
    doOpen();
  }
  bool next(Row& out) {
    if (!stats_.timed) return doNext(out);
    const detail::OpTick tick(stats_);
    const bool ok = doNext(out);
    if (ok) ++stats_.rows;
    return ok;
  }
  void close() {
    if (!stats_.timed) return doClose();
    const detail::OpTick tick(stats_);
    doClose();
  }
  void describe(std::vector<std::string>& lines, int depth) const {
    const std::size_t first = lines.size();
    doDescribe(lines, depth);
    if (stats_.timed && first < lines.size()) appendActuals(lines[first], stats_);
  }

  virtual void setAnalyze(bool on) { stats_.timed = on; }
  std::size_t produced() const { return produced_; }

 protected:
  virtual void doOpen() = 0;
  virtual bool doNext(Row& out) = 0;
  virtual void doClose() = 0;
  virtual void doDescribe(std::vector<std::string>& lines, int depth) const = 0;

  std::size_t produced_ = 0;
  OpStats stats_;
};

class SeqScanIter : public SlotIter {
 public:
  SeqScanIter(Database& db, const SelectPlan::AccessPath& path,
              const SelectPlan::FromEntry& entry)
      : db_(&db), path_(&path), entry_(&entry) {}

  void doOpen() override {
    produced_ = 0;
    cur_.emplace(db_->openCursor(entry_->def->name));
  }
  bool doNext(Row& out) override {
    RecordId rid;
    if (!cur_ || !cur_->next(rid, out)) return false;
    ++produced_;
    return true;
  }
  void doClose() override { cur_.reset(); }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    lines.push_back(indentOf(depth) + path_->describe(*entry_));
  }

 private:
  Database* db_;
  const SelectPlan::AccessPath* path_;
  const SelectPlan::FromEntry* entry_;
  std::optional<Database::TableCursor> cur_;
};

class IndexEqualIter : public SlotIter {
 public:
  IndexEqualIter(Database& db, const SelectPlan::AccessPath& path,
                 const SelectPlan::FromEntry& entry, const Tuple& tuple)
      : db_(&db), path_(&path), entry_(&entry), tuple_(&tuple) {}

  void doOpen() override {
    produced_ = 0;
    cur_.reset();
    const Value key = evaluate(*path_->equal_rhs, *tuple_);
    if (!key.isNull()) {  // col = NULL matches nothing; may null-extend
      cur_.emplace(db_->openIndexEqual(*path_->index, {key}));
    }
  }
  bool doNext(Row& out) override {
    RecordId rid;
    if (!cur_ || !cur_->next(rid, out)) return false;
    ++produced_;
    return true;
  }
  void doClose() override { cur_.reset(); }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    lines.push_back(indentOf(depth) + path_->describe(*entry_));
  }

 private:
  Database* db_;
  const SelectPlan::AccessPath* path_;
  const SelectPlan::FromEntry* entry_;
  const Tuple* tuple_;
  std::optional<Database::IndexCursor> cur_;
};

/// Sorted multi-point probe: one B+-tree descent per distinct key, in key
/// order, instead of a heap scan with per-row membership.
class IndexInListIter : public SlotIter {
 public:
  IndexInListIter(Database& db, const SelectPlan::AccessPath& path,
                  const SelectPlan::FromEntry& entry, const Tuple& tuple)
      : db_(&db), path_(&path), entry_(&entry), tuple_(&tuple) {}

  void doOpen() override {
    produced_ = 0;
    cur_.reset();
    next_key_ = 0;
    keys_.clear();
    keys_.reserve(path_->in_list->list.size());
    for (const ExprPtr& item : path_->in_list->list) {
      Value v = evaluate(*item, *tuple_);
      if (!v.isNull()) keys_.push_back(std::move(v));
    }
    std::sort(keys_.begin(), keys_.end(),
              [](const Value& a, const Value& b) { return a.compare(b) < 0; });
    keys_.erase(std::unique(keys_.begin(), keys_.end(),
                            [](const Value& a, const Value& b) {
                              return a.compare(b) == 0;
                            }),
                keys_.end());
  }
  bool doNext(Row& out) override {
    RecordId rid;
    for (;;) {
      if (cur_ && cur_->next(rid, out)) {
        ++produced_;
        return true;
      }
      if (next_key_ >= keys_.size()) return false;
      cur_.emplace(db_->openIndexEqual(*path_->index, {keys_[next_key_++]}));
    }
  }
  void doClose() override {
    cur_.reset();
    keys_.clear();
    next_key_ = 0;
  }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    lines.push_back(indentOf(depth) + path_->describe(*entry_));
  }

 private:
  Database* db_;
  const SelectPlan::AccessPath* path_;
  const SelectPlan::FromEntry* entry_;
  const Tuple* tuple_;
  std::vector<Value> keys_;
  std::size_t next_key_ = 0;
  std::optional<Database::IndexCursor> cur_;
};

class IndexRangeIter : public SlotIter {
 public:
  IndexRangeIter(Database& db, const SelectPlan::AccessPath& path,
                 const SelectPlan::FromEntry& entry, const Tuple& tuple)
      : db_(&db), path_(&path), entry_(&entry), tuple_(&tuple) {}

  void doOpen() override {
    produced_ = 0;
    std::optional<Value> lower;
    std::optional<Value> upper;
    if (path_->lower_rhs) lower = evaluate(*path_->lower_rhs, *tuple_);
    if (path_->upper_rhs) upper = evaluate(*path_->upper_rhs, *tuple_);
    cur_.emplace(db_->openIndexRange(*path_->index, std::move(lower),
                                     path_->lower_inclusive, std::move(upper),
                                     path_->upper_inclusive));
  }
  bool doNext(Row& out) override {
    RecordId rid;
    if (!cur_ || !cur_->next(rid, out)) return false;
    ++produced_;
    return true;
  }
  void doClose() override { cur_.reset(); }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    lines.push_back(indentOf(depth) + path_->describe(*entry_));
  }

 private:
  Database* db_;
  const SelectPlan::AccessPath* path_;
  const SelectPlan::FromEntry* entry_;
  const Tuple* tuple_;
  std::optional<Database::IndexCursor> cur_;
};

/// Applies a conjunct list to the child's rows. Binds the candidate row into
/// its tuple slot while evaluating (the slot's final binding is re-set by the
/// nested loop once the row is accepted).
class FilterIter : public SlotIter {
 public:
  FilterIter(std::unique_ptr<SlotIter> child, std::vector<Expr*> conjuncts,
             Tuple& tuple, std::size_t slot, bool is_on)
      : child_(std::move(child)),
        conjuncts_(std::move(conjuncts)),
        tuple_(&tuple),
        slot_(slot),
        is_on_(is_on) {}

  void doOpen() override {
    produced_ = 0;
    child_->open();
  }
  bool doNext(Row& out) override {
    while (child_->next(out)) {
      (*tuple_)[slot_] = &out;
      bool pass = true;
      for (const Expr* e : conjuncts_) {
        if (!truthy(evaluate(*e, *tuple_))) {
          pass = false;
          break;
        }
      }
      (*tuple_)[slot_] = nullptr;
      if (pass) {
        ++produced_;
        return true;
      }
    }
    return false;
  }
  void doClose() override { child_->close(); }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    lines.push_back(indentOf(depth) + (is_on_ ? "FILTER ON (" : "FILTER (") +
                    std::to_string(conjuncts_.size()) + " conjunct" +
                    (conjuncts_.size() == 1 ? "" : "s") + ")");
    child_->describe(lines, depth + 1);
  }
  void setAnalyze(bool on) override {
    stats_.timed = on;
    child_->setAnalyze(on);
  }

 private:
  std::unique_ptr<SlotIter> child_;
  std::vector<Expr*> conjuncts_;
  Tuple* tuple_;
  std::size_t slot_;
  bool is_on_;
};

// ---------------------------------------------------------------------------
// NestedLoop — iterative join over the per-table SlotIter chains
// ---------------------------------------------------------------------------

/// Pull-based nested-loop join. LEFT JOIN follows standard semantics: a row
/// "matches" when it passes the table's ON conjuncts; if nothing matches,
/// one null-extended tuple is produced and only non-ON (WHERE) conjuncts
/// apply to it.
class NestedLoop {
 public:
  NestedLoop(Database& db, SelectPlan& plan)
      : plan_(&plan), tuple_(plan.from.size(), nullptr) {
    const SelectStmt& sel = *plan.sel;
    for (std::size_t t = 0; t < plan.from.size(); ++t) {
      Level lv;
      const SelectPlan::AccessPath& path = plan.paths[t];
      std::unique_ptr<SlotIter> it;
      switch (path.kind) {
        case SelectPlan::AccessPath::Kind::Scan:
          it = std::make_unique<SeqScanIter>(db, path, plan.from[t]);
          break;
        case SelectPlan::AccessPath::Kind::IndexEqual:
          it = std::make_unique<IndexEqualIter>(db, path, plan.from[t], tuple_);
          break;
        case SelectPlan::AccessPath::Kind::IndexInList:
          it = std::make_unique<IndexInListIter>(db, path, plan.from[t], tuple_);
          break;
        case SelectPlan::AccessPath::Kind::IndexRange:
          it = std::make_unique<IndexRangeIter>(db, path, plan.from[t], tuple_);
          break;
      }
      SlotIter* matched = it.get();
      // Route the conjuncts due at this level: ON conjuncts decide LEFT JOIN
      // matching; the rest filter accepted rows. A conjunct consumed by an
      // IN-list probe already holds by construction and is skipped — except
      // on null-extended rows, which must still fail `col IN (...)`.
      std::vector<Expr*> on_list;
      std::vector<Expr*> where_list;
      for (const SelectPlan::PlannedConjunct& pc : plan.conjuncts) {
        const bool due = pc.max_table == static_cast<int>(t) ||
                         (t == 0 && pc.max_table <= 0);
        if (!due) continue;
        if (pc.on_table == static_cast<int>(t)) {
          if (pc.expr != path.in_list) on_list.push_back(pc.expr);
        } else {
          lv.null_conjuncts.push_back(pc.expr);
          if (pc.expr != path.in_list) where_list.push_back(pc.expr);
        }
      }
      if (!on_list.empty()) {
        it = std::make_unique<FilterIter>(std::move(it), std::move(on_list),
                                          tuple_, t, /*is_on=*/true);
        matched = it.get();
      }
      if (!where_list.empty()) {
        it = std::make_unique<FilterIter>(std::move(it), std::move(where_list),
                                          tuple_, t, /*is_on=*/false);
      }
      lv.top = std::move(it);
      lv.matched_stage = matched;
      lv.null_row = Row(plan.from[t].def->columns.size());  // all NULL
      lv.left_join = sel.from[t].left_join;
      levels_.push_back(std::move(lv));
    }
  }

  void open() {
    if (!stats_.timed) return openImpl();
    ++stats_.loops;
    const detail::OpTick tick(stats_);
    openImpl();
  }
  bool next() {
    if (!stats_.timed) return nextImpl();
    const detail::OpTick tick(stats_);
    const bool ok = nextImpl();
    if (ok) ++stats_.rows;
    return ok;
  }
  void close() {
    if (!stats_.timed) return closeImpl();
    const detail::OpTick tick(stats_);
    closeImpl();
  }

  /// Arms EXPLAIN ANALYZE accounting on the loop and every SlotIter chain.
  void setAnalyze(bool on) {
    stats_.timed = on;
    for (Level& lv : levels_) lv.top->setAnalyze(on);
  }

  void openImpl() {
    started_ = false;
    done_ = false;
    std::fill(tuple_.begin(), tuple_.end(), nullptr);
  }

  bool nextImpl() {
    if (done_ || levels_.empty()) return false;
    const int last = static_cast<int>(levels_.size()) - 1;
    int t;
    if (!started_) {
      started_ = true;
      openLevel(0);
      t = 0;
    } else {
      t = last;  // resume below the tuple we just emitted
    }
    while (t >= 0) {
      Level& lv = levels_[static_cast<std::size_t>(t)];
      if (lv.null_pending) {
        lv.null_pending = false;
        tuple_[static_cast<std::size_t>(t)] = &lv.null_row;
        if (!nullRowPasses(lv)) {
          tuple_[static_cast<std::size_t>(t)] = nullptr;
          t = ascend(t);
          continue;
        }
      } else if (lv.top->next(lv.row)) {
        tuple_[static_cast<std::size_t>(t)] = &lv.row;
      } else {
        if (lv.left_join && !lv.null_done && lv.matched_stage->produced() == 0) {
          lv.null_pending = true;
          lv.null_done = true;
          continue;
        }
        t = ascend(t);
        continue;
      }
      if (t == last) return true;
      openLevel(static_cast<std::size_t>(t) + 1);
      ++t;
    }
    done_ = true;
    return false;
  }

  void closeImpl() {
    for (Level& lv : levels_) lv.top->close();
    std::fill(tuple_.begin(), tuple_.end(), nullptr);
    done_ = true;
  }

  const Tuple& tuple() const { return tuple_; }

  void describe(std::vector<std::string>& lines, int depth) const {
    int child_depth = depth;
    if (levels_.size() > 1) {
      std::string line = indentOf(depth) + "NESTED LOOP JOIN (" +
                         std::to_string(levels_.size()) + " tables)";
      if (stats_.timed) appendActuals(line, stats_);
      lines.push_back(std::move(line));
      child_depth = depth + 1;
    }
    for (const Level& lv : levels_) lv.top->describe(lines, child_depth);
  }

 private:
  struct Level {
    std::unique_ptr<SlotIter> top;      // filter stages over the scan/probe
    SlotIter* matched_stage = nullptr;  // produced() > 0 <=> ON-matched
    Row row;
    Row null_row;
    bool left_join = false;
    std::vector<Expr*> null_conjuncts;  // checked on the null-extended row
    bool null_pending = false;
    bool null_done = false;
  };

  void openLevel(std::size_t t) {
    Level& lv = levels_[t];
    lv.null_pending = false;
    lv.null_done = false;
    tuple_[t] = nullptr;
    lv.top->open();
  }

  bool nullRowPasses(const Level& lv) const {
    for (const Expr* e : lv.null_conjuncts) {
      if (!truthy(evaluate(*e, tuple_))) return false;
    }
    return true;
  }

  int ascend(int t) {
    levels_[static_cast<std::size_t>(t)].top->close();
    tuple_[static_cast<std::size_t>(t)] = nullptr;
    return t - 1;
  }

  SelectPlan* plan_;
  Tuple tuple_;
  std::vector<Level> levels_;
  bool started_ = false;
  bool done_ = false;
  OpStats stats_;
};

// ---------------------------------------------------------------------------
// Row-level operators
// ---------------------------------------------------------------------------

/// SELECT without FROM: one row of constant expressions.
class ConstRowOp : public RowOp {
 public:
  explicit ConstRowOp(SelectPlan& plan) : plan_(&plan) {}

  void doOpen() override { emitted_ = false; }
  bool doNext(Row& row, std::vector<Value>& keys) override {
    if (emitted_) return false;
    emitted_ = true;
    static const Tuple kEmpty;
    row.clear();
    row.reserve(plan_->outputs.size());
    for (const SelectPlan::OutputCol& out : plan_->outputs) {
      row.push_back(evaluate(*out.expr, kEmpty));
    }
    keys.clear();
    return true;
  }
  void doClose() override {}
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    lines.push_back(indentOf(depth) + "CONST ROW");
  }

 private:
  SelectPlan* plan_;
  bool emitted_ = false;
};

/// Evaluates the output expressions (and ORDER BY keys) per joined tuple.
class ProjectOp : public RowOp {
 public:
  ProjectOp(std::unique_ptr<NestedLoop> src, SelectPlan& plan)
      : src_(std::move(src)), plan_(&plan) {}

  void doOpen() override { src_->open(); }
  bool doNext(Row& row, std::vector<Value>& keys) override {
    if (!src_->next()) return false;
    const Tuple& tuple = src_->tuple();
    row.clear();
    row.reserve(plan_->outputs.size());
    for (const SelectPlan::OutputCol& out : plan_->outputs) {
      row.push_back(evaluate(*out.expr, tuple));
    }
    const SelectStmt& sel = *plan_->sel;
    keys.clear();
    keys.reserve(sel.order_by.size());
    for (const OrderItem& item : sel.order_by) {
      keys.push_back(evaluate(*item.expr, tuple));
    }
    return true;
  }
  void doClose() override { src_->close(); }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    std::string cols;
    for (const SelectPlan::OutputCol& out : plan_->outputs) {
      if (!cols.empty()) cols += ", ";
      cols += out.name;
    }
    lines.push_back(indentOf(depth) + "PROJECT " + cols);
    src_->describe(lines, depth + 1);
  }
  void setAnalyze(bool on) override {
    stats_.timed = on;
    src_->setAnalyze(on);
  }

 private:
  std::unique_ptr<NestedLoop> src_;
  SelectPlan* plan_;
};

/// Blocking aggregation: drains the join on the first next(), groups by the
/// GROUP BY keys, then emits one row per HAVING-surviving group.
class AggregateOp : public RowOp {
 public:
  AggregateOp(std::unique_ptr<NestedLoop> src, SelectPlan& plan)
      : src_(std::move(src)), plan_(&plan) {}

  void doOpen() override {
    src_->open();
    built_ = false;
    out_.clear();
    pos_ = 0;
  }
  bool doNext(Row& row, std::vector<Value>& keys) override {
    if (!built_) build();
    if (pos_ >= out_.size()) return false;
    row = std::move(out_[pos_].first);
    keys = std::move(out_[pos_].second);
    ++pos_;
    return true;
  }
  void doClose() override {
    src_->close();
    out_.clear();
    pos_ = 0;
  }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    const SelectStmt& sel = *plan_->sel;
    std::string line = indentOf(depth) + "AGGREGATE (" +
                       std::to_string(plan_->aggregates.size()) + " aggregate" +
                       (plan_->aggregates.size() == 1 ? "" : "s") + ", " +
                       std::to_string(sel.group_by.size()) + " group key" +
                       (sel.group_by.size() == 1 ? "" : "s") + ")";
    if (sel.having) line += " HAVING";
    lines.push_back(std::move(line));
    src_->describe(lines, depth + 1);
  }
  void setAnalyze(bool on) override {
    stats_.timed = on;
    src_->setAnalyze(on);
  }

 private:
  void build() {
    const SelectStmt& sel = *plan_->sel;
    std::map<EncodedKey, Group> groups;
    while (src_->next()) {
      const Tuple& tuple = src_->tuple();
      Row key_values;
      EncodedKey key;
      for (const ExprPtr& e : sel.group_by) {
        Value v = evaluate(*e, tuple);
        encodeValue(v, key);
        key_values.push_back(std::move(v));
      }
      auto [it, inserted] = groups.try_emplace(std::move(key));
      Group& g = it->second;
      if (inserted) {
        g.key_values = std::move(key_values);
        g.aggs.resize(plan_->aggregates.size());
        g.first_rows.reserve(tuple.size());
        for (const Row* row : tuple) g.first_rows.push_back(*row);
      }
      for (std::size_t a = 0; a < plan_->aggregates.size(); ++a) {
        const Expr* agg = plan_->aggregates[a];
        if (agg->lhs) {
          g.aggs[a].add(evaluate(*agg->lhs, tuple), agg->agg_distinct);
        } else {
          g.aggs[a].count++;  // COUNT(*)
        }
      }
    }
    src_->close();
    for (const auto& [key, group] : groups) {
      if (sel.having && !truthy(evaluateGrouped(*sel.having, group))) continue;
      Row row;
      row.reserve(plan_->outputs.size());
      for (const SelectPlan::OutputCol& out : plan_->outputs) {
        row.push_back(evaluateGrouped(*out.expr, group));
      }
      std::vector<Value> keys;
      keys.reserve(sel.order_by.size());
      for (const OrderItem& item : sel.order_by) {
        keys.push_back(evaluateGrouped(*item.expr, group));
      }
      out_.emplace_back(std::move(row), std::move(keys));
    }
    // A fully-aggregated SELECT over zero input rows still yields one row.
    if (groups.empty() && sel.group_by.empty()) {
      Group empty;
      empty.aggs.resize(plan_->aggregates.size());
      // Bare column refs are undefined over an empty input; report NULLs.
      Row row;
      for (const SelectPlan::OutputCol& out : plan_->outputs) {
        if (containsAggregate(out.expr) || out.expr->kind == Expr::Kind::Literal) {
          row.push_back(evaluateGrouped(*out.expr, empty));
        } else {
          row.push_back(Value::null());
        }
      }
      out_.emplace_back(std::move(row), std::vector<Value>{});
    }
    built_ = true;
  }

  std::unique_ptr<NestedLoop> src_;
  SelectPlan* plan_;
  bool built_ = false;
  std::vector<std::pair<Row, std::vector<Value>>> out_;
  std::size_t pos_ = 0;
};

/// Streaming duplicate elimination on the projected row values.
class DistinctOp : public RowOp {
 public:
  explicit DistinctOp(std::unique_ptr<RowOp> child) : child_(std::move(child)) {}

  void doOpen() override {
    child_->open();
    seen_.clear();
  }
  bool doNext(Row& row, std::vector<Value>& keys) override {
    while (child_->next(row, keys)) {
      EncodedKey key;
      for (const Value& v : row) encodeValue(v, key);
      if (seen_.insert(std::move(key)).second) return true;
    }
    return false;
  }
  void doClose() override {
    child_->close();
    seen_.clear();
  }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    lines.push_back(indentOf(depth) + "DISTINCT");
    child_->describe(lines, depth + 1);
  }
  void setAnalyze(bool on) override {
    stats_.timed = on;
    child_->setAnalyze(on);
  }

 private:
  std::unique_ptr<RowOp> child_;
  std::set<EncodedKey> seen_;
};

/// Blocking sort on the ORDER BY keys. With a pushed-down LIMIT the sort
/// keeps a bounded top-K heap (K = offset + limit) instead of materializing
/// and sorting every input row. An input sequence number is the final
/// comparison key, so the output order is exactly what a stable sort of the
/// full input would produce.
class SortOp : public RowOp {
 public:
  SortOp(std::unique_ptr<RowOp> child, SelectPlan& plan,
         std::optional<std::size_t> top_k)
      : child_(std::move(child)), plan_(&plan), top_k_(top_k) {}

  void doOpen() override {
    child_->open();
    sorted_ = false;
    rows_.clear();
    pos_ = 0;
  }
  bool doNext(Row& row, std::vector<Value>& keys) override {
    if (!sorted_) drain();
    if (pos_ >= rows_.size()) return false;
    row = std::move(rows_[pos_].row);
    keys.clear();
    ++pos_;
    return true;
  }
  void doClose() override {
    child_->close();
    rows_.clear();
    pos_ = 0;
  }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    const std::size_t n = plan_->sel->order_by.size();
    std::string line = indentOf(depth) + "SORT BY " + std::to_string(n) + " key" +
                       (n == 1 ? "" : "s");
    if (top_k_) line += " (TOP-K " + std::to_string(*top_k_) + ")";
    lines.push_back(std::move(line));
    child_->describe(lines, depth + 1);
  }
  void setAnalyze(bool on) override {
    stats_.timed = on;
    child_->setAnalyze(on);
  }

 private:
  struct Keyed {
    std::vector<Value> keys;
    Row row;
    std::uint64_t seq = 0;
  };

  bool before(const Keyed& a, const Keyed& b) const {
    const auto& order = plan_->sel->order_by;
    const std::size_t n =
        std::min({order.size(), a.keys.size(), b.keys.size()});
    for (std::size_t i = 0; i < n; ++i) {
      const int c = a.keys[i].compare(b.keys[i]);
      if (c != 0) return order[i].descending ? c > 0 : c < 0;
    }
    return a.seq < b.seq;  // stable: ties keep input order
  }

  void drain() {
    auto cmp = [this](const Keyed& a, const Keyed& b) { return before(a, b); };
    Row row;
    std::vector<Value> keys;
    std::uint64_t seq = 0;
    while (child_->next(row, keys)) {
      if (top_k_ && *top_k_ == 0) {
        ++seq;
        continue;  // LIMIT 0: consume input, keep nothing
      }
      rows_.push_back(Keyed{std::move(keys), std::move(row), seq++});
      keys = {};
      row = {};
      if (top_k_) {
        std::push_heap(rows_.begin(), rows_.end(), cmp);
        if (rows_.size() > *top_k_) {
          std::pop_heap(rows_.begin(), rows_.end(), cmp);
          rows_.pop_back();
        }
      }
    }
    if (top_k_) {
      std::sort_heap(rows_.begin(), rows_.end(), cmp);
    } else {
      std::sort(rows_.begin(), rows_.end(), cmp);
    }
    sorted_ = true;
  }

  std::unique_ptr<RowOp> child_;
  SelectPlan* plan_;
  std::optional<std::size_t> top_k_;
  std::vector<Keyed> rows_;
  std::size_t pos_ = 0;
  bool sorted_ = false;
};

/// Streaming OFFSET/LIMIT; without an ORDER BY below it this stops pulling
/// (and therefore scanning) as soon as the limit is reached.
class LimitOp : public RowOp {
 public:
  LimitOp(std::unique_ptr<RowOp> child, std::optional<std::size_t> limit,
          std::size_t offset)
      : child_(std::move(child)), limit_(limit), offset_(offset) {}

  void doOpen() override {
    child_->open();
    skipped_ = 0;
    emitted_ = 0;
  }
  bool doNext(Row& row, std::vector<Value>& keys) override {
    if (limit_ && emitted_ >= *limit_) return false;
    while (child_->next(row, keys)) {
      if (skipped_ < offset_) {
        ++skipped_;
        continue;
      }
      ++emitted_;
      return true;
    }
    return false;
  }
  void doClose() override { child_->close(); }
  void doDescribe(std::vector<std::string>& lines, int depth) const override {
    std::string line = indentOf(depth);
    if (limit_) {
      line += "LIMIT " + std::to_string(*limit_);
      if (offset_ > 0) line += " OFFSET " + std::to_string(offset_);
    } else {
      line += "OFFSET " + std::to_string(offset_);
    }
    lines.push_back(std::move(line));
    child_->describe(lines, depth + 1);
  }
  void setAnalyze(bool on) override {
    stats_.timed = on;
    child_->setAnalyze(on);
  }

 private:
  std::unique_ptr<RowOp> child_;
  std::optional<std::size_t> limit_;
  std::size_t offset_ = 0;
  std::size_t skipped_ = 0;
  std::size_t emitted_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Pipeline assembly and the materializing wrappers
// ---------------------------------------------------------------------------

Pipeline buildPipeline(Database& db, SelectPlan& plan) {
  Pipeline p;
  for (const SelectPlan::OutputCol& out : plan.outputs) p.columns.push_back(out.name);
  if (plan.from.empty()) {
    // SELECT without FROM: exactly one row; DISTINCT/ORDER BY/LIMIT do not
    // apply (mirrors the historical early return).
    p.root = std::make_unique<ConstRowOp>(plan);
    return p;
  }
  SelectStmt& sel = *plan.sel;
  auto loop = std::make_unique<NestedLoop>(db, plan);
  std::unique_ptr<RowOp> op;
  if (plan.grouped) {
    op = std::make_unique<AggregateOp>(std::move(loop), plan);
  } else {
    op = std::make_unique<ProjectOp>(std::move(loop), plan);
  }
  if (sel.distinct) op = std::make_unique<DistinctOp>(std::move(op));
  const std::size_t offset =
      sel.offset ? static_cast<std::size_t>(*sel.offset) : 0;
  if (!sel.order_by.empty()) {
    std::optional<std::size_t> top_k;
    if (sel.limit) top_k = offset + static_cast<std::size_t>(*sel.limit);
    op = std::make_unique<SortOp>(std::move(op), plan, top_k);
  }
  if (sel.limit || sel.offset) {
    std::optional<std::size_t> limit;
    if (sel.limit) limit = static_cast<std::size_t>(*sel.limit);
    op = std::make_unique<LimitOp>(std::move(op), limit, offset);
  }
  p.root = std::move(op);
  return p;
}

std::vector<std::string> explainPipeline(Database& db, SelectPlan& plan) {
  const Pipeline p = buildPipeline(db, plan);
  std::vector<std::string> lines;
  p.root->describe(lines, 0);
  return lines;
}

ResultSet execSelectPlan(Database& db, SelectPlan& plan, bool explain,
                         bool analyze) {
  ResultSet rs;
  if (explain && !analyze) {
    rs.columns = {"plan"};
    for (std::string& line : explainPipeline(db, plan)) {
      rs.rows.push_back({Value(std::move(line))});
    }
    return rs;
  }
  materializePlanSubqueries(db, plan);
  Pipeline p = buildPipeline(db, plan);
  if (analyze) {
    // EXPLAIN ANALYZE: run the statement to exhaustion with per-operator
    // accounting armed, discard the rows, and emit the annotated tree.
    p.root->setAnalyze(true);
    p.root->open();
    Row row;
    std::vector<Value> keys;
    while (p.root->next(row, keys)) {
    }
    p.root->close();
    rs.columns = {"plan"};
    std::vector<std::string> lines;
    p.root->describe(lines, 0);
    for (std::string& line : lines) rs.rows.push_back({Value(std::move(line))});
    return rs;
  }
  rs.columns = std::move(p.columns);
  p.root->open();
  Row row;
  std::vector<Value> keys;
  while (p.root->next(row, keys)) rs.rows.push_back(std::move(row));
  p.root->close();
  return rs;
}

ResultSet execSelect(Database& db, const SelectStmt& sel_const, bool use_indexes,
                     bool explain, bool analyze) {
  // The binding pass annotates expressions in place; the annotations are
  // rewritten by every plan build, so sharing the AST across plans is safe.
  auto& sel = const_cast<SelectStmt&>(sel_const);
  SelectPlan plan = buildSelectPlan(db, sel, use_indexes);
  return execSelectPlan(db, plan, explain, analyze);
}

}  // namespace perftrack::minidb::sql
