// minidb SQL execution pipeline (internal header).
//
// SELECT execution is a Volcano-style operator tree: each operator exposes
// open()/nextBatch()/close() (plus a row-at-a-time next() adapter) and pulls
// column-major RowBatches from its child, so the first output row is produced
// without materializing the whole result. The tree is
//
//   Limit -> Sort -> Distinct -> (Project | Aggregate) -> NestedLoop
//
// with the NestedLoop driving one SlotIter chain per FROM entry
// (SeqScan / IndexProbe wrapped by FilterOp stages). Sort uses a bounded
// top-K heap when the plan carries LIMIT, so ORDER BY ... LIMIT n never
// materializes more than offset+n rows. EXPLAIN renders this tree, one line
// per operator, root first.
//
// When ExecOptions.degree >= 2 and the plan's shape allows it (blocking
// Aggregate/Distinct/Sort above table 0, no LIMIT-without-ORDER-BY early
// stop, table 0 spanning at least min_pages heap pages), the parallel-safe
// subtree runs morsel-driven instead: a shared MorselSource partitions
// table 0 into ~2k-row morsels (whole heap pages for SeqScan, chunked
// cursor pulls for index paths) consumed by workers from the process-wide
// ExecPool. Each worker runs a private partial pipeline — batch-at-a-time
// scan/filter/project loops, a partial hash aggregate, or a per-worker
// top-K heap — and a single GatherOp merges the thread-local states at the
// barrier, after which the serial operators above (Distinct, Sort, Limit)
// run unchanged. Degree 1 is exactly the serial path. EXPLAIN shows the
// parallel subtree under "GATHER (workers=N)"; EXPLAIN ANALYZE rolls the
// per-worker rows/time into the subtree's OpStats.
//
// This header is internal to minidb/sql: executor.cpp (statements, prepared
// statements, cursors) builds on it; nothing above the SQL layer includes it.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "minidb/database.h"
#include "minidb/sql/ast.h"
#include "minidb/sql/row_batch.h"

namespace perftrack::minidb::sql {

struct ResultSet;

/// One joined tuple: a row pointer per FROM-list entry (null = not yet bound).
using Tuple = std::vector<const Row*>;

/// Evaluates an expression against a (possibly partially bound) tuple.
Value evaluate(const Expr& e, const Tuple& tuple);

/// SQL truthiness: NULL and zero are false, everything else true.
bool truthy(const Value& v);

/// Evaluates an expression with no row context (INSERT values).
Value evalConst(const Expr& e);

/// Copies `params` into every Param node of the statement.
void bindParamValues(Statement& stmt, const std::vector<Value>& params);

// ---------------------------------------------------------------------------
// SelectPlan — the compiled form of one SELECT against one schema epoch.
//
// Owns nothing in the AST (Expr pointers reach into the Statement that was
// planned); owns the column refs synthesized for '*' expansion. Catalog
// pointers (TableDef/IndexDef) are valid only while `epoch` matches
// Database::schemaEpoch(); PreparedStatement revalidates before every run.
// ---------------------------------------------------------------------------

struct SelectPlan {
  struct FromEntry {
    const TableDef* def = nullptr;
    std::string alias;
  };

  struct OutputCol {
    Expr* expr = nullptr;
    std::string name;
  };

  struct PlannedConjunct {
    Expr* expr = nullptr;
    int max_table = -1;  // evaluate once all tables <= max_table are bound
    int on_table = -1;   // index of the JOIN whose ON clause supplied it, or
                         // -1 for WHERE conjuncts (LEFT JOIN semantics)
  };

  struct AccessPath {
    enum class Kind {
      Scan,
      IndexEqual,
      IndexInList,
      IndexRange,
      /// IN-list probe answered from the inverted index: one posting-list
      /// lookup per key instead of one B+-tree descent per key. Chosen over
      /// IndexInList when the engine's invidx knob is on and the key column
      /// is INTEGER; `index` stays set for the runtime B-tree fallback
      /// (snapshot reads, non-integer keys, undecodable columns).
      PostingInList,
    } kind = Kind::Scan;
    const IndexDef* index = nullptr;
    int key_column = -1;         // table-local ordinal of the indexed column
    Expr* equal_rhs = nullptr;   // IndexEqual: bound expression for the key
    Expr* in_list = nullptr;     // IndexInList: the consumed InList conjunct
    Expr* lower_rhs = nullptr;   // IndexRange bounds
    bool lower_inclusive = false;
    Expr* upper_rhs = nullptr;
    bool upper_inclusive = false;

    std::string describe(const FromEntry& entry) const {
      switch (kind) {
        case Kind::Scan:
          return "SCAN " + entry.def->name + " AS " + entry.alias;
        case Kind::IndexEqual:
          return "SEARCH " + entry.def->name + " AS " + entry.alias +
                 " USING INDEX " + index->name + " (" +
                 entry.def->columns[key_column].name + "=?)";
        case Kind::IndexInList:
          return "SEARCH " + entry.def->name + " AS " + entry.alias +
                 " USING INDEX " + index->name + " (" +
                 entry.def->columns[key_column].name + " IN multi-point probe, " +
                 std::to_string(in_list->list.size()) + " keys)";
        case Kind::IndexRange:
          return "SEARCH " + entry.def->name + " AS " + entry.alias +
                 " USING INDEX " + index->name + " (" +
                 entry.def->columns[key_column].name + " range)";
        case Kind::PostingInList:
          return "SEARCH " + entry.def->name + " AS " + entry.alias +
                 " USING POSTING INDEX (" + entry.def->columns[key_column].name +
                 " IN posting-list probe, " + std::to_string(in_list->list.size()) +
                 " keys)";
      }
      return "?";
    }
  };

  SelectStmt* sel = nullptr;
  std::uint64_t epoch = 0;
  bool use_indexes = true;
  bool invidx = false;
  std::vector<FromEntry> from;
  std::vector<ExprPtr> star_exprs;  // owns column refs expanded from '*'
  std::vector<OutputCol> outputs;
  std::vector<PlannedConjunct> conjuncts;
  std::vector<AccessPath> paths;
  std::vector<Expr*> aggregates;
  bool grouped = false;
};

/// Resolves column references against a FROM list; used by the SELECT
/// planner and by the single-table UPDATE/DELETE paths.
class Binder {
 public:
  explicit Binder(const std::vector<SelectPlan::FromEntry>& from) : from_(from) {}

  /// Resolves column references; records the highest table index referenced.
  /// Returns -1 for expressions with no column references.
  int bind(Expr& e) const;

 private:
  void bindInner(Expr& e, int& max_table) const;
  void resolve(Expr& e) const;

  const std::vector<SelectPlan::FromEntry>& from_;
};

/// Runs every uncorrelated IN (SELECT ...) subquery below `e` and caches the
/// first-column values for membership tests.
void materializeSubqueries(Expr* e, Database& db, bool use_indexes);

/// Resolves tables, binds expressions, splits conjuncts, and picks one
/// access path per FROM entry. Annotates the AST in place (bound_table /
/// bound_col / agg_slot); the produced plan is valid while the database's
/// schema epoch matches plan.epoch.
SelectPlan buildSelectPlan(Database& db, SelectStmt& sel, bool use_indexes,
                           bool invidx = false);

// ---------------------------------------------------------------------------
// Operator tree
// ---------------------------------------------------------------------------

/// Per-operator runtime counters for EXPLAIN ANALYZE. `loops` counts open()
/// calls (re-opens of an inner join input each count), `rows` counts rows
/// emitted, `time_ns` is inclusive wall time (children's time counts toward
/// their parents, PostgreSQL-style). Accounting only happens while `timed`
/// is set — untimed runs pay nothing beyond one branch per call.
struct OpStats {
  std::uint64_t loops = 0;
  std::uint64_t rows = 0;
  std::uint64_t time_ns = 0;
  std::uint64_t batches = 0;     // nextBatch() calls that produced rows
  std::uint64_t batch_rows = 0;  // live rows across those batches (avg fill)
  bool timed = false;
};

/// Appends " (actual rows=R loops=L time=T ms)" to an EXPLAIN line; when the
/// operator was driven batch-at-a-time, " batches=B avg_fill=F" follows.
void appendActuals(std::string& line, const OpStats& stats);

namespace detail {

/// RAII accumulator: adds the scope's wall time to `stats.time_ns`.
class OpTick {
 public:
  explicit OpTick(OpStats& stats)
      : stats_(stats), start_(std::chrono::steady_clock::now()) {}
  ~OpTick() {
    stats_.time_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  OpTick(const OpTick&) = delete;
  OpTick& operator=(const OpTick&) = delete;

 private:
  OpStats& stats_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace detail

/// One pipeline operator. The primary pull interface is batch-at-a-time:
/// nextBatch() fills a column-major RowBatch (with ORDER BY keys for
/// operators below the Sort) and returns false only at end of stream — a
/// true return always carries at least one live row. next() is the thin
/// row-at-a-time adapter kept for row-stepping callers; both draw from the
/// same operator state, so a consumer may mix them. Operators tolerate
/// next()/nextBatch() after exhaustion and close() twice.
///
/// The public surface wraps the virtual do*() hooks so EXPLAIN ANALYZE can
/// account loops/rows/time per operator without touching every subclass.
class RowOp {
 public:
  virtual ~RowOp() = default;

  void open() {
    if (!stats_.timed) return doOpen();
    ++stats_.loops;
    const detail::OpTick tick(stats_);
    doOpen();
  }
  bool next(Row& row, std::vector<Value>& keys) {
    if (!stats_.timed) return doNext(row, keys);
    const detail::OpTick tick(stats_);
    const bool ok = doNext(row, keys);
    if (ok) ++stats_.rows;
    return ok;
  }
  /// Batch pull. Defined in pipeline.cpp (it feeds the exec metrics).
  bool nextBatch(RowBatch& batch);
  void close() {
    if (!stats_.timed) return doClose();
    const detail::OpTick tick(stats_);
    doClose();
  }
  /// Appends this operator's EXPLAIN line(s), children indented below;
  /// annotated with actuals after an analyzed run.
  void describe(std::vector<std::string>& lines, int depth) const {
    const std::size_t first = lines.size();
    doDescribe(lines, depth);
    if (stats_.timed && first < lines.size()) appendActuals(lines[first], stats_);
  }

  /// Arms (or disarms) EXPLAIN ANALYZE accounting. Composite operators
  /// override to recurse into their children.
  virtual void setAnalyze(bool on) { stats_.timed = on; }
  const OpStats& stats() const { return stats_; }

 protected:
  virtual void doOpen() = 0;
  virtual bool doNext(Row& row, std::vector<Value>& keys) = 0;
  /// Default adapter: loops doNext() into the batch. Batch-native operators
  /// (single-table Project/Aggregate, Distinct, Sort, Limit, Gather)
  /// override it.
  virtual bool doNextBatch(RowBatch& batch);
  virtual void doClose() = 0;
  /// Appends this operator's EXPLAIN line(s), children indented below.
  virtual void doDescribe(std::vector<std::string>& lines, int depth) const = 0;

  OpStats stats_;
};

/// A built (but not yet opened) operator tree for one SelectPlan.
struct Pipeline {
  std::unique_ptr<RowOp> root;
  std::vector<std::string> columns;
};

// ---------------------------------------------------------------------------
// Parallel execution knobs
// ---------------------------------------------------------------------------

/// Target rows per morsel handed to one worker (whole heap pages for
/// sequential scans, so the realized size tracks the page fill).
inline constexpr std::size_t kMorselTargetRows = 2048;

/// Upper bound on ExecOptions::batch_rows / PT_EXEC_BATCH_ROWS. Must stay
/// below 2^18: cursor-fed morsels are one batch each, and morsel row ranks
/// pack the in-morsel position into 18 bits (kMorselRowBits).
inline constexpr std::size_t kMaxExecBatchRows = 65536;

/// Per-execution knobs, resolved by the Engine (or defaulted to serial).
struct ExecOptions {
  /// Worker count including the calling thread; 1 = today's serial path.
  int degree = 1;
  /// Heap pages table 0 must span before the plan goes parallel; 0 turns
  /// the gate off (tests force tiny tables parallel with it).
  std::size_t min_pages = 16;
  /// Rows per RowBatch between operators (and inside worker loops).
  std::size_t batch_rows = 1024;
  /// Whether the planner may answer IN-list probes from the inverted index
  /// (Engine::invidx(); PT_INVIDX process default).
  bool invidx = false;
};

/// Single-table plans stream columnar batches from the scan straight through
/// Filter/Project/Aggregate; joins keep the row-at-a-time tuple interface
/// above a batched outer (table 0) side. This predicate also gates the
/// batch-at-a-time parallel worker loop.
bool batchEligible(const SelectPlan& plan);

/// Builds the operator tree for `plan`. Only reads page headers (for the
/// parallel-eligibility gate); does not open any cursor until the root is
/// open()ed, so it is safe to build for EXPLAIN only.
Pipeline buildPipeline(Database& db, SelectPlan& plan,
                       const ExecOptions& opts = {});

/// Runs the plan's uncorrelated IN (SELECT ...) subqueries (once per
/// execution; their contents may have changed between runs).
void materializePlanSubqueries(Database& db, SelectPlan& plan);

/// EXPLAIN text: the operator tree, one line per operator, root first,
/// children indented two spaces per level.
std::vector<std::string> explainPipeline(Database& db, SelectPlan& plan,
                                         const ExecOptions& opts = {});

/// Runs a previously built plan to completion (the thin materializing
/// wrapper the exec() entry points use). With `analyze` set the plan is
/// executed with per-operator accounting and the result is the annotated
/// operator tree (EXPLAIN ANALYZE), one line per row.
ResultSet execSelectPlan(Database& db, SelectPlan& plan, bool explain,
                         bool analyze = false, const ExecOptions& opts = {});

/// Plans and runs one SELECT (annotates the AST in place; the annotations
/// are rewritten by every plan build, so sharing the AST is safe).
ResultSet execSelect(Database& db, const SelectStmt& sel_const, bool use_indexes,
                     bool explain, bool analyze = false,
                     const ExecOptions& opts = {});

}  // namespace perftrack::minidb::sql
