// RowBatch: the unit of data flow between pipeline operators.
//
// A batch is column-major — `cols[c][i]` is column c of row i — so operators
// that touch one column (filters, projections, aggregate arguments) walk a
// contiguous vector instead of hopping across materialized rows. Deleted rows
// are never compacted out of the columns; instead `sel` holds the ascending
// indices of the rows still alive, and consumers iterate `for (i : sel)`.
// Filters shrink `sel` in place, which keeps predicate chains allocation-free.
//
// `keys` carries ORDER BY sort keys alongside the output columns (same layout,
// same indices) for the Sort operator; it is empty everywhere else.
//
// `capacity` is how many rows the *producer* should fill per refill. 0 means
// "use your configured default" (ExecOptions::batch_rows); drivers such as the
// cursor layer and the server FETCH path set it explicitly.
#pragma once

#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

#include "minidb/value.h"

namespace perftrack::minidb::sql {

struct RowBatch {
  std::size_t capacity = 0;  ///< rows per refill; 0 = producer's default
  std::size_t nrows = 0;     ///< rows filled (including filtered-out ones)
  std::vector<std::vector<Value>> cols;  ///< [column][row]
  std::vector<std::vector<Value>> keys;  ///< ORDER BY keys, [key][row]
  std::vector<std::uint32_t> sel;        ///< ascending indices of live rows

  /// Live rows (what a consumer actually sees).
  std::size_t active() const { return sel.size(); }
  bool empty() const { return sel.empty(); }

  /// Clears row data but keeps the column/key arity (and capacity).
  void clearRows() {
    for (auto& c : cols) c.clear();
    for (auto& k : keys) k.clear();
    sel.clear();
    nrows = 0;
  }

  /// Sets the column/key arity and clears row data.
  void reset(std::size_t ncols, std::size_t nkeys) {
    cols.resize(ncols);
    keys.resize(nkeys);
    clearRows();
  }

  /// Appends a live row by copying; widens the batch if the arity differs.
  void append(const Row& row, const std::vector<Value>& key_vals) {
    if (cols.size() != row.size()) cols.resize(row.size());
    growKeys(key_vals.size(), nrows);
    for (std::size_t c = 0; c < row.size(); ++c) cols[c].push_back(row[c]);
    for (std::size_t k = 0; k < keys.size(); ++k)
      keys[k].push_back(k < key_vals.size() ? key_vals[k] : Value());
    sel.push_back(static_cast<std::uint32_t>(nrows++));
  }

  /// Appends a live row by moving the values out of `row`; the row keeps its
  /// size (values are left moved-from) so callers can `row.clear()` and reuse
  /// the buffer.
  void appendMoveValues(Row& row) {
    if (cols.size() != row.size()) cols.resize(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) cols[c].push_back(std::move(row[c]));
    sel.push_back(static_cast<std::uint32_t>(nrows++));
  }

  /// Same, with ORDER BY keys. Rows with fewer keys than the batch (or vice
  /// versa) are padded with NULLs so every key column stays rectangular.
  void appendMoveValues(Row& row, std::vector<Value>& key_vals) {
    appendMoveValues(row);
    growKeys(key_vals.size(), nrows - 1);
    for (std::size_t k = 0; k < keys.size(); ++k)
      keys[k].push_back(k < key_vals.size() ? std::move(key_vals[k]) : Value());
  }

  /// Copies row `i` (a value from `sel`) into `out`.
  void materializeRow(std::uint32_t i, Row& out) const {
    out.clear();
    out.reserve(cols.size());
    for (const auto& c : cols) out.push_back(c[i]);
  }

  /// Moves row `i` out of the batch (each value is left moved-from; valid
  /// only when the batch is being drained and discarded).
  void takeRow(std::uint32_t i, Row& out) {
    out.clear();
    out.reserve(cols.size());
    for (auto& c : cols) out.push_back(std::move(c[i]));
  }

  /// Copies the ORDER BY keys of row `i` into `out`.
  void materializeKeys(std::uint32_t i, std::vector<Value>& out) const {
    out.clear();
    out.reserve(keys.size());
    for (const auto& k : keys) out.push_back(k[i]);
  }

  /// Moves the ORDER BY keys of row `i` into `out` (drain-and-discard only).
  void takeKeys(std::uint32_t i, std::vector<Value>& out) {
    out.clear();
    out.reserve(keys.size());
    for (auto& k : keys) out.push_back(std::move(k[i]));
  }

 private:
  /// Widens `keys` to `n` columns, back-filling NULLs for the `prior` rows
  /// already in the batch (a row appended before any keyed row appeared).
  void growKeys(std::size_t n, std::size_t prior) {
    if (keys.size() >= n) return;
    const std::size_t old = keys.size();
    keys.resize(n);
    for (std::size_t k = old; k < n; ++k) keys[k].resize(prior);
  }
};

}  // namespace perftrack::minidb::sql
