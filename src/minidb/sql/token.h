// minidb SQL front-end: token definitions.
#pragma once

#include <cstdint>
#include <string>

namespace perftrack::minidb::sql {

enum class TokenType {
  End,
  Identifier,   // bare or "quoted" identifier
  Keyword,      // normalized to upper case
  Integer,
  Real,
  String,       // 'quoted' literal, quotes stripped, '' unescaped
  Symbol,       // punctuation / operator, e.g. "(", ",", "<=", "<>"
};

struct Token {
  TokenType type = TokenType::End;
  std::string text;        // normalized text (keywords upper-cased)
  std::int64_t int_value = 0;
  double real_value = 0.0;
  std::size_t offset = 0;  // byte offset in the statement, for error messages

  bool isKeyword(std::string_view kw) const {
    return type == TokenType::Keyword && text == kw;
  }
  bool isSymbol(std::string_view sym) const {
    return type == TokenType::Symbol && text == sym;
  }
};

}  // namespace perftrack::minidb::sql
