// minidb: fundamental storage-layer identifiers and constants.
#pragma once

#include <cstdint>
#include <functional>

namespace perftrack::minidb {

/// Logical page number within a database file. Page 0 is the header page.
using PageId = std::uint32_t;

inline constexpr PageId kInvalidPage = 0xFFFFFFFFu;
inline constexpr std::size_t kPageSize = 8192;

/// Physical location of a record: (page, slot index within page).
struct RecordId {
  PageId page = kInvalidPage;
  std::uint16_t slot = 0;

  bool valid() const { return page != kInvalidPage; }
  friend bool operator==(const RecordId&, const RecordId&) = default;
  friend auto operator<=>(const RecordId&, const RecordId&) = default;
};

}  // namespace perftrack::minidb

template <>
struct std::hash<perftrack::minidb::RecordId> {
  std::size_t operator()(const perftrack::minidb::RecordId& rid) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(rid.page) << 16) | rid.slot);
  }
};
