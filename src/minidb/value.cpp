#include "minidb/value.h"

#include <cstring>

#include "util/error.h"
#include "util/strings.h"

namespace perftrack::minidb {

using util::StorageError;

std::string_view columnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::Integer: return "INTEGER";
    case ColumnType::Real: return "REAL";
    case ColumnType::Text: return "TEXT";
  }
  return "?";
}

std::int64_t Value::asInt() const {
  if (const auto* v = std::get_if<std::int64_t>(&data_)) return *v;
  throw StorageError("Value: not an integer");
}

double Value::asReal() const {
  if (const auto* v = std::get_if<double>(&data_)) return *v;
  if (const auto* v = std::get_if<std::int64_t>(&data_)) return static_cast<double>(*v);
  throw StorageError("Value: not a real");
}

const std::string& Value::asText() const {
  if (const auto* v = std::get_if<std::string>(&data_)) return *v;
  throw StorageError("Value: not text");
}

std::string Value::toDisplayString() const {
  if (isNull()) return "";
  if (isInt()) return std::to_string(asInt());
  if (isReal()) return util::formatReal(asReal());
  return asText();
}

int Value::compare(const Value& other) const {
  // Storage-class rank: NULL(0) < numeric(1) < text(2).
  auto rank = [](const Value& v) { return v.isNull() ? 0 : (v.isText() ? 2 : 1); };
  const int ra = rank(*this);
  const int rb = rank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (ra == 0) return 0;  // NULL == NULL for ordering purposes
  if (ra == 1) {
    // Compare numerically; stay in int64 when both are integers.
    if (isInt() && other.isInt()) {
      const auto a = asInt();
      const auto b = other.asInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = asReal();
    const double b = other.asReal();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  const int c = asText().compare(other.asText());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

namespace {

// Tag bytes for the serialized form.
constexpr std::uint8_t kTagNull = 0;
constexpr std::uint8_t kTagInt = 1;
constexpr std::uint8_t kTagReal = 2;
constexpr std::uint8_t kTagText = 3;

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t getU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

void putU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t getU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

void serializeRow(const Row& row, std::vector<std::uint8_t>& out) {
  if (row.size() > 0xFFFF) throw StorageError("serializeRow: too many columns");
  out.push_back(static_cast<std::uint8_t>(row.size()));
  out.push_back(static_cast<std::uint8_t>(row.size() >> 8));
  for (const Value& v : row) {
    if (v.isNull()) {
      out.push_back(kTagNull);
    } else if (v.isInt()) {
      out.push_back(kTagInt);
      putU64(out, static_cast<std::uint64_t>(v.asInt()));
    } else if (v.isReal()) {
      out.push_back(kTagReal);
      std::uint64_t bits = 0;
      const double d = v.asReal();
      std::memcpy(&bits, &d, sizeof(bits));
      putU64(out, bits);
    } else {
      const std::string& s = v.asText();
      out.push_back(kTagText);
      putU32(out, static_cast<std::uint32_t>(s.size()));
      out.insert(out.end(), s.begin(), s.end());
    }
  }
}

Row deserializeRow(const std::uint8_t* data, std::size_t size) {
  std::size_t pos = 0;
  auto need = [&](std::size_t n) {
    if (pos + n > size) throw StorageError("deserializeRow: truncated record");
  };
  need(2);
  const std::size_t ncols = data[0] | (static_cast<std::size_t>(data[1]) << 8);
  pos = 2;
  Row row;
  row.reserve(ncols);
  for (std::size_t i = 0; i < ncols; ++i) {
    need(1);
    const std::uint8_t tag = data[pos++];
    switch (tag) {
      case kTagNull:
        row.emplace_back();
        break;
      case kTagInt: {
        need(8);
        row.emplace_back(static_cast<std::int64_t>(getU64(data + pos)));
        pos += 8;
        break;
      }
      case kTagReal: {
        need(8);
        const std::uint64_t bits = getU64(data + pos);
        pos += 8;
        double d = 0.0;
        std::memcpy(&d, &bits, sizeof(d));
        row.emplace_back(d);
        break;
      }
      case kTagText: {
        need(4);
        const std::uint32_t len = getU32(data + pos);
        pos += 4;
        need(len);
        row.emplace_back(std::string(reinterpret_cast<const char*>(data + pos), len));
        pos += len;
        break;
      }
      default:
        throw StorageError("deserializeRow: bad value tag");
    }
  }
  return row;
}

}  // namespace perftrack::minidb
