// minidb: typed column values and row (de)serialization.
//
// minidb supports four storage classes, mirroring the subset of SQL types the
// PerfTrack schema needs: NULL, INTEGER (int64), REAL (double), TEXT (UTF-8
// byte string). Rows are serialized to a compact byte format for heap pages.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace perftrack::minidb {

enum class ColumnType : std::uint8_t {
  Integer = 0,
  Real = 1,
  Text = 2,
};

/// Human-readable name ("INTEGER", "REAL", "TEXT").
std::string_view columnTypeName(ColumnType type);

/// A single dynamically-typed cell. NULL is represented by monostate.
class Value {
 public:
  Value() = default;  // NULL
  Value(std::int64_t v) : data_(v) {}
  Value(int v) : data_(static_cast<std::int64_t>(v)) {}
  Value(double v) : data_(v) {}
  Value(std::string v) : data_(std::move(v)) {}
  Value(std::string_view v) : data_(std::string(v)) {}
  Value(const char* v) : data_(std::string(v)) {}

  static Value null() { return Value(); }

  bool isNull() const { return std::holds_alternative<std::monostate>(data_); }
  bool isInt() const { return std::holds_alternative<std::int64_t>(data_); }
  bool isReal() const { return std::holds_alternative<double>(data_); }
  bool isText() const { return std::holds_alternative<std::string>(data_); }

  /// Integer accessor; throws StorageError when the value is not an integer.
  std::int64_t asInt() const;
  /// Real accessor; accepts integers (widening). Throws otherwise.
  double asReal() const;
  /// Text accessor; throws when the value is not text.
  const std::string& asText() const;

  /// Renders the value for display: NULL -> "", reals via formatReal.
  std::string toDisplayString() const;

  /// Three-way ordering used by ORDER BY, B+-tree keys, and comparisons:
  /// NULL < numbers < text; integers and reals compare numerically.
  int compare(const Value& other) const;

  friend bool operator==(const Value& a, const Value& b) { return a.compare(b) == 0; }
  friend bool operator<(const Value& a, const Value& b) { return a.compare(b) < 0; }

 private:
  std::variant<std::monostate, std::int64_t, double, std::string> data_;
};

using Row = std::vector<Value>;

/// Appends a serialized row to `out`.
void serializeRow(const Row& row, std::vector<std::uint8_t>& out);

/// Parses a row from `data`; throws StorageError on corruption.
Row deserializeRow(const std::uint8_t* data, std::size_t size);

}  // namespace perftrack::minidb
